package sdadcs_test

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"sdadcs"
)

// demo builds a small, fully deterministic mixed dataset: parts fail
// exactly when they run hot on machine M2. Machine assignment alternates
// per 100-row block so it is independent of temperature.
func demo() *sdadcs.Dataset {
	n := 400
	temp := make([]float64, n)
	machine := make([]string, n)
	group := make([]string, n)
	for i := 0; i < n; i++ {
		temp[i] = 100 + float64(i%100) // 100..199, cycling
		machine[i] = []string{"M1", "M2"}[(i/100)%2]
		if temp[i] >= 150 && machine[i] == "M2" {
			group[i] = "fail"
		} else {
			group[i] = "pass"
		}
	}
	return sdadcs.NewBuilder("line").
		AddContinuous("temperature", temp).
		AddCategorical("machine", machine).
		SetGroups(group).
		MustBuild()
}

func ExampleMine() {
	d := demo()
	res := sdadcs.Mine(d, sdadcs.Config{Measure: sdadcs.SurprisingMeasure})
	// The planted failure rule (hot temperature on machine M2) appears as
	// a joint two-attribute pattern covering every failing part.
	fail := d.GroupIndex("fail")
	for _, c := range res.Contrasts {
		if c.Set.Len() == 2 && c.Supports.Supp(fail) == 1 {
			fmt.Println("joint failure pattern found, covering all failures")
			break
		}
	}
	// Output: joint failure pattern found, covering all failures
}

func ExampleFromCSV() {
	csv := "x,label\n1,A\n2,A\n3,B\n4,B\n"
	d, err := sdadcs.FromCSV(strings.NewReader(csv), sdadcs.CSVOptions{GroupColumn: "label"})
	if err != nil {
		panic(err)
	}
	fmt.Println(d.Rows(), "rows,", d.NumAttrs(), "attribute,", d.NumGroups(), "groups")
	// Output: 4 rows, 1 attribute, 2 groups
}

func ExampleClassify() {
	d := demo()
	res := sdadcs.Mine(d, sdadcs.Config{SkipMeaningfulFilter: true})
	meaning := sdadcs.Classify(d, res.Contrasts, 0.05)
	meaningful := 0
	for _, m := range meaning {
		if m.Meaningful() {
			meaningful++
		}
	}
	fmt.Println("meaningful:", meaningful > 0)
	// Output: meaningful: true
}

func ExampleValidateHoldout() {
	d := demo()
	_, holdout := d.All().StratifiedSplit(0.5, 1)
	res := sdadcs.Mine(d, sdadcs.Config{Measure: sdadcs.SurprisingMeasure})
	vs := sdadcs.ValidateHoldout(holdout, res.Contrasts, 0.1, 0.05)
	fmt.Printf("replication rate: %.0f%%\n", 100*sdadcs.ReplicationRate(vs))
	// Output: replication rate: 100%
}

func ExampleMeasure() {
	// The Surprising Measure (Eq. 13) prefers pure contrasts over merely
	// large ones: c2 below has the same support difference as c1 but is
	// twice as pure.
	c1 := sdadcs.Supports{Count: []int{90, 80}, Size: []int{100, 100}}
	c2 := sdadcs.Supports{Count: []int{20, 10}, Size: []int{100, 100}}
	fmt.Printf("diff: %.2f vs %.2f\n", c1.MaxDiff(), c2.MaxDiff())
	fmt.Println("surprising order:",
		sdadcs.SurprisingMeasure.Eval(c2) > sdadcs.SurprisingMeasure.Eval(c1))
	// Output:
	// diff: 0.10 vs 0.10
	// surprising order: true
}

func ExampleWriteReport() {
	d := demo()
	cs := []sdadcs.Contrast{{
		Set: func() sdadcs.Itemset {
			items := []sdadcs.Item{{
				Attr: 0, Kind: sdadcs.Continuous,
				Range: sdadcs.Interval{Lo: 174, Hi: math.Inf(1)},
			}}
			return newItemset(items)
		}(),
		Supports: sdadcs.Supports{Count: []int{0, 100}, Size: []int{300, 100}},
		Score:    1,
	}}
	var sb strings.Builder
	if err := sdadcs.WriteReport(&sb, sdadcs.ReportCSV, d, cs); err != nil {
		panic(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	sort.Strings(lines[:1]) // keep vet happy about determinism intent
	fmt.Println(lines[0])
	// Output: rank,contrast,supp_pass,supp_fail,score,chi2,p
}

// newItemset adapts a slice to the variadic constructor.
func newItemset(items []sdadcs.Item) sdadcs.Itemset {
	return sdadcs.NewItemset(items...)
}
