package sdadcs_test

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"sdadcs"
)

const csvData = `x,y,label
0.1,0.9,A
0.2,0.8,A
0.3,0.7,A
0.4,0.6,A
0.9,0.1,B
0.8,0.2,B
0.7,0.3,B
0.6,0.4,B
0.15,0.85,A
0.25,0.75,A
0.35,0.65,A
0.45,0.55,A
0.95,0.05,B
0.85,0.15,B
0.75,0.25,B
0.65,0.35,B
0.12,0.88,A
0.22,0.78,A
0.32,0.68,A
0.42,0.58,A
0.92,0.08,B
0.82,0.18,B
0.72,0.28,B
0.62,0.38,B
`

func loadSample(t *testing.T) *sdadcs.Dataset {
	t.Helper()
	d, err := sdadcs.FromCSV(strings.NewReader(csvData), sdadcs.CSVOptions{GroupColumn: "label"})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPublicAPIEndToEnd(t *testing.T) {
	d := loadSample(t)
	res := sdadcs.Mine(d, sdadcs.Config{Measure: sdadcs.SurprisingMeasure})
	if len(res.Contrasts) == 0 {
		t.Fatal("no contrasts via the public API")
	}
	top := res.Contrasts[0]
	if top.Score < 0.9 {
		t.Errorf("top score = %v, want near 1 (perfectly separable)", top.Score)
	}
	if s := top.Format(d); !strings.Contains(s, "supp") {
		t.Errorf("Format = %q", s)
	}
}

func TestPublicAPIBuilder(t *testing.T) {
	d, err := sdadcs.NewBuilder("built").
		AddContinuous("v", []float64{1, 2, 3, 10, 11, 12}).
		AddCategorical("c", []string{"a", "a", "a", "b", "b", "b"}).
		SetGroups([]string{"G1", "G1", "G1", "G2", "G2", "G2"}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if d.Rows() != 6 || d.NumAttrs() != 2 {
		t.Error("builder shape wrong")
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	d := loadSample(t)

	cs := sdadcs.MineSubgroups(d, sdadcs.SubgroupConfig{})
	if len(cs) == 0 {
		t.Error("subgroup baseline found nothing")
	}
	eres, err := sdadcs.MineWith(context.Background(), d, sdadcs.MinerConfig{Algorithm: "entropy"})
	if err != nil {
		t.Fatalf("entropy baseline: %v", err)
	}
	if eres.Binned == nil {
		t.Fatal("entropy baseline returned no binned dataset")
	}
	if len(eres.Contrasts) == 0 {
		t.Error("entropy baseline found nothing on separable data")
	}
	// MVD on 24 rows needs small bins to split; it must not crash.
	mres, err := sdadcs.MineWith(context.Background(), d, sdadcs.MinerConfig{Algorithm: "mvd", BinSize: 4})
	if err != nil {
		t.Fatalf("MVD baseline: %v", err)
	}
	if mres.Binned == nil {
		t.Fatal("MVD baseline returned no binned dataset")
	}
	// Partitions=2 keeps each bin's expected cell count above the
	// chi-square validity floor on this 24-row sample.
	qcs, qbinned := sdadcs.MineQAR(d, sdadcs.QARConfig{Partitions: 2}, sdadcs.STUCCOConfig{})
	if qbinned == nil {
		t.Fatal("QAR baseline returned no binned dataset")
	}
	if len(qcs) == 0 {
		t.Error("QAR baseline found nothing on separable data")
	}
}

func TestPublicAPIClassify(t *testing.T) {
	d := loadSample(t)
	res := sdadcs.Mine(d, sdadcs.Config{SkipMeaningfulFilter: true})
	ms := sdadcs.Classify(d, res.Contrasts, 0.05)
	if len(ms) != len(res.Contrasts) {
		t.Fatal("classification length mismatch")
	}
}

func TestPublicAPICSVRoundTrip(t *testing.T) {
	d := loadSample(t)
	var buf bytes.Buffer
	if err := sdadcs.WriteCSV(&buf, d, "label"); err != nil {
		t.Fatal(err)
	}
	d2, err := sdadcs.FromCSV(&buf, sdadcs.CSVOptions{GroupColumn: "label"})
	if err != nil {
		t.Fatal(err)
	}
	if d2.Rows() != d.Rows() {
		t.Error("round trip changed rows")
	}
}

func TestPublicAPIItemConstructors(t *testing.T) {
	d, err := sdadcs.NewBuilder("ctor").
		AddContinuous("x", []float64{1, 2, 3, 4}).
		AddCategorical("c", []string{"a", "b", "a", "b"}).
		SetGroups([]string{"A", "A", "B", "B"}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	set := sdadcs.NewItemset(sdadcs.RangeItem(0, 0, 2.5), sdadcs.CatItem(1, 0))
	if set.Len() != 2 {
		t.Fatal("itemset construction failed")
	}
	if got := set.Format(d); !strings.Contains(got, "c = a") {
		t.Errorf("Format = %q", got)
	}
}

func TestPublicAPISTUCCOAndDiscretized(t *testing.T) {
	d := loadSample(t)
	binned := sdadcs.Discretized(d, map[int][]float64{0: {0.5}, 1: {0.5}})
	cs := sdadcs.MineSTUCCO(binned, sdadcs.STUCCOConfig{})
	if len(cs) == 0 {
		t.Error("STUCCO on binned separable data found nothing")
	}
}

func TestPublicAPIStreamMonitor(t *testing.T) {
	m, err := sdadcs.NewStreamMonitor(
		sdadcs.StreamSchema{Name: "s", Continuous: []string{"x"}},
		sdadcs.StreamConfig{WindowSize: 200, MineEvery: 100},
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		group := "A"
		if i%2 == 0 {
			group = "B"
		}
		x := float64(i % 10)
		if group == "A" {
			x += 10
		}
		if _, err := m.Append([]float64{x}, nil, group); err != nil {
			t.Fatal(err)
		}
	}
	if m.Mines() == 0 {
		t.Error("monitor never mined")
	}
	if len(m.Current()) == 0 {
		t.Error("no current patterns on separable stream")
	}
}

func TestPruningPresets(t *testing.T) {
	all := sdadcs.AllPruning()
	np := sdadcs.NPPruning()
	if !all.RedundancyCLT || np.RedundancyCLT {
		t.Error("presets wrong")
	}
}

// TestPublicAPITraceEndToEnd drives the whole tracing surface through the
// facade: a traced mine yields exactly the contrasts of an untraced one,
// Result.Trace holds the decision record, the top pattern's provenance is
// reconstructible from its canonical key alone, and both exporters accept
// the snapshot.
func TestPublicAPITraceEndToEnd(t *testing.T) {
	d := loadSample(t)
	base := sdadcs.Mine(d, sdadcs.Config{Measure: sdadcs.SurprisingMeasure})
	if base.Trace != nil {
		t.Fatal("untraced mine carries a trace snapshot")
	}

	cfg := sdadcs.Config{Measure: sdadcs.SurprisingMeasure, Trace: sdadcs.NewTracer(0)}
	res := sdadcs.Mine(d, cfg)
	if res.Trace == nil || len(res.Trace.Events) == 0 {
		t.Fatal("traced mine recorded no events")
	}
	if res.Trace.Dropped != 0 {
		t.Errorf("default capacity dropped %d events", res.Trace.Dropped)
	}
	// Tracing must not perturb the mining result.
	if len(res.Contrasts) != len(base.Contrasts) {
		t.Fatalf("traced mine found %d contrasts, untraced %d",
			len(res.Contrasts), len(base.Contrasts))
	}
	for i := range res.Contrasts {
		if res.Contrasts[i].Set.Key() != base.Contrasts[i].Set.Key() ||
			res.Contrasts[i].Score != base.Contrasts[i].Score {
			t.Errorf("contrast %d diverged under tracing", i)
		}
	}

	// Provenance via the canonical key: round-trip the top pattern's key
	// (continuous bounds use the exact binary encoding) and explain it.
	top := res.Contrasts[0]
	set, err := sdadcs.ParseItemsetKey(top.Set.Key())
	if err != nil {
		t.Fatal(err)
	}
	if set.Key() != top.Set.Key() {
		t.Errorf("key round trip broke: %q -> %q", top.Set.Key(), set.Key())
	}
	x := sdadcs.Explain(res.Trace, set)
	if x.Verdict != "emitted" {
		t.Errorf("top contrast explains as %q, want emitted", x.Verdict)
	}
	if !strings.Contains(x.Format(d), "verdict: emitted") {
		t.Errorf("Format output missing verdict: %q", x.Format(d))
	}

	// Exporters: JSONL round-trips event-for-event, Chrome is valid JSON.
	var jl bytes.Buffer
	if err := sdadcs.WriteTraceJSONL(&jl, res.Trace); err != nil {
		t.Fatal(err)
	}
	back, err := sdadcs.ReadTraceJSONL(&jl)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Events) != len(res.Trace.Events) {
		t.Errorf("JSONL round trip lost events: %d -> %d",
			len(res.Trace.Events), len(back.Events))
	}
	var ch bytes.Buffer
	if err := sdadcs.WriteTraceChrome(&ch, res.Trace); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(ch.Bytes()) {
		t.Error("Chrome export is not valid JSON")
	}

	// Trace volume surfaces in the metrics snapshot when both are on.
	rec := sdadcs.NewMetricsRecorder()
	cfg.Metrics = rec
	cfg.Trace = sdadcs.NewTracer(0)
	sdadcs.Mine(d, cfg)
	snap := rec.Snapshot()
	if snap.TraceEvents == 0 || snap.TraceHighWater == 0 {
		t.Errorf("metrics snapshot missing trace volume: %+v", snap)
	}
}
