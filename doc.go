// Package sdadcs is a contrast set miner for quantitative (mixed
// categorical + continuous) data, reproducing Khade, Lin & Patel, "Finding
// Meaningful Contrast Patterns for Quantitative Data" (EDBT 2019).
//
// Contrast set mining finds patterns — conjunctions of attribute=value and
// attribute∈(lo,hi] conditions — whose support differs significantly
// between groups of a dataset. Unlike classifiers, the output is meant to
// be read: every pattern comes with per-group supports, a chi-square
// significance, and meaningfulness guarantees (non-redundant, productive,
// independently productive).
//
// The package's discretization is supervised, dynamic and adaptive: bins
// for continuous attributes are chosen during the search, jointly over the
// attributes of each candidate pattern, so multivariate interactions
// (XOR-style structure invisible to any univariate binning) are found.
//
// # Quickstart
//
//	d, err := sdadcs.FromCSV(file, sdadcs.CSVOptions{GroupColumn: "label"})
//	if err != nil { ... }
//	res := sdadcs.Mine(d, sdadcs.Config{Measure: sdadcs.SurprisingMeasure})
//	for _, c := range res.Contrasts {
//		fmt.Println(c.Format(d))
//	}
//
// Every algorithm — the SDAD-CS search and the paper's baselines (Bay's
// MVD and Fayyad–Irani entropy discretization, STUCCO categorical mining,
// Cortana-style subgroup discovery) — is also available behind the unified
// engine API: MineWith dispatches on MinerConfig.Algorithm, and
// Algorithms lists the registered names. MineSTUCCO and MineSubgroups
// remain as direct entry points for comparison studies.
package sdadcs
