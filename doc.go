// Package sdadcs is a contrast set miner for quantitative (mixed
// categorical + continuous) data, reproducing Khade, Lin & Patel, "Finding
// Meaningful Contrast Patterns for Quantitative Data" (EDBT 2019).
//
// Contrast set mining finds patterns — conjunctions of attribute=value and
// attribute∈(lo,hi] conditions — whose support differs significantly
// between groups of a dataset. Unlike classifiers, the output is meant to
// be read: every pattern comes with per-group supports, a chi-square
// significance, and meaningfulness guarantees (non-redundant, productive,
// independently productive).
//
// The package's discretization is supervised, dynamic and adaptive: bins
// for continuous attributes are chosen during the search, jointly over the
// attributes of each candidate pattern, so multivariate interactions
// (XOR-style structure invisible to any univariate binning) are found.
//
// # Quickstart
//
//	d, err := sdadcs.FromCSV(file, sdadcs.CSVOptions{GroupColumn: "label"})
//	if err != nil { ... }
//	res := sdadcs.Mine(d, sdadcs.Config{Measure: sdadcs.SurprisingMeasure})
//	for _, c := range res.Contrasts {
//		fmt.Println(c.Format(d))
//	}
//
// Baselines from the paper's evaluation — Bay's MVD, Fayyad–Irani entropy
// (MDLP) discretization, STUCCO categorical mining and Cortana-style
// subgroup discovery — are exposed via MineMVD, MineEntropy, MineSTUCCO
// and MineSubgroups for comparison studies.
package sdadcs
