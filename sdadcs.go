package sdadcs

import (
	"context"
	"io"
	"net/http"

	"sdadcs/internal/core"
	"sdadcs/internal/dataset"
	"sdadcs/internal/engine"
	"sdadcs/internal/metrics"
	"sdadcs/internal/mvd"
	"sdadcs/internal/pattern"
	"sdadcs/internal/qar"
	"sdadcs/internal/report"
	"sdadcs/internal/stream"
	"sdadcs/internal/stucco"
	"sdadcs/internal/subgroup"
	"sdadcs/internal/trace"
)

// Core data types.
type (
	// Dataset is an immutable columnar table with a group attribute.
	Dataset = dataset.Dataset
	// Builder assembles a Dataset column by column.
	Builder = dataset.Builder
	// View is a row subset of a Dataset.
	View = dataset.View
	// CSVOptions controls CSV parsing.
	CSVOptions = dataset.CSVOptions
	// Kind distinguishes categorical from continuous attributes.
	Kind = dataset.Kind

	// Item is one pattern condition; Itemset a conjunction of them.
	Item = pattern.Item
	// Itemset is a conjunction of items, at most one per attribute.
	Itemset = pattern.Itemset
	// Interval is a half-open range (Lo, Hi].
	Interval = pattern.Interval
	// Contrast is a mined pattern with its per-group supports and tests.
	Contrast = pattern.Contrast
	// Supports holds per-group pattern counts and group sizes.
	Supports = pattern.Supports
	// Measure selects the interest measure driving the search.
	Measure = pattern.Measure

	// Config controls a mining run; the zero value reproduces the paper's
	// experimental setup (α=0.05, δ=0.1, depth 5, top-100).
	Config = core.Config
	// Result is a mining outcome: contrasts, meaningfulness, statistics.
	Result = core.Result
	// Pruning toggles the search-space reduction strategies.
	Pruning = core.Pruning
	// Stats reports the work a mining run performed.
	Stats = core.Stats
	// Meaningfulness classifies a contrast as redundant / unproductive /
	// not independently productive.
	Meaningfulness = core.Meaningfulness
	// Validation is the holdout verdict for one contrast.
	Validation = core.Validation
	// OEMode selects the optimistic-estimate variant.
	OEMode = core.OEMode
	// CountingMode selects the support-counting engine (bitmap or slice).
	CountingMode = core.CountingMode

	// MetricsRecorder is the concurrency-safe instrumentation sink the
	// miner, top-k list and stream monitor report into when
	// Config.Metrics is set. A nil recorder disables instrumentation at
	// near-zero cost.
	MetricsRecorder = metrics.Recorder
	// MetricsSnapshot is a point-in-time, JSON-ready copy of a recorder:
	// per-level node counts and wall times, per-rule prune hits, SDAD-CS
	// split/box/merge counters, top-k threshold dynamics, re-mine
	// latency.
	MetricsSnapshot = metrics.Snapshot

	// Tracer is the decision-level event sink: set Config.Trace to record
	// why each pattern was emitted, pruned, merged or filtered. A nil
	// tracer disables tracing with the same one-pointer-check discipline
	// as MetricsRecorder.
	Tracer = trace.Tracer
	// Trace is a snapshot of a tracer's event buffer (Result.Trace),
	// exportable as JSONL or Chrome trace-event JSON and queryable via
	// Explain.
	Trace = trace.Trace
	// TraceEvent is one traced decision.
	TraceEvent = trace.Event
	// Explanation is the provenance answer for one pattern: its verdict
	// and the exact decision chain recorded about it.
	Explanation = core.Explanation
)

// Attribute kinds.
const (
	Categorical = dataset.Categorical
	Continuous  = dataset.Continuous
)

// Interest measures.
const (
	// SupportDiff scores patterns by their largest between-group support
	// difference (the paper's Eq. 2).
	SupportDiff = pattern.SupportDiff
	// PurityRatio scores by homogeneity (Eq. 12).
	PurityRatio = pattern.PurityRatio
	// SurprisingMeasure is PR × Diff (Eq. 13), the paper's qualitative
	// default.
	SurprisingMeasure = pattern.SurprisingMeasure
	// WRAccMeasure is weighted relative accuracy, used by the subgroup
	// discovery baseline.
	WRAccMeasure = pattern.WRAccMeasure
	// GrowthRateMeasure is the emerging-pattern growth rate of Dong & Li,
	// squashed to GR/(GR+1).
	GrowthRateMeasure = pattern.GrowthRateMeasure
	// ContrastRuleMeasure is the SCR-style confidence spread
	// max conf − min conf.
	ContrastRuleMeasure = pattern.ContrastRuleMeasure
)

// MeasureByName resolves an interest measure by its wire name ("diff",
// "pr", "surprising", "wracc", "growth", "contrast-rules") or its long
// String() name.
func MeasureByName(name string) (Measure, bool) { return pattern.MeasureByName(name) }

// MeasureNames returns the registered measure wire names in enum order.
func MeasureNames() []string { return pattern.MeasureNames() }

// Optimistic-estimate modes.
const (
	// OEModePaper assumes unique real values (Eq. 6; tightest pruning).
	OEModePaper = core.OEModePaper
	// OEModeConservative stays admissible under ties.
	OEModeConservative = core.OEModeConservative
)

// Support-counting engines (Config.Counting). Both produce identical
// results; the knob exists for A/B benchmarking.
const (
	// CountingAuto (default) resolves to the bitmap engine.
	CountingAuto = core.CountingAuto
	// CountingBitmap counts supports with per-value bitmaps + popcounts.
	CountingBitmap = core.CountingBitmap
	// CountingSlice is the original row-index-slice path.
	CountingSlice = core.CountingSlice
)

// NewBuilder starts building a dataset.
func NewBuilder(name string) *Builder { return dataset.NewBuilder(name) }

// NewItemset builds an itemset from items (sorted canonically).
func NewItemset(items ...Item) Itemset { return pattern.NewItemset(items...) }

// CatItem builds a categorical attribute=value condition.
func CatItem(attr, code int) Item { return pattern.CatItem(attr, code) }

// RangeItem builds a continuous attribute∈(lo,hi] condition.
func RangeItem(attr int, lo, hi float64) Item { return pattern.RangeItem(attr, lo, hi) }

// FromCSV reads a headered CSV into a Dataset; columns whose values all
// parse as numbers become continuous attributes.
func FromCSV(r io.Reader, opts CSVOptions) (*Dataset, error) {
	return dataset.FromCSV(r, opts)
}

// WriteCSV writes a dataset (attributes plus a trailing group column).
func WriteCSV(w io.Writer, d *Dataset, groupColumn string) error {
	return dataset.WriteCSV(w, d, groupColumn)
}

// Mine runs the SDAD-CS contrast pattern search.
func Mine(d *Dataset, cfg Config) Result { return core.Mine(d, cfg) }

// NewMetricsRecorder returns an enabled instrumentation recorder; assign
// it to Config.Metrics (and/or StreamConfig.Mining.Metrics) to collect
// live counters, then read Result.Metrics or call WriteMetrics.
func NewMetricsRecorder() *MetricsRecorder { return metrics.New() }

// WriteMetrics dumps a recorder's snapshot as indented, expvar-style JSON.
func WriteMetrics(w io.Writer, r *MetricsRecorder) error { return metrics.WriteJSON(w, r) }

// MetricsHandler serves a recorder's snapshot as JSON — mount it on any
// mux for a live metrics endpoint (cmd/monitor -metrics does this).
func MetricsHandler(r *MetricsRecorder) http.Handler { return metrics.Handler(r) }

// NewTracer returns an enabled decision tracer with the given event
// capacity (0 = the 65536-event default); assign it to Config.Trace
// (and/or StreamConfig.Mining.Trace), then read Result.Trace.
func NewTracer(capacity int) *Tracer { return trace.New(capacity) }

// WriteTraceJSONL writes a trace as JSON Lines: one event per line, fixed
// field order, append-friendly across stream-window segments.
func WriteTraceJSONL(w io.Writer, tr *Trace) error { return trace.WriteJSONL(w, tr) }

// ReadTraceJSONL decodes a JSONL trace stream (possibly a concatenation of
// segments) back into a Trace.
func ReadTraceJSONL(r io.Reader) (*Trace, error) { return trace.ReadJSONL(r) }

// WriteTraceChrome writes a trace in the Chrome trace-event format —
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing, with search
// levels and SDAD-CS invocations as duration spans and per-level workers
// as threads.
func WriteTraceChrome(w io.Writer, tr *Trace) error { return trace.WriteChrome(w, tr) }

// Explain reconstructs the recorded decision chain for one itemset from a
// mining trace: the provenance answer to "why is this pattern (not) in the
// result". Render with Explanation.Format.
func Explain(tr *Trace, set Itemset) Explanation { return core.Explain(tr, set) }

// ParseItemsetKey inverts Itemset.Key — the canonical keys trace events
// carry.
func ParseItemsetKey(key string) (Itemset, error) { return pattern.ParseKey(key) }

// MineContext is Mine with cancellation: the search checks ctx between
// levels and returns the (sorted, filtered) contrasts found so far plus
// ctx.Err() when cancelled.
func MineContext(ctx context.Context, d *Dataset, cfg Config) (Result, error) {
	return core.MineContext(ctx, d, cfg)
}

// Classify evaluates contrasts' meaningfulness (non-redundant, productive,
// independently productive) at significance level alpha.
func Classify(d *Dataset, cs []Contrast, alpha float64) []Meaningfulness {
	return core.Classify(d, cs, alpha)
}

// ValidateHoldout re-evaluates mined contrasts on held-out rows (see
// View.StratifiedSplit): out-of-sample replication is the direct check
// against spurious discoveries.
func ValidateHoldout(holdout View, cs []Contrast, delta, alpha float64) []Validation {
	return core.ValidateHoldout(holdout, cs, delta, alpha)
}

// ReplicationRate is the fraction of contrasts that replicate on a
// holdout.
func ReplicationRate(vs []Validation) float64 { return core.ReplicationRate(vs) }

// AllPruning enables every pruning strategy (the default).
func AllPruning() Pruning { return core.AllPruning() }

// NPPruning is the "no pruning" variant used in the paper's quantitative
// comparisons.
func NPPruning() Pruning { return core.NPPruning() }

// Baseline configurations re-exported for comparison studies.
type (
	// STUCCOConfig configures categorical-only contrast set mining.
	STUCCOConfig = stucco.Config
	// MVDConfig configures Bay's multivariate discretization.
	MVDConfig = mvd.Config
	// SubgroupConfig configures Cortana-style subgroup discovery.
	SubgroupConfig = subgroup.Config
	// QARConfig configures the Srikant–Agrawal equi-depth discretizer.
	QARConfig = qar.Config
)

// MineSTUCCO mines contrast sets over the categorical attributes only
// (Bay & Pazzani's STUCCO), or over pre-binned data.
func MineSTUCCO(d *Dataset, cfg STUCCOConfig) []Contrast {
	return stucco.Mine(d, cfg).Contrasts
}

// Unified engine API: every algorithm — the SDAD-CS search and the four
// baselines — behind one canonical configuration.
type (
	// MinerConfig is the canonical cross-algorithm configuration: set
	// Algorithm to "sdadcs" (default), "stucco", "mvd", "entropy" or
	// "subgroup" and the shared knobs mean the same thing everywhere.
	MinerConfig = engine.Config
	// MinerResult is the normalized outcome: contrasts, search stats, the
	// binned dataset for globally-discretizing algorithms, and the shared
	// metrics/trace snapshots.
	MinerResult = engine.Result
)

// MineWith dispatches to the configured algorithm. A canceled ctx returns
// the partial result plus ctx.Err(); a malformed config returns joined
// field errors and an empty result.
func MineWith(ctx context.Context, d *Dataset, cfg MinerConfig) (MinerResult, error) {
	return engine.MineContext(ctx, d, cfg)
}

// Algorithms returns the registered algorithm names.
func Algorithms() []string { return engine.Algorithms() }

// MineSubgroups runs Cortana-style beam-search subgroup discovery (WRACC,
// interval conditions), pooling subgroups from every target group.
func MineSubgroups(d *Dataset, cfg SubgroupConfig) []Contrast {
	return subgroup.Mine(d, cfg).Contrasts
}

// MineQAR discretizes with Srikant & Agrawal's equi-depth partitioning
// (consecutive partitions below minsup merged) and mines the binned data —
// the quantitative-association-rules approach the paper's §2 discusses.
func MineQAR(d *Dataset, cfg QARConfig, search STUCCOConfig) ([]Contrast, *Dataset) {
	res := qar.Mine(d, cfg, search)
	return res.Contrasts, res.Binned
}

// Discretized applies cut points to continuous attributes, yielding a
// categorical copy of the dataset (used by the global pre-binning
// baselines and available for custom pipelines).
func Discretized(d *Dataset, cuts map[int][]float64) *Dataset {
	return dataset.Discretized(d, cuts)
}

// Streaming types re-exported from internal/stream: a sliding-window
// contrast monitor for the "timely feedback" deployment of §1/§6.
type (
	// StreamSchema declares a stream's columns.
	StreamSchema = stream.Schema
	// StreamConfig controls the monitor (window size, re-mine cadence,
	// alerting floor).
	StreamConfig = stream.Config
	// StreamEvent is one reported pattern change.
	StreamEvent = stream.Event
	// StreamMonitor tracks contrast patterns over a sliding window.
	StreamMonitor = stream.Monitor
)

// Stream event kinds.
const (
	StreamAppeared    = stream.Appeared
	StreamDisappeared = stream.Disappeared
	StreamDrifted     = stream.Drifted
)

// ErrWindowNotMineable is returned by StreamMonitor.Append when a due
// re-mine found the window unmineable (fewer than two groups). The monitor
// stays usable and retries at the next due re-mine; check with errors.Is
// to treat it as a skipped tick rather than a fatal condition.
var ErrWindowNotMineable = stream.ErrWindowNotMineable

// NewStreamMonitor builds a sliding-window contrast pattern monitor. A
// malformed configuration (negative window, cadence or thresholds, or an
// invalid embedded Mining config) is rejected up front; the error joins
// typed field errors (stream.FieldError / core.FieldError) addressable
// with errors.As.
func NewStreamMonitor(schema StreamSchema, cfg StreamConfig) (*StreamMonitor, error) {
	return stream.NewMonitor(schema, cfg)
}

// ReportFormat names an output renderer for WriteReport.
type ReportFormat = report.Format

// Output formats for WriteReport.
const (
	ReportText     = report.FormatText
	ReportMarkdown = report.FormatMarkdown
	ReportCSV      = report.FormatCSV
	ReportJSON     = report.FormatJSON
)

// WriteReport renders mined contrasts as text, Markdown, CSV or JSON.
func WriteReport(w io.Writer, format ReportFormat, d *Dataset, cs []Contrast) error {
	return report.Write(w, format, d, cs)
}
