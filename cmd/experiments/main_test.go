package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleArtifact(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-run", "f2", "-quick"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	s := out.String()
	if !strings.Contains(s, "Figure 2") || !strings.Contains(s, "[f2 completed") {
		t.Errorf("output missing artifact: %s", s)
	}
}

func TestRunMultipleArtifacts(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-run", "t2, f2", "-quick"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	s := out.String()
	if !strings.Contains(s, "Table 2") || !strings.Contains(s, "Figure 2") {
		t.Error("missing artifacts in combined run")
	}
}

func TestRunOnlyFilter(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-run", "t6", "-quick", "-only", "Transfusion"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	s := out.String()
	if !strings.Contains(s, "Transfusion") {
		t.Error("filtered dataset missing")
	}
	if strings.Contains(s, "Covtype") {
		t.Error("filter did not exclude other datasets")
	}
}

func TestRunUnknownArtifact(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-run", "bogus"}, &out, &errBuf); code != 2 {
		t.Errorf("unknown artifact: exit %d, want 2", code)
	}
	if code := run([]string{"-notaflag"}, &out, &errBuf); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
}
