// Command experiments regenerates the paper's tables and figures
// (see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	experiments -run all            # everything (minutes)
//	experiments -run t4 -quick      # one artifact on shrunken data
//
// Artifacts: f2 f3 f4 t1 t2 t3 t4 t5 t6 t7 scaling ablation.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"sdadcs/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI; factored out of main for testing.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runArg = fs.String("run", "all", "comma-separated artifacts: f2,f3,f4,t1..t7,scaling,ablation or all")
		quick  = fs.Bool("quick", false, "shrink datasets (4x fewer rows)")
		seed   = fs.Int64("seed", 0, "generator seed (0 = default)")
		depth  = fs.Int("depth", 0, "search depth (0 = default 2)")
		topk   = fs.Int("topk", 0, "patterns per algorithm (0 = default 100)")
		only   = fs.String("only", "", "comma-separated dataset filter for t4/t5/t6")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	opts := experiments.Options{Seed: *seed, Depth: *depth, TopK: *topk, Quick: *quick}
	if *only != "" {
		opts.Only = strings.Split(*only, ",")
	}
	want := map[string]bool{}
	for _, part := range strings.Split(*runArg, ",") {
		want[strings.TrimSpace(strings.ToLower(part))] = true
	}
	all := want["all"]
	ran := 0

	exec := func(key string, f func()) {
		if !all && !want[key] {
			return
		}
		start := time.Now()
		f()
		fmt.Fprintf(stdout, "[%s completed in %s]\n\n", key, time.Since(start).Round(time.Millisecond))
		ran++
	}

	exec("f2", func() { experiments.Figure2(opts).Table.Fprint(stdout) })
	exec("f3", func() {
		for _, t := range experiments.Figure3(opts).Tables {
			t.Fprint(stdout)
		}
	})
	exec("f4", func() {
		for _, t := range experiments.Figure4(opts).Tables {
			t.Fprint(stdout)
		}
	})
	exec("t1", func() { experiments.Table1(opts).Table.Fprint(stdout) })
	exec("t2", func() { experiments.Table2(opts).Fprint(stdout) })
	exec("t3", func() { experiments.Table3(opts).Table.Fprint(stdout) })
	exec("t4", func() { experiments.Table4(opts).Table.Fprint(stdout) })
	exec("t5", func() { experiments.Table5(opts).Table.Fprint(stdout) })
	exec("t6", func() { experiments.Table6(opts).Table.Fprint(stdout) })
	exec("t7", func() { experiments.Table7(opts).Table.Fprint(stdout) })
	exec("scaling", func() { experiments.Scaling(opts).Table.Fprint(stdout) })
	exec("ablation", func() { experiments.Ablation(opts).Table.Fprint(stdout) })
	exec("validation", func() { experiments.Validation(opts).Table.Fprint(stdout) })

	if ran == 0 {
		fmt.Fprintf(stderr, "experiments: nothing matched -run=%q\n", *runArg)
		return 2
	}
	return 0
}
