package main

import (
	"bytes"
	"strings"
	"testing"

	"sdadcs"
)

func TestRunEmitsCSV(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-dataset", "simulated3", "-rows", "100", "-seed", "9"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	d, err := sdadcs.FromCSV(&out, sdadcs.CSVOptions{GroupColumn: "group"})
	if err != nil {
		t.Fatal(err)
	}
	if d.Rows() != 100 || d.NumAttrs() != 2 {
		t.Errorf("shape: rows=%d attrs=%d", d.Rows(), d.NumAttrs())
	}
}

func TestRunList(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-list"}, &out, &errBuf); code != 0 {
		t.Fatal("list failed")
	}
	s := out.String()
	for _, want := range []string{"figure2", "manufacturing", "uci:Spambase", "uci:Covtype"} {
		if !strings.Contains(s, want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestRunAllGenerators(t *testing.T) {
	names := []string{
		"figure2", "simulated1", "simulated2", "simulated3", "simulated4",
		"uci:BreastCancer",
	}
	for _, name := range names {
		var out, errBuf bytes.Buffer
		code := run([]string{"-dataset", name, "-rows", "120", "-seed", "3"}, &out, &errBuf)
		if code != 0 {
			t.Errorf("%s: exit %d (%s)", name, code, errBuf.String())
			continue
		}
		if _, err := sdadcs.FromCSV(&out, sdadcs.CSVOptions{GroupColumn: "group"}); err != nil {
			t.Errorf("%s: emitted invalid CSV: %v", name, err)
		}
	}
}

func TestRunAdultAndManufacturingRowSplits(t *testing.T) {
	for _, name := range []string{"adult", "manufacturing"} {
		var out, errBuf bytes.Buffer
		code := run([]string{"-dataset", name, "-rows", "200", "-seed", "5"}, &out, &errBuf)
		if code != 0 {
			t.Fatalf("%s: exit %d", name, code)
		}
		d, err := sdadcs.FromCSV(&out, sdadcs.CSVOptions{GroupColumn: "group"})
		if err != nil {
			t.Fatal(err)
		}
		if d.Rows() != 200 {
			t.Errorf("%s: rows = %d, want 200", name, d.Rows())
		}
		if d.NumGroups() != 2 {
			t.Errorf("%s: groups = %d", name, d.NumGroups())
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-dataset", "nope"}, &out, &errBuf); code != 2 {
		t.Errorf("unknown dataset: exit %d, want 2", code)
	}
	if code := run([]string{"-dataset", "uci:nope"}, &out, &errBuf); code != 2 {
		t.Errorf("unknown uci shape: exit %d, want 2", code)
	}
	if code := run([]string{"-badflag"}, &out, &errBuf); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
}
