// Command datagen emits the paper's synthetic datasets as CSV.
//
// Usage:
//
//	datagen -dataset simulated2 -rows 2000 -seed 7 > sim2.csv
//
// Available datasets: figure2, simulated1..simulated4, adult,
// manufacturing, and the ten Table 2 shapes via uci:<Name>
// (e.g. uci:Spambase). The group column is named "group".
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sdadcs"
	"sdadcs/internal/datagen"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI; factored out of main for testing.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name = fs.String("dataset", "simulated1", "dataset to generate")
		rows = fs.Int("rows", 0, "row count (0 = generator default)")
		seed = fs.Int64("seed", 1, "random seed")
		list = fs.Bool("list", false, "list available datasets")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		fmt.Fprintln(stdout, "figure2 simulated1 simulated2 simulated3 simulated4 adult manufacturing")
		for _, s := range datagen.Table2Specs(*seed) {
			fmt.Fprintln(stdout, "uci:"+s.Name)
		}
		return 0
	}

	d, err := generate(*name, *seed, *rows)
	if err != nil {
		fmt.Fprintln(stderr, "datagen:", err)
		return 2
	}
	if err := sdadcs.WriteCSV(stdout, d, "group"); err != nil {
		fmt.Fprintln(stderr, "datagen:", err)
		return 1
	}
	return 0
}

func generate(name string, seed int64, rows int) (*sdadcs.Dataset, error) {
	switch name {
	case "figure2":
		return datagen.Figure2(seed, rows), nil
	case "simulated1":
		return datagen.Simulated1(seed, rows), nil
	case "simulated2":
		return datagen.Simulated2(seed, rows), nil
	case "simulated3":
		return datagen.Simulated3(seed, rows), nil
	case "simulated4":
		return datagen.Simulated4(seed, rows), nil
	case "adult":
		cfg := datagen.AdultConfig{Seed: seed}
		if rows > 0 {
			cfg.Bachelors = rows * 93 / 100
			cfg.Doctorate = rows - cfg.Bachelors
		}
		return datagen.Adult(cfg), nil
	case "manufacturing":
		cfg := datagen.ManufacturingConfig{Seed: seed}
		if rows > 0 {
			cfg.Population = rows * 4 / 5
			cfg.Failed = rows - cfg.Population
		}
		return datagen.Manufacturing(cfg), nil
	}
	if uciName, ok := strings.CutPrefix(name, "uci:"); ok {
		for _, spec := range datagen.Table2Specs(seed) {
			if strings.EqualFold(spec.Name, uciName) {
				return datagen.UCIDataset(spec), nil
			}
		}
		return nil, fmt.Errorf("unknown UCI shape %q (use -list)", uciName)
	}
	return nil, fmt.Errorf("unknown dataset %q (use -list)", name)
}
