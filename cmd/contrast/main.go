// Command contrast mines contrast patterns from a CSV file with SDAD-CS
// or one of the baseline algorithms.
//
// Usage:
//
//	contrast -input data.csv -group label [-algorithm sdadcs] [flags]
//
// The group column is required; every other column becomes an attribute
// (numeric columns are continuous, everything else categorical). Output is
// one contrast per line with per-group supports and the chi-square
// p-value; only meaningful contrasts are shown unless -np is set.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"sdadcs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI; factored out of main for testing.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("contrast", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		input     = fs.String("input", "", "input CSV file (required)")
		group     = fs.String("group", "", "name of the group column (required)")
		algorithm = fs.String("algorithm", "sdadcs", "mining algorithm: "+strings.Join(sdadcs.Algorithms(), " | "))
		alpha     = fs.Float64("alpha", 0.05, "initial significance level")
		delta     = fs.Float64("delta", 0.1, "minimum support difference")
		depth     = fs.Int("depth", 5, "maximum attributes per pattern")
		topk      = fs.Int("topk", 100, "number of patterns to report")
		measure   = fs.String("measure", "surprising", "interest measure: "+strings.Join(sdadcs.MeasureNames(), " | "))
		np        = fs.Bool("np", false, "disable meaningfulness pruning and filtering (SDAD-CS NP)")
		workers   = fs.Int("workers", 1, "parallel workers for per-level mining")
		forceCat  = fs.String("categorical", "", "comma-separated columns to force categorical")
		format    = fs.String("format", "text", "output format: text | markdown | csv | json")
		metricsF  = fs.Bool("metrics", false, "collect pipeline metrics and dump a JSON snapshot to stderr")
		traceF    = fs.String("trace", "", "record the decision trace and write it to FILE as JSON Lines")
		traceC    = fs.String("trace-chrome", "", "record the decision trace and write it to FILE in Chrome trace-event format (load in Perfetto or chrome://tracing)")
		explainF  = fs.String("explain", "", "explain one pattern's provenance instead of printing the report: comma-separated conditions, col=value (categorical) or col=lo..hi (continuous; inf/-inf allowed)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *input == "" || *group == "" {
		fmt.Fprintln(stderr, "usage: contrast -input data.csv -group <column> [flags]")
		fs.PrintDefaults()
		return 2
	}
	m, ok := sdadcs.MeasureByName(*measure)
	if !ok {
		fmt.Fprintf(stderr, "contrast: unknown measure %q (want one of %s)\n",
			*measure, strings.Join(sdadcs.MeasureNames(), ", "))
		return 2
	}

	f, err := os.Open(*input)
	if err != nil {
		fmt.Fprintln(stderr, "contrast:", err)
		return 1
	}
	defer f.Close()

	var forced []string
	if *forceCat != "" {
		forced = strings.Split(*forceCat, ",")
	}
	d, err := sdadcs.FromCSV(f, sdadcs.CSVOptions{
		GroupColumn:      *group,
		ForceCategorical: forced,
		Name:             *input,
	})
	if err != nil {
		fmt.Fprintln(stderr, "contrast:", err)
		return 1
	}

	cfg := sdadcs.MinerConfig{
		Algorithm: *algorithm,
		Alpha:     *alpha,
		Delta:     *delta,
		MaxDepth:  *depth,
		TopK:      *topk,
		Workers:   *workers,
		Measure:   m,
		NP:        *np,
	}
	var rec *sdadcs.MetricsRecorder
	if *metricsF {
		rec = sdadcs.NewMetricsRecorder()
		cfg.Metrics = rec
	}
	if *traceF != "" || *traceC != "" || *explainF != "" {
		// -explain needs the decision record even when no export was asked.
		cfg.Trace = sdadcs.NewTracer(0)
	}
	res, err := sdadcs.MineWith(context.Background(), d, cfg)
	if err != nil {
		fmt.Fprintln(stderr, "contrast:", err)
		return 2
	}
	// Globally-discretizing algorithms (mvd, entropy) emit contrasts whose
	// items refer to the binned view; render and explain against it.
	if res.Binned != nil {
		d = res.Binned
	}
	if rec != nil {
		// Stderr keeps the report stream on stdout machine-readable.
		if err := sdadcs.WriteMetrics(stderr, rec); err != nil {
			fmt.Fprintln(stderr, "contrast: writing metrics:", err)
		}
	}
	if *traceF != "" {
		if err := writeTraceFile(*traceF, res.Trace, sdadcs.WriteTraceJSONL); err != nil {
			fmt.Fprintln(stderr, "contrast:", err)
			return 1
		}
	}
	if *traceC != "" {
		if err := writeTraceFile(*traceC, res.Trace, sdadcs.WriteTraceChrome); err != nil {
			fmt.Fprintln(stderr, "contrast:", err)
			return 1
		}
	}
	if *explainF != "" {
		set, err := parsePatternSpec(d, *explainF)
		if err != nil {
			fmt.Fprintln(stderr, "contrast:", err)
			return 2
		}
		fmt.Fprint(stdout, sdadcs.Explain(res.Trace, set).Format(d))
		return 0
	}

	if *format == "text" {
		fmt.Fprintf(stdout, "dataset: %d rows, %d attributes, %d groups\n",
			d.Rows(), d.NumAttrs(), d.NumGroups())
		fmt.Fprintf(stdout, "mined %d contrasts (%d partitions evaluated, %d pruned, %d filtered)\n\n",
			len(res.Contrasts), res.Stats.PartitionsEvaluated,
			res.Stats.SpacesPruned, res.Stats.FilteredOut)
	}
	if err := sdadcs.WriteReport(stdout, sdadcs.ReportFormat(*format), d, res.Contrasts); err != nil {
		fmt.Fprintln(stderr, "contrast:", err)
		return 2
	}
	return 0
}

// writeTraceFile exports the trace snapshot to path with the given encoder.
func writeTraceFile(path string, tr *sdadcs.Trace, write func(io.Writer, *sdadcs.Trace) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f, tr); err != nil {
		f.Close()
		return fmt.Errorf("writing trace %s: %w", path, err)
	}
	return f.Close()
}

// parsePatternSpec parses the -explain pattern syntax against the dataset:
// comma-separated conditions, each "col=value" for a categorical column or
// "col=lo..hi" for a continuous one ((lo, hi] semantics; inf/-inf open an
// end).
func parsePatternSpec(d *sdadcs.Dataset, spec string) (sdadcs.Itemset, error) {
	var items []sdadcs.Item
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.IndexByte(part, '=')
		if eq < 0 {
			return sdadcs.Itemset{}, fmt.Errorf("bad condition %q (want col=value or col=lo..hi)", part)
		}
		name, val := part[:eq], part[eq+1:]
		attr := d.AttrIndex(name)
		if attr < 0 {
			return sdadcs.Itemset{}, fmt.Errorf("unknown column %q", name)
		}
		if d.Attr(attr).Kind == sdadcs.Continuous {
			dots := strings.Index(val, "..")
			if dots < 0 {
				return sdadcs.Itemset{}, fmt.Errorf("continuous column %q needs a range, e.g. %s=0..10", name, name)
			}
			lo, err := parseBound(val[:dots])
			if err != nil {
				return sdadcs.Itemset{}, fmt.Errorf("bad lower bound in %q: %v", part, err)
			}
			hi, err := parseBound(val[dots+2:])
			if err != nil {
				return sdadcs.Itemset{}, fmt.Errorf("bad upper bound in %q: %v", part, err)
			}
			items = append(items, sdadcs.RangeItem(attr, lo, hi))
			continue
		}
		code := -1
		for c, v := range d.Domain(attr) {
			if v == val {
				code = c
				break
			}
		}
		if code < 0 {
			return sdadcs.Itemset{}, fmt.Errorf("column %q has no value %q", name, val)
		}
		items = append(items, sdadcs.CatItem(attr, code))
	}
	if len(items) == 0 {
		return sdadcs.Itemset{}, fmt.Errorf("empty pattern spec")
	}
	return sdadcs.NewItemset(items...), nil
}

// parseBound parses one range endpoint; "inf"/"-inf" open the interval.
func parseBound(s string) (float64, error) {
	switch strings.TrimSpace(s) {
	case "-inf":
		return math.Inf(-1), nil
	case "inf", "+inf":
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(strings.TrimSpace(s), 64)
}
