// Command contrast mines contrast patterns from a CSV file with SDAD-CS.
//
// Usage:
//
//	contrast -input data.csv -group label [flags]
//
// The group column is required; every other column becomes an attribute
// (numeric columns are continuous, everything else categorical). Output is
// one contrast per line with per-group supports and the chi-square
// p-value; only meaningful contrasts are shown unless -np is set.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sdadcs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI; factored out of main for testing.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("contrast", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		input    = fs.String("input", "", "input CSV file (required)")
		group    = fs.String("group", "", "name of the group column (required)")
		alpha    = fs.Float64("alpha", 0.05, "initial significance level")
		delta    = fs.Float64("delta", 0.1, "minimum support difference")
		depth    = fs.Int("depth", 5, "maximum attributes per pattern")
		topk     = fs.Int("topk", 100, "number of patterns to report")
		measure  = fs.String("measure", "surprising", "interest measure: diff | pr | surprising")
		np       = fs.Bool("np", false, "disable meaningfulness pruning and filtering (SDAD-CS NP)")
		workers  = fs.Int("workers", 1, "parallel workers for per-level mining")
		forceCat = fs.String("categorical", "", "comma-separated columns to force categorical")
		format   = fs.String("format", "text", "output format: text | markdown | csv | json")
		metricsF = fs.Bool("metrics", false, "collect pipeline metrics and dump a JSON snapshot to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *input == "" || *group == "" {
		fmt.Fprintln(stderr, "usage: contrast -input data.csv -group <column> [flags]")
		fs.PrintDefaults()
		return 2
	}
	m, err := parseMeasure(*measure)
	if err != nil {
		fmt.Fprintln(stderr, "contrast:", err)
		return 2
	}

	f, err := os.Open(*input)
	if err != nil {
		fmt.Fprintln(stderr, "contrast:", err)
		return 1
	}
	defer f.Close()

	var forced []string
	if *forceCat != "" {
		forced = strings.Split(*forceCat, ",")
	}
	d, err := sdadcs.FromCSV(f, sdadcs.CSVOptions{
		GroupColumn:      *group,
		ForceCategorical: forced,
		Name:             *input,
	})
	if err != nil {
		fmt.Fprintln(stderr, "contrast:", err)
		return 1
	}

	cfg := sdadcs.Config{
		Alpha:    *alpha,
		Delta:    *delta,
		MaxDepth: *depth,
		TopK:     *topk,
		Workers:  *workers,
		Measure:  m,
	}
	if *np {
		cfg = cfg.NP()
	}
	var rec *sdadcs.MetricsRecorder
	if *metricsF {
		rec = sdadcs.NewMetricsRecorder()
		cfg.Metrics = rec
	}
	res := sdadcs.Mine(d, cfg)
	if rec != nil {
		// Stderr keeps the report stream on stdout machine-readable.
		if err := sdadcs.WriteMetrics(stderr, rec); err != nil {
			fmt.Fprintln(stderr, "contrast: writing metrics:", err)
		}
	}

	if *format == "text" {
		fmt.Fprintf(stdout, "dataset: %d rows, %d attributes, %d groups\n",
			d.Rows(), d.NumAttrs(), d.NumGroups())
		fmt.Fprintf(stdout, "mined %d contrasts (%d partitions evaluated, %d pruned, %d filtered)\n\n",
			len(res.Contrasts), res.Stats.PartitionsEvaluated,
			res.Stats.SpacesPruned, res.Stats.FilteredOut)
	}
	if err := sdadcs.WriteReport(stdout, sdadcs.ReportFormat(*format), d, res.Contrasts); err != nil {
		fmt.Fprintln(stderr, "contrast:", err)
		return 2
	}
	return 0
}

func parseMeasure(s string) (sdadcs.Measure, error) {
	switch s {
	case "diff":
		return sdadcs.SupportDiff, nil
	case "pr":
		return sdadcs.PurityRatio, nil
	case "surprising":
		return sdadcs.SurprisingMeasure, nil
	default:
		return 0, fmt.Errorf("unknown measure %q (want diff, pr or surprising)", s)
	}
}
