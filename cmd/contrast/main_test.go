package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sdadcs"
)

func writeCSV(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	b.WriteString("x,c,label\n")
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			b.WriteString("0.2,low,A\n")
		} else {
			b.WriteString("0.8,high,B\n")
		}
	}
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEndToEnd(t *testing.T) {
	path := writeCSV(t)
	var out, errBuf bytes.Buffer
	code := run([]string{"-input", path, "-group", "label"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errBuf.String())
	}
	s := out.String()
	if !strings.Contains(s, "200 rows") {
		t.Errorf("missing dataset line: %s", s)
	}
	if !strings.Contains(s, "score=") {
		t.Errorf("no contrasts printed: %s", s)
	}
}

func TestRunNPAndMeasures(t *testing.T) {
	path := writeCSV(t)
	for _, m := range []string{"diff", "pr", "surprising", "wracc", "growth", "contrast-rules"} {
		var out, errBuf bytes.Buffer
		code := run([]string{"-input", path, "-group", "label", "-measure", m, "-np"}, &out, &errBuf)
		if code != 0 {
			t.Errorf("measure %s: exit %d (%s)", m, code, errBuf.String())
		}
	}
}

func TestRunAlgorithms(t *testing.T) {
	path := writeCSV(t)
	for _, alg := range sdadcs.Algorithms() {
		var out, errBuf bytes.Buffer
		code := run([]string{"-input", path, "-group", "label", "-algorithm", alg}, &out, &errBuf)
		if code != 0 {
			t.Errorf("algorithm %s: exit %d (%s)", alg, code, errBuf.String())
		}
		if !strings.Contains(out.String(), "200 rows") {
			t.Errorf("algorithm %s: missing dataset line: %s", alg, out.String())
		}
	}
	var out, errBuf bytes.Buffer
	if code := run([]string{"-input", path, "-group", "label", "-algorithm", "apriori"}, &out, &errBuf); code != 2 {
		t.Errorf("bad algorithm: exit %d, want 2", code)
	}
	if !strings.Contains(errBuf.String(), "Algorithm") {
		t.Errorf("bad algorithm error should name the field: %s", errBuf.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run(nil, &out, &errBuf); code != 2 {
		t.Errorf("missing flags: exit %d, want 2", code)
	}
	if code := run([]string{"-input", "x.csv"}, &out, &errBuf); code != 2 {
		t.Errorf("missing group: exit %d, want 2", code)
	}
	if code := run([]string{"-input", "x.csv", "-group", "g", "-measure", "bogus"}, &out, &errBuf); code != 2 {
		t.Errorf("bad measure: exit %d, want 2", code)
	}
	if code := run([]string{"-input", "/nonexistent.csv", "-group", "g"}, &out, &errBuf); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
	if code := run([]string{"-bogusflag"}, &out, &errBuf); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
}

func TestRunOutputFormats(t *testing.T) {
	path := writeCSV(t)
	for _, format := range []string{"markdown", "csv", "json"} {
		var out, errBuf bytes.Buffer
		code := run([]string{"-input", path, "-group", "label", "-format", format}, &out, &errBuf)
		if code != 0 {
			t.Errorf("format %s: exit %d (%s)", format, code, errBuf.String())
			continue
		}
		s := out.String()
		if strings.Contains(s, "dataset:") {
			t.Errorf("format %s should not include the text preamble", format)
		}
		switch format {
		case "markdown":
			if !strings.Contains(s, "| ---") {
				t.Error("markdown separator missing")
			}
		case "csv":
			if !strings.HasPrefix(s, "rank,") {
				t.Error("csv header missing")
			}
		case "json":
			if !strings.HasPrefix(strings.TrimSpace(s), "[") {
				t.Error("json array missing")
			}
		}
	}
	var out, errBuf bytes.Buffer
	if code := run([]string{"-input", path, "-group", "label", "-format", "bogus"}, &out, &errBuf); code != 2 {
		t.Errorf("bad format: exit %d, want 2", code)
	}
}

func TestRunBadGroupColumn(t *testing.T) {
	path := writeCSV(t)
	var out, errBuf bytes.Buffer
	if code := run([]string{"-input", path, "-group", "missing"}, &out, &errBuf); code != 1 {
		t.Errorf("bad group column: exit %d, want 1", code)
	}
	if !strings.Contains(errBuf.String(), "missing") {
		t.Error("error message should mention the column")
	}
}

func TestRunForceCategorical(t *testing.T) {
	path := writeCSV(t)
	var out, errBuf bytes.Buffer
	code := run([]string{"-input", path, "-group", "label", "-categorical", "x"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "x = ") {
		t.Error("forced-categorical attribute should appear as equality items")
	}
}

func TestRunMetricsFlag(t *testing.T) {
	path := writeCSV(t)
	var out, errBuf bytes.Buffer
	code := run([]string{"-input", path, "-group", "label", "-metrics"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errBuf.String())
	}
	var snap sdadcs.MetricsSnapshot
	if err := json.Unmarshal(errBuf.Bytes(), &snap); err != nil {
		t.Fatalf("-metrics stderr is not snapshot JSON: %v\n%s", err, errBuf.String())
	}
	if len(snap.Levels) == 0 {
		t.Errorf("snapshot has no per-level data: %s", errBuf.String())
	}
	if len(snap.Prune) == 0 {
		t.Errorf("snapshot has no prune counters: %s", errBuf.String())
	}
	// Without the flag, stderr stays silent.
	var out2, err2 bytes.Buffer
	if code := run([]string{"-input", path, "-group", "label"}, &out2, &err2); code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if err2.Len() != 0 {
		t.Errorf("stderr not empty without -metrics: %s", err2.String())
	}
}

func TestRunTraceExports(t *testing.T) {
	path := writeCSV(t)
	dir := t.TempDir()
	jsonl := filepath.Join(dir, "trace.jsonl")
	chrome := filepath.Join(dir, "trace.json")
	var out, errBuf bytes.Buffer
	code := run([]string{"-input", path, "-group", "label",
		"-trace", jsonl, "-trace-chrome", chrome}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}

	// The JSONL file round-trips through the public decoder.
	f, err := os.Open(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := sdadcs.ReadTraceJSONL(f)
	if err != nil {
		t.Fatalf("decoding -trace output: %v", err)
	}
	if len(tr.Events) == 0 {
		t.Error("-trace wrote no events")
	}

	// The Chrome file is one valid JSON array with metadata up front.
	raw, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("-trace-chrome output is not a JSON array: %v", err)
	}
	if len(events) < 3 || events[0]["name"] != "process_name" {
		t.Errorf("chrome trace malformed: %d events", len(events))
	}
}

func TestRunExplainFlag(t *testing.T) {
	path := writeCSV(t)
	var out, errBuf bytes.Buffer
	code := run([]string{"-input", path, "-group", "label",
		"-explain", "c=low"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	s := out.String()
	if !strings.Contains(s, "pattern: c = low") || !strings.Contains(s, "verdict: ") {
		t.Errorf("explain output malformed:\n%s", s)
	}
	if strings.Contains(s, "score=") {
		t.Error("-explain must replace the report output")
	}

	// A continuous range condition parses too.
	out.Reset()
	errBuf.Reset()
	code = run([]string{"-input", path, "-group", "label",
		"-explain", "x=-inf..0.5"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("range explain exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "verdict: ") {
		t.Errorf("range explain output malformed:\n%s", out.String())
	}
}

func TestRunExplainBadSpec(t *testing.T) {
	path := writeCSV(t)
	// "," is an empty spec after splitting (a bare "" just disables the
	// flag and prints the normal report).
	for _, spec := range []string{"nope=1", "c=missing", "x=5", ",", "c"} {
		var out, errBuf bytes.Buffer
		if code := run([]string{"-input", path, "-group", "label",
			"-explain", spec}, &out, &errBuf); code != 2 {
			t.Errorf("spec %q: exit %d, want 2", spec, code)
		}
	}
}
