// Command serve runs the long-lived mining service: register CSV datasets
// once, then submit asynchronous mine jobs against them over a JSON HTTP
// API with admission control, per-job deadlines and a deduplicating result
// cache (see internal/serve for the endpoint inventory).
//
// Usage:
//
//	serve -addr :8377 [-workers N] [-queue N] [-row-budget N] [-grace 10s]
//	      [-log-level info] [-log-format text|json] [-pprof] [-drain-wait 0s]
//	      [-data-dir DIR]
//
// With -data-dir the dataset registry is persistent: registrations are
// written through to a WAL-backed columnar store under DIR, a restart
// rehydrates the registry from it (same content-hash addresses, no
// re-upload), and row-budget eviction demotes datasets to the on-disk
// cold tier instead of dropping them. Shutdown checkpoints the store.
//
// Structured logs (access lines, job lifecycle with request/job
// correlation IDs, registry events) go to stderr; stdout keeps the two
// operator lines ("listening on", "drained").
//
// SIGINT/SIGTERM drains gracefully: readiness (/readyz) flips to 503
// immediately, -drain-wait leaves load balancers a propagation window
// while everything keeps serving, then the listener stops accepting and
// running jobs get the grace period before their contexts are canceled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sdadcs/internal/obs"
	"sdadcs/internal/serve"
	"sdadcs/internal/store"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI; factored out of main for testing.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", ":8377", "listen address")
		workers   = fs.Int("workers", 0, "mining worker-pool size (0 = GOMAXPROCS)")
		queue     = fs.Int("queue", 64, "pending-job queue depth (full queue => 429)")
		rowBudget = fs.Int("row-budget", 0, "dataset registry row budget; LRU eviction past it (0 = unbounded)")
		cacheN    = fs.Int("cache", 128, "result-cache entries")
		timeout   = fs.Duration("timeout", 5*time.Minute, "default per-job deadline (0 = none)")
		grace     = fs.Duration("grace", 10*time.Second, "drain grace for running jobs on shutdown")
		maxUpload = fs.Int64("max-upload", 64<<20, "maximum dataset registration body in bytes")
		logLevel  = fs.String("log-level", "info", "structured log level: debug, info, warn, error")
		logFormat = fs.String("log-format", "text", "structured log format: text or json")
		pprofOn   = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		drainWait = fs.Duration("drain-wait", 0, "on shutdown, keep serving this long after /readyz turns 503 (LB propagation window)")
		dataDir   = fs.String("data-dir", "", "persist datasets to this directory (WAL-backed store; restart rehydrates the registry)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	log, err := obs.Config{Level: *logLevel, Format: *logFormat, Output: stderr}.NewLogger()
	if err != nil {
		fmt.Fprintln(stderr, "serve:", err)
		return 2
	}

	dt := *timeout
	if dt == 0 {
		dt = -1 // Options treats 0 as "use default"; negative means none.
	}
	var st *store.Store
	if *dataDir != "" {
		st, err = store.Open(*dataDir, store.Options{Logger: log.With("component", "store")})
		if err != nil {
			fmt.Fprintln(stderr, "serve:", err)
			return 1
		}
	}
	s := serve.New(serve.Options{
		Workers:        *workers,
		QueueDepth:     *queue,
		RowBudget:      *rowBudget,
		CacheEntries:   *cacheN,
		DefaultTimeout: dt,
		MaxUploadBytes: *maxUpload,
		Logger:         log,
		EnablePprof:    *pprofOn,
		Store:          st,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "serve:", err)
		return 1
	}
	fmt.Fprintf(stdout, "serve: listening on %s\n", ln.Addr())

	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		// No blanket WriteTimeout: result bodies and trace exports can be
		// large; the header timeout plus the job deadlines bound abuse.
		IdleTimeout: 60 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case <-ctx.Done():
		fmt.Fprintln(stderr, "serve: signal received, draining")
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(stderr, "serve:", err)
			return 1
		}
	}

	// Drain order: readiness flips first so load balancers stop routing
	// (-drain-wait leaves them a propagation window during which every
	// endpoint still serves), then the listener stops accepting — in-flight
	// responses get the grace window too — then the job manager drains, and
	// running mines get the same grace before their contexts are canceled.
	s.StartDrain()
	if *drainWait > 0 {
		time.Sleep(*drainWait)
	}
	sctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		_ = srv.Close()
	}
	s.Close(*grace)
	if st != nil {
		// Jobs are drained; fold the WAL into fresh segments so the next
		// boot recovers from a clean manifest (a crash-path boot replays
		// the WAL instead — same state, slower open).
		if err := st.Checkpoint(); err != nil {
			fmt.Fprintln(stderr, "serve: checkpoint on shutdown:", err)
		}
		if err := st.Close(); err != nil {
			fmt.Fprintln(stderr, "serve: closing store:", err)
		}
	}
	fmt.Fprintln(stdout, "serve: drained")
	return 0
}
