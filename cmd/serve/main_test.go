package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"sdadcs/internal/obs"
)

// TestRunServesAndDrains boots the binary's run() on an ephemeral port,
// registers a dataset and runs one job through the HTTP API, then delivers
// SIGINT to the process and checks run() exits 0 with the drain message.
func TestRunServesAndDrains(t *testing.T) {
	var stdout, stderr safeBuffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-grace", "5s"}, &stdout, &stderr)
	}()

	// The listen line carries the resolved port.
	var base string
	deadline := time.Now().Add(5 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("no listen line; stdout=%q stderr=%q", stdout.String(), stderr.String())
		}
		for _, line := range strings.Split(stdout.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "serve: listening on "); ok {
				base = "http://" + strings.TrimSpace(rest)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Liveness.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}

	// One end-to-end job through the real binary wiring.
	reg, err := json.Marshal(map[string]any{
		"name":         "mini",
		"group_column": "g",
		"csv":          "x,tool,g\n1,a,pass\n2,a,pass\n8,b,fail\n9,b,fail\n1.5,a,pass\n8.5,b,fail\n",
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/v1/datasets", "application/json", bytes.NewReader(reg))
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	var ds struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ds); err != nil {
		t.Fatalf("register decode: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || ds.ID == "" {
		t.Fatalf("register status=%d id=%q", resp.StatusCode, ds.ID)
	}

	job, _ := json.Marshal(map[string]any{"dataset_id": ds.ID})
	resp, err = http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(job))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("submit decode: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	for i := 0; ; i++ {
		resp, err = http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatalf("poll: %v", err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("poll decode: %v", err)
		}
		resp.Body.Close()
		if st.State == "done" {
			break
		}
		if st.State == "failed" || st.State == "canceled" || i > 500 {
			t.Fatalf("job state = %s after %d polls", st.State, i)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Self-signal: run() should drain and return 0.
	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("run() = %d; stderr=%q", code, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run() did not exit after SIGINT")
	}
	if !strings.Contains(stdout.String(), "serve: drained") {
		t.Fatalf("missing drain message; stdout=%q", stdout.String())
	}
}

// TestRunObservabilitySurface: the binary's flag wiring end to end — JSON
// logs on stderr with request IDs, the Prometheus exposition passing the
// strict parser, gated pprof, and the -drain-wait window in which /readyz
// is 503 while /healthz stays 200 and requests still serve.
func TestRunObservabilitySurface(t *testing.T) {
	var stdout, stderr safeBuffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0", "-grace", "5s",
			"-log-format", "json", "-log-level", "info",
			"-pprof", "-drain-wait", "1s",
		}, &stdout, &stderr)
	}()

	var base string
	deadline := time.Now().Add(5 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("no listen line; stdout=%q stderr=%q", stdout.String(), stderr.String())
		}
		for _, line := range strings.Split(stdout.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "serve: listening on "); ok {
				base = "http://" + strings.TrimSpace(rest)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	// Prometheus exposition passes the strict parser.
	code, page := get("/metrics/prometheus")
	if code != http.StatusOK {
		t.Fatalf("prometheus scrape: %d", code)
	}
	if err := obs.LintExposition(page); err != nil {
		t.Fatalf("scrape fails strict parse: %v\n%s", err, page)
	}
	if !bytes.Contains(page, []byte("sdadcs_serve_ready 1")) {
		t.Fatalf("scrape missing readiness gauge:\n%s", page)
	}

	// pprof is mounted (the flag) and readiness is green.
	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("pprof cmdline: %d", code)
	}
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz: %d", code)
	}

	// SIGTERM: within the drain-wait window, /readyz flips to 503 while
	// /healthz keeps answering 200 — the LB propagation contract.
	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	sawNotReady := false
	deadline = time.Now().Add(3 * time.Second)
	for !sawNotReady {
		if time.Now().After(deadline) {
			t.Fatal("readyz never turned 503 after SIGTERM")
		}
		if code, _ := get("/readyz"); code == http.StatusServiceUnavailable {
			sawNotReady = true
		}
		time.Sleep(20 * time.Millisecond)
	}
	if code, body := get("/healthz"); code != http.StatusOK || !bytes.Contains(body, []byte("draining")) {
		t.Fatalf("healthz during drain window: %d %s", code, body)
	}

	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("run() = %d; stderr=%q", code, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run() did not exit after SIGTERM")
	}

	// Structured JSON access logs with request IDs landed on stderr.
	foundAccess := false
	for _, line := range strings.Split(stderr.String(), "\n") {
		if !strings.HasPrefix(line, "{") {
			continue // the plain "signal received" operator line
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		if rec["msg"] == "http request" {
			if id, _ := rec["request_id"].(string); !strings.HasPrefix(id, "req_") {
				t.Fatalf("access log without request_id: %s", line)
			}
			foundAccess = true
		}
	}
	if !foundAccess {
		t.Fatalf("no access-log records on stderr: %q", stderr.String())
	}
}

func TestRunBadLogFlags(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-log-level", "loud"}, &out, &out); code != 2 {
		t.Fatalf("bad log level: run() = %d, want 2", code)
	}
	out.Reset()
	if code := run([]string{"-log-format", "xml"}, &out, &out); code != 2 {
		t.Fatalf("bad log format: run() = %d, want 2", code)
	}
}

func TestRunBadFlags(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &out, &out); code != 2 {
		t.Fatalf("run() = %d, want 2", code)
	}
}

func TestRunListenError(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-addr", "256.256.256.256:1"}, &out, &out); code != 1 {
		t.Fatalf("run() = %d, want 1 (output %q)", code, out.String())
	}
}

// safeBuffer is a bytes.Buffer safe for the writer goroutine + reader poll.
type safeBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *safeBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *safeBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
