package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunValid(t *testing.T) {
	page := "# HELP x_total h\n# TYPE x_total counter\nx_total 1\n"
	var out, errOut bytes.Buffer
	if code := run(strings.NewReader(page), &out, &errOut); code != 0 {
		t.Fatalf("run() = %d, stderr=%q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "ok") {
		t.Fatalf("stdout %q", out.String())
	}
}

func TestRunInvalid(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(strings.NewReader("orphan_total 1\n"), &out, &errOut); code != 1 {
		t.Fatalf("run() = %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "no HELP/TYPE") {
		t.Fatalf("stderr %q", errOut.String())
	}
}

type failingReader struct{}

func (failingReader) Read([]byte) (int, error) { return 0, bytes.ErrTooLarge }

func TestRunReadError(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(failingReader{}, &out, &errOut); code != 1 {
		t.Fatalf("run() = %d, want 1", code)
	}
}
