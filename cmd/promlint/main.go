// Command promlint strict-parses a Prometheus text exposition (v0.0.4)
// from stdin and exits non-zero on the first violation: missing or
// misplaced HELP/TYPE comments, malformed metric or label names, broken
// escaping, duplicate series, non-contiguous families, and histogram
// defects (le buckets out of order, non-cumulative counts, missing +Inf
// terminal or _sum/_count). CI pipes scraped /metrics output through it
// so an encoder regression fails the build, not the dashboard.
//
// Usage:
//
//	curl -s localhost:8377/metrics/prometheus | promlint
package main

import (
	"fmt"
	"io"
	"os"

	"sdadcs/internal/obs"
)

func main() {
	os.Exit(run(os.Stdin, os.Stdout, os.Stderr))
}

// run executes the CLI; factored out of main for testing.
func run(stdin io.Reader, stdout, stderr io.Writer) int {
	data, err := io.ReadAll(stdin)
	if err != nil {
		fmt.Fprintln(stderr, "promlint:", err)
		return 1
	}
	if err := obs.LintExposition(data); err != nil {
		fmt.Fprintln(stderr, "promlint:", err)
		return 1
	}
	fmt.Fprintln(stdout, "promlint: ok")
	return 0
}
