// Command monitor replays a CSV through the sliding-window contrast
// monitor and prints pattern-change alerts — the "timely feedback to the
// engineers" deployment of the paper's introduction, driven from recorded
// line data.
//
// Usage:
//
//	monitor -input line.csv -group test_result -window 2000
//
// Rows are consumed in file order (assumed to be arrival order).
package main

import (
	"context"
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"time"

	"sdadcs"
	"sdadcs/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI; factored out of main for testing.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("monitor", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		input     = fs.String("input", "", "input CSV file (required; rows in arrival order)")
		group     = fs.String("group", "", "name of the group column (required)")
		window    = fs.Int("window", 2000, "sliding window size in rows")
		every     = fs.Int("every", 0, "re-mine cadence in rows (0 = window/4)")
		minScore  = fs.Float64("minscore", 0.2, "alerting floor for appear/disappear events")
		depth     = fs.Int("depth", 2, "maximum attributes per pattern")
		metricsA  = fs.String("metrics", "", "serve live pipeline metrics on this address (e.g. :8080; GET /metrics, ?format=prometheus or /metrics/prometheus for text exposition)")
		traceF    = fs.String("trace", "", "append one decision-trace segment per mined window to FILE as JSON Lines")
		logLevel  = fs.String("log-level", "info", "structured log level: debug, info, warn, error")
		logFormat = fs.String("log-format", "text", "structured log format: text or json")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *input == "" || *group == "" {
		fmt.Fprintln(stderr, "usage: monitor -input data.csv -group <column> [flags]")
		fs.PrintDefaults()
		return 2
	}

	log, err := obs.Config{Level: *logLevel, Format: *logFormat, Output: stderr}.NewLogger()
	if err != nil {
		fmt.Fprintln(stderr, "monitor:", err)
		return 2
	}

	f, err := os.Open(*input)
	if err != nil {
		fmt.Fprintln(stderr, "monitor:", err)
		return 1
	}
	defer f.Close()

	cr := csv.NewReader(f)
	header, err := cr.Read()
	if err != nil {
		fmt.Fprintln(stderr, "monitor: reading header:", err)
		return 1
	}

	// Column plan: the group column, then continuous vs categorical by
	// probing the first data row (numeric → continuous).
	groupCol := -1
	for i, h := range header {
		if h == *group {
			groupCol = i
		}
	}
	if groupCol == -1 {
		fmt.Fprintf(stderr, "monitor: group column %q not found\n", *group)
		return 1
	}
	first, err := cr.Read()
	if err != nil {
		fmt.Fprintln(stderr, "monitor: no data rows:", err)
		return 1
	}
	var contCols, catCols []int
	var schema sdadcs.StreamSchema
	schema.Name = *input
	for i, h := range header {
		if i == groupCol {
			continue
		}
		if _, err := strconv.ParseFloat(first[i], 64); err == nil {
			contCols = append(contCols, i)
			schema.Continuous = append(schema.Continuous, h)
		} else {
			catCols = append(catCols, i)
			schema.Categorical = append(schema.Categorical, h)
		}
	}

	// Replay until EOF or SIGINT: the signal context lets the HTTP server
	// shut down gracefully instead of dying mid-response when the operator
	// interrupts a long replay.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Live metrics endpoint: the recorder is shared with the miner, so a
	// GET /metrics during the replay sees counters moving in real time.
	// The server carries full read/write/idle timeouts — a stalled or idle
	// client cannot pin a connection (and its goroutine) forever. Every
	// route sits behind the RED middleware: access logs with request IDs,
	// latency/error accounting, panic recovery.
	var mrec *sdadcs.MetricsRecorder
	if *metricsA != "" {
		mrec = sdadcs.NewMetricsRecorder()
		ln, lerr := net.Listen("tcp", *metricsA)
		if lerr != nil {
			fmt.Fprintln(stderr, "monitor: metrics listener:", lerr)
			return 1
		}
		httpm := obs.NewHTTPMetrics()
		mw := &obs.Middleware{Log: log.With("component", "monitor.http"), Metrics: httpm}
		jsonHandler := sdadcs.MetricsHandler(mrec)
		promHandler := func(w http.ResponseWriter, _ *http.Request) {
			fams := obs.MinerFamilies("sdadcs_miner_", mrec.Snapshot())
			fams = append(fams, obs.REDFamilies("sdadcs_http_", httpm)...)
			fams = append(fams, obs.RuntimeFamilies()...)
			w.Header().Set("Content-Type", obs.ContentType)
			if werr := obs.WriteExposition(w, fams); werr != nil {
				log.Error("prometheus exposition failed", "component", "monitor.http", "error", werr)
			}
		}
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", mw.Wrap("GET /metrics", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			switch r.URL.Query().Get("format") {
			case "", "json":
				jsonHandler.ServeHTTP(w, r)
			case "prometheus", "prom":
				promHandler(w, r)
			default:
				http.Error(w, fmt.Sprintf("unknown metrics format %q; json or prometheus", r.URL.Query().Get("format")), http.StatusBadRequest)
			}
		})))
		mux.Handle("GET /metrics/prometheus", mw.Wrap("GET /metrics/prometheus", http.HandlerFunc(promHandler)))
		srv := &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       10 * time.Second,
			WriteTimeout:      10 * time.Second,
			IdleTimeout:       60 * time.Second,
		}
		go func() { _ = srv.Serve(ln) }()
		defer func() {
			// Graceful drain: in-flight /metrics responses finish; the
			// listener closes either way once the timeout elapses.
			sctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			if err := srv.Shutdown(sctx); err != nil {
				_ = srv.Close()
			}
		}()
		fmt.Fprintf(stderr, "monitor: serving metrics on http://%s/metrics\n", ln.Addr())
	}

	// Per-window trace segments: the tracer is drained after every re-mine,
	// so FILE accumulates one JSONL segment per mined window (ReadTraceJSONL
	// decodes the concatenation).
	var tracer *sdadcs.Tracer
	var traceOut *os.File
	if *traceF != "" {
		tracer = sdadcs.NewTracer(0)
		traceOut, err = os.Create(*traceF)
		if err != nil {
			fmt.Fprintln(stderr, "monitor:", err)
			return 1
		}
		defer traceOut.Close()
	}

	m, err := sdadcs.NewStreamMonitor(schema, sdadcs.StreamConfig{
		WindowSize:    *window,
		MineEvery:     *every,
		MinEventScore: *minScore,
		Mining: sdadcs.Config{
			Measure:  sdadcs.SurprisingMeasure,
			MaxDepth: *depth,
			Metrics:  mrec,
			Trace:    tracer,
		},
	})
	if err != nil {
		fmt.Fprintln(stderr, "monitor:", err)
		return 1
	}

	rows := 0
	events := 0
	segments := 0
	rec := first
	for ctx.Err() == nil {
		cont := make([]float64, len(contCols))
		ok := true
		for i, c := range contCols {
			v, err := strconv.ParseFloat(rec[c], 64)
			if err != nil {
				ok = false
				break
			}
			cont[i] = v
		}
		if ok {
			cat := make([]string, len(catCols))
			for i, c := range catCols {
				cat[i] = rec[c]
			}
			rows++
			evs, err := m.Append(cont, cat, rec[groupCol])
			if errors.Is(err, sdadcs.ErrWindowNotMineable) {
				// Single-group window at this re-mine tick: keep filling
				// and retry at the next one (reported in the summary).
				err = nil
			}
			if err != nil {
				fmt.Fprintln(stderr, "monitor:", err)
				return 1
			}
			for _, e := range evs {
				events++
				fmt.Fprintf(stdout, "row %6d  [%s]  %s  (score %.2f)\n",
					rows, e.Kind, e.Format, e.Contrast.Score)
			}
			if tracer != nil && m.Mines() > segments {
				// One JSONL segment per mined window; Drain keeps the
				// cumulative volume counters and frees the buffer.
				segments = m.Mines()
				if werr := sdadcs.WriteTraceJSONL(traceOut, tracer.Drain()); werr != nil {
					fmt.Fprintln(stderr, "monitor: writing trace:", werr)
					return 1
				}
			}
		}
		rec, err = cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			fmt.Fprintln(stderr, "monitor:", err)
			return 1
		}
	}
	if ctx.Err() != nil {
		fmt.Fprintln(stderr, "monitor: interrupted, shutting down")
	}
	fmt.Fprintf(stdout, "replayed %d rows, %d windows mined, %d events\n",
		rows, m.Mines(), events)
	if tracer != nil {
		emitted, dropped, hw := tracer.Stats()
		fmt.Fprintf(stdout, "trace: %d segments, %d events (%d dropped, high water %d)\n",
			segments, emitted, dropped, hw)
	}
	if skipped := m.SkippedMines(); skipped > 0 {
		fmt.Fprintf(stdout, "skipped %d unmineable windows (single group)\n", skipped)
	}
	if mrec != nil {
		snap := mrec.Snapshot()
		fmt.Fprintf(stdout, "re-mine latency: %d windows, mean %s, max %s\n",
			snap.Remine.Count, snap.Remine.Mean(),
			time.Duration(snap.Remine.MaxNanos))
	}
	return 0
}
