package main

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"

	"sdadcs"
	"sdadcs/internal/obs"

	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeStreamCSV emits a replay file: normal regime, then a hot regime
// where high temperature on lane "rear" fails.
func writeStreamCSV(t *testing.T) string {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	var b strings.Builder
	b.WriteString("temp,lane,result\n")
	emit := func(n int, hot bool) {
		for i := 0; i < n; i++ {
			temp := 100 + rng.Float64()*100
			lane := []string{"front", "rear"}[rng.Intn(2)]
			result := "pass"
			if hot && temp > 170 && lane == "rear" && rng.Float64() < 0.95 {
				result = "fail"
			} else if rng.Float64() < 0.04 {
				result = "fail"
			}
			fmt.Fprintf(&b, "%.3f,%s,%s\n", temp, lane, result)
		}
	}
	emit(1200, false)
	emit(1600, true)
	path := filepath.Join(t.TempDir(), "stream.csv")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunReplayDetectsChange(t *testing.T) {
	path := writeStreamCSV(t)
	var out, errBuf bytes.Buffer
	code := run([]string{"-input", path, "-group", "result", "-window", "800", "-every", "400"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	s := out.String()
	if !strings.Contains(s, "windows mined") {
		t.Fatalf("missing summary: %s", s)
	}
	if !strings.Contains(s, "[appeared]") {
		t.Errorf("no appearance events in replay output:\n%s", s)
	}
	if !strings.Contains(s, "temp") {
		t.Error("events do not mention the temperature attribute")
	}
}

func TestRunUsageErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run(nil, &out, &errBuf); code != 2 {
		t.Errorf("missing flags: exit %d", code)
	}
	if code := run([]string{"-input", "/nonexistent.csv", "-group", "g"}, &out, &errBuf); code != 1 {
		t.Errorf("missing file: exit %d", code)
	}
	if code := run([]string{"-badflag"}, &out, &errBuf); code != 2 {
		t.Errorf("bad flag: exit %d", code)
	}
}

func TestRunBadGroupColumn(t *testing.T) {
	path := writeStreamCSV(t)
	var out, errBuf bytes.Buffer
	if code := run([]string{"-input", path, "-group", "missing"}, &out, &errBuf); code != 1 {
		t.Errorf("bad group: exit %d", code)
	}
}

func TestRunEmptyCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.csv")
	if err := os.WriteFile(path, []byte("a,b\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errBuf bytes.Buffer
	if code := run([]string{"-input", path, "-group", "b"}, &out, &errBuf); code != 1 {
		t.Errorf("no data rows: exit %d", code)
	}
}

// syncBuffer is a goroutine-safe writer for capturing run's output while
// the test polls it from another goroutine.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// writeLongStreamCSV emits a replay long enough that the metrics endpoint
// stays up for a while.
func writeLongStreamCSV(t *testing.T, rows int) string {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	var b strings.Builder
	b.WriteString("temp,lane,result\n")
	for i := 0; i < rows; i++ {
		temp := 100 + rng.Float64()*100
		lane := []string{"front", "rear"}[rng.Intn(2)]
		result := "pass"
		if temp > 170 && lane == "rear" && rng.Float64() < 0.9 {
			result = "fail"
		} else if rng.Float64() < 0.04 {
			result = "fail"
		}
		fmt.Fprintf(&b, "%.3f,%s,%s\n", temp, lane, result)
	}
	path := filepath.Join(t.TempDir(), "long.csv")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunMetricsEndpoint replays with -metrics and queries the live
// endpoint while the replay runs; it then checks the final latency
// summary either way.
func TestRunMetricsEndpoint(t *testing.T) {
	path := writeLongStreamCSV(t, 30000)
	var out, errBuf syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-input", path, "-group", "result",
			"-window", "2000", "-every", "500",
			"-metrics", "127.0.0.1:0",
		}, &out, &errBuf)
	}()

	// Find the bound address on stderr.
	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" && time.Now().Before(deadline) {
		s := errBuf.String()
		if i := strings.Index(s, "http://"); i >= 0 {
			if j := strings.Index(s[i:], "/metrics"); j >= 0 {
				addr = s[i : i+j+len("/metrics")]
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("metrics address never announced: %s", errBuf.String())
	}

	// Query the live endpoint while the replay is (probably) running. If
	// the replay already finished, the connection fails and we rely on
	// the summary assertions below.
	live := false
	for time.Now().Before(deadline) && !live {
		resp, err := http.Get(addr)
		if err != nil {
			break // server already closed: replay finished
		}
		var snap sdadcs.MetricsSnapshot
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("live endpoint returned invalid snapshot JSON: %v", err)
		}
		live = true
	}
	t.Logf("live fetch succeeded: %v", live)

	code := <-done
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	s := out.String()
	if !strings.Contains(s, "re-mine latency:") {
		t.Errorf("missing latency summary:\n%s", s)
	}
}

// TestRunMetricsPrometheus: the text exposition endpoint serves a page
// that passes the strict parser and carries the miner, RED and runtime
// families; access lines land on stderr as JSON when -log-format json.
func TestRunMetricsPrometheus(t *testing.T) {
	path := writeLongStreamCSV(t, 30000)
	var out, errBuf syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-input", path, "-group", "result",
			"-window", "2000", "-every", "500",
			"-metrics", "127.0.0.1:0",
			"-log-format", "json",
		}, &out, &errBuf)
	}()

	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" && time.Now().Before(deadline) {
		s := errBuf.String()
		if i := strings.Index(s, "http://"); i >= 0 {
			if j := strings.Index(s[i:], "/metrics"); j >= 0 {
				addr = s[i : i+j+len("/metrics")]
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("metrics address never announced: %s", errBuf.String())
	}

	scraped := false
	for time.Now().Before(deadline) && !scraped {
		resp, err := http.Get(addr + "/prometheus")
		if err != nil {
			break // server already closed: replay finished
		}
		page, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			t.Fatal(rerr)
		}
		if lerr := obs.LintExposition(page); lerr != nil {
			t.Fatalf("scrape fails strict parse: %v\n%s", lerr, page)
		}
		for _, want := range []string{"sdadcs_miner_sdad_calls_total", "sdadcs_http_requests_total", "go_goroutines"} {
			if !strings.Contains(string(page), want) {
				t.Errorf("scrape missing %q", want)
			}
		}
		scraped = true
	}
	t.Logf("live prometheus scrape succeeded: %v", scraped)

	if code := <-done; code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if scraped {
		// The scrape produced a JSON access-log record with a request ID.
		found := false
		for _, line := range strings.Split(errBuf.String(), "\n") {
			if !strings.HasPrefix(line, "{") {
				continue
			}
			var rec map[string]any
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				t.Fatalf("non-JSON log line %q: %v", line, err)
			}
			if rec["msg"] == "http request" {
				if id, _ := rec["request_id"].(string); !strings.HasPrefix(id, "req_") {
					t.Fatalf("access log without request_id: %s", line)
				}
				found = true
			}
		}
		if !found {
			t.Errorf("no access-log record for the scrape: %s", errBuf.String())
		}
	}
}

func TestRunBadLogFlags(t *testing.T) {
	path := writeStreamCSV(t)
	var out, errBuf bytes.Buffer
	if code := run([]string{"-input", path, "-group", "result",
		"-log-level", "loud"}, &out, &errBuf); code != 2 {
		t.Errorf("bad log level: exit %d, want 2", code)
	}
}

func TestRunMetricsBadAddress(t *testing.T) {
	path := writeStreamCSV(t)
	var out, errBuf bytes.Buffer
	if code := run([]string{"-input", path, "-group", "result",
		"-metrics", "256.0.0.1:bad"}, &out, &errBuf); code != 1 {
		t.Errorf("bad metrics address: exit %d, want 1 (%s)", code, errBuf.String())
	}
}

func TestRunTraceSegments(t *testing.T) {
	path := writeStreamCSV(t)
	traceFile := filepath.Join(t.TempDir(), "trace.jsonl")
	var out, errBuf bytes.Buffer
	code := run([]string{"-input", path, "-group", "result",
		"-window", "800", "-every", "400", "-trace", traceFile}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "trace: ") {
		t.Errorf("summary missing trace line:\n%s", out.String())
	}

	// The file is a concatenation of per-window segments; the public
	// decoder reads them as one stream, with one remine span per mined
	// window.
	f, err := os.Open(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := sdadcs.ReadTraceJSONL(f)
	if err != nil {
		t.Fatalf("decoding per-window segments: %v", err)
	}
	if len(tr.Events) == 0 {
		t.Fatal("no trace events written")
	}
	remines := 0
	for _, e := range tr.Events {
		if e.Kind.String() == "remine" {
			remines++
		}
	}
	rows, mined := 0, 0
	if _, err := fmt.Sscanf(out.String()[strings.Index(out.String(), "replayed"):],
		"replayed %d rows, %d windows mined", &rows, &mined); err != nil {
		t.Fatalf("parsing summary: %v\n%s", err, out.String())
	}
	if mined == 0 || remines != mined {
		t.Errorf("%d remine spans for %d mined windows", remines, mined)
	}
}
