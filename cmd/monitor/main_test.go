package main

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeStreamCSV emits a replay file: normal regime, then a hot regime
// where high temperature on lane "rear" fails.
func writeStreamCSV(t *testing.T) string {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	var b strings.Builder
	b.WriteString("temp,lane,result\n")
	emit := func(n int, hot bool) {
		for i := 0; i < n; i++ {
			temp := 100 + rng.Float64()*100
			lane := []string{"front", "rear"}[rng.Intn(2)]
			result := "pass"
			if hot && temp > 170 && lane == "rear" && rng.Float64() < 0.95 {
				result = "fail"
			} else if rng.Float64() < 0.04 {
				result = "fail"
			}
			fmt.Fprintf(&b, "%.3f,%s,%s\n", temp, lane, result)
		}
	}
	emit(1200, false)
	emit(1600, true)
	path := filepath.Join(t.TempDir(), "stream.csv")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunReplayDetectsChange(t *testing.T) {
	path := writeStreamCSV(t)
	var out, errBuf bytes.Buffer
	code := run([]string{"-input", path, "-group", "result", "-window", "800", "-every", "400"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	s := out.String()
	if !strings.Contains(s, "windows mined") {
		t.Fatalf("missing summary: %s", s)
	}
	if !strings.Contains(s, "[appeared]") {
		t.Errorf("no appearance events in replay output:\n%s", s)
	}
	if !strings.Contains(s, "temp") {
		t.Error("events do not mention the temperature attribute")
	}
}

func TestRunUsageErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run(nil, &out, &errBuf); code != 2 {
		t.Errorf("missing flags: exit %d", code)
	}
	if code := run([]string{"-input", "/nonexistent.csv", "-group", "g"}, &out, &errBuf); code != 1 {
		t.Errorf("missing file: exit %d", code)
	}
	if code := run([]string{"-badflag"}, &out, &errBuf); code != 2 {
		t.Errorf("bad flag: exit %d", code)
	}
}

func TestRunBadGroupColumn(t *testing.T) {
	path := writeStreamCSV(t)
	var out, errBuf bytes.Buffer
	if code := run([]string{"-input", path, "-group", "missing"}, &out, &errBuf); code != 1 {
		t.Errorf("bad group: exit %d", code)
	}
}

func TestRunEmptyCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.csv")
	if err := os.WriteFile(path, []byte("a,b\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errBuf bytes.Buffer
	if code := run([]string{"-input", path, "-group", "b"}, &out, &errBuf); code != 1 {
		t.Errorf("no data rows: exit %d", code)
	}
}
