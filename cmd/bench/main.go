// Command bench is the performance-trajectory harness: it runs seven
// fixed-seed workloads — categorical-heavy, mixed, wide-continuous,
// stucco-bitmap, serve-throughput, serve-coldstart, and
// stream-incremental — most under both
// the slice and bitmap counting engines, and
// writes a schema'd BENCH_<rev>.json snapshot. CI runs it on every PR and
// gates the result against the committed main baseline, so the repo
// carries a recorded performance trajectory instead of anecdotes.
//
// Usage:
//
//	bench -rev $(git rev-parse --short HEAD) -out BENCH_abc1234.json
//	bench -quick -out /tmp/b.json                    # CI-sized run
//	bench -compare /tmp/b.json -baseline BENCH_*.json -tolerance 0.25
//
// Gating is ratio-first: speedup_vs_slice is machine-independent, so it
// gates tightly; absolute wall times vary across runners, so the wall gate
// only catches catastrophic regressions (see -wall-tolerance).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"sdadcs/internal/core"
	"sdadcs/internal/datagen"
	"sdadcs/internal/dataset"
	"sdadcs/internal/engine"
	"sdadcs/internal/metrics"
	"sdadcs/internal/serve"
	"sdadcs/internal/store"
	"sdadcs/internal/stream"
	"sdadcs/internal/stucco"
)

// Schema identifies the BENCH_*.json layout; bump on breaking changes.
const Schema = "sdadcs-bench/v1"

// Report is the root of a BENCH_*.json file.
type Report struct {
	Schema    string     `json:"schema"`
	Revision  string     `json:"revision"`
	Go        string     `json:"go"`
	GOOS      string     `json:"goos"`
	GOARCH    string     `json:"goarch"`
	CPUs      int        `json:"cpus"`
	Runs      int        `json:"runs"`
	Quick     bool       `json:"quick,omitempty"`
	Workloads []Workload `json:"workloads"`
}

// Workload is one benchmarked scenario. Wall times are for the bitmap
// engine (the production default); SliceWallNsBest is the same workload
// under the slice engine, and SpeedupVsSlice their best-over-best ratio —
// the machine-independent number the CI gate leans on.
type Workload struct {
	Name            string  `json:"name"`
	Rows            int     `json:"rows"`
	Attrs           int     `json:"attrs"`
	Contrasts       int     `json:"contrasts"`
	WallNsBest      int64   `json:"wall_ns_best"`
	WallNsMean      int64   `json:"wall_ns_mean"`
	SliceWallNsBest int64   `json:"slice_wall_ns_best"`
	SpeedupVsSlice  float64 `json:"speedup_vs_slice"`
	// Allocation-discipline evidence (mining workloads).
	ArenaRecycleRate float64 `json:"arena_recycle_rate,omitempty"`
	// Index-cache evidence: builds across the whole workload (the serve
	// workload requires exactly 1).
	IndexBuilds int64 `json:"index_builds,omitempty"`
	// Serve-throughput extras.
	Jobs  int     `json:"jobs,omitempty"`
	RPS   float64 `json:"rps,omitempty"`
	P50Ns int64   `json:"p50_ns,omitempty"`
	P99Ns int64   `json:"p99_ns,omitempty"`
	// Incremental re-mine evidence (stream-incremental workload): node
	// evaluations across the whole trace under full re-mines vs the
	// CLT-gated incremental path, and their ratio — machine-independent,
	// so the CI gate pins it directly.
	FullNodeEvals int64   `json:"full_node_evals,omitempty"`
	IncNodeEvals  int64   `json:"inc_node_evals,omitempty"`
	NodeEvalRatio float64 `json:"node_eval_ratio,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out      = fs.String("out", "", "write the JSON report to this path (default stdout)")
		rev      = fs.String("rev", "dev", "revision label recorded in the report")
		runs     = fs.Int("runs", 3, "repetitions per workload; best and mean are recorded")
		quick    = fs.Bool("quick", false, "CI-sized datasets and a single repetition")
		compare  = fs.String("compare", "", "gate this report file against -baseline instead of benchmarking")
		baseline = fs.String("baseline", "", "baseline BENCH_*.json for -compare")
		tol      = fs.Float64("tolerance", 0.25, "allowed fractional speedup regression vs baseline")
		wallTol  = fs.Float64("wall-tolerance", 2.0, "allowed fractional wall-time growth vs baseline (catastrophic backstop)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *compare != "" {
		if *baseline == "" {
			fmt.Fprintln(stderr, "bench: -compare requires -baseline")
			return 2
		}
		return compareReports(*compare, *baseline, *tol, *wallTol, stdout, stderr)
	}

	rep, err := collect(*rev, *runs, *quick, stdout)
	if err != nil {
		fmt.Fprintf(stderr, "bench: %v\n", err)
		return 1
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "bench: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if *out == "" {
		stdout.Write(data)
		return 0
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(stderr, "bench: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %s (%d workloads)\n", *out, len(rep.Workloads))
	return 0
}

// collect runs every workload and assembles the report.
func collect(rev string, runs int, quick bool, stdout io.Writer) (*Report, error) {
	if quick {
		runs = 1
	}
	if runs < 1 {
		runs = 1
	}
	rep := &Report{
		Schema:   Schema,
		Revision: rev,
		Go:       runtime.Version(),
		GOOS:     runtime.GOOS,
		GOARCH:   runtime.GOARCH,
		CPUs:     runtime.NumCPU(),
		Runs:     runs,
		Quick:    quick,
	}
	for _, wl := range []struct {
		name string
		f    func(runs int, quick bool) (Workload, error)
	}{
		{"categorical-heavy", benchCategorical},
		{"mixed", benchMixed},
		{"wide-continuous", benchWideContinuous},
		{"stucco-bitmap", benchSTUCCO},
		{"serve-throughput", benchServe},
		{"serve-coldstart", benchColdstart},
		{"stream-incremental", benchStreamIncremental},
	} {
		start := time.Now()
		w, err := wl.f(runs, quick)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", wl.name, err)
		}
		w.Name = wl.name
		rep.Workloads = append(rep.Workloads, w)
		fmt.Fprintf(stdout, "[%s: best %s, speedup_vs_slice %.2fx, measured in %s]\n",
			wl.name, time.Duration(w.WallNsBest).Round(time.Microsecond),
			w.SpeedupVsSlice, time.Since(start).Round(time.Millisecond))
	}
	return rep, nil
}

// mineWorkload times cfg over d under both engines. The cached index is
// dropped once before the bitmap runs: the first run pays the build (it
// lands in the mean), later runs hit the dataset-attached cache, so
// best-of-N measures the amortized production path — build once per
// dataset ever, reuse across Mine calls.
func mineWorkload(d *dataset.Dataset, cfg core.Config, runs int) (Workload, error) {
	w := Workload{Rows: d.Rows(), Attrs: d.NumAttrs()}

	sliceCfg := cfg
	sliceCfg.Counting = core.CountingSlice
	bitmapCfg := cfg
	bitmapCfg.Counting = core.CountingBitmap

	var sliceBest, bitmapBest, bitmapSum int64
	for i := 0; i < runs; i++ {
		start := time.Now()
		core.Mine(d, sliceCfg)
		if ns := int64(time.Since(start)); sliceBest == 0 || ns < sliceBest {
			sliceBest = ns
		}
	}
	d.Index().Drop()
	buildsBefore := d.Index().Builds()
	for i := 0; i < runs; i++ {
		rec := metrics.New()
		bitmapCfg.Metrics = rec
		start := time.Now()
		res := core.Mine(d, bitmapCfg)
		ns := int64(time.Since(start))
		bitmapSum += ns
		if bitmapBest == 0 || ns < bitmapBest {
			bitmapBest = ns
		}
		s := rec.Snapshot()
		w.Contrasts = len(res.Contrasts)
		if total := s.ArenaFresh + s.ArenaReused; total > 0 {
			w.ArenaRecycleRate = float64(s.ArenaReused) / float64(total)
		}
	}
	w.IndexBuilds = d.Index().Builds() - buildsBefore
	w.WallNsBest = bitmapBest
	w.WallNsMean = bitmapSum / int64(runs)
	w.SliceWallNsBest = sliceBest
	if bitmapBest > 0 {
		w.SpeedupVsSlice = float64(sliceBest) / float64(bitmapBest)
	}
	return w, nil
}

// benchCategorical: the manufacturing generator — all-categorical, the
// shape where bitmap AND+popcount kernels and the arena pay off most.
func benchCategorical(runs int, quick bool) (Workload, error) {
	cfg := datagen.ManufacturingConfig{Seed: 101, Population: 6000, Failed: 1500, Features: 14}
	depth := 3
	if quick {
		cfg.Population, cfg.Failed, cfg.Features, depth = 1500, 400, 10, 2
	}
	return mineWorkload(datagen.Manufacturing(cfg), core.Config{MaxDepth: depth, Workers: 1}, runs)
}

// benchMixed: the Adult generator — categorical and continuous attributes,
// the paper's flagship dataset shape.
func benchMixed(runs int, quick bool) (Workload, error) {
	cfg := datagen.AdultConfig{Seed: 102, Bachelors: 8025, Doctorate: 594}
	depth := 2
	if quick {
		cfg.Bachelors, cfg.Doctorate = 2000, 180
	}
	return mineWorkload(datagen.Adult(cfg), core.Config{MaxDepth: depth, Workers: 1}, runs)
}

// benchWideContinuous: a planted Spambase-like shape — many continuous
// attributes, where the SDAD-CS recursion dominates and the bitmap engine
// mostly helps at the categorical frontier of each combination.
func benchWideContinuous(runs int, quick bool) (Workload, error) {
	spec := datagen.UCISpec{
		Name: "bench-wide", Group0: "a", Group1: "b",
		N0: 1800, N1: 1400, Cat: 2, Cont: 24, Strength: 0.5, Seed: 103,
	}
	depth := 2
	if quick {
		spec.N0, spec.N1, spec.Cont = 600, 450, 12
	}
	return mineWorkload(datagen.Planted(spec), core.Config{MaxDepth: depth, Workers: 1}, runs)
}

// benchSTUCCO: the manufacturing generator under the ported STUCCO miner —
// the categorical levelwise search riding the shared bitmap index versus
// its slice-counting twin. This is the workload the unified engine
// interface added: baselines share the production counting kernels, so
// their slice-vs-bitmap ratio is tracked the same way as SDAD-CS's.
func benchSTUCCO(runs int, quick bool) (Workload, error) {
	cfg := datagen.ManufacturingConfig{Seed: 104, Population: 6000, Failed: 1500, Features: 14}
	depth := 3
	if quick {
		cfg.Population, cfg.Failed, cfg.Features, depth = 1500, 400, 10, 2
	}
	d := datagen.Manufacturing(cfg)
	w := Workload{Rows: d.Rows(), Attrs: d.NumAttrs()}

	sliceCfg := stucco.Config{MaxDepth: depth, Workers: 1, SliceCounting: true}
	bitmapCfg := stucco.Config{MaxDepth: depth, Workers: 1}

	var sliceBest, bitmapBest, bitmapSum int64
	for i := 0; i < runs; i++ {
		start := time.Now()
		stucco.Mine(d, sliceCfg)
		if ns := int64(time.Since(start)); sliceBest == 0 || ns < sliceBest {
			sliceBest = ns
		}
	}
	d.Index().Drop()
	buildsBefore := d.Index().Builds()
	for i := 0; i < runs; i++ {
		start := time.Now()
		res := stucco.Mine(d, bitmapCfg)
		ns := int64(time.Since(start))
		bitmapSum += ns
		if bitmapBest == 0 || ns < bitmapBest {
			bitmapBest = ns
		}
		w.Contrasts = len(res.Contrasts)
	}
	w.IndexBuilds = d.Index().Builds() - buildsBefore
	w.WallNsBest = bitmapBest
	w.WallNsMean = bitmapSum / int64(runs)
	w.SliceWallNsBest = sliceBest
	if bitmapBest > 0 {
		w.SpeedupVsSlice = float64(sliceBest) / float64(bitmapBest)
	}
	return w, nil
}

// benchServe drives the mining service end to end: J jobs over one
// registered dataset with distinct top_k values (top_k is part of the
// result-cache key, so every job re-mines), first under the slice engine,
// then under bitmap on a fresh server. Reports RPS and latency quantiles
// for the bitmap phase and the phase-over-phase speedup; IndexBuilds must
// come out 1 — the cached-index guarantee under serve concurrency.
func benchServe(runs int, quick bool) (Workload, error) {
	gen := datagen.ManufacturingConfig{Seed: 104, Population: 2500, Failed: 700, Features: 10}
	jobs, depth := 24, 2
	if quick {
		gen.Population, gen.Failed, gen.Features = 800, 220, 8
		jobs = 10
	}
	d := datagen.Manufacturing(gen)

	slicePhase := func() (time.Duration, []time.Duration, int64, error) {
		return servePhase(d, jobs, depth, core.CountingSlice)
	}
	bitmapPhase := func() (time.Duration, []time.Duration, int64, error) {
		return servePhase(d, jobs, depth, core.CountingBitmap)
	}

	var sliceBest, bitmapBest time.Duration
	var lat []time.Duration
	var builds int64
	for i := 0; i < runs; i++ {
		wall, _, _, err := slicePhase()
		if err != nil {
			return Workload{}, err
		}
		if sliceBest == 0 || wall < sliceBest {
			sliceBest = wall
		}
	}
	var bitmapSum time.Duration
	for i := 0; i < runs; i++ {
		wall, l, b, err := bitmapPhase()
		if err != nil {
			return Workload{}, err
		}
		bitmapSum += wall
		if bitmapBest == 0 || wall < bitmapBest {
			bitmapBest, lat, builds = wall, l, b
		}
	}

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	w := Workload{
		Rows:            d.Rows(),
		Attrs:           d.NumAttrs(),
		Jobs:            jobs,
		WallNsBest:      int64(bitmapBest),
		WallNsMean:      int64(bitmapSum) / int64(runs),
		SliceWallNsBest: int64(sliceBest),
		IndexBuilds:     builds,
		RPS:             float64(jobs) / bitmapBest.Seconds(),
		P50Ns:           int64(quantile(lat, 0.50)),
		P99Ns:           int64(quantile(lat, 0.99)),
	}
	if bitmapBest > 0 {
		w.SpeedupVsSlice = float64(sliceBest) / float64(bitmapBest)
	}
	if builds != 1 {
		return w, fmt.Errorf("index built %d times across %d jobs, want exactly 1", builds, jobs)
	}
	return w, nil
}

// servePhase registers d on a fresh server, submits jobs concurrent jobs
// with distinct top_k, waits for all of them, and reports phase wall time,
// per-job latencies, and the registry's lifetime index-build count.
func servePhase(d *dataset.Dataset, jobs, depth int, counting core.CountingMode) (time.Duration, []time.Duration, int64, error) {
	s := serve.New(serve.Options{Workers: runtime.GOMAXPROCS(0), QueueDepth: jobs + 4})
	defer s.Close(10 * time.Second)

	pr, pw := io.Pipe()
	go func() { pw.CloseWithError(dataset.WriteCSV(pw, d, "group")) }()
	csv, err := io.ReadAll(pr)
	if err != nil {
		return 0, nil, 0, err
	}
	info, err := s.Registry().Register(d.Name(), csv, "group", nil)
	if err != nil {
		return 0, nil, 0, err
	}

	type pending struct {
		job   *serve.Job
		start time.Time
	}
	subs := make([]pending, 0, jobs)
	phaseStart := time.Now()
	for i := 0; i < jobs; i++ {
		cfg := engine.Config{MaxDepth: depth, TopK: 20 + i, Counting: counting}
		j, err := s.Manager().Submit(context.Background(), info.ID, cfg, time.Minute)
		if err != nil {
			return 0, nil, 0, err
		}
		subs = append(subs, pending{job: j, start: time.Now()})
	}
	lat := make([]time.Duration, 0, jobs)
	for _, p := range subs {
		<-p.job.Done()
		if _, state, err := p.job.Output(); err != nil {
			return 0, nil, 0, fmt.Errorf("job %s: %w", p.job.ID, err)
		} else if state != serve.JobDone {
			return 0, nil, 0, fmt.Errorf("job %s ended %s", p.job.ID, state)
		}
		lat = append(lat, time.Since(p.start))
	}
	wall := time.Since(phaseStart)
	_, builds, _ := s.Registry().IndexStats()
	return wall, lat, builds, nil
}

// benchColdstart measures the restart-recovery path of the persistent
// dataset store: a data directory is seeded once (register a
// manufacturing dataset through a store-backed registry, checkpoint,
// close), then each timed run replays a cold boot — open the store,
// rehydrate the registry, and pay the first Acquire's segment decode.
// There is no slice twin, so SpeedupVsSlice stays 0 and the compare gate
// skips the ratio check for this workload.
func benchColdstart(runs int, quick bool) (Workload, error) {
	gen := datagen.ManufacturingConfig{Seed: 105, Population: 2500, Failed: 700, Features: 10}
	if quick {
		gen.Population, gen.Failed, gen.Features = 800, 220, 8
	}
	d := datagen.Manufacturing(gen)

	dir, err := os.MkdirTemp("", "sdadcs-coldstart-*")
	if err != nil {
		return Workload{}, err
	}
	defer os.RemoveAll(dir)

	pr, pw := io.Pipe()
	go func() { pw.CloseWithError(dataset.WriteCSV(pw, d, "group")) }()
	csv, err := io.ReadAll(pr)
	if err != nil {
		return Workload{}, err
	}
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		return Workload{}, err
	}
	reg := serve.NewRegistry(0)
	reg.SetStore(st)
	info, err := reg.Register(d.Name(), csv, "group", nil)
	if err != nil {
		return Workload{}, err
	}
	if err := st.Checkpoint(); err != nil {
		return Workload{}, err
	}
	if err := st.Close(); err != nil {
		return Workload{}, err
	}

	w := Workload{Rows: d.Rows(), Attrs: d.NumAttrs()}
	var best, sum int64
	for i := 0; i < runs; i++ {
		start := time.Now()
		st, err := store.Open(dir, store.Options{})
		if err != nil {
			return Workload{}, err
		}
		reg := serve.NewRegistry(0)
		reg.SetStore(st)
		ds, _, release, ok := reg.Acquire(info.ID)
		if !ok {
			st.Close()
			return Workload{}, fmt.Errorf("cold acquire of %s failed", info.ID)
		}
		ns := int64(time.Since(start))
		if ds.Rows() != d.Rows() {
			release()
			st.Close()
			return Workload{}, fmt.Errorf("rehydrated %d rows, want %d", ds.Rows(), d.Rows())
		}
		release()
		if err := st.Close(); err != nil {
			return Workload{}, err
		}
		sum += ns
		if best == 0 || ns < best {
			best = ns
		}
	}
	w.WallNsBest = best
	w.WallNsMean = sum / int64(runs)
	return w, nil
}

// benchStreamIncremental drives a fixed periodic trace (period 8; window
// and cadence both multiples of it, so consecutive saturated windows hold
// identical row sequences) through two stream monitors: one using the
// CLT-gated incremental re-mine over the delta index, one forced to full
// re-mines by the DisableIncrementalRemine escape hatch. Drift is
// confined to one machine's temperature readings — the stable regime the
// gate was built for — so most of the frontier replays between windows.
// WallNsBest is the incremental trace, SliceWallNsBest its full-re-mine
// twin; node_eval_ratio (full evaluations over incremental ones) is the
// machine-independent number the CI gate pins at >= 1.5.
func benchStreamIncremental(runs int, quick bool) (Workload, error) {
	const window, every = 48, 16
	appends := 4800
	if quick {
		appends = 960
	}
	schema := stream.Schema{
		Name:        "bench-stream",
		Continuous:  []string{"temp", "vibration"},
		Categorical: []string{"machine", "shift", "tool", "station"},
	}
	machines := [8]string{"m0", "m0", "m1", "m1", "m2", "m2", "m0", "m1"}
	shifts := [8]string{"day", "day", "day", "night", "night", "night", "night", "day"}
	tools := [8]string{"t0", "t1", "t2", "t3", "t4", "t4", "t0", "t2"}
	stations := [8]string{"s0", "s0", "s1", "s1", "s2", "s2", "s3", "s3"}
	grps := [8]string{"ok", "ok", "fail", "ok", "fail", "degraded", "fail", "ok"}
	base := [8]float64{18, 19, 24, 25, 31, 32, 20, 26}
	row := func(i int) ([]float64, []string, string) {
		k := i % 8
		cont := []float64{base[k], 1.5 + float64(k)*0.1}
		if machines[k] == "m2" {
			// Drift confined to one machine; period 7 is coprime to the
			// window/cadence alignment, so consecutive windows always differ
			// in m2's readings (the dirty subtree) and nowhere else. m2's
			// rows carry their own tool (t4) and station (s2) values, so the
			// rest of the categorical lattice stays provably untouched —
			// the shape real stable regimes have.
			cont[0] += 0.25 * float64(i%7)
		}
		return cont, []string{machines[k], shifts[k], tools[k], stations[k]}, grps[k]
	}
	drive := func(fullOnly bool) (int64, int64, int, int, error) {
		rec := metrics.New()
		m, err := stream.NewMonitor(schema, stream.Config{
			WindowSize:               window,
			MineEvery:                every,
			DisableIncrementalRemine: fullOnly,
			Mining:                   core.Config{MaxDepth: 2, Workers: 1, Metrics: rec},
		})
		if err != nil {
			return 0, 0, 0, 0, err
		}
		start := time.Now()
		for i := 0; i < appends; i++ {
			cont, cat, group := row(i)
			if _, err := m.Append(cont, cat, group); err != nil {
				return 0, 0, 0, 0, fmt.Errorf("append %d: %w", i, err)
			}
		}
		ns := int64(time.Since(start))
		attrs := 0
		if d := m.CurrentData(); d != nil {
			attrs = d.NumAttrs()
		}
		return ns, rec.Snapshot().NodeEval.Count, len(m.Current()), attrs, nil
	}

	w := Workload{Rows: window}
	var incBest, incSum, fullBest int64
	var fullEvals, incEvals int64 // deterministic per trace; any run's count
	for i := 0; i < runs; i++ {
		ns, evals, _, _, err := drive(true)
		if err != nil {
			return Workload{}, err
		}
		if fullBest == 0 || ns < fullBest {
			fullBest = ns
		}
		fullEvals = evals
	}
	for i := 0; i < runs; i++ {
		ns, evals, contrasts, attrs, err := drive(false)
		if err != nil {
			return Workload{}, err
		}
		incSum += ns
		if incBest == 0 || ns < incBest {
			incBest = ns
		}
		incEvals = evals
		w.Contrasts = contrasts
		w.Attrs = attrs
	}

	w.WallNsBest = incBest
	w.WallNsMean = incSum / int64(runs)
	w.SliceWallNsBest = fullBest
	if incBest > 0 {
		w.SpeedupVsSlice = float64(fullBest) / float64(incBest)
	}
	w.FullNodeEvals = fullEvals
	w.IncNodeEvals = incEvals
	if incEvals > 0 {
		w.NodeEvalRatio = float64(fullEvals) / float64(incEvals)
	}
	return w, nil
}

// quantile returns the q-quantile of sorted latencies (nearest-rank).
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// compareReports gates candidate against baseline: every baseline workload
// must exist in the candidate, its speedup_vs_slice must not regress more
// than tol (fractional), its best wall time must not grow more than
// wallTol (fractional — generous, machine drift is real), and the serve
// workload must keep index_builds == 1. Exit 1 on any violation.
func compareReports(candidatePath, baselinePath string, tol, wallTol float64, stdout, stderr io.Writer) int {
	cand, err := readReport(candidatePath)
	if err != nil {
		fmt.Fprintf(stderr, "bench: %v\n", err)
		return 2
	}
	base, err := readReport(baselinePath)
	if err != nil {
		fmt.Fprintf(stderr, "bench: %v\n", err)
		return 2
	}
	byName := make(map[string]Workload, len(cand.Workloads))
	for _, w := range cand.Workloads {
		byName[w.Name] = w
	}
	failures := 0
	for _, bw := range base.Workloads {
		cw, ok := byName[bw.Name]
		if !ok {
			fmt.Fprintf(stderr, "FAIL %s: workload missing from candidate\n", bw.Name)
			failures++
			continue
		}
		// Workloads with no slice twin (speedup 0 in the baseline, e.g.
		// serve-coldstart) are gated on wall time only.
		minSpeedup := bw.SpeedupVsSlice * (1 - tol)
		if bw.SpeedupVsSlice > 0 && cw.SpeedupVsSlice < minSpeedup {
			fmt.Fprintf(stderr, "FAIL %s: speedup_vs_slice %.3f < %.3f (baseline %.3f, tolerance %.0f%%)\n",
				bw.Name, cw.SpeedupVsSlice, minSpeedup, bw.SpeedupVsSlice, tol*100)
			failures++
		}
		maxWall := float64(bw.WallNsBest) * (1 + wallTol)
		if float64(cw.WallNsBest) > maxWall {
			fmt.Fprintf(stderr, "FAIL %s: wall_ns_best %d > %.0f (baseline %d, tolerance %.0f%%)\n",
				bw.Name, cw.WallNsBest, maxWall, bw.WallNsBest, wallTol*100)
			failures++
		}
		if bw.Name == "serve-throughput" && cw.IndexBuilds != 1 {
			fmt.Fprintf(stderr, "FAIL %s: index_builds = %d, want 1\n", bw.Name, cw.IndexBuilds)
			failures++
		}
		fmt.Fprintf(stdout, "%-18s speedup %.2fx (baseline %.2fx)  wall %s (baseline %s)\n",
			bw.Name, cw.SpeedupVsSlice, bw.SpeedupVsSlice,
			time.Duration(cw.WallNsBest).Round(time.Microsecond),
			time.Duration(bw.WallNsBest).Round(time.Microsecond))
	}
	// Candidate-side gate: stream-incremental postdates the first committed
	// baseline, so its node-evaluation savings are pinned from the
	// candidate report whether or not the baseline carries the workload.
	if cw, ok := byName["stream-incremental"]; ok {
		if cw.NodeEvalRatio < 1.5 {
			fmt.Fprintf(stderr, "FAIL %s: node_eval_ratio %.2f < 1.5\n", cw.Name, cw.NodeEvalRatio)
			failures++
		} else {
			fmt.Fprintf(stdout, "%-18s node_eval_ratio %.2fx (gate 1.50x)\n", cw.Name, cw.NodeEvalRatio)
		}
	}
	if failures > 0 {
		fmt.Fprintf(stderr, "bench: %d gate failure(s)\n", failures)
		return 1
	}
	fmt.Fprintln(stdout, "bench: all gates passed")
	return 0
}

func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, Schema)
	}
	return &r, nil
}
