package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// quickReport runs the harness once in -quick mode and parses the report;
// shared across tests because even the quick workloads take seconds.
var quickReport = func() func(t *testing.T) (*Report, string) {
	var rep *Report
	var path string
	return func(t *testing.T) (*Report, string) {
		t.Helper()
		if rep != nil {
			return rep, path
		}
		dir, err := os.MkdirTemp("", "bench")
		if err != nil {
			t.Fatal(err)
		}
		path = filepath.Join(dir, "BENCH_test.json")
		var out, errBuf bytes.Buffer
		if code := run([]string{"-quick", "-rev", "test", "-out", path}, &out, &errBuf); code != 0 {
			t.Fatalf("bench exit %d: %s", code, errBuf.String())
		}
		rep, err = readReport(path)
		if err != nil {
			t.Fatal(err)
		}
		return rep, path
	}
}()

// TestQuickRunProducesAllWorkloads: one -quick run emits a schema'd report
// with all six workloads, positive timings, and the serve workload's
// one-build index guarantee.
func TestQuickRunProducesAllWorkloads(t *testing.T) {
	rep, _ := quickReport(t)
	if rep.Schema != Schema {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if rep.Revision != "test" || rep.Go == "" || rep.CPUs <= 0 {
		t.Fatalf("environment header incomplete: %+v", rep)
	}
	want := []string{"categorical-heavy", "mixed", "wide-continuous", "stucco-bitmap", "serve-throughput", "serve-coldstart", "stream-incremental"}
	if len(rep.Workloads) != len(want) {
		t.Fatalf("got %d workloads, want %d", len(rep.Workloads), len(want))
	}
	for i, w := range rep.Workloads {
		if w.Name != want[i] {
			t.Errorf("workload %d = %q, want %q", i, w.Name, want[i])
		}
		if w.WallNsBest <= 0 || w.WallNsMean <= 0 {
			t.Errorf("%s: non-positive timings %+v", w.Name, w)
		}
		// serve-coldstart has no slice twin: its speedup stays 0 by design.
		if w.Name == "serve-coldstart" {
			if w.SliceWallNsBest != 0 || w.SpeedupVsSlice != 0 {
				t.Errorf("%s: unexpected slice phase %+v", w.Name, w)
			}
		} else {
			if w.SliceWallNsBest <= 0 {
				t.Errorf("%s: non-positive slice timing %+v", w.Name, w)
			}
			if w.SpeedupVsSlice <= 0 {
				t.Errorf("%s: speedup_vs_slice = %v", w.Name, w.SpeedupVsSlice)
			}
		}
		if w.WallNsBest > w.WallNsMean {
			t.Errorf("%s: best %d exceeds mean %d", w.Name, w.WallNsBest, w.WallNsMean)
		}
		if w.Rows <= 0 || w.Attrs <= 0 {
			t.Errorf("%s: missing dataset shape", w.Name)
		}
	}
	serve := rep.Workloads[4]
	if serve.IndexBuilds != 1 {
		t.Errorf("serve-throughput index_builds = %d, want 1", serve.IndexBuilds)
	}
	if serve.Jobs == 0 || serve.RPS <= 0 || serve.P50Ns <= 0 || serve.P99Ns < serve.P50Ns {
		t.Errorf("serve-throughput stats incomplete: %+v", serve)
	}
	for _, w := range rep.Workloads[:4] {
		if w.IndexBuilds != 1 {
			t.Errorf("%s: index_builds = %d, want 1 (dropped before each run)", w.Name, w.IndexBuilds)
		}
	}
	if rep.Workloads[0].ArenaRecycleRate <= 0 {
		t.Errorf("categorical-heavy: arena recycle rate = %v, want > 0",
			rep.Workloads[0].ArenaRecycleRate)
	}
	si := rep.Workloads[6]
	if si.IncNodeEvals <= 0 || si.FullNodeEvals <= si.IncNodeEvals {
		t.Errorf("stream-incremental node evals: full=%d inc=%d, want full > inc > 0",
			si.FullNodeEvals, si.IncNodeEvals)
	}
	if si.NodeEvalRatio < 1.5 {
		t.Errorf("stream-incremental node_eval_ratio = %.2f, want >= 1.5 (the CI gate)",
			si.NodeEvalRatio)
	}
}

// TestCompareSelfPasses: a report gated against itself passes.
func TestCompareSelfPasses(t *testing.T) {
	_, path := quickReport(t)
	var out, errBuf bytes.Buffer
	if code := run([]string{"-compare", path, "-baseline", path}, &out, &errBuf); code != 0 {
		t.Fatalf("self-compare exit %d: %s", code, errBuf.String())
	}
	if !bytes.Contains(out.Bytes(), []byte("all gates passed")) {
		t.Fatalf("missing pass line: %s", out.String())
	}
}

// TestCompareDetectsRegression: a baseline whose speedup is far above the
// candidate's fails the ratio gate; a baseline with far smaller wall time
// fails the backstop wall gate.
func TestCompareDetectsRegression(t *testing.T) {
	rep, path := quickReport(t)

	doctor := func(t *testing.T, mutate func(*Workload)) string {
		t.Helper()
		clone := *rep
		clone.Workloads = append([]Workload(nil), rep.Workloads...)
		for i := range clone.Workloads {
			mutate(&clone.Workloads[i])
		}
		data, err := json.MarshalIndent(&clone, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(t.TempDir(), "BENCH_doctored.json")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	fastBaseline := doctor(t, func(w *Workload) { w.SpeedupVsSlice *= 100 })
	var out, errBuf bytes.Buffer
	if code := run([]string{"-compare", path, "-baseline", fastBaseline}, &out, &errBuf); code != 1 {
		t.Fatalf("speedup regression not caught: exit %d, %s", code, errBuf.String())
	}
	if !bytes.Contains(errBuf.Bytes(), []byte("speedup_vs_slice")) {
		t.Fatalf("wrong failure reason: %s", errBuf.String())
	}

	tinyWall := doctor(t, func(w *Workload) { w.WallNsBest = 1 })
	out.Reset()
	errBuf.Reset()
	if code := run([]string{"-compare", path, "-baseline", tinyWall}, &out, &errBuf); code != 1 {
		t.Fatalf("wall regression not caught: exit %d, %s", code, errBuf.String())
	}
	if !bytes.Contains(errBuf.Bytes(), []byte("wall_ns_best")) {
		t.Fatalf("wrong failure reason: %s", errBuf.String())
	}
}

// TestCompareRejectsBadInputs: missing baseline flag and schema mismatch
// are usage errors, not gate failures.
func TestCompareRejectsBadInputs(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-compare", "x.json"}, &out, &errBuf); code != 2 {
		t.Fatalf("missing -baseline: exit %d", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"other/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errBuf.Reset()
	if code := run([]string{"-compare", bad, "-baseline", bad}, &out, &errBuf); code != 2 {
		t.Fatalf("schema mismatch: exit %d", code)
	}
}
