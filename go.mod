module sdadcs

go 1.22
