package sdadcs_test

// One benchmark per paper table and figure (see DESIGN.md §4), plus
// ablation benchmarks for the design decisions the paper motivates:
// pruning strategies, optimistic-estimate mode, interest measure, search
// order, and per-level parallelism. Benchmarks run on Quick-scaled
// synthetic data so the whole suite finishes in minutes; shapes, not
// absolute times, are the reproduction target (EXPERIMENTS.md).

import (
	"runtime"
	"testing"

	"sdadcs"
	"sdadcs/internal/core"
	"sdadcs/internal/datagen"
	"sdadcs/internal/experiments"
	"sdadcs/internal/pattern"
)

func benchOpts() experiments.Options {
	return experiments.Options{Quick: true}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure2(benchOpts())
		if len(res.Contrasts) == 0 {
			b.Fatal("no bins")
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure3(benchOpts())
		if len(res.Tables) != 4 {
			b.Fatal("missing tables")
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure4(benchOpts())
		if len(res.Age) == 0 {
			b.Fatal("no bins")
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table1(benchOpts())
		if len(res.Table.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Table2(benchOpts()).Rows) != 10 {
			b.Fatal("bad table 2")
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table3(benchOpts())
		if len(res.Top) == 0 {
			b.Fatal("no top patterns")
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table4(benchOpts())
		if len(res.Rows) != 10 {
			b.Fatal("missing datasets")
		}
	}
}

func BenchmarkTable5(b *testing.B) {
	var parts int
	for i := 0; i < b.N; i++ {
		res := experiments.Table5(benchOpts())
		if len(res.Rows) != 10 {
			b.Fatal("missing datasets")
		}
		parts = 0
		for _, r := range res.Rows {
			parts += r.PartsSDAD
		}
	}
	b.ReportMetric(float64(parts), "partitions")
}

func BenchmarkTable6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table6(benchOpts())
		if len(res.Rows) != 10 {
			b.Fatal("missing datasets")
		}
	}
}

func BenchmarkTable7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table7(benchOpts())
		if len(res.Contrasts) == 0 {
			b.Fatal("no contrasts")
		}
	}
}

func BenchmarkScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Scaling(benchOpts())
		if len(res.Points) != 3 {
			b.Fatal("missing points")
		}
	}
}

// ablationData is the shared workload for the ablation benchmarks: the
// Adult-like dataset restricted to the attributes the paper's qualitative
// analysis uses.
func ablationData() (*sdadcs.Dataset, []int) {
	d := datagen.Adult(datagen.AdultConfig{Seed: 9, Bachelors: 2000, Doctorate: 400})
	attrs := []int{
		d.AttrIndex("age"), d.AttrIndex("hours_per_week"),
		d.AttrIndex("occupation"), d.AttrIndex("sex"),
	}
	return d, attrs
}

// BenchmarkAblationPruning quantifies each §4.3 strategy: disable one at a
// time and report the partitions evaluated.
func BenchmarkAblationPruning(b *testing.B) {
	d, attrs := ablationData()
	variants := []struct {
		name   string
		mutate func(*core.Pruning)
	}{
		{"all-on", func(*core.Pruning) {}},
		{"no-min-deviation", func(p *core.Pruning) { p.MinDeviation = false }},
		{"no-expected-count", func(p *core.Pruning) { p.ExpectedCount = false }},
		{"no-chisq-oe", func(p *core.Pruning) { p.ChiSquareOE = false }},
		{"no-redundancy-clt", func(p *core.Pruning) { p.RedundancyCLT = false }},
		{"no-pure-space", func(p *core.Pruning) { p.PureSpace = false }},
		{"no-lookup-table", func(p *core.Pruning) { p.LookupTable = false }},
		{"none", func(p *core.Pruning) { *p = core.Pruning{} }},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			pr := core.AllPruning()
			v.mutate(&pr)
			var parts int
			for i := 0; i < b.N; i++ {
				res := core.Mine(d, core.Config{
					Attrs: attrs, MaxDepth: 2, Pruning: &pr,
					SkipMeaningfulFilter: true,
				})
				parts = res.Stats.PartitionsEvaluated
			}
			b.ReportMetric(float64(parts), "partitions")
		})
	}
}

// BenchmarkAblationOEMode compares the paper's equal-distribution estimate
// (Eq. 6) with the tie-safe conservative bound.
func BenchmarkAblationOEMode(b *testing.B) {
	d, attrs := ablationData()
	for _, mode := range []core.OEMode{core.OEModePaper, core.OEModeConservative} {
		b.Run(mode.String(), func(b *testing.B) {
			var parts int
			for i := 0; i < b.N; i++ {
				res := core.Mine(d, core.Config{
					Attrs: attrs, MaxDepth: 2, OEMode: mode,
					SkipMeaningfulFilter: true,
				})
				parts = res.Stats.PartitionsEvaluated
			}
			b.ReportMetric(float64(parts), "partitions")
		})
	}
}

// BenchmarkAblationMeasure compares the driving interest measures.
func BenchmarkAblationMeasure(b *testing.B) {
	d, attrs := ablationData()
	for _, m := range []pattern.Measure{
		pattern.SupportDiff, pattern.PurityRatio, pattern.SurprisingMeasure,
	} {
		b.Run(m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Mine(d, core.Config{
					Attrs: attrs, MaxDepth: 2, Measure: m,
					SkipMeaningfulFilter: true,
				})
			}
		})
	}
}

// BenchmarkAblationSearch compares levelwise (the paper's choice) with
// depth-first combination order.
func BenchmarkAblationSearch(b *testing.B) {
	d, attrs := ablationData()
	for _, dfs := range []bool{false, true} {
		name := "levelwise"
		if dfs {
			name = "depth-first"
		}
		b.Run(name, func(b *testing.B) {
			var parts int
			for i := 0; i < b.N; i++ {
				res := core.Mine(d, core.Config{
					Attrs: attrs, MaxDepth: 2, DFS: dfs,
					SkipMeaningfulFilter: true,
				})
				parts = res.Stats.PartitionsEvaluated
			}
			b.ReportMetric(float64(parts), "partitions")
		})
	}
}

// BenchmarkAblationParallel measures the §6 per-level parallel strategy.
func BenchmarkAblationParallel(b *testing.B) {
	d := datagen.Manufacturing(datagen.ManufacturingConfig{
		Seed: 9, Population: 4000, Failed: 1000, Features: 40,
	})
	for _, workers := range []int{1, 2, runtime.NumCPU()} {
		b.Run(benchName(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Mine(d, core.Config{
					MaxDepth: 2, Workers: workers,
					SkipMeaningfulFilter: true,
				})
			}
		})
	}
}

func benchName(workers int) string {
	switch workers {
	case 1:
		return "workers-1"
	case 2:
		return "workers-2"
	default:
		return "workers-max"
	}
}

// BenchmarkCounting is the paired support-counting benchmark behind the
// bitmap engine: the same mining run under the row-index-slice path and
// the bitmap path, on a categorical-heavy workload (where level-1/2
// candidate covers dominate and AND+popcount pays off) and on a mixed
// workload (where SDAD-CS box recursion dominates and the bitmap engine
// must not regress). Both engines produce bit-identical results
// (TestCountingGoldenEquality); this benchmark is the perf contract.
func BenchmarkCounting(b *testing.B) {
	manuf := datagen.Manufacturing(datagen.ManufacturingConfig{
		Seed: 9, Population: 4000, Failed: 1000, Features: 40,
	})
	adult, adultAttrs := ablationData()
	workloads := []struct {
		name string
		d    *sdadcs.Dataset
		cfg  core.Config
	}{
		{
			// STUCCO-style run over the categorical attributes only:
			// candidate covers and group counts are the whole cost.
			name: "categorical-heavy",
			d:    manuf,
			cfg: core.Config{
				Attrs: manuf.CategoricalAttrs(), MaxDepth: 3,
				SkipMeaningfulFilter: true,
			},
		},
		{
			name: "mixed",
			d:    adult,
			cfg:  core.Config{Attrs: adultAttrs, MaxDepth: 2, SkipMeaningfulFilter: true},
		},
	}
	for _, w := range workloads {
		for _, mode := range []core.CountingMode{core.CountingSlice, core.CountingBitmap} {
			b.Run(w.name+"/"+mode.String(), func(b *testing.B) {
				cfg := w.cfg
				cfg.Counting = mode
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res := core.Mine(w.d, cfg)
					if len(res.Contrasts) == 0 {
						b.Fatal("no contrasts")
					}
				}
			})
		}
	}
}

// BenchmarkMineCSVPipeline measures the full public-API path: CSV parse,
// mine, classify.
func BenchmarkMineCSVPipeline(b *testing.B) {
	d := datagen.Simulated2(5, 2000)
	for i := 0; i < b.N; i++ {
		res := sdadcs.Mine(d, sdadcs.Config{Measure: sdadcs.SurprisingMeasure})
		if len(res.Contrasts) == 0 {
			b.Fatal("no contrasts")
		}
	}
}

// BenchmarkMineMetrics is the paired observability benchmark: the same
// census-scale mining run without instrumentation (the default path — a
// nil recorder compiles to one pointer check per record site) and with a
// live metrics recorder. The disabled variant must stay within noise of
// the pre-instrumentation BenchmarkMine numbers; the enabled variant
// additionally reports per-level timings and per-rule prune counts.
func BenchmarkMineMetrics(b *testing.B) {
	d, attrs := ablationData()
	cfg := func() core.Config {
		return core.Config{Attrs: attrs, MaxDepth: 2, SkipMeaningfulFilter: true}
	}
	b.Run("disabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := core.Mine(d, cfg())
			if res.Metrics != nil {
				b.Fatal("metrics snapshot on uninstrumented run")
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		var snap *sdadcs.MetricsSnapshot
		for i := 0; i < b.N; i++ {
			c := cfg()
			c.Metrics = sdadcs.NewMetricsRecorder()
			snap = core.Mine(d, c).Metrics
		}
		if snap == nil || len(snap.Levels) == 0 {
			b.Fatal("no per-level timings recorded")
		}
		if snap.TotalPruned() == 0 {
			b.Fatal("no per-rule prune counts recorded")
		}
		b.ReportMetric(float64(snap.TotalPruned()), "prune-hits")
		b.ReportMetric(float64(snap.Levels[0].WallNanos), "level1-ns")
	})
}

// BenchmarkMineTrace is the paired tracing benchmark, the same discipline
// as BenchmarkMineMetrics: the disabled variant (nil tracer, one pointer
// check per decision site) must stay within noise of the untraced mine;
// the enabled variant pays for recording every decision event into the
// preallocated ring and reports the event volume.
func BenchmarkMineTrace(b *testing.B) {
	d, attrs := ablationData()
	cfg := func() core.Config {
		return core.Config{Attrs: attrs, MaxDepth: 2, SkipMeaningfulFilter: true}
	}
	b.Run("disabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := core.Mine(d, cfg())
			if res.Trace != nil {
				b.Fatal("trace snapshot on untraced run")
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		var tr *sdadcs.Trace
		for i := 0; i < b.N; i++ {
			c := cfg()
			c.Trace = sdadcs.NewTracer(0)
			tr = core.Mine(d, c).Trace
		}
		if tr == nil || len(tr.Events) == 0 {
			b.Fatal("no decision events recorded")
		}
		b.ReportMetric(float64(len(tr.Events)), "events")
		b.ReportMetric(float64(tr.Dropped), "dropped")
	})
}
