// Quickstart: build a small mixed dataset in memory, mine contrast
// patterns with SDAD-CS, and read the results.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"sdadcs"
)

func main() {
	// A tiny synthetic clinical dataset: two groups (responder /
	// non-responder), one categorical attribute and two continuous ones.
	// Responders tend to be younger AND have a high marker level — a
	// multivariate interaction no global binning would reveal.
	rng := rand.New(rand.NewSource(42))
	n := 2000
	age := make([]float64, n)
	marker := make([]float64, n)
	site := make([]string, n)
	group := make([]string, n)
	for i := range age {
		age[i] = 20 + rng.Float64()*60
		marker[i] = rng.Float64() * 10
		site[i] = []string{"site-A", "site-B", "site-C"}[rng.Intn(3)]
		if age[i] < 45 && marker[i] > 6 && rng.Float64() < 0.9 {
			group[i] = "responder"
		} else {
			group[i] = "non-responder"
		}
	}

	d, err := sdadcs.NewBuilder("clinical").
		AddContinuous("age", age).
		AddContinuous("marker", marker).
		AddCategorical("site", site).
		SetGroups(group).
		Build()
	if err != nil {
		panic(err)
	}

	// Mine with the paper's defaults (α = 0.05, δ = 0.1, top-100), scoring
	// by the Surprising Measure (purity × support difference).
	res := sdadcs.Mine(d, sdadcs.Config{Measure: sdadcs.SurprisingMeasure})

	fmt.Printf("mined %d meaningful contrasts (%d candidate spaces evaluated)\n\n",
		len(res.Contrasts), res.Stats.PartitionsEvaluated)
	for i, c := range res.Contrasts {
		fmt.Printf("%2d. %s\n", i+1, c.Format(d))
		fmt.Printf("    score=%.3f  chi2=%.1f  p=%.2g\n", c.Score, c.ChiSq, c.P)
	}

	// Every returned contrast passed the meaningfulness filter: it is
	// non-redundant, productive, and independently productive.
	if len(res.Meaning) > 0 {
		fmt.Println("\nall reported contrasts are classified meaningful:",
			res.Meaning[0].Meaningful())
	}
}
