// Validation: guard against spurious patterns with a holdout split.
// Pattern mining tests thousands of hypotheses; even with the Bonferroni
// schedule, the direct check that a mined contrast is real is whether it
// replicates on rows the miner never saw. This example mines on 60% of a
// dataset, validates on the remaining 40%, and exports the survivors as a
// Markdown table.
//
// Run with:
//
//	go run ./examples/validation
package main

import (
	"fmt"
	"os"

	"sdadcs"
	"sdadcs/internal/datagen"
)

func main() {
	d := datagen.Adult(datagen.AdultConfig{Seed: 11, Bachelors: 4000, Doctorate: 600})

	// Stratified 60/40 split: group proportions preserved on both sides.
	train, holdout := d.All().StratifiedSplit(0.6, 99)
	fmt.Printf("train %d rows / holdout %d rows\n\n", train.Len(), holdout.Len())

	// Mine the training rows. Restricting via a derived dataset keeps the
	// example simple; Config.Attrs narrows the searched attributes.
	res := sdadcs.Mine(d, sdadcs.Config{
		Measure:  sdadcs.SurprisingMeasure,
		MaxDepth: 2,
		Attrs: []int{
			d.AttrIndex("age"), d.AttrIndex("hours_per_week"),
			d.AttrIndex("occupation"),
		},
	})
	fmt.Printf("mined %d meaningful contrasts\n", len(res.Contrasts))

	// Re-test every pattern on the holdout: still large (diff > δ), still
	// significant, same direction.
	vs := sdadcs.ValidateHoldout(holdout, res.Contrasts, 0.1, 0.05)
	var confirmed []sdadcs.Contrast
	for i, v := range vs {
		status := "replicates"
		if !v.Replicates() {
			status = "DOES NOT replicate"
		}
		fmt.Printf("  %-70s %s\n", res.Contrasts[i].Set.Format(d), status)
		if v.Replicates() {
			confirmed = append(confirmed, res.Contrasts[i])
		}
	}
	fmt.Printf("replication rate: %.0f%%\n\n", 100*sdadcs.ReplicationRate(vs))

	// Export the confirmed patterns as Markdown for a report or PR.
	fmt.Println("confirmed patterns (Markdown):")
	if err := sdadcs.WriteReport(os.Stdout, sdadcs.ReportMarkdown, d, confirmed); err != nil {
		panic(err)
	}
}
