// Interactions: the multivariate litmus test (the paper's Figure 3b). Two
// Gaussian arms form an "X": neither attribute separates the groups on its
// own, so every univariate discretizer is blind — but the groups are
// cleanly separated in the joint space. SDAD-CS's adaptive joint binning
// finds the four corner boxes.
//
// Run with:
//
//	go run ./examples/interactions
package main

import (
	"context"
	"fmt"

	"sdadcs"
	"sdadcs/internal/datagen"
)

func main() {
	d := datagen.Simulated2(3, 4000)

	// Univariate view: the entropy discretizer (group as class) finds no
	// cut point on either attribute.
	eres, _ := sdadcs.MineWith(context.Background(), d,
		sdadcs.MinerConfig{Algorithm: "entropy"})
	fmt.Printf("entropy (univariate) contrasts: %d\n", len(eres.Contrasts))

	// SDAD-CS: joint median splits expose the quadrant structure.
	res := sdadcs.Mine(d, sdadcs.Config{Measure: sdadcs.SurprisingMeasure})
	fmt.Printf("SDAD-CS contrasts: %d\n\n", len(res.Contrasts))
	for _, c := range res.Contrasts {
		fmt.Printf("  %s  score=%.3f\n", c.Format(d), c.Score)
	}

	fmt.Println("\nEach box pairs a half-range of Attribute1 with a half-range of")
	fmt.Println("Attribute2 — the interaction is only visible when both attributes")
	fmt.Println("are discretized together, which is the core claim of the paper.")
}
