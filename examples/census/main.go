// Census: compare SDAD-CS against the paper's baselines on a census-like
// mixed dataset (the Adult analysis of the paper's §5.5, Doctorate vs.
// Bachelors), focusing on how each algorithm bins age and hours-per-week.
//
// Run with:
//
//	go run ./examples/census
package main

import (
	"context"
	"fmt"

	"sdadcs"
	"sdadcs/internal/datagen"
)

func main() {
	// The paper's Adult experiment contrasts Doctorate and Bachelors
	// degree holders. datagen.Adult plants the same structure the paper
	// reports: a young Bachelors-only segment, Doctorates skewing old and
	// working long hours, and an age × hours interaction.
	d := datagen.Adult(datagen.AdultConfig{Seed: 7, Bachelors: 4000, Doctorate: 400})
	age := d.AttrIndex("age")
	hours := d.AttrIndex("hours_per_week")
	doc := d.GroupIndex("Doctorate")
	bach := d.GroupIndex("Bachelors")

	show := func(title string, cs []sdadcs.Contrast, data *sdadcs.Dataset, limit int) {
		fmt.Printf("--- %s ---\n", title)
		if len(cs) == 0 {
			fmt.Println("(no contrasts)")
		}
		if len(cs) < limit {
			limit = len(cs)
		}
		for _, c := range cs[:limit] {
			fmt.Printf("  %-70s Doc=%.2f Bach=%.2f\n",
				c.Set.Format(data), c.Supports.Supp(doc), c.Supports.Supp(bach))
		}
		fmt.Println()
	}

	// SDAD-CS, driven by the Surprising Measure as in the paper's
	// qualitative analysis, restricted to the two focus attributes.
	res := sdadcs.Mine(d, sdadcs.Config{
		Measure:  sdadcs.SurprisingMeasure,
		Attrs:    []int{age, hours},
		MaxDepth: 2,
	})
	show("SDAD-CS (Surprising Measure)", res.Contrasts, d, 8)

	// The same search optimizing raw support difference.
	resDiff := sdadcs.Mine(d, sdadcs.Config{
		Measure:  sdadcs.SupportDiff,
		Attrs:    []int{age, hours},
		MaxDepth: 2,
	})
	show("SDAD-CS (support difference)", resDiff.Contrasts, d, 6)

	// Cortana-style subgroup discovery (beam search, WRACC, intervals).
	show("Subgroup discovery (Cortana-style)",
		sdadcs.MineSubgroups(d, sdadcs.SubgroupConfig{Depth: 2}), d, 6)

	// Global pre-binning baselines: entropy (MDLP) and MVD, via the
	// unified engine API.
	eres, _ := sdadcs.MineWith(context.Background(), d,
		sdadcs.MinerConfig{Algorithm: "entropy", MaxDepth: 2})
	show("Fayyad-Irani entropy binning", eres.Contrasts, eres.Binned, 6)
	mres, _ := sdadcs.MineWith(context.Background(), d,
		sdadcs.MinerConfig{Algorithm: "mvd", MaxDepth: 2})
	show("MVD binning", mres.Contrasts, mres.Binned, 6)

	fmt.Println("Note how the global binners fix one boundary per attribute for the")
	fmt.Println("whole dataset, while SDAD-CS re-bins age and hours jointly and finds")
	fmt.Println("the older-Doctorates-working-long-hours interaction as its own pattern.")
}
