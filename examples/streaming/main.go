// Streaming: watch a production line in (simulated) real time. The paper's
// motivation is catching an oven running hot *while* the batch is being
// processed; this example feeds per-part records into a sliding-window
// monitor and prints pattern-change alerts as the line drifts into a bad
// regime and back.
//
// Run with:
//
//	go run ./examples/streaming
package main

import (
	"errors"
	"fmt"
	"math/rand"

	"sdadcs"
)

func main() {
	monitor, err := sdadcs.NewStreamMonitor(
		sdadcs.StreamSchema{
			Name:        "reflow-line",
			Continuous:  []string{"peak_temp"},
			Categorical: []string{"lane"},
		},
		sdadcs.StreamConfig{
			WindowSize:    1000,
			MineEvery:     500,
			MinEventScore: 0.2,
			Mining: sdadcs.Config{
				Measure:  sdadcs.SurprisingMeasure,
				MaxDepth: 2,
			},
		},
	)
	if err != nil {
		panic(err)
	}

	rng := rand.New(rand.NewSource(7))
	emit := func(batch int, hot bool) {
		for i := 0; i < 500; i++ {
			temp := 240 + rng.Float64()*20
			lane := []string{"front", "rear"}[rng.Intn(2)]
			result := "pass"
			switch {
			case hot && lane == "rear" && temp > 252 && rng.Float64() < 0.9:
				result = "fail" // the planted thermal failure mode
			case rng.Float64() < 0.03:
				result = "fail" // background fallout
			}
			events, err := monitor.Append([]float64{temp}, []string{lane}, result)
			if errors.Is(err, sdadcs.ErrWindowNotMineable) {
				continue // single-group window: retry at the next tick
			}
			if err != nil {
				panic(err)
			}
			for _, e := range events {
				fmt.Printf("batch %d: [%s] %s (score %.2f)\n",
					batch, e.Kind, e.Format, e.Contrast.Score)
			}
		}
	}

	fmt.Println("-- normal operation --")
	for batch := 1; batch <= 3; batch++ {
		emit(batch, false)
	}
	fmt.Println("-- rear lane starts running hot --")
	for batch := 4; batch <= 6; batch++ {
		emit(batch, true)
	}
	fmt.Println("-- maintenance fixes the lane --")
	for batch := 7; batch <= 10; batch++ {
		emit(batch, false)
	}

	fmt.Printf("\n%d windows mined; current pattern count: %d\n",
		monitor.Mines(), len(monitor.Current()))
}
