// Manufacturing: the paper's §6 case study. A semiconductor packaging
// line produces per-part context (equipment, tray position) and sensor
// readings (reflow-oven thermal profile); parts that failed final test are
// contrasted against a sample of the whole population to localize the
// root cause.
//
// Run with:
//
//	go run ./examples/manufacturing
package main

import (
	"fmt"
	"runtime"
	"time"

	"sdadcs"
	"sdadcs/internal/datagen"
)

func main() {
	// Synthetic line data with a planted failure signature: the rear lane
	// of the reflow oven on chip-attach module SCE runs hot (see
	// DESIGN.md §3 — the paper's own dataset is Intel-proprietary).
	d := datagen.Manufacturing(datagen.ManufacturingConfig{
		Seed:       20190326,
		Population: 8000,
		Failed:     2000,
		Features:   60,
	})
	pop := d.GroupIndex("Population")
	fail := d.GroupIndex("Failed")

	fmt.Printf("parts: %d population sample + %d failed, %d attributes\n\n",
		d.GroupSizes()[pop], d.GroupSizes()[fail], d.NumAttrs())

	start := time.Now()
	res := sdadcs.Mine(d, sdadcs.Config{
		Measure:  sdadcs.SupportDiff,
		MaxDepth: 2,
		Workers:  runtime.NumCPU(), // §6's parallel per-level strategy
	})
	elapsed := time.Since(start)

	fmt.Printf("%-55s %9s %10s %8s\n", "contrast set", "supp diff", "population", "failed")
	for _, c := range res.Contrasts {
		fmt.Printf("%-55s %9.2f %10.2f %8.2f\n",
			c.Set.Format(d),
			c.Supports.MaxDiff(),
			c.Supports.Supp(pop),
			c.Supports.Supp(fail))
	}

	fmt.Printf("\nmined in %s with %d workers (%d spaces evaluated, %d pruned, %d filtered as not meaningful)\n",
		elapsed.Round(time.Millisecond), runtime.NumCPU(),
		res.Stats.PartitionsEvaluated, res.Stats.SpacesPruned, res.Stats.FilteredOut)
	fmt.Println("\nReading the output: failures concentrate on one chip-attach module and")
	fmt.Println("its placement tool, in the rear tray row, with elevated reflow-oven")
	fmt.Println("readings — pointing at temperature control in that module's rear lane.")
}
