package stream

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"sdadcs/internal/core"
	"sdadcs/internal/dataset"
	"sdadcs/internal/metrics"
	"sdadcs/internal/pattern"
)

func lineSchema() Schema {
	return Schema{
		Name:        "line",
		Continuous:  []string{"temp"},
		Categorical: []string{"machine"},
	}
}

// feed appends n rows from the given regime. In the "normal" regime
// failures are random; in the "hot" regime parts on M2 with high
// temperature fail.
func feed(t *testing.T, m *Monitor, rng *rand.Rand, n int, hot bool) []Event {
	t.Helper()
	var all []Event
	for i := 0; i < n; i++ {
		temp := 100 + rng.Float64()*100
		machine := []string{"M1", "M2"}[rng.Intn(2)]
		group := "pass"
		if hot {
			if temp > 170 && machine == "M2" && rng.Float64() < 0.95 {
				group = "fail"
			} else if rng.Float64() < 0.02 {
				group = "fail"
			}
		} else if rng.Float64() < 0.05 {
			group = "fail"
		}
		events, err := m.Append([]float64{temp}, []string{machine}, group)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, events...)
	}
	return all
}

func newTestMonitor(tb testing.TB) *Monitor {
	tb.Helper()
	m, err := NewMonitor(lineSchema(), Config{
		WindowSize: 800,
		MineEvery:  400,
		Mining:     core.Config{Measure: pattern.SurprisingMeasure, MaxDepth: 2},
	})
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

// mustMonitor builds a monitor or fails the test.
func mustMonitor(tb testing.TB, schema Schema, cfg Config) *Monitor {
	tb.Helper()
	m, err := NewMonitor(schema, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

func TestMonitorDetectsRegimeChange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := newTestMonitor(t)

	// Warm up on the normal regime; drain its initial events.
	feed(t, m, rng, 1200, false)
	if m.Mines() == 0 {
		t.Fatal("no mining during warmup")
	}

	// Switch to the hot regime: the failure signature must appear.
	events := feed(t, m, rng, 1600, true)
	sawSignature := false
	for _, e := range events {
		if e.Kind != Appeared && e.Kind != Drifted {
			continue
		}
		set := e.Contrast.Set
		_, hasTemp := set.ItemOn(0)
		if hasTemp && e.Contrast.Score > 0.3 {
			sawSignature = true
		}
	}
	if !sawSignature {
		for _, e := range events {
			t.Logf("event %s: %s score=%.3f", e.Kind, e.Format, e.Contrast.Score)
		}
		t.Error("hot-regime signature not reported")
	}
}

func TestMonitorQuietOnStableStream(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := mustMonitor(t, lineSchema(), Config{
		WindowSize:    800,
		MineEvery:     400,
		MinEventScore: 0.2, // alerting floor: ignore weak flicker
		Mining:        core.Config{Measure: pattern.SurprisingMeasure, MaxDepth: 2},
	})
	feed(t, m, rng, 1600, true) // reach steady state on one regime
	events := feed(t, m, rng, 1600, true)
	// A stable regime should produce few strong events (boundary jitter
	// can cause occasional drift reports, but not a stream of strong
	// appearances).
	appeared := 0
	for _, e := range events {
		if e.Kind == Appeared {
			appeared++
		}
	}
	if appeared > 2 {
		t.Errorf("%d strong appearances on a stable stream", appeared)
	}
}

func TestMonitorWindowEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := newTestMonitor(t)
	feed(t, m, rng, 3000, false)
	if m.Len() != 800 {
		t.Errorf("window holds %d rows, want 800", m.Len())
	}
	// After feeding far more hot rows than the window holds, the normal
	// regime must be fully forgotten: current patterns show the
	// signature.
	feed(t, m, rng, 2000, true)
	found := false
	for _, c := range m.Current() {
		if c.Score > 0.3 {
			found = true
		}
	}
	if !found {
		t.Error("current patterns do not reflect the new regime")
	}
	if m.CurrentData() == nil {
		t.Error("no current snapshot dataset")
	}
}

func TestMonitorSchemaMismatch(t *testing.T) {
	m := newTestMonitor(t)
	if _, err := m.Append([]float64{1, 2}, []string{"M1"}, "pass"); err == nil {
		t.Error("wrong continuous arity should error")
	}
	if _, err := m.Append([]float64{1}, nil, "pass"); err == nil {
		t.Error("wrong categorical arity should error")
	}
}

func TestMonitorSingleGroupWindow(t *testing.T) {
	m := mustMonitor(t, lineSchema(), Config{WindowSize: 100, MineEvery: 50})
	// All rows in one group: every due re-mine must surface the typed
	// sentinel (not silently report "no changes"), produce no events, and
	// leave the monitor usable.
	ticks := 0
	for i := 0; i < 200; i++ {
		events, err := m.Append([]float64{float64(i)}, []string{"M1"}, "pass")
		if err != nil {
			if !errors.Is(err, ErrWindowNotMineable) {
				t.Fatalf("unexpected error: %v", err)
			}
			ticks++
		}
		if len(events) != 0 {
			t.Fatal("events from a single-group window")
		}
	}
	if ticks == 0 {
		t.Error("no ErrWindowNotMineable surfaced from single-group re-mines")
	}
	if m.SkippedMines() != ticks {
		t.Errorf("SkippedMines = %d, want %d", m.SkippedMines(), ticks)
	}
	if m.Mines() != 0 {
		t.Errorf("Mines = %d on an unmineable stream", m.Mines())
	}
	if m.Snapshot() != nil {
		t.Error("single-group snapshot should be nil")
	}
	// A second group arriving makes the next due re-mine succeed (50 fail
	// rows: the window is then half pass, half fail).
	for i := 0; i < 50; i++ {
		if _, err := m.Append([]float64{float64(i)}, []string{"M1"}, "fail"); err != nil {
			t.Fatalf("Append after second group: %v", err)
		}
	}
	if m.Mines() == 0 {
		t.Error("monitor did not recover once a second group arrived")
	}
}

func TestStructurallySame(t *testing.T) {
	// Two snapshot datasets whose categorical domains are coded in
	// opposite first-appearance orders: in da, "M2" is code 2; in db it
	// is code 0.
	mk := func(values []string) *dataset.Dataset {
		n := len(values)
		x := make([]float64, n)
		g := make([]string, n)
		for i := range x {
			x[i] = float64(i)
			g[i] = []string{"p", "f"}[i%2]
		}
		return dataset.NewBuilder("s").
			AddContinuous("temp", x).
			AddCategorical("machine", values).
			SetGroups(g).
			MustBuild()
	}
	da := mk([]string{"M0", "M1", "M2", "M0", "M1", "M2"})
	db := mk([]string{"M2", "M1", "M0", "M2", "M1", "M0"})

	a := pattern.NewItemset(pattern.RangeItem(0, 1, 3), pattern.CatItem(1, 2)) // M2 in da
	b := pattern.NewItemset(pattern.RangeItem(0, 2, 4), pattern.CatItem(1, 0)) // M2 in db
	if !structurallySame(a, da, b, db) {
		t.Error("same value under different codes should match")
	}
	sameCode := pattern.NewItemset(pattern.RangeItem(0, 2, 4), pattern.CatItem(1, 2)) // M0 in db
	if structurallySame(a, da, sameCode, db) {
		t.Error("same code but different value should not match")
	}
	disjoint := pattern.NewItemset(pattern.RangeItem(0, 4, 5), pattern.CatItem(1, 0))
	if structurallySame(a, da, disjoint, db) {
		t.Error("disjoint ranges should not match")
	}
	smaller := pattern.NewItemset(pattern.RangeItem(0, 1, 3))
	if structurallySame(a, da, smaller, db) {
		t.Error("different sizes should not match")
	}
	if structurallySame(a, nil, b, db) {
		t.Error("nil dataset should not match")
	}
}

// TestDiffSiblingPatterns: when two sibling patterns over the same
// attribute persist across windows — the low and high halves of a split,
// say — diff must pair each new pattern with the previous pattern whose
// range it actually continues, not the first structural candidate in list
// order. First-match pairing used to cross the siblings (both overlap near
// the split point) and emit a spurious Drifted plus an Appeared and a
// Disappeared for a perfectly stable pattern set.
func TestDiffSiblingPatterns(t *testing.T) {
	mkData := func(name string) *dataset.Dataset {
		x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
		g := make([]string, len(x))
		for i := range g {
			g[i] = []string{"pass", "fail"}[i%2]
		}
		return dataset.NewBuilder(name).
			AddContinuous("temp", x).
			SetGroups(g).
			MustBuild()
	}
	mkC := func(lo, hi, score float64) pattern.Contrast {
		return pattern.Contrast{
			Set:   pattern.NewItemset(pattern.RangeItem(0, lo, hi)),
			Score: score,
		}
	}

	m := mustMonitor(t, Schema{Name: "line", Continuous: []string{"temp"}},
		Config{WindowSize: 100, MineEvery: 50})
	m.curData = mkData("prev")
	m.current = []pattern.Contrast{
		mkC(0, 5, 0.5),    // low sibling
		mkC(4.5, 10, 0.9), // high sibling
	}
	nextD := mkData("next")

	// The same two siblings, bin boundaries jittered, the high one listed
	// first. It overlaps BOTH previous patterns; only maximal-overlap
	// pairing matches it to its own predecessor.
	events := m.diff(nextD, []pattern.Contrast{
		mkC(4, 9.5, 0.9), // high sibling, drifted boundaries
		mkC(0.2, 4, 0.5), // low sibling
	})
	for _, e := range events {
		t.Logf("spurious event %s: %s (score %.2f, prev %.2f)",
			e.Kind, e.Format, e.Contrast.Score, e.PrevScore)
	}
	if len(events) != 0 {
		t.Errorf("stable sibling patterns produced %d events, want 0", len(events))
	}

	// A genuine score drop on the high sibling must still be reported.
	events = m.diff(nextD, []pattern.Contrast{
		mkC(4, 9.5, 0.4),
		mkC(0.2, 4, 0.5),
	})
	drifted := 0
	for _, e := range events {
		if e.Kind == Drifted && e.PrevScore == 0.9 {
			drifted++
		}
	}
	if drifted != 1 {
		t.Errorf("high-sibling score drop reported %d drift events, want 1", drifted)
	}
}

func TestEventKindString(t *testing.T) {
	if Appeared.String() != "appeared" || Disappeared.String() != "disappeared" ||
		Drifted.String() != "drifted" {
		t.Error("kind names wrong")
	}
	if EventKind(9).String() == "" {
		t.Error("unknown kind should render")
	}
}

// TestRemineLatencyRecorded: a recorder on the mining config observes one
// latency sample per window re-mine.
func TestRemineLatencyRecorded(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rec := metrics.New()
	m := mustMonitor(t, lineSchema(), Config{
		WindowSize: 400,
		MineEvery:  200,
		Mining: core.Config{
			Measure: pattern.SurprisingMeasure, MaxDepth: 2, Metrics: rec,
		},
	})
	feed(t, m, rng, 900, true)
	if m.Mines() == 0 {
		t.Fatal("no re-mines happened")
	}
	s := rec.Snapshot()
	if s.Remine.Count != int64(m.Mines()) {
		t.Errorf("remine observations = %d, want %d (one per mine)", s.Remine.Count, m.Mines())
	}
	if s.Remine.TotalNanos <= 0 || s.Remine.MaxNanos < s.Remine.MinNanos {
		t.Errorf("remine timer inconsistent: %+v", s.Remine)
	}
	// The combination-search counters flow through from core as well.
	if len(s.Levels) == 0 {
		t.Error("no per-level data from windowed mining")
	}
}

// TestTinyWindowMineEveryClamped pins the WindowSize 1–3 regression: the
// MineEvery default is WindowSize/4, which integer-divides to zero for tiny
// windows and made the `sinceMine < MineEvery` due-check vacuously true —
// re-mining on every append by arithmetic accident rather than by policy.
// The clamp makes the cadence an explicit 1.
func TestTinyWindowMineEveryClamped(t *testing.T) {
	for _, w := range []int{1, 2, 3} {
		m := mustMonitor(t, lineSchema(), Config{
			WindowSize: w,
			Mining:     core.Config{Measure: pattern.SurprisingMeasure, MaxDepth: 1},
		})
		if m.cfg.MineEvery != 1 {
			t.Errorf("WindowSize=%d: MineEvery defaulted to %d, want clamp to 1",
				w, m.cfg.MineEvery)
		}
	}
	// WindowSize 4 is the first size where the /4 default is not clamped.
	m := mustMonitor(t, lineSchema(), Config{
		WindowSize: 4,
		Mining:     core.Config{Measure: pattern.SurprisingMeasure, MaxDepth: 1},
	})
	if m.cfg.MineEvery != 1 {
		t.Errorf("WindowSize=4: MineEvery = %d, want 1 (4/4)", m.cfg.MineEvery)
	}
}

// TestTinyWindowMinesEveryAppend: with the clamped cadence a WindowSize-2
// monitor attempts a re-mine on every append — each attempt either mines or
// is counted as skipped (single-group window), never silently dropped.
func TestTinyWindowMinesEveryAppend(t *testing.T) {
	m := mustMonitor(t, lineSchema(), Config{
		WindowSize: 2,
		Mining:     core.Config{Measure: pattern.SurprisingMeasure, MaxDepth: 1},
	})
	const appends = 8
	for i := 0; i < appends; i++ {
		group := []string{"pass", "fail"}[i%2]
		_, err := m.Append([]float64{float64(200 + 10*(i%2))}, []string{"m1"}, group)
		if err != nil && !errors.Is(err, ErrWindowNotMineable) {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if got := m.Mines() + m.SkippedMines(); got != appends {
		t.Errorf("mines(%d)+skipped(%d) = %d, want one attempt per append (%d)",
			m.Mines(), m.SkippedMines(), got, appends)
	}
	if m.Mines() == 0 {
		t.Error("two-group tiny window never mined successfully")
	}
}

// TestCadenceGuardCountClauseRemoved pins the cadence-guard fix. The old
// guard carried a second `m.count < m.cfg.MineEvery` clause; the audit
// showed it dead for every valid config (during first fill the row count
// never trails the appends-since-mine counter, and a saturated window
// holds WindowSize ≥ MineEvery rows) — but for MineEvery > WindowSize it
// silently suppressed every re-mine forever. With the clause gone, a
// tiny window forced past Validate still attempts a re-mine each time the
// cadence comes due: every attempt lands in Mines() or SkippedMines().
func TestCadenceGuardCountClauseRemoved(t *testing.T) {
	m := mustMonitor(t, lineSchema(), Config{
		WindowSize: 4,
		MineEvery:  4,
		Mining:     core.Config{Measure: pattern.SurprisingMeasure, MaxDepth: 1},
	})
	m.cfg.MineEvery = 6 // force the misconfiguration Validate now rejects
	const appends = 12
	for i := 0; i < appends; i++ {
		group := []string{"pass", "fail"}[i%2]
		_, err := m.Append([]float64{float64(100 + i)}, []string{"m1"}, group)
		if err != nil && !errors.Is(err, ErrWindowNotMineable) {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	// Due at appends 6 and 12. The removed clause compared the window's
	// row count (at most 4) against the cadence (6) and skipped both —
	// zero attempts, reported as a clean "no changes" stream.
	if got := m.Mines() + m.SkippedMines(); got != 2 {
		t.Errorf("mines(%d)+skipped(%d) = %d attempts, want 2 (every due re-mine runs)",
			m.Mines(), m.SkippedMines(), got)
	}
	if m.Mines() == 0 {
		t.Error("two-group window never mined despite due re-mines")
	}
}

// TestRangeOverlapSymmetric pins the unbounded-interval scoring cases:
// the overlap score must not depend on which side of the pair an
// unbounded end sits (clamping direction flips between windows).
func TestRangeOverlapSymmetric(t *testing.T) {
	inf := math.Inf(1)
	set := func(lo, hi float64) pattern.Itemset {
		return pattern.NewItemset(pattern.RangeItem(0, lo, hi))
	}
	cases := []struct {
		name string
		a, b pattern.Itemset
		want float64
	}{
		{"finite Jaccard", set(0, 4), set(2, 6), 2.0 / 6.0},
		{"identical finite", set(1, 3), set(1, 3), 1},
		{"both unbounded same way", set(0, inf), set(1, inf), 1},
		{"opposite half-lines", set(-inf, 5), set(3, inf), 0},
		{"finite nested in half-line", set(2, 6), set(0, inf), 1},
		{"finite overlapping half-line", set(2, 6), set(4, inf), 0.5},
		{"disjoint", set(0, 1), set(2, 3), 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, rev := rangeOverlap(tc.a, tc.b), rangeOverlap(tc.b, tc.a)
			if math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("rangeOverlap = %v, want %v", got, tc.want)
			}
			if math.Float64bits(got) != math.Float64bits(rev) {
				t.Errorf("asymmetric: a,b=%v but b,a=%v", got, rev)
			}
		})
	}
}

// TestDiffSiblingPatternsBoundaryJitterUnbounded: the regression the
// symmetric scoring fixes. One window clamps the high sibling to a
// half-line, the next re-bounds it; under the old scoring a finite
// interval inside an unbounded union earned zero credit, so both
// previous siblings tied at 0 and first-match order — not range
// continuity — decided the pairing, emitting spurious events for a
// stable pattern set.
func TestDiffSiblingPatternsBoundaryJitterUnbounded(t *testing.T) {
	inf := math.Inf(1)
	mkData := func(name string) *dataset.Dataset {
		x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
		g := make([]string, len(x))
		for i := range g {
			g[i] = []string{"pass", "fail"}[i%2]
		}
		return dataset.NewBuilder(name).
			AddContinuous("temp", x).
			SetGroups(g).
			MustBuild()
	}
	mkC := func(lo, hi, score float64) pattern.Contrast {
		return pattern.Contrast{
			Set:   pattern.NewItemset(pattern.RangeItem(0, lo, hi)),
			Score: score,
		}
	}
	m := mustMonitor(t, Schema{Name: "line", Continuous: []string{"temp"}},
		Config{WindowSize: 100, MineEvery: 50})
	m.curData = mkData("prev")
	m.current = []pattern.Contrast{
		mkC(-inf, 5, 0.5), // low sibling, clamped low end
		mkC(5, inf, 0.9),  // high sibling, clamped high end
	}
	// Next window re-bounds the high sibling to a finite interval that
	// also pokes just below the previous split point: it overlaps both
	// previous siblings, and both unions are unbounded.
	events := m.diff(mkData("next"), []pattern.Contrast{
		mkC(4.8, 9, 0.9),    // high sibling, finite this window
		mkC(-inf, 4.8, 0.5), // low sibling, jittered boundary
	})
	for _, e := range events {
		t.Logf("spurious event %s: %s (score %.2f, prev %.2f)",
			e.Kind, e.Format, e.Contrast.Score, e.PrevScore)
	}
	if len(events) != 0 {
		t.Errorf("stable clamped siblings produced %d events, want 0", len(events))
	}
}

// TestConfigValidate mirrors core's configcheck tests: every actively
// malformed field is rejected with a *FieldError naming it, zero values are
// never errors, and an invalid embedded Mining config surfaces the core
// package's own typed errors through the join.
func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name  string
		cfg   Config
		field string // "" = config is valid
	}{
		{"zero value", Config{}, ""},
		{"explicit sane", Config{WindowSize: 100, MineEvery: 25, DriftDelta: 0.2, MinEventScore: 0.1}, ""},
		{"negative window", Config{WindowSize: -1}, "WindowSize"},
		{"negative cadence", Config{MineEvery: -5}, "MineEvery"},
		{"negative drift", Config{DriftDelta: -0.1}, "DriftDelta"},
		{"NaN drift", Config{DriftDelta: math.NaN()}, "DriftDelta"},
		{"negative event floor", Config{MinEventScore: -1}, "MinEventScore"},
		{"NaN event floor", Config{MinEventScore: math.NaN()}, "MinEventScore"},
		{"cadence exceeds window", Config{WindowSize: 100, MineEvery: 101}, "MineEvery"},
		{"cadence exceeds tiny window", Config{WindowSize: 2, MineEvery: 3}, "MineEvery"},
		{"cadence exceeds defaulted window", Config{MineEvery: 2001}, "MineEvery"},
		{"cadence equals window", Config{WindowSize: 100, MineEvery: 100}, ""},
		{"cadence equals defaulted window", Config{MineEvery: 2000}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.field == "" {
				if err != nil {
					t.Fatalf("valid config rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid %s accepted", tc.field)
			}
			var fe *FieldError
			if !errors.As(err, &fe) {
				t.Fatalf("error is not a *FieldError: %v", err)
			}
			if fe.Field != tc.field {
				t.Errorf("FieldError.Field = %q, want %q", fe.Field, tc.field)
			}
			if !strings.Contains(err.Error(), tc.field) {
				t.Errorf("message %q does not name the field %q", err, tc.field)
			}
		})
	}
}

// TestConfigValidateJoinsMiningErrors: a malformed embedded core.Config is
// reported through the same joined error, as the core package's typed
// *core.FieldError — callers can errors.As for either layer.
func TestConfigValidateJoinsMiningErrors(t *testing.T) {
	cfg := Config{
		WindowSize: -2, // stream-layer violation
		Mining:     core.Config{Alpha: 1.5, MaxDepth: -1},
	}
	err := cfg.Validate()
	if err == nil {
		t.Fatal("invalid config accepted")
	}
	var se *FieldError
	if !errors.As(err, &se) || se.Field != "WindowSize" {
		t.Errorf("stream-layer *FieldError not surfaced: %v", err)
	}
	var ce *core.FieldError
	if !errors.As(err, &ce) {
		t.Fatalf("embedded mining violation not surfaced as *core.FieldError: %v", err)
	}
	if ce.Field != "Alpha" && ce.Field != "MaxDepth" {
		t.Errorf("core FieldError names %q, want Alpha or MaxDepth", ce.Field)
	}
}

// TestNewMonitorRejectsInvalidConfig: construction is fail-fast — the
// validation errors come back from NewMonitor before any buffer allocation.
func TestNewMonitorRejectsInvalidConfig(t *testing.T) {
	_, err := NewMonitor(lineSchema(), Config{WindowSize: -1, DriftDelta: math.NaN()})
	if err == nil {
		t.Fatal("NewMonitor accepted an invalid config")
	}
	var fe *FieldError
	if !errors.As(err, &fe) {
		t.Fatalf("NewMonitor error is not addressable as *FieldError: %v", err)
	}
}
