package stream

import (
	"math"
	"math/rand"
	"testing"

	"sdadcs/internal/core"
	"sdadcs/internal/metrics"
	"sdadcs/internal/pattern"
)

// sameContrast compares two contrasts bit-for-bit: itemset key, score,
// χ², p, and support vectors.
func sameContrast(a, b pattern.Contrast) bool {
	if a.Set.Key() != b.Set.Key() ||
		math.Float64bits(a.Score) != math.Float64bits(b.Score) ||
		math.Float64bits(a.ChiSq) != math.Float64bits(b.ChiSq) ||
		math.Float64bits(a.P) != math.Float64bits(b.P) ||
		len(a.Supports.Count) != len(b.Supports.Count) {
		return false
	}
	for g := range a.Supports.Count {
		if a.Supports.Count[g] != b.Supports.Count[g] || a.Supports.Size[g] != b.Supports.Size[g] {
			return false
		}
	}
	return true
}

// driveLockstep feeds the same rows to an incremental and a full-re-mine
// monitor and asserts bit-identical behavior at every append: same
// errors, same event streams (kind, format, scores), and at the end the
// same current pattern set.
func driveLockstep(t *testing.T, seed int64, inc, full *Monitor, appends int,
	row func(i int) ([]float64, []string, string)) {
	t.Helper()
	for i := 0; i < appends; i++ {
		cont, cat, group := row(i)
		cont2 := append([]float64(nil), cont...)
		cat2 := append([]string(nil), cat...)
		evA, errA := inc.Append(cont, cat, group)
		evB, errB := full.Append(cont2, cat2, group)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("seed %d append %d: err %v vs %v", seed, i, errA, errB)
		}
		if len(evA) != len(evB) {
			t.Fatalf("seed %d append %d: %d events vs %d", seed, i, len(evA), len(evB))
		}
		for j := range evA {
			if evA[j].Kind != evB[j].Kind || evA[j].Format != evB[j].Format ||
				math.Float64bits(evA[j].PrevScore) != math.Float64bits(evB[j].PrevScore) ||
				!sameContrast(evA[j].Contrast, evB[j].Contrast) {
				t.Fatalf("seed %d append %d event %d:\n  inc:  %+v\n  full: %+v",
					seed, i, j, evA[j], evB[j])
			}
		}
	}
	a, b := inc.Current(), full.Current()
	if len(a) != len(b) {
		t.Fatalf("seed %d: %d patterns vs %d", seed, len(a), len(b))
	}
	for j := range a {
		if !sameContrast(a[j], b[j]) {
			t.Fatalf("seed %d pattern %d: %s=%v vs %s=%v",
				seed, j, a[j].Set.Key(), a[j].Score, b[j].Set.Key(), b[j].Score)
		}
	}
	if inc.Mines() != full.Mines() || inc.SkippedMines() != full.SkippedMines() {
		t.Fatalf("seed %d: mines %d/%d vs %d/%d",
			seed, inc.Mines(), inc.SkippedMines(), full.Mines(), full.SkippedMines())
	}
}

// TestIncrementalRemineBattery is the 50-seed × 200-append oracle battery
// of the incremental re-evaluation gate: a monitor using
// core.MineIncremental must be bit-identical — patterns, counts, scores,
// χ², tie-breaks, event streams — to one forced through full re-mines by
// the DisableIncrementalRemine escape hatch, under fully random traffic
// (shifting domains, varying group sizes, NaN readings, re-mines during
// fill and after saturation).
func TestIncrementalRemineBattery(t *testing.T) {
	const (
		window  = 48
		appends = 200
	)
	for seed := int64(0); seed < 50; seed++ {
		mk := func(fullOnly bool) *Monitor {
			m, err := NewMonitor(testSchema(), Config{
				WindowSize:               window,
				MineEvery:                window/4 + int(seed%5),
				DisableIncrementalRemine: fullOnly,
				Mining:                   core.Config{MaxDepth: 2},
			})
			if err != nil {
				t.Fatalf("seed %d: NewMonitor: %v", seed, err)
			}
			return m
		}
		inc, full := mk(false), mk(true)
		rng := rand.New(rand.NewSource(seed))
		driveLockstep(t, seed, inc, full, appends, func(int) ([]float64, []string, string) {
			return randomRow(rng)
		})
	}
}

// cyclicRow returns row i of a periodic trace (period 8) over the test
// schema: fixed machines, shifts and groups, machine-dependent base
// temperatures. perturb != nil may replace the continuous values.
func cyclicRow(i int, perturb func(i int, machine string, cont []float64)) ([]float64, []string, string) {
	machines := [8]string{"m0", "m0", "m1", "m1", "m2", "m2", "m0", "m1"}
	shifts := [8]string{"day", "day", "day", "night", "night", "night", "night", "day"}
	grps := [8]string{"ok", "ok", "fail", "ok", "fail", "degraded", "fail", "ok"}
	base := [8]float64{18, 19, 24, 25, 31, 32, 20, 26}
	k := i % 8
	cont := []float64{base[k], 1.5 + float64(k)*0.1}
	if perturb != nil {
		perturb(i, machines[k], cont)
	}
	return cont, []string{machines[k], shifts[k]}, grps[k]
}

// stableTraceConfig aligns window and cadence to the trace period so
// consecutive saturated windows hold identical row sequences (identical
// fingerprints): window 48 and MineEvery 16 are both multiples of 8.
func stableTraceConfig(rec *metrics.Recorder, fullOnly bool) Config {
	return Config{
		WindowSize:               48,
		MineEvery:                16,
		DisableIncrementalRemine: fullOnly,
		Mining:                   core.Config{MaxDepth: 2, Metrics: rec},
	}
}

// TestIncrementalRemineStableRegime drives the aligned cyclic trace with
// a perturbation confined to machine m2's temperature readings: the
// incremental monitor must stay bit-identical to the full one while
// provably replaying the untouched part of the frontier (stable nodes
// recorded, node evaluations saved).
func TestIncrementalRemineStableRegime(t *testing.T) {
	recInc, recFull := metrics.New(), metrics.New()
	mk := func(rec *metrics.Recorder, fullOnly bool) *Monitor {
		m, err := NewMonitor(testSchema(), stableTraceConfig(rec, fullOnly))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	inc, full := mk(recInc, false), mk(recFull, true)
	perturb := func(i int, machine string, cont []float64) {
		if machine == "m2" {
			cont[0] += 0.25 * float64(i%5) // drifts between windows
		}
	}
	driveLockstep(t, 0, inc, full, 400, func(i int) ([]float64, []string, string) {
		return cyclicRow(i, perturb)
	})

	si, sf := recInc.Snapshot(), recFull.Snapshot()
	if si.GateStableNodes == 0 {
		t.Fatalf("aligned trace replayed nothing: stable=%d dirty=%d", si.GateStableNodes, si.GateDirtyNodes)
	}
	if si.GateDirtyNodes == 0 {
		t.Fatal("perturbed trace recorded no dirty nodes")
	}
	if si.ReminesInc == 0 || si.ReminesFull != 0 {
		t.Fatalf("incremental monitor modes: inc=%d full=%d", si.ReminesInc, si.ReminesFull)
	}
	if sf.ReminesFull == 0 || sf.ReminesInc != 0 {
		t.Fatalf("full monitor modes: inc=%d full=%d", sf.ReminesInc, sf.ReminesFull)
	}
	if si.NodeEval.Count >= sf.NodeEval.Count {
		t.Fatalf("incremental path saved no node evaluations: %d vs %d",
			si.NodeEval.Count, sf.NodeEval.Count)
	}
}

// TestIncrementalRemineZeroDelta: with the trace purely cyclic, every
// saturated aligned window is row-for-row identical to the previous one —
// once the state carries over, re-mines must replay the entire frontier
// (no dirty nodes, no node evaluations at all).
func TestIncrementalRemineZeroDelta(t *testing.T) {
	rec := metrics.New()
	m, err := NewMonitor(testSchema(), stableTraceConfig(rec, false))
	if err != nil {
		t.Fatal(err)
	}
	feedRows := func(n int, from int) {
		for i := from; i < from+n; i++ {
			cont, cat, group := cyclicRow(i, nil)
			if _, err := m.Append(cont, cat, group); err != nil {
				t.Fatalf("append %d: %v", i, err)
			}
		}
	}
	// Warm up through fill and the first two saturated re-mines (the
	// second is the first with a matching fingerprint to replay from).
	feedRows(48+2*16, 0)
	before := rec.Snapshot()
	feedRows(10*16, 48+2*16) // ten more aligned, identical windows
	after := rec.Snapshot()

	if after.ReminesInc-before.ReminesInc != 10 {
		t.Fatalf("expected 10 re-mines, got %d", after.ReminesInc-before.ReminesInc)
	}
	if after.GateDirtyNodes != before.GateDirtyNodes {
		t.Fatalf("identical windows produced %d dirty nodes",
			after.GateDirtyNodes-before.GateDirtyNodes)
	}
	if after.GateStableNodes == before.GateStableNodes {
		t.Fatal("identical windows replayed nothing")
	}
	if after.NodeEval.Count != before.NodeEval.Count {
		t.Fatalf("identical windows still evaluated %d nodes",
			after.NodeEval.Count-before.NodeEval.Count)
	}
}
