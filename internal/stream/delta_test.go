package stream

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"sdadcs/internal/bitmap"
	"sdadcs/internal/core"
)

func testSchema() Schema {
	return Schema{
		Name:        "line",
		Continuous:  []string{"temp", "pressure"},
		Categorical: []string{"machine", "shift"},
	}
}

func randomRow(rng *rand.Rand) ([]float64, []string, string) {
	cont := []float64{rng.NormFloat64()*5 + 20, rng.NormFloat64() + 1.5}
	if rng.Intn(20) == 0 {
		cont[1] = math.NaN() // missing reading
	}
	cat := []string{
		fmt.Sprintf("m%d", rng.Intn(4)),
		[]string{"day", "night"}[rng.Intn(2)],
	}
	group := []string{"ok", "fail", "degraded"}[rng.Intn(3)]
	return cont, cat, group
}

// TestDeltaIndexBattery is the 50-seed bit-identity battery: a monitor is
// driven with random rows through several full window wraps, and at every
// re-mine the delta-maintained index materialized for the snapshot is
// compared bitmap-for-bitmap against a from-scratch rebuild of the same
// snapshot. Any divergence — a missed eviction flip, a rotation error, a
// domain-order mismatch — fails the battery.
func TestDeltaIndexBattery(t *testing.T) {
	const (
		window  = 48 // not a multiple of 64: partial-word edges stay covered
		appends = 200
	)
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m, err := NewMonitor(testSchema(), Config{
			WindowSize: window,
			MineEvery:  window/4 + int(seed%5), // vary re-mine phase across seeds
			Mining:     core.Config{MaxDepth: 2},
		})
		if err != nil {
			t.Fatalf("seed %d: NewMonitor: %v", seed, err)
		}
		mined, fillChecks := 0, 0
		for i := 0; i < appends; i++ {
			cont, cat, group := randomRow(rng)
			if _, err := m.Append(cont, cat, group); err != nil {
				t.Fatalf("seed %d append %d: %v", seed, i, err)
			}
			if d := m.CurrentData(); d != nil && m.Mines() > mined {
				mined = m.Mines()
				if m.count < window {
					fillChecks++ // pre-saturation: evictions have not started
				}
				got := m.delta.Materialize(d, m.start, m.count, m.catAttrs())
				want := bitmap.NewIndex(d)
				if !bitmap.EqualIndex(got, want) {
					t.Fatalf("seed %d after %d appends: delta index differs from rebuild", seed, i+1)
				}
			}
		}
		if mined == 0 {
			t.Fatalf("seed %d: no re-mine ran", seed)
		}
		if fillChecks == 0 {
			// MineEvery < window, so re-mines fire while the window is still
			// filling: the battery must have compared that regime too, not
			// just saturated windows.
			t.Fatalf("seed %d: battery never compared a still-filling window", seed)
		}
	}
}

// noAutoMineMonitor builds a monitor that never auto-mines: Validate now
// rejects MineEvery > WindowSize, so the snapshot-focused tests construct
// a valid monitor and then push the cadence out of reach directly
// (in-package access; Append's guard reads m.cfg live).
func noAutoMineMonitor(tb testing.TB, window int) *Monitor {
	tb.Helper()
	m, err := NewMonitor(testSchema(), Config{WindowSize: window, MineEvery: window})
	if err != nil {
		tb.Fatal(err)
	}
	m.cfg.MineEvery = 1 << 30
	return m
}

// TestBufferedSnapshotMatchesFresh: the double-buffered snapshot path and
// the allocating Snapshot must produce identical datasets — same codes,
// same first-appearance domains, same group coding, same float bits.
func TestBufferedSnapshotMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := noAutoMineMonitor(t, 32)
	for i := 0; i < 80; i++ { // wraps the window twice
		cont, cat, group := randomRow(rng)
		if _, err := m.Append(cont, cat, group); err != nil {
			t.Fatal(err)
		}
		fresh := m.Snapshot()
		buffered := m.snapshotBuffered()
		if (fresh == nil) != (buffered == nil) {
			t.Fatalf("append %d: fresh=%v buffered=%v", i, fresh != nil, buffered != nil)
		}
		if fresh == nil {
			continue
		}
		if fresh.Rows() != buffered.Rows() || fresh.NumAttrs() != buffered.NumAttrs() {
			t.Fatalf("append %d: shape mismatch", i)
		}
		for a := 0; a < fresh.NumAttrs(); a++ {
			if fresh.Attr(a) != buffered.Attr(a) {
				t.Fatalf("append %d attr %d: %+v vs %+v", i, a, fresh.Attr(a), buffered.Attr(a))
			}
		}
		for r := 0; r < fresh.Rows(); r++ {
			for _, a := range fresh.ContinuousAttrs() {
				if math.Float64bits(fresh.Cont(a, r)) != math.Float64bits(buffered.Cont(a, r)) {
					t.Fatalf("append %d: cont attr %d row %d differs", i, a, r)
				}
			}
			for _, a := range fresh.CategoricalAttrs() {
				if fresh.CatCode(a, r) != buffered.CatCode(a, r) ||
					fresh.CatValue(a, r) != buffered.CatValue(a, r) {
					t.Fatalf("append %d: cat attr %d row %d differs", i, a, r)
				}
			}
			if fresh.Group(r) != buffered.Group(r) {
				t.Fatalf("append %d: group row %d differs", i, r)
			}
		}
		for g := 0; g < fresh.NumGroups(); g++ {
			if fresh.GroupName(g) != buffered.GroupName(g) {
				t.Fatalf("append %d: group name %d differs", i, g)
			}
		}
	}
}

// TestDoubleBufferKeepsPreviousSnapshotIntact: diff reads curData (the
// previous snapshot) while the next one is being assembled; alternating
// buffers must keep the previous snapshot's columns untouched.
func TestDoubleBufferKeepsPreviousSnapshotIntact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := noAutoMineMonitor(t, 16)
	for i := 0; i < 40; i++ {
		cont, cat, group := randomRow(rng)
		if _, err := m.Append(cont, cat, group); err != nil {
			t.Fatal(err)
		}
	}
	prev := m.snapshotBuffered()
	snap := make([]float64, prev.Rows())
	copy(snap, prev.ContColumn(0))
	prevGroups := append([]int(nil), prev.GroupCodes()...)

	for i := 0; i < 16; i++ { // slide a full window
		cont, cat, group := randomRow(rng)
		if _, err := m.Append(cont, cat, group); err != nil {
			t.Fatal(err)
		}
	}
	_ = m.snapshotBuffered() // writes the *other* buffer
	for r := range snap {
		if math.Float64bits(prev.ContColumn(0)[r]) != math.Float64bits(snap[r]) {
			t.Fatalf("previous snapshot's cont column mutated at row %d", r)
		}
		if prev.GroupCodes()[r] != prevGroups[r] {
			t.Fatalf("previous snapshot's group column mutated at row %d", r)
		}
	}
}

// TestIncrementalMatchesDisabled: two monitors fed the same rows — one
// with the delta index, one with it disabled — must report identical
// pattern sets and event streams. This is the end-to-end check that the
// seeded index changes nothing about mining results.
func TestIncrementalMatchesDisabled(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rngA := rand.New(rand.NewSource(seed))
		rngB := rand.New(rand.NewSource(seed))
		mk := func(disable bool) *Monitor {
			m, err := NewMonitor(testSchema(), Config{
				WindowSize:              40,
				MineEvery:               10,
				DisableIncrementalIndex: disable,
				Mining:                  core.Config{MaxDepth: 2},
			})
			if err != nil {
				t.Fatal(err)
			}
			return m
		}
		inc, base := mk(false), mk(true)
		for i := 0; i < 160; i++ {
			c1, k1, g1 := randomRow(rngA)
			c2, k2, g2 := randomRow(rngB)
			ev1, err1 := inc.Append(c1, k1, g1)
			ev2, err2 := base.Append(c2, k2, g2)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("seed %d append %d: err %v vs %v", seed, i, err1, err2)
			}
			if len(ev1) != len(ev2) {
				t.Fatalf("seed %d append %d: %d events vs %d", seed, i, len(ev1), len(ev2))
			}
			for j := range ev1 {
				if ev1[j].Kind != ev2[j].Kind || ev1[j].Format != ev2[j].Format ||
					ev1[j].Contrast.Score != ev2[j].Contrast.Score {
					t.Fatalf("seed %d append %d event %d: %+v vs %+v", seed, i, j, ev1[j], ev2[j])
				}
			}
		}
		a, b := inc.Current(), base.Current()
		if len(a) != len(b) {
			t.Fatalf("seed %d: %d patterns vs %d", seed, len(a), len(b))
		}
		for j := range a {
			if a[j].Score != b[j].Score || a[j].Format(inc.CurrentData()) != b[j].Format(base.CurrentData()) {
				t.Fatalf("seed %d pattern %d: %v vs %v", seed, j, a[j], b[j])
			}
		}
	}
}

// BenchmarkSnapshot pairs the allocating Snapshot path against the
// double-buffered one across window sizes: fresh snapshots allocate
// proportionally to the window, buffered ones only proportionally to the
// distinct-value domains.
func BenchmarkSnapshot(b *testing.B) {
	for _, window := range []int{1024, 8192} {
		m := noAutoMineMonitor(b, window)
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < window+window/2; i++ {
			cont, cat, group := randomRow(rng)
			if _, err := m.Append(cont, cat, group); err != nil {
				b.Fatal(err)
			}
		}
		b.Run(fmt.Sprintf("fresh/window=%d", window), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if m.Snapshot() == nil {
					b.Fatal("nil snapshot")
				}
			}
		})
		b.Run(fmt.Sprintf("buffered/window=%d", window), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if m.snapshotBuffered() == nil {
					b.Fatal("nil snapshot")
				}
			}
		})
	}
}

// TestBufferedSnapshotAllocsDoNotScaleWithWindow pins the satellite's
// claim numerically: bytes allocated per buffered snapshot must be within
// noise between a 1k and an 8k window.
func TestBufferedSnapshotAllocsDoNotScaleWithWindow(t *testing.T) {
	perSnapshot := func(window int) float64 {
		m := noAutoMineMonitor(t, window)
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < window+window/2; i++ {
			cont, cat, group := randomRow(rng)
			if _, err := m.Append(cont, cat, group); err != nil {
				t.Fatal(err)
			}
		}
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if m.snapshotBuffered() == nil {
					b.Fatal("nil snapshot")
				}
			}
		})
		return float64(res.AllocedBytesPerOp())
	}
	small, large := perSnapshot(1024), perSnapshot(8192)
	// The window grew 8×; buffered snapshot allocations (dataset shell,
	// domains, attr metadata) must not. Allow 2× for noise.
	if large > 2*small+1024 {
		t.Fatalf("buffered snapshot allocations scale with window: %0.f B at 1k vs %0.f B at 8k", small, large)
	}
}
