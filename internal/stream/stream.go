// Package stream maintains contrast patterns over a sliding window of
// arriving rows — the "timely feedback" deployment the paper's
// introduction motivates (detect an oven running hot *while* the batch is
// being processed) and its conclusion defers to the authors' companion
// streaming work. A Monitor buffers the last WindowSize rows, re-mines
// every MineEvery appends, and reports how the pattern set changed:
// patterns that appeared, disappeared, or drifted in strength.
//
// Because SDAD-CS re-derives bin boundaries on every window, two
// consecutive snapshots rarely produce bit-identical itemsets; patterns
// are matched structurally instead (same attributes, same categorical
// values, overlapping continuous ranges).
package stream

import (
	"errors"
	"fmt"
	"math"
	"time"

	"sdadcs/internal/bitmap"
	"sdadcs/internal/core"
	"sdadcs/internal/dataset"
	"sdadcs/internal/pattern"
)

// ErrWindowNotMineable is returned by Append when a re-mine was due but the
// window could not be mined — typically because it holds rows of fewer than
// two groups, so contrast mining is undefined. The window keeps filling;
// the next due re-mine will try again. Callers that only care about
// pattern changes can treat it as a skipped tick (errors.Is).
var ErrWindowNotMineable = errors.New("stream: window not mineable (need rows from at least two groups)")

// Schema declares the stream's columns, in arrival order.
type Schema struct {
	Name        string
	Continuous  []string
	Categorical []string
}

// Config controls the monitor.
type Config struct {
	// WindowSize is the number of most recent rows mined (default 2000).
	WindowSize int
	// MineEvery triggers a re-mine after this many appended rows
	// (default WindowSize/4).
	MineEvery int
	// DriftDelta is the score change that counts as a drift event
	// (default 0.1).
	DriftDelta float64
	// MinEventScore suppresses Appeared/Disappeared events for patterns
	// scoring below it (default 0 = report everything). Weak patterns
	// flicker across the largeness threshold between windows; an alerting
	// floor keeps the event stream to changes worth acting on.
	MinEventScore float64
	// DisableIncrementalIndex turns off the delta-maintained bitmap index
	// (see bitmap.DeltaIndex): every re-mine then rebuilds the index from
	// the snapshot, as before. The incremental path is asserted
	// bit-identical to the rebuild, so this is an escape hatch, not a
	// correctness trade.
	DisableIncrementalIndex bool
	// DisableIncrementalRemine forces every due re-mine to run the full
	// levelwise search instead of the incremental re-evaluation
	// (core.MineIncremental) that replays node outcomes the window's
	// change summary proves unchanged. The incremental path is asserted
	// bit-identical to the full re-mine, so like the index switch this is
	// an A/B escape hatch, not a correctness trade. Incremental
	// re-evaluation rides on the delta index; DisableIncrementalIndex
	// implies it.
	DisableIncrementalRemine bool
	// Mining configures the underlying miner (zero value = paper
	// defaults).
	Mining core.Config
}

func (c *Config) defaults() {
	if c.WindowSize == 0 {
		c.WindowSize = 2000
	}
	if c.MineEvery == 0 {
		c.MineEvery = c.WindowSize / 4
	}
	// WindowSize 1–3 makes the WindowSize/4 default collapse to zero,
	// which would re-mine on EVERY append through the `sinceMine <
	// MineEvery` guard never holding — the regression the tiny-window
	// tests pin. A tiny window legitimately re-mines every row, but by
	// this explicit clamp, not by integer-division accident.
	if c.MineEvery < 1 {
		c.MineEvery = 1
	}
	if c.DriftDelta == 0 {
		c.DriftDelta = 0.1
	}
}

// FieldError reports one invalid Config field, mirroring core.FieldError:
// Validate wraps every violation so callers can errors.As for the field
// name.
type FieldError struct {
	// Field is the Config field name (e.g. "WindowSize").
	Field string
	// Value is the rejected value.
	Value any
	// Reason states what a valid value looks like.
	Reason string
}

// Error renders "stream config: Field = value: reason".
func (e *FieldError) Error() string {
	return fmt.Sprintf("stream config: %s = %v: %s", e.Field, e.Value, e.Reason)
}

// Validate checks the monitor configuration with the same philosophy as
// core.Config.Validate: zero values are never errors (they map to
// documented defaults); only actively malformed settings are rejected.
// All violations are collected and returned joined; each is a
// *FieldError, and an invalid embedded Mining config contributes the core
// package's own *core.FieldError values to the join.
func (c Config) Validate() error {
	var errs []error
	bad := func(field string, value any, reason string) {
		errs = append(errs, &FieldError{Field: field, Value: value, Reason: reason})
	}
	if c.WindowSize < 0 {
		bad("WindowSize", c.WindowSize, "window size must be positive (0 selects the default)")
	}
	if c.MineEvery < 0 {
		bad("MineEvery", c.MineEvery, "re-mine cadence must be positive (0 selects the default)")
	}
	if c.MineEvery > 0 && c.WindowSize >= 0 {
		// Resolve the window the cadence will actually run against (0
		// selects the documented default). A cadence longer than the window
		// means whole windows of rows slide past unmined — and before the
		// cadence-guard fix in Append it silently never mined at all — so
		// it is rejected as actively malformed rather than defaulted.
		win := c.WindowSize
		if win == 0 {
			win = 2000
		}
		if c.MineEvery > win {
			bad("MineEvery", c.MineEvery,
				fmt.Sprintf("re-mine cadence cannot exceed the window size (%d): rows would slide past unmined", win))
		}
	}
	if c.DriftDelta < 0 || math.IsNaN(c.DriftDelta) {
		bad("DriftDelta", c.DriftDelta, "drift threshold must be a non-negative number")
	}
	if c.MinEventScore < 0 || math.IsNaN(c.MinEventScore) {
		bad("MinEventScore", c.MinEventScore, "event floor must be a non-negative number")
	}
	if err := c.Mining.Validate(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// EventKind classifies a pattern change.
type EventKind int

// Event kinds.
const (
	// Appeared: a pattern with no structural match in the previous
	// snapshot.
	Appeared EventKind = iota
	// Disappeared: a previous pattern with no match in the new snapshot.
	Disappeared
	// Drifted: a matched pattern whose score moved by at least
	// DriftDelta.
	Drifted
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case Appeared:
		return "appeared"
	case Disappeared:
		return "disappeared"
	case Drifted:
		return "drifted"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one reported pattern change. The Contrast's itemset refers to
// the snapshot dataset current when the event fired.
type Event struct {
	Kind      EventKind
	Contrast  pattern.Contrast
	PrevScore float64 // for Drifted and Disappeared
	Format    string  // pre-rendered description (snapshot datasets are transient)
}

// Monitor is a sliding-window contrast pattern tracker. Not safe for
// concurrent use.
type Monitor struct {
	schema Schema
	cfg    Config

	// ring buffers, newest at (start+count-1) % WindowSize
	cont   [][]float64
	cat    [][]string
	groups []string
	start  int
	count  int

	sinceMine int
	current   []pattern.Contrast
	curData   *dataset.Dataset
	mines     int
	skipped   int

	// delta is the incrementally-maintained bitmap index over ring
	// positions: Append XOR-flips the departing and arriving rows' bits,
	// and remine materializes it into the snapshot's code space instead of
	// rebuilding per-value bitmaps from scratch. Nil when disabled.
	delta *bitmap.DeltaIndex

	// remState is the incremental re-mine carry-over: the previous
	// window's cached node outcomes (core.RemineState), replayed by the
	// next re-mine for every node the accumulated change summary proves
	// unchanged. Nil until the first successful incremental re-mine.
	remState *core.RemineState
	// catScratch stages the departing row's categorical values for
	// delta.Touch without a per-append allocation.
	catScratch []string

	// snapBufs are the double-buffered snapshot scratch columns. remine
	// alternates between the two so the previous snapshot dataset — which
	// diff still reads via curData — is never overwritten while in use;
	// only two snapshots are ever live at once. The public Snapshot method
	// still allocates fresh copies (callers may retain them).
	snapBufs [2]snapBuf
	snapCur  int
	encIdx   map[string]int // reused string→code scratch, cleared per column
}

// snapBuf holds one generation of snapshot scratch: per-column backing
// arrays of capacity WindowSize that snapshots slice to the live count.
type snapBuf struct {
	cont [][]float64
	cat  [][]int
	grp  []int
}

// NewMonitor builds a monitor for the schema. A malformed configuration
// (see Config.Validate) is rejected up front with the joined *FieldError
// values rather than surfacing as misbehaviour mid-stream.
func NewMonitor(schema Schema, cfg Config) (*Monitor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.defaults()
	m := &Monitor{
		schema: schema,
		cfg:    cfg,
		cont:   make([][]float64, len(schema.Continuous)),
		cat:    make([][]string, len(schema.Categorical)),
		groups: make([]string, cfg.WindowSize),
	}
	for i := range m.cont {
		m.cont[i] = make([]float64, cfg.WindowSize)
	}
	for i := range m.cat {
		m.cat[i] = make([]string, cfg.WindowSize)
	}
	if !cfg.DisableIncrementalIndex {
		m.delta = bitmap.NewDeltaIndex(cfg.WindowSize, len(schema.Categorical))
		m.catScratch = make([]string, len(schema.Categorical))
	}
	for b := range m.snapBufs {
		m.snapBufs[b].cont = make([][]float64, len(schema.Continuous))
		m.snapBufs[b].cat = make([][]int, len(schema.Categorical))
		for i := range m.snapBufs[b].cont {
			m.snapBufs[b].cont[i] = make([]float64, cfg.WindowSize)
		}
		for i := range m.snapBufs[b].cat {
			m.snapBufs[b].cat[i] = make([]int, cfg.WindowSize)
		}
		m.snapBufs[b].grp = make([]int, cfg.WindowSize)
	}
	m.encIdx = make(map[string]int)
	return m, nil
}

// Len returns the number of rows currently in the window.
func (m *Monitor) Len() int { return m.count }

// Mines returns how many re-mines have run.
func (m *Monitor) Mines() int { return m.mines }

// SkippedMines returns how many due re-mines were skipped because the
// window was not mineable (see ErrWindowNotMineable) — the stat that lets
// operators distinguish "no pattern changes" from "could not mine".
func (m *Monitor) SkippedMines() int { return m.skipped }

// Append adds one row. cont and cat must match the schema's column
// counts. When a re-mine triggers, the pattern-change events are
// returned; otherwise the slice is nil. A due re-mine over a window that
// cannot be mined (single group) returns ErrWindowNotMineable; the monitor
// stays usable and retries at the next due re-mine.
func (m *Monitor) Append(cont []float64, cat []string, group string) ([]Event, error) {
	if len(cont) != len(m.schema.Continuous) || len(cat) != len(m.schema.Categorical) {
		return nil, fmt.Errorf("stream: row has %d/%d values, schema wants %d/%d",
			len(cont), len(cat), len(m.schema.Continuous), len(m.schema.Categorical))
	}
	pos := (m.start + m.count) % m.cfg.WindowSize
	had := m.count == m.cfg.WindowSize // pos holds the row being evicted
	if had {
		m.start = (m.start + 1) % m.cfg.WindowSize // evict oldest
	} else {
		m.count++
	}
	if m.delta != nil {
		// Row-dirtiness for the incremental re-mine gate: compare the full
		// departing row (float bits, categorical values, group label)
		// against the arriving one, before the ring cells are overwritten.
		// A bit-identical replacement leaves every cover's content intact
		// and is not a change; anything else marks the position's old and
		// new categorical values touched.
		dirty := !had // a filling window only ever gains new content
		if had {
			if group != m.groups[pos] {
				dirty = true
			}
			for i, v := range cont {
				if math.Float64bits(v) != math.Float64bits(m.cont[i][pos]) {
					dirty = true
					break
				}
			}
			if !dirty {
				for i, v := range cat {
					if v != m.cat[i][pos] {
						dirty = true
						break
					}
				}
			}
		}
		if dirty {
			var old []string
			if had {
				for i := range m.cat {
					m.catScratch[i] = m.cat[i][pos]
				}
				old = m.catScratch
			}
			m.delta.Touch(old, cat)
		}
	}
	for i, v := range cont {
		m.cont[i][pos] = v
	}
	for i, v := range cat {
		if m.delta != nil {
			m.delta.UpdateCat(i, pos, m.cat[i][pos], v, had)
		}
		m.cat[i][pos] = v
	}
	if m.delta != nil {
		m.delta.UpdateGroup(pos, m.groups[pos], group, had)
	}
	m.groups[pos] = group

	m.sinceMine++
	// Cadence guard. A second `m.count < m.cfg.MineEvery` clause used to
	// ride along here; during first fill it was dead (count never trails
	// sinceMine), and once the window was full it could only fire for
	// MineEvery > WindowSize — silently suppressing every re-mine forever.
	// That misconfiguration is now rejected by Validate instead.
	if m.sinceMine < m.cfg.MineEvery {
		return nil, nil
	}
	m.sinceMine = 0
	return m.remine()
}

// Snapshot materializes the current window as a dataset. It returns nil
// when the window holds fewer than two groups (mining is undefined).
func (m *Monitor) Snapshot() *dataset.Dataset {
	if m.count == 0 {
		return nil
	}
	b := dataset.NewBuilder(m.schema.Name)
	ordered := func(col []float64) []float64 {
		out := make([]float64, m.count)
		for i := 0; i < m.count; i++ {
			out[i] = col[(m.start+i)%m.cfg.WindowSize]
		}
		return out
	}
	orderedS := func(col []string) []string {
		out := make([]string, m.count)
		for i := 0; i < m.count; i++ {
			out[i] = col[(m.start+i)%m.cfg.WindowSize]
		}
		return out
	}
	for i, name := range m.schema.Continuous {
		b.AddContinuous(name, ordered(m.cont[i]))
	}
	for i, name := range m.schema.Categorical {
		b.AddCategorical(name, orderedS(m.cat[i]))
	}
	b.SetGroups(orderedS(m.groups))
	d, err := b.Build()
	if err != nil {
		return nil // e.g. a single group in the window
	}
	return d
}

// encodeInto writes first-appearance-order domain codes for the window's
// rows of ring column col into codes (scratch, sliced to count) and
// returns the codes plus the freshly-built domain. The scratch map is
// cleared and reused across columns; the domain is allocated fresh every
// snapshot — it is retained by the dataset, and its size tracks distinct
// values, not the window. The coding matches dataset.Builder's encode
// exactly, so buffered snapshots are bit-identical to Snapshot's.
func (m *Monitor) encodeInto(col []string, codes []int) ([]int, []string) {
	clear(m.encIdx)
	var domain []string
	out := codes[:m.count]
	for i := 0; i < m.count; i++ {
		v := col[(m.start+i)%m.cfg.WindowSize]
		c, ok := m.encIdx[v]
		if !ok {
			c = len(domain)
			m.encIdx[v] = c
			domain = append(domain, v)
		}
		out[i] = c
	}
	return out, domain
}

// snapshotBuffered materializes the window into the next scratch buffer
// generation instead of allocating fresh columns — the per-re-mine
// allocation cost stops scaling with window size (only domains and the
// dataset shell are allocated). The previous snapshot, still referenced
// by curData for diffing, lives in the other buffer and stays intact.
func (m *Monitor) snapshotBuffered() *dataset.Dataset {
	if m.count == 0 {
		return nil
	}
	buf := &m.snapBufs[m.snapCur]
	m.snapCur = 1 - m.snapCur
	b := dataset.NewBuilder(m.schema.Name)
	for i, name := range m.schema.Continuous {
		out := buf.cont[i][:m.count]
		for r := 0; r < m.count; r++ {
			out[r] = m.cont[i][(m.start+r)%m.cfg.WindowSize]
		}
		b.AddContinuous(name, out)
	}
	for i, name := range m.schema.Categorical {
		codes, domain := m.encodeInto(m.cat[i], buf.cat[i])
		b.AddCategoricalCoded(name, codes, domain)
	}
	gcodes, gnames := m.encodeInto(m.groups, buf.grp)
	b.SetGroupsCoded(gcodes, gnames)
	d, err := b.Build()
	if err != nil {
		m.snapCur = 1 - m.snapCur // nothing retained the buffer; reuse it
		return nil
	}
	return d
}

// catAttrs returns the snapshot attribute index of each delta-tracked
// categorical column: builders add the continuous columns first, so
// categorical column i lands at attribute len(Continuous)+i.
func (m *Monitor) catAttrs() []int {
	out := make([]int, len(m.schema.Categorical))
	for i := range out {
		out[i] = len(m.schema.Continuous) + i
	}
	return out
}

// changeSummary translates the delta index's column-keyed touch counts
// into the attribute-keyed form core's incremental gate consumes
// (categorical column i is snapshot attribute len(Continuous)+i, matching
// catAttrs).
func (m *Monitor) changeSummary() core.ChangeSummary {
	s := m.delta.Summary()
	ch := core.ChangeSummary{
		RowsTouched: s.RowsTouched,
		Touched:     make(map[int]map[string]int, len(s.Cats)),
	}
	for col, vals := range s.Cats {
		ch.Touched[len(m.schema.Continuous)+col] = vals
	}
	return ch
}

// Current returns the patterns of the latest snapshot.
func (m *Monitor) Current() []pattern.Contrast { return m.current }

// CurrentData returns the dataset the current patterns refer to.
func (m *Monitor) CurrentData() *dataset.Dataset { return m.curData }

// remine mines the window and diffs against the previous pattern set. When
// the mining config carries a metrics recorder, the window's re-mine wall
// time is observed — the latency of "timely feedback" itself. A window
// that cannot be mined surfaces ErrWindowNotMineable (and bumps the
// skipped-mine stat) instead of silently reporting "no changes".
func (m *Monitor) remine() ([]Event, error) {
	d := m.snapshotBuffered()
	if d == nil {
		m.skipped++
		return nil, ErrWindowNotMineable
	}
	if m.delta != nil && m.cfg.Mining.Counting != core.CountingSlice {
		// Seed the snapshot's index slot with the delta-maintained index —
		// bit-identical to the rebuild bitmap.Shared would otherwise pay
		// for — so the mining engine finds it already built.
		d.Index().LoadOrBuild(func() any {
			return m.delta.Materialize(d, m.start, m.count, m.catAttrs())
		})
	}
	rec := m.cfg.Mining.Metrics
	tr := m.cfg.Mining.Trace
	var start time.Time
	var startTS int64
	if rec.Enabled() || tr.Enabled() {
		start = time.Now()
		startTS = tr.Now()
	}
	incremental := m.delta != nil && !m.cfg.DisableIncrementalRemine
	var res core.Result
	if incremental {
		// Incremental re-evaluation: hand the miner the previous window's
		// cached state plus the change summary accumulated since, and keep
		// the state it returns for the next window. The summary is only
		// reset once consumed — skipped (unmineable) re-mines keep
		// accumulating so the next successful one sees every change.
		res, m.remState = core.MineIncremental(d, m.cfg.Mining, m.remState, m.changeSummary())
		m.delta.ResetSummary()
	} else {
		res = core.Mine(d, m.cfg.Mining)
	}
	if rec.Enabled() {
		rec.RemineObserve(time.Since(start))
		rec.RemineMode(incremental)
	}
	if tr.Enabled() {
		tr.Remine(startTS, d.Rows(), len(res.Contrasts), time.Since(start))
	}
	m.mines++
	events := m.diff(d, res.Contrasts)
	m.current = res.Contrasts
	m.curData = d
	return events, nil
}

// diff matches new patterns against the previous set structurally. When
// several previous patterns are structural candidates — two sibling
// patterns over the same attribute set, e.g. the low and high halves of a
// split — the one with the maximal range overlap is paired, not the first
// in list order: first-match pairing could cross the siblings and emit
// spurious Drifted + Appeared/Disappeared events.
func (m *Monitor) diff(d *dataset.Dataset, next []pattern.Contrast) []Event {
	var events []Event
	matchedPrev := make([]bool, len(m.current))
	for _, c := range next {
		best := -1
		bestOverlap := math.Inf(-1)
		for i, p := range m.current {
			if matchedPrev[i] || !structurallySame(c.Set, d, p.Set, m.curData) {
				continue
			}
			if ov := rangeOverlap(c.Set, p.Set); ov > bestOverlap {
				best, bestOverlap = i, ov
			}
		}
		if best == -1 {
			if c.Score >= m.cfg.MinEventScore {
				events = append(events, Event{
					Kind:     Appeared,
					Contrast: c,
					Format:   c.Format(d),
				})
			}
			continue
		}
		matchedPrev[best] = true
		prev := m.current[best]
		delta := c.Score - prev.Score
		if delta >= m.cfg.DriftDelta || delta <= -m.cfg.DriftDelta {
			events = append(events, Event{
				Kind:      Drifted,
				Contrast:  c,
				PrevScore: prev.Score,
				Format:    c.Format(d),
			})
		}
	}
	for i, p := range m.current {
		if !matchedPrev[i] && p.Score >= m.cfg.MinEventScore {
			events = append(events, Event{
				Kind:      Disappeared,
				Contrast:  p,
				PrevScore: p.Score,
				Format:    p.Set.Format(m.curData), // refers to the previous snapshot
			})
		}
	}
	return events
}

// rangeOverlap scores how well two structurally-same itemsets' continuous
// ranges line up: the sum, over continuous attributes, of the Jaccard
// overlap of the two intervals (intersection width / union width). Higher
// is better; itemsets with no continuous attributes score 0 (any
// structural match is then exact — categorical values already agreed).
//
// Unbounded ends make the Jaccard ratio degenerate, so they are scored by
// cases — symmetrically, because window-to-window clamping can unbound
// either itemset's end and pairing must not flip with clamp direction:
// an infinite intersection (both intervals unbounded the same way) is a
// full match; a finite intersection inside an unbounded union is scored
// against the narrower interval's width when that is finite (a bounded
// interval nested in a half-line keeps the credit it would earn against
// its own extent), and only drops to zero when both intervals are
// unbounded (opposite ways — their overlap says nothing about alignment).
func rangeOverlap(a, b pattern.Itemset) float64 {
	score := 0.0
	for _, ia := range a.Items() {
		if ia.Kind != dataset.Continuous {
			continue
		}
		ib, ok := b.ItemOn(ia.Attr)
		if !ok || ib.Kind != dataset.Continuous {
			continue
		}
		inter := math.Min(ia.Range.Hi, ib.Range.Hi) - math.Max(ia.Range.Lo, ib.Range.Lo)
		if inter <= 0 || math.IsNaN(inter) {
			continue
		}
		union := math.Max(ia.Range.Hi, ib.Range.Hi) - math.Min(ia.Range.Lo, ib.Range.Lo)
		switch {
		case math.IsInf(inter, 1):
			score++ // both unbounded the same way: treat as full overlap
		case math.IsInf(union, 1):
			// Finite intersection, unbounded union: fall back to the
			// narrower interval's own width as the denominator, so a finite
			// interval nested inside a half-line still earns its containment
			// fraction whichever side of the pair it sits on.
			width := math.Min(ia.Range.Hi-ia.Range.Lo, ib.Range.Hi-ib.Range.Lo)
			if !math.IsInf(width, 1) && width > 0 {
				score += inter / width
			}
		default:
			score += inter / union
		}
	}
	return score
}

// structurallySame matches itemsets across snapshots: same attribute set,
// identical categorical *values* (domain codes are assigned per snapshot
// in first-appearance order, so codes are not comparable across windows),
// and overlapping ranges on every continuous attribute (bin boundaries
// drift between windows).
func structurallySame(a pattern.Itemset, da *dataset.Dataset, b pattern.Itemset, db *dataset.Dataset) bool {
	if a.Len() != b.Len() || da == nil || db == nil {
		return false
	}
	for _, ia := range a.Items() {
		ib, ok := b.ItemOn(ia.Attr)
		if !ok || ia.Kind != ib.Kind {
			return false
		}
		if ia.Kind == dataset.Categorical {
			if da.Domain(ia.Attr)[ia.Code] != db.Domain(ib.Attr)[ib.Code] {
				return false
			}
			continue
		}
		if ia.Range.Hi <= ib.Range.Lo || ib.Range.Hi <= ia.Range.Lo {
			return false // disjoint ranges
		}
	}
	return true
}
