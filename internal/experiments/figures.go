package experiments

import (
	"fmt"
	"math"

	"sdadcs/internal/core"
	"sdadcs/internal/datagen"
	"sdadcs/internal/dataset"
	"sdadcs/internal/pattern"
)

// Figure2Result reproduces §4.4 / Figure 2: the bins SDAD-CS produces on a
// 1-D two-group mixture, before-merge split count vs. final merged bins.
type Figure2Result struct {
	Contrasts []pattern.Contrast
	Merges    int
	Table     Table
}

// Figure2 runs the discretization example.
func Figure2(opts Options) Figure2Result {
	opts.defaults()
	d := datagen.Figure2(opts.Seed, opts.scaleRows(2000))
	res := core.Mine(d, core.Config{
		Measure: pattern.SurprisingMeasure,
		TopK:    opts.TopK,
	})
	t := Table{
		Title:  "Figure 2: split-then-merge discretization of X",
		Header: []string{"bin", "supp(A)", "supp(B)", "PR"},
	}
	gA := d.GroupIndex("A")
	gB := d.GroupIndex("B")
	for _, c := range res.Contrasts {
		t.Rows = append(t.Rows, []string{
			c.Set.Format(d),
			fmtF(c.Supports.Supp(gA)),
			fmtF(c.Supports.Supp(gB)),
			fmtF(c.Supports.PR()),
		})
	}
	return Figure2Result{
		Contrasts: res.Contrasts,
		Merges:    res.Stats.MergeOps,
		Table:     t,
	}
}

// Figure3Result holds, per simulated dataset and per algorithm, the
// contrasts found — the qualitative bin-boundary comparison of §5.1–§5.4.
type Figure3Result struct {
	// Runs[datasetIndex][algorithm] — dataset index 0..3 for Simulated
	// Datasets 1..4.
	Runs   [4]map[string]AlgorithmRun
	Tables []Table
}

// Figure3 runs all four algorithms on the four simulated datasets.
func Figure3(opts Options) Figure3Result {
	opts.defaults()
	gens := []func(int64, int) *dataset.Dataset{
		datagen.Simulated1, datagen.Simulated2, datagen.Simulated3, datagen.Simulated4,
	}
	var out Figure3Result
	for i, gen := range gens {
		d := gen(opts.Seed+int64(i), opts.scaleRows(2000))
		runs := map[string]AlgorithmRun{}
		// SDAD-CS with the Surprising Measure, as in the qualitative
		// experiments.
		runs["SDAD-CS"] = runSDAD(d, pattern.SurprisingMeasure, opts)
		runs["MVD"] = runMVD(d, opts)
		runs["Entropy"] = runEntropy(d, opts)
		runs["Cortana-Interval"] = runCortana(d, opts)
		out.Runs[i] = runs

		t := Table{
			Title:  fmt.Sprintf("Figure 3%c: Simulated Dataset %d — contrasts per algorithm", 'a'+i, i+1),
			Header: []string{"algorithm", "#contrasts", "top contrast", "top score"},
		}
		for _, name := range []string{"SDAD-CS", "MVD", "Entropy", "Cortana-Interval"} {
			r := runs[name]
			top := "(none)"
			score := 0.0
			if len(r.Contrasts) > 0 {
				top = r.Contrasts[0].Set.Format(r.Data)
				score = r.Contrasts[0].Score
			}
			t.Rows = append(t.Rows, []string{
				name, fmt.Sprintf("%d", len(r.Contrasts)), top, fmtF(score),
			})
		}
		out.Tables = append(out.Tables, t)
	}
	return out
}

// Figure4Bin is one equal-frequency bin of Figure 4's histograms.
type Figure4Bin struct {
	Lo, Hi   float64
	SuppDoc  float64
	SuppBach float64
	PR       float64
}

// Figure4Result carries the two histogram series (age, hours-per-week).
type Figure4Result struct {
	Age    []Figure4Bin
	Hours  []Figure4Bin
	Tables []Table
}

// Figure4 reproduces the per-bin support and purity-ratio histograms on
// the Adult-like data.
func Figure4(opts Options) Figure4Result {
	opts.defaults()
	d := datagen.Adult(datagen.AdultConfig{
		Seed:      opts.Seed,
		Bachelors: opts.scaleRows(8025),
		Doctorate: opts.scaleRows(594),
	})
	var out Figure4Result
	out.Age = figure4Series(d, d.AttrIndex("age"), 10)
	out.Hours = figure4Series(d, d.AttrIndex("hours_per_week"), 10)
	for _, s := range []struct {
		name string
		bins []Figure4Bin
	}{{"Age", out.Age}, {"Hours-per-week", out.Hours}} {
		t := Table{
			Title:  "Figure 4: " + s.name + " — equal-frequency bin supports and purity ratio",
			Header: []string{"bin", "supp(Doctorate)", "supp(Bachelors)", "PR", "Doc | Bach"},
		}
		max := 0.0
		for _, b := range s.bins {
			max = seriesMax(max, b.SuppDoc, b.SuppBach)
		}
		for _, b := range s.bins {
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("(%.0f, %.0f]", b.Lo, b.Hi),
				fmtF(b.SuppDoc), fmtF(b.SuppBach), fmtF(b.PR),
				fmt.Sprintf("%-12s|%s", bar(b.SuppDoc, max, 12), bar(b.SuppBach, max, 12)),
			})
		}
		out.Tables = append(out.Tables, t)
	}
	return out
}

// figure4Series computes per-bin group supports and PR over nBins
// equal-frequency bins of one attribute.
func figure4Series(d *dataset.Dataset, attr, nBins int) []Figure4Bin {
	doc := d.GroupIndex("Doctorate")
	bach := d.GroupIndex("Bachelors")
	sizes := d.GroupSizes()
	var bins []Figure4Bin
	prev := math.Inf(-1)
	for b := 1; b <= nBins; b++ {
		hi := d.All().Quantile(attr, float64(b)/float64(nBins))
		if b == nBins {
			_, hi = d.All().MinMax(attr)
		}
		if hi <= prev {
			continue
		}
		counts := d.All().FilterRange(attr, prev, hi).GroupCounts()
		sup := pattern.CountsToSupports(counts, sizes)
		bins = append(bins, Figure4Bin{
			Lo:       prev,
			Hi:       hi,
			SuppDoc:  sup.Supp(doc),
			SuppBach: sup.Supp(bach),
			PR:       sup.PR(),
		})
		prev = hi
	}
	return bins
}
