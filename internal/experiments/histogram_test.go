package experiments

import "testing"

func TestBar(t *testing.T) {
	if got := bar(1, 1, 10); len(got) != 10 {
		t.Errorf("full bar = %q", got)
	}
	if got := bar(0.5, 1, 10); len(got) != 5 {
		t.Errorf("half bar = %q", got)
	}
	if got := bar(0, 1, 10); got != "" {
		t.Errorf("zero bar = %q", got)
	}
	if got := bar(2, 1, 10); len(got) != 10 {
		t.Errorf("overflow bar should clamp, got %q", got)
	}
	if got := bar(1, 0, 10); got != "" {
		t.Errorf("zero max = %q", got)
	}
	if got := bar(-1, 1, 10); got != "" {
		t.Errorf("negative value = %q", got)
	}
}

func TestSeriesMax(t *testing.T) {
	if seriesMax() != 0 {
		t.Error("empty max should be 0")
	}
	if seriesMax(0.1, 0.7, 0.3) != 0.7 {
		t.Error("max wrong")
	}
}
