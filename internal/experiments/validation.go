package experiments

import (
	"fmt"

	"sdadcs/internal/core"
	"sdadcs/internal/dataset"
	"sdadcs/internal/pattern"
)

// ValidationRow is one dataset's out-of-sample replication comparison.
type ValidationRow struct {
	Dataset string
	// RateFiltered is the holdout replication rate of SDAD-CS's
	// meaningful patterns; RateNP of the unfiltered NP top-k.
	RateFiltered float64
	RateNP       float64
	NFiltered    int
	NNP          int
}

// ValidationResult quantifies the meaningfulness filter's practical value:
// patterns surviving the filter should replicate on held-out data at a
// higher rate than the unfiltered pool — the operational version of the
// paper's "displaying results that misconstrue relationships … or giving
// incorrect insights" concern (§1).
type ValidationResult struct {
	Rows  []ValidationRow
	Table Table
}

// Validation mines the training half of each Table 2 dataset with and
// without the meaningfulness filter and validates both pattern sets on
// the held-out half.
func Validation(opts Options) ValidationResult {
	opts.defaults()
	var out ValidationResult
	t := Table{
		Title:  "Holdout validation: replication rate of meaningful vs unfiltered patterns",
		Header: []string{"dataset", "meaningful rate", "n", "unfiltered (NP) rate", "n"},
	}
	for _, d := range quantDatasets(opts) {
		train, test := d.All().StratifiedSplit(0.6, opts.Seed)
		// Mine on the training half only; Materialize keeps domain and
		// group coding, so the mined itemsets remain valid on the
		// original dataset's holdout view.
		trainData := dataset.Materialize(train)

		filtered := core.Mine(trainData, core.Config{
			Measure: pattern.SupportDiff, MaxDepth: opts.Depth, TopK: opts.TopK,
		})
		np := core.Mine(trainData, core.Config{
			Measure: pattern.SupportDiff, MaxDepth: opts.Depth, TopK: opts.TopK,
		}.NP())

		vf := core.ValidateHoldout(test, filtered.Contrasts, 0.1, 0.05)
		vn := core.ValidateHoldout(test, np.Contrasts, 0.1, 0.05)
		row := ValidationRow{
			Dataset:      d.Name(),
			RateFiltered: core.ReplicationRate(vf),
			RateNP:       core.ReplicationRate(vn),
			NFiltered:    len(filtered.Contrasts),
			NNP:          len(np.Contrasts),
		}
		out.Rows = append(out.Rows, row)
		t.Rows = append(t.Rows, []string{
			row.Dataset,
			fmt2(row.RateFiltered), fmt.Sprintf("%d", row.NFiltered),
			fmt2(row.RateNP), fmt.Sprintf("%d", row.NNP),
		})
	}
	out.Table = t
	return out
}
