package experiments

import (
	"fmt"
	"time"

	"sdadcs/internal/core"
	"sdadcs/internal/datagen"
	"sdadcs/internal/dataset"
	"sdadcs/internal/pattern"
)

// AblationRow is one configuration's cost and yield on the ablation
// workload.
type AblationRow struct {
	Variant    string
	Partitions int
	Pruned     int
	Contrasts  int
	Elapsed    time.Duration
}

// AblationResult quantifies the design choices DESIGN.md calls out: each
// §4.3 pruning strategy, the optimistic-estimate mode, and the search
// order, all on the same Adult-like workload.
type AblationResult struct {
	Rows  []AblationRow
	Table Table
}

// Ablation runs every variant.
func Ablation(opts Options) AblationResult {
	opts.defaults()
	d := datagen.Adult(datagen.AdultConfig{
		Seed:      opts.Seed,
		Bachelors: opts.scaleRows(4000),
		Doctorate: opts.scaleRows(800),
	})
	attrs := []int{
		d.AttrIndex("age"), d.AttrIndex("hours_per_week"),
		d.AttrIndex("occupation"), d.AttrIndex("sex"),
	}
	base := core.Config{Attrs: attrs, MaxDepth: 2, TopK: opts.TopK, SkipMeaningfulFilter: true}

	variants := []struct {
		name string
		cfg  func() core.Config
	}{
		{"baseline (all pruning, paper OE, levelwise)", func() core.Config { return base }},
		{"no min-deviation", pruningOff(base, func(p *core.Pruning) { p.MinDeviation = false })},
		{"no expected-count", pruningOff(base, func(p *core.Pruning) { p.ExpectedCount = false })},
		{"no chi-square OE bound", pruningOff(base, func(p *core.Pruning) { p.ChiSquareOE = false })},
		{"no CLT redundancy", pruningOff(base, func(p *core.Pruning) { p.RedundancyCLT = false })},
		{"no pure-space", pruningOff(base, func(p *core.Pruning) { p.PureSpace = false })},
		{"no lookup table", pruningOff(base, func(p *core.Pruning) { p.LookupTable = false })},
		{"no pruning at all", pruningOff(base, func(p *core.Pruning) { *p = core.Pruning{} })},
		{"conservative OE", func() core.Config {
			c := base
			c.OEMode = core.OEModeConservative
			return c
		}},
		{"depth-first order", func() core.Config {
			c := base
			c.DFS = true
			return c
		}},
	}

	var out AblationResult
	t := Table{
		Title:  "Ablation: pruning strategies, OE mode and search order (Adult-like workload)",
		Header: []string{"variant", "partitions", "pruned", "contrasts", "time"},
	}
	for _, v := range variants {
		start := time.Now()
		res := core.Mine(d, v.cfg())
		row := AblationRow{
			Variant:    v.name,
			Partitions: res.Stats.PartitionsEvaluated,
			Pruned:     res.Stats.SpacesPruned,
			Contrasts:  len(res.Contrasts),
			Elapsed:    time.Since(start),
		}
		out.Rows = append(out.Rows, row)
		t.Rows = append(t.Rows, []string{
			row.Variant,
			fmt.Sprintf("%d", row.Partitions),
			fmt.Sprintf("%d", row.Pruned),
			fmt.Sprintf("%d", row.Contrasts),
			row.Elapsed.Round(time.Millisecond).String(),
		})
	}
	out.Table = t
	return out
}

// pruningOff builds a config constructor with one strategy toggled.
func pruningOff(base core.Config, mutate func(*core.Pruning)) func() core.Config {
	return func() core.Config {
		p := core.AllPruning()
		mutate(&p)
		c := base
		c.Pruning = &p
		return c
	}
}

var _ = dataset.Categorical
var _ = pattern.SupportDiff
