// Package experiments regenerates every table and figure of the paper's
// evaluation (§5–§6) on the synthetic workloads of internal/datagen. Each
// entry point returns structured results plus a renderable Table, and is
// exercised both by cmd/experiments and by the repository's benchmark
// suite. See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
// paper-vs-measured numbers.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"sdadcs/internal/core"
	"sdadcs/internal/dataset"
	"sdadcs/internal/engine"
	"sdadcs/internal/pattern"
	"sdadcs/internal/subgroup"
)

// Options tunes the experiment harness.
type Options struct {
	// Seed drives every generator (default 20190326, the conference date).
	Seed int64
	// Depth is the attribute-combination depth for the quantitative
	// comparison (default 2; the paper's Table 3 analysis uses 2, and the
	// wide datasets make depth 5 impractical on synthetic rerun).
	Depth int
	// TopK is the per-algorithm pattern budget (default 100, as in §5).
	TopK int
	// Quick shrinks the generated datasets (rows divided by 4) for use in
	// benchmarks; the comparative shape is preserved.
	Quick bool
	// Only restricts the quantitative experiments (Tables 4–6) to the
	// named datasets; nil runs all ten.
	Only []string
}

func (o *Options) defaults() {
	if o.Seed == 0 {
		o.Seed = 20190326
	}
	if o.Depth == 0 {
		o.Depth = 2
	}
	if o.TopK == 0 {
		o.TopK = 100
	}
}

// scaleRows applies the Quick reduction.
func (o Options) scaleRows(n int) int {
	if o.Quick {
		n /= 4
		// Keep enough rows per group for MVD's 100-instance initial bins
		// and the expected-count rules to stay meaningful.
		if n < 120 {
			n = 120
		}
	}
	return n
}

// Table is a rendered experiment artifact: one paper table or one figure's
// data series.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Fprint renders the table with aligned columns.
func (t Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// AlgorithmRun is one algorithm's output on one dataset, with cost
// counters for Table 5.
type AlgorithmRun struct {
	Name      string
	Contrasts []pattern.Contrast
	// Data is the dataset the contrasts' items refer to — the original
	// for SDAD-CS and Cortana, the binned copy for MVD and Entropy.
	Data       *dataset.Dataset
	Elapsed    time.Duration
	Partitions int
}

// runSDAD runs full SDAD-CS with the given measure.
func runSDAD(d *dataset.Dataset, measure pattern.Measure, opts Options) AlgorithmRun {
	start := time.Now()
	res := core.Mine(d, core.Config{
		Measure:  measure,
		MaxDepth: opts.Depth,
		TopK:     opts.TopK,
	})
	return AlgorithmRun{
		Name:       "SDAD-CS",
		Contrasts:  res.Contrasts,
		Data:       d,
		Elapsed:    time.Since(start),
		Partitions: res.Stats.PartitionsEvaluated,
	}
}

// runSDADNP runs the no-pruning variant used for the level playing field
// in Tables 4–6.
func runSDADNP(d *dataset.Dataset, measure pattern.Measure, opts Options) AlgorithmRun {
	start := time.Now()
	res := core.Mine(d, core.Config{
		Measure:  measure,
		MaxDepth: opts.Depth,
		TopK:     opts.TopK,
	}.NP())
	return AlgorithmRun{
		Name:       "SDAD-CS NP",
		Contrasts:  res.Contrasts,
		Data:       d,
		Elapsed:    time.Since(start),
		Partitions: res.Stats.PartitionsEvaluated,
	}
}

// runMVD runs Bay's discretizer plus the shared categorical search.
func runMVD(d *dataset.Dataset, opts Options) AlgorithmRun {
	start := time.Now()
	res, _ := engine.Mine(d, engine.Config{
		Algorithm: "mvd",
		MaxDepth:  opts.Depth,
		TopK:      opts.TopK,
	})
	return AlgorithmRun{
		Name:       "MVD",
		Contrasts:  res.Contrasts,
		Data:       res.Binned,
		Elapsed:    time.Since(start),
		Partitions: res.Stats.PartitionsEvaluated,
	}
}

// runEntropy runs the Fayyad–Irani baseline.
func runEntropy(d *dataset.Dataset, opts Options) AlgorithmRun {
	start := time.Now()
	res, _ := engine.Mine(d, engine.Config{
		Algorithm: "entropy",
		MaxDepth:  opts.Depth,
		TopK:      opts.TopK,
	})
	return AlgorithmRun{
		Name:       "Entropy",
		Contrasts:  res.Contrasts,
		Data:       res.Binned,
		Elapsed:    time.Since(start),
		Partitions: res.Stats.PartitionsEvaluated,
	}
}

// runCortana runs the subgroup-discovery baseline.
func runCortana(d *dataset.Dataset, opts Options) AlgorithmRun {
	start := time.Now()
	res := subgroup.Mine(d, subgroup.Config{
		Depth: opts.Depth,
		TopK:  opts.TopK,
	})
	return AlgorithmRun{
		Name:       "Cortana-Interval",
		Contrasts:  res.Contrasts,
		Data:       d,
		Elapsed:    time.Since(start),
		Partitions: res.Evaluated,
	}
}

// fmtF renders a float with three decimals.
func fmtF(x float64) string { return fmt.Sprintf("%.3f", x) }

// fmt2 renders a float with two decimals (the paper's table precision).
func fmt2(x float64) string { return fmt.Sprintf("%.2f", x) }
