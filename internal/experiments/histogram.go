package experiments

import "strings"

// bar renders a proportional ASCII bar for a value in [0, max]; it makes
// the figure outputs readable as histograms (the paper's Figures 2 and 4
// are bar charts).
func bar(value, max float64, width int) string {
	if max <= 0 || value < 0 {
		return ""
	}
	n := int(value/max*float64(width) + 0.5)
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

// seriesMax returns the largest of the values (0 if empty).
func seriesMax(vals ...float64) float64 {
	m := 0.0
	for _, v := range vals {
		if v > m {
			m = v
		}
	}
	return m
}
