package experiments

import (
	"fmt"
	"runtime"
	"time"

	"sdadcs/internal/core"
	"sdadcs/internal/datagen"
	"sdadcs/internal/pattern"
)

// Table7Result reproduces the §6 case study: contrast sets on the
// semiconductor packaging data, with support difference and the population
// vs. failed-sample supports.
type Table7Result struct {
	Contrasts []pattern.Contrast
	Table     Table
}

// Table7 mines the manufacturing dataset.
func Table7(opts Options) Table7Result {
	opts.defaults()
	d := datagen.Manufacturing(datagen.ManufacturingConfig{
		Seed:       opts.Seed,
		Population: opts.scaleRows(8000),
		Failed:     opts.scaleRows(2000),
	})
	res := core.Mine(d, core.Config{
		Measure:  pattern.SupportDiff,
		MaxDepth: 2,
		TopK:     opts.TopK,
	})
	pop := d.GroupIndex("Population")
	fail := d.GroupIndex("Failed")
	t := Table{
		Title:  "Table 7: Contrast Sets for Manufacturing data",
		Header: []string{"contrast set", "supp diff", "supp(Population)", "supp(Failed)"},
	}
	limit := 12
	if len(res.Contrasts) < limit {
		limit = len(res.Contrasts)
	}
	for _, c := range res.Contrasts[:limit] {
		t.Rows = append(t.Rows, []string{
			c.Set.Format(d),
			fmt2(c.Supports.MaxDiff()),
			fmt2(c.Supports.Supp(pop)),
			fmt2(c.Supports.Supp(fail)),
		})
	}
	return Table7Result{Contrasts: res.Contrasts, Table: t}
}

// ScalingPoint is one measurement of the §6 scaling experiment.
type ScalingPoint struct {
	Rows     int
	Features int
	Workers  int
	Elapsed  time.Duration
}

// ScalingResult reproduces the parallel scaling text of §6 (the paper ran
// 100k/500k/1M rows × 120 features on a cluster; the defaults here are
// scaled to 10k/30k/60k on one machine — the claim under test is the
// near-linear growth with instance count, not the absolute time).
type ScalingResult struct {
	Points []ScalingPoint
	Table  Table
}

// Scaling sweeps the row counts with parallel per-level mining.
func Scaling(opts Options) ScalingResult {
	opts.defaults()
	rows := []int{10000, 30000, 60000}
	if opts.Quick {
		rows = []int{2000, 5000, 10000}
	}
	features := 120
	if opts.Quick {
		features = 40
	}
	workers := runtime.NumCPU()
	var out ScalingResult
	t := Table{
		Title:  "§6 scaling: parallel per-level mining time vs instance count",
		Header: []string{"rows", "features", "workers", "time"},
	}
	for _, n := range rows {
		d := datagen.Manufacturing(datagen.ManufacturingConfig{
			Seed:       opts.Seed,
			Population: n * 4 / 5,
			Failed:     n / 5,
			Features:   features,
		})
		start := time.Now()
		core.Mine(d, core.Config{
			Measure:  pattern.SupportDiff,
			MaxDepth: 2,
			TopK:     opts.TopK,
			Workers:  workers,
		})
		p := ScalingPoint{
			Rows:     d.Rows(),
			Features: features,
			Workers:  workers,
			Elapsed:  time.Since(start),
		}
		out.Points = append(out.Points, p)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.Rows),
			fmt.Sprintf("%d", p.Features),
			fmt.Sprintf("%d", p.Workers),
			p.Elapsed.Round(time.Millisecond).String(),
		})
	}
	out.Table = t
	return out
}
