package experiments

import (
	"fmt"

	"sdadcs/internal/core"
	"sdadcs/internal/datagen"
	"sdadcs/internal/dataset"
	"sdadcs/internal/pattern"
	"sdadcs/internal/subgroup"
)

// adultData builds the Adult-like dataset at the options' scale.
func adultData(opts Options) *dataset.Dataset {
	return datagen.Adult(datagen.AdultConfig{
		Seed:      opts.Seed,
		Bachelors: opts.scaleRows(8025),
		Doctorate: opts.scaleRows(594),
	})
}

// Table1Result reproduces Table 1: the contrast sets found on the Adult
// data by the five algorithm variants, restricted to the age and
// hours-per-week attributes the paper's discussion focuses on.
type Table1Result struct {
	Runs  map[string]AlgorithmRun
	Table Table
}

// Table1 runs the five variants.
func Table1(opts Options) Table1Result {
	opts.defaults()
	d := adultData(opts)
	age := d.AttrIndex("age")
	hours := d.AttrIndex("hours_per_week")
	attrs := []int{age, hours}
	doc := d.GroupIndex("Doctorate")
	bach := d.GroupIndex("Bachelors")

	runs := map[string]AlgorithmRun{}
	runs["SDAD-CS (PR)"] = AlgorithmRun{
		Name: "SDAD-CS (PR)",
		// The paper's first Table 1 block optimizes the purity ratio
		// ("strong contrasts ... when we use PR as the interest measure
		// to optimize", §5.5.1) — under PR the purer joint age×hours box
		// beats its parent and is reported (row 5 of the paper's table).
		Contrasts: core.Mine(d, core.Config{
			Measure: pattern.PurityRatio, Attrs: attrs, MaxDepth: 2, TopK: opts.TopK,
		}).Contrasts,
		Data: d,
	}
	runs["SDAD-CS (Diff)"] = AlgorithmRun{
		Name: "SDAD-CS (Diff)",
		Contrasts: core.Mine(d, core.Config{
			Measure: pattern.SupportDiff, Attrs: attrs, MaxDepth: 2, TopK: opts.TopK,
		}).Contrasts,
		Data: d,
	}
	// The baselines cannot be attribute-restricted per-call in the same
	// way, so mine a projected dataset with just the two attributes.
	proj := projectContinuous(d, attrs)
	runs["Cortana-Interval"] = runCortana(proj, opts)
	runs["Entropy"] = runEntropy(proj, opts)
	runs["MVD"] = runMVD(proj, opts)

	t := Table{
		Title:  "Table 1: Contrast Sets for Adult (age, hours-per-week)",
		Header: []string{"algorithm", "contrast set", "supp(Doc)", "supp(Bach)"},
	}
	order := []string{"SDAD-CS (PR)", "SDAD-CS (Diff)", "Cortana-Interval", "Entropy", "MVD"}
	for _, name := range order {
		r := runs[name]
		limit := 6
		if len(r.Contrasts) < limit {
			limit = len(r.Contrasts)
		}
		for _, c := range r.Contrasts[:limit] {
			t.Rows = append(t.Rows, []string{
				name,
				c.Set.Format(r.Data),
				fmt2(c.Supports.Supp(doc)),
				fmt2(c.Supports.Supp(bach)),
			})
		}
	}
	return Table1Result{Runs: runs, Table: t}
}

// projectContinuous builds a dataset with only the listed continuous
// attributes (plus the groups), preserving group indices by name order.
func projectContinuous(d *dataset.Dataset, attrs []int) *dataset.Dataset {
	b := dataset.NewBuilder(d.Name() + "-proj")
	for _, attr := range attrs {
		col := make([]float64, d.Rows())
		copy(col, d.ContColumn(attr))
		b.AddContinuous(d.Attr(attr).Name, col)
	}
	groups := make([]string, d.Rows())
	for r := range groups {
		groups[r] = d.GroupName(d.Group(r))
	}
	b.SetGroups(groups)
	return b.MustBuild()
}

// Table2 renders the dataset inventory (paper Table 2) with the actual
// generated shapes, including the documented scale factors.
func Table2(opts Options) Table {
	opts.defaults()
	t := Table{
		Title:  "Table 2: Datasets",
		Header: []string{"dataset", "groups", "instances/group", "features/continuous"},
	}
	for _, spec := range datagen.Table2Specs(opts.Seed) {
		t.Rows = append(t.Rows, []string{
			spec.Name,
			spec.Group0 + "/" + spec.Group1,
			fmt.Sprintf("%d/%d", spec.N0, spec.N1),
			fmt.Sprintf("%d/%d", spec.Cat+spec.Cont, spec.Cont),
		})
	}
	return t
}

// Table3Result reproduces Table 3: the top Cortana contrasts on the Adult
// data at depth 2, the singleton itemsets needed for the expected-support
// computation, and the meaningfulness verdicts SDAD-CS assigns them.
type Table3Result struct {
	Top      []pattern.Contrast
	Meaning  []core.Meaningfulness
	Expected [][2]float64 // expected supports (Doc, Bach) per top contrast
	Table    Table
}

// Table3 runs the analysis.
func Table3(opts Options) Table3Result {
	opts.defaults()
	d := adultData(opts)
	doc := d.GroupIndex("Doctorate")
	bach := d.GroupIndex("Bachelors")

	res := subgroup.Mine(d, subgroup.Config{Depth: 2, TopK: opts.TopK})
	top := res.Contrasts
	if len(top) > 5 {
		top = top[:5]
	}
	meaning := core.Classify(d, res.Contrasts, 0.05)[:len(top)]

	t := Table{
		Title: "Table 3: Top Contrast Sets for Adult with Cortana — expected supports and verdicts",
		Header: []string{"contrast set", "supp(Doc)", "supp(Bach)",
			"exp(Doc)", "exp(Bach)", "verdict"},
	}
	expected := make([][2]float64, len(top))
	for i, c := range top {
		eDoc, eBach := expectedSupports(d, c, doc, bach)
		expected[i] = [2]float64{eDoc, eBach}
		verdict := "meaningful"
		switch {
		case meaning[i].Redundant:
			verdict = "redundant"
		case meaning[i].Unproductive:
			verdict = "unproductive"
		case meaning[i].NotIndependentlyProductive:
			verdict = "not independently productive"
		}
		t.Rows = append(t.Rows, []string{
			c.Set.Format(d),
			fmt2(c.Supports.Supp(doc)), fmt2(c.Supports.Supp(bach)),
			fmt2(eDoc), fmt2(eBach),
			verdict,
		})
	}
	return Table3Result{Top: top, Meaning: meaning, Expected: expected, Table: t}
}

// expectedSupports computes the per-group product of the items' individual
// supports — the independence expectation of Table 3's lower panel. For
// singleton itemsets it returns the observed supports.
func expectedSupports(d *dataset.Dataset, c pattern.Contrast, g0, g1 int) (e0, e1 float64) {
	e0, e1 = 1, 1
	for _, it := range c.Set.Items() {
		sup := pattern.SupportsOf(pattern.NewItemset(it), d.All())
		e0 *= sup.Supp(g0)
		e1 *= sup.Supp(g1)
	}
	return e0, e1
}
