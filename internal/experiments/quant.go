package experiments

import (
	"fmt"
	"math"
	"time"

	"sdadcs/internal/core"
	"sdadcs/internal/datagen"
	"sdadcs/internal/dataset"
	"sdadcs/internal/pattern"
	"sdadcs/internal/stats"
)

// quantDatasets materializes the Table 2 datasets, optionally shrunk and
// filtered to opts.Only.
func quantDatasets(opts Options) []*dataset.Dataset {
	keep := func(name string) bool {
		if len(opts.Only) == 0 {
			return true
		}
		for _, n := range opts.Only {
			if n == name {
				return true
			}
		}
		return false
	}
	var out []*dataset.Dataset
	for _, s := range datagen.Table2Specs(opts.Seed) {
		if !keep(s.Name) {
			continue
		}
		s.N0 = opts.scaleRows(s.N0)
		s.N1 = opts.scaleRows(s.N1)
		out = append(out, datagen.UCIDataset(s))
	}
	return out
}

// Table4Row is one dataset's comparison of mean top-k support difference.
type Table4Row struct {
	Dataset string
	// Mean support difference of the top-k contrasts per algorithm.
	SDADNP, MVD, Entropy, Cortana float64
	// PValue vs. SDAD-CS NP (Wilcoxon–Mann–Whitney on the top-k score
	// distributions); an entry marked "*" in the paper has p >= 0.05.
	PMVD, PEntropy, PCortana float64
	// K is the comparison size: min(least result count, 100).
	K int
}

// Table4Result reproduces the quantitative analysis of contrast sets.
type Table4Result struct {
	Rows  []Table4Row
	Table Table
}

// Table4 runs the four algorithms on all ten datasets and compares the
// mean support difference of the top-k contrasts.
func Table4(opts Options) Table4Result {
	opts.defaults()
	var out Table4Result
	t := Table{
		Title: "Table 4: Quantitative Analysis — mean support difference of top-k" +
			" (* = not significantly different from SDAD-CS NP)",
		Header: []string{"dataset", "SDAD-CS NP", "MVD", "Entropy", "Cortana-Interval", "k"},
	}
	for _, d := range quantDatasets(opts) {
		row := table4Row(d, opts)
		out.Rows = append(out.Rows, row)
		t.Rows = append(t.Rows, []string{
			row.Dataset,
			fmt2(row.SDADNP),
			starNotSig(row.MVD, row.PMVD),
			starNotSig(row.Entropy, row.PEntropy),
			starNotSig(row.Cortana, row.PCortana),
			fmt.Sprintf("%d", row.K),
		})
	}
	out.Table = t
	return out
}

// starNotSig renders a comparison cell: the value, starred when it is NOT
// significantly different from the baseline. NaN-safe: a star means "not
// significantly different", which covers p >= 0.05 AND undecidable (NaN)
// comparisons — only a definite p < 0.05 suppresses the star.
func starNotSig(v, p float64) string {
	s := fmt2(v)
	if !(p < 0.05) {
		s += "*"
	}
	return s
}

func table4Row(d *dataset.Dataset, opts Options) Table4Row {
	np := runSDADNP(d, pattern.SupportDiff, opts)
	mv := runMVD(d, opts)
	en := runEntropy(d, opts)
	co := runCortana(d, opts)

	// Rescore everything on support difference for a fair comparison.
	rescored := func(cs []pattern.Contrast) []pattern.Contrast {
		return pattern.Rescore(cs, pattern.SupportDiff)
	}
	csNP, csMV, csEN, csCO := rescored(np.Contrasts), rescored(mv.Contrasts),
		rescored(en.Contrasts), rescored(co.Contrasts)

	// k = the least number of contrasts any algorithm found, capped at
	// 100 (§5.6); algorithms that found nothing are skipped in the min so
	// one empty result does not zero the comparison.
	k := opts.TopK
	for _, cs := range [][]pattern.Contrast{csNP, csMV, csEN, csCO} {
		if len(cs) > 0 && len(cs) < k {
			k = len(cs)
		}
	}

	wmwP := func(cs []pattern.Contrast) float64 {
		a := pattern.TopScores(csNP, k)
		b := pattern.TopScores(cs, k)
		if len(a) == 0 || len(b) == 0 {
			// No comparison is possible; returning 0 here used to claim a
			// significant difference from an empty sample. NaN propagates
			// as "undecidable" and renders as starred (not significant).
			return math.NaN()
		}
		return stats.MannWhitney(a, b).P
	}
	return Table4Row{
		Dataset:  d.Name(),
		SDADNP:   pattern.MeanScore(csNP, k),
		MVD:      pattern.MeanScore(csMV, k),
		Entropy:  pattern.MeanScore(csEN, k),
		Cortana:  pattern.MeanScore(csCO, k),
		PMVD:     wmwP(csMV),
		PEntropy: wmwP(csEN),
		PCortana: wmwP(csCO),
		K:        k,
	}
}

// Table5Row is one dataset's cost comparison.
type Table5Row struct {
	Dataset   string
	TimeSDAD  time.Duration
	TimeMVD   time.Duration
	TimeNP    time.Duration
	PartsSDAD int
	PartsMVD  int
	PartsNP   int
}

// Table5Result reproduces the time / partitions-evaluated comparison.
type Table5Result struct {
	Rows  []Table5Row
	Table Table
}

// Table5 measures SDAD-CS, MVD and SDAD-CS NP on every dataset.
func Table5(opts Options) Table5Result {
	opts.defaults()
	var out Table5Result
	t := Table{
		Title: "Table 5: Time and number of partitions evaluated",
		Header: []string{"dataset", "t(SDAD-CS)", "t(MVD)", "t(SDAD-CS NP)",
			"parts(SDAD-CS)", "parts(MVD)", "parts(SDAD-CS NP)"},
	}
	for _, d := range quantDatasets(opts) {
		sd := runSDAD(d, pattern.SupportDiff, opts)
		mv := runMVD(d, opts)
		np := runSDADNP(d, pattern.SupportDiff, opts)
		row := Table5Row{
			Dataset:   d.Name(),
			TimeSDAD:  sd.Elapsed,
			TimeMVD:   mv.Elapsed,
			TimeNP:    np.Elapsed,
			PartsSDAD: sd.Partitions,
			PartsMVD:  mv.Partitions,
			PartsNP:   np.Partitions,
		}
		out.Rows = append(out.Rows, row)
		t.Rows = append(t.Rows, []string{
			row.Dataset,
			row.TimeSDAD.Round(time.Millisecond).String(),
			row.TimeMVD.Round(time.Millisecond).String(),
			row.TimeNP.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", row.PartsSDAD),
			fmt.Sprintf("%d", row.PartsMVD),
			fmt.Sprintf("%d", row.PartsNP),
		})
	}
	out.Table = t
	return out
}

// Table6Row is one dataset's meaningfulness tally.
type Table6Row struct {
	Dataset     string
	Meaningful  int
	Meaningless int
}

// Table6Result reproduces the meaningful-vs-meaningless count of the top
// patterns mined without the filter.
type Table6Result struct {
	Rows  []Table6Row
	Table Table
}

// Table6 mines each dataset without the meaningfulness filter and
// classifies the top patterns.
func Table6(opts Options) Table6Result {
	opts.defaults()
	var out Table6Result
	t := Table{
		Title:  "Table 6: Number of meaningful contrasts in the unfiltered top patterns",
		Header: []string{"dataset", "meaningful", "meaningless"},
	}
	for _, d := range quantDatasets(opts) {
		np := runSDADNP(d, pattern.SupportDiff, opts)
		ms := core.Classify(d, np.Contrasts, 0.05)
		good, bad := core.CountMeaningful(ms)
		out.Rows = append(out.Rows, Table6Row{Dataset: d.Name(), Meaningful: good, Meaningless: bad})
		t.Rows = append(t.Rows, []string{
			d.Name(), fmt.Sprintf("%d", good), fmt.Sprintf("%d", bad),
		})
	}
	out.Table = t
	return out
}
