package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// fastOpts keeps experiment tests quick: shrunken data and two small
// datasets for the quantitative tables.
func fastOpts() Options {
	return Options{
		Quick: true,
		Only:  []string{"BreastCancer", "Transfusion"},
	}
}

func TestTableFprint(t *testing.T) {
	tab := Table{
		Title:  "demo",
		Header: []string{"a", "long-column"},
		Rows:   [][]string{{"x", "y"}, {"wide-cell", "z"}},
	}
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "long-column") || !strings.Contains(out, "wide-cell") {
		t.Error("missing cells")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Errorf("lines = %d, want 5", len(lines))
	}
}

func TestFigure2Shape(t *testing.T) {
	res := Figure2(fastOpts())
	if len(res.Contrasts) < 2 {
		t.Fatalf("Figure 2 bins = %d, want >= 2", len(res.Contrasts))
	}
	// One bin must be (near) pure — the left-of-median space of §4.4.
	pure := false
	for _, c := range res.Contrasts {
		if c.Supports.PR() > 0.95 {
			pure = true
		}
	}
	if !pure {
		t.Error("no near-pure bin found")
	}
	if len(res.Table.Rows) != len(res.Contrasts) {
		t.Error("table rows mismatch")
	}
}

func TestFigure3Shape(t *testing.T) {
	res := Figure3(fastOpts())
	if len(res.Tables) != 4 {
		t.Fatalf("tables = %d, want 4", len(res.Tables))
	}
	// Dataset 2 (the X shape): entropy must find nothing, SDAD-CS must
	// find multivariate boxes.
	sim2 := res.Runs[1]
	if n := len(sim2["Entropy"].Contrasts); n != 0 {
		t.Errorf("entropy found %d contrasts on XOR data, want 0", n)
	}
	if len(sim2["SDAD-CS"].Contrasts) == 0 {
		t.Error("SDAD-CS found nothing on XOR data")
	}
	// Dataset 3: SDAD-CS reports only level-1 patterns.
	for _, c := range res.Runs[2]["SDAD-CS"].Contrasts {
		if c.Set.Len() > 1 {
			t.Error("SDAD-CS reported a level-2 pattern on the level-1-only data")
		}
	}
}

func TestFigure4Shape(t *testing.T) {
	res := Figure4(fastOpts())
	if len(res.Age) < 5 || len(res.Hours) < 5 {
		t.Fatalf("bins: age=%d hours=%d", len(res.Age), len(res.Hours))
	}
	// The youngest age bin is Bachelors-dominated with high PR.
	first := res.Age[0]
	if first.SuppBach <= first.SuppDoc {
		t.Error("youngest bin should favor Bachelors")
	}
	// The oldest bins favor Doctorates.
	last := res.Age[len(res.Age)-1]
	if last.SuppDoc <= last.SuppBach {
		t.Error("oldest bin should favor Doctorates")
	}
}

func TestTable1Shape(t *testing.T) {
	res := Table1(fastOpts())
	for _, name := range []string{"SDAD-CS (PR)", "SDAD-CS (Diff)", "Cortana-Interval", "Entropy", "MVD"} {
		if _, ok := res.Runs[name]; !ok {
			t.Errorf("missing run %q", name)
		}
	}
	if len(res.Runs["SDAD-CS (Diff)"].Contrasts) == 0 {
		t.Error("SDAD-CS (Diff) found nothing on Adult")
	}
	if len(res.Table.Rows) == 0 {
		t.Error("empty table")
	}
}

func TestTable2Shape(t *testing.T) {
	tab := Table2(fastOpts())
	if len(tab.Rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(tab.Rows))
	}
	if tab.Rows[0][0] != "Adult" {
		t.Errorf("first dataset = %q", tab.Rows[0][0])
	}
}

func TestTable3Shape(t *testing.T) {
	res := Table3(fastOpts())
	if len(res.Top) == 0 {
		t.Fatal("no top contrasts")
	}
	if len(res.Meaning) != len(res.Top) || len(res.Expected) != len(res.Top) {
		t.Fatal("parallel slices mismatch")
	}
	// The paper's point: most of Cortana's top-5 are not meaningful.
	meaningless := 0
	for _, m := range res.Meaning {
		if !m.Meaningful() {
			meaningless++
		}
	}
	if meaningless < len(res.Meaning)/2 {
		t.Errorf("only %d/%d top Cortana patterns flagged, expected a majority",
			meaningless, len(res.Meaning))
	}
}

func TestTable4Shape(t *testing.T) {
	res := Table4(fastOpts())
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (Only filter)", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.SDADNP <= 0 {
			t.Errorf("%s: SDAD-CS NP mean = %v", row.Dataset, row.SDADNP)
		}
		if row.K <= 0 {
			t.Errorf("%s: k = %d", row.Dataset, row.K)
		}
		// MVD's global fragmenting should not beat the adaptive miner on
		// the strongly-structured BreastCancer data.
		if row.Dataset == "BreastCancer" && row.MVD > row.SDADNP+0.1 {
			t.Errorf("MVD %v unexpectedly above SDAD-CS NP %v", row.MVD, row.SDADNP)
		}
	}
}

func TestTable5Shape(t *testing.T) {
	res := Table5(fastOpts())
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.PartsSDAD <= 0 || row.PartsNP <= 0 || row.PartsMVD <= 0 {
			t.Errorf("%s: zero partition counts %+v", row.Dataset, row)
		}
		// The headline claim: pruning evaluates no more partitions than NP.
		if row.PartsSDAD > row.PartsNP {
			t.Errorf("%s: SDAD-CS evaluated %d > NP %d", row.Dataset, row.PartsSDAD, row.PartsNP)
		}
	}
}

func TestTable6Shape(t *testing.T) {
	res := Table6(fastOpts())
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Meaningful+row.Meaningless == 0 {
			t.Errorf("%s: no patterns classified", row.Dataset)
		}
		// The paper's finding: the majority of unfiltered top patterns are
		// not meaningful.
		if row.Meaningless < row.Meaningful {
			t.Errorf("%s: meaningless %d < meaningful %d — unexpected",
				row.Dataset, row.Meaningless, row.Meaningful)
		}
	}
}

func TestTable7Shape(t *testing.T) {
	res := Table7(fastOpts())
	if len(res.Contrasts) == 0 {
		t.Fatal("no manufacturing contrasts")
	}
	var joined strings.Builder
	for _, row := range res.Table.Rows {
		joined.WriteString(row[0] + "\n")
	}
	out := joined.String()
	for _, want := range []string{"CAM_entity = SCE", "placement_tool = JVF", "CAM_row_location = Rear"} {
		if !strings.Contains(out, want) {
			t.Errorf("signature row %q missing from Table 7:\n%s", want, out)
		}
	}
}

func TestAblationShape(t *testing.T) {
	res := Ablation(fastOpts())
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(res.Rows))
	}
	byName := map[string]AblationRow{}
	for _, r := range res.Rows {
		byName[r.Variant] = r
	}
	base := byName["baseline (all pruning, paper OE, levelwise)"]
	none := byName["no pruning at all"]
	if base.Partitions <= 0 {
		t.Fatal("baseline evaluated nothing")
	}
	if none.Partitions < base.Partitions {
		t.Errorf("disabling all pruning should not reduce work: %d < %d",
			none.Partitions, base.Partitions)
	}
	cons := byName["conservative OE"]
	if cons.Partitions < base.Partitions {
		t.Errorf("conservative OE should not prune harder than the paper's: %d < %d",
			cons.Partitions, base.Partitions)
	}
}

func TestValidationShape(t *testing.T) {
	res := Validation(fastOpts())
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.NFiltered == 0 {
			t.Errorf("%s: no meaningful patterns mined", row.Dataset)
			continue
		}
		if row.RateFiltered < 0 || row.RateFiltered > 1 || row.RateNP < 0 || row.RateNP > 1 {
			t.Errorf("%s: rates out of range: %+v", row.Dataset, row)
		}
		// The thesis: filtered patterns replicate at least as well as the
		// unfiltered pool (ties allowed — on strongly-planted data both
		// can be 1.0).
		if row.RateFiltered+0.1 < row.RateNP {
			t.Errorf("%s: meaningful rate %.2f well below unfiltered %.2f",
				row.Dataset, row.RateFiltered, row.RateNP)
		}
	}
}

func TestScalingShape(t *testing.T) {
	res := Scaling(fastOpts())
	if len(res.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Elapsed <= 0 || p.Rows <= 0 {
			t.Errorf("bad point %+v", p)
		}
	}
	if res.Points[2].Rows <= res.Points[0].Rows {
		t.Error("row counts not increasing")
	}
}

// TestStarNotSigNaNSafe pins Table 4's comparison-cell rendering: the star
// means "not significantly different from the baseline", and an undecidable
// comparison (NaN p-value, e.g. one algorithm found nothing so there is no
// sample to rank) must be starred, never silently presented as a
// significant difference.
func TestStarNotSigNaNSafe(t *testing.T) {
	cases := []struct {
		name string
		p    float64
		star bool
	}{
		{"significant difference", 0.01, false},
		{"boundary p = 0.05", 0.05, true},
		{"not significant", 0.5, true},
		{"undecidable NaN", math.NaN(), true},
	}
	for _, tc := range cases {
		got := starNotSig(1.25, tc.p)
		if starred := strings.HasSuffix(got, "*"); starred != tc.star {
			t.Errorf("%s: starNotSig(1.25, %v) = %q, starred=%v want %v",
				tc.name, tc.p, got, starred, tc.star)
		}
		if !strings.HasPrefix(got, "1.25") {
			t.Errorf("%s: value not rendered: %q", tc.name, got)
		}
	}
}
