package oracle

import (
	"context"
	"fmt"
	"math"

	"sdadcs/internal/core"
	"sdadcs/internal/dataset"
	"sdadcs/internal/pattern"
)

// Divergence is one disagreement between the production miner and the
// reference implementation. The harness collects them instead of failing
// fast so one run reports every way a seed went wrong.
type Divergence struct {
	Check  string // "exact", "topk", "soundness", or a metamorphic relation
	Key    string // canonical itemset key when the disagreement is per-pattern
	Detail string
}

func (v Divergence) String() string {
	if v.Key == "" {
		return v.Check + ": " + v.Detail
	}
	return fmt.Sprintf("%s: [%s] %s", v.Check, v.Key, v.Detail)
}

// maxReport caps per-check divergence lists so a systematically broken
// seed produces a readable failure, not thousands of lines.
const maxReport = 12

// ExactConfig is the production configuration under which the miner must
// reproduce the oracle bit for bit: every pruning rule off, no result
// bound (TopKUnbounded keeps the dynamic threshold at −Inf, so the
// optimistic-estimate recursion gate never fires), serial slice counting,
// no meaningfulness filter, and the conservative OE mode (irrelevant with
// the gate disarmed, but it keeps the config honest about admissibility).
func ExactConfig() core.Config {
	noPrune := core.Pruning{}
	return core.Config{
		TopK:                 core.TopKUnbounded,
		Workers:              1,
		Counting:             core.CountingSlice,
		OEMode:               core.OEModeConservative,
		Pruning:              &noPrune,
		SkipMeaningfulFilter: true,
	}
}

// RefConfig translates a production configuration into the oracle's. Zero
// fields resolve to the same defaults core.Config applies, so the two
// miners always agree on α, δ and the depth bounds.
func RefConfig(cfg core.Config) Config {
	out := Config{
		Alpha:          cfg.Alpha,
		Delta:          cfg.Delta,
		MaxDepth:       cfg.MaxDepth,
		MaxRecursion:   cfg.MaxRecursion,
		Measure:        cfg.Measure,
		RecordExplored: cfg.RecordExploredSpaces,
	}
	if out.Alpha == 0 {
		out.Alpha = 0.05
	}
	if out.Delta == 0 {
		out.Delta = 0.1
	}
	if out.MaxDepth == 0 {
		out.MaxDepth = 5
	}
	if out.MaxRecursion == 0 {
		out.MaxRecursion = 8
	}
	return out
}

// CheckExact mines the dataset with the production miner under an
// exhaustive configuration (see ExactConfig) and with the oracle, then
// demands bit-for-bit agreement: the same canonical keys in the same
// order, identical per-group counts, and bitwise-equal Score, ChiSq and P.
// Nothing is approximate here — both sides perform the same arithmetic in
// the same order, so any drift is a real behavioural difference.
func CheckExact(d *dataset.Dataset, cfg core.Config) []Divergence {
	prod, err := core.MineContext(context.Background(), d, cfg)
	if err != nil {
		return []Divergence{{Check: "exact", Detail: "production miner error: " + err.Error()}}
	}
	ref := Mine(d, RefConfig(cfg))
	return diffContrastLists("exact", prod.Contrasts, ref.Contrasts)
}

// diffContrastLists compares two sorted contrast lists position by
// position, then reports keys present on only one side.
func diffContrastLists(check string, got, want []pattern.Contrast) []Divergence {
	var div []Divergence
	report := func(key, detail string) {
		if len(div) < maxReport {
			div = append(div, Divergence{Check: check, Key: key, Detail: detail})
		}
	}
	if len(got) != len(want) {
		report("", fmt.Sprintf("pattern count: production %d, oracle %d", len(got), len(want)))
	}
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		g, w := got[i], want[i]
		if g.Set.Key() != w.Set.Key() {
			report(g.Set.Key(), fmt.Sprintf("rank %d: oracle has %s here", i, w.Set.Key()))
			continue
		}
		div = append(div, compareContrast(check, g, w)...)
		if len(div) >= maxReport {
			break
		}
	}
	// Keys only on one side (beyond any positional mismatch above).
	gotKeys := keySet(got)
	wantKeys := keySet(want)
	for k := range gotKeys {
		if _, ok := wantKeys[k]; !ok {
			report(k, "emitted by production, absent from the oracle universe")
		}
	}
	for k := range wantKeys {
		if _, ok := gotKeys[k]; !ok {
			report(k, "in the oracle universe, missing from production")
		}
	}
	return div
}

func keySet(cs []pattern.Contrast) map[string]int {
	m := make(map[string]int, len(cs))
	for i, c := range cs {
		m[c.Set.Key()] = i
	}
	return m
}

// compareContrast demands bitwise equality of the numeric fields of two
// same-key contrasts.
func compareContrast(check string, got, want pattern.Contrast) []Divergence {
	key := got.Set.Key()
	var div []Divergence
	add := func(detail string) { div = append(div, Divergence{Check: check, Key: key, Detail: detail}) }
	if len(got.Supports.Count) != len(want.Supports.Count) {
		add("group count mismatch")
		return div
	}
	for g := range got.Supports.Count {
		if got.Supports.Count[g] != want.Supports.Count[g] {
			add(fmt.Sprintf("count[g%d]: production %d, oracle %d",
				g, got.Supports.Count[g], want.Supports.Count[g]))
		}
	}
	if math.Float64bits(got.Score) != math.Float64bits(want.Score) {
		add(fmt.Sprintf("score: production %v, oracle %v", got.Score, want.Score))
	}
	if math.Float64bits(got.ChiSq) != math.Float64bits(want.ChiSq) {
		add(fmt.Sprintf("chi-square: production %v, oracle %v", got.ChiSq, want.ChiSq))
	}
	if math.Float64bits(got.P) != math.Float64bits(want.P) {
		add(fmt.Sprintf("p-value: production %v, oracle %v", got.P, want.P))
	}
	return div
}

// CheckTopK mines with a real top-k bound (pruning otherwise off) and
// checks that the production output is a correctly-ranked,
// threshold-consistent selection: at most k patterns, sorted by the
// canonical total order, and every emitted pattern either appears in the
// oracle's pattern universe with identical numbers or — the documented
// tolerance — is a coarse space the dynamic-threshold recursion pruning
// legitimately stopped refining, in which case it must still recount,
// rescore and pass the level's gates from first principles.
func CheckTopK(d *dataset.Dataset, cfg core.Config) []Divergence {
	if cfg.TopK <= 0 {
		return []Divergence{{Check: "topk", Detail: "CheckTopK needs a positive TopK"}}
	}
	prod, err := core.MineContext(context.Background(), d, cfg)
	if err != nil {
		return []Divergence{{Check: "topk", Detail: "production miner error: " + err.Error()}}
	}
	refCfg := RefConfig(cfg)
	ref := Mine(d, refCfg)

	var div []Divergence
	report := func(key, detail string) {
		if len(div) < maxReport {
			div = append(div, Divergence{Check: "topk", Key: key, Detail: detail})
		}
	}
	if len(prod.Contrasts) > cfg.TopK {
		report("", fmt.Sprintf("emitted %d patterns with TopK=%d", len(prod.Contrasts), cfg.TopK))
	}
	for i := 1; i < len(prod.Contrasts); i++ {
		a, b := prod.Contrasts[i-1], prod.Contrasts[i]
		if a.Score < b.Score || (a.Score == b.Score && a.Set.Key() > b.Set.Key()) {
			report(b.Set.Key(), fmt.Sprintf("rank %d out of order (score %v after %v)", i, b.Score, a.Score))
		}
	}

	inRef := keySet(ref.Contrasts)
	m := &refMiner{d: d, cfg: refCfg, sizes: d.GroupSizes(), found: map[string]pattern.Contrast{}}
	for _, c := range prod.Contrasts {
		key := c.Set.Key()
		if idx, ok := inRef[key]; ok {
			div = append(div, compareContrast("topk", c, ref.Contrasts[idx])...)
			if len(div) >= maxReport {
				break
			}
			continue
		}
		// Tolerated out-of-universe pattern: validate it from first
		// principles at the Bonferroni level of its combination depth.
		sup := m.suppOf(m.coverOf(c.Set.Items()))
		for g := range sup.Count {
			if sup.Count[g] != c.Supports.Count[g] {
				report(key, fmt.Sprintf("recount[g%d]: production %d, naive %d",
					g, c.Supports.Count[g], sup.Count[g]))
			}
		}
		if !(maxDiffRef(sup) > refCfg.Delta) {
			report(key, fmt.Sprintf("not large: maxDiff %v <= delta %v", maxDiffRef(sup), refCfg.Delta))
		}
		alpha := ref.Alpha(c.Set.Len())
		if _, p, ok := significant(sup.Count, sup.Size, alpha); !ok {
			report(key, fmt.Sprintf("not significant: p %v at level alpha %v", p, alpha))
		}
		if math.Float64bits(m.scoreOf(sup)) != math.Float64bits(c.Score) {
			report(key, fmt.Sprintf("score: production %v, reference %v", c.Score, m.scoreOf(sup)))
		}
	}
	return div
}

// CheckSoundness mines with the given (typically default) configuration —
// every pruning rule, the meaningfulness filter, the bitmap engine — and
// verifies each emitted pattern from first principles: a naive recount
// over the raw rows must reproduce its per-group counts, it must be large
// (Eq. 2 above δ), significant at the overall α, and carry the score its
// own supports imply. Pruning may drop patterns (that is its job); it must
// never corrupt one that survives.
func CheckSoundness(d *dataset.Dataset, cfg core.Config) []Divergence {
	prod, err := core.MineContext(context.Background(), d, cfg)
	if err != nil {
		return []Divergence{{Check: "soundness", Detail: "production miner error: " + err.Error()}}
	}
	refCfg := RefConfig(cfg)
	m := &refMiner{d: d, cfg: refCfg, sizes: d.GroupSizes(), found: map[string]pattern.Contrast{}}

	var div []Divergence
	report := func(key, detail string) {
		if len(div) < maxReport {
			div = append(div, Divergence{Check: "soundness", Key: key, Detail: detail})
		}
	}
	resolvedTopK := cfg.TopK
	if resolvedTopK == 0 {
		resolvedTopK = 100
	}
	if resolvedTopK > 0 && len(prod.Contrasts) > resolvedTopK {
		report("", fmt.Sprintf("emitted %d patterns with TopK=%d", len(prod.Contrasts), resolvedTopK))
	}
	for i := 1; i < len(prod.Contrasts); i++ {
		if prod.Contrasts[i-1].Score < prod.Contrasts[i].Score {
			report(prod.Contrasts[i].Set.Key(), fmt.Sprintf("rank %d out of score order", i))
		}
	}
	for _, c := range prod.Contrasts {
		key := c.Set.Key()
		sup := m.suppOf(m.coverOf(c.Set.Items()))
		for g := range sup.Count {
			if g < len(c.Supports.Count) && sup.Count[g] != c.Supports.Count[g] {
				report(key, fmt.Sprintf("recount[g%d]: emitted %d, naive %d",
					g, c.Supports.Count[g], sup.Count[g]))
			}
		}
		if !(maxDiffRef(sup) > refCfg.Delta) {
			report(key, fmt.Sprintf("not large: maxDiff %v <= delta %v", maxDiffRef(sup), refCfg.Delta))
		}
		// The per-level Bonferroni α is at most the overall α, so every
		// honestly-admitted pattern is significant at refCfg.Alpha too.
		if _, p, ok := significant(sup.Count, sup.Size, refCfg.Alpha); !ok {
			report(key, fmt.Sprintf("not significant: p %v at alpha %v", p, refCfg.Alpha))
		}
		if math.IsNaN(c.P) || math.IsNaN(c.Score) {
			report(key, "NaN score or p-value escaped the gates")
		}
		if math.Float64bits(m.scoreOf(sup)) != math.Float64bits(c.Score) {
			report(key, fmt.Sprintf("score: emitted %v, supports imply %v", c.Score, m.scoreOf(sup)))
		}
	}
	return div
}
