package oracle

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"sdadcs/internal/core"
	"sdadcs/internal/dataset"
	"sdadcs/internal/metrics"
	"sdadcs/internal/pattern"
	"sdadcs/internal/trace"
)

// This file holds the metamorphic layer: dataset transformations whose
// effect on the mining result is known a priori, plus the comparison
// batteries that hold the production miner to those predictions.
//
// Bit-equality relations (nothing about the problem changes):
//   - row permutation (the search never depends on row order),
//   - counting engine (bitmap vs slice),
//   - worker count (1 vs 8),
//   - instrumentation (metrics/trace attached vs nil).
//
// Canonical-equality relations (encodings change, semantics do not):
//   - group relabeling: swapping two group names permutes group indices
//     and support vectors; compared by group NAME the results are equal.
//   - column reordering: attribute indices and canonical keys change;
//     compared by attribute NAME the results are equal.
//
// Scaling relation:
//   - duplicating every row m times preserves supports exactly (m·c/m·s
//     reduces to c/s under IEEE division), preserves every lower-middle
//     median, multiplies every chi-square statistic by exactly m (so
//     significance can only sharpen) and leaves the Bonferroni schedule
//     untouched. Common keys must therefore scale counts exactly ×m with
//     bit-equal scores, and every categorical base pattern must survive.
//     Continuous patterns may legitimately differ: a child box that was
//     insignificant at n rows can become significant at m·n, and
//     Algorithm 1 then supersedes the parent the base run emitted.

// PermuteRows returns the dataset with its rows shuffled by the seed.
// Materialize preserves the categorical domain and group-name encodings,
// so every canonical key survives the shuffle verbatim.
func PermuteRows(d *dataset.Dataset, seed int64) *dataset.Dataset {
	perm := rand.New(rand.NewSource(seed)).Perm(d.Rows())
	return dataset.Materialize(d.Restrict(perm))
}

// DuplicateRows returns the dataset with every row repeated m times
// (copies adjacent, so first-appearance encodings are unchanged).
func DuplicateRows(d *dataset.Dataset, m int) *dataset.Dataset {
	rowMap := make([]int, 0, d.Rows()*m)
	for r := 0; r < d.Rows(); r++ {
		for c := 0; c < m; c++ {
			rowMap = append(rowMap, r)
		}
	}
	order := make([]int, d.NumAttrs())
	for i := range order {
		order[i] = i
	}
	return rebuild(d, fmt.Sprintf("%s-x%d", d.Name(), m), order, rowMap, nil)
}

// ReorderColumns returns the dataset with its attributes re-added in the
// given order. Per-column value order is unchanged, so categorical codes
// are stable; only attribute indices (and with them canonical keys) move.
func ReorderColumns(d *dataset.Dataset, order []int) *dataset.Dataset {
	rowMap := make([]int, d.Rows())
	for i := range rowMap {
		rowMap[i] = i
	}
	return rebuild(d, d.Name()+"-reordered", order, rowMap, nil)
}

// RelabelGroups swaps the first two group names and returns the rebuilt
// dataset plus the rename function mapping ORIGINAL names to new ones
// (its own inverse, since it is a transposition).
func RelabelGroups(d *dataset.Dataset) (*dataset.Dataset, func(string) string) {
	a, b := d.GroupName(0), d.GroupName(1)
	rename := func(name string) string {
		switch name {
		case a:
			return b
		case b:
			return a
		}
		return name
	}
	rowMap := make([]int, d.Rows())
	for i := range rowMap {
		rowMap[i] = i
	}
	order := make([]int, d.NumAttrs())
	for i := range order {
		order[i] = i
	}
	return rebuild(d, d.Name()+"-relabeled", order, rowMap, rename), rename
}

// rebuild reconstructs a dataset through the public Builder: attributes in
// the given order, rows through rowMap, group labels optionally renamed.
func rebuild(d *dataset.Dataset, name string, attrOrder, rowMap []int, rename func(string) string) *dataset.Dataset {
	b := dataset.NewBuilder(name)
	for _, a := range attrOrder {
		at := d.Attr(a)
		if at.Kind == dataset.Categorical {
			vals := make([]string, len(rowMap))
			for i, r := range rowMap {
				vals[i] = d.CatValue(a, r)
			}
			b.AddCategorical(at.Name, vals)
		} else {
			vals := make([]float64, len(rowMap))
			for i, r := range rowMap {
				vals[i] = d.Cont(a, r)
			}
			b.AddContinuous(at.Name, vals)
		}
	}
	labels := make([]string, len(rowMap))
	for i, r := range rowMap {
		g := d.GroupName(d.Group(r))
		if rename != nil {
			g = rename(g)
		}
		labels[i] = g
	}
	b.SetGroups(labels)
	return b.MustBuild()
}

// mineFor runs the production miner and converts an error into a
// divergence so batteries can report instead of panicking.
func mineFor(check string, d *dataset.Dataset, cfg core.Config) ([]pattern.Contrast, []Divergence) {
	res, err := core.MineContext(context.Background(), d, cfg)
	if err != nil {
		return nil, []Divergence{{Check: check, Detail: "production miner error: " + err.Error()}}
	}
	return res.Contrasts, nil
}

// CheckBitEquality runs the production miner under every configuration
// pair that must not change a single bit of the result: bitmap vs slice
// counting, one worker vs eight, instrumentation attached vs nil, and the
// original dataset vs a row permutation.
func CheckBitEquality(d *dataset.Dataset, cfg core.Config, seed int64) []Divergence {
	base, div := mineFor("bit-equality", d, cfg)
	if div != nil {
		return div
	}
	variant := func(check string, vd *dataset.Dataset, mut func(*core.Config)) {
		vcfg := cfg
		if mut != nil {
			mut(&vcfg)
		}
		got, errDiv := mineFor(check, vd, vcfg)
		if errDiv != nil {
			div = append(div, errDiv...)
			return
		}
		div = append(div, diffContrastLists(check, got, base)...)
	}
	variant("engine-slice-vs-bitmap", d, func(c *core.Config) {
		if c.Counting == core.CountingSlice {
			c.Counting = core.CountingBitmap
		} else {
			c.Counting = core.CountingSlice
		}
	})
	variant("workers-8-vs-1", d, func(c *core.Config) { c.Workers = 8 })
	variant("instrumentation-on-vs-off", d, func(c *core.Config) {
		c.Metrics = metrics.New()
		c.Trace = trace.New(1 << 16)
	})
	variant("row-permutation", PermuteRows(d, seed), nil)
	return div
}

// canonicalPattern renders a contrast independently of attribute indices
// and group encodings: items by attribute name (value string or range
// bounds), sorted; per-group counts by (optionally renamed) group name,
// sorted. Score/χ²/P are functions of the counts and sizes, so count
// equality implies their equality and they are omitted.
func canonicalPattern(d *dataset.Dataset, c pattern.Contrast, rename func(string) string) string {
	items := make([]string, 0, c.Set.Len())
	for _, it := range c.Set.Items() {
		name := d.Attr(it.Attr).Name
		if it.Kind == dataset.Categorical {
			items = append(items, fmt.Sprintf("%s=%s", name, d.Domain(it.Attr)[it.Code]))
		} else {
			items = append(items, fmt.Sprintf("%s@(%b,%b]", name, it.Range.Lo, it.Range.Hi))
		}
	}
	sort.Strings(items)
	sups := make([]string, 0, len(c.Supports.Count))
	for g := range c.Supports.Count {
		gn := d.GroupName(g)
		if rename != nil {
			gn = rename(gn)
		}
		sups = append(sups, fmt.Sprintf("%s:%d/%d", gn, c.Supports.Count[g], c.Supports.Size[g]))
	}
	sort.Strings(sups)
	return strings.Join(items, "&") + " | " + strings.Join(sups, ",")
}

// diffCanonical compares two result sets in canonical (name-based) form.
func diffCanonical(check string, dA *dataset.Dataset, a []pattern.Contrast, renameA func(string) string,
	dB *dataset.Dataset, b []pattern.Contrast) []Divergence {
	var div []Divergence
	report := func(detail string) {
		if len(div) < maxReport {
			div = append(div, Divergence{Check: check, Detail: detail})
		}
	}
	setA := make(map[string]bool, len(a))
	for _, c := range a {
		setA[canonicalPattern(dA, c, renameA)] = true
	}
	setB := make(map[string]bool, len(b))
	for _, c := range b {
		setB[canonicalPattern(dB, c, nil)] = true
	}
	for p := range setA {
		if !setB[p] {
			report("only in baseline: " + p)
		}
	}
	for p := range setB {
		if !setA[p] {
			report("only in transformed: " + p)
		}
	}
	return div
}

// CheckRelabel verifies that swapping two group names merely renames the
// support vectors: compared by group name, the pattern sets are equal.
func CheckRelabel(d *dataset.Dataset, cfg core.Config) []Divergence {
	base, div := mineFor("group-relabel", d, cfg)
	if div != nil {
		return div
	}
	rd, rename := RelabelGroups(d)
	got, errDiv := mineFor("group-relabel", rd, cfg)
	if errDiv != nil {
		return errDiv
	}
	return diffCanonical("group-relabel", d, base, rename, rd, got)
}

// CheckReorder verifies the invariants that survive reordering columns.
// Full name-based equality does NOT hold, and the harness discovered why:
// the levelwise search extends a continuous combination only if its
// discretization split (the aliveness gate), and candidate generation only
// appends attributes with higher indices. An attribute set whose prefix
// (in column order) contains a dead continuous attribute is therefore
// unreachable in one ordering and reachable in another — e.g. with a
// constant cont0 before a splittable cont1, {cat, cont0, cont1} is never
// enumerated, while the reversed ordering reaches it and emits the same
// rows decorated with a tautological full-range cont0 item (pinned by
// TestLevelwiseColumnOrderSensitivity in internal/core). What MUST hold:
//
//   - categorical-only pattern sets are identical by name (their
//     enumeration has no aliveness gate: under an exhaustive config every
//     non-empty-cover itemset is tested in any order), and
//   - any two patterns from the two runs that impose the same conditions —
//     the same named items, verbatim — must carry identical per-group
//     counts.
//
// The second invariant deliberately does NOT drop full-range items before
// matching, and the harness is why: a full-range (−Inf, +Inf] item looks
// like a tautology but still requires the reading to be PRESENT — a NaN
// fails every interval comparison — so "cont0>6" and "cont0>6 ∧ cont1 any"
// cover different rows whenever cont1 has missing readings. An earlier
// draft of this check stripped the decoration and flagged exactly that
// one-row difference as a false divergence.
func CheckReorder(d *dataset.Dataset, cfg core.Config) []Divergence {
	base, div := mineFor("column-reorder", d, cfg)
	if div != nil {
		return div
	}
	order := make([]int, d.NumAttrs())
	for i := range order {
		order[i] = d.NumAttrs() - 1 - i
	}
	rd := ReorderColumns(d, order)
	got, errDiv := mineFor("column-reorder", rd, cfg)
	if errDiv != nil {
		return errDiv
	}
	report := func(detail string) {
		if len(div) < maxReport {
			div = append(div, Divergence{Check: "column-reorder", Detail: detail})
		}
	}

	// Categorical-only patterns: the tested itemsets are order-independent
	// (no aliveness gate), but the per-level Bonferroni α is NOT — |C_l|
	// counts the whole frontier, and the surviving continuous combinations
	// depend on column order. A pattern emitted under one ordering only is
	// therefore legitimate exactly when the other ordering's level α
	// rejects it; anything else is a divergence.
	refCfg := RefConfig(cfg)
	alphaBase := Mine(d, refCfg)
	alphaReord := Mine(rd, refCfg)
	catA, catB := map[string]pattern.Contrast{}, map[string]pattern.Contrast{}
	for _, c := range base {
		if categoricalOnly(c.Set) {
			items, _ := namedSignature(d, c)
			catA[items] = c
		}
	}
	for _, c := range got {
		if categoricalOnly(c.Set) {
			items, _ := namedSignature(rd, c)
			catB[items] = c
		}
	}
	onlyIn := func(have map[string]pattern.Contrast, other map[string]pattern.Contrast,
		otherAlpha Result, side string) {
		for items, c := range have {
			if _, ok := other[items]; ok {
				continue
			}
			// Recompute the order-independent p-value and hold the absence
			// to the other ordering's Bonferroni level.
			alpha := otherAlpha.Alpha(c.Set.Len())
			if _, p, ok := significant(c.Supports.Count, c.Supports.Size, alpha); ok {
				report(fmt.Sprintf("categorical pattern only in %s run but significant "+
					"under the other ordering too (p=%v, other alpha=%v): %s", side, p, alpha, items))
			}
		}
	}
	onlyIn(catA, catB, alphaReord, "baseline")
	onlyIn(catB, catA, alphaBase, "reordered")

	// Shared verbatim conditions must agree on counts.
	sigA := map[string]string{}
	for _, c := range base {
		items, counts := namedSignature(d, c)
		sigA[items] = counts
	}
	for _, c := range got {
		items, counts := namedSignature(rd, c)
		if want, ok := sigA[items]; ok && want != counts {
			report(fmt.Sprintf("condition %s counts: baseline %s, reordered %s", items, want, counts))
		}
	}
	return div
}

// namedSignature renders a contrast's conditions by attribute name (every
// item verbatim, full ranges included — see CheckReorder for why) and its
// per-group counts separately.
func namedSignature(d *dataset.Dataset, c pattern.Contrast) (items, counts string) {
	parts := make([]string, 0, c.Set.Len())
	for _, it := range c.Set.Items() {
		name := d.Attr(it.Attr).Name
		if it.Kind == dataset.Categorical {
			parts = append(parts, fmt.Sprintf("%s=%s", name, d.Domain(it.Attr)[it.Code]))
		} else {
			parts = append(parts, fmt.Sprintf("%s@(%b,%b]", name, it.Range.Lo, it.Range.Hi))
		}
	}
	sort.Strings(parts)
	sups := make([]string, 0, len(c.Supports.Count))
	for g := range c.Supports.Count {
		sups = append(sups, fmt.Sprintf("%s:%d/%d", d.GroupName(g), c.Supports.Count[g], c.Supports.Size[g]))
	}
	sort.Strings(sups)
	return strings.Join(parts, "&"), strings.Join(sups, ",")
}

// CheckDuplication verifies the row-scaling relation for m=2 under an
// unbounded configuration: every key present in both runs must have its
// counts scaled exactly ×m with a bit-identical score, and every
// categorical-only base pattern must survive (its χ² doubles, so it can
// only become more significant, and the Bonferroni schedule is unchanged).
func CheckDuplication(d *dataset.Dataset, cfg core.Config, m int) []Divergence {
	base, div := mineFor("row-duplication", d, cfg)
	if div != nil {
		return div
	}
	got, errDiv := mineFor("row-duplication", DuplicateRows(d, m), cfg)
	if errDiv != nil {
		return errDiv
	}
	report := func(key, detail string) {
		if len(div) < maxReport {
			div = append(div, Divergence{Check: "row-duplication", Key: key, Detail: detail})
		}
	}
	dupByKey := keySet(got)
	for _, b := range base {
		key := b.Set.Key()
		idx, ok := dupByKey[key]
		if !ok {
			if categoricalOnly(b.Set) {
				report(key, "categorical pattern lost after duplicating every row")
			}
			continue
		}
		g := got[idx]
		for i := range b.Supports.Count {
			if g.Supports.Count[i] != m*b.Supports.Count[i] {
				report(key, fmt.Sprintf("count[g%d]: base %d, x%d run %d",
					i, b.Supports.Count[i], m, g.Supports.Count[i]))
			}
		}
		if g.Score != b.Score {
			report(key, fmt.Sprintf("score changed under duplication: %v -> %v", b.Score, g.Score))
		}
	}
	return div
}

func categoricalOnly(s pattern.Itemset) bool {
	for _, it := range s.Items() {
		if it.Kind != dataset.Categorical {
			return false
		}
	}
	return true
}
