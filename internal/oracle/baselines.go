package oracle

// This file extends the differential oracle beyond the core SDAD-CS miner
// to every baseline algorithm the engine registry exposes: STUCCO, the
// Cortana-style subgroup discovery beam search, Fayyad–Irani entropy (MDLP)
// discretization and Bay's MVD. Each reference is a deliberate
// transliteration of the production algorithm — same IEEE operation order,
// no pruning shortcuts replaced by cleverness — implemented against naive
// row scans, so agreement is checked bit-for-bit (the PR-5 discipline).
// Shared numeric primitives (the chi-square survival function and quantile)
// are reused; everything combinatorial is reimplemented.
//
// The metamorphic relations differ per baseline and are documented on each
// check:
//
//   - STUCCO / subgroup: bit-equality under engine swap, worker count,
//     instrumentation and row permutation; bit-equality under group
//     relabeling (the dataset builder assigns group codes by first
//     appearance, so a transposition of NAMES changes no index); weak
//     agreement under column reordering (shared named conditions must carry
//     identical counts — presence itself is order-dependent: candidate
//     reachability and the Bonferroni denominator both move); common-key
//     scaling under row duplication (counts ×m, bit-equal ratio-based
//     scores — survival is NOT guaranteed: ×m expected cell counts unprune
//     nodes, growing |C_l| and shrinking the level α).
//   - Entropy cuts: bit-equality under permutation and relabeling
//     (entropies depend only on class counts at distinct-value boundaries);
//     a SUPERSET relation under duplication (gains are scale-invariant
//     while the MDL threshold (log2(n−1)+δ)/n shrinks at the row counts the
//     generator produces, so accepted cuts stay accepted).
//   - MVD cuts: bit-equality under permutation (boundaries snap past ties,
//     so bin membership is a function of values) and relabeling. Row
//     duplication has NO invariant worth checking: the initial
//     equi-frequency binning is tied to the absolute row count (BinSize
//     rows per bin), so ×m rows produce a different starting partition, and
//     every merge χ² sharpens by ×m on top of that.

import (
	"fmt"
	"math"
	"sort"

	"sdadcs/internal/dataset"
	"sdadcs/internal/entropy"
	"sdadcs/internal/metrics"
	"sdadcs/internal/mvd"
	"sdadcs/internal/pattern"
	"sdadcs/internal/stats"
	"sdadcs/internal/stucco"
	"sdadcs/internal/subgroup"
	"sdadcs/internal/trace"
)

// ---------------------------------------------------------------------------
// Shared statistical transliterations.

// chiSquareTableRef transliterates stats.ChiSquareTable: the r×c
// independence test with the same margin checks and the same row-major
// accumulation order, so a well-formed table yields a bit-identical
// statistic. ok is false exactly when the production function errors.
func chiSquareTableRef(observed [][]float64) (stat, p float64, df int, ok bool) {
	r := len(observed)
	if r < 2 {
		return 0, 0, 0, false
	}
	c := len(observed[0])
	if c < 2 {
		return 0, 0, 0, false
	}
	rowSum := make([]float64, r)
	colSum := make([]float64, c)
	total := 0.0
	for i, row := range observed {
		if len(row) != c {
			return 0, 0, 0, false
		}
		for j, v := range row {
			if v < 0 || math.IsNaN(v) {
				return 0, 0, 0, false
			}
			rowSum[i] += v
			colSum[j] += v
			total += v
		}
	}
	if total == 0 {
		return 0, 0, 0, false
	}
	for _, s := range rowSum {
		if s == 0 {
			return 0, 0, 0, false
		}
	}
	for _, s := range colSum {
		if s == 0 {
			return 0, 0, 0, false
		}
	}
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			exp := rowSum[i] * colSum[j] / total
			d := observed[i][j] - exp
			stat += d * d / exp
		}
	}
	df = (r - 1) * (c - 1)
	return stat, stats.ChiSquareSurvival(stat, df), df, true
}

// chiSquare2xKRef transliterates the group×presence 2×k test the STUCCO
// gate applies, including the smallest expected cell count the validity
// check compares against 5.
func chiSquare2xKRef(count, size []int) (stat, p, minExp float64, ok bool) {
	if len(count) != len(size) || len(count) < 2 {
		return 0, 0, 0, false
	}
	k := len(count)
	rowSum := make([]float64, k)
	colSum := make([]float64, 2)
	total := 0.0
	for i := range count {
		if count[i] < 0 || count[i] > size[i] {
			return 0, 0, 0, false
		}
		row := [2]float64{float64(count[i]), float64(size[i] - count[i])}
		for j, v := range row {
			rowSum[i] += v
			colSum[j] += v
			total += v
		}
	}
	if total == 0 {
		return 0, 0, 0, false
	}
	for _, s := range rowSum {
		if s == 0 {
			return 0, 0, 0, false
		}
	}
	for _, s := range colSum {
		if s == 0 {
			return 0, 0, 0, false
		}
	}
	minExp = math.Inf(1)
	for i := 0; i < k; i++ {
		for _, cell := range [2]struct{ obs, colSum float64 }{
			{float64(count[i]), colSum[0]},
			{float64(size[i] - count[i]), colSum[1]},
		} {
			exp := rowSum[i] * cell.colSum / total
			if exp < minExp {
				minExp = exp
			}
			d := cell.obs - exp
			stat += d * d / exp
		}
	}
	df := k - 1
	return stat, stats.ChiSquareSurvival(stat, df), minExp, true
}

// chiSquareOptimisticRef transliterates the Bay & Pazzani optimistic bound:
// the best statistic over the k extremes that keep one group's count and
// zero the rest.
func chiSquareOptimisticRef(count, size []int) float64 {
	best := 0.0
	k := len(count)
	sub := make([]int, k)
	for keep := 0; keep < k; keep++ {
		for i := range sub {
			if i == keep {
				sub[i] = count[i]
			} else {
				sub[i] = 0
			}
		}
		if sub[keep] == 0 {
			continue
		}
		stat, _, _, ok := chiSquare2xKRef(sub, size)
		if !ok {
			continue
		}
		if stat > best {
			best = stat
		}
	}
	return best
}

// wraccRef transliterates Supports.WRAcc: cover(c)/N × (P(g|c) − P(g)).
func wraccRef(sup pattern.Supports, g int) float64 {
	total := 0
	covered := 0
	for i := range sup.Count {
		total += sup.Size[i]
		covered += sup.Count[i]
	}
	if total == 0 || covered == 0 {
		return 0
	}
	coverRate := float64(covered) / float64(total)
	conf := float64(sup.Count[g]) / float64(covered)
	prior := float64(sup.Size[g]) / float64(total)
	return coverRate * (conf - prior)
}

// measureRef evaluates every registered interest measure from first
// principles, matching pattern.Measure.Eval bit-for-bit.
func measureRef(m pattern.Measure, sup pattern.Supports) float64 {
	switch m {
	case pattern.SupportDiff:
		return maxDiffRef(sup)
	case pattern.PurityRatio:
		return prRef(sup)
	case pattern.SurprisingMeasure:
		return prRef(sup) * maxDiffRef(sup)
	case pattern.WRAccMeasure:
		best := 0.0
		for g := 0; g < sup.Groups(); g++ {
			if w := wraccRef(sup, g); w > best {
				best = w
			}
		}
		return best
	case pattern.GrowthRateMeasure:
		return growthRateRef(sup)
	case pattern.ContrastRuleMeasure:
		return confSpreadRef(sup)
	default:
		return m.Eval(sup)
	}
}

// largeInRef transliterates the minimum deviation size condition.
func largeInRef(sup pattern.Supports, delta float64) bool {
	for g := range sup.Count {
		if sup.Supp(g) > delta {
			return true
		}
	}
	return false
}

// minExpectedRef transliterates the STUCCO expected-count prune input.
func minExpectedRef(sup pattern.Supports, sizes []int, totalRows int) float64 {
	covered := 0
	for _, c := range sup.Count {
		covered += c
	}
	min := 0.0
	for g, gs := range sizes {
		exp := float64(covered) * float64(gs) / float64(totalRows)
		if g == 0 || exp < min {
			min = exp
		}
	}
	return min
}

// ---------------------------------------------------------------------------
// STUCCO reference.

// STUCCOResult is the reference miner's output: the full admissible universe
// (no top-k bound) plus the search counters the production miner reports.
type STUCCOResult struct {
	Contrasts   []pattern.Contrast
	LevelAlphas []float64
	Candidates  int
	Pruned      int
}

// stuccoRefDefaults mirrors the production defaults for the fields the
// reference reads (the counting/observability knobs are result-neutral and
// ignored).
func stuccoRefDefaults(cfg stucco.Config) stucco.Config {
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.05
	}
	if cfg.Delta == 0 {
		cfg.Delta = 0.1
	}
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 5
	}
	return cfg
}

type stuccoRefNode struct {
	set      pattern.Itemset
	rows     []int
	sup      pattern.Supports
	lastAttr int
}

// RefSTUCCO is the obviously-correct STUCCO: the same levelwise loop as
// production, transliterated onto naive row scans, with the Bonferroni
// schedule, the emission gate and all three pruning rules inlined. It
// returns every admissible contrast sorted; because STUCCO's pruning takes
// no feedback from the result list, the production run with the top-k bound
// disabled must equal it bit-for-bit, and a bounded run must equal its
// k-prefix.
func RefSTUCCO(d *dataset.Dataset, cfg stucco.Config) STUCCOResult {
	cfg = stuccoRefDefaults(cfg)
	attrs := cfg.Attrs
	if attrs == nil {
		attrs = d.CategoricalAttrs()
	}
	sizes := d.GroupSizes()
	totalRows := d.Rows()
	var res STUCCOResult

	expand := func(parents []stuccoRefNode) []stuccoRefNode {
		var out []stuccoRefNode
		for _, nd := range parents {
			for _, attr := range attrs {
				if attr <= nd.lastAttr {
					continue
				}
				for code := range d.Domain(attr) {
					var rows []int
					counts := make([]int, len(sizes))
					for _, r := range nd.rows {
						if d.CatCode(attr, r) == code {
							rows = append(rows, r)
							counts[d.Group(r)]++
						}
					}
					if len(rows) == 0 {
						continue
					}
					out = append(out, stuccoRefNode{
						set:      nd.set.With(pattern.CatItem(attr, code)),
						rows:     rows,
						sup:      pattern.CountsToSupports(counts, sizes),
						lastAttr: attr,
					})
				}
			}
		}
		return out
	}

	root := stuccoRefNode{set: pattern.NewItemset(), rows: allRows(d), lastAttr: -1}
	frontier := expand([]stuccoRefNode{root})
	prev := cfg.Alpha // transliterated Bonferroni schedule state
	for level := 1; level <= cfg.MaxDepth && len(frontier) > 0; level++ {
		alpha := cfg.Alpha / float64(len(frontier))
		if alpha > prev {
			alpha = prev
		}
		prev = alpha
		res.LevelAlphas = append(res.LevelAlphas, alpha)

		var survivors []stuccoRefNode
		for _, nd := range frontier {
			res.Candidates++
			sup := nd.sup
			stat, p, minExp, ok := chiSquare2xKRef(sup.Count, sizes)
			if maxDiffRef(sup) > cfg.Delta && ok && p < alpha && minExp >= 5 {
				res.Contrasts = append(res.Contrasts, pattern.Contrast{
					Set:      nd.set,
					Supports: sup,
					Score:    measureRef(cfg.Measure, sup),
					ChiSq:    stat,
					P:        p,
				})
			}
			if !largeInRef(sup, cfg.Delta) {
				res.Pruned++
				continue
			}
			if minExpectedRef(sup, sizes, totalRows) < 5 {
				res.Pruned++
				continue
			}
			if chiSquareOptimisticRef(sup.Count, sizes) < stats.ChiSquareQuantile(1-alpha, len(sizes)-1) {
				res.Pruned++
				continue
			}
			survivors = append(survivors, nd)
		}
		if level == cfg.MaxDepth {
			break
		}
		frontier = expand(survivors)
	}
	pattern.SortContrasts(res.Contrasts)
	return res
}

// CheckSTUCCO holds production STUCCO to the reference: bit-equality of the
// full universe on both counting engines, counter equality, and k-prefix
// equality for the bounded default configuration.
func CheckSTUCCO(d *dataset.Dataset, cfg stucco.Config) []Divergence {
	ref := RefSTUCCO(d, cfg)
	var div []Divergence

	exact := cfg
	exact.TopK = stucco.TopKUnbounded
	exact.Workers = 1
	exact.SliceCounting = true
	got := stucco.Mine(d, exact)
	div = append(div, diffContrastLists("stucco-exact-slice", got.Contrasts, ref.Contrasts)...)
	if got.Candidates != ref.Candidates {
		div = append(div, Divergence{Check: "stucco-exact-slice",
			Detail: fmt.Sprintf("candidates: production %d, reference %d", got.Candidates, ref.Candidates)})
	}
	if got.Pruned != ref.Pruned {
		div = append(div, Divergence{Check: "stucco-exact-slice",
			Detail: fmt.Sprintf("pruned: production %d, reference %d", got.Pruned, ref.Pruned)})
	}

	exact.SliceCounting = false
	gotBitmap := stucco.Mine(d, exact)
	div = append(div, diffContrastLists("stucco-exact-bitmap", gotBitmap.Contrasts, ref.Contrasts)...)

	bounded := cfg
	bounded.Workers = 1
	gotK := stucco.Mine(d, bounded)
	k := bounded.TopK
	if k == 0 {
		k = 100
	}
	want := ref.Contrasts
	if k > 0 && len(want) > k {
		want = want[:k]
	}
	div = append(div, diffContrastLists("stucco-topk", gotK.Contrasts, want)...)
	return div
}

// CheckSTUCCOBitEquality runs production STUCCO under every configuration
// pair that must not change a single bit: bitmap vs slice counting, eight
// workers vs one, instrumentation attached vs nil, a row permutation, and a
// group-name transposition (group CODES are first-appearance encoded, so a
// rename is invisible to the search).
func CheckSTUCCOBitEquality(d *dataset.Dataset, cfg stucco.Config, seed int64) []Divergence {
	base := stucco.Mine(d, cfg)
	var div []Divergence
	variant := func(check string, vd *dataset.Dataset, mut func(*stucco.Config)) {
		vcfg := cfg
		if mut != nil {
			mut(&vcfg)
		}
		got := stucco.Mine(vd, vcfg)
		div = append(div, diffContrastLists(check, got.Contrasts, base.Contrasts)...)
	}
	variant("stucco-engine-slice-vs-bitmap", d, func(c *stucco.Config) { c.SliceCounting = !c.SliceCounting })
	variant("stucco-workers-8-vs-1", d, func(c *stucco.Config) { c.Workers = 8 })
	variant("stucco-instrumentation-on-vs-off", d, func(c *stucco.Config) {
		c.Metrics = metrics.New()
		c.Trace = trace.New(1 << 16)
	})
	variant("stucco-row-permutation", PermuteRows(d, seed), nil)
	relabeled, _ := RelabelGroups(d)
	variant("stucco-group-relabel", relabeled, nil)
	return div
}

// CheckSTUCCOReorder verifies the order-independent core of STUCCO under a
// column reversal: any two patterns from the two runs imposing the same
// named conditions must carry identical per-group counts. Presence itself
// is order-dependent (pruning decides which SUPERSETS are reachable, and
// supersets are enumerated under their lowest-index parent), so one-sided
// patterns are tolerated.
func CheckSTUCCOReorder(d *dataset.Dataset, cfg stucco.Config) []Divergence {
	base := stucco.Mine(d, cfg)
	order := make([]int, d.NumAttrs())
	for i := range order {
		order[i] = d.NumAttrs() - 1 - i
	}
	rd := ReorderColumns(d, order)
	got := stucco.Mine(rd, cfg)
	return sharedSignatureAgree("stucco-column-reorder", d, base.Contrasts, rd, got.Contrasts)
}

// CheckSTUCCODuplication verifies the common-key scaling relation for
// STUCCO under row duplication: counts ×m with bit-equal scores (every
// registered measure is a function of count/size ratios, and IEEE division
// of exactly-scaled integers rounds identically). Pattern survival is NOT
// required: duplication scales expected cell counts ×m, which unprunes
// nodes, grows |C_l| and shrinks the level α.
func CheckSTUCCODuplication(d *dataset.Dataset, cfg stucco.Config, m int) []Divergence {
	base := stucco.Mine(d, cfg)
	got := stucco.Mine(DuplicateRows(d, m), cfg)
	return commonKeyScaled("stucco-row-duplication", base.Contrasts, got.Contrasts, m)
}

// commonKeyScaled checks the ×m relation over keys present in both runs.
func commonKeyScaled(check string, base, got []pattern.Contrast, m int) []Divergence {
	var div []Divergence
	report := func(key, detail string) {
		if len(div) < maxReport {
			div = append(div, Divergence{Check: check, Key: key, Detail: detail})
		}
	}
	dupByKey := keySet(got)
	for _, b := range base {
		key := b.Set.Key()
		idx, ok := dupByKey[key]
		if !ok {
			continue
		}
		g := got[idx]
		for i := range b.Supports.Count {
			if g.Supports.Count[i] != m*b.Supports.Count[i] {
				report(key, fmt.Sprintf("count[g%d]: base %d, x%d run %d",
					i, b.Supports.Count[i], m, g.Supports.Count[i]))
			}
		}
		if math.Float64bits(g.Score) != math.Float64bits(b.Score) {
			report(key, fmt.Sprintf("score changed under duplication: %v -> %v", b.Score, g.Score))
		}
	}
	return div
}

// sharedSignatureAgree reports patterns from the two runs that impose the
// same named conditions but disagree on counts.
func sharedSignatureAgree(check string, dA *dataset.Dataset, a []pattern.Contrast,
	dB *dataset.Dataset, b []pattern.Contrast) []Divergence {
	var div []Divergence
	sigA := map[string]string{}
	for _, c := range a {
		items, counts := namedSignature(dA, c)
		sigA[items] = counts
	}
	for _, c := range b {
		items, counts := namedSignature(dB, c)
		if want, ok := sigA[items]; ok && want != counts {
			if len(div) < maxReport {
				div = append(div, Divergence{Check: check,
					Detail: fmt.Sprintf("condition %s counts: baseline %s, transformed %s", items, want, counts)})
			}
		}
	}
	return div
}

// ---------------------------------------------------------------------------
// Subgroup discovery reference.

// SubgroupResult is the reference beam search's output.
type SubgroupResult struct {
	Contrasts []pattern.Contrast
	Evaluated int
}

func subgroupRefDefaults(cfg subgroup.Config) subgroup.Config {
	if cfg.BeamWidth == 0 {
		cfg.BeamWidth = 100
	}
	if cfg.Depth == 0 {
		cfg.Depth = 2
	}
	if cfg.Bins == 0 {
		cfg.Bins = 8
	}
	if cfg.TopK == 0 {
		cfg.TopK = 100
	}
	if cfg.TopK == subgroup.TopKUnbounded {
		cfg.TopK = 0
	}
	if cfg.MinCoverage == 0 {
		cfg.MinCoverage = 2
	}
	if cfg.MinQuality == 0 {
		cfg.MinQuality = 0.01
	}
	return cfg
}

// quantileRef transliterates dataset.View.Quantile over the full dataset:
// finite values sorted, lower element at index int(q·(n−1)).
func quantileRef(d *dataset.Dataset, attr int, q float64) float64 {
	var vals []float64
	for _, x := range d.ContColumn(attr) {
		if x == x { // skip NaN
			vals = append(vals, x)
		}
	}
	if len(vals) == 0 {
		return 0
	}
	sort.Float64s(vals)
	if q <= 0 {
		return vals[0]
	}
	if q >= 1 {
		return vals[len(vals)-1]
	}
	return vals[int(q*float64(len(vals)-1))]
}

// conditionsRef transliterates the production condition enumeration:
// attribute=value items, then every interval over the ±Inf-extended
// equal-frequency boundary ladder except the full range.
func conditionsRef(d *dataset.Dataset, bins int) []pattern.Item {
	var out []pattern.Item
	for _, attr := range d.CategoricalAttrs() {
		for code := range d.Domain(attr) {
			out = append(out, pattern.CatItem(attr, code))
		}
	}
	for _, attr := range d.ContinuousAttrs() {
		var bounds []float64
		prev := math.Inf(-1)
		for b := 1; b < bins; b++ {
			q := quantileRef(d, attr, float64(b)/float64(bins))
			if q > prev {
				bounds = append(bounds, q)
				prev = q
			}
		}
		ext := make([]float64, 0, len(bounds)+2)
		ext = append(ext, math.Inf(-1))
		ext = append(ext, bounds...)
		ext = append(ext, math.Inf(1))
		for i := 0; i < len(ext)-1; i++ {
			for j := i + 1; j < len(ext); j++ {
				if i == 0 && j == len(ext)-1 {
					continue
				}
				out = append(out, pattern.RangeItem(attr, ext[i], ext[j]))
			}
		}
	}
	return out
}

// RefSubgroup is the obviously-correct beam search: one run per target
// group over naively-counted covers, pooling per-key best-quality
// subgroups, then the bounded selection and the rescoring sort the
// production top-k list performs. The pooled list's content under a bound k
// equals the top k of the per-key-best universe under (quality desc, key
// asc) — the total order the production heap maintains — because the
// threshold is monotone while only Add is called.
func RefSubgroup(d *dataset.Dataset, cfg subgroup.Config) SubgroupResult {
	cfg = subgroupRefDefaults(cfg)
	conds := conditionsRef(d, cfg.Bins)
	sizes := d.GroupSizes()
	pool := map[string]pattern.Contrast{}
	evaluated := 0

	type beamEntry struct {
		set     pattern.Itemset
		rows    []int
		quality float64
	}
	for g := 0; g < d.NumGroups(); g++ {
		beam := []beamEntry{{set: pattern.NewItemset(), rows: allRows(d)}}
		for level := 1; level <= cfg.Depth; level++ {
			type candidate struct {
				set  pattern.Itemset
				key  string
				rows []int
				sup  pattern.Supports
			}
			var cands []candidate
			seen := map[string]bool{}
			for _, be := range beam {
				for _, cond := range conds {
					if _, used := be.set.ItemOn(cond.Attr); used {
						continue
					}
					set := be.set.With(cond)
					key := set.Key()
					if seen[key] {
						continue
					}
					seen[key] = true
					var rows []int
					counts := make([]int, len(sizes))
					for _, r := range be.rows {
						if cond.Matches(d, r) {
							rows = append(rows, r)
							counts[d.Group(r)]++
						}
					}
					cands = append(cands, candidate{set: set, key: key, rows: rows,
						sup: pattern.CountsToSupports(counts, sizes)})
				}
			}
			var next []beamEntry
			for _, c := range cands {
				evaluated++
				if len(c.rows) < cfg.MinCoverage {
					continue
				}
				q := wraccRef(c.sup, g)
				if q >= cfg.MinQuality {
					contrast := pattern.Contrast{Set: c.set, Supports: c.sup, Score: q}
					if stat, p, _, ok := chiSquare2xKRef(c.sup.Count, sizes); ok {
						contrast.ChiSq = stat
						contrast.P = p
					}
					if old, dup := pool[c.key]; !dup || contrast.Score > old.Score {
						pool[c.key] = contrast
					}
				}
				next = append(next, beamEntry{set: c.set, rows: c.rows, quality: q})
			}
			sort.Slice(next, func(i, j int) bool {
				if next[i].quality != next[j].quality {
					return next[i].quality > next[j].quality
				}
				return next[i].set.Key() < next[j].set.Key()
			})
			if len(next) > cfg.BeamWidth {
				next = next[:cfg.BeamWidth]
			}
			beam = next
		}
	}

	all := make([]pattern.Contrast, 0, len(pool))
	for _, c := range pool {
		all = append(all, c)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].Set.Key() < all[j].Set.Key()
	})
	if cfg.TopK > 0 && len(all) > cfg.TopK {
		all = all[:cfg.TopK]
	}
	for i := range all {
		all[i].Score = measureRef(cfg.Measure, all[i].Supports)
	}
	pattern.SortContrasts(all)
	return SubgroupResult{Contrasts: all, Evaluated: evaluated}
}

// CheckSubgroup holds the production beam search to the reference:
// bit-equality of the unbounded pool on both counting engines (plus the
// evaluation counter) and of the bounded default selection.
func CheckSubgroup(d *dataset.Dataset, cfg subgroup.Config) []Divergence {
	var div []Divergence

	exact := cfg
	exact.TopK = subgroup.TopKUnbounded
	exact.Workers = 1
	exact.SliceCounting = true
	refU := RefSubgroup(d, exact)
	got := subgroup.Mine(d, exact)
	div = append(div, diffContrastLists("subgroup-exact-slice", got.Contrasts, refU.Contrasts)...)
	if got.Evaluated != refU.Evaluated {
		div = append(div, Divergence{Check: "subgroup-exact-slice",
			Detail: fmt.Sprintf("evaluated: production %d, reference %d", got.Evaluated, refU.Evaluated)})
	}

	exact.SliceCounting = false
	gotBitmap := subgroup.Mine(d, exact)
	div = append(div, diffContrastLists("subgroup-exact-bitmap", gotBitmap.Contrasts, refU.Contrasts)...)

	bounded := cfg
	bounded.Workers = 1
	refK := RefSubgroup(d, bounded)
	gotK := subgroup.Mine(d, bounded)
	div = append(div, diffContrastLists("subgroup-topk", gotK.Contrasts, refK.Contrasts)...)
	return div
}

// CheckSubgroupBitEquality mirrors the STUCCO battery for the beam search:
// engine swap, worker count, instrumentation, row permutation (quantile
// boundaries come from sorted values) and group relabeling must all be
// bit-neutral.
func CheckSubgroupBitEquality(d *dataset.Dataset, cfg subgroup.Config, seed int64) []Divergence {
	base := subgroup.Mine(d, cfg)
	var div []Divergence
	variant := func(check string, vd *dataset.Dataset, mut func(*subgroup.Config)) {
		vcfg := cfg
		if mut != nil {
			mut(&vcfg)
		}
		got := subgroup.Mine(vd, vcfg)
		div = append(div, diffContrastLists(check, got.Contrasts, base.Contrasts)...)
	}
	variant("subgroup-engine-slice-vs-bitmap", d, func(c *subgroup.Config) { c.SliceCounting = !c.SliceCounting })
	variant("subgroup-workers-8-vs-1", d, func(c *subgroup.Config) { c.Workers = 8 })
	variant("subgroup-instrumentation-on-vs-off", d, func(c *subgroup.Config) {
		c.Metrics = metrics.New()
		c.Trace = trace.New(1 << 16)
	})
	variant("subgroup-row-permutation", PermuteRows(d, seed), nil)
	relabeled, _ := RelabelGroups(d)
	variant("subgroup-group-relabel", relabeled, nil)
	return div
}

// CheckSubgroupReorder verifies the weak reordering invariant for the beam
// search: shared named conditions must agree on counts. Presence is
// order-dependent — canonical keys enter the beam tie-break, so a column
// reversal can rotate equal-quality subgroups in and out of the beam.
func CheckSubgroupReorder(d *dataset.Dataset, cfg subgroup.Config) []Divergence {
	base := subgroup.Mine(d, cfg)
	order := make([]int, d.NumAttrs())
	for i := range order {
		order[i] = d.NumAttrs() - 1 - i
	}
	rd := ReorderColumns(d, order)
	got := subgroup.Mine(rd, cfg)
	return sharedSignatureAgree("subgroup-column-reorder", d, base.Contrasts, rd, got.Contrasts)
}

// CheckSubgroupDuplication verifies the common-key ×m scaling relation.
// Keys themselves shift under duplication — the equal-frequency boundary
// index int(q·(n−1)) moves with n — so only intersecting keys are held to
// the relation.
func CheckSubgroupDuplication(d *dataset.Dataset, cfg subgroup.Config, m int) []Divergence {
	base := subgroup.Mine(d, cfg)
	got := subgroup.Mine(DuplicateRows(d, m), cfg)
	return commonKeyScaled("subgroup-row-duplication", base.Contrasts, got.Contrasts, m)
}

// ---------------------------------------------------------------------------
// Entropy (MDLP) reference.

// RefEntropyCuts transliterates the Fayyad–Irani discretizer: per
// continuous attribute, recursive best-gain splitting at distinct-value
// boundaries under the MDL acceptance criterion, with the group attribute
// as the class.
func RefEntropyCuts(d *dataset.Dataset) map[int][]float64 {
	classes := make([]int, d.Rows())
	for r := range classes {
		classes[r] = d.Group(r)
	}
	cuts := make(map[int][]float64)
	for _, attr := range d.ContinuousAttrs() {
		cuts[attr] = discretizeRef(d.ContColumn(attr), classes, d.NumGroups())
	}
	return cuts
}

func discretizeRef(values []float64, classes []int, numClasses int) []float64 {
	if len(values) != len(classes) || len(values) < 2 {
		return nil
	}
	idx := make([]int, 0, len(values))
	for i := range values {
		if values[i] == values[i] {
			idx = append(idx, i)
		}
	}
	if len(idx) < 2 {
		return nil
	}
	sort.Slice(idx, func(a, b int) bool { return values[idx[a]] < values[idx[b]] })
	sv := make([]float64, len(idx))
	sc := make([]int, len(idx))
	for i, j := range idx {
		sv[i] = values[j]
		sc[i] = classes[j]
	}
	var cuts []float64
	mdlpSplitRef(sv, sc, numClasses, &cuts)
	sort.Float64s(cuts)
	return cuts
}

func mdlpSplitRef(sv []float64, sc []int, numClasses int, cuts *[]float64) {
	n := len(sv)
	if n < 2 {
		return
	}
	total := make([]int, numClasses)
	for _, c := range sc {
		total[c]++
	}
	entS := entropyOfRef(total, n)
	if entS == 0 {
		return
	}

	prefix := make([]int, numClasses)
	bestGain := -1.0
	bestIdx := -1
	var bestLeftEnt, bestRightEnt float64
	var bestLeftK, bestRightK int
	for i := 0; i < n-1; i++ {
		prefix[sc[i]]++
		if sv[i] == sv[i+1] {
			continue
		}
		nl := i + 1
		nr := n - nl
		entL := entropyOfRef(prefix, nl)
		right := make([]int, numClasses)
		for c := range right {
			right[c] = total[c] - prefix[c]
		}
		entR := entropyOfRef(right, nr)
		e := float64(nl)/float64(n)*entL + float64(nr)/float64(n)*entR
		gain := entS - e
		if gain > bestGain {
			bestGain = gain
			bestIdx = i
			bestLeftEnt, bestRightEnt = entL, entR
			bestLeftK, bestRightK = distinctRef(prefix), distinctRef(right)
		}
	}
	if bestIdx == -1 {
		return
	}

	k := distinctRef(total)
	delta := math.Log2(math.Pow(3, float64(k))-2) -
		(float64(k)*entS - float64(bestLeftK)*bestLeftEnt - float64(bestRightK)*bestRightEnt)
	threshold := (math.Log2(float64(n)-1) + delta) / float64(n)
	if bestGain <= threshold {
		return
	}

	cut := (sv[bestIdx] + sv[bestIdx+1]) / 2
	*cuts = append(*cuts, cut)
	mdlpSplitRef(sv[:bestIdx+1], sc[:bestIdx+1], numClasses, cuts)
	mdlpSplitRef(sv[bestIdx+1:], sc[bestIdx+1:], numClasses, cuts)
}

func distinctRef(counts []int) int {
	k := 0
	for _, c := range counts {
		if c > 0 {
			k++
		}
	}
	return k
}

func entropyOfRef(counts []int, n int) float64 {
	if n == 0 {
		return 0
	}
	e := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(n)
		e -= p * math.Log2(p)
	}
	return e
}

// diffCuts compares per-attribute cut lists bit-for-bit.
func diffCuts(check string, d *dataset.Dataset, got, want map[int][]float64) []Divergence {
	var div []Divergence
	report := func(detail string) {
		if len(div) < maxReport {
			div = append(div, Divergence{Check: check, Detail: detail})
		}
	}
	for _, attr := range d.ContinuousAttrs() {
		g, w := got[attr], want[attr]
		if len(g) != len(w) {
			report(fmt.Sprintf("%s: %d cuts %v, reference %d cuts %v",
				d.Attr(attr).Name, len(g), g, len(w), w))
			continue
		}
		for i := range g {
			if math.Float64bits(g[i]) != math.Float64bits(w[i]) {
				report(fmt.Sprintf("%s cut %d: %v, reference %v", d.Attr(attr).Name, i, g[i], w[i]))
			}
		}
	}
	return div
}

// CheckEntropy holds the production MDLP discretizer to the reference cuts
// and then drives the full engine pipeline — STUCCO over the binned
// dataset — through the STUCCO battery, which is exactly what the engine's
// "entropy" algorithm executes.
func CheckEntropy(d *dataset.Dataset) []Divergence {
	got := entropy.DiscretizeDataset(d)
	div := diffCuts("entropy-cuts", d, got, RefEntropyCuts(d))
	if len(div) > 0 {
		return div
	}
	binned := dataset.Discretized(d, got)
	return append(div, CheckSTUCCO(binned, stucco.Config{})...)
}

// CheckEntropyInvariances verifies the discretizer's metamorphic relations:
// cut bit-equality under row permutation and group relabeling (entropies
// are functions of class counts at distinct-value boundaries), and the
// superset relation under ×m duplication (gains are scale-invariant while
// the MDL threshold shrinks at these row counts, so accepted splits stay
// accepted and recursion revisits the same subranges).
func CheckEntropyInvariances(d *dataset.Dataset, seed int64, m int) []Divergence {
	base := entropy.DiscretizeDataset(d)
	var div []Divergence
	div = append(div, diffCuts("entropy-row-permutation", d,
		entropy.DiscretizeDataset(PermuteRows(d, seed)), base)...)
	relabeled, _ := RelabelGroups(d)
	div = append(div, diffCuts("entropy-group-relabel", d,
		entropy.DiscretizeDataset(relabeled), base)...)

	dup := entropy.DiscretizeDataset(DuplicateRows(d, m))
	for _, attr := range d.ContinuousAttrs() {
		have := map[uint64]bool{}
		for _, c := range dup[attr] {
			have[math.Float64bits(c)] = true
		}
		for _, c := range base[attr] {
			if !have[math.Float64bits(c)] {
				if len(div) < maxReport {
					div = append(div, Divergence{Check: "entropy-row-duplication",
						Detail: fmt.Sprintf("%s: cut %v lost after duplicating every row x%d (cuts %v -> %v)",
							d.Attr(attr).Name, c, m, base[attr], dup[attr])})
				}
			}
		}
	}
	return div
}

// ---------------------------------------------------------------------------
// MVD reference.

type mvdRefState struct {
	attr   int
	sorted []int
	rank   []int
	starts []int
}

func (s *mvdRefState) bins() int { return len(s.starts) - 1 }

func (s *mvdRefState) binOfRow(row int) int {
	r := s.rank[row]
	if r < 0 {
		return -1
	}
	return sort.Search(len(s.starts)-1, func(b int) bool { return s.starts[b+1] > r })
}

func newMVDRefState(d *dataset.Dataset, attr, binSize int) *mvdRefState {
	total := d.Rows()
	s := &mvdRefState{attr: attr}
	col := d.ContColumn(attr)
	s.sorted = make([]int, 0, total)
	for i := 0; i < total; i++ {
		if col[i] == col[i] {
			s.sorted = append(s.sorted, i)
		}
	}
	n := len(s.sorted)
	sort.SliceStable(s.sorted, func(a, b int) bool { return col[s.sorted[a]] < col[s.sorted[b]] })
	s.rank = make([]int, total)
	for i := range s.rank {
		s.rank[i] = -1
	}
	for pos, row := range s.sorted {
		s.rank[row] = pos
	}
	s.starts = []int{0}
	for pos := binSize; pos < n; pos += binSize {
		p := pos
		for p < n && col[s.sorted[p]] == col[s.sorted[p-1]] {
			p++
		}
		if p < n && p > s.starts[len(s.starts)-1] {
			s.starts = append(s.starts, p)
		}
	}
	s.starts = append(s.starts, n)
	return s
}

func (s *mvdRefState) cutPoints(d *dataset.Dataset) []float64 {
	col := d.ContColumn(s.attr)
	cuts := make([]float64, 0, s.bins()-1)
	for b := 0; b < s.bins()-1; b++ {
		lastRow := s.sorted[s.starts[b+1]-1]
		cuts = append(cuts, col[lastRow])
	}
	return cuts
}

// RefMVDCuts transliterates Bay's MVD end to end: equi-frequency initial
// binning with tie snapping, best-first merging of the least-distinguished
// adjacent pair, and the Bonferroni-over-contexts similarity test, all on
// the reference chi-square.
func RefMVDCuts(d *dataset.Dataset, cfg mvd.Config) mvd.Result {
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.05
	}
	if cfg.BinSize == 0 {
		cfg.BinSize = 100
	}
	if cfg.MaxSweeps == 0 {
		cfg.MaxSweeps = 50
	}
	contAttrs := d.ContinuousAttrs()
	states := make([]*mvdRefState, 0, len(contAttrs))
	for _, attr := range contAttrs {
		states = append(states, newMVDRefState(d, attr, cfg.BinSize))
	}
	res := mvd.Result{Cuts: make(map[int][]float64, len(states))}

	for sweep := 0; sweep < cfg.MaxSweeps; sweep++ {
		merged := false
		for _, s := range states {
			if mergeOnceRef(d, s, states, cfg.Alpha, &res.PairsEvaluated) {
				merged = true
			}
		}
		if !merged {
			break
		}
	}
	for _, s := range states {
		res.Cuts[s.attr] = s.cutPoints(d)
	}
	return res
}

func mergeOnceRef(d *dataset.Dataset, s *mvdRefState, all []*mvdRefState, alpha float64, pairs *int) bool {
	mergedAny := false
	for {
		bestPair := -1
		bestP := alpha
		for b := 0; b < s.bins()-1; b++ {
			*pairs++
			p := pairSimilarityRef(d, s, b, all)
			if p > bestP {
				bestP = p
				bestPair = b
			}
		}
		if bestPair == -1 {
			return mergedAny
		}
		s.starts = append(s.starts[:bestPair+1], s.starts[bestPair+2:]...)
		mergedAny = true
		if s.bins() <= 1 {
			return mergedAny
		}
	}
}

func pairSimilarityRef(d *dataset.Dataset, s *mvdRefState, b int, all []*mvdRefState) float64 {
	lo1, hi1 := s.starts[b], s.starts[b+1]
	lo2, hi2 := s.starts[b+1], s.starts[b+2]

	nContexts := 1 + len(d.CategoricalAttrs()) + len(all) - 1
	minP := 1.0
	consider := func(p float64, ok bool) {
		if !ok {
			return
		}
		p *= float64(nContexts)
		if p > 1 {
			p = 1
		}
		if p < minP {
			minP = p
		}
	}

	consider(contextTestRef(func(row int) int { return d.Group(row) }, d.NumGroups(),
		s.sorted[lo1:hi1], s.sorted[lo2:hi2]))
	for _, attr := range d.CategoricalAttrs() {
		a := attr
		consider(contextTestRef(func(row int) int { return d.CatCode(a, row) },
			len(d.Domain(a)), s.sorted[lo1:hi1], s.sorted[lo2:hi2]))
	}
	for _, other := range all {
		if other.attr == s.attr {
			continue
		}
		o := other
		consider(contextTestRef(o.binOfRow, o.bins(),
			s.sorted[lo1:hi1], s.sorted[lo2:hi2]))
	}
	return minP
}

func contextTestRef(ctx func(row int) int, cardinality int, rows1, rows2 []int) (float64, bool) {
	if cardinality < 2 {
		return 1, false
	}
	obs := make([][]float64, 2)
	obs[0] = make([]float64, cardinality)
	obs[1] = make([]float64, cardinality)
	for _, r := range rows1 {
		if c := ctx(r); c >= 0 {
			obs[0][c]++
		}
	}
	for _, r := range rows2 {
		if c := ctx(r); c >= 0 {
			obs[1][c]++
		}
	}
	trimmed := [][]float64{{}, {}}
	for c := 0; c < cardinality; c++ {
		if obs[0][c]+obs[1][c] > 0 {
			trimmed[0] = append(trimmed[0], obs[0][c])
			trimmed[1] = append(trimmed[1], obs[1][c])
		}
	}
	if len(trimmed[0]) < 2 {
		return 1, false
	}
	_, p, _, ok := chiSquareTableRef(trimmed)
	if !ok {
		return 1, false
	}
	return p, true
}

// CheckMVD holds the production discretizer to the reference — cuts
// bit-for-bit plus the pairs-evaluated counter — and then drives the
// engine's full "mvd" pipeline (STUCCO over the binned dataset) through
// the STUCCO battery.
func CheckMVD(d *dataset.Dataset, cfg mvd.Config) []Divergence {
	got := mvd.DiscretizeDataset(d, cfg)
	ref := RefMVDCuts(d, cfg)
	div := diffCuts("mvd-cuts", d, got.Cuts, ref.Cuts)
	if got.PairsEvaluated != ref.PairsEvaluated {
		div = append(div, Divergence{Check: "mvd-cuts",
			Detail: fmt.Sprintf("pairs evaluated: production %d, reference %d",
				got.PairsEvaluated, ref.PairsEvaluated)})
	}
	if len(div) > 0 {
		return div
	}
	binned := dataset.Discretized(d, got.Cuts)
	return append(div, CheckSTUCCO(binned, stucco.Config{})...)
}

// CheckMVDInvariances verifies MVD's metamorphic relations: cut and counter
// bit-equality under row permutation (tie snapping makes bin membership a
// function of values, not of row order) and under group relabeling. There
// is deliberately no duplication relation — the initial partition depends
// on the absolute row count.
func CheckMVDInvariances(d *dataset.Dataset, cfg mvd.Config, seed int64) []Divergence {
	base := mvd.DiscretizeDataset(d, cfg)
	var div []Divergence
	variant := func(check string, vd *dataset.Dataset) {
		got := mvd.DiscretizeDataset(vd, cfg)
		div = append(div, diffCuts(check, d, got.Cuts, base.Cuts)...)
		if got.PairsEvaluated != base.PairsEvaluated {
			div = append(div, Divergence{Check: check,
				Detail: fmt.Sprintf("pairs evaluated: %d, baseline %d",
					got.PairsEvaluated, base.PairsEvaluated)})
		}
	}
	variant("mvd-row-permutation", PermuteRows(d, seed))
	relabeled, _ := RelabelGroups(d)
	variant("mvd-group-relabel", relabeled)
	return div
}
