package oracle

import (
	"fmt"
	"math"
	"math/rand"

	"sdadcs/internal/dataset"
)

// Shape selects the structural family of a generated dataset. Beyond the
// generic mixed shape, the harness concentrates on the three adversarial
// families where pruning-heavy miners historically hide bugs: windows
// dominated by a single group, constant-valued continuous columns (no
// split is ever possible), and duplicate-heavy data where most boxes sit
// right at the expected-count<5 boundary.
type Shape int

const (
	// ShapeMixed is the generic case: 2–3 groups, categorical and
	// continuous attributes with group-dependent shifts, tied values and
	// occasional missing readings.
	ShapeMixed Shape = iota
	// ShapeOneGroupDominant gives one group ~95% of the rows, the others a
	// handful — degenerate tables, tiny samples, NaN-prone statistics.
	ShapeOneGroupDominant
	// ShapeConstantColumn makes one or more continuous columns constant
	// (and one near-constant), so SDAD-CS cannot split them.
	ShapeConstantColumn
	// ShapeDuplicateHeavy draws rows from a pool of ~8 distinct prototypes
	// so supports cluster at a few values and ties dominate every median.
	ShapeDuplicateHeavy
	// ShapeTiedGrid restricts every continuous value to a 4-point grid —
	// maximal ties, the case the paper-mode optimistic estimate is
	// documented to over-prune and the conservative mode must survive.
	ShapeTiedGrid

	numShapes
)

// String names the shape.
func (s Shape) String() string {
	switch s {
	case ShapeMixed:
		return "mixed"
	case ShapeOneGroupDominant:
		return "one-group-dominant"
	case ShapeConstantColumn:
		return "constant-column"
	case ShapeDuplicateHeavy:
		return "duplicate-heavy"
	case ShapeTiedGrid:
		return "tied-grid"
	default:
		return fmt.Sprintf("Shape(%d)", int(s))
	}
}

// Generate builds the dataset for a seed, cycling through the shapes so a
// contiguous seed range covers every family.
func Generate(seed int64) *dataset.Dataset {
	return GenerateShape(seed, Shape(seed%int64(numShapes)))
}

// GenerateShape builds a small random mixed dataset of the given shape.
// Everything is driven by the seed; the same seed always yields the same
// dataset. Sizes are kept small enough for the exhaustive oracle.
func GenerateShape(seed int64, shape Shape) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed*7919 + int64(shape)))
	rows := 40 + rng.Intn(80)
	groups := 2 + rng.Intn(2)
	numCat := 1 + rng.Intn(2)
	numCont := 1 + rng.Intn(2)

	labels := make([]string, rows)
	switch shape {
	case ShapeOneGroupDominant:
		// ~95% of rows in group g0; the rest spread over the others.
		for i := range labels {
			if rng.Float64() < 0.95 {
				labels[i] = "g0"
			} else {
				labels[i] = fmt.Sprintf("g%d", 1+rng.Intn(groups-1))
			}
		}
		// Guarantee at least one row outside g0 so the dataset builds.
		labels[rows-1] = "g1"
	default:
		for i := range labels {
			labels[i] = fmt.Sprintf("g%d", rng.Intn(groups))
		}
		// Guarantee at least two groups appear.
		labels[0], labels[1] = "g0", "g1"
	}
	groupOf := func(i int) int {
		var g int
		fmt.Sscanf(labels[i], "g%d", &g)
		return g
	}

	// Duplicate-heavy data draws each row from a small prototype pool.
	var protoCat [][]int // [proto][attr]
	var protoCont [][]float64
	proto := make([]int, rows)
	if shape == ShapeDuplicateHeavy {
		pool := 4 + rng.Intn(5)
		protoCat = make([][]int, pool)
		protoCont = make([][]float64, pool)
		for p := 0; p < pool; p++ {
			protoCat[p] = make([]int, numCat)
			protoCont[p] = make([]float64, numCont)
			for a := 0; a < numCat; a++ {
				protoCat[p][a] = rng.Intn(3)
			}
			for a := 0; a < numCont; a++ {
				protoCont[p][a] = float64(rng.Intn(6))
			}
		}
		for i := range proto {
			proto[i] = rng.Intn(pool)
		}
	}

	b := dataset.NewBuilder(fmt.Sprintf("oracle-%s-%d", shape, seed))
	for a := 0; a < numCat; a++ {
		vals := make([]string, rows)
		domain := 2 + rng.Intn(2)
		for i := range vals {
			switch {
			case shape == ShapeDuplicateHeavy:
				vals[i] = fmt.Sprintf("v%d", protoCat[proto[i]][a])
			case rng.Float64() < 0.35:
				// Group-dependent value: real contrast structure.
				vals[i] = fmt.Sprintf("v%d", groupOf(i)%domain)
			default:
				vals[i] = fmt.Sprintf("v%d", rng.Intn(domain))
			}
		}
		b.AddCategorical(fmt.Sprintf("cat%d", a), vals)
	}
	for a := 0; a < numCont; a++ {
		vals := make([]float64, rows)
		for i := range vals {
			switch shape {
			case ShapeConstantColumn:
				if a == 0 {
					vals[i] = 3.5 // strictly constant
				} else {
					// Near-constant: one distinct outlier value.
					vals[i] = 1
					if i == rows/2 {
						vals[i] = 2
					}
				}
			case ShapeDuplicateHeavy:
				vals[i] = protoCont[proto[i]][a]
			case ShapeTiedGrid:
				vals[i] = float64(rng.Intn(4))
			default:
				// Integer-ish values with a group-dependent shift force
				// ties at medians while planting real contrasts.
				vals[i] = float64(rng.Intn(8) + 2*groupOf(i))
				if rng.Float64() < 0.05 {
					vals[i] = math.NaN() // missing reading
				}
			}
		}
		b.AddContinuous(fmt.Sprintf("cont%d", a), vals)
	}
	b.SetGroups(labels)
	return b.MustBuild()
}
