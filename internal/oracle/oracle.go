package oracle

import (
	"math"
	"sort"

	"sdadcs/internal/dataset"
	"sdadcs/internal/pattern"
	"sdadcs/internal/stats"
)

// Config controls a reference mining run. Unlike core.Config there are no
// pruning toggles, no result bound, no worker count and no counting-engine
// knob: the oracle always enumerates everything, serially, by row scans.
type Config struct {
	// Alpha is the initial significance level; Bonferroni-adjusted per
	// level exactly as in STUCCO.
	Alpha float64
	// Delta is the minimum support difference (Eq. 2 threshold).
	Delta float64
	// MaxDepth bounds the number of attributes per combination.
	MaxDepth int
	// MaxRecursion bounds the SDAD-CS median-split recursion.
	MaxRecursion int
	// Measure is the driving interest measure.
	Measure pattern.Measure
	// RecordExplored mirrors core.Config.RecordExploredSpaces: when false
	// (Algorithm 1), a space whose refinement produced contrasts is
	// superseded by its children; when true (the NP variant), the coarse
	// space is recorded as well.
	RecordExplored bool
}

// Result is a reference mining outcome.
type Result struct {
	// Contrasts is the full pattern universe, sorted by descending score
	// with ties broken on the canonical key (the same total order the
	// production result uses).
	Contrasts []pattern.Contrast
	// LevelAlphas[l-1] is the Bonferroni-adjusted significance level used
	// at combination level l.
	LevelAlphas []float64
	// Candidates[l-1] is the number of candidate combinations tested at
	// level l (the |C_l| of the adjustment).
	Candidates []int
}

// Alpha returns the significance level in force at a combination level
// (1-based); it falls back to the deepest recorded level.
func (r Result) Alpha(level int) float64 {
	if len(r.LevelAlphas) == 0 {
		return math.NaN()
	}
	if level < 1 {
		level = 1
	}
	if level > len(r.LevelAlphas) {
		level = len(r.LevelAlphas)
	}
	return r.LevelAlphas[level-1]
}

// comb is one candidate attribute combination: a categorical value context
// (as items), the rows matching it, and the continuous attributes to be
// jointly discretized. len(catItems) + len(contAttrs) is the level.
type comb struct {
	catItems  []pattern.Item
	cover     []int // dataset rows matching catItems (all rows when empty)
	contAttrs []int
	lastAttr  int
}

type refMiner struct {
	d     *dataset.Dataset
	cfg   Config
	sizes []int
	// found maps canonical keys to emitted contrasts; duplicate emissions
	// (e.g. a merge union colliding with an NP-recorded coarse space) keep
	// the higher score, matching the production top-k replace rule.
	found map[string]pattern.Contrast
}

// Mine runs the exhaustive reference search.
func Mine(d *dataset.Dataset, cfg Config) Result {
	m := &refMiner{d: d, cfg: cfg, sizes: d.GroupSizes(), found: map[string]pattern.Contrast{}}

	frontier := m.levelOne()
	res := Result{}
	prevAlpha := cfg.Alpha
	for level := 1; level <= cfg.MaxDepth && len(frontier) > 0; level++ {
		// STUCCO's per-level Bonferroni adjustment, Eq.: α_l = min(α/|C_l|, α_{l−1}).
		alpha := cfg.Alpha / float64(len(frontier))
		if alpha > prevAlpha {
			alpha = prevAlpha
		}
		prevAlpha = alpha
		res.LevelAlphas = append(res.LevelAlphas, alpha)
		res.Candidates = append(res.Candidates, len(frontier))

		var survivors []comb
		for _, c := range frontier {
			if len(c.contAttrs) == 0 {
				m.evaluateCategorical(c, alpha)
				survivors = append(survivors, c) // categorical nodes always extend
				continue
			}
			contrasts, alive := m.sdad(c, alpha)
			for _, ct := range contrasts {
				m.emit(ct)
			}
			if alive {
				survivors = append(survivors, c)
			}
		}
		if level == cfg.MaxDepth {
			break
		}
		frontier = m.expand(survivors)
	}

	for _, c := range m.found {
		res.Contrasts = append(res.Contrasts, c)
	}
	pattern.SortContrasts(res.Contrasts)
	return res
}

func (m *refMiner) emit(c pattern.Contrast) {
	key := c.Set.Key()
	if prev, ok := m.found[key]; ok && prev.Score >= c.Score {
		return
	}
	m.found[key] = c
}

// levelOne builds the initial frontier: one comb per categorical value and
// one per continuous attribute, in attribute order.
func (m *refMiner) levelOne() []comb {
	var out []comb
	for attr := 0; attr < m.d.NumAttrs(); attr++ {
		if m.d.Attr(attr).Kind == dataset.Categorical {
			for code := range m.d.Domain(attr) {
				items := []pattern.Item{pattern.CatItem(attr, code)}
				out = append(out, comb{
					catItems: items,
					cover:    m.coverOf(items),
					lastAttr: attr,
				})
			}
		} else {
			out = append(out, comb{
				cover:     allRows(m.d),
				contAttrs: []int{attr},
				lastAttr:  attr,
			})
		}
	}
	return out
}

// expand extends every surviving comb with every attribute after its last.
// A categorical extension with an empty cover is not a candidate (it can
// never be tested), matching the levelwise search's candidate counting.
func (m *refMiner) expand(survivors []comb) []comb {
	var out []comb
	for _, c := range survivors {
		for attr := c.lastAttr + 1; attr < m.d.NumAttrs(); attr++ {
			if m.d.Attr(attr).Kind == dataset.Categorical {
				for code := range m.d.Domain(attr) {
					items := append(append([]pattern.Item(nil), c.catItems...),
						pattern.CatItem(attr, code))
					cover := m.coverOf(items)
					if len(cover) == 0 {
						continue
					}
					out = append(out, comb{
						catItems:  items,
						cover:     cover,
						contAttrs: c.contAttrs,
						lastAttr:  attr,
					})
				}
			} else {
				conts := append(append([]int(nil), c.contAttrs...), attr)
				out = append(out, comb{
					catItems:  c.catItems,
					cover:     c.cover,
					contAttrs: conts,
					lastAttr:  attr,
				})
			}
		}
	}
	return out
}

// coverOf scans every dataset row and keeps those matching all items — the
// naive counting path.
func (m *refMiner) coverOf(items []pattern.Item) []int {
	var rows []int
	for r := 0; r < m.d.Rows(); r++ {
		ok := true
		for _, it := range items {
			if !it.Matches(m.d, r) {
				ok = false
				break
			}
		}
		if ok {
			rows = append(rows, r)
		}
	}
	return rows
}

func allRows(d *dataset.Dataset) []int {
	rows := make([]int, d.Rows())
	for i := range rows {
		rows[i] = i
	}
	return rows
}

// suppOf is Eq. 1 from first principles: per-group counts over the rows,
// divided by the full dataset's group sizes.
func (m *refMiner) suppOf(rows []int) pattern.Supports {
	counts := make([]int, len(m.sizes))
	for _, r := range rows {
		counts[m.d.Group(r)]++
	}
	return pattern.Supports{Count: counts, Size: append([]int(nil), m.sizes...)}
}

// scoreOf evaluates the driving measure by transliterating Eq. 2 (Diff),
// Eq. 12 (PR) and Eq. 13 (SM) directly. WRAcc falls back to the shared
// definition (it only appears in baseline comparisons).
func (m *refMiner) scoreOf(sup pattern.Supports) float64 {
	switch m.cfg.Measure {
	case pattern.SupportDiff:
		return maxDiffRef(sup)
	case pattern.PurityRatio:
		return prRef(sup)
	case pattern.SurprisingMeasure:
		return prRef(sup) * maxDiffRef(sup) // Eq. 13: SM = PR × Diff
	case pattern.GrowthRateMeasure:
		return growthRateRef(sup)
	case pattern.ContrastRuleMeasure:
		return confSpreadRef(sup)
	default:
		return m.cfg.Measure.Eval(sup)
	}
}

// growthRateRef transliterates the squashed emerging-pattern growth rate:
// GR = max(supp)/min(supp), score = GR/(GR+1), with 0 for uncovered
// patterns and 1 for jumping emerging patterns (min supp = 0).
func growthRateRef(sup pattern.Supports) float64 {
	lo, hi := sup.Supp(0), sup.Supp(0)
	for g := 1; g < sup.Groups(); g++ {
		v := sup.Supp(g)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == 0 {
		return 0
	}
	if lo == 0 {
		return 1
	}
	gr := hi / lo
	return gr / (gr + 1)
}

// confSpreadRef transliterates the SCR-style contrasting-rules score: the
// spread of conf_g = Count[g]/TotalCount over groups, 0 when uncovered.
func confSpreadRef(sup pattern.Supports) float64 {
	covered := 0
	for _, c := range sup.Count {
		covered += c
	}
	if covered == 0 {
		return 0
	}
	lo, hi := 0.0, 0.0
	for g := range sup.Count {
		conf := float64(sup.Count[g]) / float64(covered)
		if g == 0 || conf < lo {
			lo = conf
		}
		if g == 0 || conf > hi {
			hi = conf
		}
	}
	return hi - lo
}

// maxDiffRef is Eq. 2 maximized over ordered group pairs:
// max_{i,j} supp_i − supp_j = max(supp) − min(supp).
func maxDiffRef(sup pattern.Supports) float64 {
	lo, hi := sup.Supp(0), sup.Supp(0)
	for g := 1; g < sup.Groups(); g++ {
		v := sup.Supp(g)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}

// prRef is Eq. 12: PR = 1 − min(supp)/max(supp); 0 when nothing is covered.
func prRef(sup pattern.Supports) float64 {
	lo, hi := sup.Supp(0), sup.Supp(0)
	for g := 1; g < sup.Groups(); g++ {
		v := sup.Supp(g)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == 0 {
		return 0
	}
	return 1 - lo/hi
}

// chiSquareRef recomputes the 2×k group/presence chi-square from the
// Σ(o−e)²/e definition. ok is false when the statistic is undefined (a zero
// margin: nothing covered, everything covered, or an empty group).
func chiSquareRef(count, size []int) (stat, p float64, df int, ok bool) {
	k := len(count)
	present, absent, total := 0, 0, 0
	for g := 0; g < k; g++ {
		if size[g] == 0 {
			return 0, 0, 0, false
		}
		present += count[g]
		absent += size[g] - count[g]
		total += size[g]
	}
	if present == 0 || absent == 0 {
		return 0, 0, 0, false
	}
	for g := 0; g < k; g++ {
		for _, cell := range [2]struct{ obs, colSum float64 }{
			{float64(count[g]), float64(present)},
			{float64(size[g] - count[g]), float64(absent)},
		} {
			exp := float64(size[g]) * cell.colSum / float64(total)
			d := cell.obs - exp
			stat += d * d / exp
		}
	}
	df = k - 1
	return stat, stats.ChiSquareSurvival(stat, df), df, true
}

// significant applies the chi-square gate NaN-safely: only a definite
// p < α passes.
func significant(count, size []int, alpha float64) (stat, p float64, ok bool) {
	stat, p, _, defined := chiSquareRef(count, size)
	if !defined || !(p < alpha) {
		return stat, p, false
	}
	return stat, p, true
}

// evaluateCategorical tests one categorical itemset STUCCO-style: emit it
// when it is large (Eq. 2 above δ) and significant at the level's α.
func (m *refMiner) evaluateCategorical(c comb, alpha float64) {
	sup := m.suppOf(c.cover)
	if !(maxDiffRef(sup) > m.cfg.Delta) {
		return
	}
	stat, p, ok := significant(sup.Count, sup.Size, alpha)
	if !ok {
		return
	}
	m.emit(pattern.Contrast{
		Set:      pattern.NewItemset(c.catItems...),
		Supports: sup,
		Score:    m.scoreOf(sup),
		ChiSq:    stat,
		P:        p,
	})
}

// ---------------------------------------------------------------------------
// SDAD-CS reference (Algorithm 1), exhaustive: no optimistic estimate, no
// pruning rules, naive per-box counting.

type refSDAD struct {
	m         *refMiner
	contAttrs []int
	alpha     float64
	alive     bool
}

// sdad discretizes the continuous attributes of a combination within its
// categorical context and returns the contrast spaces found after the
// bottom-up merge. alive reports whether any split happened — the
// levelwise search extends the combination only then.
func (m *refMiner) sdad(c comb, alpha float64) ([]pattern.Contrast, bool) {
	r := &refSDAD{m: m, contAttrs: c.contAttrs, alpha: alpha}
	box := pattern.NewItemset(c.catItems...)
	d := r.explore(c.cover, box, 1, 0)
	d = r.merge(d)
	return d, r.alive
}

// explore is the recursive top-down part: split every continuous attribute
// at the lower-middle median of the current space (when the median strictly
// separates), form the cartesian product of boxes, and recurse into every
// box unconditionally.
func (r *refSDAD) explore(rows []int, box pattern.Itemset, level int, parentMeasure float64) []pattern.Contrast {
	if level > r.m.cfg.MaxRecursion || len(rows) < 2 {
		return nil
	}

	choices := make([][]pattern.Interval, len(r.contAttrs))
	splits := 0
	for i, attr := range r.contAttrs {
		cur := pattern.FullRange()
		if it, ok := box.ItemOn(attr); ok {
			cur = it.Range
		}
		med, hi, any := medianAndMax(r.m.d, attr, rows)
		if any && med > cur.Lo && med < hi && med < cur.Hi {
			choices[i] = []pattern.Interval{{Lo: cur.Lo, Hi: med}, {Lo: med, Hi: cur.Hi}}
			splits++
		} else {
			choices[i] = []pattern.Interval{cur}
		}
	}
	if splits == 0 {
		return nil
	}
	r.alive = true

	var contrasts, tentative []pattern.Contrast // D and Dtemp
	r.forEachBox(choices, func(ivs []pattern.Interval) {
		childBox := box
		for i, attr := range r.contAttrs {
			childBox = childBox.With(pattern.RangeItem(attr, ivs[i].Lo, ivs[i].Hi))
		}
		if childBox.Equal(box) {
			return // no attribute refined
		}
		// Naive per-row membership test against the box's intervals.
		// (Lo, Hi] semantics: NaN readings belong to no box.
		var boxRows []int
		for _, row := range rows {
			in := true
			for i, attr := range r.contAttrs {
				if !ivs[i].Contains(r.m.d.Cont(attr, row)) {
					in = false
					break
				}
			}
			if in {
				boxRows = append(boxRows, row)
			}
		}
		sup := r.m.suppOf(boxRows)
		score := r.m.scoreOf(sup)

		// Recurse unconditionally (the oracle has no optimistic estimate).
		child := r.explore(boxRows, childBox, level+1, score)
		explored := len(child) > 0
		contrasts = append(contrasts, child...)

		// Algorithm 1 keeps the refined children, not the coarse parent,
		// unless the NP variant records explored spaces too.
		if explored && !r.m.cfg.RecordExplored {
			return
		}
		// Record when large and significant — immediately if the space
		// improves on its parent, tentatively otherwise (Dtemp).
		if !(maxDiffRef(sup) > r.m.cfg.Delta) {
			return
		}
		stat, p, ok := significant(sup.Count, sup.Size, r.alpha)
		if !ok {
			return
		}
		c := pattern.Contrast{Set: childBox, Supports: sup, Score: score, ChiSq: stat, P: p}
		if score > parentMeasure {
			contrasts = append(contrasts, c)
		} else {
			tentative = append(tentative, c)
		}
	})

	// Tentative contrasts survive only if some space of this call improved.
	if len(contrasts) > 0 {
		return append(contrasts, tentative...)
	}
	return nil
}

// forEachBox visits the cartesian product of interval choices.
func (r *refSDAD) forEachBox(choices [][]pattern.Interval, visit func([]pattern.Interval)) {
	ivs := make([]pattern.Interval, len(choices))
	var rec func(i int)
	rec = func(i int) {
		if i == len(choices) {
			visit(ivs)
			return
		}
		for _, iv := range choices[i] {
			ivs[i] = iv
			rec(i + 1)
		}
	}
	rec(0)
}

// medianAndMax computes the lower-middle median and the maximum of the
// finite values of attr over the rows; any is false when every reading is
// missing.
func medianAndMax(d *dataset.Dataset, attr int, rows []int) (med, max float64, any bool) {
	vals := make([]float64, 0, len(rows))
	for _, r := range rows {
		v := d.Cont(attr, r)
		if v == v { // skip NaN
			vals = append(vals, v)
		}
	}
	if len(vals) == 0 {
		return 0, 0, false
	}
	sort.Float64s(vals)
	// Lower-middle element: for even n the element at (n−1)/2, so a split
	// at the median always leaves at least one row strictly above it when
	// two distinct values exist.
	return vals[(len(vals)-1)/2], vals[len(vals)-1], true
}

// merge is the bottom-up part of Algorithm 1 in its plainest possible
// form: sort spaces by ascending hyper-volume, repeatedly take the FIRST
// pair (in that order) that merges, replace it with the union, re-sort the
// whole list and restart the scan. No failure memoization, no splicing —
// the production merge claims those optimizations preserve this exact
// visit order, and the differential harness holds it to that.
func (r *refSDAD) merge(d []pattern.Contrast) []pattern.Contrast {
	if len(d) < 2 {
		return d
	}
	seen := map[string]bool{}
	spaces := make([]pattern.Contrast, 0, len(d))
	for _, c := range d {
		if !seen[c.Set.Key()] {
			seen[c.Set.Key()] = true
			spaces = append(spaces, c)
		}
	}
	for {
		sort.Slice(spaces, func(i, j int) bool { return volumeLessRef(spaces[i], spaces[j]) })
		merged := false
		for i := 0; i < len(spaces) && !merged; i++ {
			for j := i + 1; j < len(spaces); j++ {
				if u, ok := r.tryMerge(spaces[i], spaces[j]); ok {
					rest := make([]pattern.Contrast, 0, len(spaces)-1)
					for x, c := range spaces {
						if x != i && x != j {
							rest = append(rest, c)
						}
					}
					spaces = append(rest, u)
					merged = true
					break
				}
			}
		}
		if !merged {
			return spaces
		}
	}
}

// tryMerge combines two spaces that are contiguous on exactly one
// continuous attribute, pass the chi-square similarity test, and whose
// union is still large and significant. The union's supports are recounted
// naively over the full dataset rather than summed — the two halves must
// be disjoint, so a recount that disagrees with the sum would expose a
// double-counting bug.
func (r *refSDAD) tryMerge(a, b pattern.Contrast) (pattern.Contrast, bool) {
	attr, union, ok := contiguousRef(a.Set, b.Set)
	if !ok {
		return pattern.Contrast{}, false
	}
	merged := a.Set.With(pattern.RangeItem(attr, union.Lo, union.Hi))

	// Similarity: the group compositions of the two halves must not differ
	// significantly; a degenerate table reads as "indistinguishable".
	simP := 1.0
	if res, err := stats.ChiSquareTable([][]float64{
		intsToFloats(a.Supports.Count),
		intsToFloats(b.Supports.Count),
	}); err == nil {
		simP = res.P
	}
	if simP < r.alpha {
		return pattern.Contrast{}, false
	}

	sup := r.m.suppOf(r.m.coverOf(merged.Items()))
	for g := range sup.Count {
		if sup.Count[g] != a.Supports.Count[g]+b.Supports.Count[g] {
			// Disjointness violated: surface it as a non-merge so the
			// differential driver flags the divergence loudly.
			return pattern.Contrast{}, false
		}
	}
	if !(maxDiffRef(sup) > r.m.cfg.Delta) {
		return pattern.Contrast{}, false
	}
	stat, p, ok := significant(sup.Count, sup.Size, r.alpha)
	if !ok {
		return pattern.Contrast{}, false
	}
	return pattern.Contrast{
		Set:      merged,
		Supports: sup,
		Score:    r.m.scoreOf(sup),
		ChiSq:    stat,
		P:        p,
	}, true
}

// contiguousRef reports whether two boxes differ on exactly one continuous
// attribute with contiguous half-open ranges.
func contiguousRef(a, b pattern.Itemset) (attr int, union pattern.Interval, ok bool) {
	if a.Len() != b.Len() {
		return 0, pattern.Interval{}, false
	}
	attr = -1
	for i := 0; i < a.Len(); i++ {
		ia, ib := a.Item(i), b.Item(i)
		if ia.Equal(ib) {
			continue
		}
		if ia.Attr != ib.Attr || ia.Kind != dataset.Continuous || ib.Kind != dataset.Continuous {
			return 0, pattern.Interval{}, false
		}
		if attr != -1 {
			return 0, pattern.Interval{}, false
		}
		u, contiguous := ia.Range.Union(ib.Range)
		if !contiguous {
			return 0, pattern.Interval{}, false
		}
		attr, union = ia.Attr, u
	}
	if attr == -1 {
		return 0, pattern.Interval{}, false
	}
	return attr, union, true
}

// volumeLessRef is the merge scan order: ascending hyper-volume, unbounded
// ranges last, ties broken on the canonical key.
func volumeLessRef(a, b pattern.Contrast) bool {
	va, vb := a.Set.Volume(), b.Set.Volume()
	if va != vb {
		if math.IsInf(va, 1) {
			return false
		}
		if math.IsInf(vb, 1) {
			return true
		}
		return va < vb
	}
	return a.Set.Key() < b.Set.Key()
}

func intsToFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
