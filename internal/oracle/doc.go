// Package oracle is the differential correctness oracle for the production
// miner: a deliberately slow, obviously-correct reference implementation of
// the paper's search, plus a seeded generator of adversarial mixed datasets
// and a differential driver that compares the two miners pattern by
// pattern.
//
// The reference miner (Mine) is a direct transliteration of the paper's
// math with every optimization removed:
//
//   - exhaustive levelwise enumeration of attribute combinations — no
//     top-k bound, no optimistic-estimate recursion pruning, no
//     redundancy/pure-space/expected-count/lookup-table rules;
//   - naive per-row slice counting: every box and every categorical
//     itemset is counted by scanning rows and testing membership
//     directly, never by incremental assignment or bitmap intersection;
//   - Eq. 1 (support), Eq. 2 (Diff), Eq. 12 (PR) and Eq. 13 (SM) computed
//     from first principles in suppOf/scoreOf;
//   - the chi-square statistic recomputed from the Σ(o−e)²/e definition
//     (only the χ² survival function is shared with production — it is
//     pure special-function math, not miner logic);
//   - the STUCCO Bonferroni schedule α_l = min(α/|C_l|, α_{l−1}) tracked
//     independently;
//   - SDAD-CS (Algorithm 1) re-implemented with per-box row scans, the
//     lower-middle median split rule, the D/Dtemp tentative-contrast
//     logic, the supersede-by-children rule, and a restart-based
//     bottom-up merge that re-sorts and re-tests every pair after each
//     union (the production merge memoizes failures and splices — the
//     oracle validates that claim of equivalence).
//
// Two semantic choices are shared with production deliberately, because
// they are spec decisions rather than optimizations: combinations with an
// empty categorical cover are not candidates (they are dropped before the
// level's Bonferroni count), and a continuous combination is extended to
// the next level only if its discretization split at least once.
//
// The differential driver (diff.go) asserts three relations on every
// generated dataset: CheckExact — with pruning off and no result bound the
// production miner's output equals the oracle's bit for bit; CheckTopK —
// with a top-k bound the production output is a correctly-ranked,
// threshold-consistent selection from the oracle's pattern universe (a
// documented tolerance applies where the dynamic-threshold recursion
// pruning legitimately stops refining: see CheckTopK); CheckSoundness —
// under the full default configuration every emitted pattern recounts,
// rescores and passes its gates. transform.go adds the metamorphic layer:
// row permutation, group relabeling, duplicate-row scaling and column
// reordering, plus bit-equality across counting engines, worker counts and
// instrumentation on/off.
//
// Run the tier with:
//
//	go test ./internal/oracle -run TestOracle
//
// ORACLE_SEEDS overrides the number of random seeds (default 50; the
// nightly CI sweep sets 500).
package oracle
