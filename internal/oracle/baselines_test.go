package oracle

import (
	"testing"

	"sdadcs/internal/dataset"
	"sdadcs/internal/mvd"
	"sdadcs/internal/pattern"
	"sdadcs/internal/stucco"
	"sdadcs/internal/subgroup"
)

// measureCycle rotates every registered interest measure through the
// batteries so each seed exercises a different scoring path — including the
// growth-rate and contrast-rule measures this oracle is the reference for.
var measureCycle = []pattern.Measure{
	pattern.SupportDiff,
	pattern.PurityRatio,
	pattern.SurprisingMeasure,
	pattern.WRAccMeasure,
	pattern.GrowthRateMeasure,
	pattern.ContrastRuleMeasure,
}

// TestOracleSTUCCO holds production STUCCO to the transliterated reference
// (exact, both counting engines, counters, top-k prefix) and runs its
// metamorphic battery at every seed.
func TestOracleSTUCCO(t *testing.T) {
	seeds := seedCount(t, 50)
	for seed := int64(0); seed < int64(seeds); seed++ {
		shape := Shape(seed % int64(numShapes))
		d := Generate(seed)

		measure := measureCycle[seed%int64(len(measureCycle))]
		failDivergences(t, seed, shape, CheckSTUCCO(d, stucco.Config{Measure: measure}))
		// Tight bound: the generated datasets rarely exceed the default
		// top-100, so a small k is what actually exercises truncation.
		failDivergences(t, seed, shape, CheckSTUCCO(d, stucco.Config{Measure: measure, TopK: 3}))

		exact := stucco.Config{Measure: measure, TopK: stucco.TopKUnbounded, Workers: 1, SliceCounting: true}
		failDivergences(t, seed, shape, CheckSTUCCOBitEquality(d, exact, seed+1))
		failDivergences(t, seed, shape, CheckSTUCCOReorder(d, exact))
		failDivergences(t, seed, shape, CheckSTUCCODuplication(d, exact, 2))

		if t.Failed() {
			t.Fatalf("stopping at first divergent seed %d (%s)", seed, shape)
		}
	}
}

// TestOracleSubgroup does the same for the beam search.
func TestOracleSubgroup(t *testing.T) {
	seeds := seedCount(t, 50)
	for seed := int64(0); seed < int64(seeds); seed++ {
		shape := Shape(seed % int64(numShapes))
		d := Generate(seed)

		measure := measureCycle[seed%int64(len(measureCycle))]
		failDivergences(t, seed, shape, CheckSubgroup(d, subgroup.Config{Measure: measure}))
		// Tight bounds: the default beam (100) and top-k (100) are wider
		// than anything the generator produces, so beam truncation and
		// bounded selection only fire under deliberately small limits.
		failDivergences(t, seed, shape, CheckSubgroup(d,
			subgroup.Config{Measure: measure, BeamWidth: 3, TopK: 5, Depth: 3}))

		exact := subgroup.Config{Measure: measure, TopK: subgroup.TopKUnbounded, Workers: 1, SliceCounting: true}
		failDivergences(t, seed, shape, CheckSubgroupBitEquality(d, exact, seed+1))
		failDivergences(t, seed, shape, CheckSubgroupReorder(d, exact))
		failDivergences(t, seed, shape, CheckSubgroupDuplication(d, exact, 2))

		if t.Failed() {
			t.Fatalf("stopping at first divergent seed %d (%s)", seed, shape)
		}
	}
}

// TestOracleEntropy checks the MDLP cuts against the reference, the binned
// pipeline against the STUCCO oracle, and the discretizer's invariances.
func TestOracleEntropy(t *testing.T) {
	seeds := seedCount(t, 50)
	for seed := int64(0); seed < int64(seeds); seed++ {
		shape := Shape(seed % int64(numShapes))
		d := Generate(seed)

		failDivergences(t, seed, shape, CheckEntropy(d))
		failDivergences(t, seed, shape, CheckEntropyInvariances(d, seed+1, 2))

		if t.Failed() {
			t.Fatalf("stopping at first divergent seed %d (%s)", seed, shape)
		}
	}
}

// TestOracleBaselinesPureTypes pins the two dataset shapes the seeded
// generator never produces — only categorical attributes, and only one
// continuous attribute — against every baseline's reference. These are the
// degenerate ends of the condition enumeration (no interval ladder at all,
// and no categorical items at all).
func TestOracleBaselinesPureTypes(t *testing.T) {
	pureCat, err := dataset.NewBuilder("pure-cat").
		AddCategorical("c0", []string{"a", "a", "b", "b", "a", "b", "a", "a", "b", "a", "b", "b"}).
		AddCategorical("c1", []string{"x", "y", "x", "y", "x", "x", "y", "x", "y", "y", "x", "y"}).
		SetGroups([]string{"A", "A", "B", "B", "A", "B", "A", "A", "B", "A", "B", "B"}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, 40)
	labels := make([]string, 40)
	for i := range vals {
		vals[i] = float64(i % 7)
		labels[i] = "A"
		if i%2 == 0 {
			vals[i] += 5
			labels[i] = "B"
		}
	}
	pureCont, err := dataset.NewBuilder("pure-cont").
		AddContinuous("x", vals).
		SetGroups(labels).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []*dataset.Dataset{pureCat, pureCont} {
		failDivergences(t, -1, ShapeMixed, CheckSTUCCO(d, stucco.Config{}))
		failDivergences(t, -1, ShapeMixed, CheckSubgroup(d, subgroup.Config{}))
		failDivergences(t, -1, ShapeMixed, CheckMVD(d, mvd.Config{BinSize: 5}))
		failDivergences(t, -1, ShapeMixed, CheckEntropy(d))
		if t.Failed() {
			t.Fatalf("pure-type dataset %s diverged", d.Name())
		}
	}
}

// TestOracleMVD checks MVD cuts and the pairs counter against the
// reference, the binned pipeline against the STUCCO oracle, and the
// discretizer's invariances. The generator produces 40–120 rows, so the
// production default bin size (100) would mostly collapse to a single bin;
// BinSize 10 exercises real merging.
func TestOracleMVD(t *testing.T) {
	seeds := seedCount(t, 50)
	for seed := int64(0); seed < int64(seeds); seed++ {
		shape := Shape(seed % int64(numShapes))
		d := Generate(seed)
		cfg := mvd.Config{BinSize: 10}

		failDivergences(t, seed, shape, CheckMVD(d, cfg))
		failDivergences(t, seed, shape, CheckMVDInvariances(d, cfg, seed+1))

		if t.Failed() {
			t.Fatalf("stopping at first divergent seed %d (%s)", seed, shape)
		}
	}
}
