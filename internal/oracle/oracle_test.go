package oracle

import (
	"os"
	"strconv"
	"testing"

	"sdadcs/internal/core"
)

// seedCount reads the ORACLE_SEEDS override (the nightly sweep sets 500).
func seedCount(t *testing.T, def int) int {
	t.Helper()
	if s := os.Getenv("ORACLE_SEEDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad ORACLE_SEEDS=%q", s)
		}
		return n
	}
	return def
}

func failDivergences(t *testing.T, seed int64, shape Shape, div []Divergence) {
	t.Helper()
	for _, v := range div {
		t.Errorf("seed %d (%s): %s", seed, shape, v)
	}
}

// TestOracleDifferential is the tier-1 differential harness: for every
// seed it generates an adversarial dataset (cycling through the shape
// families) and runs the three checks — exact equality with pruning off,
// top-k selection consistency, and full-default soundness.
func TestOracleDifferential(t *testing.T) {
	seeds := seedCount(t, 50)
	for seed := int64(0); seed < int64(seeds); seed++ {
		d := Generate(seed)
		shape := Shape(seed % int64(numShapes))

		failDivergences(t, seed, shape, CheckExact(d, ExactConfig()))

		topkCfg := ExactConfig()
		topkCfg.TopK = 10
		failDivergences(t, seed, shape, CheckTopK(d, topkCfg))

		failDivergences(t, seed, shape, CheckSoundness(d, core.Config{}))

		if t.Failed() {
			t.Fatalf("stopping at first divergent seed %d (%s)", seed, shape)
		}
	}
}

// TestOracleMetamorphic runs the transformation batteries: bit-equality
// across engines/workers/instrumentation/row order, canonical equality
// under group relabeling and column reordering, and the ×2 row-duplication
// scaling relation. The batteries run under the exhaustive configuration
// (deterministic, unbounded) and the bit-equality battery additionally
// under the full default configuration, where pruning and the top-k bound
// are active and must still be order-independent.
func TestOracleMetamorphic(t *testing.T) {
	seeds := seedCount(t, 50)
	if seeds > 50 {
		seeds = 50 // the nightly differential sweep widens; this battery stays fixed
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		d := Generate(seed)
		shape := Shape(seed % int64(numShapes))

		failDivergences(t, seed, shape, CheckBitEquality(d, ExactConfig(), seed+1))
		failDivergences(t, seed, shape, CheckBitEquality(d, core.Config{}, seed+1))
		failDivergences(t, seed, shape, CheckRelabel(d, ExactConfig()))
		failDivergences(t, seed, shape, CheckReorder(d, ExactConfig()))
		failDivergences(t, seed, shape, CheckDuplication(d, ExactConfig(), 2))

		if t.Failed() {
			t.Fatalf("stopping at first divergent seed %d (%s)", seed, shape)
		}
	}
}

// TestOracleAdversarialShapes pins each adversarial family explicitly
// (rather than relying on the seed cycle) across several seeds per shape:
// the degenerate windows where pruning-heavy miners historically hide
// bugs must still agree with the oracle exactly and soundly.
func TestOracleAdversarialShapes(t *testing.T) {
	shapes := []Shape{ShapeOneGroupDominant, ShapeConstantColumn, ShapeDuplicateHeavy, ShapeTiedGrid}
	for _, shape := range shapes {
		shape := shape
		t.Run(shape.String(), func(t *testing.T) {
			for seed := int64(100); seed < 110; seed++ {
				d := GenerateShape(seed, shape)
				failDivergences(t, seed, shape, CheckExact(d, ExactConfig()))
				failDivergences(t, seed, shape, CheckSoundness(d, core.Config{}))
				if t.Failed() {
					t.Fatalf("stopping at first divergent seed %d", seed)
				}
			}
		})
	}
}

// TestGenerateShapesWellFormed sanity-checks the generator itself: every
// shape must build a valid dataset with at least two groups, and the
// constant-column family must actually contain a constant column.
func TestGenerateShapesWellFormed(t *testing.T) {
	for shape := Shape(0); shape < numShapes; shape++ {
		for seed := int64(0); seed < 20; seed++ {
			d := GenerateShape(seed, shape)
			if err := d.Validate(); err != nil {
				t.Fatalf("%s seed %d: invalid dataset: %v", shape, seed, err)
			}
			if d.NumGroups() < 2 {
				t.Fatalf("%s seed %d: %d groups", shape, seed, d.NumGroups())
			}
		}
	}
	d := GenerateShape(3, ShapeConstantColumn)
	conts := d.ContinuousAttrs()
	if len(conts) == 0 {
		t.Fatal("constant-column dataset has no continuous attribute")
	}
	col := d.ContColumn(conts[0])
	for _, v := range col {
		if v != col[0] {
			t.Fatalf("cont0 is not constant: %v vs %v", v, col[0])
		}
	}
}

// TestRefMinerEmitsSomething guards against a vacuous oracle: across the
// first 25 seeds the reference miner must find a non-trivial number of
// patterns (the generator plants real contrast structure).
func TestRefMinerEmitsSomething(t *testing.T) {
	total := 0
	for seed := int64(0); seed < 25; seed++ {
		d := Generate(seed)
		res := Mine(d, RefConfig(ExactConfig()))
		total += len(res.Contrasts)
		if len(res.LevelAlphas) == 0 {
			t.Fatalf("seed %d: no levels recorded", seed)
		}
		if a := res.Alpha(1); !(a <= 0.05) {
			t.Fatalf("seed %d: level-1 alpha %v not Bonferroni-adjusted", seed, a)
		}
	}
	if total == 0 {
		t.Fatal("oracle found zero patterns over 25 seeds; generator too weak")
	}
}

// TestTransformsPreserveShape pins the transform helpers themselves.
func TestTransformsPreserveShape(t *testing.T) {
	d := Generate(1)
	if p := PermuteRows(d, 7); p.Rows() != d.Rows() || p.NumAttrs() != d.NumAttrs() {
		t.Error("PermuteRows changed the dataset shape")
	}
	if dup := DuplicateRows(d, 3); dup.Rows() != 3*d.Rows() {
		t.Errorf("DuplicateRows(3): %d rows, want %d", dup.Rows(), 3*d.Rows())
	}
	order := make([]int, d.NumAttrs())
	for i := range order {
		order[i] = d.NumAttrs() - 1 - i
	}
	rd := ReorderColumns(d, order)
	if rd.Attr(0).Name != d.Attr(d.NumAttrs()-1).Name {
		t.Error("ReorderColumns did not reverse the attribute order")
	}
	ld, rename := RelabelGroups(d)
	if ld.NumGroups() != d.NumGroups() {
		t.Error("RelabelGroups changed the group count")
	}
	if rename(d.GroupName(0)) != d.GroupName(1) || rename(rename(d.GroupName(0))) != d.GroupName(0) {
		t.Error("rename is not the expected transposition")
	}
}
