package store

import (
	"errors"
	"strings"
	"testing"

	"sdadcs/internal/dataset"
)

// FuzzSegmentReader throws arbitrary bytes at DecodeSegments: it must
// never panic or over-allocate, and anything it accepts must be a valid
// dataset whose re-encoding decodes again. Seeded with real segment
// files and targeted corruptions of them so the fuzzer starts deep inside
// the format instead of at the magic check.
func FuzzSegmentReader(f *testing.F) {
	d, err := dataset.FromCSV(strings.NewReader(sampleCSV), dataset.CSVOptions{
		GroupColumn:      "status",
		ForceCategorical: []string{"machine"},
		Name:             "sample",
	})
	if err != nil {
		f.Fatal(err)
	}
	valid := EncodeSegments(d, sampleMeta())
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(segMagic))
	f.Add([]byte(segMagic + trailerMagic))
	for _, off := range []int{8, 9, 20, len(valid) / 2, len(valid) - 10, len(valid) - 1} {
		mut := append([]byte(nil), valid...)
		mut[off] ^= 0xFF
		f.Add(mut)
	}
	f.Add(valid[:len(valid)/2])
	f.Add(append(append([]byte(nil), valid...), valid...))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, m, err := DecodeSegments(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-corrupt error from decode: %v", err)
			}
			return
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("decoded dataset fails validation: %v", err)
		}
		if got.Rows() != m.Rows {
			t.Fatalf("decoded %d rows, meta says %d", got.Rows(), m.Rows)
		}
		if _, _, err := DecodeSegments(EncodeSegments(got, m)); err != nil {
			t.Fatalf("re-encoded accepted dataset fails decode: %v", err)
		}
	})
}
