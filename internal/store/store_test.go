package store

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sdadcs/internal/dataset"
)

const sampleCSV = `temp,pressure,machine,site,status
20.1,1.5,m1,north,ok
21.7,?,m2,north,fail
19.9,1.4,m1,south,ok
25.0,1.9,m3,south,fail
22.2,1.6,m2,north,ok
20.0,1.5,m3,south,fail
`

func sampleDataset(t testing.TB) *dataset.Dataset {
	t.Helper()
	d, err := dataset.FromCSV(strings.NewReader(sampleCSV), dataset.CSVOptions{
		GroupColumn:      "status",
		ForceCategorical: []string{"machine"},
		Name:             "sample",
	})
	if err != nil {
		t.Fatalf("FromCSV: %v", err)
	}
	return d
}

func sampleMeta() Meta {
	return Meta{
		ID:               "ds_0011223344556677",
		Name:             "sample",
		GroupColumn:      "status",
		ForceCategorical: []string{"machine"},
		RegisteredAt:     time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC),
	}
}

// requireSameDataset asserts bit-identity: schema, domains in order,
// codes, float bit patterns (NaN included), and group coding.
func requireSameDataset(t *testing.T, want, got *dataset.Dataset) {
	t.Helper()
	if got.Name() != want.Name() {
		t.Fatalf("name %q, want %q", got.Name(), want.Name())
	}
	if got.Rows() != want.Rows() || got.NumAttrs() != want.NumAttrs() {
		t.Fatalf("shape %dx%d, want %dx%d", got.Rows(), got.NumAttrs(), want.Rows(), want.NumAttrs())
	}
	for i := 0; i < want.NumAttrs(); i++ {
		wa, ga := want.Attr(i), got.Attr(i)
		if wa.Name != ga.Name || wa.Kind != ga.Kind {
			t.Fatalf("attr %d: %v/%v, want %v/%v", i, ga.Name, ga.Kind, wa.Name, wa.Kind)
		}
		if wa.Kind == dataset.Continuous {
			wc, gc := want.ContColumn(i), got.ContColumn(i)
			for r := range wc {
				if math.Float64bits(wc[r]) != math.Float64bits(gc[r]) {
					t.Fatalf("attr %d row %d: %v, want %v (bit-level)", i, r, gc[r], wc[r])
				}
			}
			continue
		}
		wd, gd := want.Domain(i), got.Domain(i)
		if len(wd) != len(gd) {
			t.Fatalf("attr %d domain size %d, want %d", i, len(gd), len(wd))
		}
		for c := range wd {
			if wd[c] != gd[c] {
				t.Fatalf("attr %d domain[%d] %q, want %q", i, c, gd[c], wd[c])
			}
		}
		wcodes, gcodes := want.CatCodes(i), got.CatCodes(i)
		for r := range wcodes {
			if wcodes[r] != gcodes[r] {
				t.Fatalf("attr %d code row %d: %d, want %d", i, r, gcodes[r], wcodes[r])
			}
		}
	}
	if got.NumGroups() != want.NumGroups() {
		t.Fatalf("groups %d, want %d", got.NumGroups(), want.NumGroups())
	}
	for g := 0; g < want.NumGroups(); g++ {
		if got.GroupName(g) != want.GroupName(g) {
			t.Fatalf("group %d name %q, want %q", g, got.GroupName(g), want.GroupName(g))
		}
	}
	for r := 0; r < want.Rows(); r++ {
		if got.Group(r) != want.Group(r) {
			t.Fatalf("group row %d: %d, want %d", r, got.Group(r), want.Group(r))
		}
	}
}

// TestSegmentRoundTripGolden is the golden bit-identity test: a freshly
// parsed CSV encoded to segments and decoded back must match the original
// exactly — codes, first-appearance domain order, NaN bit patterns,
// group coding.
func TestSegmentRoundTripGolden(t *testing.T) {
	d := sampleDataset(t)
	data := EncodeSegments(d, sampleMeta())
	got, m, err := DecodeSegments(data)
	if err != nil {
		t.Fatalf("DecodeSegments: %v", err)
	}
	requireSameDataset(t, d, got)
	if m.ID != sampleMeta().ID || m.Rows != d.Rows() || m.GroupColumn != "status" {
		t.Fatalf("meta round-trip: %+v", m)
	}
	if len(m.Groups) != 2 || m.Groups[0] != "ok" || m.Groups[1] != "fail" {
		t.Fatalf("meta groups %v", m.Groups)
	}
	// NaN must survive: pressure row 1 was "?".
	pressure := got.AttrIndex("pressure")
	if !math.IsNaN(got.Cont(pressure, 1)) {
		t.Fatalf("NaN did not survive round trip: %v", got.Cont(pressure, 1))
	}
}

func TestStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	d := sampleDataset(t)
	m := sampleMeta()

	s, err := Open(dir, Options{CheckpointEvery: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if s.Health().Recoveries != 0 {
		t.Fatalf("fresh open counted a recovery")
	}
	if err := s.Put(d, m); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Put(d, m); err != nil { // idempotent
		t.Fatalf("second Put: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := Open(dir, Options{CheckpointEvery: -1})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if h := s2.Health(); h.Recoveries != 1 || h.Datasets != 1 {
		t.Fatalf("health after restart: %+v", h)
	}
	list := s2.List()
	if len(list) != 1 || list[0].ID != m.ID || list[0].Rows != d.Rows() {
		t.Fatalf("List after restart: %+v", list)
	}
	got, gm, err := s2.Load(m.ID)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	requireSameDataset(t, d, got)
	if gm.Name != "sample" {
		t.Fatalf("meta name %q", gm.Name)
	}
	if s2.Health().ColdLoads != 1 {
		t.Fatalf("cold loads: %d", s2.Health().ColdLoads)
	}
}

func TestAppendCheckpointRestart(t *testing.T) {
	dir := t.TempDir()
	d := sampleDataset(t)
	m := sampleMeta()
	batch := &RowBatch{
		Cont:   [][]float64{{30.5, math.NaN()}, {2.0, 2.1}},
		Cat:    [][]string{{"m4", "m1"}, {"west", "north"}},
		Groups: []string{"ok", "degraded"},
	}

	s, err := Open(dir, Options{CheckpointEvery: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := s.Put(d, m); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Append(m.ID, batch); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := s.Append("ds_missing", batch); err == nil {
		t.Fatalf("append to unknown dataset succeeded")
	}
	want, err := appendRows(d, batch)
	if err != nil {
		t.Fatalf("appendRows: %v", err)
	}

	// Before any checkpoint: Load replays the pending batch.
	got, gm, err := s.Load(m.ID)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	requireSameDataset(t, want, got)
	if gm.Rows != d.Rows()+2 {
		t.Fatalf("meta rows %d, want %d", gm.Rows, d.Rows()+2)
	}

	// Restart without checkpoint: the WAL alone must reconstruct it.
	s.Close()
	s2, err := Open(dir, Options{CheckpointEvery: -1})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got, _, err = s2.Load(m.ID)
	if err != nil {
		t.Fatalf("Load after restart: %v", err)
	}
	requireSameDataset(t, want, got)

	// Checkpoint folds the batch into fresh segments and empties the WAL.
	if err := s2.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if h := s2.Health(); h.Checkpoints != 1 {
		t.Fatalf("checkpoints: %d", h.Checkpoints)
	}
	if fi, err := os.Stat(filepath.Join(dir, walName)); err != nil || fi.Size() != 0 {
		t.Fatalf("wal not truncated after checkpoint: %v %d", err, fi.Size())
	}
	s2.Close()

	s3, err := Open(dir, Options{CheckpointEvery: -1})
	if err != nil {
		t.Fatalf("reopen after checkpoint: %v", err)
	}
	defer s3.Close()
	got, _, err = s3.Load(m.ID)
	if err != nil {
		t.Fatalf("Load from checkpointed segments: %v", err)
	}
	requireSameDataset(t, want, got)
}

// TestTornWALTail simulates a crash mid-append: a truncated record at the
// WAL's tail. Recovery must keep every record before the tear and
// truncate the torn bytes.
func TestTornWALTail(t *testing.T) {
	dir := t.TempDir()
	d := sampleDataset(t)
	m := sampleMeta()
	batch := &RowBatch{
		Cont:   [][]float64{{30.5}, {2.0}},
		Cat:    [][]string{{"m4"}, {"west"}},
		Groups: []string{"ok"},
	}

	s, err := Open(dir, Options{CheckpointEvery: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := s.Put(d, m); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Append(m.ID, batch); err != nil {
		t.Fatalf("Append: %v", err)
	}
	s.Close()

	// Tear the tail: append a valid-looking record header whose payload
	// never made it to disk.
	walPath := filepath.Join(dir, walName)
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(append([]byte{}, full...), []byte{0x31, 0x4C, 0x57, 0x53, recAppend, 0xFF, 0x00, 0x00, 0x00, 0xDE, 0xAD}...)
	if err := os.WriteFile(walPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{CheckpointEvery: -1})
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer s2.Close()
	if h := s2.Health(); h.Recoveries != 1 {
		t.Fatalf("recoveries: %d", h.Recoveries)
	}
	// Everything before the tear survived.
	want, _ := appendRows(d, batch)
	got, _, err := s2.Load(m.ID)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	requireSameDataset(t, want, got)
	// And the file itself was truncated back to the intact prefix.
	after, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(full) {
		t.Fatalf("wal is %d bytes after recovery, want %d", len(after), len(full))
	}
}

// TestBitFlipQuarantine flips one payload byte in a segment file: the CRC
// catches it at load time, the file is quarantined, and the store keeps
// working — the failure is a typed, non-fatal error.
func TestBitFlipQuarantine(t *testing.T) {
	dir := t.TempDir()
	d := sampleDataset(t)
	m := sampleMeta()

	s, err := Open(dir, Options{CheckpointEvery: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := s.Put(d, m); err != nil {
		t.Fatalf("Put: %v", err)
	}

	segPath := filepath.Join(dir, m.ID+segSuffix)
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(segMagic)+20] ^= 0x40 // inside the first column's payload
	if err := os.WriteFile(segPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, err = s.Load(m.ID)
	if err == nil {
		t.Fatalf("load of bit-flipped segment succeeded")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("error %v is not ErrCorrupt", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.ID != m.ID {
		t.Fatalf("error %v is not a *CorruptError for %s", err, m.ID)
	}
	if h := s.Health(); h.CorruptSegments != 1 || h.Datasets != 0 {
		t.Fatalf("health after quarantine: %+v", h)
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, m.ID+segSuffix)); err != nil {
		t.Fatalf("segment not quarantined: %v", err)
	}
	if _, err := os.Stat(segPath); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("corrupt segment still in place: %v", err)
	}
	// The store still accepts new work.
	if err := s.Put(d, m); err != nil {
		t.Fatalf("Put after quarantine: %v", err)
	}
	if _, _, err := s.Load(m.ID); err != nil {
		t.Fatalf("Load after re-Put: %v", err)
	}
	s.Close()

	// The quarantine is durable: a restart does not resurrect the old meta
	// twice or trip over the quarantined file.
	s2, err := Open(dir, Options{CheckpointEvery: -1})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if len(s2.List()) != 1 {
		t.Fatalf("List after restart: %+v", s2.List())
	}
}

// TestCheckpointKilledMidRename simulates dying between writing the
// manifest temp file and the atomic rename: recovery removes the orphan
// temp and reconstructs state from the previous manifest plus the WAL.
func TestCheckpointKilledMidRename(t *testing.T) {
	dir := t.TempDir()
	d := sampleDataset(t)
	m := sampleMeta()

	s, err := Open(dir, Options{CheckpointEvery: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := s.Put(d, m); err != nil {
		t.Fatalf("Put: %v", err)
	}
	s.Close()

	// The stranded temp files of an interrupted checkpoint.
	for _, name := range []string{manifestName + ".tmp", m.ID + segSuffix + ".tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s2, err := Open(dir, Options{CheckpointEvery: -1})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	for _, name := range []string{manifestName + ".tmp", m.ID + segSuffix + ".tmp"} {
		if _, err := os.Stat(filepath.Join(dir, name)); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("%s not removed by recovery: %v", name, err)
		}
	}
	got, _, err := s2.Load(m.ID)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	requireSameDataset(t, d, got)
}

func TestDeleteSurvivesRestartAndSweep(t *testing.T) {
	dir := t.TempDir()
	d := sampleDataset(t)
	m := sampleMeta()

	s, err := Open(dir, Options{CheckpointEvery: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := s.Put(d, m); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Delete(m.ID); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if len(s.List()) != 0 {
		t.Fatalf("List after delete: %+v", s.List())
	}
	s.Close()

	s2, err := Open(dir, Options{CheckpointEvery: -1})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if len(s2.List()) != 0 {
		t.Fatalf("deleted dataset resurrected: %+v", s2.List())
	}
}

// TestAutomaticCheckpoint drives enough WAL records through the store to
// trip the CheckpointEvery threshold.
func TestAutomaticCheckpoint(t *testing.T) {
	dir := t.TempDir()
	d := sampleDataset(t)
	m := sampleMeta()
	batch := &RowBatch{
		Cont:   [][]float64{{1}, {2}},
		Cat:    [][]string{{"m1"}, {"north"}},
		Groups: []string{"ok"},
	}

	s, err := Open(dir, Options{CheckpointEvery: 3})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	if err := s.Put(d, m); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Append(m.ID, batch); err != nil {
		t.Fatalf("Append 1: %v", err)
	}
	if err := s.Append(m.ID, batch); err != nil {
		t.Fatalf("Append 2: %v", err)
	}
	if h := s.Health(); h.Checkpoints != 1 {
		t.Fatalf("checkpoints after threshold: %+v", h)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err != nil {
		t.Fatalf("manifest missing after automatic checkpoint: %v", err)
	}
	// Appended rows were folded into segments; Load must still see them.
	got, gm, err := s.Load(m.ID)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if gm.Rows != d.Rows()+2 || got.Rows() != d.Rows()+2 {
		t.Fatalf("rows after fold: meta %d dataset %d", gm.Rows, got.Rows())
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":      {},
		"short":      []byte("SDSEG"),
		"bad magic":  []byte("NOTASEGMENTFILE_AT_ALL__________"),
		"no trailer": append([]byte(segMagic), make([]byte, 64)...),
	}
	for name, data := range cases {
		if _, _, err := DecodeSegments(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: error %v is not ErrCorrupt", name, err)
		}
	}
}
