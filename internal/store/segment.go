package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"time"

	"sdadcs/internal/dataset"
)

// Segment file layout (all integers little-endian):
//
//	"SDSEGV1\n"                                    8-byte magic
//	repeat, one per attribute in attr order, then the group column:
//	  kind  u8      0 = categorical codes, 1 = continuous, 2 = group codes
//	  plen  u64     payload length in bytes
//	  payload       u32 per code (kinds 0,2) / float64 bits (kind 1)
//	  crc   u32     CRC-32C over kind, plen and payload
//	footer:
//	  flen  u64     footer JSON length
//	  json          segMeta (schema, domains, group names, parse options)
//	  crc   u32     CRC-32C over the JSON
//	trailer:
//	  foff  u64     offset of the footer's flen field
//	  "SDFTRV1\n"                                  8-byte magic
//
// The footer is decoded first (via the trailer) so the schema is known
// before the segments are walked; every segment's CRC is verified before
// its payload is trusted. The format preserves domain codes and
// first-appearance domain order exactly, so EncodeSegments→DecodeSegments
// round-trips a dataset bit-identically to the original FromCSV parse.

const (
	segMagic     = "SDSEGV1\n"
	trailerMagic = "SDFTRV1\n"
	segVersion   = 1

	kindCategorical = 0
	kindContinuous  = 1
	kindGroup       = 2
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt is the sentinel wrapped by every decode failure; errors.Is
// distinguishes "data on disk is bad" from I/O errors.
var ErrCorrupt = errors.New("store: corrupt segment data")

// CorruptError reports where and why a segment file failed to decode.
type CorruptError struct {
	// ID is the dataset the data belonged to ("" when unknown).
	ID string
	// Reason states what check failed.
	Reason string
}

// Error renders the failure.
func (e *CorruptError) Error() string {
	if e.ID == "" {
		return fmt.Sprintf("store: corrupt segment data: %s", e.Reason)
	}
	return fmt.Sprintf("store: corrupt segment data for %s: %s", e.ID, e.Reason)
}

// Unwrap ties CorruptError to the ErrCorrupt sentinel.
func (e *CorruptError) Unwrap() error { return ErrCorrupt }

func corrupt(id, format string, args ...any) error {
	return &CorruptError{ID: id, Reason: fmt.Sprintf(format, args...)}
}

// Meta is the registry-facing record of one stored dataset: everything
// the serving layer needs to list and re-address it without touching the
// segment payloads.
type Meta struct {
	// ID is the content-hash address the registry assigned.
	ID string `json:"id"`
	// Name is the display name.
	Name string `json:"name"`
	// GroupColumn and ForceCategorical are the parse options the CSV was
	// registered with; together with the CSV bytes they determine ID.
	GroupColumn      string   `json:"group_column"`
	ForceCategorical []string `json:"force_categorical,omitempty"`
	// Rows is the current row count (base segments plus WAL appends).
	Rows int `json:"rows"`
	// Attrs counts attributes; ContCols/CatCols split them by kind so
	// appended row batches can be shape-checked without loading segments.
	Attrs    int `json:"attrs"`
	ContCols int `json:"cont_cols"`
	CatCols  int `json:"cat_cols"`
	// Groups is the group name table in code order.
	Groups []string `json:"groups"`
	// RegisteredAt is the first registration time.
	RegisteredAt time.Time `json:"registered_at"`
}

// segAttr is one attribute's schema entry in the footer.
type segAttr struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "categorical" | "continuous"
}

// segMeta is the footer payload.
type segMeta struct {
	Version int       `json:"version"`
	Dataset string    `json:"dataset"` // dataset.Name(), preserved exactly
	Meta    Meta      `json:"meta"`
	Attrs   []segAttr `json:"attrs"`
	// Domains holds one value table per categorical attribute, in attr
	// order, preserving first-appearance code order exactly.
	Domains [][]string `json:"domains"`
}

// metaFor derives the schema-dependent Meta fields from a dataset,
// keeping the caller-supplied identity fields.
func metaFor(d *dataset.Dataset, m Meta) Meta {
	m.Rows = d.Rows()
	m.Attrs = d.NumAttrs()
	m.ContCols = len(d.ContinuousAttrs())
	m.CatCols = len(d.CategoricalAttrs())
	m.Groups = append([]string(nil), d.GroupNames()...)
	return m
}

// EncodeSegments serializes a dataset into the segment file format.
func EncodeSegments(d *dataset.Dataset, m Meta) []byte {
	m = metaFor(d, m)
	sm := segMeta{Version: segVersion, Dataset: d.Name(), Meta: m}
	var buf []byte
	buf = append(buf, segMagic...)

	appendSeg := func(kind byte, payload []byte) {
		var hdr [9]byte
		hdr[0] = kind
		binary.LittleEndian.PutUint64(hdr[1:], uint64(len(payload)))
		crc := crc32.Update(0, castagnoli, hdr[:])
		crc = crc32.Update(crc, castagnoli, payload)
		buf = append(buf, hdr[:]...)
		buf = append(buf, payload...)
		buf = binary.LittleEndian.AppendUint32(buf, crc)
	}
	codesPayload := func(codes []int) []byte {
		p := make([]byte, 4*len(codes))
		for i, c := range codes {
			binary.LittleEndian.PutUint32(p[4*i:], uint32(c))
		}
		return p
	}

	for i := 0; i < d.NumAttrs(); i++ {
		a := d.Attr(i)
		sm.Attrs = append(sm.Attrs, segAttr{Name: a.Name, Kind: a.Kind.String()})
		if a.Kind == dataset.Categorical {
			sm.Domains = append(sm.Domains, d.Domain(i))
			appendSeg(kindCategorical, codesPayload(d.CatCodes(i)))
			continue
		}
		col := d.ContColumn(i)
		p := make([]byte, 8*len(col))
		for r, v := range col {
			binary.LittleEndian.PutUint64(p[8*r:], math.Float64bits(v))
		}
		appendSeg(kindContinuous, p)
	}
	appendSeg(kindGroup, codesPayload(d.GroupCodes()))

	footerOff := uint64(len(buf))
	fj, err := json.Marshal(sm)
	if err != nil {
		// segMeta is strings and ints only; Marshal cannot fail on it.
		panic(fmt.Sprintf("store: encoding footer: %v", err))
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(fj)))
	buf = append(buf, fj...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(fj, castagnoli))
	buf = binary.LittleEndian.AppendUint64(buf, footerOff)
	buf = append(buf, trailerMagic...)
	return buf
}

// DecodeSegments parses a segment file back into a dataset and its meta.
// Every integrity violation — bad magic, out-of-range offsets, CRC
// mismatches, schema/payload disagreements — returns a *CorruptError
// (errors.Is ErrCorrupt); the function never panics on malformed input,
// which FuzzSegmentReader enforces.
func DecodeSegments(data []byte) (*dataset.Dataset, Meta, error) {
	fail := func(format string, args ...any) (*dataset.Dataset, Meta, error) {
		return nil, Meta{}, corrupt("", format, args...)
	}
	if len(data) < len(segMagic)+len(trailerMagic)+8 {
		return fail("file too short (%d bytes)", len(data))
	}
	if string(data[:len(segMagic)]) != segMagic {
		return fail("bad leading magic")
	}
	if string(data[len(data)-len(trailerMagic):]) != trailerMagic {
		return fail("bad trailer magic")
	}
	footerOff := binary.LittleEndian.Uint64(data[len(data)-len(trailerMagic)-8:])
	segEnd := int64(footerOff)
	if segEnd < int64(len(segMagic)) || segEnd > int64(len(data)-len(trailerMagic)-8) {
		return fail("footer offset %d out of range", footerOff)
	}
	cur := segEnd
	if int64(len(data))-cur < 8+4 {
		return fail("footer truncated")
	}
	flen := binary.LittleEndian.Uint64(data[cur:])
	cur += 8
	if flen > uint64(int64(len(data))-cur-4) {
		return fail("footer length %d out of range", flen)
	}
	fj := data[cur : cur+int64(flen)]
	cur += int64(flen)
	if crc32.Checksum(fj, castagnoli) != binary.LittleEndian.Uint32(data[cur:]) {
		return fail("footer CRC mismatch")
	}
	var sm segMeta
	if err := json.Unmarshal(fj, &sm); err != nil {
		return fail("footer JSON: %v", err)
	}
	if sm.Version != segVersion {
		return fail("unsupported segment version %d", sm.Version)
	}
	id := sm.Meta.ID
	rows := sm.Meta.Rows
	if rows <= 0 || rows > len(data) {
		// A row needs at least one payload byte somewhere; anything past
		// the file size is an allocation bomb, not a dataset.
		return nil, Meta{}, corrupt(id, "implausible row count %d", rows)
	}
	if len(sm.Attrs) != sm.Meta.Attrs {
		return nil, Meta{}, corrupt(id, "schema lists %d attrs, meta says %d", len(sm.Attrs), sm.Meta.Attrs)
	}

	// Walk the segments against the schema.
	pos := int64(len(segMagic))
	nextSeg := func() (byte, []byte, error) {
		if segEnd-pos < 9+4 {
			return 0, nil, corrupt(id, "segment header truncated at offset %d", pos)
		}
		hdr := data[pos : pos+9]
		kind := hdr[0]
		plen := binary.LittleEndian.Uint64(hdr[1:])
		if plen > uint64(segEnd-pos-9-4) {
			return 0, nil, corrupt(id, "segment payload length %d out of range at offset %d", plen, pos)
		}
		payload := data[pos+9 : pos+9+int64(plen)]
		crc := crc32.Update(0, castagnoli, hdr)
		crc = crc32.Update(crc, castagnoli, payload)
		if crc != binary.LittleEndian.Uint32(data[pos+9+int64(plen):]) {
			return 0, nil, corrupt(id, "segment CRC mismatch at offset %d", pos)
		}
		pos += 9 + int64(plen) + 4
		return kind, payload, nil
	}
	decodeCodes := func(payload []byte) ([]int, error) {
		if len(payload) != 4*rows {
			return nil, corrupt(id, "code payload is %d bytes, want %d", len(payload), 4*rows)
		}
		codes := make([]int, rows)
		for i := range codes {
			codes[i] = int(binary.LittleEndian.Uint32(payload[4*i:]))
		}
		return codes, nil
	}

	b := dataset.NewBuilder(sm.Dataset)
	catIdx := 0
	for i, a := range sm.Attrs {
		kind, payload, err := nextSeg()
		if err != nil {
			return nil, Meta{}, err
		}
		switch a.Kind {
		case dataset.Categorical.String():
			if kind != kindCategorical {
				return nil, Meta{}, corrupt(id, "attr %d: segment kind %d, schema says categorical", i, kind)
			}
			if catIdx >= len(sm.Domains) {
				return nil, Meta{}, corrupt(id, "attr %d: no domain table", i)
			}
			codes, err := decodeCodes(payload)
			if err != nil {
				return nil, Meta{}, err
			}
			b.AddCategoricalCoded(a.Name, codes, sm.Domains[catIdx])
			catIdx++
		case dataset.Continuous.String():
			if kind != kindContinuous {
				return nil, Meta{}, corrupt(id, "attr %d: segment kind %d, schema says continuous", i, kind)
			}
			if len(payload) != 8*rows {
				return nil, Meta{}, corrupt(id, "attr %d: float payload is %d bytes, want %d", i, len(payload), 8*rows)
			}
			col := make([]float64, rows)
			for r := range col {
				col[r] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*r:]))
			}
			b.AddContinuous(a.Name, col)
		default:
			return nil, Meta{}, corrupt(id, "attr %d: unknown schema kind %q", i, a.Kind)
		}
	}
	kind, payload, err := nextSeg()
	if err != nil {
		return nil, Meta{}, err
	}
	if kind != kindGroup {
		return nil, Meta{}, corrupt(id, "trailing segment kind %d, want group codes", kind)
	}
	if pos != segEnd {
		return nil, Meta{}, corrupt(id, "%d trailing bytes after group segment", segEnd-pos)
	}
	groups, err := decodeCodes(payload)
	if err != nil {
		return nil, Meta{}, err
	}
	b.SetGroupsCoded(groups, sm.Meta.Groups)
	d, err := b.Build()
	if err != nil {
		return nil, Meta{}, corrupt(id, "rebuilding dataset: %v", err)
	}
	return d, sm.Meta, nil
}
