// Package store is the on-disk persistence layer of the serving stack: a
// content-hash-addressed columnar dataset format with CRC-checksummed
// segments, a write-ahead log for appends with explicit fsync points and
// truncated-tail-tolerant recovery, and periodic checkpoint/compaction
// that folds the WAL into fresh segments via atomic rename. It is the
// durability substrate the continuous-deployment shape of contrast-set
// mining needs (Qian et al., arXiv 1911.04768): a serve restart rehydrates
// the dataset registry from disk instead of forgetting every upload, and
// the registry's LRU eviction demotes datasets to a cold on-disk tier
// instead of dropping them.
//
// # On-disk layout
//
//	<dir>/MANIFEST.json   checkpointed registry state (atomic rename)
//	<dir>/wal.log         write-ahead log since the last checkpoint
//	<dir>/<id>.seg        one columnar segment file per dataset
//	<dir>/quarantine/     segment files that failed their CRC check
//
// # Durability contract
//
// Put writes the segment file and fsyncs it (file and directory) before
// the WAL register record is appended and fsynced — a WAL record therefore
// always refers to durable segments. Append fsyncs the WAL record before
// acknowledging. Recovery reads MANIFEST.json, then replays the WAL;
// a torn WAL tail (the record being written when the process died) is
// truncated and everything before it survives. A checkpoint killed before
// its atomic rename leaves a *.tmp file that recovery removes; the
// previous manifest plus the intact WAL still reconstruct the full state.
// A bit-flipped segment is caught by its CRC at load time, moved to
// quarantine/, and surfaced as a typed *CorruptError — the store keeps
// serving every other dataset.
package store
