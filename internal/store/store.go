package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"sdadcs/internal/dataset"
	"sdadcs/internal/obs"
)

const (
	manifestName  = "MANIFEST.json"
	walName       = "wal.log"
	quarantineDir = "quarantine"
	segSuffix     = ".seg"

	// defaultCheckpointEvery bounds WAL growth: after this many records a
	// checkpoint folds the log into fresh segments and truncates it.
	defaultCheckpointEvery = 1024
)

// Options configures a Store.
type Options struct {
	// CheckpointEvery is the WAL record count that triggers an automatic
	// checkpoint; 0 means the default (1024), negative disables automatic
	// checkpoints (tests drive Checkpoint explicitly).
	CheckpointEvery int
	// Logger receives recovery and quarantine events; nil means silent.
	Logger *slog.Logger
}

// Health is a snapshot of the store's durability counters — the
// store_* series the serving layer exposes in /v1/metrics and the
// Prometheus exposition.
type Health struct {
	WALAppends      uint64 `json:"wal_appends_total"`
	WALFsyncs       uint64 `json:"wal_fsyncs_total"`
	Checkpoints     uint64 `json:"checkpoints_total"`
	Recoveries      uint64 `json:"recoveries_total"`
	ColdLoads       uint64 `json:"cold_loads_total"`
	CorruptSegments uint64 `json:"corrupt_segments_total"`
	Datasets        int    `json:"datasets"`
}

// manifest is the checkpointed registry state.
type manifest struct {
	Version  int    `json:"version"`
	Datasets []Meta `json:"datasets"`
}

// Store is a directory of columnar dataset segments fronted by a WAL. It
// is safe for concurrent use; segment encoding/decoding happens outside
// the lock where possible, but WAL appends and metadata mutations are
// serialized.
type Store struct {
	dir  string
	opts Options
	log  *slog.Logger

	mu      sync.Mutex
	wal     *wal
	metas   map[string]Meta
	order   []string              // registration order, for stable List
	pending map[string][]RowBatch // WAL appends not yet folded into segments
	closed  bool

	walAppends      atomic.Uint64
	walFsyncs       atomic.Uint64
	checkpoints     atomic.Uint64
	recoveries      atomic.Uint64
	coldLoads       atomic.Uint64
	corruptSegments atomic.Uint64
}

// Open opens (creating if necessary) the store at dir and runs recovery:
// leftover *.tmp files from an interrupted checkpoint are removed, the
// manifest is loaded, and the WAL is replayed with a torn tail truncated.
func Open(dir string, opts Options) (*Store, error) {
	if opts.CheckpointEvery == 0 {
		opts.CheckpointEvery = defaultCheckpointEvery
	}
	if err := os.MkdirAll(filepath.Join(dir, quarantineDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	s := &Store{
		dir:     dir,
		opts:    opts,
		log:     obs.Or(opts.Logger),
		metas:   make(map[string]Meta),
		pending: make(map[string][]RowBatch),
	}

	// A checkpoint that died before its atomic rename leaves *.tmp files;
	// they were never referenced, so recovery deletes them.
	tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	for _, t := range tmps {
		if err := os.Remove(t); err != nil {
			return nil, fmt.Errorf("store: removing leftover %s: %w", t, err)
		}
		s.log.Info("store: removed interrupted checkpoint temp file", "path", t)
	}

	hadState := false
	mdata, err := os.ReadFile(filepath.Join(dir, manifestName))
	switch {
	case err == nil:
		hadState = true
		var m manifest
		if err := json.Unmarshal(mdata, &m); err != nil {
			return nil, fmt.Errorf("store: parsing manifest: %w", err)
		}
		for _, meta := range m.Datasets {
			s.metas[meta.ID] = meta
			s.order = append(s.order, meta.ID)
		}
	case errors.Is(err, os.ErrNotExist):
		// Fresh store.
	default:
		return nil, fmt.Errorf("store: reading manifest: %w", err)
	}

	recs, truncated, err := replayWAL(filepath.Join(dir, walName))
	if err != nil {
		return nil, err
	}
	if truncated {
		s.log.Warn("store: truncated torn wal tail", "dir", dir)
	}
	if len(recs) > 0 || truncated {
		hadState = true
	}
	for _, rec := range recs {
		if err := s.applyRecord(rec); err != nil {
			return nil, err
		}
	}
	s.wal, err = openWAL(filepath.Join(dir, walName))
	if err != nil {
		return nil, err
	}
	s.wal.records = len(recs)
	if hadState {
		s.recoveries.Add(1)
		s.log.Info("store: recovered", "dir", dir,
			"datasets", len(s.metas), "wal_records", len(recs), "torn_tail", truncated)
	}
	return s, nil
}

// applyRecord folds one replayed WAL record into the in-memory state.
func (s *Store) applyRecord(rec walRecord) error {
	switch rec.typ {
	case recRegister:
		var m Meta
		if err := json.Unmarshal(rec.payload, &m); err != nil {
			return corrupt("", "register record JSON: %v", err)
		}
		if _, ok := s.metas[m.ID]; !ok {
			s.order = append(s.order, m.ID)
		}
		s.metas[m.ID] = m
	case recDelete:
		s.removeMetaLocked(string(rec.payload))
	case recAppend:
		id, rb, err := decodeBatch(rec.payload)
		if err != nil {
			return err
		}
		m, ok := s.metas[id]
		if !ok {
			// The dataset was deleted after the append; drop the batch.
			return nil
		}
		s.pending[id] = append(s.pending[id], *rb)
		m.Rows += rb.Rows()
		s.metas[id] = m
	default:
		return corrupt("", "unknown wal record type %d", rec.typ)
	}
	return nil
}

func (s *Store) removeMetaLocked(id string) {
	if _, ok := s.metas[id]; !ok {
		return
	}
	delete(s.metas, id)
	delete(s.pending, id)
	for i, o := range s.order {
		if o == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) segPath(id string) string { return filepath.Join(s.dir, id+segSuffix) }

// Put persists a dataset: the segment file is written, fsynced, and
// atomically renamed into place before the WAL register record is
// appended, so a register record always refers to durable segments. Put
// is idempotent by ID (content-hash addressing makes re-registration of
// the same bytes a no-op).
func (s *Store) Put(d *dataset.Dataset, m Meta) error {
	if m.ID == "" {
		return errors.New("store: Put with empty ID")
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("store: closed")
	}
	if _, ok := s.metas[m.ID]; ok {
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()

	// Encode and write the segment outside the lock — it is the expensive
	// part, and the final visibility check under the lock keeps Put
	// idempotent even when two calls race on the same ID.
	m = metaFor(d, m)
	if err := s.writeSegFile(m.ID, EncodeSegments(d, m)); err != nil {
		return err
	}

	mj, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("store: encoding meta: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	if _, ok := s.metas[m.ID]; ok {
		return nil
	}
	if err := s.walAppend(recRegister, mj); err != nil {
		return err
	}
	s.metas[m.ID] = m
	s.order = append(s.order, m.ID)
	return s.maybeCheckpointLocked()
}

// walAppend logs one record and counts the append and its fsync. Called
// with s.mu held.
func (s *Store) walAppend(typ byte, payload []byte) error {
	if err := s.wal.append(typ, payload); err != nil {
		return err
	}
	s.walAppends.Add(1)
	s.walFsyncs.Add(1)
	return nil
}

// writeSegFile writes data to <id>.seg via temp file + fsync + atomic
// rename + directory fsync.
func (s *Store) writeSegFile(id string, data []byte) error {
	tmp := s.segPath(id) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating segment: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: writing segment: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: fsyncing segment: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, s.segPath(id)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: renaming segment: %w", err)
	}
	return syncDir(s.dir)
}

// Append durably logs a row batch for a stored dataset. The batch lives
// in the WAL (and in memory) until the next checkpoint folds it into
// fresh segments; Load replays pending batches on top of the base
// segments, so readers always see appended rows.
func (s *Store) Append(id string, rb *RowBatch) error {
	if err := rb.validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	m, ok := s.metas[id]
	if !ok {
		return fmt.Errorf("store: append to unknown dataset %s", id)
	}
	if len(rb.Cont) != m.ContCols || len(rb.Cat) != m.CatCols {
		return fmt.Errorf("store: append shape %d cont / %d cat, dataset has %d / %d",
			len(rb.Cont), len(rb.Cat), m.ContCols, m.CatCols)
	}
	if err := s.walAppend(recAppend, encodeBatch(id, rb)); err != nil {
		return err
	}
	s.pending[id] = append(s.pending[id], *rb)
	m.Rows += rb.Rows()
	s.metas[id] = m
	return s.maybeCheckpointLocked()
}

// Load reads a dataset back from its segments, replaying any pending WAL
// appends on top. A segment that fails its CRC (or any other integrity
// check) is moved to quarantine/, forgotten, and reported as a
// *CorruptError — the store keeps serving everything else.
func (s *Store) Load(id string) (*dataset.Dataset, Meta, error) {
	s.mu.Lock()
	m, ok := s.metas[id]
	batches := append([]RowBatch(nil), s.pending[id]...)
	s.mu.Unlock()
	if !ok {
		return nil, Meta{}, fmt.Errorf("store: unknown dataset %s", id)
	}
	data, err := os.ReadFile(s.segPath(id))
	if err != nil {
		return nil, Meta{}, fmt.Errorf("store: reading segment: %w", err)
	}
	d, _, err := DecodeSegments(data)
	if err != nil {
		if errors.Is(err, ErrCorrupt) {
			s.quarantine(id, err)
			return nil, Meta{}, &CorruptError{ID: id, Reason: err.Error()}
		}
		return nil, Meta{}, err
	}
	for i := range batches {
		d, err = appendRows(d, &batches[i])
		if err != nil {
			return nil, Meta{}, err
		}
	}
	s.coldLoads.Add(1)
	return d, m, nil
}

// quarantine moves a corrupt segment aside and forgets the dataset.
func (s *Store) quarantine(id string, cause error) {
	dst := filepath.Join(s.dir, quarantineDir, id+segSuffix)
	if err := os.Rename(s.segPath(id), dst); err != nil {
		s.log.Error("store: quarantining corrupt segment failed", "id", id, "err", err)
	} else {
		s.log.Warn("store: quarantined corrupt segment", "id", id, "cause", cause)
	}
	s.corruptSegments.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.removeMetaLocked(id)
	if !s.closed {
		// Best-effort: record the removal so a restart does not resurrect
		// the meta and fail the load again.
		if err := s.walAppend(recDelete, []byte(id)); err != nil {
			s.log.Error("store: logging quarantine delete failed", "id", id, "err", err)
		}
	}
}

// appendRows extends a dataset with a batch's rows, preserving attribute
// order, existing domain codes, and group coding (new values extend the
// tables).
func appendRows(d *dataset.Dataset, rb *RowBatch) (*dataset.Dataset, error) {
	contAttrs := d.ContinuousAttrs()
	catAttrs := d.CategoricalAttrs()
	if len(rb.Cont) != len(contAttrs) || len(rb.Cat) != len(catAttrs) {
		return nil, fmt.Errorf("store: batch shape %d cont / %d cat, dataset has %d / %d",
			len(rb.Cont), len(rb.Cat), len(contAttrs), len(catAttrs))
	}
	extend := func(codes []int, domain []string, vals []string) ([]int, []string) {
		idx := make(map[string]int, len(domain))
		for c, v := range domain {
			idx[v] = c
		}
		out := append(append([]int(nil), codes...), make([]int, len(vals))...)
		dom := append([]string(nil), domain...)
		for i, v := range vals {
			c, ok := idx[v]
			if !ok {
				c = len(dom)
				idx[v] = c
				dom = append(dom, v)
			}
			out[len(codes)+i] = c
		}
		return out, dom
	}
	b := dataset.NewBuilder(d.Name())
	ci, ki := 0, 0
	for i := 0; i < d.NumAttrs(); i++ {
		a := d.Attr(i)
		if a.Kind == dataset.Continuous {
			col := d.ContColumn(i)
			b.AddContinuous(a.Name, append(append([]float64(nil), col...), rb.Cont[ci]...))
			ci++
			continue
		}
		codes, dom := extend(d.CatCodes(i), d.Domain(i), rb.Cat[ki])
		b.AddCategoricalCoded(a.Name, codes, dom)
		ki++
	}
	gcodes, gnames := extend(d.GroupCodes(), d.GroupNames(), rb.Groups)
	b.SetGroupsCoded(gcodes, gnames)
	out, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("store: applying appended rows: %w", err)
	}
	return out, nil
}

// Get returns the meta for id.
func (s *Store) Get(id string) (Meta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.metas[id]
	return m, ok
}

// List returns every stored dataset's meta in registration order.
func (s *Store) List() []Meta {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Meta, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.metas[id])
	}
	return out
}

// Delete removes a dataset: the removal is WAL-logged (durable) and the
// segment file is deleted best-effort (a survivor is swept at the next
// checkpoint).
func (s *Store) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	if _, ok := s.metas[id]; !ok {
		return nil
	}
	if err := s.walAppend(recDelete, []byte(id)); err != nil {
		return err
	}
	s.removeMetaLocked(id)
	os.Remove(s.segPath(id))
	return nil
}

// maybeCheckpointLocked runs a checkpoint when the WAL has accumulated
// enough records. Called with s.mu held.
func (s *Store) maybeCheckpointLocked() error {
	if s.opts.CheckpointEvery < 0 || s.wal.records < s.opts.CheckpointEvery {
		return nil
	}
	return s.checkpointLocked()
}

// Checkpoint folds pending WAL appends into fresh segment files, writes
// the manifest via atomic rename, truncates the WAL, and sweeps orphaned
// segment files. After a checkpoint the store's full state is
// reconstructible from the manifest and segments alone.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	return s.checkpointLocked()
}

func (s *Store) checkpointLocked() error {
	// Fold pending appends into fresh segments. Rewriting happens before
	// the manifest rename; if the process dies mid-fold, the old manifest
	// plus the intact WAL still reconstruct everything.
	for id, batches := range s.pending {
		data, err := os.ReadFile(s.segPath(id))
		if err != nil {
			return fmt.Errorf("store: checkpoint reading %s: %w", id, err)
		}
		d, m, err := DecodeSegments(data)
		if err != nil {
			return err
		}
		for i := range batches {
			d, err = appendRows(d, &batches[i])
			if err != nil {
				return err
			}
		}
		if err := s.writeSegFile(id, EncodeSegments(d, metaFor(d, m))); err != nil {
			return err
		}
		delete(s.pending, id)
	}

	man := manifest{Version: 1}
	for _, id := range s.order {
		man.Datasets = append(man.Datasets, s.metas[id])
	}
	mj, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encoding manifest: %w", err)
	}
	tmp := filepath.Join(s.dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, mj, 0o644); err != nil {
		return fmt.Errorf("store: writing manifest: %w", err)
	}
	if f, err := os.Open(tmp); err == nil {
		f.Sync()
		f.Close()
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, manifestName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: renaming manifest: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	if err := s.wal.reset(); err != nil {
		return fmt.Errorf("store: resetting wal: %w", err)
	}
	s.sweepOrphansLocked()
	s.checkpoints.Add(1)
	s.log.Info("store: checkpoint", "datasets", len(s.metas))
	return nil
}

// sweepOrphansLocked removes segment files no live meta references —
// datasets deleted since the previous checkpoint.
func (s *Store) sweepOrphansLocked() {
	segs, _ := filepath.Glob(filepath.Join(s.dir, "*"+segSuffix))
	for _, p := range segs {
		id := strings.TrimSuffix(filepath.Base(p), segSuffix)
		if _, ok := s.metas[id]; !ok {
			os.Remove(p)
		}
	}
}

// Health returns a snapshot of the durability counters.
func (s *Store) Health() Health {
	s.mu.Lock()
	n := len(s.metas)
	s.mu.Unlock()
	return Health{
		WALAppends:      s.walAppends.Load(),
		WALFsyncs:       s.walFsyncs.Load(),
		Checkpoints:     s.checkpoints.Load(),
		Recoveries:      s.recoveries.Load(),
		ColdLoads:       s.coldLoads.Load(),
		CorruptSegments: s.corruptSegments.Load(),
		Datasets:        n,
	}
}

// Close closes the WAL file. It does not checkpoint — callers that want a
// clean manifest call Checkpoint first (recovery handles the alternative).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.wal.close()
}

// syncDir fsyncs a directory so a just-renamed entry is durable.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: opening dir for fsync: %w", err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("store: fsyncing dir: %w", err)
	}
	return nil
}
