package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
)

// WAL record framing (all integers little-endian):
//
//	magic u32     0x53574C31 ("SWL1")
//	type  u8      recRegister | recDelete | recAppend
//	plen  u32     payload length
//	payload
//	crc   u32     CRC-32C over type, plen and payload
//
// A record is durable once its bytes and the fsync that follows them have
// completed. Replay stops at the first record that fails any check — a
// short header, an out-of-range length, a CRC mismatch — and truncates the
// file there: that is the torn tail of the append in flight when the
// process died, and everything before it is intact by construction
// (records are written with a single Write call and fsynced in order).
const (
	walMagic = 0x53574C31

	recRegister = 1 // payload: Meta JSON
	recDelete   = 2 // payload: raw dataset ID
	recAppend   = 3 // payload: dataset ID + binary RowBatch
)

// RowBatch is a set of rows appended to a stored dataset: one slice per
// continuous column, one per categorical column (string values), and the
// group label per row, all the same length. The batch payload is encoded
// in binary — float64 bit patterns, length-prefixed strings — because
// appended readings can be NaN (missing) and JSON cannot carry NaN.
type RowBatch struct {
	Cont   [][]float64
	Cat    [][]string
	Groups []string
}

// Rows returns the batch's row count (the length of the group column).
func (rb *RowBatch) Rows() int { return len(rb.Groups) }

// validate checks the batch is rectangular and non-empty.
func (rb *RowBatch) validate() error {
	n := len(rb.Groups)
	if n == 0 {
		return errors.New("store: empty row batch")
	}
	for i, col := range rb.Cont {
		if len(col) != n {
			return fmt.Errorf("store: cont column %d has %d rows, want %d", i, len(col), n)
		}
	}
	for i, col := range rb.Cat {
		if len(col) != n {
			return fmt.Errorf("store: cat column %d has %d rows, want %d", i, len(col), n)
		}
	}
	return nil
}

// encodeBatch serializes id + batch for a recAppend payload.
func encodeBatch(id string, rb *RowBatch) []byte {
	var buf []byte
	appendStr := func(s string) {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
		buf = append(buf, s...)
	}
	appendStr(id)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(rb.Rows()))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rb.Cont)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rb.Cat)))
	for _, col := range rb.Cont {
		for _, v := range col {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	for _, col := range rb.Cat {
		for _, v := range col {
			appendStr(v)
		}
	}
	for _, g := range rb.Groups {
		appendStr(g)
	}
	return buf
}

// decodeBatch parses a recAppend payload back into (id, batch).
func decodeBatch(data []byte) (string, *RowBatch, error) {
	cur := 0
	fail := func(what string) (string, *RowBatch, error) {
		return "", nil, corrupt("", "append record: %s", what)
	}
	readU32 := func() (int, bool) {
		if len(data)-cur < 4 {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(data[cur:])
		cur += 4
		return int(v), true
	}
	readStr := func() (string, bool) {
		n, ok := readU32()
		if !ok || n > len(data)-cur {
			return "", false
		}
		s := string(data[cur : cur+n])
		cur += n
		return s, true
	}
	id, ok := readStr()
	if !ok {
		return fail("truncated id")
	}
	rows, ok1 := readU32()
	contN, ok2 := readU32()
	catN, ok3 := readU32()
	if !ok1 || !ok2 || !ok3 {
		return fail("truncated header")
	}
	// Every continuous cell costs 8 bytes and every other cell at least 4,
	// so plausible dimensions are bounded by the payload size.
	if rows <= 0 || contN < 0 || catN < 0 ||
		rows > len(data) || (contN+catN+1) > len(data)/4+1 {
		return fail("implausible dimensions")
	}
	rb := &RowBatch{Cont: make([][]float64, contN), Cat: make([][]string, catN)}
	for c := range rb.Cont {
		if len(data)-cur < 8*rows {
			return fail("truncated cont column")
		}
		col := make([]float64, rows)
		for r := range col {
			col[r] = math.Float64frombits(binary.LittleEndian.Uint64(data[cur:]))
			cur += 8
		}
		rb.Cont[c] = col
	}
	for c := range rb.Cat {
		col := make([]string, rows)
		for r := range col {
			v, ok := readStr()
			if !ok {
				return fail("truncated cat column")
			}
			col[r] = v
		}
		rb.Cat[c] = col
	}
	rb.Groups = make([]string, rows)
	for r := range rb.Groups {
		v, ok := readStr()
		if !ok {
			return fail("truncated group column")
		}
		rb.Groups[r] = v
	}
	if cur != len(data) {
		return fail("trailing bytes")
	}
	return id, rb, nil
}

// wal is the append-only log file. All methods are called with the
// store's mutex held.
type wal struct {
	f       *os.File
	path    string
	records int // records since the last reset (checkpoint pressure)
}

// openWAL opens (creating if absent) the log at path for appending.
func openWAL(path string) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return &wal{f: f, path: path}, nil
}

// append frames, writes, and fsyncs one record.
func (w *wal) append(typ byte, payload []byte) error {
	rec := make([]byte, 0, 4+1+4+len(payload)+4)
	rec = binary.LittleEndian.AppendUint32(rec, walMagic)
	rec = append(rec, typ)
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(payload)))
	rec = append(rec, payload...)
	crc := crc32.Update(0, castagnoli, rec[4:])
	rec = binary.LittleEndian.AppendUint32(rec, crc)
	if _, err := w.f.Write(rec); err != nil {
		return fmt.Errorf("store: wal write: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: wal fsync: %w", err)
	}
	w.records++
	return nil
}

// reset truncates the log after a checkpoint has captured its contents.
func (w *wal) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.records = 0
	return nil
}

func (w *wal) close() error { return w.f.Close() }

// walRecord is one replayed record.
type walRecord struct {
	typ     byte
	payload []byte
}

// replayWAL reads every intact record from path and reports whether a torn
// tail was truncated. A missing file is an empty log. The returned records
// reference freshly-read memory and are safe to retain.
func replayWAL(path string) (recs []walRecord, truncated bool, err error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	pos := 0
	good := 0 // offset after the last intact record
	for {
		if len(data)-pos < 4+1+4 {
			break
		}
		if binary.LittleEndian.Uint32(data[pos:]) != walMagic {
			break
		}
		plen := int(binary.LittleEndian.Uint32(data[pos+5:]))
		if plen < 0 || plen > len(data)-pos-4-1-4-4 {
			break
		}
		body := data[pos+4 : pos+4+1+4+plen]
		crc := binary.LittleEndian.Uint32(data[pos+4+1+4+plen:])
		if crc32.Checksum(body, castagnoli) != crc {
			break
		}
		recs = append(recs, walRecord{typ: body[0], payload: body[5:]})
		pos += 4 + 1 + 4 + plen + 4
		good = pos
	}
	if good < len(data) {
		// Torn tail: the record being appended when the process died.
		// Truncate so the next append starts at a clean boundary.
		if err := os.Truncate(path, int64(good)); err != nil {
			return nil, false, fmt.Errorf("store: truncating torn wal tail: %w", err)
		}
		truncated = true
	}
	return recs, truncated, nil
}
