package dataset

import (
	"fmt"
	"math"
	"sort"
)

// Discretized returns a copy of d where each continuous attribute listed in
// cuts is replaced by a categorical attribute whose values are bin labels
// "(lo, hi]" induced by the sorted cut points. Attributes not listed in
// cuts are carried over unchanged. This is how the global pre-binning
// baselines (Fayyad–Irani entropy, MVD) feed the shared categorical
// contrast search.
//
// An attribute with no cut points becomes a single-bin categorical
// attribute (it can never contribute a contrast, matching the behaviour of
// a discretizer that found no split).
func Discretized(d *Dataset, cuts map[int][]float64) *Dataset {
	b := NewBuilder(d.Name() + "-binned")
	for i := 0; i < d.NumAttrs(); i++ {
		a := d.Attr(i)
		cut, ok := cuts[i]
		if a.Kind != Continuous || !ok {
			// Carry over unchanged.
			if a.Kind == Continuous {
				col := make([]float64, d.Rows())
				copy(col, d.ContColumn(i))
				b.AddContinuous(a.Name, col)
			} else {
				col := make([]string, d.Rows())
				for r := 0; r < d.Rows(); r++ {
					col[r] = d.CatValue(i, r)
				}
				b.AddCategorical(a.Name, col)
			}
			continue
		}
		sorted := make([]float64, len(cut))
		copy(sorted, cut)
		sort.Float64s(sorted)
		labels := binLabels(sorted)
		col := make([]string, d.Rows())
		for r := 0; r < d.Rows(); r++ {
			v := d.Cont(i, r)
			if v != v { // missing readings get their own category
				col[r] = "(missing)"
				continue
			}
			col[r] = labels[binOf(sorted, v)]
		}
		b.AddCategorical(a.Name, col)
	}
	groups := make([]string, d.Rows())
	for r := 0; r < d.Rows(); r++ {
		groups[r] = d.GroupName(d.Group(r))
	}
	b.SetGroups(groups)
	return b.MustBuild()
}

// BinBounds returns the (lo, hi] interval of bin i induced by sorted cut
// points (bin 0 is (-inf, cut[0]], bin len(cut) is (cut[last], +inf]).
func BinBounds(sortedCuts []float64, bin int) (lo, hi float64) {
	lo, hi = math.Inf(-1), math.Inf(1)
	if bin > 0 {
		lo = sortedCuts[bin-1]
	}
	if bin < len(sortedCuts) {
		hi = sortedCuts[bin]
	}
	return lo, hi
}

// binOf returns the bin index of x: the number of cut points < x … using
// the (lo, hi] convention, x belongs to the first bin whose upper cut is
// >= x.
func binOf(sortedCuts []float64, x float64) int {
	return sort.SearchFloat64s(sortedCuts, x) // first cut >= x
}

// binLabels renders one label per bin.
func binLabels(sortedCuts []float64) []string {
	labels := make([]string, len(sortedCuts)+1)
	for i := range labels {
		lo, hi := BinBounds(sortedCuts, i)
		labels[i] = fmt.Sprintf("(%g, %g]", lo, hi)
	}
	return labels
}
