package dataset

import "sync"

// Index is the per-dataset cache slot for an engine-built acceleration
// structure (today: the bitmap value index of internal/bitmap). A Dataset
// owns exactly one slot; the counting engine stores its structure through
// LoadOrBuild, so the structure is built once per dataset object no matter
// how many Mine calls or serve jobs share the dataset. The slot is typed
// as `any` to keep this package free of engine imports (internal/bitmap
// imports dataset, not the other way around).
//
// Lifecycle: the structure lives exactly as long as the dataset unless
// Drop is called. The serving layer's registry calls Drop on LRU eviction
// so cached-index memory stays bounded by the registry's row budget even
// while completed jobs retain the dataset for result rendering.
type Index struct {
	mu     sync.Mutex
	v      any
	builds int64
}

// Index returns the dataset's acceleration-structure cache slot. The
// returned handle is shared by every caller holding the same dataset.
func (d *Dataset) Index() *Index { return &d.index }

// LoadOrBuild returns the cached structure, invoking build exactly once
// per empty slot. Concurrent first callers serialize on the handle's lock:
// one builds, the rest wait and reuse — the "built once per dataset ever"
// guarantee the build-count metrics assert. built reports whether this
// call performed the build.
func (ix *Index) LoadOrBuild(build func() any) (v any, built bool) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.v != nil {
		return ix.v, false
	}
	ix.v = build()
	ix.builds++
	return ix.v, true
}

// Loaded reports whether a structure is currently cached.
func (ix *Index) Loaded() bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.v != nil
}

// Drop releases the cached structure (the next LoadOrBuild rebuilds) and
// reports whether anything was dropped.
func (ix *Index) Drop() bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	dropped := ix.v != nil
	ix.v = nil
	return dropped
}

// Builds returns how many times LoadOrBuild constructed a structure over
// the handle's lifetime (rebuilds after Drop included) — the reuse proof
// the registry and the index-caching tests report.
func (ix *Index) Builds() int64 {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.builds
}
