package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

const sampleCSV = `age,color,hours,grp
25,red,40,A
35,blue,50,B
45,red,60,A
55,green,20,B
`

func TestFromCSV(t *testing.T) {
	d, err := FromCSV(strings.NewReader(sampleCSV), CSVOptions{GroupColumn: "grp", Name: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if d.Rows() != 4 || d.NumAttrs() != 3 {
		t.Fatalf("rows=%d attrs=%d", d.Rows(), d.NumAttrs())
	}
	if d.Attr(0).Kind != Continuous || d.Attr(1).Kind != Categorical || d.Attr(2).Kind != Continuous {
		t.Error("type inference wrong")
	}
	if d.NumGroups() != 2 {
		t.Errorf("groups = %d", d.NumGroups())
	}
	if d.Cont(0, 3) != 55 || d.CatValue(1, 3) != "green" {
		t.Error("values wrong")
	}
}

func TestFromCSVForceCategorical(t *testing.T) {
	csv := "id,x,grp\n1,2.5,A\n2,3.5,B\n"
	d, err := FromCSV(strings.NewReader(csv), CSVOptions{
		GroupColumn:      "grp",
		ForceCategorical: []string{"id"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Attr(0).Kind != Categorical {
		t.Error("forced column should be categorical")
	}
	if d.Attr(1).Kind != Continuous {
		t.Error("x should be continuous")
	}
}

func TestFromCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		csv  string
		opts CSVOptions
	}{
		{"missing group option", sampleCSV, CSVOptions{}},
		{"group column absent", sampleCSV, CSVOptions{GroupColumn: "nope"}},
		{"no data rows", "a,grp\n", CSVOptions{GroupColumn: "grp"}},
		{"ragged row", "a,grp\n1,A,extra\n", CSVOptions{GroupColumn: "grp"}},
		{"empty input", "", CSVOptions{GroupColumn: "grp"}},
	}
	for _, c := range cases {
		if _, err := FromCSV(strings.NewReader(c.csv), c.opts); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestFromCSVInfiniteFallsBackToCategorical(t *testing.T) {
	csv := "x,grp\n1,A\n1.5,B\nInf,A\n-Inf,B\n"
	d, err := FromCSV(strings.NewReader(csv), CSVOptions{GroupColumn: "grp"})
	if err != nil {
		t.Fatal(err)
	}
	if d.Attr(0).Kind != Categorical {
		t.Error("column with infinite values should become categorical")
	}
}

func TestFromCSVMissingMarkers(t *testing.T) {
	// UCI-style missing markers in an otherwise numeric column become NaN.
	csv := "x,grp\n1.5,A\n?,B\n,A\nNA,B\nNaN,A\n2.5,B\n"
	d, err := FromCSV(strings.NewReader(csv), CSVOptions{GroupColumn: "grp"})
	if err != nil {
		t.Fatal(err)
	}
	if d.Attr(0).Kind != Continuous {
		t.Fatal("column with missing markers should stay continuous")
	}
	missing := 0
	for r := 0; r < d.Rows(); r++ {
		if v := d.Cont(0, r); v != v {
			missing++
		}
	}
	if missing != 4 {
		t.Errorf("missing count = %d, want 4", missing)
	}
	// A fully-missing column is useless as continuous: categorical.
	csv2 := "x,grp\n?,A\n?,B\n"
	d2, err := FromCSV(strings.NewReader(csv2), CSVOptions{GroupColumn: "grp"})
	if err != nil {
		t.Fatal(err)
	}
	if d2.Attr(0).Kind != Categorical {
		t.Error("all-missing column should fall back to categorical")
	}
}

func TestBuilderMissingAndInfinite(t *testing.T) {
	// NaN is the missing marker and is accepted.
	d, err := NewBuilder("m").
		AddContinuous("x", []float64{1, math.NaN(), 3, 4}).
		SetGroups([]string{"A", "B", "A", "B"}).
		Build()
	if err != nil {
		t.Fatalf("NaN (missing) should be accepted: %v", err)
	}
	// Missing rows match no interval.
	if got := d.All().FilterRange(0, math.Inf(-1), math.Inf(1)).Len(); got != 3 {
		t.Errorf("full-range filter covers %d rows, want 3 (missing excluded)", got)
	}
	// Quantiles skip missing.
	if med := d.All().Median(0); med != 3 {
		t.Errorf("median = %v, want 3 (of 1,3,4)", med)
	}
	lo, hi := d.All().MinMax(0)
	if lo != 1 || hi != 4 {
		t.Errorf("MinMax = %v, %v", lo, hi)
	}
	// Infinity is a data error and rejected.
	for _, bad := range [][]float64{{math.Inf(1), 2}, {1, math.Inf(-1)}} {
		if _, err := NewBuilder("nf").
			AddContinuous("x", bad).
			SetGroups([]string{"A", "B"}).
			Build(); err == nil {
			t.Errorf("infinite values %v accepted", bad)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d, err := FromCSV(strings.NewReader(sampleCSV), CSVOptions{GroupColumn: "grp"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d, "grp"); err != nil {
		t.Fatal(err)
	}
	d2, err := FromCSV(bytes.NewReader(buf.Bytes()), CSVOptions{GroupColumn: "grp"})
	if err != nil {
		t.Fatal(err)
	}
	if d2.Rows() != d.Rows() || d2.NumAttrs() != d.NumAttrs() {
		t.Fatal("round trip changed shape")
	}
	for r := 0; r < d.Rows(); r++ {
		if d.Cont(0, r) != d2.Cont(0, r) || d.CatValue(1, r) != d2.CatValue(1, r) {
			t.Errorf("row %d differs after round trip", r)
		}
		if d.GroupName(d.Group(r)) != d2.GroupName(d2.Group(r)) {
			t.Errorf("row %d group differs after round trip", r)
		}
	}
}

// Property: any dataset built from generated numeric columns survives a CSV
// round trip with identical values.
func TestCSVRoundTripProperty(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) < 2 {
			return true
		}
		if len(xs) > 50 {
			xs = xs[:50]
		}
		for _, x := range xs {
			// Skip NaN/Inf: CSV round trip of non-finite floats is out of
			// scope for the miner (datasets are finite measurements).
			if x != x || x > 1e300 || x < -1e300 {
				return true
			}
		}
		groups := make([]string, len(xs))
		for i := range groups {
			groups[i] = []string{"g0", "g1"}[i%2]
		}
		d := NewBuilder("prop").AddContinuous("x", xs).SetGroups(groups).MustBuild()
		var buf bytes.Buffer
		if err := WriteCSV(&buf, d, "grp"); err != nil {
			return false
		}
		d2, err := FromCSV(bytes.NewReader(buf.Bytes()), CSVOptions{GroupColumn: "grp"})
		if err != nil {
			return false
		}
		if d2.Rows() != d.Rows() {
			return false
		}
		for r := 0; r < d.Rows(); r++ {
			if d.Cont(0, r) != d2.Cont(0, r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
