// Package dataset implements the in-memory columnar table substrate the
// miner runs on: mixed categorical/continuous attributes, a designated
// group attribute, cheap row-subset views (the "spaces" SDAD-CS explores are
// views), quantile machinery for median splits, and CSV import/export.
//
// The layout is column-oriented: categorical columns store small integer
// codes into a per-attribute domain, continuous columns store float64. A
// View is a slice of row indices over a Dataset; all mining operates on
// views so that recursive space exploration never copies column data.
package dataset
