package dataset

import (
	"errors"
	"fmt"
	"math"
)

// Builder assembles a Dataset column by column. All columns (including the
// group labels) must have the same length. Build validates and returns an
// immutable Dataset.
type Builder struct {
	name string
	d    Dataset
	err  error
	rows int // -1 until the first column fixes it
}

// NewBuilder returns a builder for a dataset with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, rows: -1}
}

func (b *Builder) checkLen(n int, what string) bool {
	if b.err != nil {
		return false
	}
	if b.rows == -1 {
		b.rows = n
	} else if b.rows != n {
		b.err = fmt.Errorf("dataset: %s has %d rows, want %d", what, n, b.rows)
		return false
	}
	return true
}

// AddContinuous appends a continuous attribute with the given values.
// NaN marks a missing reading (the UCI convention after parsing): missing
// rows match no interval, so they are excluded from every bin of this
// attribute, and quantiles skip them. ±Inf is rejected — an infinite
// measurement is a data error, not a missing one.
func (b *Builder) AddContinuous(name string, values []float64) *Builder {
	if !b.checkLen(len(values), name) {
		return b
	}
	for i, v := range values {
		if math.IsInf(v, 0) {
			b.err = fmt.Errorf("dataset: %s row %d is infinite", name, i)
			return b
		}
	}
	b.d.attrs = append(b.d.attrs, Attr{Name: name, Kind: Continuous, col: len(b.d.contCols)})
	b.d.contCols = append(b.d.contCols, values)
	return b
}

// AddCategorical appends a categorical attribute with the given string
// values; the domain is built from the distinct values in first-appearance
// order.
func (b *Builder) AddCategorical(name string, values []string) *Builder {
	if !b.checkLen(len(values), name) {
		return b
	}
	codes, domain := encode(values)
	b.d.attrs = append(b.d.attrs, Attr{Name: name, Kind: Categorical, col: len(b.d.catCols)})
	b.d.catCols = append(b.d.catCols, codes)
	b.d.catDomains = append(b.d.catDomains, domain)
	return b
}

// AddCategoricalCoded appends a categorical attribute from pre-encoded
// domain codes and their value table — the zero-re-encoding path used when
// the codes already exist (a stored dataset's segments, a stream monitor's
// scratch buffers). The codes and domain slices are retained; codes must
// index into domain (validated by Build). Unlike AddCategorical, the
// domain's order is preserved exactly as given, so round-trips are
// bit-identical even when it is not first-appearance order.
func (b *Builder) AddCategoricalCoded(name string, codes []int, domain []string) *Builder {
	if !b.checkLen(len(codes), name) {
		return b
	}
	if len(domain) == 0 {
		b.err = fmt.Errorf("dataset: %s has an empty domain", name)
		return b
	}
	b.d.attrs = append(b.d.attrs, Attr{Name: name, Kind: Categorical, col: len(b.d.catCols)})
	b.d.catCols = append(b.d.catCols, codes)
	b.d.catDomains = append(b.d.catDomains, domain)
	return b
}

// SetGroupsCoded sets the group column from pre-encoded codes and the
// group name table, mirroring AddCategoricalCoded. Both slices are
// retained; codes must index into names (validated by Build).
func (b *Builder) SetGroupsCoded(codes []int, names []string) *Builder {
	if !b.checkLen(len(codes), "groups") {
		return b
	}
	b.d.groups, b.d.groupNames = codes, names
	return b
}

// SetGroups sets the group label of every row.
func (b *Builder) SetGroups(labels []string) *Builder {
	if !b.checkLen(len(labels), "groups") {
		return b
	}
	b.d.groups, b.d.groupNames = encode(labels)
	return b
}

// Build validates and returns the dataset.
func (b *Builder) Build() (*Dataset, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.rows <= 0 {
		return nil, errors.New("dataset: builder has no columns")
	}
	if b.d.groups == nil {
		return nil, errors.New("dataset: SetGroups not called")
	}
	if len(b.d.attrs) == 0 {
		return nil, errors.New("dataset: no attributes")
	}
	b.d.name = b.name
	b.d.rows = b.rows
	b.d.byName = make(map[string]int, len(b.d.attrs))
	for i, a := range b.d.attrs {
		if _, dup := b.d.byName[a.Name]; dup {
			return nil, fmt.Errorf("dataset: duplicate attribute name %q", a.Name)
		}
		b.d.byName[a.Name] = i
	}
	if err := b.d.Validate(); err != nil {
		return nil, err
	}
	return &b.d, nil
}

// MustBuild is Build for tests and generators with static inputs; it panics
// on error.
func (b *Builder) MustBuild() *Dataset {
	d, err := b.Build()
	if err != nil {
		panic(err)
	}
	return d
}

// encode maps strings to dense codes in first-appearance order.
func encode(values []string) ([]int, []string) {
	codes := make([]int, len(values))
	index := make(map[string]int)
	var domain []string
	for i, v := range values {
		c, ok := index[v]
		if !ok {
			c = len(domain)
			index[v] = c
			domain = append(domain, v)
		}
		codes[i] = c
	}
	return codes, domain
}
