package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
)

// CSVOptions controls FromCSV parsing.
type CSVOptions struct {
	// GroupColumn is the header name of the group attribute (required).
	GroupColumn string
	// ForceCategorical lists columns to treat as categorical even if every
	// value parses as a number (e.g. encoded equipment IDs).
	ForceCategorical []string
	// Name is the dataset name; defaults to "csv".
	Name string
}

// FromCSV reads a headered CSV into a Dataset. Columns whose every value
// parses as a float become continuous attributes; everything else is
// categorical. The group column is extracted and does not appear among the
// attributes.
func FromCSV(r io.Reader, opts CSVOptions) (*Dataset, error) {
	if opts.GroupColumn == "" {
		return nil, fmt.Errorf("dataset: CSVOptions.GroupColumn is required")
	}
	cr := csv.NewReader(r)
	cr.ReuseRecord = false
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	groupCol := -1
	for i, h := range header {
		if h == opts.GroupColumn {
			groupCol = i
			break
		}
	}
	if groupCol == -1 {
		return nil, fmt.Errorf("dataset: group column %q not found in header", opts.GroupColumn)
	}
	forced := make(map[string]bool, len(opts.ForceCategorical))
	for _, c := range opts.ForceCategorical {
		forced[c] = true
	}

	raw := make([][]string, len(header))
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV: %w", err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("dataset: row has %d fields, want %d", len(rec), len(header))
		}
		for i, v := range rec {
			raw[i] = append(raw[i], v)
		}
	}
	if len(raw[0]) == 0 {
		return nil, fmt.Errorf("dataset: CSV has no data rows")
	}

	name := opts.Name
	if name == "" {
		name = "csv"
	}
	b := NewBuilder(name)
	for i, h := range header {
		if i == groupCol {
			continue
		}
		if !forced[h] {
			if nums, ok := parseAllFloats(raw[i]); ok {
				b.AddContinuous(h, nums)
				continue
			}
		}
		b.AddCategorical(h, raw[i])
	}
	b.SetGroups(raw[groupCol])
	return b.Build()
}

// WriteCSV writes the dataset (attributes plus a trailing group column) as
// headered CSV.
func WriteCSV(w io.Writer, d *Dataset, groupColumn string) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, d.NumAttrs()+1)
	for i := 0; i < d.NumAttrs(); i++ {
		header = append(header, d.Attr(i).Name)
	}
	header = append(header, groupColumn)
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for r := 0; r < d.Rows(); r++ {
		for i := 0; i < d.NumAttrs(); i++ {
			if d.Attr(i).Kind == Continuous {
				rec[i] = strconv.FormatFloat(d.Cont(i, r), 'g', -1, 64)
			} else {
				rec[i] = d.CatValue(i, r)
			}
		}
		rec[len(rec)-1] = d.GroupName(d.Group(r))
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// parseAllFloats parses every string as float64, reporting ok=false on the
// first failure. The UCI missing-value markers — empty string, "?", "NA" —
// and a literal "NaN" become NaN (missing); a column must still contain at
// least one finite value to count as continuous. ±Inf fails: such columns
// fall back to categorical where the values stay visible.
func parseAllFloats(vals []string) ([]float64, bool) {
	out := make([]float64, len(vals))
	finite := false
	for i, s := range vals {
		switch s {
		case "", "?", "NA", "NaN", "nan":
			out[i] = math.NaN()
			continue
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil || math.IsInf(f, 0) {
			return nil, false
		}
		if math.IsNaN(f) {
			out[i] = math.NaN()
			continue
		}
		out[i] = f
		finite = true
	}
	return out, finite
}
