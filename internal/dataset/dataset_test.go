package dataset

import (
	"strings"
	"testing"
)

// sample builds a small mixed dataset used across the package tests.
func sample(t *testing.T) *Dataset {
	t.Helper()
	d, err := NewBuilder("sample").
		AddContinuous("age", []float64{25, 35, 45, 55, 65, 30}).
		AddCategorical("color", []string{"red", "blue", "red", "green", "blue", "red"}).
		AddContinuous("hours", []float64{40, 50, 60, 20, 45, 38}).
		SetGroups([]string{"A", "B", "A", "B", "A", "B"}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDatasetBasics(t *testing.T) {
	d := sample(t)
	if d.Name() != "sample" {
		t.Errorf("Name = %q", d.Name())
	}
	if d.Rows() != 6 {
		t.Errorf("Rows = %d", d.Rows())
	}
	if d.NumAttrs() != 3 {
		t.Errorf("NumAttrs = %d", d.NumAttrs())
	}
	if d.NumGroups() != 2 {
		t.Errorf("NumGroups = %d", d.NumGroups())
	}
	if d.GroupName(0) != "A" || d.GroupName(1) != "B" {
		t.Errorf("group names = %q, %q", d.GroupName(0), d.GroupName(1))
	}
	if d.GroupIndex("B") != 1 || d.GroupIndex("missing") != -1 {
		t.Error("GroupIndex lookup failed")
	}
	sizes := d.GroupSizes()
	if sizes[0] != 3 || sizes[1] != 3 {
		t.Errorf("GroupSizes = %v", sizes)
	}
	if d.AttrIndex("hours") != 2 || d.AttrIndex("nope") != -1 {
		t.Error("AttrIndex lookup failed")
	}
	if got := d.ContinuousAttrs(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("ContinuousAttrs = %v", got)
	}
	if got := d.CategoricalAttrs(); len(got) != 1 || got[0] != 1 {
		t.Errorf("CategoricalAttrs = %v", got)
	}
	if d.Cont(0, 2) != 45 {
		t.Errorf("Cont(0,2) = %v", d.Cont(0, 2))
	}
	if d.CatValue(1, 3) != "green" {
		t.Errorf("CatValue(1,3) = %q", d.CatValue(1, 3))
	}
	if got := d.Domain(1); len(got) != 3 || got[0] != "red" {
		t.Errorf("Domain = %v", got)
	}
	if d.CatCode(1, 0) != 0 || d.CatCode(1, 1) != 1 {
		t.Error("CatCode encoding order wrong")
	}
}

func TestDatasetPanics(t *testing.T) {
	d := sample(t)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("Cont on categorical", func() { d.Cont(1, 0) })
	mustPanic("CatCode on continuous", func() { d.CatCode(0, 0) })
	mustPanic("Domain on continuous", func() { d.Domain(0) })
	mustPanic("ContColumn on categorical", func() { d.ContColumn(1) })
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder("x").Build(); err == nil {
		t.Error("empty builder should error")
	}
	if _, err := NewBuilder("x").
		AddContinuous("a", []float64{1, 2}).
		SetGroups([]string{"g"}).
		Build(); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := NewBuilder("x").
		AddContinuous("a", []float64{1, 2}).
		Build(); err == nil {
		t.Error("missing groups should error")
	}
	if _, err := NewBuilder("x").
		AddContinuous("a", []float64{1, 2}).
		AddContinuous("a", []float64{3, 4}).
		SetGroups([]string{"g", "h"}).
		Build(); err == nil {
		t.Error("duplicate attribute name should error")
	}
	if _, err := NewBuilder("x").
		AddContinuous("a", []float64{1, 2}).
		SetGroups([]string{"g", "g"}).
		Build(); err == nil {
		t.Error("single group should error")
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild on invalid builder should panic")
		}
	}()
	NewBuilder("x").MustBuild()
}

func TestViewBasics(t *testing.T) {
	d := sample(t)
	all := d.All()
	if all.Len() != 6 {
		t.Errorf("all.Len = %d", all.Len())
	}
	if all.Row(3) != 3 {
		t.Errorf("all.Row(3) = %d", all.Row(3))
	}
	counts := all.GroupCounts()
	if counts[0] != 3 || counts[1] != 3 {
		t.Errorf("GroupCounts = %v", counts)
	}
	rows := all.Rows()
	if len(rows) != 6 || rows[5] != 5 {
		t.Errorf("Rows = %v", rows)
	}

	sub := d.Restrict([]int{1, 3, 5})
	if sub.Len() != 3 || sub.Row(1) != 3 {
		t.Error("Restrict view wrong")
	}
	gc := sub.GroupCounts()
	if gc[0] != 0 || gc[1] != 3 {
		t.Errorf("restricted GroupCounts = %v", gc)
	}
}

func TestViewFilters(t *testing.T) {
	d := sample(t)
	red := d.All().FilterCat(1, 0) // rows 0, 2, 5
	if red.Len() != 3 {
		t.Errorf("red.Len = %d", red.Len())
	}
	young := d.All().FilterRange(0, 20, 35) // (20,35]: ages 25, 35, 30 -> rows 0,1,5
	if young.Len() != 3 {
		t.Errorf("young.Len = %d, rows %v", young.Len(), young.Rows())
	}
	// Half-open semantics: the lower bound is exclusive, upper inclusive.
	exact := d.All().FilterRange(0, 25, 35)
	for _, r := range exact.Rows() {
		if d.Cont(0, r) <= 25 || d.Cont(0, r) > 35 {
			t.Errorf("row %d age %v outside (25,35]", r, d.Cont(0, r))
		}
	}
	both := red.FilterRange(0, 20, 30) // red and age in (20,30]: rows 0, 5
	if both.Len() != 2 {
		t.Errorf("both.Len = %d", both.Len())
	}
}

func TestViewEmptyFilterIsEmpty(t *testing.T) {
	// Regression: an empty filter result must not masquerade as the full
	// dataset (the all-rows view is flagged, not nil-encoded).
	d := sample(t)
	none := d.All().Filter(func(int) bool { return false })
	if none.Len() != 0 {
		t.Fatalf("empty filter Len = %d, want 0", none.Len())
	}
	if got := none.GroupCounts(); got[0] != 0 || got[1] != 0 {
		t.Errorf("empty filter GroupCounts = %v", got)
	}
	if rows := none.Rows(); len(rows) != 0 {
		t.Errorf("empty filter Rows = %v", rows)
	}
	// Subtracting a view from itself is empty too.
	self := d.All().Subtract(d.All())
	if self.Len() != 0 {
		t.Errorf("self-subtract Len = %d, want 0", self.Len())
	}
	// Chaining off an empty view stays empty.
	if none.FilterRange(0, 0, 100).Len() != 0 {
		t.Error("filter on empty view should stay empty")
	}
}

func TestViewMedianQuantile(t *testing.T) {
	d := sample(t)
	all := d.All()
	// ages sorted: 25 30 35 45 55 65 -> lower-middle median = 35
	if got := all.Median(0); got != 35 {
		t.Errorf("Median = %v, want 35", got)
	}
	if got := all.Quantile(0, 0); got != 25 {
		t.Errorf("Quantile(0) = %v, want 25", got)
	}
	if got := all.Quantile(0, 1); got != 65 {
		t.Errorf("Quantile(1) = %v, want 65", got)
	}
	empty := d.Restrict([]int{})
	if got := empty.Median(0); got != 0 {
		t.Errorf("empty median = %v, want 0", got)
	}
}

func TestViewMinMax(t *testing.T) {
	d := sample(t)
	lo, hi := d.All().MinMax(0)
	if lo != 25 || hi != 65 {
		t.Errorf("MinMax = %v, %v", lo, hi)
	}
	lo, hi = d.Restrict([]int{}).MinMax(0)
	if lo != 0 || hi != 0 {
		t.Errorf("empty MinMax = %v, %v", lo, hi)
	}
}

func TestViewSetOps(t *testing.T) {
	d := sample(t)
	a := d.Restrict([]int{0, 1, 2, 3})
	b := d.Restrict([]int{2, 3, 4, 5})
	inter := a.Intersect(b)
	if inter.Len() != 2 || inter.Row(0) != 2 || inter.Row(1) != 3 {
		t.Errorf("Intersect rows = %v", inter.Rows())
	}
	diff := a.Subtract(b)
	if diff.Len() != 2 || diff.Row(0) != 0 || diff.Row(1) != 1 {
		t.Errorf("Subtract rows = %v", diff.Rows())
	}
}

func TestMedianSplitBalanced(t *testing.T) {
	// With distinct values, FilterRange at the median must put the lower
	// half (inclusive) on the left — the invariant the optimistic estimate
	// depends on.
	vals := []float64{9, 1, 8, 2, 7, 3, 6, 4, 5, 10}
	groups := make([]string, len(vals))
	for i := range groups {
		groups[i] = []string{"A", "B"}[i%2]
	}
	d := NewBuilder("m").AddContinuous("x", vals).SetGroups(groups).MustBuild()
	med := d.All().Median(0)
	lo, hi := d.All().MinMax(0)
	left := d.All().FilterRange(0, lo-1, med)
	right := d.All().FilterRange(0, med, hi)
	if left.Len()+right.Len() != d.Rows() {
		t.Errorf("split loses rows: %d + %d != %d", left.Len(), right.Len(), d.Rows())
	}
	if left.Len() == 0 || right.Len() == 0 {
		t.Error("split produced an empty side on distinct values")
	}
	if left.Len() > (d.Rows()+1)/2 {
		t.Errorf("left side has %d rows, want <= %d", left.Len(), (d.Rows()+1)/2)
	}
}

func TestMaterializePreservesCoding(t *testing.T) {
	d := sample(t)
	sub := dMaterializeHelper(d, []int{1, 3, 5})
	if sub.Rows() != 3 {
		t.Fatalf("rows = %d", sub.Rows())
	}
	// Attribute order, domains and group names are shared with the
	// source, so codes and indices translate directly.
	if sub.NumAttrs() != d.NumAttrs() || sub.NumGroups() != d.NumGroups() {
		t.Fatal("shape changed")
	}
	for i := 0; i < sub.Rows(); i++ {
		srcRow := []int{1, 3, 5}[i]
		if sub.Cont(0, i) != d.Cont(0, srcRow) {
			t.Errorf("row %d: cont mismatch", i)
		}
		if sub.CatCode(1, i) != d.CatCode(1, srcRow) {
			t.Errorf("row %d: categorical code changed", i)
		}
		if sub.Group(i) != d.Group(srcRow) {
			t.Errorf("row %d: group code changed", i)
		}
	}
	if err := sub.Validate(); err != nil {
		t.Errorf("materialized dataset invalid: %v", err)
	}
	// Domains are the same objects/content.
	if sub.Domain(1)[0] != d.Domain(1)[0] {
		t.Error("domain changed")
	}
}

func dMaterializeHelper(d *Dataset, rows []int) *Dataset {
	return Materialize(d.Restrict(rows))
}

func TestKindString(t *testing.T) {
	if Categorical.String() != "categorical" || Continuous.String() != "continuous" {
		t.Error("Kind.String wrong")
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Error("unknown kind should include the code")
	}
}
