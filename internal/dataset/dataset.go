package dataset

import (
	"errors"
	"fmt"
)

// Kind distinguishes categorical from continuous attributes.
type Kind int

const (
	// Categorical attributes take one of a finite set of string values.
	Categorical Kind = iota
	// Continuous attributes take real values.
	Continuous
)

// String returns "categorical" or "continuous".
func (k Kind) String() string {
	switch k {
	case Categorical:
		return "categorical"
	case Continuous:
		return "continuous"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Attr describes one attribute of a dataset.
type Attr struct {
	Name string
	Kind Kind
	col  int // index into catCols or contCols
}

// Dataset is an immutable columnar table with a group attribute. Build one
// with a Builder or FromCSV; the zero value is not usable.
type Dataset struct {
	name       string
	attrs      []Attr
	byName     map[string]int
	catCols    [][]int
	catDomains [][]string
	contCols   [][]float64
	groups     []int
	groupNames []string
	rows       int
	// index is the acceleration-structure cache slot (see Index); it rides
	// on the dataset so the counting engine's bitmap index is built once
	// per dataset and reused across Mine calls and serve jobs.
	index Index
}

// Name returns the dataset's name.
func (d *Dataset) Name() string { return d.name }

// Rows returns the number of rows.
func (d *Dataset) Rows() int { return d.rows }

// NumAttrs returns the number of attributes (excluding the group attribute).
func (d *Dataset) NumAttrs() int { return len(d.attrs) }

// Attr returns the metadata for attribute i.
func (d *Dataset) Attr(i int) Attr { return d.attrs[i] }

// AttrIndex returns the index of the attribute with the given name, or -1.
func (d *Dataset) AttrIndex(name string) int {
	if i, ok := d.byName[name]; ok {
		return i
	}
	return -1
}

// ContinuousAttrs returns the indices of all continuous attributes.
func (d *Dataset) ContinuousAttrs() []int {
	var out []int
	for i, a := range d.attrs {
		if a.Kind == Continuous {
			out = append(out, i)
		}
	}
	return out
}

// CategoricalAttrs returns the indices of all categorical attributes.
func (d *Dataset) CategoricalAttrs() []int {
	var out []int
	for i, a := range d.attrs {
		if a.Kind == Categorical {
			out = append(out, i)
		}
	}
	return out
}

// NumGroups returns the number of distinct groups.
func (d *Dataset) NumGroups() int { return len(d.groupNames) }

// GroupName returns the name of group g.
func (d *Dataset) GroupName(g int) string { return d.groupNames[g] }

// GroupIndex returns the index of the named group, or -1.
func (d *Dataset) GroupIndex(name string) int {
	for i, n := range d.groupNames {
		if n == name {
			return i
		}
	}
	return -1
}

// Group returns the group code of a row.
func (d *Dataset) Group(row int) int { return d.groups[row] }

// GroupSizes returns the number of rows in each group.
func (d *Dataset) GroupSizes() []int {
	sizes := make([]int, len(d.groupNames))
	for _, g := range d.groups {
		sizes[g]++
	}
	return sizes
}

// Domain returns the value domain of a categorical attribute.
func (d *Dataset) Domain(attr int) []string {
	a := d.attrs[attr]
	if a.Kind != Categorical {
		panic(fmt.Sprintf("dataset: Domain on continuous attribute %q", a.Name))
	}
	return d.catDomains[a.col]
}

// CatCode returns the domain code of a categorical attribute at a row.
func (d *Dataset) CatCode(attr, row int) int {
	a := d.attrs[attr]
	if a.Kind != Categorical {
		panic(fmt.Sprintf("dataset: CatCode on continuous attribute %q", a.Name))
	}
	return d.catCols[a.col][row]
}

// CatValue returns the string value of a categorical attribute at a row.
func (d *Dataset) CatValue(attr, row int) string {
	a := d.attrs[attr]
	return d.catDomains[a.col][d.catCols[a.col][row]]
}

// CatCodes returns the full code column of a categorical attribute — the
// dense domain codes in row order. The caller must not modify it. Together
// with Domain this is the raw columnar content the persistence layer
// serializes, so a stored dataset round-trips bit-identically (codes and
// first-appearance domain order are preserved exactly, never re-encoded).
func (d *Dataset) CatCodes(attr int) []int {
	a := d.attrs[attr]
	if a.Kind != Categorical {
		panic(fmt.Sprintf("dataset: CatCodes on continuous attribute %q", a.Name))
	}
	return d.catCols[a.col]
}

// GroupCodes returns the full group-code column in row order. The caller
// must not modify it.
func (d *Dataset) GroupCodes() []int { return d.groups }

// GroupNames returns the group name table indexed by group code. The
// caller must not modify it.
func (d *Dataset) GroupNames() []string { return d.groupNames }

// Cont returns the value of a continuous attribute at a row.
func (d *Dataset) Cont(attr, row int) float64 {
	a := d.attrs[attr]
	if a.Kind != Continuous {
		panic(fmt.Sprintf("dataset: Cont on categorical attribute %q", a.Name))
	}
	return d.contCols[a.col][row]
}

// ContColumn returns the full column slice of a continuous attribute. The
// caller must not modify it.
func (d *Dataset) ContColumn(attr int) []float64 {
	a := d.attrs[attr]
	if a.Kind != Continuous {
		panic(fmt.Sprintf("dataset: ContColumn on categorical attribute %q", a.Name))
	}
	return d.contCols[a.col]
}

// All returns a view over every row.
func (d *Dataset) All() View {
	return View{ds: d, all: true}
}

// Restrict returns a view over the given row indices. The slice is retained;
// the caller must not modify it afterwards.
func (d *Dataset) Restrict(rows []int) View {
	return View{ds: d, rows: rows}
}

// Materialize copies a view's rows into a standalone dataset that keeps
// the source's attribute order, categorical domains and group coding —
// itemsets and group indices remain valid across the copy. This is how
// holdout pipelines mine on a training subset while validating patterns
// against the original dataset's views.
func Materialize(v View) *Dataset {
	src := v.Dataset()
	n := v.Len()
	out := &Dataset{
		name:       src.name + "-subset",
		attrs:      append([]Attr(nil), src.attrs...),
		byName:     src.byName,
		catDomains: src.catDomains,
		groupNames: src.groupNames,
		rows:       n,
	}
	out.catCols = make([][]int, len(src.catCols))
	for c := range src.catCols {
		col := make([]int, n)
		for i := 0; i < n; i++ {
			col[i] = src.catCols[c][v.Row(i)]
		}
		out.catCols[c] = col
	}
	out.contCols = make([][]float64, len(src.contCols))
	for c := range src.contCols {
		col := make([]float64, n)
		for i := 0; i < n; i++ {
			col[i] = src.contCols[c][v.Row(i)]
		}
		out.contCols[c] = col
	}
	out.groups = make([]int, n)
	for i := 0; i < n; i++ {
		out.groups[i] = src.groups[v.Row(i)]
	}
	return out
}

// Validate checks internal consistency. Builders produce valid datasets;
// this is exported for tests and for data loaded from external sources.
func (d *Dataset) Validate() error {
	if d.rows == 0 {
		return errors.New("dataset: no rows")
	}
	if len(d.groupNames) < 2 {
		return errors.New("dataset: need at least two groups")
	}
	if len(d.groups) != d.rows {
		return errors.New("dataset: group column length mismatch")
	}
	for _, g := range d.groups {
		if g < 0 || g >= len(d.groupNames) {
			return errors.New("dataset: group code out of range")
		}
	}
	for i, a := range d.attrs {
		switch a.Kind {
		case Categorical:
			if len(d.catCols[a.col]) != d.rows {
				return fmt.Errorf("dataset: attr %d column length mismatch", i)
			}
			dom := len(d.catDomains[a.col])
			for _, c := range d.catCols[a.col] {
				if c < 0 || c >= dom {
					return fmt.Errorf("dataset: attr %d code out of domain", i)
				}
			}
		case Continuous:
			if len(d.contCols[a.col]) != d.rows {
				return fmt.Errorf("dataset: attr %d column length mismatch", i)
			}
		}
	}
	return nil
}
