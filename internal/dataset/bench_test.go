package dataset

import (
	"math"
	"math/rand"
	"strconv"
	"testing"
)

func benchDataset(n int) *Dataset {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, n)
	y := make([]float64, n)
	c := make([]string, n)
	g := make([]string, n)
	for i := range x {
		x[i] = rng.Float64() * 100
		y[i] = rng.NormFloat64()
		c[i] = "v" + strconv.Itoa(rng.Intn(5))
		g[i] = "g" + strconv.Itoa(i%2)
	}
	return NewBuilder("bench").
		AddContinuous("x", x).
		AddContinuous("y", y).
		AddCategorical("c", c).
		SetGroups(g).
		MustBuild()
}

func BenchmarkViewMedian(b *testing.B) {
	d := benchDataset(10000)
	v := d.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Median(0)
	}
}

func BenchmarkViewFilterRange(b *testing.B) {
	d := benchDataset(10000)
	v := d.All()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.FilterRange(0, 25, 75)
	}
}

func BenchmarkViewGroupCounts(b *testing.B) {
	d := benchDataset(10000)
	v := d.All().FilterRange(0, math.Inf(-1), 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.GroupCounts()
	}
}

func BenchmarkDiscretized(b *testing.B) {
	d := benchDataset(10000)
	cuts := map[int][]float64{0: {25, 50, 75}, 1: {-1, 0, 1}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Discretized(d, cuts)
	}
}
