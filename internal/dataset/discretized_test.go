package dataset

import (
	"math"
	"testing"
)

func TestDiscretizedBinsAndCarryOver(t *testing.T) {
	d := NewBuilder("disc").
		AddContinuous("x", []float64{1, 5, 10, 15, 20, 25}).
		AddCategorical("c", []string{"a", "b", "a", "b", "a", "b"}).
		AddContinuous("y", []float64{9, 8, 7, 6, 5, 4}).
		SetGroups([]string{"G1", "G2", "G1", "G2", "G1", "G2"}).
		MustBuild()

	binned := Discretized(d, map[int][]float64{0: {10, 20}})
	if binned.Rows() != d.Rows() || binned.NumAttrs() != d.NumAttrs() {
		t.Fatal("shape changed")
	}
	// x became categorical with 3 bins; c stays categorical; y (no cuts)
	// stays continuous.
	if binned.Attr(0).Kind != Categorical {
		t.Error("x should be binned categorical")
	}
	if binned.Attr(1).Kind != Categorical {
		t.Error("c should stay categorical")
	}
	if binned.Attr(2).Kind != Continuous {
		t.Error("y should stay continuous")
	}
	if got := len(binned.Domain(0)); got != 3 {
		t.Errorf("x bins = %d, want 3", got)
	}
	// Values 1, 5, 10 land in the first bin ((−inf, 10]), 15, 20 in the
	// second, 25 in the third.
	if binned.CatCode(0, 0) != binned.CatCode(0, 2) {
		t.Error("1 and 10 should share the first bin (upper-inclusive)")
	}
	if binned.CatCode(0, 3) != binned.CatCode(0, 4) {
		t.Error("15 and 20 should share the second bin")
	}
	if binned.CatCode(0, 4) == binned.CatCode(0, 5) {
		t.Error("20 and 25 should be in different bins")
	}
	// Groups carried over.
	if binned.GroupName(binned.Group(0)) != "G1" {
		t.Error("groups changed")
	}
	// Carried-over values intact.
	if binned.Cont(2, 0) != 9 || binned.CatValue(1, 1) != "b" {
		t.Error("carried columns changed")
	}
}

func TestDiscretizedUnsortedCuts(t *testing.T) {
	d := NewBuilder("u").
		AddContinuous("x", []float64{1, 2, 3, 4}).
		SetGroups([]string{"A", "B", "A", "B"}).
		MustBuild()
	// Cuts given out of order must still produce ordered bins.
	binned := Discretized(d, map[int][]float64{0: {3, 1}})
	if len(binned.Domain(0)) != 3 {
		t.Errorf("bins = %d, want 3", len(binned.Domain(0)))
	}
}

func TestDiscretizedEmptyCuts(t *testing.T) {
	d := NewBuilder("e").
		AddContinuous("x", []float64{1, 2}).
		SetGroups([]string{"A", "B"}).
		MustBuild()
	binned := Discretized(d, map[int][]float64{0: {}})
	if binned.Attr(0).Kind != Categorical || len(binned.Domain(0)) != 1 {
		t.Error("no cuts should yield one catch-all bin")
	}
}

func TestBinBounds(t *testing.T) {
	cuts := []float64{10, 20}
	lo, hi := BinBounds(cuts, 0)
	if !math.IsInf(lo, -1) || hi != 10 {
		t.Errorf("bin 0 = (%v, %v]", lo, hi)
	}
	lo, hi = BinBounds(cuts, 1)
	if lo != 10 || hi != 20 {
		t.Errorf("bin 1 = (%v, %v]", lo, hi)
	}
	lo, hi = BinBounds(cuts, 2)
	if lo != 20 || !math.IsInf(hi, 1) {
		t.Errorf("bin 2 = (%v, %v]", lo, hi)
	}
}

func TestBinOfBoundarySemantics(t *testing.T) {
	cuts := []float64{10, 20}
	// Upper-inclusive: exactly 10 belongs to bin 0, 10.0001 to bin 1.
	if binOf(cuts, 10) != 0 {
		t.Error("10 should be in bin 0")
	}
	if binOf(cuts, 10.0001) != 1 {
		t.Error("10.0001 should be in bin 1")
	}
	if binOf(cuts, 20) != 1 {
		t.Error("20 should be in bin 1")
	}
	if binOf(cuts, 21) != 2 {
		t.Error("21 should be in bin 2")
	}
	if binOf(cuts, -5) != 0 {
		t.Error("-5 should be in bin 0")
	}
}
