package dataset

import (
	"sync"
	"sync/atomic"
	"testing"
)

func indexTestDataset(t *testing.T) *Dataset {
	t.Helper()
	return NewBuilder("ix").
		AddCategorical("c", []string{"a", "b", "a", "b"}).
		SetGroups([]string{"g0", "g0", "g1", "g1"}).
		MustBuild()
}

// TestIndexLoadOrBuildOnce: concurrent LoadOrBuild calls on one dataset run
// the build function exactly once and all observe the same value.
func TestIndexLoadOrBuildOnce(t *testing.T) {
	d := indexTestDataset(t)
	var calls atomic.Int64
	sentinel := &struct{ tag string }{"index"}

	const goroutines = 16
	var wg sync.WaitGroup
	values := make([]any, goroutines)
	built := make([]bool, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			values[i], built[i] = d.Index().LoadOrBuild(func() any {
				calls.Add(1)
				return sentinel
			})
		}(i)
	}
	wg.Wait()

	if calls.Load() != 1 {
		t.Fatalf("build ran %d times, want 1", calls.Load())
	}
	builds := 0
	for i := 0; i < goroutines; i++ {
		if values[i] != any(sentinel) {
			t.Fatalf("goroutine %d saw a different value", i)
		}
		if built[i] {
			builds++
		}
	}
	if builds != 1 {
		t.Fatalf("%d goroutines reported built=true, want 1", builds)
	}
	if got := d.Index().Builds(); got != 1 {
		t.Fatalf("Builds() = %d, want 1", got)
	}
	if !d.Index().Loaded() {
		t.Fatal("Loaded() = false after build")
	}
}

// TestIndexDropRebuild: Drop clears the cached value; the next LoadOrBuild
// rebuilds and the lifetime build counter records both builds.
func TestIndexDropRebuild(t *testing.T) {
	d := indexTestDataset(t)
	ix := d.Index()
	if ix.Loaded() {
		t.Fatal("fresh dataset reports a loaded index")
	}
	if ix.Drop() {
		t.Fatal("Drop on an empty slot reported true")
	}

	v1, built := ix.LoadOrBuild(func() any { return "first" })
	if !built || v1 != "first" {
		t.Fatalf("first LoadOrBuild = (%v, %v)", v1, built)
	}
	// A second call must reuse, not rebuild.
	v2, built := ix.LoadOrBuild(func() any { return "second" })
	if built || v2 != "first" {
		t.Fatalf("second LoadOrBuild = (%v, %v), want cached first", v2, built)
	}

	if !ix.Drop() {
		t.Fatal("Drop on a loaded slot reported false")
	}
	if ix.Loaded() {
		t.Fatal("Loaded() = true after Drop")
	}
	v3, built := ix.LoadOrBuild(func() any { return "third" })
	if !built || v3 != "third" {
		t.Fatalf("post-drop LoadOrBuild = (%v, %v)", v3, built)
	}
	if got := ix.Builds(); got != 2 {
		t.Fatalf("Builds() = %d after drop+rebuild, want 2", got)
	}
}

// TestMaterializeFreshIndex: subset materialization must not inherit the
// parent's cached index — the subset has different rows.
func TestMaterializeFreshIndex(t *testing.T) {
	d := indexTestDataset(t)
	d.Index().LoadOrBuild(func() any { return "parent-index" })
	sub := Materialize(d.Restrict([]int{0, 2}))
	if sub.Index().Loaded() {
		t.Fatal("materialized subset inherited the parent's index")
	}
}
