package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzFromCSV checks that arbitrary CSV input never panics the loader and
// that anything it accepts survives a write/read round trip.
func FuzzFromCSV(f *testing.F) {
	f.Add("x,grp\n1,A\n2,B\n")
	f.Add("a,b,grp\n1,foo,A\n2,bar,B\n3,foo,A\n")
	f.Add("grp\nA\nB\n")
	f.Add("x,grp\n1,A\n")           // single group: must error, not panic
	f.Add("x,grp\nnan,A\ninf,B\n")  // special float spellings
	f.Add("x,grp\n1e308,A\n-1,B\n") // extreme magnitudes
	f.Add(",\n,\n")
	f.Add("x,grp\n\"quoted,comma\",A\nplain,B\n")

	f.Fuzz(func(t *testing.T, input string) {
		d, err := FromCSV(strings.NewReader(input), CSVOptions{GroupColumn: "grp"})
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("accepted dataset fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, d, "grp"); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		d2, err := FromCSV(bytes.NewReader(buf.Bytes()), CSVOptions{GroupColumn: "grp"})
		if err != nil {
			t.Fatalf("round trip rejected: %v\ncsv:\n%s", err, buf.String())
		}
		if d2.Rows() != d.Rows() || d2.NumAttrs() != d.NumAttrs() {
			t.Fatalf("round trip changed shape: %dx%d -> %dx%d",
				d.Rows(), d.NumAttrs(), d2.Rows(), d2.NumAttrs())
		}
	})
}
