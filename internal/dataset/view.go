package dataset

import (
	"math"
	"math/rand"
	"sort"
)

// View is a subset of a dataset's rows. The spaces SDAD-CS explores are
// views, so recursive exploration shares column storage. The full-dataset
// view is flagged explicitly so that an *empty* filter result (a nil row
// slice) is never confused with "all rows".
type View struct {
	ds   *Dataset
	rows []int
	all  bool
}

// Dataset returns the underlying dataset.
func (v View) Dataset() *Dataset { return v.ds }

// Len returns the number of rows in the view.
func (v View) Len() int {
	if v.all {
		return v.ds.rows
	}
	return len(v.rows)
}

// Row returns the dataset row index of the i-th view row.
func (v View) Row(i int) int {
	if v.all {
		return i
	}
	return v.rows[i]
}

// Rows materializes the view's dataset row indices.
func (v View) Rows() []int {
	if !v.all {
		return v.rows
	}
	all := make([]int, v.ds.rows)
	for i := range all {
		all[i] = i
	}
	return all
}

// GroupCounts returns, per group, the number of view rows in that group.
func (v View) GroupCounts() []int {
	counts := make([]int, v.ds.NumGroups())
	n := v.Len()
	for i := 0; i < n; i++ {
		counts[v.ds.groups[v.Row(i)]]++
	}
	return counts
}

// Filter returns a view of the rows satisfying pred (given dataset row
// indices).
func (v View) Filter(pred func(row int) bool) View {
	var keep []int
	n := v.Len()
	for i := 0; i < n; i++ {
		r := v.Row(i)
		if pred(r) {
			keep = append(keep, r)
		}
	}
	return View{ds: v.ds, rows: keep}
}

// FilterCat returns the view rows where categorical attribute attr has the
// given domain code.
func (v View) FilterCat(attr, code int) View {
	a := v.ds.attrs[attr]
	col := v.ds.catCols[a.col]
	return v.Filter(func(row int) bool { return col[row] == code })
}

// FilterRange returns the view rows where continuous attribute attr lies in
// (lo, hi] — the half-open interval convention the paper's contrasts use
// ("l < a <= r"). Use math.Inf for unbounded ends.
func (v View) FilterRange(attr int, lo, hi float64) View {
	a := v.ds.attrs[attr]
	col := v.ds.contCols[a.col]
	return v.Filter(func(row int) bool {
		x := col[row]
		return x > lo && x <= hi
	})
}

// Median returns the median of a continuous attribute over the view, using
// the lower-middle element for even counts so that a split at the median
// puts at least one row on each side whenever two distinct values exist.
func (v View) Median(attr int) float64 {
	return v.Quantile(attr, 0.5)
}

// Quantile returns the q-quantile (0 <= q <= 1) of a continuous attribute
// over the view by sorting a copy of the view's finite values; missing
// (NaN) readings are skipped.
func (v View) Quantile(attr int, q float64) float64 {
	vals := v.ContValues(attr)
	finite := vals[:0]
	for _, x := range vals {
		if x == x { // skip NaN
			finite = append(finite, x)
		}
	}
	vals = finite
	if len(vals) == 0 {
		return 0
	}
	sort.Float64s(vals)
	if q <= 0 {
		return vals[0]
	}
	if q >= 1 {
		return vals[len(vals)-1]
	}
	// Use the lower element on ties between positions so that, e.g., the
	// median of an even-length sample is the lower-middle value: a split at
	// (−inf, median] then keeps at most ceil(n/2) rows on the left, the
	// invariant the optimistic estimate relies on.
	idx := int(q * float64(len(vals)-1))
	return vals[idx]
}

// ContValues copies the values of a continuous attribute over the view.
func (v View) ContValues(attr int) []float64 {
	a := v.ds.attrs[attr]
	col := v.ds.contCols[a.col]
	n := v.Len()
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = col[v.Row(i)]
	}
	return out
}

// MinMax returns the smallest and largest finite value of a continuous
// attribute over the view, skipping missing (NaN) readings. It returns
// (0, 0) when the view has no finite values.
func (v View) MinMax(attr int) (lo, hi float64) {
	n := v.Len()
	a := v.ds.attrs[attr]
	col := v.ds.contCols[a.col]
	seen := false
	for i := 0; i < n; i++ {
		x := col[v.Row(i)]
		if x != x { // NaN
			continue
		}
		if !seen {
			lo, hi = x, x
			seen = true
			continue
		}
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if !seen {
		return 0, 0
	}
	return lo, hi
}

// StratifiedSplit partitions the view's rows into two views, keeping each
// group's proportion: every group contributes ⌈frac·n_g⌉ rows to the first
// view. The split is deterministic for a given seed. It backs holdout
// validation of mined patterns.
func (v View) StratifiedSplit(frac float64, seed int64) (first, second View) {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	rng := rand.New(rand.NewSource(seed))
	byGroup := make([][]int, v.ds.NumGroups())
	n := v.Len()
	for i := 0; i < n; i++ {
		r := v.Row(i)
		g := v.ds.Group(r)
		byGroup[g] = append(byGroup[g], r)
	}
	var a, b []int
	for _, rows := range byGroup {
		rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
		cut := int(math.Ceil(frac * float64(len(rows))))
		a = append(a, rows[:cut]...)
		b = append(b, rows[cut:]...)
	}
	sort.Ints(a)
	sort.Ints(b)
	return View{ds: v.ds, rows: a}, View{ds: v.ds, rows: b}
}

// Intersect returns the view containing rows present in both views. Both
// views must be over the same dataset; results are in v's order.
func (v View) Intersect(w View) View {
	inW := make(map[int]struct{}, w.Len())
	for i := 0; i < w.Len(); i++ {
		inW[w.Row(i)] = struct{}{}
	}
	return v.Filter(func(row int) bool {
		_, ok := inW[row]
		return ok
	})
}

// Subtract returns the view containing rows of v not present in w.
func (v View) Subtract(w View) View {
	inW := make(map[int]struct{}, w.Len())
	for i := 0; i < w.Len(); i++ {
		inW[w.Row(i)] = struct{}{}
	}
	return v.Filter(func(row int) bool {
		_, ok := inW[row]
		return !ok
	})
}
