// Package report renders mined contrast patterns for people and machines:
// plain text, Markdown tables, CSV, and structured JSON. The engineers the
// paper's case study targets consume these lists directly, so the output
// keeps per-group supports, the interest score and significance together
// with every pattern.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"sdadcs/internal/dataset"
	"sdadcs/internal/pattern"
)

// Text writes one numbered line per contrast, as the contrast CLI prints.
func Text(w io.Writer, d *dataset.Dataset, cs []pattern.Contrast) error {
	for i, c := range cs {
		if _, err := fmt.Fprintf(w, "%3d. %s  score=%.3f p=%.2g\n",
			i+1, c.Format(d), c.Score, c.P); err != nil {
			return err
		}
	}
	return nil
}

// Markdown writes a GitHub-flavored Markdown table.
func Markdown(w io.Writer, d *dataset.Dataset, cs []pattern.Contrast) error {
	header := []string{"#", "contrast set"}
	for g := 0; g < d.NumGroups(); g++ {
		header = append(header, "supp("+d.GroupName(g)+")")
	}
	header = append(header, "score", "chi2", "p")
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(header, " | ")); err != nil {
		return err
	}
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | ")); err != nil {
		return err
	}
	for i, c := range cs {
		row := []string{strconv.Itoa(i + 1), c.Set.Format(d)}
		for g := 0; g < d.NumGroups(); g++ {
			row = append(row, fmt.Sprintf("%.3f", c.Supports.Supp(g)))
		}
		row = append(row,
			fmt.Sprintf("%.3f", c.Score),
			fmt.Sprintf("%.2f", c.ChiSq),
			fmt.Sprintf("%.3g", c.P))
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | ")); err != nil {
			return err
		}
	}
	return nil
}

// CSV writes a headered CSV with one row per contrast.
func CSV(w io.Writer, d *dataset.Dataset, cs []pattern.Contrast) error {
	cw := csv.NewWriter(w)
	header := []string{"rank", "contrast"}
	for g := 0; g < d.NumGroups(); g++ {
		header = append(header, "supp_"+d.GroupName(g))
	}
	header = append(header, "score", "chi2", "p")
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, c := range cs {
		row := []string{strconv.Itoa(i + 1), c.Set.Format(d)}
		for g := 0; g < d.NumGroups(); g++ {
			row = append(row, strconv.FormatFloat(c.Supports.Supp(g), 'f', 6, 64))
		}
		row = append(row,
			strconv.FormatFloat(c.Score, 'f', 6, 64),
			strconv.FormatFloat(c.ChiSq, 'f', 4, 64),
			strconv.FormatFloat(c.P, 'g', 6, 64))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// JSONItem is the machine-readable form of one pattern condition.
type JSONItem struct {
	Attribute string   `json:"attribute"`
	Kind      string   `json:"kind"`
	Value     string   `json:"value,omitempty"`
	Lo        *float64 `json:"lo,omitempty"` // null = unbounded
	Hi        *float64 `json:"hi,omitempty"`
}

// JSONGroup is one group's support of a pattern. Groups appear in dataset
// group order (not alphabetically), so the encoding is stable and the
// group arrays of every contrast are parallel.
type JSONGroup struct {
	Group   string  `json:"group"`
	Support float64 `json:"support"`
	Count   int     `json:"count"`
}

// JSONContrast is the machine-readable form of one mined pattern. Field
// order here is field order on the wire (encoding/json emits struct fields
// in declaration order), and groups are an ordered array rather than a
// map: two renderings of the same result are byte-identical, which is what
// lets the serving layer's result cache hand back cached bytes that are
// indistinguishable from a fresh mine. Key is the pattern's canonical
// itemset key — the handle the trace/explain endpoints accept.
type JSONContrast struct {
	Rank   int         `json:"rank"`
	Key    string      `json:"key"`
	Items  []JSONItem  `json:"items"`
	Groups []JSONGroup `json:"groups"`
	Score  float64     `json:"score"`
	ChiSq  float64     `json:"chi2"`
	P      float64     `json:"p"`
}

// JSON writes the contrasts as a JSON array with items decomposed into
// attribute/kind/value/range fields, suitable for downstream tooling. The
// output is deterministic: byte-identical for equal inputs (fixed field
// order, group order = dataset group order, contrasts in the caller's
// order, which the miner already makes deterministic).
func JSON(w io.Writer, d *dataset.Dataset, cs []pattern.Contrast) error {
	out := make([]JSONContrast, len(cs))
	for i, c := range cs {
		jc := JSONContrast{
			Rank:  i + 1,
			Key:   c.Set.Key(),
			Score: c.Score,
			ChiSq: c.ChiSq,
			P:     c.P,
		}
		for _, it := range c.Set.Items() {
			ji := JSONItem{Attribute: d.Attr(it.Attr).Name}
			if it.Kind == dataset.Categorical {
				ji.Kind = "categorical"
				ji.Value = d.Domain(it.Attr)[it.Code]
			} else {
				ji.Kind = "continuous"
				if !math.IsInf(it.Range.Lo, -1) {
					lo := it.Range.Lo
					ji.Lo = &lo
				}
				if !math.IsInf(it.Range.Hi, 1) {
					hi := it.Range.Hi
					ji.Hi = &hi
				}
			}
			jc.Items = append(jc.Items, ji)
		}
		for g := 0; g < d.NumGroups(); g++ {
			jc.Groups = append(jc.Groups, JSONGroup{
				Group:   d.GroupName(g),
				Support: c.Supports.Supp(g),
				Count:   c.Supports.Count[g],
			})
		}
		out[i] = jc
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Format names a renderer.
type Format string

// Supported formats.
const (
	FormatText     Format = "text"
	FormatMarkdown Format = "markdown"
	FormatCSV      Format = "csv"
	FormatJSON     Format = "json"
)

// Write renders in the named format.
func Write(w io.Writer, format Format, d *dataset.Dataset, cs []pattern.Contrast) error {
	switch format {
	case FormatText, "":
		return Text(w, d, cs)
	case FormatMarkdown:
		return Markdown(w, d, cs)
	case FormatCSV:
		return CSV(w, d, cs)
	case FormatJSON:
		return JSON(w, d, cs)
	default:
		return fmt.Errorf("report: unknown format %q", format)
	}
}
