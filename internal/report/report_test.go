package report

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"sdadcs/internal/dataset"
	"sdadcs/internal/pattern"
)

func sample(t *testing.T) (*dataset.Dataset, []pattern.Contrast) {
	t.Helper()
	d := dataset.NewBuilder("r").
		AddContinuous("age", []float64{20, 30, 40, 50}).
		AddCategorical("site", []string{"A", "B", "A", "B"}).
		SetGroups([]string{"good", "good", "bad", "bad"}).
		MustBuild()
	cs := []pattern.Contrast{
		{
			Set: pattern.NewItemset(
				pattern.RangeItem(0, math.Inf(-1), 35),
				pattern.CatItem(1, 0),
			),
			Supports: pattern.CountsToSupports([]int{1, 0}, []int{2, 2}),
			Score:    0.5,
			ChiSq:    4.2,
			P:        0.04,
		},
		{
			Set:      pattern.NewItemset(pattern.RangeItem(0, 35, math.Inf(1))),
			Supports: pattern.CountsToSupports([]int{0, 2}, []int{2, 2}),
			Score:    1.0,
			ChiSq:    8.1,
			P:        0.004,
		},
	}
	return d, cs
}

func TestText(t *testing.T) {
	d, cs := sample(t)
	var buf bytes.Buffer
	if err := Text(&buf, d, cs); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "  1. ") || !strings.Contains(out, "  2. ") {
		t.Error("missing rank numbering")
	}
	if !strings.Contains(out, "site = A") {
		t.Error("missing categorical item")
	}
}

func TestMarkdown(t *testing.T) {
	d, cs := sample(t)
	var buf bytes.Buffer
	if err := Markdown(&buf, d, cs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Fatalf("lines = %d, want 4", len(lines))
	}
	if !strings.Contains(lines[0], "supp(good)") || !strings.Contains(lines[0], "supp(bad)") {
		t.Error("header missing group columns")
	}
	if !strings.HasPrefix(lines[1], "| ---") {
		t.Error("missing separator row")
	}
}

func TestCSV(t *testing.T) {
	d, cs := sample(t)
	var buf bytes.Buffer
	if err := CSV(&buf, d, cs); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("records = %d, want 3", len(records))
	}
	if records[0][0] != "rank" || records[1][0] != "1" {
		t.Error("rank column wrong")
	}
	if records[2][3] != "1.000000" { // supp_bad of second contrast
		t.Errorf("support cell = %q", records[2][3])
	}
}

func TestJSON(t *testing.T) {
	d, cs := sample(t)
	var buf bytes.Buffer
	if err := JSON(&buf, d, cs); err != nil {
		t.Fatal(err)
	}
	var out []JSONContrast
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("contrasts = %d", len(out))
	}
	first := out[0]
	if len(first.Items) != 2 {
		t.Fatalf("items = %d", len(first.Items))
	}
	ageItem := first.Items[0]
	if ageItem.Attribute != "age" || ageItem.Kind != "continuous" {
		t.Errorf("item = %+v", ageItem)
	}
	if ageItem.Lo != nil {
		t.Error("unbounded lo should be null")
	}
	if ageItem.Hi == nil || *ageItem.Hi != 35 {
		t.Error("hi bound wrong")
	}
	if first.Items[1].Value != "A" {
		t.Errorf("categorical value = %q", first.Items[1].Value)
	}
	if len(first.Groups) != 2 || first.Groups[0].Group != "good" ||
		first.Groups[0].Support != 0.5 || first.Groups[0].Count != 1 {
		t.Errorf("groups wrong: %+v", first.Groups)
	}
	if first.Key == "" {
		t.Error("missing canonical pattern key")
	}
}

func TestWriteDispatch(t *testing.T) {
	d, cs := sample(t)
	for _, f := range []Format{FormatText, FormatMarkdown, FormatCSV, FormatJSON, ""} {
		var buf bytes.Buffer
		if err := Write(&buf, f, d, cs); err != nil {
			t.Errorf("format %q: %v", f, err)
		}
		if buf.Len() == 0 {
			t.Errorf("format %q produced no output", f)
		}
	}
	var buf bytes.Buffer
	if err := Write(&buf, "bogus", d, cs); err == nil {
		t.Error("unknown format should error")
	}
}

func TestEmptyContrasts(t *testing.T) {
	d, _ := sample(t)
	for _, f := range []Format{FormatText, FormatMarkdown, FormatCSV, FormatJSON} {
		var buf bytes.Buffer
		if err := Write(&buf, f, d, nil); err != nil {
			t.Errorf("format %q on empty list: %v", f, err)
		}
	}
}

// TestJSONGolden pins the exact byte encoding of the JSON report: field
// order, group order (dataset order, not alphabetical), indentation, and
// the canonical pattern key. The serving layer's result cache hands back
// stored bytes for repeated queries, so any re-rendering must reproduce
// them exactly — if this test breaks, the wire format changed and the
// byte-identity guarantee of cache hits changed with it.
func TestJSONGolden(t *testing.T) {
	d, cs := sample(t)
	const want = `[
  {
    "rank": 1,
    "key": "0@-inf,4925812092436480p-47|1=0",
    "items": [
      {
        "attribute": "age",
        "kind": "continuous",
        "hi": 35
      },
      {
        "attribute": "site",
        "kind": "categorical",
        "value": "A"
      }
    ],
    "groups": [
      {
        "group": "good",
        "support": 0.5,
        "count": 1
      },
      {
        "group": "bad",
        "support": 0,
        "count": 0
      }
    ],
    "score": 0.5,
    "chi2": 4.2,
    "p": 0.04
  },
  {
    "rank": 2,
    "key": "0@4925812092436480p-47,inf",
    "items": [
      {
        "attribute": "age",
        "kind": "continuous",
        "lo": 35
      }
    ],
    "groups": [
      {
        "group": "good",
        "support": 0,
        "count": 0
      },
      {
        "group": "bad",
        "support": 1,
        "count": 2
      }
    ],
    "score": 1,
    "chi2": 8.1,
    "p": 0.004
  }
]
`
	var first bytes.Buffer
	if err := JSON(&first, d, cs); err != nil {
		t.Fatal(err)
	}
	if first.String() != want {
		t.Errorf("golden mismatch:\ngot:\n%s\nwant:\n%s", first.String(), want)
	}
	// Determinism: a second rendering is byte-identical.
	var second bytes.Buffer
	if err := JSON(&second, d, cs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("two renderings of the same result differ")
	}
}
