package stats

import "math"

// FisherExact22 computes the two-sided Fisher exact test p-value for the
// 2x2 table
//
//	a b
//	c d
//
// by summing the hypergeometric probabilities of all tables with the same
// margins that are no more probable than the observed one. It is used in
// place of the chi-square test when an expected cell count is too small for
// the asymptotic approximation to be valid.
func FisherExact22(a, b, c, d int) float64 {
	if a < 0 || b < 0 || c < 0 || d < 0 {
		return math.NaN()
	}
	n := a + b + c + d
	if n == 0 {
		return 1
	}
	r1 := a + b
	c1 := a + c
	pObs := hypergeomLogPMF(a, r1, c1, n)
	lo := max(0, c1-(n-r1))
	hi := min(r1, c1)
	const slack = 1e-7 // tolerate float fuzz when comparing probabilities
	p := 0.0
	for x := lo; x <= hi; x++ {
		lp := hypergeomLogPMF(x, r1, c1, n)
		if lp <= pObs+slack {
			p += math.Exp(lp)
		}
	}
	if p > 1 {
		p = 1
	}
	return p
}

// hypergeomLogPMF returns log P(X = x) where X follows a hypergeometric
// distribution: x successes drawn in r1 draws from a population of n with
// c1 successes.
func hypergeomLogPMF(x, r1, c1, n int) float64 {
	return logChoose(c1, x) + logChoose(n-c1, r1-x) - logChoose(n, r1)
}

// logChoose returns log C(n, k), or -Inf for invalid arguments.
func logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	ln1, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return ln1 - lk - lnk
}
