package stats

import (
	"math"
	"sort"
)

// MannWhitneyResult holds the outcome of a Wilcoxon–Mann–Whitney rank-sum
// test with the normal approximation (tie-corrected).
type MannWhitneyResult struct {
	U float64 // the U statistic for the first sample
	Z float64 // standardized statistic
	P float64 // two-sided p-value
}

// MannWhitney performs the two-sided Wilcoxon–Mann–Whitney test on samples
// x and y. It is the test the paper uses to mark Table 4 entries whose
// top-k interest-measure distributions are not significantly different from
// SDAD-CS NP. The normal approximation with tie correction and continuity
// correction is used; it is accurate for the sample sizes in the
// experiments (tens of patterns per algorithm).
func MannWhitney(x, y []float64) MannWhitneyResult {
	n1, n2 := len(x), len(y)
	if n1 == 0 || n2 == 0 {
		return MannWhitneyResult{P: math.NaN(), Z: math.NaN(), U: math.NaN()}
	}
	type obs struct {
		v     float64
		first bool
	}
	all := make([]obs, 0, n1+n2)
	for _, v := range x {
		all = append(all, obs{v, true})
	}
	for _, v := range y {
		all = append(all, obs{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Assign mid-ranks, accumulating the tie correction term Σ(t³-t).
	ranks := make([]float64, len(all))
	tieTerm := 0.0
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // ranks are 1-based
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		t := float64(j - i)
		if t > 1 {
			tieTerm += t*t*t - t
		}
		i = j
	}
	r1 := 0.0
	for i, o := range all {
		if o.first {
			r1 += ranks[i]
		}
	}
	fn1, fn2 := float64(n1), float64(n2)
	u1 := r1 - fn1*(fn1+1)/2
	mu := fn1 * fn2 / 2
	n := fn1 + fn2
	variance := fn1 * fn2 / 12 * ((n + 1) - tieTerm/(n*(n-1)))
	if variance <= 0 {
		// All values identical: no evidence of difference.
		return MannWhitneyResult{U: u1, Z: 0, P: 1}
	}
	// Continuity correction toward the mean.
	d := u1 - mu
	switch {
	case d > 0.5:
		d -= 0.5
	case d < -0.5:
		d += 0.5
	default:
		d = 0
	}
	z := d / math.Sqrt(variance)
	p := 2 * NormalSurvival(math.Abs(z))
	if p > 1 {
		p = 1
	}
	return MannWhitneyResult{U: u1, Z: z, P: p}
}
