// Package stats implements the statistical substrate used by the contrast
// pattern miner: chi-square tests with exact p-values (regularized incomplete
// gamma), Fisher's exact test for 2x2 tables, the standard normal
// distribution (CDF and quantile), the Wilcoxon–Mann–Whitney rank-sum test,
// and the Bonferroni significance-level schedule used by STUCCO-style
// contrast set miners.
//
// Everything is implemented from first principles on top of the Go standard
// library (math.Lgamma, math.Erf); no external dependencies.
package stats
