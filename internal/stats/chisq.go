package stats

import (
	"errors"
	"math"
)

// ErrDegenerateTable reports a contingency table whose chi-square statistic
// is undefined (a zero row or column margin).
var ErrDegenerateTable = errors.New("stats: degenerate contingency table")

// ChiSquareResult holds the outcome of a chi-square independence test.
type ChiSquareResult struct {
	Statistic   float64 // the chi-square statistic
	DF          int     // degrees of freedom
	P           float64 // upper-tail p-value
	MinExpected float64 // smallest expected cell count (validity check)
}

// Significant reports whether the test rejects independence at level alpha.
func (r ChiSquareResult) Significant(alpha float64) bool {
	return r.P < alpha
}

// ChiSquareTable computes the chi-square test of independence for an r×c
// contingency table given as rows of observed counts. All rows must have the
// same length. A zero row or column margin yields ErrDegenerateTable.
func ChiSquareTable(observed [][]float64) (ChiSquareResult, error) {
	r := len(observed)
	if r < 2 {
		return ChiSquareResult{}, ErrDegenerateTable
	}
	c := len(observed[0])
	if c < 2 {
		return ChiSquareResult{}, ErrDegenerateTable
	}
	rowSum := make([]float64, r)
	colSum := make([]float64, c)
	total := 0.0
	for i, row := range observed {
		if len(row) != c {
			return ChiSquareResult{}, errors.New("stats: ragged contingency table")
		}
		for j, v := range row {
			if v < 0 || math.IsNaN(v) {
				return ChiSquareResult{}, errors.New("stats: negative or NaN count")
			}
			rowSum[i] += v
			colSum[j] += v
			total += v
		}
	}
	if total == 0 {
		return ChiSquareResult{}, ErrDegenerateTable
	}
	for _, s := range rowSum {
		if s == 0 {
			return ChiSquareResult{}, ErrDegenerateTable
		}
	}
	for _, s := range colSum {
		if s == 0 {
			return ChiSquareResult{}, ErrDegenerateTable
		}
	}
	stat := 0.0
	minExp := math.Inf(1)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			exp := rowSum[i] * colSum[j] / total
			if exp < minExp {
				minExp = exp
			}
			d := observed[i][j] - exp
			stat += d * d / exp
		}
	}
	df := (r - 1) * (c - 1)
	return ChiSquareResult{
		Statistic:   stat,
		DF:          df,
		P:           ChiSquareSurvival(stat, df),
		MinExpected: minExp,
	}, nil
}

// ChiSquare2xK tests independence between group membership (2 groups) and
// presence/absence of a pattern across k groups is the common case in
// contrast set mining: the table rows are groups and the columns are
// (contains pattern, does not contain pattern).
//
// count[i] is the number of rows of group i containing the pattern and
// size[i] the total number of rows in group i.
func ChiSquare2xK(count, size []int) (ChiSquareResult, error) {
	if len(count) != len(size) || len(count) < 2 {
		return ChiSquareResult{}, errors.New("stats: count/size length mismatch")
	}
	obs := make([][]float64, len(count))
	for i := range count {
		if count[i] < 0 || count[i] > size[i] {
			return ChiSquareResult{}, errors.New("stats: count out of range")
		}
		obs[i] = []float64{float64(count[i]), float64(size[i] - count[i])}
	}
	return ChiSquareTable(obs)
}

// ChiSquareOptimistic returns an upper bound on the chi-square statistic
// achievable by any specialization of a pattern with the given per-group
// counts, following Bay & Pazzani's bound: a specialization can only shrink
// the per-group counts, and the statistic is maximized at the extreme where
// the counts become maximally skewed — all counts of one group retained and
// the others reduced to zero. The maximum over all such extremes is an
// admissible bound for pruning.
func ChiSquareOptimistic(count, size []int) float64 {
	best := 0.0
	k := len(count)
	sub := make([]int, k)
	for keep := 0; keep < k; keep++ {
		for i := range sub {
			if i == keep {
				sub[i] = count[i]
			} else {
				sub[i] = 0
			}
		}
		if sub[keep] == 0 {
			continue
		}
		res, err := ChiSquare2xK(sub, size)
		if err != nil {
			continue
		}
		if res.Statistic > best {
			best = res.Statistic
		}
	}
	return best
}
