package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFisherExactTeaTasting(t *testing.T) {
	// Fisher's lady-tasting-tea table [[3,1],[1,3]]: two-sided p = 0.4857...
	got := FisherExact22(3, 1, 1, 3)
	if !almostEqual(got, 0.48571428571428565, 1e-10) {
		t.Errorf("FisherExact22(3,1,1,3) = %v, want 0.485714...", got)
	}
}

func TestFisherExactKnownValues(t *testing.T) {
	cases := []struct {
		a, b, c, d int
		want       float64
	}{
		// Verified against R fisher.test / scipy.stats.fisher_exact.
		{10, 10, 10, 10, 1.0},
		{8, 2, 1, 5, 0.03496503496503495},
		{0, 10, 10, 0, 1.082508822446903e-05},
		{0, 0, 0, 0, 1.0},
		{5, 0, 0, 5, 0.007936507936507936},
	}
	for _, c := range cases {
		got := FisherExact22(c.a, c.b, c.c, c.d)
		if !almostEqual(got, c.want, 1e-9) {
			t.Errorf("FisherExact22(%d,%d,%d,%d) = %v, want %v",
				c.a, c.b, c.c, c.d, got, c.want)
		}
	}
}

func TestFisherExactNegative(t *testing.T) {
	if !math.IsNaN(FisherExact22(-1, 2, 3, 4)) {
		t.Error("negative cell should yield NaN")
	}
}

// Property: p-value lies in (0, 1] and is symmetric under swapping rows and
// under swapping columns (both swaps preserve the 2x2 association).
func TestFisherExactSymmetryProperty(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		ai, bi, ci, di := int(a%30), int(b%30), int(c%30), int(d%30)
		p := FisherExact22(ai, bi, ci, di)
		if p <= 0 || p > 1+1e-12 {
			return false
		}
		rowSwap := FisherExact22(ci, di, ai, bi)
		colSwap := FisherExact22(bi, ai, di, ci)
		return almostEqual(p, rowSwap, 1e-9) && almostEqual(p, colSwap, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: Fisher's exact p agrees with the chi-square p to within a loose
// tolerance when all expected counts are large (asymptotic agreement).
func TestFisherChiSquareAgreementLargeCounts(t *testing.T) {
	cases := [][4]int{
		{200, 300, 250, 250},
		{400, 100, 350, 150},
		{500, 500, 480, 520},
	}
	for _, c := range cases {
		pf := FisherExact22(c[0], c[1], c[2], c[3])
		res, err := ChiSquareTable([][]float64{
			{float64(c[0]), float64(c[1])},
			{float64(c[2]), float64(c[3])},
		})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(pf-res.P) > 0.03 {
			t.Errorf("fisher %v vs chisq %v for %v", pf, res.P, c)
		}
	}
}

func TestLogChoose(t *testing.T) {
	if got := logChoose(5, 2); !almostEqual(got, math.Log(10), 1e-12) {
		t.Errorf("logChoose(5,2) = %v, want log(10)", got)
	}
	if !math.IsInf(logChoose(3, 5), -1) {
		t.Error("logChoose(3,5) should be -Inf")
	}
	if !math.IsInf(logChoose(3, -1), -1) {
		t.Error("logChoose(3,-1) should be -Inf")
	}
}
