package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

// gammaPExactIntegerA computes P(a, x) for integer a via the closed form
// P(a, x) = 1 - e^{-x} Σ_{k=0}^{a-1} x^k / k! (the Poisson tail identity).
func gammaPExactIntegerA(a int, x float64) float64 {
	sum := 0.0
	term := 1.0
	for k := 0; k < a; k++ {
		sum += term
		term *= x / float64(k+1)
	}
	return 1 - math.Exp(-x)*sum
}

func TestGammaIncLowerClosedForms(t *testing.T) {
	// Integer a: compare to the exact Poisson-sum identity.
	for _, c := range []struct {
		a int
		x float64
	}{
		{1, 1}, {2, 2}, {5, 5}, {10, 3}, {3, 20}, {7, 0.5}, {20, 40},
	} {
		got := GammaIncLower(float64(c.a), c.x)
		want := gammaPExactIntegerA(c.a, c.x)
		if !almostEqual(got, want, 1e-12) {
			t.Errorf("GammaIncLower(%d, %v) = %v, want %v", c.a, c.x, got, want)
		}
	}
	// Half-integer a = 0.5: P(0.5, x) = erf(sqrt(x)).
	for _, x := range []float64{0.5, 1, 2, 5, 10} {
		got := GammaIncLower(0.5, x)
		want := math.Erf(math.Sqrt(x))
		if !almostEqual(got, want, 1e-12) {
			t.Errorf("GammaIncLower(0.5, %v) = %v, want erf(sqrt(x)) = %v", x, got, want)
		}
	}
}

func TestGammaIncEdgeCases(t *testing.T) {
	if got := GammaIncLower(2, 0); got != 0 {
		t.Errorf("GammaIncLower(2, 0) = %v, want 0", got)
	}
	if got := GammaIncUpper(2, 0); got != 1 {
		t.Errorf("GammaIncUpper(2, 0) = %v, want 1", got)
	}
	if got := GammaIncLower(2, math.Inf(1)); got != 1 {
		t.Errorf("GammaIncLower(2, Inf) = %v, want 1", got)
	}
	if !math.IsNaN(GammaIncLower(-1, 1)) {
		t.Error("GammaIncLower(-1, 1) should be NaN")
	}
	if !math.IsNaN(GammaIncLower(1, -1)) {
		t.Error("GammaIncLower(1, -1) should be NaN")
	}
}

// Property: P(a,x) + Q(a,x) = 1 for valid arguments.
func TestGammaIncComplementProperty(t *testing.T) {
	f := func(aRaw, xRaw float64) bool {
		a := math.Mod(math.Abs(aRaw), 50) + 0.1
		x := math.Mod(math.Abs(xRaw), 100)
		p := GammaIncLower(a, x)
		q := GammaIncUpper(a, x)
		return almostEqual(p+q, 1, 1e-9) && p >= -1e-12 && p <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: P(a,·) is non-decreasing in x.
func TestGammaIncMonotoneProperty(t *testing.T) {
	f := func(aRaw, x1Raw, x2Raw float64) bool {
		a := math.Mod(math.Abs(aRaw), 20) + 0.1
		x1 := math.Mod(math.Abs(x1Raw), 50)
		x2 := math.Mod(math.Abs(x2Raw), 50)
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		return GammaIncLower(a, x1) <= GammaIncLower(a, x2)+1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestChiSquareCDFKnownValues(t *testing.T) {
	// Classical critical values.
	cases := []struct {
		x    float64
		df   int
		want float64
	}{
		{3.841458820694124, 1, 0.95},
		{5.991464547107979, 2, 0.95},
		{6.6348966010212145, 1, 0.99},
		{9.487729036781154, 4, 0.95},
		{0, 3, 0},
	}
	for _, c := range cases {
		got := ChiSquareCDF(c.x, c.df)
		if !almostEqual(got, c.want, 1e-8) {
			t.Errorf("ChiSquareCDF(%v, %d) = %v, want %v", c.x, c.df, got, c.want)
		}
	}
}

func TestChiSquareSurvivalComplement(t *testing.T) {
	for _, x := range []float64{0.1, 1, 3.84, 10, 50} {
		for _, df := range []int{1, 2, 5, 10} {
			s := ChiSquareSurvival(x, df) + ChiSquareCDF(x, df)
			if !almostEqual(s, 1, 1e-10) {
				t.Errorf("survival+cdf at (%v,%d) = %v, want 1", x, df, s)
			}
		}
	}
}

func TestChiSquareQuantileInverts(t *testing.T) {
	for _, p := range []float64{0.01, 0.05, 0.5, 0.95, 0.99} {
		for _, df := range []int{1, 2, 5, 20} {
			x := ChiSquareQuantile(p, df)
			back := ChiSquareCDF(x, df)
			if !almostEqual(back, p, 1e-8) {
				t.Errorf("CDF(Quantile(%v, %d)) = %v", p, df, back)
			}
		}
	}
	if ChiSquareQuantile(0, 3) != 0 {
		t.Error("quantile at p=0 should be 0")
	}
	if !math.IsInf(ChiSquareQuantile(1, 3), 1) {
		t.Error("quantile at p=1 should be +Inf")
	}
}
