package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{1.959963984540054, 0.975},
		{-2.5758293035489004, 0.005},
		{3, 0.9986501019683699},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.025, -1.959963984540054},
		{0.95, 1.6448536269514722},
		{0.005, -2.5758293035489004},
		{0.9999, 3.719016485455709},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); !almostEqual(got, c.want, 1e-8) {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestNormalQuantileEdges(t *testing.T) {
	if !math.IsInf(NormalQuantile(0), -1) {
		t.Error("NormalQuantile(0) should be -Inf")
	}
	if !math.IsInf(NormalQuantile(1), 1) {
		t.Error("NormalQuantile(1) should be +Inf")
	}
	if !math.IsNaN(NormalQuantile(-0.1)) || !math.IsNaN(NormalQuantile(1.1)) {
		t.Error("out-of-range p should yield NaN")
	}
}

// Property: CDF(Quantile(p)) == p across (0, 1).
func TestNormalQuantileInvertsProperty(t *testing.T) {
	f := func(raw float64) bool {
		p := math.Mod(math.Abs(raw), 1)
		if p == 0 {
			p = 0.5
		}
		return almostEqual(NormalCDF(NormalQuantile(p)), p, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: CDF is symmetric, Φ(-x) = 1 - Φ(x).
func TestNormalCDFSymmetryProperty(t *testing.T) {
	f := func(raw float64) bool {
		x := math.Mod(raw, 10)
		return almostEqual(NormalCDF(-x), 1-NormalCDF(x), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestZCritical(t *testing.T) {
	if got := ZCritical(0.05); !almostEqual(got, 1.959963984540054, 1e-8) {
		t.Errorf("ZCritical(0.05) = %v", got)
	}
	if got := ZCritical(0.01); !almostEqual(got, 2.5758293035489004, 1e-8) {
		t.Errorf("ZCritical(0.01) = %v", got)
	}
	if !math.IsInf(ZCritical(0), 1) {
		t.Error("ZCritical(0) should be +Inf")
	}
	if ZCritical(1) != 0 {
		t.Error("ZCritical(1) should be 0")
	}
}
