package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestMannWhitneySeparatedSamples(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	y := []float64{11, 12, 13, 14, 15, 16, 17, 18}
	res := MannWhitney(x, y)
	if res.U != 0 {
		t.Errorf("U = %v, want 0 (completely separated)", res.U)
	}
	if res.P > 0.01 {
		t.Errorf("p = %v, want < 0.01 for separated samples", res.P)
	}
}

func TestMannWhitneyIdenticalSamples(t *testing.T) {
	x := []float64{5, 5, 5, 5}
	y := []float64{5, 5, 5, 5}
	res := MannWhitney(x, y)
	if res.P != 1 {
		t.Errorf("p = %v, want 1 for identical constant samples", res.P)
	}
}

func TestMannWhitneySameDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, 60)
	y := make([]float64, 60)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	res := MannWhitney(x, y)
	if res.P < 0.01 {
		t.Errorf("p = %v; same-distribution samples should rarely be significant", res.P)
	}
}

func TestMannWhitneySymmetry(t *testing.T) {
	x := []float64{1.2, 3.4, 2.2, 5.1, 0.3}
	y := []float64{2.5, 4.4, 6.1, 1.1}
	rxy := MannWhitney(x, y)
	ryx := MannWhitney(y, x)
	if !almostEqual(rxy.P, ryx.P, 1e-12) {
		t.Errorf("p not symmetric: %v vs %v", rxy.P, ryx.P)
	}
	if !almostEqual(rxy.Z, -ryx.Z, 1e-12) {
		t.Errorf("z not antisymmetric: %v vs %v", rxy.Z, ryx.Z)
	}
}

func TestMannWhitneyKnownValue(t *testing.T) {
	// scipy.stats.mannwhitneyu([1,2,3],[4,5,6], use_continuity=True,
	// alternative='two-sided') -> U=0, p=0.0808556.
	res := MannWhitney([]float64{1, 2, 3}, []float64{4, 5, 6})
	if res.U != 0 {
		t.Errorf("U = %v, want 0", res.U)
	}
	if !almostEqual(res.P, 0.08085562747562012, 1e-6) {
		t.Errorf("p = %v, want 0.0808556", res.P)
	}
}

func TestMannWhitneyTies(t *testing.T) {
	// Heavy ties: correction should keep variance finite and p in range.
	x := []float64{1, 1, 1, 2, 2}
	y := []float64{1, 2, 2, 2, 3}
	res := MannWhitney(x, y)
	if math.IsNaN(res.P) || res.P <= 0 || res.P > 1 {
		t.Errorf("p = %v out of range with ties", res.P)
	}
}

func TestMannWhitneyEmpty(t *testing.T) {
	res := MannWhitney(nil, []float64{1})
	if !math.IsNaN(res.P) {
		t.Error("empty sample should yield NaN p")
	}
}
