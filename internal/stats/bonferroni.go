package stats

// BonferroniSchedule computes the per-level significance thresholds used by
// STUCCO-style contrast set miners (Bay & Pazzani 2001): the level-l cutoff
// is
//
//	α_l = min(α / |C_l|, α_{l-1})
//
// where |C_l| is the number of candidate patterns tested at level l. The
// schedule is monotonically non-increasing, which keeps the family-wise
// error rate below α while testing progressively larger pattern spaces.
type BonferroniSchedule struct {
	alpha float64
	prev  float64
}

// NewBonferroniSchedule returns a schedule starting from the global
// significance level alpha.
func NewBonferroniSchedule(alpha float64) *BonferroniSchedule {
	return &BonferroniSchedule{alpha: alpha, prev: alpha}
}

// Alpha returns the global (level-0) significance level.
func (s *BonferroniSchedule) Alpha() float64 { return s.alpha }

// LevelAlpha returns the adjusted significance threshold for a level at
// which candidates patterns were tested, and records it so deeper levels
// can never exceed it.
func (s *BonferroniSchedule) LevelAlpha(candidates int) float64 {
	a := s.alpha
	if candidates > 0 {
		a = s.alpha / float64(candidates)
	}
	if a > s.prev {
		a = s.prev
	}
	s.prev = a
	return a
}

// Current returns the most recently issued level threshold.
func (s *BonferroniSchedule) Current() float64 { return s.prev }
