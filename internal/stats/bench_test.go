package stats

import (
	"math/rand"
	"testing"
)

func BenchmarkChiSquare2xK(b *testing.B) {
	count := []int{340, 120}
	size := []int{1000, 800}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ChiSquare2xK(count, size); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChiSquareQuantile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ChiSquareQuantile(0.95, 1)
	}
}

func BenchmarkFisherExact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		FisherExact22(12, 48, 30, 25)
	}
}

func BenchmarkNormalQuantile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		NormalQuantile(0.975)
	}
}

func BenchmarkMannWhitney(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 100)
	y := make([]float64, 100)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64() + 0.3
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MannWhitney(x, y)
	}
}

func BenchmarkGammaIncLower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		GammaIncLower(0.5, 1.92)
	}
}
