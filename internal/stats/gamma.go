package stats

import (
	"math"
)

// maxIter bounds the series / continued-fraction loops in the incomplete
// gamma evaluation. Convergence is typically reached in well under 100
// iterations for the argument ranges produced by chi-square tests.
const maxIter = 500

// epsRel is the relative accuracy target for the incomplete gamma series.
const epsRel = 1e-14

// GammaIncLower returns the regularized lower incomplete gamma function
// P(a, x) = γ(a, x) / Γ(a) for a > 0, x >= 0.
//
// For x < a+1 the series representation converges quickly; otherwise the
// continued fraction for Q(a, x) is used and P = 1 - Q. This is the
// classical split from Numerical Recipes §6.2.
func GammaIncLower(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x < 0:
		return math.NaN()
	case x == 0:
		return 0
	case math.IsInf(x, 1):
		return 1
	}
	if x < a+1 {
		return gammaPSeries(a, x)
	}
	return 1 - gammaQContinuedFraction(a, x)
}

// GammaIncUpper returns the regularized upper incomplete gamma function
// Q(a, x) = 1 - P(a, x).
func GammaIncUpper(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x < 0:
		return math.NaN()
	case x == 0:
		return 1
	case math.IsInf(x, 1):
		return 0
	}
	if x < a+1 {
		return 1 - gammaPSeries(a, x)
	}
	return gammaQContinuedFraction(a, x)
}

// gammaPSeries evaluates P(a,x) by its power series, valid for x < a+1.
func gammaPSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*epsRel {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaQContinuedFraction evaluates Q(a,x) by the Lentz continued fraction,
// valid for x >= a+1.
func gammaQContinuedFraction(a, x float64) float64 {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < epsRel {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// ChiSquareCDF returns P(X <= x) for a chi-square distribution with df
// degrees of freedom.
func ChiSquareCDF(x float64, df int) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if x <= 0 {
		return 0
	}
	return GammaIncLower(float64(df)/2, x/2)
}

// ChiSquareSurvival returns the upper tail P(X > x) for a chi-square
// distribution with df degrees of freedom — the p-value of an observed
// chi-square statistic x.
func ChiSquareSurvival(x float64, df int) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if x <= 0 {
		return 1
	}
	return GammaIncUpper(float64(df)/2, x/2)
}

// ChiSquareQuantile returns the x such that ChiSquareCDF(x, df) = p, found
// by bisection. It is used for the chi-square optimistic-estimate bound
// (prune when even the best achievable statistic cannot reach the critical
// value at the current significance level).
func ChiSquareQuantile(p float64, df int) float64 {
	if df <= 0 || p < 0 || p > 1 || math.IsNaN(p) {
		return math.NaN()
	}
	if p == 0 {
		return 0
	}
	if p == 1 {
		return math.Inf(1)
	}
	lo, hi := 0.0, float64(df)
	for ChiSquareCDF(hi, df) < p {
		hi *= 2
		if hi > 1e12 {
			break
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if ChiSquareCDF(mid, df) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+hi) {
			break
		}
	}
	return (lo + hi) / 2
}
