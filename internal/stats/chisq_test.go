package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestChiSquareTableKnown(t *testing.T) {
	// Classic 2x2 example: observed [[10, 20], [30, 40]].
	// Margins: rows 30/70, cols 40/60, n=100; expected [[12,18],[28,42]].
	// chi2 = 4/12 + 4/18 + 4/28 + 4/42 = 0.7936507936...
	res, err := ChiSquareTable([][]float64{{10, 20}, {30, 40}})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.Statistic, 0.7936507936507936, 1e-12) {
		t.Errorf("statistic = %v", res.Statistic)
	}
	if res.DF != 1 {
		t.Errorf("df = %d, want 1", res.DF)
	}
	// For df=1, p = erfc(sqrt(stat/2)).
	wantP := math.Erfc(math.Sqrt(res.Statistic / 2))
	if !almostEqual(res.P, wantP, 1e-12) {
		t.Errorf("p = %v, want %v", res.P, wantP)
	}
	if !almostEqual(res.MinExpected, 12, 1e-12) {
		t.Errorf("minExpected = %v, want 12", res.MinExpected)
	}
}

func TestChiSquareTableIndependent(t *testing.T) {
	// Perfectly proportional table: statistic exactly 0.
	res, err := ChiSquareTable([][]float64{{10, 20}, {20, 40}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Statistic != 0 {
		t.Errorf("statistic = %v, want 0", res.Statistic)
	}
	if res.Significant(0.05) {
		t.Error("independent table should not be significant")
	}
}

func TestChiSquareTableErrors(t *testing.T) {
	if _, err := ChiSquareTable([][]float64{{1, 2}}); err == nil {
		t.Error("single row should error")
	}
	if _, err := ChiSquareTable([][]float64{{0, 0}, {1, 2}}); err == nil {
		t.Error("zero row margin should error")
	}
	if _, err := ChiSquareTable([][]float64{{0, 1}, {0, 2}}); err == nil {
		t.Error("zero column margin should error")
	}
	if _, err := ChiSquareTable([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged table should error")
	}
	if _, err := ChiSquareTable([][]float64{{-1, 2}, {3, 4}}); err == nil {
		t.Error("negative count should error")
	}
}

func TestChiSquare2xK(t *testing.T) {
	res, err := ChiSquare2xK([]int{10, 30}, []int{30, 70})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.Statistic, 0.7936507936507936, 1e-12) {
		t.Errorf("statistic = %v", res.Statistic)
	}
	if _, err := ChiSquare2xK([]int{5}, []int{10}); err == nil {
		t.Error("single group should error")
	}
	if _, err := ChiSquare2xK([]int{11}, []int{10, 10}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := ChiSquare2xK([]int{11, 0}, []int{10, 10}); err == nil {
		t.Error("count > size should error")
	}
}

// Property: the chi-square statistic is non-negative and scaling all counts
// by an integer factor scales the statistic by the same factor.
func TestChiSquareScalingProperty(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		obs := [][]float64{
			{float64(a) + 1, float64(b) + 1},
			{float64(c) + 1, float64(d) + 1},
		}
		r1, err1 := ChiSquareTable(obs)
		if err1 != nil {
			return true
		}
		scaled := [][]float64{
			{3 * obs[0][0], 3 * obs[0][1]},
			{3 * obs[1][0], 3 * obs[1][1]},
		}
		r3, err3 := ChiSquareTable(scaled)
		if err3 != nil {
			return false
		}
		return r1.Statistic >= 0 &&
			almostEqual(r3.Statistic, 3*r1.Statistic, 1e-6*(1+r1.Statistic))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: the optimistic bound dominates the statistic of every
// "specialization" (per-group counts shrunk arbitrarily).
func TestChiSquareOptimisticAdmissible(t *testing.T) {
	f := func(c1, c2, s1Extra, s2Extra, k1, k2 uint8) bool {
		size := []int{int(c1) + int(s1Extra) + 1, int(c2) + int(s2Extra) + 1}
		count := []int{int(c1), int(c2)}
		bound := ChiSquareOptimistic(count, size)
		// A specialization keeps a subset of matching rows in each group.
		sub := []int{int(k1) % (count[0] + 1), int(k2) % (count[1] + 1)}
		res, err := ChiSquare2xK(sub, size)
		if err != nil {
			return true
		}
		return res.Statistic <= bound+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestChiSquareOptimisticZeroCounts(t *testing.T) {
	if got := ChiSquareOptimistic([]int{0, 0}, []int{10, 10}); got != 0 {
		t.Errorf("bound with zero counts = %v, want 0", got)
	}
}

func TestChiSquareSurvivalInvalidDF(t *testing.T) {
	if !math.IsNaN(ChiSquareSurvival(1, 0)) {
		t.Error("df=0 should yield NaN")
	}
}

// TestSignificantBoundary pins the NaN/boundary semantics of the
// significance predicate: only a definite P < alpha reads as significant.
// P == alpha and P = NaN (undecidable) must both read as NOT significant —
// every caller-side gate in core mirrors this `!(p < alpha)` shape, so a
// regression here would let degenerate tables admit patterns.
func TestSignificantBoundary(t *testing.T) {
	cases := []struct {
		name string
		p    float64
		want bool
	}{
		{"well below", 0.01, true},
		{"just below", math.Nextafter(0.05, 0), true},
		{"exactly alpha", 0.05, false},
		{"above", 0.06, false},
		{"NaN is not significant", math.NaN(), false},
		{"+Inf is not significant", math.Inf(1), false},
	}
	for _, tc := range cases {
		r := ChiSquareResult{P: tc.p}
		if got := r.Significant(0.05); got != tc.want {
			t.Errorf("%s: Significant(0.05) with P=%v = %v, want %v",
				tc.name, tc.p, got, tc.want)
		}
	}
}
