package stats

import "testing"

func TestBonferroniScheduleMonotone(t *testing.T) {
	s := NewBonferroniSchedule(0.05)
	if s.Alpha() != 0.05 {
		t.Errorf("Alpha = %v", s.Alpha())
	}
	a1 := s.LevelAlpha(10) // 0.005
	if !almostEqual(a1, 0.005, 1e-15) {
		t.Errorf("level 1 alpha = %v, want 0.005", a1)
	}
	a2 := s.LevelAlpha(2) // 0.025 but clamped to 0.005
	if a2 != a1 {
		t.Errorf("level 2 alpha = %v, should be clamped to %v", a2, a1)
	}
	a3 := s.LevelAlpha(1000)
	if a3 >= a2 {
		t.Errorf("level 3 alpha = %v, should shrink below %v", a3, a2)
	}
	if s.Current() != a3 {
		t.Errorf("Current = %v, want %v", s.Current(), a3)
	}
}

func TestBonferroniZeroCandidates(t *testing.T) {
	s := NewBonferroniSchedule(0.05)
	if got := s.LevelAlpha(0); got != 0.05 {
		t.Errorf("zero candidates should keep alpha, got %v", got)
	}
}
