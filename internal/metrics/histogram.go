package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// numBuckets covers durations from <1ns up to ~9 hours in log2 steps:
// bucket i counts observations in [2^(i-1), 2^i) nanoseconds (bucket 0
// is <1ns, the last bucket is open-ended).
const numBuckets = 45

// Histogram is a lock-free log2-bucketed duration histogram. The zero
// value is ready to use; it may be updated from any number of goroutines.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	total   atomic.Int64
}

// bucketIndex maps a duration to its log2 bucket.
func bucketIndex(d time.Duration) int {
	n := int64(d)
	if n <= 0 {
		return 0
	}
	idx := bits.Len64(uint64(n)) // [2^(idx-1), 2^idx)
	if idx >= numBuckets {
		idx = numBuckets - 1
	}
	return idx
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.buckets[bucketIndex(d)].Add(1)
	h.count.Add(1)
	if n := int64(d); n > 0 {
		h.total.Add(n)
	}
}

// BucketCount is one non-empty histogram bucket: observations with
// durations in [Lo, Hi) nanoseconds.
type BucketCount struct {
	LoNanos int64 `json:"lo_ns"`
	HiNanos int64 `json:"hi_ns"` // 0 = open-ended (last bucket)
	Count   int64 `json:"count"`
}

// HistogramSnapshot is a copy of a histogram's state. Only non-empty
// buckets appear, in ascending duration order, keeping the JSON compact
// and its shape deterministic.
type HistogramSnapshot struct {
	Count      int64         `json:"count"`
	TotalNanos int64         `json:"total_ns"`
	Buckets    []BucketCount `json:"buckets,omitempty"`
}

// Mean returns the mean observed duration, or 0 when empty.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.TotalNanos / s.Count)
}

// CumulativeBucket is one Prometheus-style histogram bucket: Count
// observations had durations ≤ HiNanos.
type CumulativeBucket struct {
	HiNanos int64
	Count   int64
}

// Cumulative converts the sparse per-bucket counts into the cumulative
// (upper bound, running count) pairs text-format exposition needs.
// Counts are non-decreasing by construction; observations that landed in
// the open-ended last bucket are only part of the +Inf total, which is
// the snapshot's Count and is not included here.
func (s HistogramSnapshot) Cumulative() []CumulativeBucket {
	out := make([]CumulativeBucket, 0, len(s.Buckets))
	var running int64
	for _, b := range s.Buckets {
		if b.HiNanos == 0 {
			// Open-ended terminal bucket: its observations appear only in
			// the +Inf bucket the encoder appends.
			continue
		}
		running += b.Count
		out = append(out, CumulativeBucket{HiNanos: b.HiNanos, Count: running})
	}
	return out
}

// Snapshot copies the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:      h.count.Load(),
		TotalNanos: h.total.Load(),
	}
	for i := 0; i < numBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		b := BucketCount{Count: c}
		if i > 0 {
			b.LoNanos = int64(1) << uint(i-1)
		}
		if i < numBuckets-1 {
			b.HiNanos = int64(1) << uint(i)
		}
		s.Buckets = append(s.Buckets, b)
	}
	return s
}
