// Package metrics is the low-overhead instrumentation substrate for the
// mining pipeline: atomic counters, monotonic timers and per-level
// aggregates threaded through the hot path of core.Mine, the SDAD-CS
// recursion, the top-k threshold and the stream monitor.
//
// The central type is Recorder. A nil *Recorder is a valid, disabled
// recorder: every method nil-checks its receiver and returns immediately,
// so the default (uninstrumented) mining path pays a single predictable
// branch per call site and allocates nothing — see
// TestDisabledRecorderAllocs and the paired BenchmarkMineMetrics.
//
// All mutation is lock-free (sync/atomic); a Recorder may be shared by any
// number of worker goroutines. Snapshot() produces a consistent-enough,
// deterministic-shaped copy for JSON export: field order is fixed, no maps
// are used, and levels/buckets appear in index order, so two snapshots of
// the same state marshal to identical bytes.
package metrics

import (
	"math"
	"sync/atomic"
	"time"
)

// PruneRule enumerates the instrumented §4.3 search-space reduction
// strategies. The order matches core.Pruning's field order.
type PruneRule int

// Instrumented pruning rules.
const (
	// PruneMinDeviation counts minimum-deviation-size cuts (no group
	// reaches δ).
	PruneMinDeviation PruneRule = iota
	// PruneExpectedCount counts expected-cell-count<5 cuts.
	PruneExpectedCount
	// PruneChiSquareOE counts chi-square optimistic-estimate recursion
	// stops.
	PruneChiSquareOE
	// PruneRedundancyCLT counts CLT redundancy cuts (Eq. 14–16).
	PruneRedundancyCLT
	// PrunePureSpace counts PR=1 extension stops.
	PrunePureSpace
	// PruneLookupTable counts spaces cut because a subset was already
	// recorded prunable (§4.1).
	PruneLookupTable
	// PruneOptimisticEstimate counts SDAD-CS recursions skipped because
	// the optimistic estimate (Eq. 5–11) cannot beat the top-k threshold.
	PruneOptimisticEstimate

	numPruneRules
)

// String names the rule (stable identifiers used in the JSON snapshot).
func (r PruneRule) String() string {
	switch r {
	case PruneMinDeviation:
		return "min_deviation"
	case PruneExpectedCount:
		return "expected_count"
	case PruneChiSquareOE:
		return "chisq_oe"
	case PruneRedundancyCLT:
		return "redundancy_clt"
	case PrunePureSpace:
		return "pure_space"
	case PruneLookupTable:
		return "lookup_table"
	case PruneOptimisticEstimate:
		return "optimistic_estimate"
	default:
		return "unknown"
	}
}

// maxLevels bounds the per-level aggregates. Combination-search depth is
// cfg.MaxDepth (default 5, paper's stunted tree); deeper levels clamp into
// the last slot rather than allocate.
const maxLevels = 16

// levelCounters aggregates one search level. All fields are atomics so
// parallel per-level workers can report without locks.
type levelCounters struct {
	nodes     atomic.Int64 // frontier nodes evaluated
	survivors atomic.Int64 // nodes whose children will be explored
	contrasts atomic.Int64 // contrasts emitted by the level
	wallNanos atomic.Int64 // wall time of the level (one observation)
	evalNanos atomic.Int64 // summed per-node evaluation time (CPU-ish)
	workers   atomic.Int64 // goroutine fan-out used for the level
}

// timer accumulates duration observations: count, total, min, max. The
// minimum is stored offset by one (0 = no observation yet) so the zero
// value works without initialization and first-observation races resolve
// through plain CAS loops.
type timer struct {
	count      atomic.Int64
	total      atomic.Int64
	minPlusOne atomic.Int64
	maxNanos   atomic.Int64
}

func (t *timer) observe(d time.Duration) {
	n := int64(d)
	if n < 0 {
		n = 0
	}
	t.count.Add(1)
	t.total.Add(n)
	for {
		cur := t.minPlusOne.Load()
		if cur != 0 && cur <= n+1 {
			break
		}
		if t.minPlusOne.CompareAndSwap(cur, n+1) {
			break
		}
	}
	for {
		cur := t.maxNanos.Load()
		if cur >= n {
			break
		}
		if t.maxNanos.CompareAndSwap(cur, n) {
			break
		}
	}
}

func (t *timer) snapshot() TimerSnapshot {
	s := TimerSnapshot{
		Count:      t.count.Load(),
		TotalNanos: t.total.Load(),
		MaxNanos:   t.maxNanos.Load(),
	}
	if m := t.minPlusOne.Load(); m > 0 {
		s.MinNanos = m - 1
	}
	return s
}

// Recorder is the concurrency-safe instrumentation sink. The zero value is
// ready to use; New also stamps the start time. A nil *Recorder is the
// disabled recorder: all methods no-op after a single pointer check.
type Recorder struct {
	start time.Time

	prune  [numPruneRules]atomic.Int64
	levels [maxLevels]levelCounters
	// maxLevel tracks the deepest level observed (1-based; 0 = none).
	maxLevel atomic.Int64

	// SDAD-CS discretization counters.
	sdadCalls     atomic.Int64
	splits        atomic.Int64 // median splits performed
	boxes         atomic.Int64 // partition boxes explored (find_combs)
	mergeAttempts atomic.Int64
	mergeOps      atomic.Int64

	// Bitmap counting-engine counters (core.CountingBitmap path).
	bitmapBuilds       atomic.Int64 // bitmaps constructed for the dataset-cached index
	bitmapIndexReuses  atomic.Int64 // Mine calls that reused an already-built index
	bitmapAndOps       atomic.Int64 // cover ∧ value-bitmap intersections
	bitmapPopcounts    atomic.Int64 // popcount passes (group counts, cover sizes)
	bitmapMaterialized atomic.Int64 // lazy cover → row-slice materializations

	// Cover-arena allocation discipline (one observation per Mine call).
	arenaFresh    atomic.Int64 // covers allocated because the free list was empty
	arenaReused   atomic.Int64 // covers recycled from the free list
	arenaReleased atomic.Int64 // covers returned to the free list

	// Top-k threshold dynamics.
	thresholdUpdates atomic.Int64
	thresholdBits    atomic.Uint64 // float64 bits of the latest threshold

	// Per-node evaluation latency histogram (log2 ns buckets).
	nodeEval Histogram

	// Stream monitor window re-mine latency.
	remine timer

	// Incremental re-mine gate accounting (core.MineIncremental): frontier
	// nodes carried forward vs re-evaluated, dirty nodes past level 1
	// (re-descended subtree members), dirty pattern-bearing nodes whose
	// worst-case support shift stayed inside the Eq. 14–16 CLT band, and
	// the per-mine incremental/full mode tally.
	gateStable      atomic.Int64
	gateDirty       atomic.Int64
	gateRedescended atomic.Int64
	gateNearCross   atomic.Int64
	reminesInc      atomic.Int64
	reminesFull     atomic.Int64

	// Trace-volume counters (fed by core.Mine from trace.Tracer.Stats).
	traceEmitted   atomic.Uint64
	traceDropped   atomic.Uint64
	traceHighWater atomic.Int64
}

// New returns an enabled recorder with its uptime clock started.
func New() *Recorder {
	return &Recorder{start: time.Now()}
}

// Enabled reports whether the recorder collects anything. It is the guard
// call sites use to skip clock reads on the disabled path.
func (r *Recorder) Enabled() bool { return r != nil }

// PruneHit counts one firing of a pruning rule.
func (r *Recorder) PruneHit(rule PruneRule) {
	if r == nil {
		return
	}
	if rule < 0 || rule >= numPruneRules {
		return
	}
	r.prune[rule].Add(1)
}

// levelSlot clamps a 1-based level into the aggregate array.
func levelSlot(level int) int {
	if level < 1 {
		level = 1
	}
	if level > maxLevels {
		level = maxLevels
	}
	return level - 1
}

// LevelObserve records one completed search level: frontier size, survivor
// count, contrasts emitted, worker fan-out and wall time.
func (r *Recorder) LevelObserve(level, nodes, survivors, contrasts, workers int, wall time.Duration) {
	if r == nil {
		return
	}
	lc := &r.levels[levelSlot(level)]
	lc.nodes.Add(int64(nodes))
	lc.survivors.Add(int64(survivors))
	lc.contrasts.Add(int64(contrasts))
	lc.wallNanos.Add(int64(wall))
	if w := int64(workers); w > lc.workers.Load() {
		lc.workers.Store(w)
	}
	r.observeLevelDepth(level)
}

// observeLevelDepth raises maxLevel to the given level (CAS loop).
func (r *Recorder) observeLevelDepth(level int) {
	for {
		cur := r.maxLevel.Load()
		if int64(level) <= cur {
			return
		}
		if r.maxLevel.CompareAndSwap(cur, int64(level)) {
			return
		}
	}
}

// NodeEval records one node evaluation at a level: its duration feeds both
// the level's summed evaluation time and the global latency histogram.
// Called concurrently by per-level workers.
func (r *Recorder) NodeEval(level int, d time.Duration) {
	if r == nil {
		return
	}
	r.levels[levelSlot(level)].evalNanos.Add(int64(d))
	r.nodeEval.Observe(d)
	r.observeLevelDepth(level)
}

// SDADCall counts one SDAD-CS (Algorithm 1) invocation.
func (r *Recorder) SDADCall() {
	if r == nil {
		return
	}
	r.sdadCalls.Add(1)
}

// Splits counts median splits performed by one partition step.
func (r *Recorder) Splits(n int) {
	if r == nil {
		return
	}
	r.splits.Add(int64(n))
}

// BoxesExplored counts partition boxes formed by find_combs.
func (r *Recorder) BoxesExplored(n int) {
	if r == nil {
		return
	}
	r.boxes.Add(int64(n))
}

// MergeAttempt counts one tryMerge call of the bottom-up phase.
func (r *Recorder) MergeAttempt() {
	if r == nil {
		return
	}
	r.mergeAttempts.Add(1)
}

// MergeOp counts one successful space merge.
func (r *Recorder) MergeOp() {
	if r == nil {
		return
	}
	r.mergeOps.Add(1)
}

// BitmapBuilds counts bitmaps constructed while building a per-Mine value
// index (one per categorical value and per group).
func (r *Recorder) BitmapBuilds(n int) {
	if r == nil {
		return
	}
	r.bitmapBuilds.Add(int64(n))
}

// BitmapIndexReuse counts one Mine call that found the dataset's index
// already built and skipped construction entirely — the reuse signal the
// index-caching tests assert against BitmapBuilds.
func (r *Recorder) BitmapIndexReuse() {
	if r == nil {
		return
	}
	r.bitmapIndexReuses.Add(1)
}

// BitmapAnd counts one cover ∧ value-bitmap intersection.
func (r *Recorder) BitmapAnd() {
	if r == nil {
		return
	}
	r.bitmapAndOps.Add(1)
}

// BitmapAnds counts n cover ∧ value-bitmap intersections at once (the
// batched sibling kernel performs one fused AND per sibling code).
func (r *Recorder) BitmapAnds(n int) {
	if r == nil {
		return
	}
	r.bitmapAndOps.Add(int64(n))
}

// ArenaObserve accumulates one Mine call's cover-arena counters: covers
// freshly allocated, covers recycled from the free list, and covers
// released back to it.
func (r *Recorder) ArenaObserve(fresh, reused, released int64) {
	if r == nil {
		return
	}
	r.arenaFresh.Add(fresh)
	r.arenaReused.Add(reused)
	r.arenaReleased.Add(released)
}

// BitmapPopcounts counts n popcount passes (per-group support counts and
// cover cardinalities).
func (r *Recorder) BitmapPopcounts(n int) {
	if r == nil {
		return
	}
	r.bitmapPopcounts.Add(int64(n))
}

// BitmapMaterialize counts one lazy bitmap-cover → row-slice
// materialization (the SDAD-CS fallback: box interiors need raw row indices
// for median computation).
func (r *Recorder) BitmapMaterialize() {
	if r == nil {
		return
	}
	r.bitmapMaterialized.Add(1)
}

// ThresholdUpdate records a top-k admission-threshold change.
func (r *Recorder) ThresholdUpdate(v float64) {
	if r == nil {
		return
	}
	r.thresholdUpdates.Add(1)
	r.thresholdBits.Store(math.Float64bits(v))
}

// TraceVolume records the decision-trace volume counters: events offered,
// events dropped on buffer overflow, and the buffer high-water mark.
// Emitted/dropped are cumulative tracer-lifetime totals, so Store (not Add)
// semantics apply; the high-water mark only ratchets upward.
func (r *Recorder) TraceVolume(emitted, dropped uint64, highWater int) {
	if r == nil {
		return
	}
	r.traceEmitted.Store(emitted)
	r.traceDropped.Store(dropped)
	for {
		cur := r.traceHighWater.Load()
		if int64(highWater) <= cur {
			return
		}
		if r.traceHighWater.CompareAndSwap(cur, int64(highWater)) {
			return
		}
	}
}

// RemineObserve records one stream-monitor window re-mine latency.
func (r *Recorder) RemineObserve(d time.Duration) {
	if r == nil {
		return
	}
	r.remine.observe(d)
}

// RemineGate records one incremental re-mine's gate partition: frontier
// nodes replayed from the previous window (stable), nodes re-evaluated
// (dirty), the dirty subset past level 1 (re-descended), and dirty
// pattern-bearing nodes whose change bound stayed inside the CLT band
// (near-crossings).
func (r *Recorder) RemineGate(stable, dirty, redescended, nearCrossings int64) {
	if r == nil {
		return
	}
	r.gateStable.Add(stable)
	r.gateDirty.Add(dirty)
	r.gateRedescended.Add(redescended)
	r.gateNearCross.Add(nearCrossings)
}

// RemineMode counts one stream re-mine as incremental or full.
func (r *Recorder) RemineMode(incremental bool) {
	if r == nil {
		return
	}
	if incremental {
		r.reminesInc.Add(1)
	} else {
		r.reminesFull.Add(1)
	}
}

// PruneCount is one rule's hit count in a snapshot.
type PruneCount struct {
	Rule string `json:"rule"`
	Hits int64  `json:"hits"`
}

// LevelSnapshot is one search level's aggregates.
type LevelSnapshot struct {
	Level     int   `json:"level"`
	Nodes     int64 `json:"nodes"`
	Survivors int64 `json:"survivors"`
	Contrasts int64 `json:"contrasts"`
	WallNanos int64 `json:"wall_ns"`
	EvalNanos int64 `json:"eval_ns"`
	Workers   int64 `json:"workers"`
}

// TimerSnapshot summarizes a duration accumulator.
type TimerSnapshot struct {
	Count      int64 `json:"count"`
	TotalNanos int64 `json:"total_ns"`
	MinNanos   int64 `json:"min_ns"`
	MaxNanos   int64 `json:"max_ns"`
}

// Mean returns the mean observation, or 0 when empty.
func (t TimerSnapshot) Mean() time.Duration {
	if t.Count == 0 {
		return 0
	}
	return time.Duration(t.TotalNanos / t.Count)
}

// Snapshot is a point-in-time copy of a Recorder, shaped for deterministic
// JSON marshalling (fixed field order, no maps, index-ordered slices).
type Snapshot struct {
	UptimeNanos       int64             `json:"uptime_ns"`
	Prune             []PruneCount      `json:"prune"`
	Levels            []LevelSnapshot   `json:"levels"`
	SDADCalls         int64             `json:"sdad_calls"`
	Splits            int64             `json:"splits"`
	BoxesExplored     int64             `json:"boxes_explored"`
	MergeAttempts     int64             `json:"merge_attempts"`
	MergeOps          int64             `json:"merge_ops"`
	BitmapBuilds      int64             `json:"bitmap_builds"`
	BitmapIndexReuses int64             `json:"bitmap_index_reuses"`
	BitmapAndOps      int64             `json:"bitmap_and_ops"`
	BitmapPopcounts   int64             `json:"bitmap_popcounts"`
	BitmapLazyRows    int64             `json:"bitmap_lazy_rows"`
	ArenaFresh        int64             `json:"arena_fresh"`
	ArenaReused       int64             `json:"arena_reused"`
	ArenaReleased     int64             `json:"arena_released"`
	ThresholdUpdates  int64             `json:"threshold_updates"`
	Threshold         float64           `json:"threshold"`
	NodeEval          HistogramSnapshot `json:"node_eval"`
	Remine            TimerSnapshot     `json:"remine"`
	GateStableNodes   int64             `json:"gate_stable_nodes"`
	GateDirtyNodes    int64             `json:"gate_dirty_nodes"`
	GateRedescended   int64             `json:"gate_redescended"`
	GateNearCrossings int64             `json:"gate_near_crossings"`
	ReminesInc        int64             `json:"remines_incremental"`
	ReminesFull       int64             `json:"remines_full"`
	TraceEvents       uint64            `json:"trace_events"`
	TraceDropped      uint64            `json:"trace_dropped"`
	TraceHighWater    int64             `json:"trace_high_water"`
}

// PruneHits returns the hit count of a rule in the snapshot (0 when the
// rule never fired or the snapshot is empty).
func (s *Snapshot) PruneHits(rule PruneRule) int64 {
	name := rule.String()
	for _, p := range s.Prune {
		if p.Rule == name {
			return p.Hits
		}
	}
	return 0
}

// TotalPruned sums all rule hits.
func (s *Snapshot) TotalPruned() int64 {
	var n int64
	for _, p := range s.Prune {
		n += p.Hits
	}
	return n
}

// Snapshot copies the recorder's state. A nil recorder yields the zero
// snapshot (empty slices omitted), so callers can snapshot unconditionally.
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	s := Snapshot{
		SDADCalls:         r.sdadCalls.Load(),
		Splits:            r.splits.Load(),
		BoxesExplored:     r.boxes.Load(),
		MergeAttempts:     r.mergeAttempts.Load(),
		MergeOps:          r.mergeOps.Load(),
		BitmapBuilds:      r.bitmapBuilds.Load(),
		BitmapIndexReuses: r.bitmapIndexReuses.Load(),
		BitmapAndOps:      r.bitmapAndOps.Load(),
		BitmapPopcounts:   r.bitmapPopcounts.Load(),
		BitmapLazyRows:    r.bitmapMaterialized.Load(),
		ArenaFresh:        r.arenaFresh.Load(),
		ArenaReused:       r.arenaReused.Load(),
		ArenaReleased:     r.arenaReleased.Load(),
		ThresholdUpdates:  r.thresholdUpdates.Load(),
		Threshold:         math.Float64frombits(r.thresholdBits.Load()),
		NodeEval:          r.nodeEval.Snapshot(),
		Remine:            r.remine.snapshot(),
		GateStableNodes:   r.gateStable.Load(),
		GateDirtyNodes:    r.gateDirty.Load(),
		GateRedescended:   r.gateRedescended.Load(),
		GateNearCrossings: r.gateNearCross.Load(),
		ReminesInc:        r.reminesInc.Load(),
		ReminesFull:       r.reminesFull.Load(),
		TraceEvents:       r.traceEmitted.Load(),
		TraceDropped:      r.traceDropped.Load(),
		TraceHighWater:    r.traceHighWater.Load(),
	}
	if !r.start.IsZero() {
		s.UptimeNanos = int64(time.Since(r.start))
	}
	s.Prune = make([]PruneCount, numPruneRules)
	for i := PruneRule(0); i < numPruneRules; i++ {
		s.Prune[i] = PruneCount{Rule: i.String(), Hits: r.prune[i].Load()}
	}
	depth := int(r.maxLevel.Load())
	if depth > maxLevels {
		depth = maxLevels
	}
	s.Levels = make([]LevelSnapshot, 0, depth)
	for l := 1; l <= depth; l++ {
		lc := &r.levels[l-1]
		s.Levels = append(s.Levels, LevelSnapshot{
			Level:     l,
			Nodes:     lc.nodes.Load(),
			Survivors: lc.survivors.Load(),
			Contrasts: lc.contrasts.Load(),
			WallNanos: lc.wallNanos.Load(),
			EvalNanos: lc.evalNanos.Load(),
			Workers:   lc.workers.Load(),
		})
	}
	return s
}
