package metrics

import (
	"bytes"
	"encoding/json"
	"expvar"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestConcurrentIncrements hammers every mutation path from many
// goroutines and checks exact totals. Run under -race in CI: the recorder
// must be lock-free-correct, since parallel per-level mining workers share
// one instance.
func TestConcurrentIncrements(t *testing.T) {
	r := New()
	const workers = 16
	const perWorker = 1000

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.PruneHit(PruneMinDeviation)
				r.PruneHit(PruneRule(i % int(numPruneRules)))
				r.NodeEval(1+(i%3), time.Duration(i)*time.Microsecond)
				r.SDADCall()
				r.Splits(2)
				r.BoxesExplored(4)
				r.MergeAttempt()
				if i%10 == 0 {
					r.MergeOp()
				}
				r.ThresholdUpdate(float64(i))
				r.RemineObserve(time.Duration(1+i) * time.Millisecond)
			}
		}(w)
	}
	wg.Wait()

	s := r.Snapshot()
	if got := s.PruneHits(PruneMinDeviation); got < workers*perWorker {
		t.Errorf("min_deviation hits = %d, want >= %d", got, workers*perWorker)
	}
	if got := s.TotalPruned(); got != 2*workers*perWorker {
		t.Errorf("total prune hits = %d, want %d", got, 2*workers*perWorker)
	}
	if s.SDADCalls != workers*perWorker {
		t.Errorf("SDADCalls = %d, want %d", s.SDADCalls, workers*perWorker)
	}
	if s.Splits != 2*workers*perWorker {
		t.Errorf("Splits = %d, want %d", s.Splits, 2*workers*perWorker)
	}
	if s.BoxesExplored != 4*workers*perWorker {
		t.Errorf("BoxesExplored = %d, want %d", s.BoxesExplored, 4*workers*perWorker)
	}
	if s.MergeAttempts != workers*perWorker {
		t.Errorf("MergeAttempts = %d, want %d", s.MergeAttempts, workers*perWorker)
	}
	if s.MergeOps != workers*perWorker/10 {
		t.Errorf("MergeOps = %d, want %d", s.MergeOps, workers*perWorker/10)
	}
	if s.ThresholdUpdates != workers*perWorker {
		t.Errorf("ThresholdUpdates = %d, want %d", s.ThresholdUpdates, workers*perWorker)
	}
	if s.NodeEval.Count != workers*perWorker {
		t.Errorf("NodeEval.Count = %d, want %d", s.NodeEval.Count, workers*perWorker)
	}
	if s.Remine.Count != workers*perWorker {
		t.Errorf("Remine.Count = %d, want %d", s.Remine.Count, workers*perWorker)
	}
	if want := int64(time.Millisecond); s.Remine.MinNanos != want {
		t.Errorf("Remine.MinNanos = %d, want %d", s.Remine.MinNanos, want)
	}
	if want := int64(perWorker) * int64(time.Millisecond); s.Remine.MaxNanos != want {
		t.Errorf("Remine.MaxNanos = %d, want %d", s.Remine.MaxNanos, want)
	}
	// Per-level eval observations land on levels 1..3 only.
	if len(s.Levels) != 3 {
		t.Fatalf("levels = %d, want 3 (deepest observed)", len(s.Levels))
	}
	var evalTotal int64
	for _, l := range s.Levels {
		evalTotal += l.EvalNanos
	}
	if evalTotal != s.NodeEval.TotalNanos {
		t.Errorf("per-level eval sum %d != histogram total %d", evalTotal, s.NodeEval.TotalNanos)
	}
}

// TestSnapshotDeterminism: the same recorder state must marshal to
// identical bytes — no map iteration, fixed field order.
func TestSnapshotDeterminism(t *testing.T) {
	r := &Recorder{} // zero start time: no uptime jitter between snapshots
	r.PruneHit(PruneChiSquareOE)
	r.PruneHit(PruneLookupTable)
	r.LevelObserve(1, 10, 4, 2, 3, 5*time.Millisecond)
	r.LevelObserve(2, 40, 0, 1, 3, 9*time.Millisecond)
	r.NodeEval(1, 123*time.Microsecond)
	r.ThresholdUpdate(0.42)
	r.RemineObserve(7 * time.Millisecond)

	a, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		b, err := json.Marshal(r.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("snapshot %d differs:\n%s\nvs\n%s", i, a, b)
		}
	}

	var s Snapshot
	if err := json.Unmarshal(a, &s); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if s.Threshold != 0.42 {
		t.Errorf("threshold = %v, want 0.42", s.Threshold)
	}
	if len(s.Levels) != 2 || s.Levels[0].Level != 1 || s.Levels[1].Level != 2 {
		t.Errorf("levels not in index order: %+v", s.Levels)
	}
	if s.Levels[0].Nodes != 10 || s.Levels[0].Survivors != 4 || s.Levels[0].Workers != 3 {
		t.Errorf("level 1 aggregates wrong: %+v", s.Levels[0])
	}
}

// TestDisabledRecorderAllocs: a nil recorder's methods must not allocate —
// the default mining path stays benchmark-neutral.
func TestDisabledRecorderAllocs(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		r.PruneHit(PrunePureSpace)
		r.LevelObserve(1, 10, 5, 1, 2, time.Millisecond)
		r.NodeEval(1, time.Microsecond)
		r.SDADCall()
		r.Splits(3)
		r.BoxesExplored(8)
		r.MergeAttempt()
		r.MergeOp()
		r.ThresholdUpdate(0.5)
		r.RemineObserve(time.Millisecond)
		if r.Enabled() {
			t.Fatal("nil recorder reports enabled")
		}
	})
	if allocs != 0 {
		t.Errorf("disabled recorder allocates %.1f per op, want 0", allocs)
	}
	if got := r.Snapshot(); got.TotalPruned() != 0 || len(got.Levels) != 0 {
		t.Errorf("nil recorder snapshot not empty: %+v", got)
	}
}

// TestEnabledRecorderCounterAllocs: enabled counters are also
// allocation-free (only Snapshot allocates).
func TestEnabledRecorderCounterAllocs(t *testing.T) {
	r := New()
	allocs := testing.AllocsPerRun(1000, func() {
		r.PruneHit(PruneExpectedCount)
		r.NodeEval(2, time.Microsecond)
		r.SDADCall()
		r.ThresholdUpdate(0.5)
	})
	if allocs != 0 {
		t.Errorf("enabled counters allocate %.1f per op, want 0", allocs)
	}
}

func TestLevelClamping(t *testing.T) {
	r := New()
	r.LevelObserve(0, 1, 0, 0, 1, 0)            // clamps to level 1
	r.LevelObserve(maxLevels+5, 7, 0, 0, 1, 0)  // clamps into the last slot
	r.NodeEval(maxLevels+9, 42*time.Nanosecond) // same
	s := r.Snapshot()
	if len(s.Levels) != maxLevels {
		t.Fatalf("levels = %d, want %d (clamped deep level)", len(s.Levels), maxLevels)
	}
	if s.Levels[0].Nodes != 1 {
		t.Errorf("level 1 nodes = %d, want 1", s.Levels[0].Nodes)
	}
	last := s.Levels[maxLevels-1]
	if last.Nodes != 7 || last.EvalNanos != 42 {
		t.Errorf("clamped last level = %+v", last)
	}
}

func TestPruneRuleStrings(t *testing.T) {
	seen := map[string]bool{}
	for i := PruneRule(0); i < numPruneRules; i++ {
		name := i.String()
		if name == "unknown" || name == "" {
			t.Errorf("rule %d has no name", i)
		}
		if seen[name] {
			t.Errorf("duplicate rule name %q", name)
		}
		seen[name] = true
	}
	if PruneRule(99).String() != "unknown" {
		t.Error("out-of-range rule should be unknown")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0) // bucket 0
	h.Observe(1) // [1,2)
	h.Observe(900 * time.Nanosecond)
	h.Observe(900 * time.Nanosecond)
	h.Observe(time.Hour * 100) // far past the last bucket: clamps
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	var sum int64
	for i, b := range s.Buckets {
		if b.Count <= 0 {
			t.Errorf("bucket %d empty but present", i)
		}
		if i > 0 && b.LoNanos <= s.Buckets[i-1].LoNanos {
			t.Errorf("buckets out of order at %d", i)
		}
		sum += b.Count
	}
	if sum != s.Count {
		t.Errorf("bucket sum %d != count %d", sum, s.Count)
	}
	// The two 900ns observations share the [512,1024) bucket.
	found := false
	for _, b := range s.Buckets {
		if b.LoNanos == 512 && b.HiNanos == 1024 && b.Count == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("900ns observations not in [512,1024) bucket: %+v", s.Buckets)
	}
	// Mean is defined and total only counts positive durations.
	if s.Mean() <= 0 {
		t.Errorf("mean = %v, want > 0", s.Mean())
	}
}

func TestTimerSnapshotMean(t *testing.T) {
	var tm timer
	if (TimerSnapshot{}).Mean() != 0 {
		t.Error("empty timer mean should be 0")
	}
	tm.observe(10 * time.Millisecond)
	tm.observe(20 * time.Millisecond)
	s := tm.snapshot()
	if s.Mean() != 15*time.Millisecond {
		t.Errorf("mean = %v, want 15ms", s.Mean())
	}
	if s.MinNanos != int64(10*time.Millisecond) || s.MaxNanos != int64(20*time.Millisecond) {
		t.Errorf("min/max = %d/%d", s.MinNanos, s.MaxNanos)
	}
}

func TestHandlerServesJSON(t *testing.T) {
	r := New()
	r.PruneHit(PruneRedundancyCLT)
	r.LevelObserve(1, 3, 1, 1, 1, time.Millisecond)

	rr := httptest.NewRecorder()
	Handler(r).ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("status = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Errorf("content type = %q", ct)
	}
	var s Snapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &s); err != nil {
		t.Fatalf("body is not snapshot JSON: %v\n%s", err, rr.Body.String())
	}
	if s.PruneHits(PruneRedundancyCLT) != 1 {
		t.Errorf("served snapshot missing prune hit: %+v", s.Prune)
	}
	if s.UptimeNanos <= 0 {
		t.Errorf("uptime = %d, want > 0", s.UptimeNanos)
	}
}

func TestWriteJSONNilRecorder(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("nil recorder JSON invalid: %v", err)
	}
}

func TestPublishIdempotent(t *testing.T) {
	r := New()
	if !Publish("sdadcs_test_metrics", r) {
		t.Error("first Publish must register and report true")
	}
	if expvar.Get("sdadcs_test_metrics") == nil {
		t.Fatal("recorder not visible in the expvar registry")
	}
	// A duplicate name must not panic (expvar.Publish would) and must
	// report false so callers can tell the name was already taken.
	if Publish("sdadcs_test_metrics", New()) {
		t.Error("second Publish under the same name must report false")
	}
	// The registry still serves the first recorder.
	r.PruneHit(PruneMinDeviation)
	var got Snapshot
	if err := json.Unmarshal([]byte(expvar.Get("sdadcs_test_metrics").String()), &got); err != nil {
		t.Fatalf("published snapshot is not JSON: %v", err)
	}
	if got.PruneHits(PruneMinDeviation) != 1 {
		t.Errorf("published var is not the first recorder: %+v", got.Prune)
	}
}

// TestHistogramEdgeDurations pins the bucket boundaries: zero and negative
// durations land in bucket 0, sub-resolution observations count but add
// nothing to the total, and exact powers of two open a new bucket
// (bucketIndex is [2^(i-1), 2^i)).
func TestHistogramEdgeDurations(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-time.Second) // clock skew: counted, not totaled
	s := h.Snapshot()
	if s.Count != 2 || s.TotalNanos != 0 {
		t.Fatalf("count/total = %d/%d, want 2/0", s.Count, s.TotalNanos)
	}
	if len(s.Buckets) != 1 || s.Buckets[0].LoNanos != 0 || s.Buckets[0].HiNanos != 1 {
		t.Fatalf("non-positive durations must share bucket 0: %+v", s.Buckets)
	}
	if s.Mean() != 0 {
		t.Errorf("mean of zero-total histogram = %v, want 0", s.Mean())
	}

	// Power-of-two boundaries: 2^k ns is the first duration of bucket k+1.
	for _, k := range []uint{0, 1, 9, 10, 20} {
		d := time.Duration(int64(1) << k)
		if got, want := bucketIndex(d), int(k)+1; got != want {
			t.Errorf("bucketIndex(2^%d ns) = %d, want %d", k, got, want)
		}
		if got, want := bucketIndex(d-1), int(k); d > 1 && got != want {
			t.Errorf("bucketIndex(2^%d-1 ns) = %d, want %d", k, got, want)
		}
	}
	// 1024ns sits at the bottom of [1024, 2048), not the top of [512, 1024).
	var b Histogram
	b.Observe(1024 * time.Nanosecond)
	bs := b.Snapshot()
	if len(bs.Buckets) != 1 || bs.Buckets[0].LoNanos != 1024 || bs.Buckets[0].HiNanos != 2048 {
		t.Errorf("1024ns bucket = %+v, want [1024,2048)", bs.Buckets)
	}

	// The last bucket is open-ended and absorbs any overflow.
	if got, want := bucketIndex(time.Duration(1)<<62), numBuckets-1; got != want {
		t.Errorf("bucketIndex(2^62 ns) = %d, want clamp to %d", got, want)
	}
}
