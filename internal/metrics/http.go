package metrics

import (
	"encoding/json"
	"expvar"
	"io"
	"net/http"
)

// WriteJSON marshals the recorder's snapshot (indented, expvar-style) to
// w. A nil recorder writes the empty snapshot.
func WriteJSON(w io.Writer, r *Recorder) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Handler serves the recorder's snapshot as JSON — the live endpoint
// cmd/monitor exposes. Safe to query while mining is in progress: the
// snapshot is built from atomic loads.
func Handler(r *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = WriteJSON(w, r)
	})
}

// Publish registers the recorder under the given name in the process-wide
// expvar registry (visible at /debug/vars alongside memstats). expvar
// panics on duplicate names, so when the name is already taken Publish
// leaves the registry untouched and reports false; it reports true when the
// recorder was registered. Callers that re-publish under a fixed name (e.g.
// a restarted monitor in the same process) should treat false as "already
// exported", not as a failure of the recorder itself.
func Publish(name string, r *Recorder) bool {
	if expvar.Get(name) != nil {
		return false
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
	return true
}
