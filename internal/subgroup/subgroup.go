// Package subgroup reimplements the Cortana configuration the paper
// compares against (§5, "Cortana-Interval"): beam search with width 100
// over subgroup descriptions, WRACC as the quality measure (a nominal
// target, one run per group, all subgroups pooled as the contrast set),
// and the "intervals" strategy for numeric attributes — candidate
// conditions are intervals assembled from equal-frequency boundaries,
// including the half-open "(−inf, b]" and "(b, +inf)" forms visible in the
// paper's Table 1 rows.
package subgroup

import (
	"math"
	"sort"

	"sdadcs/internal/dataset"
	"sdadcs/internal/pattern"
	"sdadcs/internal/stats"
	"sdadcs/internal/topk"
)

// Config controls the beam search.
type Config struct {
	// BeamWidth is the number of subgroups carried between levels
	// (default 100, the paper's "search width 100").
	BeamWidth int
	// Depth bounds the number of conditions per subgroup (default 2,
	// matching the depth the paper uses in its Table 3 discussion).
	Depth int
	// Bins is the number of equal-frequency boundary candidates per
	// numeric attribute (default 8, Cortana's default bin count).
	Bins int
	// TopK bounds the pooled result list (default 100, the paper's
	// "maximum subgroups to k (100 in experiments)").
	TopK int
	// MinCoverage is the minimum number of rows a subgroup must cover
	// (default 2, the paper's "minimum coverage to 2").
	MinCoverage int
	// MinQuality is the minimum WRACC for a subgroup to be reported
	// (default 0.01, the paper's "minimum value of 0.01").
	MinQuality float64
	// Measure scores the pooled contrasts for cross-algorithm comparison
	// (default SupportDiff; the beam itself is always driven by WRACC).
	Measure pattern.Measure
}

func (c *Config) defaults() {
	if c.BeamWidth == 0 {
		c.BeamWidth = 100
	}
	if c.Depth == 0 {
		c.Depth = 2
	}
	if c.Bins == 0 {
		c.Bins = 8
	}
	if c.TopK == 0 {
		c.TopK = 100
	}
	if c.MinCoverage == 0 {
		c.MinCoverage = 2
	}
	if c.MinQuality == 0 {
		c.MinQuality = 0.01
	}
}

// Result carries the pooled contrasts and the number of subgroup
// evaluations performed.
type Result struct {
	Contrasts []pattern.Contrast
	Evaluated int
}

// Mine runs the beam search once per group and pools the results.
func Mine(d *dataset.Dataset, cfg Config) Result {
	cfg.defaults()
	conds := conditions(d, cfg.Bins)
	sizes := d.GroupSizes()
	list := topk.New(cfg.TopK, cfg.MinQuality)
	evaluated := 0

	for g := 0; g < d.NumGroups(); g++ {
		mineTarget(d, g, conds, sizes, cfg, list, &evaluated)
	}
	// Rescore pooled subgroups under the comparison measure.
	out := pattern.Rescore(list.Contrasts(), cfg.Measure)
	return Result{Contrasts: out, Evaluated: evaluated}
}

// beamEntry is one subgroup on the beam.
type beamEntry struct {
	set     pattern.Itemset
	cover   dataset.View
	quality float64
}

// mineTarget runs one beam search with group g as the target.
func mineTarget(d *dataset.Dataset, g int, conds []pattern.Item, sizes []int,
	cfg Config, list *topk.List, evaluated *int) {

	beam := []beamEntry{{set: pattern.NewItemset(), cover: d.All()}}
	for level := 1; level <= cfg.Depth; level++ {
		var next []beamEntry
		seen := map[string]bool{}
		for _, be := range beam {
			for _, cond := range conds {
				if _, used := be.set.ItemOn(cond.Attr); used {
					continue
				}
				set := be.set.With(cond)
				key := set.Key()
				if seen[key] {
					continue
				}
				seen[key] = true
				cover := be.cover.Filter(func(row int) bool {
					return cond.Matches(d, row)
				})
				*evaluated++
				if cover.Len() < cfg.MinCoverage {
					continue
				}
				sup := pattern.CountsToSupports(cover.GroupCounts(), sizes)
				q := sup.WRAcc(g)
				if q >= cfg.MinQuality {
					test, err := stats.ChiSquare2xK(sup.Count, sizes)
					c := pattern.Contrast{
						Set:      set,
						Supports: sup,
						Score:    q,
					}
					if err == nil {
						c.ChiSq = test.Statistic
						c.P = test.P
					}
					list.Add(c)
				}
				next = append(next, beamEntry{set: set, cover: cover, quality: q})
			}
		}
		// Keep the top BeamWidth by quality (deterministic tie-break).
		sort.Slice(next, func(i, j int) bool {
			if next[i].quality != next[j].quality {
				return next[i].quality > next[j].quality
			}
			return next[i].set.Key() < next[j].set.Key()
		})
		if len(next) > cfg.BeamWidth {
			next = next[:cfg.BeamWidth]
		}
		beam = next
	}
}

// conditions enumerates every candidate condition: attribute=value for
// categorical attributes, and all intervals over equal-frequency
// boundaries for numeric attributes (including one-sided intervals).
func conditions(d *dataset.Dataset, bins int) []pattern.Item {
	var out []pattern.Item
	for _, attr := range d.CategoricalAttrs() {
		for code := range d.Domain(attr) {
			out = append(out, pattern.CatItem(attr, code))
		}
	}
	for _, attr := range d.ContinuousAttrs() {
		bounds := boundaries(d, attr, bins)
		// Intervals (b_i, b_j] over the boundary ladder extended with
		// ±inf; skip the trivial full range.
		ext := make([]float64, 0, len(bounds)+2)
		ext = append(ext, math.Inf(-1))
		ext = append(ext, bounds...)
		ext = append(ext, math.Inf(1))
		for i := 0; i < len(ext)-1; i++ {
			for j := i + 1; j < len(ext); j++ {
				if i == 0 && j == len(ext)-1 {
					continue // (-inf, +inf)
				}
				out = append(out, pattern.RangeItem(attr, ext[i], ext[j]))
			}
		}
	}
	return out
}

// boundaries returns up to bins-1 distinct equal-frequency split values.
func boundaries(d *dataset.Dataset, attr, bins int) []float64 {
	var out []float64
	prev := math.Inf(-1)
	for b := 1; b < bins; b++ {
		q := d.All().Quantile(attr, float64(b)/float64(bins))
		if q > prev {
			out = append(out, q)
			prev = q
		}
	}
	return out
}
