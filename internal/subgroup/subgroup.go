// Package subgroup reimplements the Cortana configuration the paper
// compares against (§5, "Cortana-Interval"): beam search with width 100
// over subgroup descriptions, WRACC as the quality measure (a nominal
// target, one run per group, all subgroups pooled as the contrast set),
// and the "intervals" strategy for numeric attributes — candidate
// conditions are intervals assembled from equal-frequency boundaries,
// including the half-open "(−inf, b]" and "(b, +inf)" forms visible in the
// paper's Table 1 rows.
//
// Like the core miner and the STUCCO baseline, the beam search rides the
// shared engine substrate: candidate covers are bitmap intersections
// against per-condition bitmaps by default (the row-slice path stays
// selectable for paired benchmarks and the oracle's engine-swap battery),
// per-level candidate counting fans out over Workers goroutines with a
// deterministic merge, and the metrics recorder and trace ring receive the
// same instrumentation as everywhere else.
package subgroup

import (
	"context"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sdadcs/internal/bitmap"
	"sdadcs/internal/dataset"
	"sdadcs/internal/metrics"
	"sdadcs/internal/pattern"
	"sdadcs/internal/stats"
	"sdadcs/internal/topk"
	"sdadcs/internal/trace"
)

// TopKUnbounded disables the pooled result bound (the differential oracle
// mines with this sentinel).
const TopKUnbounded = -1

// Config controls the beam search.
type Config struct {
	// BeamWidth is the number of subgroups carried between levels
	// (default 100, the paper's "search width 100").
	BeamWidth int
	// Depth bounds the number of conditions per subgroup (default 2,
	// matching the depth the paper uses in its Table 3 discussion).
	Depth int
	// Bins is the number of equal-frequency boundary candidates per
	// numeric attribute (default 8, Cortana's default bin count).
	Bins int
	// TopK bounds the pooled result list (default 100, the paper's
	// "maximum subgroups to k (100 in experiments)"). TopKUnbounded (-1)
	// disables the bound.
	TopK int
	// MinCoverage is the minimum number of rows a subgroup must cover
	// (default 2, the paper's "minimum coverage to 2").
	MinCoverage int
	// MinQuality is the minimum WRACC for a subgroup to be reported
	// (default 0.01, the paper's "minimum value of 0.01").
	MinQuality float64
	// Measure scores the pooled contrasts for cross-algorithm comparison
	// (default SupportDiff; the beam itself is always driven by WRACC).
	Measure pattern.Measure
	// Workers > 1 counts each level's candidate covers in parallel;
	// admission and beam selection stay serial, so any worker count is
	// bit-identical to the serial search.
	Workers int
	// SliceCounting selects the row-slice cover path (dataset.View
	// filters) instead of per-condition bitmaps. Both produce identical
	// results.
	SliceCounting bool
	// Metrics, when non-nil, receives per-level candidate counts, wall
	// times and top-k threshold updates.
	Metrics *metrics.Recorder
	// Trace, when non-nil, receives candidate evaluations and top-k
	// admissions.
	Trace *trace.Tracer
}

func (c *Config) defaults() {
	if c.BeamWidth == 0 {
		c.BeamWidth = 100
	}
	if c.Depth == 0 {
		c.Depth = 2
	}
	if c.Bins == 0 {
		c.Bins = 8
	}
	if c.TopK == 0 {
		c.TopK = 100
	}
	if c.TopK == TopKUnbounded {
		c.TopK = 0 // topk.List treats k <= 0 as unbounded
	}
	if c.MinCoverage == 0 {
		c.MinCoverage = 2
	}
	if c.MinQuality == 0 {
		c.MinQuality = 0.01
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
}

// Result carries the pooled contrasts and the number of subgroup
// evaluations performed.
type Result struct {
	Contrasts []pattern.Contrast
	Evaluated int
}

// Mine runs the beam search once per group and pools the results.
func Mine(d *dataset.Dataset, cfg Config) Result {
	res, _ := MineContext(context.Background(), d, cfg)
	return res
}

// MineContext is Mine with cancellation: the search checks ctx between
// beam levels and returns what was pooled so far plus ctx.Err() when
// canceled.
func MineContext(ctx context.Context, d *dataset.Dataset, cfg Config) (Result, error) {
	cfg.defaults()
	m := &searcher{
		d:     d,
		cfg:   cfg,
		conds: conditions(d, cfg.Bins),
		sizes: d.GroupSizes(),
		rec:   cfg.Metrics,
		tr:    cfg.Trace,
	}
	if !cfg.SliceCounting {
		var built bool
		m.idx, built = bitmap.Shared(d)
		if built {
			m.rec.BitmapBuilds(m.idx.NumBitmaps())
		} else {
			m.rec.BitmapIndexReuse()
		}
		m.condBits = make([]*bitmap.Set, len(m.conds))
	}
	list := topk.New(cfg.TopK, cfg.MinQuality).WithRecorder(cfg.Metrics).WithTracer(cfg.Trace)

	var err error
	for g := 0; g < d.NumGroups(); g++ {
		if err = m.mineTarget(ctx, g, list); err != nil {
			break
		}
	}
	// Rescore pooled subgroups under the comparison measure.
	out := pattern.Rescore(list.Contrasts(), cfg.Measure)
	return Result{Contrasts: out, Evaluated: m.evaluated}, err
}

// searcher is the per-run state shared by the per-target beam searches.
type searcher struct {
	d         *dataset.Dataset
	cfg       Config
	conds     []pattern.Item
	sizes     []int
	idx       *bitmap.Index // nil on the slice path
	condBits  []*bitmap.Set // lazily built per-condition covers (bitmap path)
	evaluated int
	rec       *metrics.Recorder
	tr        *trace.Tracer
}

// beamEntry is one subgroup on the beam.
type beamEntry struct {
	set     pattern.Itemset
	view    dataset.View // slice path cover
	bits    *bitmap.Set  // bitmap path cover
	quality float64
}

// candidate is one (parent × condition) specialization scheduled for
// counting.
type candidate struct {
	parent int
	cond   int
	set    pattern.Itemset
	key    string
	// filled by the parallel counting stage
	view  dataset.View
	bits  *bitmap.Set
	count int
	sup   pattern.Supports
}

// condBitmap returns (building on first use) the cover bitmap of one
// condition. Lazy building keeps unused interval conditions free; the
// build scans rows once, after which every deeper cover is an AND.
func (m *searcher) condBitmap(i int) *bitmap.Set {
	if m.condBits[i] == nil {
		s := bitmap.New(m.d.Rows())
		cond := m.conds[i]
		for r := 0; r < m.d.Rows(); r++ {
			if cond.Matches(m.d, r) {
				s.Add(r)
			}
		}
		m.condBits[i] = s
	}
	return m.condBits[i]
}

// mineTarget runs one beam search with group g as the target.
func (m *searcher) mineTarget(ctx context.Context, g int, list *topk.List) error {
	root := beamEntry{set: pattern.NewItemset()}
	if m.idx != nil {
		root.bits = m.idx.All()
	} else {
		root.view = m.d.All()
	}
	beam := []beamEntry{root}
	for level := 1; level <= m.cfg.Depth; level++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		start := time.Now()

		// Serial enumeration with dedup keeps the candidate order (and the
		// evaluation count) identical for any worker count.
		var cands []candidate
		seen := map[string]bool{}
		for pi, be := range beam {
			for ci, cond := range m.conds {
				if _, used := be.set.ItemOn(cond.Attr); used {
					continue
				}
				set := be.set.With(cond)
				key := set.Key()
				if seen[key] {
					continue
				}
				seen[key] = true
				cands = append(cands, candidate{parent: pi, cond: ci, set: set, key: key})
			}
		}

		// Parallel counting stage: covers and supports land in per-index
		// slots.
		m.countAll(beam, cands)

		// Serial admission stage: quality, pooling and the next beam.
		var next []beamEntry
		emitted := 0
		for i := range cands {
			c := &cands[i]
			m.evaluated++
			if m.tr.Enabled() {
				m.tr.Node(level, 0, c.key, c.count, c.sup.Count)
			}
			if c.count < m.cfg.MinCoverage {
				continue
			}
			q := c.sup.WRAcc(g)
			if q >= m.cfg.MinQuality {
				test, err := stats.ChiSquare2xK(c.sup.Count, m.sizes)
				contrast := pattern.Contrast{
					Set:      c.set,
					Supports: c.sup,
					Score:    q,
				}
				if err == nil {
					contrast.ChiSq = test.Statistic
					contrast.P = test.P
				}
				if list.Add(contrast) {
					emitted++
				}
			}
			next = append(next, beamEntry{set: c.set, view: c.view, bits: c.bits, quality: q})
		}
		// Keep the top BeamWidth by quality (deterministic tie-break).
		sort.Slice(next, func(i, j int) bool {
			if next[i].quality != next[j].quality {
				return next[i].quality > next[j].quality
			}
			return next[i].set.Key() < next[j].set.Key()
		})
		if len(next) > m.cfg.BeamWidth {
			next = next[:m.cfg.BeamWidth]
		}
		m.rec.LevelObserve(level, len(cands), len(next), emitted, m.cfg.Workers, time.Since(start))
		beam = next
	}
	return nil
}

// countAll fills each candidate's cover and supports, fanning out over
// cfg.Workers. On the bitmap path the per-condition bitmaps are built
// up-front (serially, so the lazy cache stays race-free).
func (m *searcher) countAll(beam []beamEntry, cands []candidate) {
	if m.idx != nil {
		for i := range cands {
			m.condBitmap(cands[i].cond)
		}
	}
	count := func(c *candidate) {
		if m.idx != nil {
			c.bits = beam[c.parent].bits.And(m.condBits[c.cond])
			counts := m.idx.GroupCounts(c.bits)
			for _, n := range counts {
				c.count += n
			}
			c.sup = pattern.CountsToSupports(counts, m.sizes)
			return
		}
		cond := m.conds[c.cond]
		c.view = beam[c.parent].view.Filter(func(row int) bool {
			return cond.Matches(m.d, row)
		})
		c.count = c.view.Len()
		c.sup = pattern.CountsToSupports(c.view.GroupCounts(), m.sizes)
	}
	workers := m.cfg.Workers
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers <= 1 {
		for i := range cands {
			count(&cands[i])
		}
		return
	}
	var wg sync.WaitGroup
	var next atomic.Int64
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(cands) {
					return
				}
				count(&cands[i])
			}
		}()
	}
	wg.Wait()
}

// conditions enumerates every candidate condition: attribute=value for
// categorical attributes, and all intervals over equal-frequency
// boundaries for numeric attributes (including one-sided intervals).
func conditions(d *dataset.Dataset, bins int) []pattern.Item {
	var out []pattern.Item
	for _, attr := range d.CategoricalAttrs() {
		for code := range d.Domain(attr) {
			out = append(out, pattern.CatItem(attr, code))
		}
	}
	for _, attr := range d.ContinuousAttrs() {
		bounds := boundaries(d, attr, bins)
		// Intervals (b_i, b_j] over the boundary ladder extended with
		// ±inf; skip the trivial full range.
		ext := make([]float64, 0, len(bounds)+2)
		ext = append(ext, math.Inf(-1))
		ext = append(ext, bounds...)
		ext = append(ext, math.Inf(1))
		for i := 0; i < len(ext)-1; i++ {
			for j := i + 1; j < len(ext); j++ {
				if i == 0 && j == len(ext)-1 {
					continue // (-inf, +inf)
				}
				out = append(out, pattern.RangeItem(attr, ext[i], ext[j]))
			}
		}
	}
	return out
}

// boundaries returns up to bins-1 distinct equal-frequency split values.
func boundaries(d *dataset.Dataset, attr, bins int) []float64 {
	var out []float64
	prev := math.Inf(-1)
	for b := 1; b < bins; b++ {
		q := d.All().Quantile(attr, float64(b)/float64(bins))
		if q > prev {
			out = append(out, q)
			prev = q
		}
	}
	return out
}
