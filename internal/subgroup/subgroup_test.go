package subgroup

import (
	"math"
	"testing"

	"sdadcs/internal/datagen"
	"sdadcs/internal/dataset"
	"sdadcs/internal/pattern"
)

func TestMineSeparableData(t *testing.T) {
	d := datagen.Simulated1(1, 2000)
	res := Mine(d, Config{})
	if len(res.Contrasts) == 0 {
		t.Fatal("no subgroups found on separable data")
	}
	// The top contrast (by support difference after rescoring) should be a
	// near-perfect interval on Attribute1.
	top := res.Contrasts[0]
	if top.Score < 0.8 {
		t.Errorf("top score = %v, want near 1", top.Score)
	}
	if _, ok := top.Set.ItemOn(d.AttrIndex("Attribute1")); !ok {
		t.Errorf("top contrast %s does not use the separating attribute", top.Set.Format(d))
	}
	if res.Evaluated == 0 {
		t.Error("evaluation counter not wired up")
	}
}

func TestMineDepthBound(t *testing.T) {
	d := datagen.Simulated4(2, 1500)
	res := Mine(d, Config{Depth: 1})
	for _, c := range res.Contrasts {
		if c.Set.Len() > 1 {
			t.Errorf("depth-1 subgroup has %d conditions", c.Set.Len())
		}
	}
	res2 := Mine(d, Config{Depth: 2})
	if res2.Evaluated <= res.Evaluated {
		t.Error("depth-2 should evaluate more subgroups")
	}
}

func TestMineRespectsTopK(t *testing.T) {
	d := datagen.Simulated1(3, 1000)
	res := Mine(d, Config{TopK: 5})
	if len(res.Contrasts) > 5 {
		t.Errorf("TopK=5 returned %d contrasts", len(res.Contrasts))
	}
}

func TestMineMinCoverage(t *testing.T) {
	// A 4-row dataset with MinCoverage larger than any split can cover.
	d := dataset.NewBuilder("tiny").
		AddContinuous("x", []float64{1, 2, 3, 4}).
		SetGroups([]string{"A", "A", "B", "B"}).
		MustBuild()
	res := Mine(d, Config{MinCoverage: 100})
	if len(res.Contrasts) != 0 {
		t.Errorf("found %d subgroups despite impossible coverage", len(res.Contrasts))
	}
}

func TestMineFindsIntervalNotJustHalfLine(t *testing.T) {
	// Group A concentrated in the middle third: the best description is a
	// two-sided interval, which the intervals strategy can express.
	n := 3000
	x := make([]float64, n)
	g := make([]string, n)
	for i := range x {
		x[i] = float64(i) / float64(n)
		if x[i] > 0.33 && x[i] <= 0.66 {
			g[i] = "A"
		} else {
			g[i] = "B"
		}
	}
	d := dataset.NewBuilder("mid").AddContinuous("x", x).SetGroups(g).MustBuild()
	res := Mine(d, Config{})
	if len(res.Contrasts) == 0 {
		t.Fatal("no subgroups")
	}
	top := res.Contrasts[0]
	it, ok := top.Set.ItemOn(0)
	if !ok {
		t.Fatal("top subgroup has no condition")
	}
	if math.IsInf(it.Range.Lo, -1) || math.IsInf(it.Range.Hi, 1) {
		t.Errorf("top subgroup %v is one-sided; a two-sided interval is optimal", it.Range)
	}
	// Octile boundaries cannot express (0.33, 0.66] exactly; the best
	// expressible interval reaches a support difference around 0.77.
	if top.Score < 0.7 {
		t.Errorf("top score = %v, want >= 0.7", top.Score)
	}
}

func TestConditionsEnumerateIntervals(t *testing.T) {
	d := dataset.NewBuilder("c").
		AddContinuous("x", []float64{1, 2, 3, 4, 5, 6, 7, 8}).
		AddCategorical("c", []string{"a", "b", "a", "b", "a", "b", "a", "b"}).
		SetGroups([]string{"A", "B", "A", "B", "A", "B", "A", "B"}).
		MustBuild()
	conds := conditions(d, 4)
	nCat, nRange := 0, 0
	for _, c := range conds {
		if c.Kind == dataset.Categorical {
			nCat++
		} else {
			nRange++
			if c.Range.Empty() {
				t.Errorf("empty candidate interval %v", c.Range)
			}
		}
	}
	if nCat != 2 {
		t.Errorf("categorical conditions = %d, want 2", nCat)
	}
	// 3 distinct boundaries + 2 infinities = 5 points -> C(5,2)-1 = 9.
	if nRange != 9 {
		t.Errorf("range conditions = %d, want 9", nRange)
	}
}

func TestMineWRACCFloor(t *testing.T) {
	// Pure-noise data: no subgroup should clear the 0.01 WRACC floor by a
	// wide margin; the pool stays small or empty.
	d := datagen.Simulated3(4, 200)
	res := Mine(d, Config{MinQuality: 0.2})
	for _, c := range res.Contrasts {
		sup := c.Supports
		best := 0.0
		for g := 0; g < sup.Groups(); g++ {
			if w := sup.WRAcc(g); w > best {
				best = w
			}
		}
		if best < 0.2 {
			t.Errorf("reported subgroup below the quality floor: %v", best)
		}
	}
}

func TestMineDeterministic(t *testing.T) {
	d := datagen.Simulated4(5, 1000)
	a := Mine(d, Config{})
	b := Mine(d, Config{})
	if len(a.Contrasts) != len(b.Contrasts) {
		t.Fatal("non-deterministic result count")
	}
	for i := range a.Contrasts {
		if a.Contrasts[i].Set.Key() != b.Contrasts[i].Set.Key() {
			t.Fatal("non-deterministic ordering")
		}
	}
}

var _ = pattern.SupportDiff
