package bitmap

import (
	"fmt"
	"math/rand"
	"testing"

	"sdadcs/internal/dataset"
)

// randomSet fills a set over universe n with density p.
func randomSet(rng *rand.Rand, n int, p float64) *Set {
	s := New(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < p {
			s.Add(i)
		}
	}
	return s
}

// naiveAndCount is the reference two-pass loop the fused kernels must
// match bit-for-bit: materialize the intersection, then popcount it.
func naiveAndCount(a, b *Set) (*Set, int) {
	inter := a.And(b)
	return inter, inter.Count()
}

func sameSet(a, b *Set) bool {
	if a.Universe() != b.Universe() {
		return false
	}
	ra, rb := a.Rows(), b.Rows()
	if len(ra) != len(rb) {
		return false
	}
	for i := range ra {
		if ra[i] != rb[i] {
			return false
		}
	}
	return true
}

// TestAndCountIntoMatchesNaive: the fused AND+popcount kernel equals the
// two-pass And+Count on random word patterns, including universes with a
// trailing partial word, and is correct when dst comes from a dirty arena
// block (contents undefined).
func TestAndCountIntoMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	arena := NewArena(0) // rebuilt per universe below
	for _, n := range []int{1, 7, 63, 64, 65, 128, 193, 1000, 4113} {
		arena = NewArena(n)
		for _, p := range []float64{0, 0.01, 0.2, 0.5, 0.97, 1} {
			for trial := 0; trial < 8; trial++ {
				a := randomSet(rng, n, p)
				b := randomSet(rng, n, rng.Float64())
				want, wantCount := naiveAndCount(a, b)

				dst := New(n)
				if got := a.AndCountInto(b, dst); got != wantCount {
					t.Fatalf("n=%d p=%v: AndCountInto = %d, naive = %d", n, p, got, wantCount)
				} else if !sameSet(dst, want) {
					t.Fatalf("n=%d p=%v: fused intersection differs from And", n, p)
				}

				// Dirty-reuse path: poison an arena block, release it, and
				// let the kernel overwrite every word.
				poison := arena.Get()
				poison.Fill()
				arena.Put(poison)
				dirty := arena.Get()
				if got := a.AndCountInto(b, dirty); got != wantCount || !sameSet(dirty, want) {
					t.Fatalf("n=%d p=%v: fused kernel wrong on dirty arena block", n, p)
				}
				arena.Put(dirty)
			}
		}
	}
}

// TestAndCountAtLeastMatchesNaive: the early-exit kernel (success exit on
// reaching k, failure exit on the remaining-words upper bound) agrees with
// the naive count for thresholds at and around the true count, at the
// extremes, and on trailing-partial-word universes.
func TestAndCountAtLeastMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 63, 64, 65, 129, 1000, 4113} {
		for _, p := range []float64{0, 0.05, 0.5, 1} {
			for trial := 0; trial < 8; trial++ {
				a := randomSet(rng, n, p)
				b := randomSet(rng, n, rng.Float64())
				_, c := naiveAndCount(a, b)
				// Threshold-at-boundary cases: k = c is the largest k that
				// must succeed, k = c+1 the smallest that must fail.
				ks := []int{-1, 0, 1, c - 1, c, c + 1, c * 2, n, n + 64}
				for _, k := range ks {
					if got, want := a.AndCountAtLeast(b, k), c >= k || k <= 0; got != want {
						t.Fatalf("n=%d count=%d k=%d: AndCountAtLeast = %v, want %v",
							n, c, k, got, want)
					}
				}
			}
		}
	}
}

// kernelDataset builds a random categorical dataset for index-level kernel
// tests: one categorical attribute with the given domain size and g groups.
func kernelDataset(rng *rand.Rand, rows, domain, groups int) *dataset.Dataset {
	vals := make([]string, rows)
	grp := make([]string, rows)
	for i := range vals {
		vals[i] = fmt.Sprintf("v%d", rng.Intn(domain))
		grp[i] = fmt.Sprintf("g%d", rng.Intn(groups))
	}
	// Force every group name to appear so the builder sees >= 2 groups.
	for g := 0; g < groups && g < rows; g++ {
		grp[g] = fmt.Sprintf("g%d", g)
	}
	return dataset.NewBuilder("kernels").
		AddCategorical("attr", vals).
		SetGroups(grp).
		MustBuild()
}

// TestGroupCountsIntoMatchesNaive: the fused multi-mask popcount — both
// the unrolled two-group path and the general path — equals a per-group
// AndCount loop on random covers.
func TestGroupCountsIntoMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, groups := range []int{2, 3, 5} {
		for _, rows := range []int{65, 130, 1001} {
			d := kernelDataset(rng, rows, 6, groups)
			ix := NewIndex(d)
			for trial := 0; trial < 10; trial++ {
				cover := randomSet(rng, rows, rng.Float64())
				got := make([]int, d.NumGroups())
				ix.GroupCountsInto(cover, got)
				for g := 0; g < d.NumGroups(); g++ {
					if want := cover.AndCount(ix.Group(g)); got[g] != want {
						t.Fatalf("groups=%d rows=%d g=%d: fused %d, naive %d",
							groups, rows, g, got[g], want)
					}
				}
			}
		}
	}
}

// TestChildCoversMatchesNaive: the batched sibling kernel emits exactly
// the non-empty per-code intersections, in ascending code order, with
// exact counts — identical to per-child And+Count.
func TestChildCoversMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, rows := range []int{64, 100, 1003} {
		d := kernelDataset(rng, rows, 8, 2)
		ix := NewIndex(d)
		arena := NewArena(rows)
		for trial := 0; trial < 10; trial++ {
			parent := randomSet(rng, rows, rng.Float64()*0.6)
			type child struct {
				code  int
				cover *Set
				count int
			}
			var got []child
			ix.ChildCovers(parent, 0, arena, func(code int, cover *Set, count int) {
				got = append(got, child{code, cover, count})
			})
			var want []child
			for code := range d.Domain(0) {
				inter, c := naiveAndCount(parent, ix.Value(0, code))
				if c > 0 {
					want = append(want, child{code, inter, c})
				}
			}
			if len(got) != len(want) {
				t.Fatalf("rows=%d: batch emitted %d children, naive %d", rows, len(got), len(want))
			}
			for i := range want {
				if got[i].code != want[i].code || got[i].count != want[i].count ||
					!sameSet(got[i].cover, want[i].cover) {
					t.Fatalf("rows=%d child %d: batch (code=%d,count=%d) vs naive (code=%d,count=%d)",
						rows, i, got[i].code, got[i].count, want[i].code, want[i].count)
				}
			}
			for _, ch := range got {
				arena.Put(ch.cover)
			}
		}
	}
}

// TestArenaRecycling: the free list hands back released blocks before
// allocating fresh ones, tracks its stats, and rejects foreign universes.
func TestArenaRecycling(t *testing.T) {
	a := NewArena(200)
	s1 := a.Get()
	s2 := a.Get()
	if st := a.Stats(); st.Fresh != 2 || st.Reused != 0 {
		t.Fatalf("after two gets: %+v", st)
	}
	a.Put(s1)
	s3 := a.Get()
	if s3 != s1 {
		t.Error("Get did not reuse the released block")
	}
	if st := a.Stats(); st.Fresh != 2 || st.Reused != 1 || st.Released != 1 {
		t.Fatalf("after recycle: %+v", st)
	}
	a.Put(New(100)) // wrong universe: must be rejected
	if st := a.Stats(); st.Released != 1 {
		t.Error("arena accepted a foreign-universe set")
	}
	a.Put(nil)
	if st := a.Stats(); st.Released != 1 {
		t.Error("arena accepted nil")
	}
	a.Put(s2)
	a.Put(s3)
}
