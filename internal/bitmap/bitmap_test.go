package bitmap

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"sdadcs/internal/dataset"
)

func TestSetBasics(t *testing.T) {
	s := New(130) // crosses word boundaries
	for _, i := range []int{0, 63, 64, 127, 129} {
		s.Add(i)
	}
	if s.Count() != 5 {
		t.Errorf("Count = %d", s.Count())
	}
	if !s.Contains(64) || s.Contains(65) {
		t.Error("Contains wrong")
	}
	rows := s.Rows()
	want := []int{0, 63, 64, 127, 129}
	if len(rows) != len(want) {
		t.Fatalf("Rows = %v", rows)
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Fatalf("Rows = %v", rows)
		}
	}
	if s.Universe() != 130 {
		t.Error("Universe wrong")
	}
}

func TestSetFill(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 130} {
		s := New(n)
		s.Fill()
		if s.Count() != n {
			t.Errorf("Fill(%d) count = %d", n, s.Count())
		}
	}
}

func TestAndOperations(t *testing.T) {
	a := New(100)
	b := New(100)
	for i := 0; i < 100; i += 2 {
		a.Add(i)
	}
	for i := 0; i < 100; i += 3 {
		b.Add(i)
	}
	// Multiples of 6 in [0, 100): 17 of them.
	if got := a.AndCount(b); got != 17 {
		t.Errorf("AndCount = %d, want 17", got)
	}
	inter := a.And(b)
	if inter.Count() != 17 {
		t.Errorf("And count = %d", inter.Count())
	}
	dst := New(100)
	a.AndInto(b, dst)
	if dst.Count() != 17 {
		t.Errorf("AndInto count = %d", dst.Count())
	}
}

// Property: AndCount agrees with a brute-force intersection count.
func TestAndCountProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%300 + 10
		a := New(n)
		b := New(n)
		inA := make([]bool, n)
		inB := make([]bool, n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				a.Add(i)
				inA[i] = true
			}
			if rng.Intn(2) == 0 {
				b.Add(i)
				inB[i] = true
			}
		}
		want := 0
		for i := 0; i < n; i++ {
			if inA[i] && inB[i] {
				want++
			}
		}
		return a.AndCount(b) == want && a.And(b).Count() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func testDataset(t *testing.T, n int) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	a := make([]string, n)
	b := make([]string, n)
	g := make([]string, n)
	for i := range a {
		a[i] = "a" + strconv.Itoa(rng.Intn(4))
		b[i] = "b" + strconv.Itoa(rng.Intn(3))
		g[i] = "g" + strconv.Itoa(i%2)
	}
	return dataset.NewBuilder("bm").
		AddCategorical("a", a).
		AddCategorical("b", b).
		AddContinuous("x", make([]float64, n)).
		SetGroups(g).
		MustBuild()
}

func TestIndexMatchesViews(t *testing.T) {
	d := testDataset(t, 500)
	ix := NewIndex(d)
	if ix.Rows() != 500 {
		t.Fatal("Rows wrong")
	}
	// Per-value bitmaps agree with view filtering.
	for _, attr := range d.CategoricalAttrs() {
		for code := range d.Domain(attr) {
			bmCount := ix.Value(attr, code).Count()
			viewCount := d.All().FilterCat(attr, code).Len()
			if bmCount != viewCount {
				t.Errorf("attr %d code %d: bitmap %d vs view %d",
					attr, code, bmCount, viewCount)
			}
		}
	}
	// Group masks agree with group sizes.
	sizes := d.GroupSizes()
	for g := range sizes {
		if ix.Group(g).Count() != sizes[g] {
			t.Errorf("group %d: %d vs %d", g, ix.Group(g).Count(), sizes[g])
		}
	}
	// Joint cover: a=a1 AND b=b2.
	cover := ix.Value(0, 1).And(ix.Value(1, 2))
	viewCover := d.All().FilterCat(0, 1).FilterCat(1, 2)
	if cover.Count() != viewCover.Len() {
		t.Errorf("joint cover: %d vs %d", cover.Count(), viewCover.Len())
	}
	counts := ix.GroupCounts(cover)
	viewCounts := viewCover.GroupCounts()
	for g := range counts {
		if counts[g] != viewCounts[g] {
			t.Errorf("group counts differ: %v vs %v", counts, viewCounts)
		}
	}
}

func TestIndexAll(t *testing.T) {
	d := testDataset(t, 77)
	ix := NewIndex(d)
	if ix.All().Count() != 77 {
		t.Error("All() should cover the universe")
	}
}
