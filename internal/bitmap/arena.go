package bitmap

// Arena recycles fixed-universe cover sets through a free list, so the
// per-level AND cascade of the levelwise search allocates each cover's
// word block once and reuses it for the rest of the Mine call instead of
// leaving a garbage trail proportional to the frontier. It is NOT
// concurrency-safe: the miner allocates and releases covers only from the
// (serial) frontier-expansion step, never from per-level workers.
//
// Get returns sets with UNDEFINED word contents — callers must write every
// word before reading (the fused kernels AndCountInto and ChildCovers do).
type Arena struct {
	n    int
	free []*Set

	fresh    int64 // sets allocated because the free list was empty
	reused   int64 // sets handed out from the free list
	released int64 // sets returned by Put

	// scratch buffers for ChildCovers, reused across batches.
	covers []*Set
	counts []int
}

// NewArena builds an arena for covers over a universe of n rows.
func NewArena(n int) *Arena { return &Arena{n: n} }

// Get returns a cover set over the arena's universe. Contents are
// undefined; the caller must fully overwrite the words.
func (a *Arena) Get() *Set {
	if k := len(a.free); k > 0 {
		s := a.free[k-1]
		a.free = a.free[:k-1]
		a.reused++
		return s
	}
	a.fresh++
	return New(a.n)
}

// Put returns a cover to the free list. The set must have come from Get
// (same universe) and must not be used afterwards. Shared index bitmaps
// must never be Put — the miner tracks cover ownership for exactly this
// reason.
func (a *Arena) Put(s *Set) {
	if s == nil || s.n != a.n {
		return
	}
	a.released++
	a.free = append(a.free, s)
}

// scratch returns per-batch cover and count buffers of length k, reused
// across ChildCovers calls.
func (a *Arena) scratch(k int) ([]*Set, []int) {
	if cap(a.covers) < k {
		a.covers = make([]*Set, k)
		a.counts = make([]int, k)
	}
	return a.covers[:k], a.counts[:k]
}

// ArenaStats reports the arena's allocation discipline: how many covers
// were freshly allocated, how many were served from the free list, and how
// many were released back. reused/(fresh+reused) is the recycle rate the
// allocation-discipline benchmarks track.
type ArenaStats struct {
	Fresh    int64
	Reused   int64
	Released int64
}

// Stats snapshots the arena counters.
func (a *Arena) Stats() ArenaStats {
	return ArenaStats{Fresh: a.fresh, Reused: a.reused, Released: a.released}
}
