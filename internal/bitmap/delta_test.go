package bitmap

import (
	"fmt"
	"math/rand"
	"testing"

	"sdadcs/internal/dataset"
)

func TestFlip(t *testing.T) {
	s := New(130)
	s.Flip(0)
	s.Flip(129)
	if !s.Contains(0) || !s.Contains(129) || s.Count() != 2 {
		t.Fatalf("after flips on: count=%d", s.Count())
	}
	s.Flip(0)
	if s.Contains(0) || s.Count() != 1 {
		t.Fatalf("flip did not toggle off")
	}
}

func TestSetEqual(t *testing.T) {
	a, b := New(100), New(100)
	a.Add(7)
	b.Add(7)
	if !a.Equal(b) {
		t.Fatal("identical sets not equal")
	}
	b.Add(63)
	if a.Equal(b) {
		t.Fatal("different sets equal")
	}
	if a.Equal(New(101)) {
		t.Fatal("different universes equal")
	}
}

// TestDeltaIndexMatchesRebuild drives a ring buffer of random rows through
// a DeltaIndex — including wrap-around overwrites — and asserts, at many
// points, that Materialize is bit-identical to NewIndex over the snapshot
// dataset assembled from the same ring contents.
func TestDeltaIndexMatchesRebuild(t *testing.T) {
	const window = 37 // odd, not a multiple of 64: exercises partial words
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		catVals := []string{"a", "b", "c", "d"}
		groups := []string{"g0", "g1", "g2"}

		di := NewDeltaIndex(window, 2)
		ringCat := [2][]string{make([]string, window), make([]string, window)}
		ringGrp := make([]string, window)
		start, count := 0, 0

		for step := 0; step < 150; step++ {
			pos := (start + count) % window
			had := count == window
			if had {
				start = (start + 1) % window
			} else {
				count++
			}
			for c := 0; c < 2; c++ {
				v := catVals[rng.Intn(len(catVals))]
				di.UpdateCat(c, pos, ringCat[c][pos], v, had)
				ringCat[c][pos] = v
			}
			g := groups[rng.Intn(len(groups))]
			di.UpdateGroup(pos, ringGrp[pos], g, had)
			ringGrp[pos] = g

			if step%7 != 0 || count < 2 {
				continue
			}
			// Assemble the snapshot in window order, like stream.Monitor.
			cols := [2][]string{}
			grp := make([]string, count)
			for c := 0; c < 2; c++ {
				cols[c] = make([]string, count)
			}
			for i := 0; i < count; i++ {
				p := (start + i) % window
				cols[0][i], cols[1][i] = ringCat[0][p], ringCat[1][p]
				grp[i] = ringGrp[p]
			}
			b := dataset.NewBuilder("ring")
			b.AddCategorical("c0", cols[0])
			b.AddCategorical("c1", cols[1])
			b.SetGroups(grp)
			d, err := b.Build()
			if err != nil {
				continue // single group in window: not mineable, nothing to compare
			}
			got := di.Materialize(d, start, count, []int{0, 1})
			want := NewIndex(d)
			if !EqualIndex(got, want) {
				t.Fatalf("seed %d step %d: materialized delta index differs from rebuild", seed, step)
			}
		}
	}
}

func TestEqualIndexDetectsDifference(t *testing.T) {
	mk := func(flip bool) *Index {
		b := dataset.NewBuilder("d")
		b.AddCategorical("c", []string{"x", "y", "x", "y"})
		g := []string{"a", "a", "b", "b"}
		if flip {
			g = []string{"a", "b", "a", "b"}
		}
		b.SetGroups(g)
		return NewIndex(b.MustBuild())
	}
	if !EqualIndex(mk(false), mk(false)) {
		t.Fatal("identical indexes not equal")
	}
	if EqualIndex(mk(false), mk(true)) {
		t.Fatal("different indexes equal")
	}
}

// BenchmarkDeltaMaintain measures the per-append maintenance cost, which
// must not scale with window size (only with columns).
func BenchmarkDeltaMaintain(b *testing.B) {
	for _, window := range []int{1024, 8192} {
		b.Run(fmt.Sprintf("window=%d", window), func(b *testing.B) {
			di := NewDeltaIndex(window, 4)
			vals := []string{"a", "b", "c"}
			ring := make([][]string, 4)
			for c := range ring {
				ring[c] = make([]string, window)
			}
			grp := make([]string, window)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pos := i % window
				had := i >= window
				for c := 0; c < 4; c++ {
					v := vals[(i+c)%len(vals)]
					di.UpdateCat(c, pos, ring[c][pos], v, had)
					ring[c][pos] = v
				}
				g := vals[i%2]
				di.UpdateGroup(pos, grp[pos], g, had)
				grp[pos] = g
			}
		})
	}
}
