package bitmap

import "sdadcs/internal/dataset"

// DeltaIndex is the incrementally-maintained twin of Index for sliding
// windows: one bitmap per categorical value string and per group label,
// over a fixed universe of ring-buffer positions. Where Index is built by
// scanning every row of a dataset, a DeltaIndex is updated one row at a
// time — when the window slides, the departing row's bits are XOR-ed out
// and the arriving row's bits XOR-ed in, so maintenance costs O(columns)
// bit flips per append instead of an O(rows × columns) rebuild per
// re-mine.
//
// Bitmaps are keyed by value *string* (not domain code): ring positions
// outlive any single snapshot, and snapshot datasets re-assign domain
// codes in first-appearance order every window. Materialize translates the
// position-space bitmaps into a snapshot dataset's code space and row
// order, producing an Index bit-identical to NewIndex over that snapshot —
// the guarantee the stream battery asserts.
type DeltaIndex struct {
	n    int // universe: ring positions 0..n-1
	cats []map[string]*Set
	grps map[string]*Set

	// Support-delta summary: accumulated between re-mines and consumed by
	// the incremental re-evaluation gate (core.MineIncremental). rows
	// counts window positions whose row content changed since the last
	// ResetSummary; touched[col][value] counts, per categorical column,
	// the changed positions whose old or new row carried value — a value
	// with zero touches provably has an unchanged cover *content* (the
	// same multiset of full rows), which is what lets the gate carry a
	// pattern's counts and scores forward bit-identically.
	rows    int
	touched []map[string]int
}

// NewDeltaIndex builds an empty delta index over n ring positions,
// tracking catCols categorical columns plus the group column.
func NewDeltaIndex(n, catCols int) *DeltaIndex {
	di := &DeltaIndex{
		n:       n,
		cats:    make([]map[string]*Set, catCols),
		grps:    make(map[string]*Set),
		touched: make([]map[string]int, catCols),
	}
	for i := range di.cats {
		di.cats[i] = make(map[string]*Set)
		di.touched[i] = make(map[string]int)
	}
	return di
}

// DeltaSummary reports the accumulated change since the last ResetSummary:
// how many window positions changed at all, and per categorical column how
// many of those changes involve each value (counting a value once per
// changed position it appears in, old row or new). It is the
// delta-index-to-support-delta translation the incremental re-mine gate
// consumes: Cats[col][v] == 0 (or absent) proves that no row carrying v
// entered, left, or mutated, so every support count conditioned on v is
// unchanged.
type DeltaSummary struct {
	// RowsTouched is the number of position updates whose row content
	// changed (same position updated twice counts twice — the summary is
	// conservative, never an undercount).
	RowsTouched int
	// Cats[col] maps a categorical value to its touched count.
	Cats []map[string]int
}

// Touch records that a window position's row content changed: oldCat holds
// the departing row's categorical values (nil while the window is still
// filling), newCat the arriving row's. Every value the position carried
// before or after is marked touched — including values that did not
// themselves change, because the *row* behind their set bit did (a
// different group label, a shifted continuous reading). The caller decides
// what "changed" means; the stream monitor compares the full row (float
// bits, categorical values, group label).
func (di *DeltaIndex) Touch(oldCat, newCat []string) {
	di.rows++
	for col := range di.touched {
		if oldCat != nil && oldCat[col] != newCat[col] {
			di.touched[col][oldCat[col]]++
		}
		di.touched[col][newCat[col]]++
	}
}

// Summary returns a copy of the accumulated change summary.
func (di *DeltaIndex) Summary() DeltaSummary {
	s := DeltaSummary{RowsTouched: di.rows, Cats: make([]map[string]int, len(di.touched))}
	for col, m := range di.touched {
		out := make(map[string]int, len(m))
		for v, n := range m {
			out[v] = n
		}
		s.Cats[col] = out
	}
	return s
}

// ResetSummary clears the accumulated summary — called after a re-mine
// consumed it, so the next summary describes exactly the changes since
// that window.
func (di *DeltaIndex) ResetSummary() {
	di.rows = 0
	for col := range di.touched {
		clear(di.touched[col])
	}
}

// set returns the bitmap for value in m, creating it on first sight. A
// value that later leaves the window keeps its (empty) bitmap: the map
// grows with distinct values ever seen, not with window size.
func (di *DeltaIndex) set(m map[string]*Set, value string) *Set {
	s, ok := m[value]
	if !ok {
		s = New(di.n)
		m[value] = s
	}
	return s
}

// UpdateCat records that categorical column col at ring position pos
// changed from old to new. had reports whether the position held a row
// before (false while the window is still filling). old == new is a
// no-op: XOR-ing the same bit out and back in would only waste the flips.
func (di *DeltaIndex) UpdateCat(col, pos int, old, new string, had bool) {
	if had {
		if old == new {
			return
		}
		di.set(di.cats[col], old).Flip(pos)
	}
	di.set(di.cats[col], new).Flip(pos)
}

// UpdateGroup records the group label change at ring position pos,
// mirroring UpdateCat.
func (di *DeltaIndex) UpdateGroup(pos int, old, new string, had bool) {
	if had {
		if old == new {
			return
		}
		di.set(di.grps, old).Flip(pos)
	}
	di.set(di.grps, new).Flip(pos)
}

// scatterInto maps src's position-space bits into dst's snapshot row
// space: ring position p becomes snapshot row (p-start+n) mod n. While
// the window is still filling, start is 0 and the mapping is the
// identity; once full it is a rotation. Cost is O(popcount), and summed
// over all values of one column the popcounts add up to the live row
// count — the same order as one column scan of a rebuild, but with no
// value encoding, hashing, or per-row branches.
func scatterInto(src *Set, start, n int, dst *Set) {
	if src == nil {
		return
	}
	src.ForEach(func(p int) {
		j := p - start
		if j < 0 {
			j += n
		}
		dst.Add(j)
	})
}

// Materialize translates the maintained bitmaps into a ready Index for a
// snapshot dataset d whose row i is ring position (start+i) mod n, for
// count live rows. catAttrs[col] is d's attribute index of delta column
// col. The result is bit-identical to NewIndex(d): every domain value of
// d came from a live row, so its position bitmap exists and holds exactly
// those rows; values whose bitmaps have gone empty are absent from d's
// domain and are skipped.
func (di *DeltaIndex) Materialize(d *dataset.Dataset, start, count int, catAttrs []int) *Index {
	idx := &Index{
		n:      count,
		values: make([][]*Set, d.NumAttrs()),
		groups: make([]*Set, d.NumGroups()),
	}
	for g := range idx.groups {
		dst := New(count)
		scatterInto(di.grps[d.GroupName(g)], start, di.n, dst)
		idx.groups[g] = dst
	}
	for col, attr := range catAttrs {
		domain := d.Domain(attr)
		sets := make([]*Set, len(domain))
		for code, value := range domain {
			dst := New(count)
			scatterInto(di.cats[col][value], start, di.n, dst)
			sets[code] = dst
		}
		idx.values[attr] = sets
	}
	return idx
}

// EqualIndex reports whether two indexes hold identical bitmaps — the
// assertion surface for incremental-vs-rebuild bit-identity tests.
func EqualIndex(a, b *Index) bool {
	if a.n != b.n || len(a.groups) != len(b.groups) || len(a.values) != len(b.values) {
		return false
	}
	for g := range a.groups {
		if !a.groups[g].Equal(b.groups[g]) {
			return false
		}
	}
	for attr := range a.values {
		if (a.values[attr] == nil) != (b.values[attr] == nil) || len(a.values[attr]) != len(b.values[attr]) {
			return false
		}
		for code := range a.values[attr] {
			if !a.values[attr][code].Equal(b.values[attr][code]) {
				return false
			}
		}
	}
	return true
}
