package bitmap

import (
	"math/rand"
	"testing"

	"sdadcs/internal/dataset"
)

// TestDeltaMaterializeDuringFill pins the pre-saturation regime of
// Materialize's rotate-scatter: while the ring is still filling (count <
// window, no evictions yet) start is 0 and the position→row mapping must
// be the identity — every fill level, including the window-1 boundary
// right before the first eviction, must materialize bit-identically to a
// from-scratch rebuild. A mapping bug that only cancels out on saturated
// windows (e.g. an off-by-one that wraps) cannot hide here.
func TestDeltaMaterializeDuringFill(t *testing.T) {
	const window = 41 // prime, not a multiple of 64: partial-word edges
	catVals := []string{"a", "b", "c"}
	groups := []string{"g0", "g1"}
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		di := NewDeltaIndex(window, 1)
		ringCat := make([]string, window)
		ringGrp := make([]string, window)

		for count := 1; count <= window; count++ {
			pos := count - 1 // filling: start stays 0, no evictions
			v := catVals[rng.Intn(len(catVals))]
			di.UpdateCat(0, pos, ringCat[pos], v, false)
			ringCat[pos] = v
			g := groups[rng.Intn(len(groups))]
			di.UpdateGroup(pos, ringGrp[pos], g, false)
			ringGrp[pos] = g

			if count < 2 {
				continue
			}
			b := dataset.NewBuilder("fill")
			b.AddCategorical("c0", append([]string(nil), ringCat[:count]...))
			b.SetGroups(append([]string(nil), ringGrp[:count]...))
			d, err := b.Build()
			if err != nil {
				continue // single group so far: not mineable, nothing to compare
			}
			got := di.Materialize(d, 0, count, []int{0})
			want := NewIndex(d)
			if !EqualIndex(got, want) {
				t.Fatalf("seed %d: fill level %d/%d: materialized delta index differs from rebuild",
					seed, count, window)
			}
		}
	}
}
