// Package bitmap provides uint64 bitsets and a per-value bitmap index over
// a dataset's categorical attributes and groups. Contrast set mining over
// categorical (or pre-binned) data reduces to intersecting value bitmaps
// and popcounting against group masks — the representation SciCSM (Zhu et
// al. 2015, the paper's ref [29]) builds its scientific-dataset contrast
// miner on. The STUCCO search uses this index for its candidate counting.
package bitmap

import (
	"math/bits"

	"sdadcs/internal/dataset"
)

// Set is a fixed-universe bitset over row indices 0..n-1.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set over a universe of n rows.
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+63)/64), n: n}
}

// Universe returns the universe size n.
func (s *Set) Universe() int { return s.n }

// Add inserts row i.
func (s *Set) Add(i int) {
	s.words[i>>6] |= 1 << uint(i&63)
}

// Flip toggles row i by XOR — the delta-maintenance primitive: XOR-ing a
// row in when it arrives and XOR-ing it out when it leaves keeps a bitmap
// equal to a from-scratch rebuild without ever scanning the column.
func (s *Set) Flip(i int) {
	s.words[i>>6] ^= 1 << uint(i&63)
}

// Equal reports whether two sets have the same universe and identical
// bits — the bit-identity check the incremental-index tests assert.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// Contains reports whether row i is present.
func (s *Set) Contains(i int) bool {
	return s.words[i>>6]&(1<<uint(i&63)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// AndCount returns |s ∩ o| without materializing the intersection — the
// hot operation when counting a candidate's per-group supports.
func (s *Set) AndCount(o *Set) int {
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w & o.words[i])
	}
	return c
}

// And returns a new set s ∩ o.
func (s *Set) And(o *Set) *Set {
	out := New(s.n)
	for i, w := range s.words {
		out.words[i] = w & o.words[i]
	}
	return out
}

// AndCountInto is the fused intersection kernel: one pass over the packed
// words computes dst = s ∩ o and its popcount together, instead of an And
// pass followed by a Count/Any pass. dst must share the universe; every
// word of dst is written, so dst may come from an Arena with undefined
// contents. Returns |s ∩ o|.
func (s *Set) AndCountInto(o, dst *Set) int {
	c := 0
	sw, ow, dw := s.words, o.words, dst.words
	if len(sw) == 0 {
		return 0
	}
	_ = dw[len(sw)-1] // one bounds check for the loop
	_ = ow[len(sw)-1]
	for i, w := range sw {
		w &= ow[i]
		dw[i] = w
		c += bits.OnesCount64(w)
	}
	return c
}

// AndCountAtLeast reports whether |s ∩ o| >= k without always completing
// the count: it succeeds as soon as the running popcount reaches k, and
// fails as soon as the remaining-words upper bound (64 bits per unseen
// word) cannot lift the running count to k. Exactly equivalent to
// AndCount(o) >= k; k <= 0 is trivially true.
func (s *Set) AndCountAtLeast(o *Set, k int) bool {
	if k <= 0 {
		return true
	}
	c := 0
	sw, ow := s.words, o.words
	remaining := len(sw) * 64
	for i, w := range sw {
		c += bits.OnesCount64(w & ow[i])
		if c >= k {
			return true
		}
		remaining -= 64
		if c+remaining < k {
			return false
		}
	}
	return c >= k
}

// AndInto writes s ∩ o into dst (which must share the universe) and
// returns dst; it avoids allocation in tight loops.
func (s *Set) AndInto(o, dst *Set) *Set {
	for i, w := range s.words {
		dst.words[i] = w & o.words[i]
	}
	return dst
}

// Fill sets every bit of the universe.
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	if r := uint(s.n & 63); r != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] = (1 << r) - 1
	}
}

// Any reports whether at least one bit is set. It short-circuits on the
// first non-zero word, so it is cheaper than Count() > 0 for sparse
// prefixes and dense sets alike.
func (s *Set) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Rows materializes the set bits as sorted row indices.
func (s *Set) Rows() []int {
	return s.AppendRows(make([]int, 0, s.Count()))
}

// AppendRows appends the set bits, in ascending order, to dst and returns
// the extended slice — the allocation-free materialization path for callers
// that reuse a buffer across many covers.
func (s *Set) AppendRows(dst []int) []int {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			dst = append(dst, wi<<6+b)
			w &= w - 1
		}
	}
	return dst
}

// ForEach calls fn for every set bit in ascending row order.
func (s *Set) ForEach(fn func(row int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi<<6 + b)
			w &= w - 1
		}
	}
}

// Index holds one bitmap per categorical value and per group of a dataset.
type Index struct {
	n int
	// values[attr][code] is the rows where the categorical attribute has
	// the code; nil for continuous attributes.
	values [][]*Set
	groups []*Set
}

// NewIndex builds the index over d's categorical attributes and groups.
func NewIndex(d *dataset.Dataset) *Index {
	n := d.Rows()
	idx := &Index{n: n, values: make([][]*Set, d.NumAttrs()), groups: make([]*Set, d.NumGroups())}
	for g := range idx.groups {
		idx.groups[g] = New(n)
	}
	for r := 0; r < n; r++ {
		idx.groups[d.Group(r)].Add(r)
	}
	for _, attr := range d.CategoricalAttrs() {
		domain := d.Domain(attr)
		sets := make([]*Set, len(domain))
		for code := range sets {
			sets[code] = New(n)
		}
		for r := 0; r < n; r++ {
			sets[d.CatCode(attr, r)].Add(r)
		}
		idx.values[attr] = sets
	}
	return idx
}

// Rows returns the universe size.
func (ix *Index) Rows() int { return ix.n }

// NumBitmaps returns how many bitmaps the index holds (one per categorical
// value plus one per group) — the build cost the metrics layer reports.
func (ix *Index) NumBitmaps() int {
	n := len(ix.groups)
	for _, sets := range ix.values {
		n += len(sets)
	}
	return n
}

// Value returns the bitmap of rows where attr = code.
func (ix *Index) Value(attr, code int) *Set { return ix.values[attr][code] }

// Group returns the bitmap of rows in group g.
func (ix *Index) Group(g int) *Set { return ix.groups[g] }

// GroupCounts popcounts a cover against every group mask.
func (ix *Index) GroupCounts(cover *Set) []int {
	out := make([]int, len(ix.groups))
	ix.GroupCountsInto(cover, out)
	return out
}

// GroupCountsInto is the fused multi-mask popcount kernel: one pass over
// the cover's words counts the intersection with every group mask at once,
// so each cover word is loaded exactly once and zero cover words are
// skipped for all groups together (deep-level covers are sparse). The
// result is written into out (len = number of groups) and is exactly
// GroupCounts — the bit-identical guarantee the golden-equality tests pin.
func (ix *Index) GroupCountsInto(cover *Set, out []int) {
	for g := range out {
		out[g] = 0
	}
	switch len(ix.groups) {
	case 2:
		// The paper's two-group case, hot enough to unroll: no inner loop,
		// both masks stream alongside the cover.
		g0, g1 := ix.groups[0].words, ix.groups[1].words
		c0, c1 := 0, 0
		for i, w := range cover.words {
			if w == 0 {
				continue
			}
			c0 += bits.OnesCount64(w & g0[i])
			c1 += bits.OnesCount64(w & g1[i])
		}
		out[0], out[1] = c0, c1
	default:
		for i, w := range cover.words {
			if w == 0 {
				continue
			}
			for g, gs := range ix.groups {
				out[g] += bits.OnesCount64(w & gs.words[i])
			}
		}
	}
}

// ChildCovers is the batched sibling-candidate kernel: it intersects a
// parent cover with every value bitmap of a categorical attribute in one
// fused pass. The parent word is loaded once per position for all siblings
// (instead of once per child as with per-child And calls), a zero parent
// word short-circuits every sibling at once, and each child's popcount is
// accumulated in the same pass. Child covers are drawn from the arena;
// empty children are recycled immediately and never emitted. emit is
// called in ascending code order with the child's cover and exact count —
// the same covers and counts per-child AndCountInto would produce.
func (ix *Index) ChildCovers(parent *Set, attr int, a *Arena, emit func(code int, cover *Set, count int)) {
	vals := ix.values[attr]
	covers, counts := a.scratch(len(vals))
	for c := range vals {
		covers[c] = a.Get()
		counts[c] = 0
	}
	for i, pw := range parent.words {
		if pw == 0 {
			for c := range vals {
				covers[c].words[i] = 0
			}
			continue
		}
		for c, v := range vals {
			w := pw & v.words[i]
			covers[c].words[i] = w
			counts[c] += bits.OnesCount64(w)
		}
	}
	for c := range vals {
		if counts[c] == 0 {
			a.Put(covers[c])
			continue
		}
		emit(c, covers[c], counts[c])
	}
}

// All returns a full-universe set.
func (ix *Index) All() *Set {
	s := New(ix.n)
	s.Fill()
	return s
}

// Shared returns the dataset's cached index, building it on first use
// through the dataset's Index slot — one build per dataset ever, shared by
// every Mine call and serve job holding the dataset. The index is
// immutable after construction, so sharing needs no further locking.
// built reports whether this call paid for the build (the signal the
// build-count metrics record).
func Shared(d *dataset.Dataset) (ix *Index, built bool) {
	v, built := d.Index().LoadOrBuild(func() any { return NewIndex(d) })
	return v.(*Index), built
}
