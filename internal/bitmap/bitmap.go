// Package bitmap provides uint64 bitsets and a per-value bitmap index over
// a dataset's categorical attributes and groups. Contrast set mining over
// categorical (or pre-binned) data reduces to intersecting value bitmaps
// and popcounting against group masks — the representation SciCSM (Zhu et
// al. 2015, the paper's ref [29]) builds its scientific-dataset contrast
// miner on. The STUCCO search uses this index for its candidate counting.
package bitmap

import (
	"math/bits"

	"sdadcs/internal/dataset"
)

// Set is a fixed-universe bitset over row indices 0..n-1.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set over a universe of n rows.
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+63)/64), n: n}
}

// Universe returns the universe size n.
func (s *Set) Universe() int { return s.n }

// Add inserts row i.
func (s *Set) Add(i int) {
	s.words[i>>6] |= 1 << uint(i&63)
}

// Contains reports whether row i is present.
func (s *Set) Contains(i int) bool {
	return s.words[i>>6]&(1<<uint(i&63)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// AndCount returns |s ∩ o| without materializing the intersection — the
// hot operation when counting a candidate's per-group supports.
func (s *Set) AndCount(o *Set) int {
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w & o.words[i])
	}
	return c
}

// And returns a new set s ∩ o.
func (s *Set) And(o *Set) *Set {
	out := New(s.n)
	for i, w := range s.words {
		out.words[i] = w & o.words[i]
	}
	return out
}

// AndInto writes s ∩ o into dst (which must share the universe) and
// returns dst; it avoids allocation in tight loops.
func (s *Set) AndInto(o, dst *Set) *Set {
	for i, w := range s.words {
		dst.words[i] = w & o.words[i]
	}
	return dst
}

// Fill sets every bit of the universe.
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	if r := uint(s.n & 63); r != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] = (1 << r) - 1
	}
}

// Any reports whether at least one bit is set. It short-circuits on the
// first non-zero word, so it is cheaper than Count() > 0 for sparse
// prefixes and dense sets alike.
func (s *Set) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Rows materializes the set bits as sorted row indices.
func (s *Set) Rows() []int {
	return s.AppendRows(make([]int, 0, s.Count()))
}

// AppendRows appends the set bits, in ascending order, to dst and returns
// the extended slice — the allocation-free materialization path for callers
// that reuse a buffer across many covers.
func (s *Set) AppendRows(dst []int) []int {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			dst = append(dst, wi<<6+b)
			w &= w - 1
		}
	}
	return dst
}

// ForEach calls fn for every set bit in ascending row order.
func (s *Set) ForEach(fn func(row int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi<<6 + b)
			w &= w - 1
		}
	}
}

// Index holds one bitmap per categorical value and per group of a dataset.
type Index struct {
	n int
	// values[attr][code] is the rows where the categorical attribute has
	// the code; nil for continuous attributes.
	values [][]*Set
	groups []*Set
}

// NewIndex builds the index over d's categorical attributes and groups.
func NewIndex(d *dataset.Dataset) *Index {
	n := d.Rows()
	idx := &Index{n: n, values: make([][]*Set, d.NumAttrs()), groups: make([]*Set, d.NumGroups())}
	for g := range idx.groups {
		idx.groups[g] = New(n)
	}
	for r := 0; r < n; r++ {
		idx.groups[d.Group(r)].Add(r)
	}
	for _, attr := range d.CategoricalAttrs() {
		domain := d.Domain(attr)
		sets := make([]*Set, len(domain))
		for code := range sets {
			sets[code] = New(n)
		}
		for r := 0; r < n; r++ {
			sets[d.CatCode(attr, r)].Add(r)
		}
		idx.values[attr] = sets
	}
	return idx
}

// Rows returns the universe size.
func (ix *Index) Rows() int { return ix.n }

// NumBitmaps returns how many bitmaps the index holds (one per categorical
// value plus one per group) — the build cost the metrics layer reports.
func (ix *Index) NumBitmaps() int {
	n := len(ix.groups)
	for _, sets := range ix.values {
		n += len(sets)
	}
	return n
}

// Value returns the bitmap of rows where attr = code.
func (ix *Index) Value(attr, code int) *Set { return ix.values[attr][code] }

// Group returns the bitmap of rows in group g.
func (ix *Index) Group(g int) *Set { return ix.groups[g] }

// GroupCounts popcounts a cover against every group mask.
func (ix *Index) GroupCounts(cover *Set) []int {
	out := make([]int, len(ix.groups))
	for g, gs := range ix.groups {
		out[g] = cover.AndCount(gs)
	}
	return out
}

// All returns a full-universe set.
func (ix *Index) All() *Set {
	s := New(ix.n)
	s.Fill()
	return s
}
