package bitmap

import (
	"math/rand"
	"strconv"
	"testing"

	"sdadcs/internal/dataset"
)

func benchData(n int) *dataset.Dataset {
	rng := rand.New(rand.NewSource(7))
	a := make([]string, n)
	b := make([]string, n)
	g := make([]string, n)
	for i := range a {
		a[i] = "a" + strconv.Itoa(rng.Intn(5))
		b[i] = "b" + strconv.Itoa(rng.Intn(5))
		g[i] = "g" + strconv.Itoa(i%2)
	}
	return dataset.NewBuilder("bench").
		AddCategorical("a", a).
		AddCategorical("b", b).
		SetGroups(g).
		MustBuild()
}

// BenchmarkCoverCountBitmap measures the bitmap path: intersect two value
// bitmaps and popcount per group.
func BenchmarkCoverCountBitmap(b *testing.B) {
	d := benchData(100000)
	ix := NewIndex(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cover := ix.Value(0, 1).And(ix.Value(1, 2))
		ix.GroupCounts(cover)
	}
}

// BenchmarkCoverCountView measures the equivalent row-scan path the miner
// would otherwise use.
func BenchmarkCoverCountView(b *testing.B) {
	d := benchData(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.All().FilterCat(0, 1).FilterCat(1, 2).GroupCounts()
	}
}

func BenchmarkIndexBuild(b *testing.B) {
	d := benchData(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewIndex(d)
	}
}

func BenchmarkAndCount(b *testing.B) {
	s1 := New(1 << 20)
	s2 := New(1 << 20)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1<<18; i++ {
		s1.Add(rng.Intn(1 << 20))
		s2.Add(rng.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s1.AndCount(s2)
	}
}
