// Package qar implements the quantitative association rule discretization
// of Srikant & Agrawal (1996), which the paper's §2 discusses as a
// candidate (and rejects): each continuous attribute is partitioned into n
// equal-frequency base intervals, and consecutive partitions whose support
// falls below the minimum-support threshold are merged. The scheme is
// global and univariate — choosing n trades information loss (too small)
// against cost (too large), and multivariate interactions are invisible —
// which is exactly the motivation for SDAD-CS's adaptive joint binning.
// It is provided as an additional baseline for comparison studies.
package qar

import (
	"sort"

	"sdadcs/internal/dataset"
	"sdadcs/internal/pattern"
	"sdadcs/internal/stucco"
)

// Config controls the discretization.
type Config struct {
	// Partitions is the initial number of equal-frequency intervals per
	// attribute (Srikant's n; default 10).
	Partitions int
	// MinSup is the minimum fraction of rows a final interval must hold;
	// adjacent intervals below it are merged (default 0.05).
	MinSup float64
}

func (c *Config) defaults() {
	if c.Partitions == 0 {
		c.Partitions = 10
	}
	if c.MinSup == 0 {
		c.MinSup = 0.05
	}
}

// Discretize computes the cut points for one attribute's values. Missing
// (NaN) values are skipped.
func Discretize(values []float64, cfg Config) []float64 {
	cfg.defaults()
	sorted := make([]float64, 0, len(values))
	for _, v := range values {
		if v == v { // skip NaN
			sorted = append(sorted, v)
		}
	}
	n := len(sorted)
	if n < 2 {
		return nil
	}
	sort.Float64s(sorted)

	// Equal-frequency boundaries, skipping duplicates (ties never split).
	var cuts []float64
	for b := 1; b < cfg.Partitions; b++ {
		idx := b * n / cfg.Partitions
		if idx <= 0 || idx >= n {
			continue
		}
		c := sorted[idx-1]
		if c >= sorted[n-1] {
			continue // would leave an empty last bin
		}
		if len(cuts) == 0 || c > cuts[len(cuts)-1] {
			cuts = append(cuts, c)
		}
	}

	// Merge consecutive partitions whose support is below MinSup.
	minCount := int(cfg.MinSup * float64(n))
	for {
		counts := binCounts(sorted, cuts)
		merged := false
		for b := 0; b < len(counts); b++ {
			if counts[b] >= minCount {
				continue
			}
			// Merge with a neighbor by deleting the adjacent cut: prefer
			// the smaller neighbor so interval sizes stay balanced.
			cutIdx := b // deleting cuts[b] merges bins b and b+1
			if b == len(counts)-1 || (b > 0 && counts[b-1] <= counts[b+1]) {
				cutIdx = b - 1 // merge with the left neighbor instead
			}
			if cutIdx < 0 || cutIdx >= len(cuts) {
				continue
			}
			cuts = append(cuts[:cutIdx], cuts[cutIdx+1:]...)
			merged = true
			break
		}
		if !merged || len(cuts) == 0 {
			return cuts
		}
	}
}

// binCounts counts sorted values per (lo, hi] bin induced by cuts.
func binCounts(sorted []float64, cuts []float64) []int {
	counts := make([]int, len(cuts)+1)
	b := 0
	for _, v := range sorted {
		for b < len(cuts) && v > cuts[b] {
			b++
		}
		counts[b]++
	}
	return counts
}

// DiscretizeDataset applies the scheme to every continuous attribute.
func DiscretizeDataset(d *dataset.Dataset, cfg Config) map[int][]float64 {
	out := make(map[int][]float64)
	for _, attr := range d.ContinuousAttrs() {
		out[attr] = Discretize(d.ContColumn(attr), cfg)
	}
	return out
}

// Result couples the mined contrasts with the discretization.
type Result struct {
	Contrasts []pattern.Contrast
	Cuts      map[int][]float64
	Binned    *dataset.Dataset
}

// Mine discretizes and runs the shared categorical contrast search.
func Mine(d *dataset.Dataset, cfg Config, search stucco.Config) Result {
	cuts := DiscretizeDataset(d, cfg)
	binned := dataset.Discretized(d, cuts)
	res := stucco.Mine(binned, search)
	return Result{Contrasts: res.Contrasts, Cuts: cuts, Binned: binned}
}
