package qar

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sdadcs/internal/datagen"
	"sdadcs/internal/stucco"
)

func TestDiscretizeEqualFrequency(t *testing.T) {
	// 1000 distinct values, 10 partitions: 9 cuts at the decile points.
	values := make([]float64, 1000)
	for i := range values {
		values[i] = float64(i)
	}
	cuts := Discretize(values, Config{Partitions: 10, MinSup: 0.01})
	if len(cuts) != 9 {
		t.Fatalf("cuts = %d, want 9", len(cuts))
	}
	for i, c := range cuts {
		want := float64((i+1)*100 - 1)
		if c != want {
			t.Errorf("cut %d = %v, want %v", i, c, want)
		}
	}
}

func TestDiscretizeMergesSmallBins(t *testing.T) {
	// Every final bin must hold at least MinSup of the rows.
	rng := rand.New(rand.NewSource(1))
	values := make([]float64, 500)
	for i := range values {
		values[i] = rng.NormFloat64()
	}
	cfg := Config{Partitions: 20, MinSup: 0.15}
	cuts := Discretize(values, cfg)
	sorted := make([]float64, len(values))
	copy(sorted, values)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	for b, c := range binCounts(sorted, cuts) {
		if c < int(cfg.MinSup*float64(len(values))) {
			t.Errorf("bin %d has %d rows, below minsup", b, c)
		}
	}
}

func TestDiscretizeTies(t *testing.T) {
	// Constant column: no cuts possible.
	values := []float64{5, 5, 5, 5, 5, 5, 5, 5}
	if cuts := Discretize(values, Config{Partitions: 4}); len(cuts) != 0 {
		t.Errorf("constant column produced cuts %v", cuts)
	}
	// Tiny input.
	if cuts := Discretize([]float64{1}, Config{}); cuts != nil {
		t.Error("single value should produce nil")
	}
}

// Property: cuts are strictly increasing and each lies strictly inside the
// value range.
func TestDiscretizeCutsOrderedProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%400 + 20
		values := make([]float64, n)
		for i := range values {
			values[i] = rng.Float64() * 100
		}
		cuts := Discretize(values, Config{Partitions: 8, MinSup: 0.05})
		lo, hi := values[0], values[0]
		for _, v := range values {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		for i, c := range cuts {
			if i > 0 && c <= cuts[i-1] {
				return false
			}
			if c < lo || c >= hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMinePipeline(t *testing.T) {
	d := datagen.Simulated1(2, 2000)
	res := Mine(d, Config{}, stucco.Config{MaxDepth: 1})
	if res.Binned == nil {
		t.Fatal("no binned dataset")
	}
	if len(res.Contrasts) == 0 {
		t.Fatal("QAR baseline found nothing on separable data")
	}
	// Equi-depth deciles chop the separable boundary into 0.1-wide bins:
	// strong but fragmented contrasts, the §2 critique.
	if res.Contrasts[0].Score < 0.15 {
		t.Errorf("top score = %v, want a decile-sized contrast", res.Contrasts[0].Score)
	}
}

func TestQARMissesInteraction(t *testing.T) {
	// The property the paper criticizes: on XOR data the univariate
	// equi-depth bins carry no signal at level 1.
	d := datagen.Simulated2(3, 2000)
	res := Mine(d, Config{}, stucco.Config{MaxDepth: 1})
	for _, c := range res.Contrasts {
		if c.Score > 0.15 {
			t.Errorf("unexpected strong univariate contrast %v on XOR data", c.Score)
		}
	}
}
