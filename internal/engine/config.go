package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"strings"

	"sdadcs/internal/core"
	"sdadcs/internal/metrics"
	"sdadcs/internal/pattern"
	"sdadcs/internal/trace"
)

// TopKUnbounded disables the result bound for any algorithm.
const TopKUnbounded = -1

// Config is the canonical mining configuration, a superset of every
// algorithm's knobs. The zero value runs sdadcs with the paper's defaults;
// fields an algorithm does not use are ignored by it (and excluded from
// its canonical key).
type Config struct {
	// Algorithm selects the miner: "sdadcs" (default), "stucco", "mvd",
	// "entropy" or "subgroup".
	Algorithm string

	// Shared search knobs (defaults match the paper's setup).
	Alpha    float64 // significance level (0 → 0.05)
	Delta    float64 // minimum support difference (0 → 0.1)
	MaxDepth int     // attributes per combination / beam depth (0 → algorithm default)
	TopK     int     // result bound (0 → 100, TopKUnbounded → unbounded)
	Workers  int     // parallel workers (0 → 1); result-neutral
	Measure  pattern.Measure

	// sdadcs-only knobs.
	MaxRecursion         int         // SDAD-CS recursion bound (0 → 8)
	OEMode               core.OEMode // optimistic-estimate variant
	DFS                  bool        // depth-first ablation
	NP                   bool        // the paper's no-pruning variant
	SkipMeaningfulFilter bool

	// Attrs restricts mining to these attribute indices; nil = all
	// (sdadcs, stucco).
	Attrs []int

	// Counting selects the support-counting engine (default bitmap); the
	// engines are bit-identical, so this is result-neutral.
	Counting core.CountingMode

	// Subgroup-discovery knobs.
	BeamWidth   int     // beam width (0 → 100)
	Bins        int     // equal-frequency boundaries per numeric attribute (0 → 8)
	MinCoverage int     // minimum rows covered (0 → 2)
	MinQuality  float64 // minimum WRACC (0 → 0.01)

	// MVD discretization knobs.
	BinSize   int // initial equal-frequency bin size (0 → 100)
	MaxSweeps int // merge sweep bound (0 → 50)

	// Observability sinks, shared by every algorithm; result-neutral.
	Metrics *metrics.Recorder
	Trace   *trace.Tracer
}

// algorithm resolves the default algorithm name.
func (c Config) algorithm() string {
	if c.Algorithm == "" {
		return "sdadcs"
	}
	return c.Algorithm
}

// coreConfig maps the shared + sdadcs fields onto core.Config.
func (c Config) coreConfig() core.Config {
	cc := core.Config{
		Alpha:                c.Alpha,
		Delta:                c.Delta,
		MaxDepth:             c.MaxDepth,
		MaxRecursion:         c.MaxRecursion,
		TopK:                 c.TopK,
		Measure:              c.Measure,
		OEMode:               c.OEMode,
		DFS:                  c.DFS,
		SkipMeaningfulFilter: c.SkipMeaningfulFilter,
		Attrs:                c.Attrs,
		Workers:              c.Workers,
		Counting:             c.Counting,
		Metrics:              c.Metrics,
		Trace:                c.Trace,
	}
	if c.NP {
		cc = cc.NP()
	}
	return cc
}

// Validate checks the configuration, collecting every violation as a
// *core.FieldError and returning them joined (flat — an HTTP layer can
// unwrap one level and errors.As each entry). The shared fields reuse
// core.Config's validation verbatim; algorithm-specific knobs add their
// own range checks.
func (c Config) Validate() error {
	var errs []error
	bad := func(field string, value any, reason string) {
		errs = append(errs, &core.FieldError{Field: field, Value: value, Reason: reason})
	}
	if _, ok := Lookup(c.algorithm()); !ok {
		bad("Algorithm", c.Algorithm,
			"unknown algorithm; one of "+strings.Join(Algorithms(), ", "))
	}
	cc := c.coreConfig()
	if err := cc.Validate(); err != nil {
		// core joins its FieldErrors; flatten so ours stay one level deep.
		if u, ok := err.(interface{ Unwrap() []error }); ok {
			errs = append(errs, u.Unwrap()...)
		} else {
			errs = append(errs, err)
		}
	}
	if c.BeamWidth < 0 {
		bad("BeamWidth", c.BeamWidth, "beam width must be >= 1; 0 selects the default 100")
	}
	if c.Bins < 0 {
		bad("Bins", c.Bins, "bin count must be >= 1; 0 selects the default 8")
	}
	if c.MinCoverage < 0 {
		bad("MinCoverage", c.MinCoverage, "minimum coverage must be >= 0; 0 selects the default 2")
	}
	if math.IsNaN(c.MinQuality) || c.MinQuality < 0 {
		bad("MinQuality", c.MinQuality, "minimum quality must be >= 0; 0 selects the default 0.01")
	}
	if c.BinSize < 0 {
		bad("BinSize", c.BinSize, "bin size must be >= 2; 0 selects the default 100")
	}
	if c.MaxSweeps < 0 {
		bad("MaxSweeps", c.MaxSweeps, "sweep bound must be >= 1; 0 selects the default 50")
	}
	return errors.Join(errs...)
}

// CanonicalKey serializes the result-affecting fields for the configured
// algorithm, defaults resolved, in a fixed order. Two configs producing
// the same mining result by construction share a key — the serving
// layer's result cache and singleflight deduplication are addressed by
// its hash.
func (c Config) CanonicalKey() string {
	if m, ok := Lookup(c.algorithm()); ok {
		return m.CanonicalKey(c)
	}
	return "algorithm=" + c.algorithm()
}

// CanonicalHash is the hex-encoded SHA-256 of CanonicalKey truncated to
// 16 bytes, matching core.Config.CanonicalHash's format.
func (c Config) CanonicalHash() string {
	sum := sha256.Sum256([]byte(c.CanonicalKey()))
	return hex.EncodeToString(sum[:16])
}

// attrsKey renders the Attrs restriction for canonical keys (sorted;
// "all" for nil), matching core.Config.CanonicalKey's convention.
func attrsKey(attrs []int) string {
	if attrs == nil {
		return "all"
	}
	sorted := append([]int(nil), attrs...)
	for i := 1; i < len(sorted); i++ { // insertion sort; attr lists are tiny
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	var b strings.Builder
	for i, a := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", a)
	}
	return b.String()
}
