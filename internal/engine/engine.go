// Package engine unifies every miner in the repository behind one
// interface: a dataset plus one canonical Config goes in, contrasts plus
// search statistics, an optional binned view, and the shared
// metrics/trace instrumentation come out — whichever algorithm ran.
//
// The registered algorithms are the paper's own SDAD-CS search plus the
// four baselines of its experimental comparison (§5): STUCCO over the raw
// categorical attributes, MVD and entropy/MDLP discretization feeding the
// shared categorical search, and Cortana-style subgroup discovery. All of
// them ride the same substrate — the dataset-cached bitmap index, the
// deterministic per-level worker fan-out, the metrics recorder, the trace
// ring and the top-k list — so engine-level knobs (Counting, Workers,
// Metrics, Trace) mean the same thing everywhere.
//
// Each algorithm also defines a canonical key over the Config fields that
// affect its result, which is what the serving layer's result cache is
// addressed by: two configs that provably mine the same thing share a
// key.
package engine

import (
	"context"
	"sort"
	"time"

	"sdadcs/internal/core"
	"sdadcs/internal/dataset"
	"sdadcs/internal/metrics"
	"sdadcs/internal/obs"
	"sdadcs/internal/pattern"
	"sdadcs/internal/trace"
)

// Miner is one registered algorithm.
type Miner interface {
	// Name is the wire name ("sdadcs", "stucco", "mvd", "entropy",
	// "subgroup") accepted by the serve API and cmd/contrast -algorithm.
	Name() string
	// Description is a one-line summary for listings.
	Description() string
	// Mine runs the algorithm. A canceled ctx returns partial results
	// plus ctx.Err(). The returned Result has Algorithm filled in by the
	// dispatcher.
	Mine(ctx context.Context, d *dataset.Dataset, cfg Config) (Result, error)
	// CanonicalKey serializes the result-affecting Config fields for this
	// algorithm, defaults resolved, in a fixed order. Fields the
	// algorithm ignores — and fields that provably do not change its
	// result (Workers, Counting, the observability sinks) — are excluded.
	CanonicalKey(cfg Config) string
}

// Result is a mining outcome, normalized across algorithms.
type Result struct {
	// Algorithm is the registered name of the miner that ran.
	Algorithm string
	// Contrasts are sorted by descending score.
	Contrasts []pattern.Contrast
	// Binned is the discretized dataset the contrasts' items refer to,
	// for algorithms that globally discretize first (mvd, entropy); nil
	// when the contrasts refer to the input dataset directly.
	Binned *dataset.Dataset
	// Cuts are the per-attribute cut points of the global discretization;
	// nil for algorithms that do not discretize.
	Cuts map[int][]float64
	// Meaning classifies each contrast (parallel to Contrasts) when the
	// meaningfulness filter ran; nil otherwise (only sdadcs fills it).
	Meaning []core.Meaningfulness
	// Stats normalizes search effort: PartitionsEvaluated counts
	// candidates whose supports were counted (plus, for mvd, the interval
	// pairs its merge loop tested), SpacesPruned counts candidates cut
	// before expansion.
	Stats core.Stats
	// Metrics is the instrumentation snapshot at the end of the run; nil
	// unless Config.Metrics was set.
	Metrics *metrics.Snapshot
	// Trace is the decision-event snapshot; nil unless Config.Trace was
	// set.
	Trace *trace.Trace
}

// instrument attaches the metrics/trace snapshots for adapters whose
// underlying miner streams into the sinks but does not snapshot them
// (core snapshots itself; the baselines use this).
func (r *Result) instrument(cfg Config) {
	if cfg.Trace != nil {
		cfg.Metrics.TraceVolume(cfg.Trace.Stats())
		r.Trace = cfg.Trace.Snapshot()
	}
	if cfg.Metrics != nil {
		s := cfg.Metrics.Snapshot()
		r.Metrics = &s
	}
}

var (
	registry = map[string]Miner{}
	order    []string
)

// Register adds an algorithm to the registry. Duplicate names panic —
// registration happens in this package's init only.
func Register(m Miner) {
	name := m.Name()
	if _, dup := registry[name]; dup {
		panic("engine: duplicate algorithm " + name)
	}
	registry[name] = m
	order = append(order, name)
	sort.Strings(order)
}

// Lookup resolves an algorithm by name.
func Lookup(name string) (Miner, bool) {
	m, ok := registry[name]
	return m, ok
}

// Algorithms returns the registered names, sorted — the vocabulary CLI
// flags and API fields advertise.
func Algorithms() []string {
	return append([]string(nil), order...)
}

// Mine dispatches to the configured algorithm (default "sdadcs").
func Mine(d *dataset.Dataset, cfg Config) (Result, error) {
	return MineContext(context.Background(), d, cfg)
}

// MineContext is Mine with cancellation. The config is validated first; a
// malformed config returns joined *core.FieldErrors and an empty Result.
//
// When ctx carries a logger (obs.WithLogger — the serving layer attaches
// one with the job's correlation IDs), the dispatch emits start/done
// records; with a bare context the path is log-free and costs nothing.
func MineContext(ctx context.Context, d *dataset.Dataset, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	m, _ := Lookup(cfg.algorithm()) // Validate guarantees the lookup
	log := obs.Log(ctx)
	log.InfoContext(ctx, "mine start",
		"algorithm", m.Name(),
		"dataset", d.Name(),
		"rows", d.Rows(),
		"attrs", d.NumAttrs())
	start := time.Now()
	res, err := m.Mine(ctx, d, cfg)
	res.Algorithm = m.Name()
	if err != nil {
		log.WarnContext(ctx, "mine done",
			"algorithm", m.Name(),
			"error", err.Error(),
			"duration_ms", float64(time.Since(start))/1e6)
	} else {
		log.InfoContext(ctx, "mine done",
			"algorithm", m.Name(),
			"contrasts", len(res.Contrasts),
			"partitions_evaluated", res.Stats.PartitionsEvaluated,
			"spaces_pruned", res.Stats.SpacesPruned,
			"duration_ms", float64(time.Since(start))/1e6)
	}
	return res, err
}
