package engine

import (
	"context"
	"fmt"

	"sdadcs/internal/core"
	"sdadcs/internal/dataset"
	"sdadcs/internal/entropy"
	"sdadcs/internal/mvd"
	"sdadcs/internal/stucco"
	"sdadcs/internal/subgroup"
)

func init() {
	Register(sdadcsMiner{})
	Register(stuccoMiner{})
	Register(mvdMiner{})
	Register(entropyMiner{})
	Register(subgroupMiner{})
}

// stuccoConfig maps the shared fields onto the STUCCO baseline's config
// (also the downstream search config for the mvd and entropy adapters).
func (c Config) stuccoConfig() stucco.Config {
	return stucco.Config{
		Alpha:         c.Alpha,
		Delta:         c.Delta,
		MaxDepth:      c.MaxDepth,
		TopK:          c.TopK,
		Measure:       c.Measure,
		Attrs:         c.Attrs,
		Workers:       c.Workers,
		SliceCounting: c.Counting == core.CountingSlice,
		Metrics:       c.Metrics,
		Trace:         c.Trace,
	}
}

// stuccoKey is the canonical-key fragment of the shared categorical
// search, defaults resolved as stucco.Config does.
func stuccoKey(c Config) string {
	alpha, delta, depth, topk := c.Alpha, c.Delta, c.MaxDepth, c.TopK
	if alpha == 0 {
		alpha = 0.05
	}
	if delta == 0 {
		delta = 0.1
	}
	if depth == 0 {
		depth = 5
	}
	if topk == 0 {
		topk = 100
	}
	if topk == TopKUnbounded {
		topk = 0
	}
	return fmt.Sprintf("alpha=%.17g;delta=%.17g;depth=%d;topk=%d;measure=%s;attrs=%s",
		alpha, delta, depth, topk, c.Measure, attrsKey(c.Attrs))
}

// sdadcsMiner adapts the paper's own search (internal/core).
type sdadcsMiner struct{}

func (sdadcsMiner) Name() string { return "sdadcs" }
func (sdadcsMiner) Description() string {
	return "the paper's SDAD-CS search: levelwise attribute combinations, statistically-guided median splits for continuous attributes, meaningfulness filter"
}

func (sdadcsMiner) Mine(ctx context.Context, d *dataset.Dataset, cfg Config) (Result, error) {
	res, err := core.MineContext(ctx, d, cfg.coreConfig())
	return Result{
		Contrasts: res.Contrasts,
		Meaning:   res.Meaning,
		Stats:     res.Stats,
		Metrics:   res.Metrics,
		Trace:     res.Trace,
	}, err
}

func (sdadcsMiner) CanonicalKey(cfg Config) string {
	return "algorithm=sdadcs;" + cfg.coreConfig().CanonicalKey()
}

// stuccoMiner adapts the STUCCO baseline (categorical attributes only).
type stuccoMiner struct{}

func (stuccoMiner) Name() string { return "stucco" }
func (stuccoMiner) Description() string {
	return "STUCCO contrast-set mining over the categorical attributes (Bay & Pazzani 2001)"
}

func (stuccoMiner) Mine(ctx context.Context, d *dataset.Dataset, cfg Config) (Result, error) {
	res, err := stucco.MineContext(ctx, d, cfg.stuccoConfig())
	out := Result{
		Contrasts: res.Contrasts,
		Stats: core.Stats{
			PartitionsEvaluated: res.Candidates,
			SpacesPruned:        res.Pruned,
		},
	}
	out.instrument(cfg)
	return out, err
}

func (stuccoMiner) CanonicalKey(cfg Config) string {
	return "algorithm=stucco;" + stuccoKey(cfg)
}

// mvdMiner adapts MVD discretization feeding the shared categorical
// search.
type mvdMiner struct{}

func (mvdMiner) Name() string { return "mvd" }
func (mvdMiner) Description() string {
	return "MVD multivariate discretization (Bay 2000) then the shared categorical search over the binned data"
}

func (mvdMiner) Mine(ctx context.Context, d *dataset.Dataset, cfg Config) (Result, error) {
	disc := mvd.DiscretizeDataset(d, mvd.Config{
		Alpha:     cfg.Alpha,
		BinSize:   cfg.BinSize,
		MaxSweeps: cfg.MaxSweeps,
	})
	binned := dataset.Discretized(d, disc.Cuts)
	res, err := stucco.MineContext(ctx, binned, cfg.stuccoConfig())
	out := Result{
		Contrasts: res.Contrasts,
		Binned:    binned,
		Cuts:      disc.Cuts,
		Stats: core.Stats{
			PartitionsEvaluated: disc.PairsEvaluated + res.Candidates,
			SpacesPruned:        res.Pruned,
		},
	}
	out.instrument(cfg)
	return out, err
}

func (mvdMiner) CanonicalKey(cfg Config) string {
	binSize, maxSweeps := cfg.BinSize, cfg.MaxSweeps
	if binSize == 0 {
		binSize = 100
	}
	if maxSweeps == 0 {
		maxSweeps = 50
	}
	return fmt.Sprintf("algorithm=mvd;binsize=%d;maxsweeps=%d;%s", binSize, maxSweeps, stuccoKey(cfg))
}

// entropyMiner adapts entropy/MDLP discretization feeding the shared
// categorical search.
type entropyMiner struct{}

func (entropyMiner) Name() string { return "entropy" }
func (entropyMiner) Description() string {
	return "entropy/MDLP discretization (Fayyad & Irani 1993) then the shared categorical search over the binned data"
}

func (entropyMiner) Mine(ctx context.Context, d *dataset.Dataset, cfg Config) (Result, error) {
	cuts := entropy.DiscretizeDataset(d)
	binned := dataset.Discretized(d, cuts)
	res, err := stucco.MineContext(ctx, binned, cfg.stuccoConfig())
	out := Result{
		Contrasts: res.Contrasts,
		Binned:    binned,
		Cuts:      cuts,
		Stats: core.Stats{
			PartitionsEvaluated: res.Candidates,
			SpacesPruned:        res.Pruned,
		},
	}
	out.instrument(cfg)
	return out, err
}

func (entropyMiner) CanonicalKey(cfg Config) string {
	// The MDLP pass has no knobs; the key is the downstream search's.
	return "algorithm=entropy;" + stuccoKey(cfg)
}

// subgroupMiner adapts Cortana-style subgroup discovery.
type subgroupMiner struct{}

func (subgroupMiner) Name() string { return "subgroup" }
func (subgroupMiner) Description() string {
	return "Cortana-style beam subgroup discovery with WRACC and interval conditions, pooled across groups"
}

func (subgroupMiner) Mine(ctx context.Context, d *dataset.Dataset, cfg Config) (Result, error) {
	res, err := subgroup.MineContext(ctx, d, subgroup.Config{
		BeamWidth:     cfg.BeamWidth,
		Depth:         cfg.MaxDepth,
		Bins:          cfg.Bins,
		TopK:          cfg.TopK,
		MinCoverage:   cfg.MinCoverage,
		MinQuality:    cfg.MinQuality,
		Measure:       cfg.Measure,
		Workers:       cfg.Workers,
		SliceCounting: cfg.Counting == core.CountingSlice,
		Metrics:       cfg.Metrics,
		Trace:         cfg.Trace,
	})
	out := Result{
		Contrasts: res.Contrasts,
		Stats:     core.Stats{PartitionsEvaluated: res.Evaluated},
	}
	out.instrument(cfg)
	return out, err
}

func (subgroupMiner) CanonicalKey(cfg Config) string {
	beam, depth, bins, topk, cov, qual := cfg.BeamWidth, cfg.MaxDepth, cfg.Bins, cfg.TopK, cfg.MinCoverage, cfg.MinQuality
	if beam == 0 {
		beam = 100
	}
	if depth == 0 {
		depth = 2
	}
	if bins == 0 {
		bins = 8
	}
	if topk == 0 {
		topk = 100
	}
	if topk == TopKUnbounded {
		topk = 0
	}
	if cov == 0 {
		cov = 2
	}
	if qual == 0 {
		qual = 0.01
	}
	return fmt.Sprintf("algorithm=subgroup;beam=%d;depth=%d;bins=%d;topk=%d;mincoverage=%d;minquality=%.17g;measure=%s",
		beam, depth, bins, topk, cov, qual, cfg.Measure)
}
