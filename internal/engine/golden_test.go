package engine_test

// Golden bit-equality battery at the engine layer: for every registered
// algorithm, the engine-level knobs that must be result-neutral — counting
// engine, worker count, instrumentation — are flipped pairwise over seeded
// adversarial datasets and the contrast lists are compared bit-for-bit
// (Float64bits on every score and statistic, exact counts, identical
// order). This is the contract Config.CanonicalKey relies on when it
// excludes those fields: two configs mapping to the same key really do
// produce byte-identical results.

import (
	"errors"
	"math"
	"testing"

	"sdadcs/internal/core"
	"sdadcs/internal/engine"
	"sdadcs/internal/metrics"
	"sdadcs/internal/oracle"
	"sdadcs/internal/pattern"
	"sdadcs/internal/trace"
)

// sameContrasts demands positional bitwise equality of two contrast lists.
func sameContrasts(t *testing.T, label string, got, want []pattern.Contrast) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d contrasts, want %d", label, len(got), len(want))
		return
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Set.Key() != w.Set.Key() {
			t.Errorf("%s: contrast %d key %q, want %q", label, i, g.Set.Key(), w.Set.Key())
			continue
		}
		if math.Float64bits(g.Score) != math.Float64bits(w.Score) ||
			math.Float64bits(g.ChiSq) != math.Float64bits(w.ChiSq) ||
			math.Float64bits(g.P) != math.Float64bits(w.P) {
			t.Errorf("%s: contrast %d (%s) score/chisq/p bits differ: (%v,%v,%v) vs (%v,%v,%v)",
				label, i, g.Set.Key(), g.Score, g.ChiSq, g.P, w.Score, w.ChiSq, w.P)
		}
		for gi := range g.Supports.Count {
			if g.Supports.Count[gi] != w.Supports.Count[gi] {
				t.Errorf("%s: contrast %d (%s) count[g%d] = %d, want %d",
					label, i, g.Set.Key(), gi, g.Supports.Count[gi], w.Supports.Count[gi])
			}
		}
	}
}

// TestGoldenEngineNeutralKnobs flips each result-neutral knob against the
// baseline run for every algorithm over a spread of seeds.
func TestGoldenEngineNeutralKnobs(t *testing.T) {
	// MVD's default 100-row bins would collapse the small oracle datasets
	// to one bin; BinSize 10 makes its pipeline do real work.
	base := engine.Config{BinSize: 10}
	for _, alg := range engine.Algorithms() {
		alg := alg
		t.Run(alg, func(t *testing.T) {
			for seed := int64(0); seed < 12; seed++ {
				d := oracle.Generate(seed)
				cfg := base
				cfg.Algorithm = alg
				want, err := engine.Mine(d, cfg)
				if err != nil {
					t.Fatalf("seed %d: baseline run: %v", seed, err)
				}

				variants := []struct {
					label string
					mut   func(*engine.Config)
				}{
					{"slice-counting", func(c *engine.Config) { c.Counting = core.CountingSlice }},
					{"workers-8", func(c *engine.Config) { c.Workers = 8 }},
					{"metrics-and-trace-on", func(c *engine.Config) {
						c.Metrics = metrics.New()
						c.Trace = trace.New(1 << 16)
					}},
				}
				for _, v := range variants {
					vcfg := cfg
					v.mut(&vcfg)
					got, err := engine.Mine(d, vcfg)
					if err != nil {
						t.Fatalf("seed %d: %s: %v", seed, v.label, err)
					}
					sameContrasts(t, alg+"/"+v.label, got.Contrasts, want.Contrasts)
				}
				if t.Failed() {
					t.Fatalf("stopping at first divergent seed %d", seed)
				}
			}
		})
	}
}

// TestGoldenEngineInstrumentation verifies that the instrumentation the
// neutral-knob battery proved result-neutral actually lands in the Result:
// every algorithm must fill Metrics and Trace when sinks are attached, and
// leave them nil otherwise.
func TestGoldenEngineInstrumentation(t *testing.T) {
	d := oracle.Generate(3)
	for _, alg := range engine.Algorithms() {
		bare, err := engine.Mine(d, engine.Config{Algorithm: alg, BinSize: 10})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if bare.Metrics != nil || bare.Trace != nil {
			t.Errorf("%s: instrumentation snapshots present without sinks", alg)
		}
		if bare.Algorithm != alg {
			t.Errorf("%s: Result.Algorithm = %q", alg, bare.Algorithm)
		}
		res, err := engine.Mine(d, engine.Config{
			Algorithm: alg, BinSize: 10,
			Metrics: metrics.New(), Trace: trace.New(1 << 16),
		})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.Metrics == nil {
			t.Errorf("%s: no metrics snapshot", alg)
		}
		if res.Trace == nil {
			t.Errorf("%s: no trace snapshot", alg)
		} else if len(res.Trace.Events) == 0 {
			t.Errorf("%s: trace snapshot has no events", alg)
		}
	}
}

// TestGoldenCanonicalKeys pins the canonical-key contract: result-neutral
// fields are excluded, defaults resolve to the same key as explicit
// values, and every result-affecting knob separates keys.
func TestGoldenCanonicalKeys(t *testing.T) {
	for _, alg := range engine.Algorithms() {
		zero := engine.Config{Algorithm: alg}
		neutral := engine.Config{
			Algorithm: alg,
			Workers:   8,
			Counting:  core.CountingSlice,
			Metrics:   metrics.New(),
			Trace:     trace.New(1 << 10),
		}
		if zero.CanonicalKey() != neutral.CanonicalKey() {
			t.Errorf("%s: neutral knobs changed the canonical key:\n  %s\n  %s",
				alg, zero.CanonicalKey(), neutral.CanonicalKey())
		}
		explicit := engine.Config{Algorithm: alg, Alpha: 0.05, TopK: 100}
		if zero.CanonicalKey() != explicit.CanonicalKey() {
			t.Errorf("%s: explicit defaults changed the canonical key:\n  %s\n  %s",
				alg, zero.CanonicalKey(), explicit.CanonicalKey())
		}
		if zero.CanonicalHash() != explicit.CanonicalHash() {
			t.Errorf("%s: canonical hashes differ for equivalent configs", alg)
		}
		altered := engine.Config{Algorithm: alg, Alpha: 0.01}
		if alg != "subgroup" { // subgroup's beam is WRACC-driven; Alpha is unused
			if zero.CanonicalKey() == altered.CanonicalKey() {
				t.Errorf("%s: Alpha change did not separate canonical keys", alg)
			}
		}
		otherMeasure := engine.Config{Algorithm: alg, Measure: pattern.GrowthRateMeasure}
		if zero.CanonicalKey() == otherMeasure.CanonicalKey() {
			t.Errorf("%s: Measure change did not separate canonical keys", alg)
		}
	}
	// Algorithm always separates keys.
	seen := map[string]string{}
	for _, alg := range engine.Algorithms() {
		key := engine.Config{Algorithm: alg}.CanonicalKey()
		if prev, dup := seen[key]; dup {
			t.Errorf("algorithms %s and %s share canonical key %q", prev, alg, key)
		}
		seen[key] = alg
	}
}

// TestGoldenEngineValidate pins the typed validation surface.
func TestGoldenEngineValidate(t *testing.T) {
	_, err := engine.Mine(oracle.Generate(0), engine.Config{Algorithm: "nope"})
	if err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if !fieldErrorOn(err, "Algorithm") {
		t.Errorf("unknown algorithm error = %v, want *core.FieldError on Algorithm", err)
	}

	bad := engine.Config{Algorithm: "subgroup", BeamWidth: -1, Bins: -2, MinQuality: math.NaN()}
	err = bad.Validate()
	if err == nil {
		t.Fatal("invalid subgroup config accepted")
	}
	for _, field := range []string{"BeamWidth", "Bins", "MinQuality"} {
		if !fieldErrorOn(err, field) {
			t.Errorf("missing FieldError on %s in %v", field, err)
		}
	}
}

func fieldErrorOn(err error, field string) bool {
	var check func(error) bool
	check = func(e error) bool {
		var f *core.FieldError
		if errors.As(e, &f) && f.Field == field {
			return true
		}
		if u, ok := e.(interface{ Unwrap() []error }); ok {
			for _, inner := range u.Unwrap() {
				if check(inner) {
					return true
				}
			}
		}
		return false
	}
	return check(err)
}
