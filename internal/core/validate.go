package core

import (
	"sdadcs/internal/dataset"
	"sdadcs/internal/pattern"
	"sdadcs/internal/stats"
)

// Validation is the holdout verdict for one contrast.
type Validation struct {
	// Supports are the contrast's supports on the holdout rows, relative
	// to the holdout's per-group sizes.
	Supports pattern.Supports
	// Large reports whether the holdout support difference exceeds δ.
	Large bool
	// Significant reports whether the group association replicates at α
	// on the holdout (chi-square; Fisher's exact when expected counts are
	// too small for the asymptotic test).
	Significant bool
	// SameDirection reports whether the over-represented group on the
	// holdout matches the mining result.
	SameDirection bool
}

// Replicates reports whether the pattern fully held up out of sample.
func (v Validation) Replicates() bool {
	return v.Large && v.Significant && v.SameDirection
}

// ValidateHoldout re-evaluates mined contrasts on held-out rows (typically
// the second view of dataset.View.StratifiedSplit). Mining many patterns
// on one sample invites spurious discoveries even with the Bonferroni
// schedule; replication on untouched data is the direct check. Supports
// here are relative to the holdout's own group sizes, so mining and
// validation supports are comparable.
func ValidateHoldout(holdout dataset.View, cs []pattern.Contrast, delta, alpha float64) []Validation {
	sizes := holdout.GroupCounts()
	out := make([]Validation, len(cs))
	for i, c := range cs {
		counts := c.Set.Cover(holdout).GroupCounts()
		sup := pattern.CountsToSupports(counts, sizes)
		v := Validation{Supports: sup}
		v.Large = sup.MaxDiff() > delta
		x, y := extremeGroups(c.Supports)
		v.SameDirection = sup.Supp(x) > sup.Supp(y)
		if test, err := stats.ChiSquare2xK(counts, sizes); err == nil {
			if test.MinExpected >= 5 {
				v.Significant = test.P < alpha
			} else if len(counts) == 2 {
				p := stats.FisherExact22(counts[0], sizes[0]-counts[0],
					counts[1], sizes[1]-counts[1])
				v.Significant = p < alpha
			}
		}
		out[i] = v
	}
	return out
}

// ReplicationRate is the fraction of contrasts that replicate on the
// holdout (0 for an empty list).
func ReplicationRate(vs []Validation) float64 {
	if len(vs) == 0 {
		return 0
	}
	n := 0
	for _, v := range vs {
		if v.Replicates() {
			n++
		}
	}
	return float64(n) / float64(len(vs))
}
