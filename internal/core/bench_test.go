package core

import (
	"testing"

	"sdadcs/internal/datagen"
	"sdadcs/internal/metrics"
	"sdadcs/internal/pattern"
)

func BenchmarkJointDiscretize1D(b *testing.B) {
	d := datagen.Figure2(1, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		JointDiscretize(d, []int{0}, pattern.NewItemset(),
			Config{Measure: pattern.SurprisingMeasure})
	}
}

func BenchmarkJointDiscretize2D(b *testing.B) {
	d := datagen.Simulated2(2, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		JointDiscretize(d, []int{0, 1}, pattern.NewItemset(),
			Config{Measure: pattern.SurprisingMeasure})
	}
}

func BenchmarkMineMixed(b *testing.B) {
	d := datagen.Adult(datagen.AdultConfig{Seed: 1, Bachelors: 2000, Doctorate: 300})
	attrs := []int{d.AttrIndex("age"), d.AttrIndex("hours_per_week"), d.AttrIndex("occupation")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mine(d, Config{Attrs: attrs, MaxDepth: 2})
	}
}

func BenchmarkOptimisticEstimate(b *testing.B) {
	sup := pattern.CountsToSupports([]int{340, 120}, []int{1000, 800})
	for i := 0; i < b.N; i++ {
		optimisticEstimate(sup, 460, 2, OEModePaper, pattern.SupportDiff)
	}
}

func BenchmarkClassify(b *testing.B) {
	d := datagen.Simulated4(3, 2000)
	res := Mine(d, Config{SkipMeaningfulFilter: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Classify(d, res.Contrasts, 0.05)
	}
}

func BenchmarkPruneTableSubsetLookup(b *testing.B) {
	table := make(pruneTable)
	table[pattern.NewItemset(pattern.CatItem(2, 1)).Key()] = struct{}{}
	set := pattern.NewItemset(
		pattern.CatItem(0, 1),
		pattern.RangeItem(1, 0, 5),
		pattern.CatItem(2, 1),
		pattern.RangeItem(3, 2, 8),
	)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table.hasPrunedSubset(set)
	}
}

// BenchmarkMergeHeavy guards the bottom-up merge against the former
// restart-everything rescan (O(n³) chi-square evaluations on merge-heavy
// windows): a long chain of contiguous, similar spaces that collapses into
// one. With failure memoization and ordered insertion each distinct pair
// is evaluated at most once.
func BenchmarkMergeHeavy(b *testing.B) {
	cfg := Config{}
	cfg.defaults()
	cfg.Delta = 0.001
	sizes := []int{6000, 6000}
	r := &sdadRun{cfg: &cfg, alpha: cfg.Alpha, sizes: sizes}
	spaces := mergeChain(64, []int{60, 6}, sizes, &cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := r.merge(spaces); len(got) != 1 {
			b.Fatalf("chain did not collapse: %d spaces", len(got))
		}
	}
}

// BenchmarkMineMixedMetrics pairs BenchmarkMineMixed with and without a
// recorder, proving the disabled path stays benchmark-neutral and the
// enabled path's overhead is bounded.
func BenchmarkMineMixedMetrics(b *testing.B) {
	d := datagen.Adult(datagen.AdultConfig{Seed: 1, Bachelors: 2000, Doctorate: 300})
	attrs := []int{d.AttrIndex("age"), d.AttrIndex("hours_per_week"), d.AttrIndex("occupation")}
	b.Run("disabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Mine(d, Config{Attrs: attrs, MaxDepth: 2})
		}
	})
	b.Run("enabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Mine(d, Config{Attrs: attrs, MaxDepth: 2, Metrics: metrics.New()})
		}
	})
}
