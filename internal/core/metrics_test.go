package core

import (
	"encoding/json"
	"reflect"
	"testing"

	"sdadcs/internal/datagen"
	"sdadcs/internal/metrics"
	"sdadcs/internal/pattern"
)

// TestMineMetricsSnapshot: an instrumented run reports per-level node
// counts and wall times, per-rule prune hits, and SDAD-CS work counters,
// and attaches the snapshot to the result.
func TestMineMetricsSnapshot(t *testing.T) {
	d := datagen.Adult(datagen.AdultConfig{Seed: 3, Bachelors: 800, Doctorate: 200})
	attrs := []int{d.AttrIndex("age"), d.AttrIndex("hours_per_week"), d.AttrIndex("occupation")}

	rec := metrics.New()
	res := Mine(d, Config{Attrs: attrs, MaxDepth: 2, Metrics: rec})

	if res.Metrics == nil {
		t.Fatal("Result.Metrics nil despite Config.Metrics")
	}
	s := res.Metrics
	if len(s.Levels) != 2 {
		t.Fatalf("levels = %d, want 2 (MaxDepth)", len(s.Levels))
	}
	for _, l := range s.Levels {
		if l.Nodes == 0 {
			t.Errorf("level %d has no nodes", l.Level)
		}
		if l.WallNanos <= 0 {
			t.Errorf("level %d wall time = %d, want > 0", l.Level, l.WallNanos)
		}
	}
	if s.Levels[0].Survivors == 0 {
		t.Error("level 1 has no survivors, yet level 2 ran")
	}
	if s.SDADCalls == 0 || s.Splits == 0 || s.BoxesExplored == 0 {
		t.Errorf("SDAD counters empty: calls=%d splits=%d boxes=%d",
			s.SDADCalls, s.Splits, s.BoxesExplored)
	}
	if s.TotalPruned() == 0 {
		t.Error("no prune hits recorded on a pruning-enabled run")
	}
	if s.NodeEval.Count == 0 {
		t.Error("node evaluation histogram empty")
	}
	// Stats.SDADCalls and the metrics counter must agree: they count the
	// same event from two observation points.
	if int64(res.Stats.SDADCalls) != s.SDADCalls {
		t.Errorf("Stats.SDADCalls=%d, metrics=%d", res.Stats.SDADCalls, s.SDADCalls)
	}
	if int64(res.Stats.MergeOps) != s.MergeOps {
		t.Errorf("Stats.MergeOps=%d, metrics=%d", res.Stats.MergeOps, s.MergeOps)
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("snapshot not JSON-marshalable: %v", err)
	}
}

// TestMineMetricsNeutral: instrumentation must not change mining results,
// for any worker count; a disabled run attaches no snapshot.
func TestMineMetricsNeutral(t *testing.T) {
	d := datagen.Adult(datagen.AdultConfig{Seed: 7, Bachelors: 600, Doctorate: 150})
	attrs := []int{d.AttrIndex("age"), d.AttrIndex("occupation"), d.AttrIndex("sex")}
	base := Mine(d, Config{Attrs: attrs, MaxDepth: 2})
	if base.Metrics != nil {
		t.Fatal("uninstrumented run attached a metrics snapshot")
	}
	for _, workers := range []int{1, 4} {
		res := Mine(d, Config{
			Attrs: attrs, MaxDepth: 2, Workers: workers,
			Metrics: metrics.New(), PprofLabels: workers > 1,
		})
		if !reflect.DeepEqual(contrastKeys(base.Contrasts), contrastKeys(res.Contrasts)) {
			t.Errorf("workers=%d: instrumented contrasts differ from baseline", workers)
		}
		if res.Stats != base.Stats {
			t.Errorf("workers=%d: stats differ: %+v vs %+v", workers, res.Stats, base.Stats)
		}
	}
}

// TestMineMetricsParallelRace exercises the shared recorder from parallel
// per-level workers (meaningful under -race).
func TestMineMetricsParallelRace(t *testing.T) {
	d := datagen.Manufacturing(datagen.ManufacturingConfig{
		Seed: 5, Population: 800, Failed: 200, Features: 12,
	})
	rec := metrics.New()
	res := Mine(d, Config{MaxDepth: 2, Workers: 8, Metrics: rec, PprofLabels: true})
	if res.Metrics == nil || res.Metrics.NodeEval.Count == 0 {
		t.Fatal("parallel instrumented run recorded nothing")
	}
	if got := res.Metrics.Levels[0].Workers; got != 8 {
		t.Errorf("level 1 worker fan-out = %d, want 8", got)
	}
}

// TestMineMetricsThresholdUpdates: a small top-k forces threshold motion,
// which the recorder must observe via the topk wiring.
func TestMineMetricsThresholdUpdates(t *testing.T) {
	d := datagen.Simulated2(4, 1200)
	rec := metrics.New()
	res := Mine(d, Config{TopK: 3, Metrics: rec, SkipMeaningfulFilter: true,
		Measure: pattern.SurprisingMeasure})
	if len(res.Contrasts) == 0 {
		t.Fatal("no contrasts")
	}
	if res.Metrics.ThresholdUpdates == 0 {
		t.Error("no threshold updates recorded with TopK=3")
	}
}

// TestJointDiscretizeMetrics: the standalone discretizer threads the same
// recorder.
func TestJointDiscretizeMetrics(t *testing.T) {
	d := datagen.Figure2(1, 1500)
	rec := metrics.New()
	boxes := JointDiscretize(d, []int{0}, pattern.NewItemset(),
		Config{Measure: pattern.SurprisingMeasure, Metrics: rec})
	if len(boxes) == 0 {
		t.Fatal("no boxes")
	}
	s := rec.Snapshot()
	if s.SDADCalls != 1 {
		t.Errorf("SDADCalls = %d, want 1", s.SDADCalls)
	}
	if s.Splits == 0 || s.BoxesExplored == 0 {
		t.Errorf("discretizer counters empty: %+v", s)
	}
}

func contrastKeys(cs []pattern.Contrast) []string {
	keys := make([]string, len(cs))
	for i, c := range cs {
		keys[i] = c.Set.Key()
	}
	return keys
}
