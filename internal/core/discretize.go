package core

import (
	"sdadcs/internal/dataset"
	"sdadcs/internal/pattern"
	"sdadcs/internal/stucco"
	"sdadcs/internal/topk"
)

// JointDiscretize runs Algorithm 1 directly on one set of continuous
// attributes (optionally under a categorical context), without the
// combination search: it returns the contrast boxes SDAD-CS carves out of
// the joint space, after bottom-up merging. This is the paper's
// discretizer exposed as a standalone tool — useful when the caller
// already knows which attributes interact, or wants the adaptive bins
// themselves rather than a full pattern search.
//
// The context itemset restricts the rows considered (pass the empty
// itemset for the whole dataset); supports are still reported against the
// full group sizes, as everywhere in the paper.
func JointDiscretize(d *dataset.Dataset, contAttrs []int, context pattern.Itemset, cfg Config) []pattern.Contrast {
	cfg.defaults()
	for _, attr := range contAttrs {
		if d.Attr(attr).Kind != dataset.Continuous {
			panic("core: JointDiscretize requires continuous attributes")
		}
	}
	list := topk.New(cfg.TopK, cfg.scoreFloor()).WithRecorder(cfg.Metrics).WithTracer(cfg.Trace)
	run := &sdadRun{
		d:         d,
		cfg:       &cfg,
		prune:     cfg.pruning(),
		contAttrs: contAttrs,
		alpha:     cfg.Alpha,
		threshold: cfg.scoreFloor(),
		memo:      newSupportMemo(d),
		table:     make(pruneTable),
		sizes:     d.GroupSizes(),
		totalRows: d.Rows(),
		rec:       cfg.Metrics,
		tr:        cfg.Trace,
	}
	for _, c := range run.run(context, context.Cover(d.All())) {
		list.Add(c)
	}
	return list.Contrasts()
}

// CutPoints extracts, per attribute, the sorted distinct finite bin
// boundaries appearing in a contrast list — the discretization induced by
// the mined boxes, in the same form the global binning baselines produce.
// It lets SDAD-CS drive the same downstream pipelines (e.g.
// dataset.Discretized + stucco.Mine) as MVD or entropy binning.
func CutPoints(cs []pattern.Contrast) map[int][]float64 {
	seen := map[int]map[float64]struct{}{}
	add := func(attr int, v float64) {
		if v != v || v < -maxFinite || v > maxFinite {
			return // skip NaN / ±Inf
		}
		if seen[attr] == nil {
			seen[attr] = map[float64]struct{}{}
		}
		seen[attr][v] = struct{}{}
	}
	for _, c := range cs {
		for _, it := range c.Set.Items() {
			if it.Kind != dataset.Continuous {
				continue
			}
			add(it.Attr, it.Range.Lo)
			add(it.Attr, it.Range.Hi)
		}
	}
	out := make(map[int][]float64, len(seen))
	for attr, vals := range seen {
		cuts := make([]float64, 0, len(vals))
		for v := range vals {
			cuts = append(cuts, v)
		}
		sortFloats(cuts)
		out[attr] = cuts
	}
	return out
}

const maxFinite = 1.7976931348623157e308

func sortFloats(v []float64) {
	// Insertion sort: cut-point lists are tiny and this avoids an import.
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// MineWithBins discretizes the given continuous attributes with SDAD-CS's
// joint adaptive binning and then runs the shared categorical search over
// the binned dataset — the "SDAD-CS as a drop-in discretizer" pipeline,
// directly comparable to mvd.Mine and entropy.Mine.
func MineWithBins(d *dataset.Dataset, contAttrs []int, cfg Config, search stucco.Config) ([]pattern.Contrast, *dataset.Dataset) {
	boxes := JointDiscretize(d, contAttrs, pattern.NewItemset(), cfg)
	binned := dataset.Discretized(d, CutPoints(boxes))
	res := stucco.Mine(binned, search)
	return res.Contrasts, binned
}
