package core

import (
	"math"
	"strconv"
	"strings"

	"sdadcs/internal/dataset"
	"sdadcs/internal/pattern"
)

// This file implements selective re-evaluation on window slide: the
// incremental-re-mine gate that lets a stream monitor carry node outcomes
// forward from the previous window instead of re-running the full
// levelwise search (ROADMAP item 2, the "continuous contrast set mining"
// shape of Qian et al.).
//
// The contract is bit-identity, not approximation. A node outcome is
// replayed only when the change summary *proves* its inputs are unchanged:
//
//   - The dataset fingerprint must match (row count, per-attribute domains
//     in the same first-appearance code order, group names and sizes, and
//     the canonical mining config). Domain codes are positional, so a
//     reordered domain invalidates every cached itemset.
//   - The level's Bonferroni alpha and — for nodes handed to SDAD-CS — the
//     top-k threshold observed at level start must equal the cached bits.
//   - The lookup table must have evolved identically through the previous
//     level (see remineGate.advanceLevel): SDAD-CS consults table keys that
//     other, dirty nodes may have inserted, so table divergence poisons
//     every later cached outcome, even for nodes whose own cover is clean.
//   - The node's categorical context must be provably untouched: every row
//     that entered, left, or mutated inside a value's cover increments that
//     value's touched count (bitmap.DeltaIndex.Touch), so touched == 0 for
//     every item means the cover holds the same multiset of full rows —
//     identical group counts, identical continuous projections, identical
//     SDAD-CS medians.
//
// Two cases stay dirty even with clean items. A node with an empty
// categorical context covers all rows, so any touched row dirties it. And
// a single-item mixed node under the CLT redundancy rule is dirty because
// dropping its one categorical item yields range-only subsets whose
// supports are counted over the full dataset — which the summary does not
// bound per-range. With two or more clean categorical items every one-drop
// subset retains a clean item, confining its support to unchanged rows.

// ChangeSummary is the caller-supplied description of what changed in the
// dataset since the previous RemineState was captured. Touched maps a
// categorical attribute index (in the *current* dataset's attribute space)
// to per-value touched-row counts; a value absent from its map was touched
// zero times, an attribute absent from Touched is treated as unknown (all
// its values dirty). RowsTouched == 0 asserts the dataset content is
// row-for-row identical to the previous window.
//
// The summary must be truthful: the gate trusts a zero to mean "provably
// unchanged". The stream monitor builds it from bitmap.DeltaIndex.Touch,
// which compares full rows (float bits, categorical values, group label).
type ChangeSummary struct {
	RowsTouched int
	Touched     map[int]map[string]int
}

// CLTSupportBound returns the Eq. 14–16 half-width α·√(a+b) of the CLT
// band around a pattern's support difference between its extreme groups —
// the same arithmetic redundantByCLT applies to one-drop subsets, exposed
// as a reusable bound. The incremental gate uses it as an observability
// signal: a dirty pattern whose worst-case support shift stays inside this
// band is a "near-crossing" — a looser, statistically-gated re-mine could
// have carried it forward, but the bit-identity contract re-counts it.
func CLTSupportBound(sup pattern.Supports, alpha float64) float64 {
	x, y := extremeGroups(sup)
	a := sup.Supp(x) * (1 - sup.Supp(x)) / float64(sup.Size[x])
	b := sup.Supp(y) * (1 - sup.Supp(y)) / float64(sup.Size[y])
	return alpha * math.Sqrt(a+b)
}

// RemineState is the opaque carry-over from one Mine to the next over a
// sliding window: the dataset fingerprint the cached outcomes were
// computed against, plus per-level cached node outcomes and lookup-table
// insert logs. Produced and consumed by MineIncremental; a nil state means
// "nothing replayable" and yields a plain full mine.
type RemineState struct {
	rows    int
	domains [][]string // per attribute; nil for continuous attributes
	groups  []string
	sizes   []int
	cfgKey  string
	levels  []remineLevel
}

// remineLevel caches one processed level: the exact alpha and top-k
// threshold its nodes were evaluated under, every node's outcome keyed by
// signature, and the ordered lookup-table keys the level inserted (the
// table-evolution log).
type remineLevel struct {
	alphaBits     uint64
	thresholdBits uint64
	nodes         map[string]nodeOutcome
	inserts       []string
}

// newRemineState captures the fingerprint of the dataset and config a mine
// is about to run against; levels are appended as they are processed.
func newRemineState(d *dataset.Dataset, cfgKey string) *RemineState {
	s := &RemineState{
		rows:    d.Rows(),
		domains: make([][]string, d.NumAttrs()),
		groups:  make([]string, d.NumGroups()),
		sizes:   append([]int(nil), d.GroupSizes()...),
		cfgKey:  cfgKey,
	}
	for a := 0; a < d.NumAttrs(); a++ {
		if d.Attr(a).Kind != dataset.Categorical {
			continue
		}
		s.domains[a] = append([]string(nil), d.Domain(a)...)
	}
	for g := 0; g < d.NumGroups(); g++ {
		s.groups[g] = d.GroupName(g)
	}
	return s
}

// matches reports whether the state's fingerprint equals the given
// dataset + config. Snapshot datasets re-assign domain codes in
// first-appearance order every window, so domains must match value-for-
// value *in order* — cached itemsets store codes, not strings.
func (s *RemineState) matches(d *dataset.Dataset, cfgKey string) bool {
	if s == nil || s.cfgKey != cfgKey || s.rows != d.Rows() ||
		len(s.domains) != d.NumAttrs() || len(s.groups) != d.NumGroups() {
		return false
	}
	for g, name := range s.groups {
		if d.GroupName(g) != name {
			return false
		}
	}
	sizes := d.GroupSizes()
	for g := range sizes {
		if sizes[g] != s.sizes[g] {
			return false
		}
	}
	for a := range s.domains {
		if d.Attr(a).Kind != dataset.Categorical {
			if s.domains[a] != nil {
				return false
			}
			continue
		}
		dom := d.Domain(a)
		if len(dom) != len(s.domains[a]) {
			return false
		}
		for i := range dom {
			if dom[i] != s.domains[a][i] {
				return false
			}
		}
	}
	return true
}

// nodeSignature is a node's identity across runs: the categorical itemset
// key plus the continuous attribute list. Itemset keys never contain '#'
// (they are attr/code/bound tokens joined by '|'), so the separator keeps
// pure-categorical and mixed signatures disjoint.
func nodeSignature(nd node) string {
	if len(nd.contAttrs) == 0 {
		return nd.catSet.Key()
	}
	var b strings.Builder
	b.WriteString(nd.catSet.Key())
	for _, a := range nd.contAttrs {
		b.WriteByte('#')
		b.WriteString(strconv.Itoa(a))
	}
	return b.String()
}

// remineGate decides, per node, whether the previous run's cached outcome
// can be replayed. It also owns the stable/dirty accounting reported
// through metrics.Recorder.RemineGate.
type remineGate struct {
	d      *dataset.Dataset
	change ChangeSummary
	prune  Pruning

	// prev is the replay source; nil when the fingerprint did not match
	// (the gate then only counts — everything is dirty).
	prev *RemineState
	// tableOK is the table-evolution invariant: true while the current
	// run's lookup table is provably identical to the previous run's at
	// the same point. Once false it stays false.
	tableOK bool
	// prevCum accumulates the previous run's table keys through the levels
	// folded so far.
	prevCum map[string]struct{}

	stable      int64
	dirty       int64
	redescended int64
	nearCross   int64
}

// newRemineGate builds the gate for one incremental mine. prev must
// already be fingerprint-checked (pass nil on mismatch).
func newRemineGate(d *dataset.Dataset, change ChangeSummary, prune Pruning, prev *RemineState) *remineGate {
	g := &remineGate{d: d, change: change, prune: prune, prev: prev}
	if prev != nil {
		g.tableOK = true
		g.prevCum = make(map[string]struct{})
	}
	return g
}

// levelReplay is the per-level replay handle: nil when nothing at this
// level may be replayed (alpha mismatch, table divergence, no cached
// level).
type levelReplay struct {
	gate           *remineGate
	nodes          map[string]nodeOutcome
	alpha          float64
	thresholdMatch bool
}

// enterLevel checks the level-wide replay preconditions and returns the
// replay handle, or nil when the whole level must be evaluated fresh. The
// top-k threshold only gates SDAD-CS nodes (categorical evaluation never
// reads it), so a mismatch is recorded on the handle rather than failing
// the level.
func (g *remineGate) enterLevel(level int, alpha, threshold float64) *levelReplay {
	if g == nil || g.prev == nil || !g.tableOK || level > len(g.prev.levels) {
		return nil
	}
	pl := &g.prev.levels[level-1]
	if pl.alphaBits != math.Float64bits(alpha) {
		return nil
	}
	return &levelReplay{
		gate:           g,
		nodes:          pl.nodes,
		alpha:          alpha,
		thresholdMatch: pl.thresholdBits == math.Float64bits(threshold),
	}
}

// outcome returns the cached outcome for the node if it is provably
// stable; ok == false means evaluate fresh.
func (lr *levelReplay) outcome(nd node) (nodeOutcome, bool) {
	if lr == nil {
		return nodeOutcome{}, false
	}
	out, ok := lr.nodes[nodeSignature(nd)]
	if !ok {
		return nodeOutcome{}, false
	}
	if !lr.gate.stableNode(nd, lr.thresholdMatch) {
		lr.gate.observeDirty(nd, out, lr.alpha)
		return nodeOutcome{}, false
	}
	return out, true
}

// stableNode applies the stability rules documented at the top of the
// file.
func (g *remineGate) stableNode(nd node, thresholdMatch bool) bool {
	mixed := len(nd.contAttrs) > 0
	if g.change.RowsTouched == 0 {
		// Row-for-row identical window: every cover is unchanged; mixed
		// nodes still need the threshold their SDAD-CS run saw.
		return !mixed || thresholdMatch
	}
	if nd.catSet.Len() == 0 {
		// Covers all rows — any touched row is inside the cover.
		return false
	}
	if !g.catSetClean(nd.catSet) {
		return false
	}
	if !mixed {
		return true
	}
	// Mixed node with a clean categorical context: the SDAD-CS run also
	// reads the top-k threshold, and — under the CLT redundancy rule — the
	// full-dataset supports of one-drop subsets, which only stay confined
	// to unchanged rows when at least one clean categorical item remains
	// after the drop.
	return thresholdMatch && (nd.catSet.Len() >= 2 || !g.prune.RedundancyCLT)
}

// catSetClean reports whether every categorical item's value has a zero
// touched count — i.e. no row carrying the value (before or after its
// change) was touched, so the value's cover content is unchanged.
func (g *remineGate) catSetClean(set pattern.Itemset) bool {
	for i := 0; i < set.Len(); i++ {
		it := set.Item(i)
		tm := g.change.Touched[it.Attr]
		if tm == nil {
			return false // attribute not tracked: unknown, assume dirty
		}
		if tm[g.d.Domain(it.Attr)[it.Code]] != 0 {
			return false
		}
	}
	return true
}

// changeBound returns a conservative upper bound on the number of rows
// that entered or left the node's categorical cover: every such row
// changed content and carried each of the node's values before or after,
// so the smallest per-value touched count bounds the churn. An empty
// categorical context is bounded only by the total touched rows.
func (g *remineGate) changeBound(nd node) int {
	bound := g.change.RowsTouched
	for i := 0; i < nd.catSet.Len(); i++ {
		it := nd.catSet.Item(i)
		tm := g.change.Touched[it.Attr]
		if tm == nil {
			continue
		}
		if n := tm[g.d.Domain(it.Attr)[it.Code]]; n < bound {
			bound = n
		}
	}
	return bound
}

// observeDirty classifies a node that held contrasts last window but must
// be re-evaluated: if even the worst-case support shift the change bound
// allows stays inside the Eq. 14–16 CLT band, the re-count exists only to
// honor the bit-identity contract — counted as a near-crossing so the
// metrics expose how much slack a statistically-gated mode would buy.
func (g *remineGate) observeDirty(nd node, out nodeOutcome, alpha float64) {
	if len(out.contrasts) == 0 {
		return
	}
	bound := g.changeBound(nd)
	sup := out.contrasts[0].Supports
	shift := 0.0
	for _, sz := range sup.Size {
		if sz > 0 {
			if s := float64(bound) / float64(sz); s > shift {
				shift = s
			}
		}
	}
	if shift <= CLTSupportBound(sup, alpha) {
		g.nearCross++
	}
}

// advanceLevel folds one processed level into the table-evolution
// invariant. With curTable_{L-1} == prevCum_{L-1} (the running invariant),
// the current level's table equals the previous run's cumulative table
// through L iff every key inserted this level already appears in
// prevCum_L and the sizes agree. Any divergence — including the current
// run outliving the cached one — permanently disables replay.
func (g *remineGate) advanceLevel(level int, inserts []string, tableLen int) {
	if g == nil || g.prev == nil || !g.tableOK {
		return
	}
	if level > len(g.prev.levels) {
		g.tableOK = false
		return
	}
	for _, k := range g.prev.levels[level-1].inserts {
		g.prevCum[k] = struct{}{}
	}
	if tableLen != len(g.prevCum) {
		g.tableOK = false
		return
	}
	for _, k := range inserts {
		if _, ok := g.prevCum[k]; !ok {
			g.tableOK = false
			return
		}
	}
}

// count updates the stable/dirty tally for one processed level.
func (g *remineGate) count(level, stable, total int) {
	if g == nil {
		return
	}
	dirty := total - stable
	g.stable += int64(stable)
	g.dirty += int64(dirty)
	if level > 1 {
		// Dirty nodes past level 1 are re-descended subtree members: their
		// parents survived and the gate still had to re-evaluate them.
		g.redescended += int64(dirty)
	}
}
