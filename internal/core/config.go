package core

import (
	"sdadcs/internal/metrics"
	"sdadcs/internal/pattern"
	"sdadcs/internal/trace"
)

// OEMode selects how the optimistic estimate's maximum child-space size
// (Eq. 6) is computed.
type OEMode int

const (
	// OEModePaper assumes real-valued data with unique readings, so a
	// median split distributes a space's rows evenly over its 2^|ca|
	// children (the paper's assumption). Tightest pruning; can in
	// principle over-prune on heavily tied data.
	OEModePaper OEMode = iota
	// OEModeConservative bounds a child space only by the fact that it is
	// a proper sub-box of its parent (n − 1 rows) — admissible regardless
	// of ties. A half-open median split on tied data can be arbitrarily
	// lopsided ({1,1,1,2} puts 3 of 4 rows in the low child), so no
	// fixed-fraction bound is sound; the correctness oracle mines in this
	// mode to guarantee the production search is exhaustive.
	OEModeConservative
)

// String names the mode.
func (m OEMode) String() string {
	if m == OEModeConservative {
		return "conservative"
	}
	return "paper"
}

// CountingMode selects the support-counting engine backing the levelwise
// search. Both engines produce bit-identical results (asserted by the
// golden-equality tests); the knob exists for A/B benchmarking and as an
// escape hatch.
type CountingMode int

const (
	// CountingAuto (the default) uses the bitmap engine.
	CountingAuto CountingMode = iota
	// CountingBitmap counts candidate supports with per-(attr,value)
	// bitmaps and per-group masks built once per Mine call: node covers
	// are bitmap intersections and group counts are popcounts (the SciCSM
	// representation, the paper's ref [29]). SDAD-CS box interiors, which
	// need raw row indices for medians, materialize lazily.
	CountingBitmap
	// CountingSlice is the original row-index-slice path (dataset.View
	// filters); kept selectable for paired benchmarks.
	CountingSlice
)

// String names the mode.
func (m CountingMode) String() string {
	switch m {
	case CountingBitmap:
		return "bitmap"
	case CountingSlice:
		return "slice"
	default:
		return "auto"
	}
}

// bitmap reports whether the mode resolves to the bitmap engine.
func (m CountingMode) bitmap() bool { return m != CountingSlice }

// Pruning toggles the individual search-space reduction strategies of
// §3/§4.3. The zero value disables everything (the basis of SDAD-CS NP).
type Pruning struct {
	// MinDeviation prunes spaces without support above δ in any group.
	MinDeviation bool
	// ExpectedCount prunes spaces whose expected group-cell count is
	// below 5, where chi-square tests are invalid.
	ExpectedCount bool
	// ChiSquareOE stops recursion when even the most extreme
	// specialization cannot reach the chi-square critical value.
	ChiSquareOE bool
	// RedundancyCLT prunes spaces whose support difference is
	// statistically the same as a subset's (Eq. 14–16).
	RedundancyCLT bool
	// PureSpace stops extending spaces with PR = 1 — adding attributes to
	// a single-group space only creates redundant contrasts.
	PureSpace bool
	// LookupTable records pruned itemsets and cuts any later space having
	// a pruned subset.
	LookupTable bool
}

// AllPruning enables every strategy (the SDAD-CS default).
func AllPruning() Pruning {
	return Pruning{
		MinDeviation:  true,
		ExpectedCount: true,
		ChiSquareOE:   true,
		RedundancyCLT: true,
		PureSpace:     true,
		LookupTable:   true,
	}
}

// NPPruning is the "SDAD-CS NP" (No Pruning) configuration used in the
// paper's quantitative comparison: the feasibility rules that merely keep
// statistics valid stay on, but redundancy, purity and lookup-table
// pruning — the rules that suppress non-meaningful contrasts — are off.
func NPPruning() Pruning {
	return Pruning{
		MinDeviation:  true,
		ExpectedCount: true,
	}
}

// TopKUnbounded disables the top-k result bound: every admissible
// contrast is retained. The correctness oracle mines with this sentinel so
// the production search enumerates exactly what the reference
// implementation does (a bounded list prunes recursion through its dynamic
// threshold).
const TopKUnbounded = -1

// Config controls a mining run. The zero value is usable: it maps to the
// paper's experimental setup (α = 0.05, δ = 0.1, depth 5, top-100,
// support-difference measure, all pruning, meaningfulness filter on).
type Config struct {
	// Alpha is the initial significance level (default 0.05). It is
	// Bonferroni-adjusted per level as in STUCCO.
	Alpha float64
	// Delta is the minimum support difference (default 0.1).
	Delta float64
	// MaxDepth bounds the number of attributes per combination
	// (default 5, the paper's stunted search tree).
	MaxDepth int
	// MaxRecursion bounds SDAD-CS's median-split recursion (default 8).
	MaxRecursion int
	// TopK bounds the result list (default 100). TopKUnbounded (-1)
	// disables the bound entirely — every admissible contrast is kept and
	// the dynamic threshold never rises above the score floor. (0 selects
	// the default, like every other zero field.)
	TopK int
	// Measure drives the search (default SupportDiff; the paper uses
	// SurprisingMeasure for its qualitative analyses).
	Measure pattern.Measure
	// OEMode selects the optimistic-estimate variant (default paper).
	OEMode OEMode
	// Pruning toggles search-space reduction; nil means AllPruning.
	Pruning *Pruning
	// SkipMeaningfulFilter disables the final productive / independently
	// productive / non-redundant filter (the NP variant sets this).
	SkipMeaningfulFilter bool
	// RecordExploredSpaces also records a space as a contrast candidate
	// when its children were explored (Algorithm 1 keeps only the refined
	// children). The NP variant sets this: without pruning, the coarse
	// parent spaces are part of the pattern pool, which is how the paper's
	// §5.5.2 finds "similar ones" to Cortana's top patterns.
	RecordExploredSpaces bool
	// Attrs restricts mining to these attribute indices; nil = all.
	Attrs []int
	// DFS explores attribute combinations depth-first instead of
	// levelwise. The paper argues against it (§4.1): a depth-first order
	// cannot exploit subset results discovered later and cannot size the
	// Bonferroni adjustment per level. Provided for the search-order
	// ablation.
	DFS bool
	// Workers > 1 mines each level's combinations in parallel (§6's
	// scaling strategy). Results are merged deterministically.
	Workers int
	// Counting selects the support-counting engine (default: bitmap).
	// CountingSlice restores the row-scan dataset.View path; the two
	// engines produce identical results.
	Counting CountingMode
	// Metrics, when non-nil, receives live instrumentation from the hot
	// path: per-level node counts and wall times, per-rule prune hits,
	// SDAD-CS split/box/merge counters and top-k threshold updates. The
	// final snapshot is also attached to Result.Metrics. nil (the
	// default) disables instrumentation at near-zero cost — every record
	// site is guarded by a single pointer check.
	Metrics *metrics.Recorder
	// Trace, when non-nil, receives decision-level events from the whole
	// pipeline: node expansions, per-rule prune firings with the observed
	// statistic and the bound it was tested against, SDAD-CS split/merge
	// decisions, pattern emissions, and top-k admissions/evictions. The
	// run's snapshot is attached to Result.Trace and indexable by canonical
	// itemset key (trace.NewIndex / Explain). nil (the default) disables
	// tracing with the same discipline as Metrics: one pointer check per
	// site, zero allocations.
	Trace *trace.Tracer
	// PprofLabels annotates per-level worker goroutines with pprof labels
	// (sdadcs_level, sdadcs_worker) so CPU profiles attribute samples to
	// search levels. Off by default: labels cost a map allocation per
	// goroutine spawn.
	PprofLabels bool
}

func (c *Config) defaults() {
	if c.Alpha == 0 {
		c.Alpha = 0.05
	}
	if c.Delta == 0 {
		c.Delta = 0.1
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 5
	}
	if c.MaxRecursion == 0 {
		c.MaxRecursion = 8
	}
	if c.TopK == 0 {
		c.TopK = 100
	}
	if c.TopK == TopKUnbounded {
		c.TopK = 0 // topk.List treats k <= 0 as unbounded
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
}

// scoreFloor is the top-k admission floor. δ is a threshold on the
// support difference (Eq. 2); when the driving measure is the support
// difference itself the floor coincides with δ, but purity-based measures
// score large contrasts below δ routinely (PR × Diff ≤ Diff), so their
// floor is 0 — largeness is still enforced per space via Eq. 2.
func (c *Config) scoreFloor() float64 {
	if c.Measure == pattern.SupportDiff {
		return c.Delta
	}
	return 0
}

func (c *Config) pruning() Pruning {
	if c.Pruning == nil {
		return AllPruning()
	}
	return *c.Pruning
}

// NP returns the SDAD-CS NP variant of a configuration: meaningfulness
// pruning and filtering off, everything else identical.
func (c Config) NP() Config {
	p := NPPruning()
	c.Pruning = &p
	c.SkipMeaningfulFilter = true
	c.RecordExploredSpaces = true
	return c
}

// Stats reports the work a mining run performed; PartitionsEvaluated is
// the cost metric of the paper's Table 5.
type Stats struct {
	// PartitionsEvaluated counts spaces (and categorical value itemsets)
	// whose supports were counted.
	PartitionsEvaluated int
	// SpacesPruned counts spaces cut by any rule before evaluation of
	// their children.
	SpacesPruned int
	// SDADCalls counts invocations of the SDAD-CS discretization
	// (one per categorical-context × continuous-attribute-set combo).
	SDADCalls int
	// MergeOps counts successful bottom-up space merges.
	MergeOps int
	// FilteredOut counts contrasts removed by the final meaningfulness
	// filter.
	FilteredOut int
}

func (s *Stats) add(o Stats) {
	s.PartitionsEvaluated += o.PartitionsEvaluated
	s.SpacesPruned += o.SpacesPruned
	s.SDADCalls += o.SDADCalls
	s.MergeOps += o.MergeOps
	s.FilteredOut += o.FilteredOut
}

// Result is a mining outcome.
type Result struct {
	// Contrasts are sorted by descending score.
	Contrasts []pattern.Contrast
	// Meaning holds the meaningfulness classification of each contrast
	// (parallel to Contrasts) when the filter ran; nil otherwise.
	Meaning []Meaningfulness
	Stats   Stats
	// Metrics is the instrumentation snapshot taken when the run
	// finished; nil unless Config.Metrics was set.
	Metrics *metrics.Snapshot
	// Trace is the decision-event snapshot of the run; nil unless
	// Config.Trace was set.
	Trace *trace.Trace
}
