package core

import (
	"math/rand"
	"testing"

	"sdadcs/internal/datagen"
	"sdadcs/internal/dataset"
	"sdadcs/internal/pattern"
)

// femalePregnant builds the paper's canonical redundancy example: sex and
// pregnancy, where {female, pregnant} has exactly the support of
// {pregnant} in every group.
func femalePregnant(t *testing.T) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	n := 2000
	sex := make([]string, n)
	pregnant := make([]string, n)
	g := make([]string, n)
	for i := range sex {
		female := rng.Float64() < 0.5
		if female {
			sex[i] = "female"
		} else {
			sex[i] = "male"
		}
		// Pregnancy implies female; its rate differs strongly by group.
		inG1 := i%2 == 0
		if inG1 {
			g[i] = "G1"
		} else {
			g[i] = "G2"
		}
		p := 0.05
		if inG1 {
			p = 0.5
		}
		if female && rng.Float64() < p {
			pregnant[i] = "yes"
		} else {
			pregnant[i] = "no"
		}
	}
	return dataset.NewBuilder("fp").
		AddCategorical("sex", sex).
		AddCategorical("pregnant", pregnant).
		SetGroups(g).
		MustBuild()
}

func item(d *dataset.Dataset, attr, value string) pattern.Item {
	a := d.AttrIndex(attr)
	for code, v := range d.Domain(a) {
		if v == value {
			return pattern.CatItem(a, code)
		}
	}
	panic("value not found: " + value)
}

func contrastOf(d *dataset.Dataset, set pattern.Itemset) pattern.Contrast {
	sup := pattern.SupportsOf(set, d.All())
	return pattern.Contrast{Set: set, Supports: sup, Score: sup.MaxDiff()}
}

func TestClassifyRedundantFemalePregnant(t *testing.T) {
	d := femalePregnant(t)
	both := contrastOf(d, pattern.NewItemset(
		item(d, "sex", "female"), item(d, "pregnant", "yes")))
	ms := Classify(d, []pattern.Contrast{both}, 0.05)
	if !ms[0].Redundant {
		t.Error("{female, pregnant} should be redundant with {pregnant}")
	}
}

func TestClassifySingletonNotRedundant(t *testing.T) {
	d := femalePregnant(t)
	preg := contrastOf(d, pattern.NewItemset(item(d, "pregnant", "yes")))
	ms := Classify(d, []pattern.Contrast{preg}, 0.05)
	if ms[0].Redundant || ms[0].Unproductive || ms[0].NotIndependentlyProductive {
		t.Errorf("singleton misclassified: %+v", ms[0])
	}
	if !ms[0].Meaningful() {
		t.Error("singleton contrast should be meaningful")
	}
}

func TestClassifyUnproductiveIndependentParts(t *testing.T) {
	// Two attributes, each individually skewed toward group 1 but
	// conditionally independent within each group: their conjunction is
	// exactly the product of the parts — unproductive.
	rng := rand.New(rand.NewSource(2))
	n := 4000
	a := make([]string, n)
	b := make([]string, n)
	g := make([]string, n)
	for i := range a {
		inG1 := i%2 == 0
		if inG1 {
			g[i] = "G1"
		} else {
			g[i] = "G2"
		}
		p := 0.2
		if inG1 {
			p = 0.6
		}
		if rng.Float64() < p {
			a[i] = "t"
		} else {
			a[i] = "f"
		}
		if rng.Float64() < p {
			b[i] = "t"
		} else {
			b[i] = "f"
		}
	}
	d := dataset.NewBuilder("indep").
		AddCategorical("a", a).
		AddCategorical("b", b).
		SetGroups(g).
		MustBuild()
	both := contrastOf(d, pattern.NewItemset(item(d, "a", "t"), item(d, "b", "t")))
	ms := Classify(d, []pattern.Contrast{both}, 0.05)
	if !ms[0].Unproductive {
		t.Error("conjunction of independent parts should be unproductive")
	}
}

func TestClassifyProductiveInteraction(t *testing.T) {
	// XOR quadrants: the joint contrast is far beyond the product of its
	// (uninformative) parts — clearly productive.
	d := datagen.Simulated2(3, 3000)
	res := Mine(d, Config{Measure: pattern.SurprisingMeasure, SkipMeaningfulFilter: true})
	if len(res.Contrasts) == 0 {
		t.Fatal("no contrasts")
	}
	ms := Classify(d, res.Contrasts, 0.05)
	productive := 0
	for i := range ms {
		if !ms[i].Unproductive {
			productive++
		}
	}
	if productive == 0 {
		t.Error("XOR quadrant contrasts should be productive")
	}
}

// hurricaneData builds the hurricane example of §4.3: three conditions
// individually associated with the group only through their conjunction
// (shared by the classification tests and the explain golden tests).
func hurricaneData(t *testing.T) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(4))
	n := 6000
	temp := make([]string, n)
	depth := make([]string, n)
	shear := make([]string, n)
	g := make([]string, n)
	for i := range g {
		// Conditions occur independently.
		t1 := rng.Float64() < 0.5
		t2 := rng.Float64() < 0.5
		t3 := rng.Float64() < 0.5
		set := func(s []string, b bool) {
			if b {
				s[i] = "yes"
			} else {
				s[i] = "no"
			}
		}
		set(temp, t1)
		set(depth, t2)
		set(shear, t3)
		// Hurricane develops (mostly) when all three hold.
		if t1 && t2 && t3 && rng.Float64() < 0.9 {
			g[i] = "develops"
		} else {
			g[i] = "not"
		}
	}
	return dataset.NewBuilder("hurricane").
		AddCategorical("temp", temp).
		AddCategorical("depth", depth).
		AddCategorical("shear", shear).
		SetGroups(g).
		MustBuild()
}

func TestClassifyIndependentProductivityHurricane(t *testing.T) {
	// The 1- and 2-item patterns should not be independently productive
	// once the 3-item pattern is in the list.
	d := hurricaneData(t)
	all := pattern.NewItemset(item(d, "temp", "yes"), item(d, "depth", "yes"), item(d, "shear", "yes"))
	single := pattern.NewItemset(item(d, "temp", "yes"))
	list := []pattern.Contrast{contrastOf(d, all), contrastOf(d, single)}
	ms := Classify(d, list, 0.05)
	if ms[0].NotIndependentlyProductive {
		t.Error("the full 3-condition pattern should be independently productive")
	}
	if !ms[1].NotIndependentlyProductive {
		t.Error("{temp} should not be independently productive: removing the " +
			"3-condition rows leaves no contrast")
	}
}

func TestClassifyNoSupersetTriviallyIndependent(t *testing.T) {
	d := femalePregnant(t)
	preg := contrastOf(d, pattern.NewItemset(item(d, "pregnant", "yes")))
	sex := contrastOf(d, pattern.NewItemset(item(d, "sex", "female")))
	ms := Classify(d, []pattern.Contrast{preg, sex}, 0.05)
	for i := range ms {
		if ms[i].NotIndependentlyProductive {
			t.Errorf("pattern %d has no supersets in the list; must be independently productive", i)
		}
	}
}

func TestCountMeaningful(t *testing.T) {
	ms := []Meaningfulness{
		{},
		{Redundant: true},
		{Unproductive: true},
		{NotIndependentlyProductive: true},
	}
	good, bad := CountMeaningful(ms)
	if good != 1 || bad != 3 {
		t.Errorf("CountMeaningful = %d, %d", good, bad)
	}
}
