package core

import (
	"testing"

	"sdadcs/internal/datagen"
	"sdadcs/internal/metrics"
)

// TestIndexReuseAcrossMineCalls: the bitmap index is built once per
// dataset — the first bitmap-mode Mine pays the build, every later Mine
// on the same dataset reuses the cached index and records the reuse.
func TestIndexReuseAcrossMineCalls(t *testing.T) {
	d := datagen.Adult(datagen.AdultConfig{Seed: 11, Bachelors: 600, Doctorate: 200})

	rec1 := metrics.New()
	Mine(d, Config{MaxDepth: 2, Counting: CountingBitmap, Metrics: rec1})
	s1 := rec1.Snapshot()
	if s1.BitmapBuilds == 0 {
		t.Fatal("first Mine on a fresh dataset did not build the index")
	}
	if s1.BitmapIndexReuses != 0 {
		t.Fatalf("first Mine recorded %d index reuses, want 0", s1.BitmapIndexReuses)
	}
	if got := d.Index().Builds(); got != 1 {
		t.Fatalf("dataset index builds = %d after first Mine, want 1", got)
	}

	for i := 0; i < 3; i++ {
		rec := metrics.New()
		Mine(d, Config{MaxDepth: 2, Counting: CountingBitmap, Metrics: rec})
		s := rec.Snapshot()
		if s.BitmapBuilds != 0 {
			t.Fatalf("Mine %d rebuilt the index (%d bitmaps)", i+2, s.BitmapBuilds)
		}
		if s.BitmapIndexReuses != 1 {
			t.Fatalf("Mine %d recorded %d index reuses, want 1", i+2, s.BitmapIndexReuses)
		}
	}
	if got := d.Index().Builds(); got != 1 {
		t.Fatalf("dataset index builds = %d after repeated Mines, want 1", got)
	}
}

// TestArenaMetricsRecorded: a bitmap-mode run over a dataset deep enough
// to recycle covers reports the arena's allocation discipline — released
// covers come back as reuses instead of fresh allocations.
func TestArenaMetricsRecorded(t *testing.T) {
	d := datagen.Manufacturing(datagen.ManufacturingConfig{
		Seed: 7, Population: 900, Failed: 250, Features: 10,
	})
	rec := metrics.New()
	Mine(d, Config{MaxDepth: 3, Counting: CountingBitmap, Metrics: rec})
	s := rec.Snapshot()
	if s.ArenaFresh == 0 {
		t.Fatal("bitmap run recorded no fresh arena allocations")
	}
	if s.ArenaReleased == 0 {
		t.Fatal("bitmap run never released a cover back to the arena")
	}
	if s.ArenaReused == 0 {
		t.Fatal("bitmap run never reused a released cover")
	}
}
