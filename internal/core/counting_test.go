package core

import (
	"reflect"
	"testing"

	"sdadcs/internal/datagen"
	"sdadcs/internal/dataset"
	"sdadcs/internal/metrics"
)

// TestCountingGoldenEquality: the bitmap and slice support-counting
// engines must produce bit-identical results — same contrasts in the same
// order, same supports, same scores and test statistics, same work
// counters — on both a categorical-heavy and a mixed dataset,
// sequentially and with parallel workers.
func TestCountingGoldenEquality(t *testing.T) {
	cases := []struct {
		name string
		d    *dataset.Dataset
		cfg  Config
	}{
		{
			name: "mixed/adult",
			d:    datagen.Adult(datagen.AdultConfig{Seed: 5, Bachelors: 1200, Doctorate: 300}),
			cfg:  Config{MaxDepth: 2},
		},
		{
			name: "categorical/manufacturing",
			d: datagen.Manufacturing(datagen.ManufacturingConfig{
				Seed: 5, Population: 1500, Failed: 400, Features: 12,
			}),
			cfg: Config{MaxDepth: 2},
		},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 8} {
			cfgSlice := tc.cfg
			cfgSlice.Workers = workers
			cfgSlice.Counting = CountingSlice
			cfgBitmap := tc.cfg
			cfgBitmap.Workers = workers
			cfgBitmap.Counting = CountingBitmap

			rs := Mine(tc.d, cfgSlice)
			rb := Mine(tc.d, cfgBitmap)

			if len(rs.Contrasts) != len(rb.Contrasts) {
				t.Errorf("%s workers=%d: slice found %d contrasts, bitmap %d",
					tc.name, workers, len(rs.Contrasts), len(rb.Contrasts))
				continue
			}
			for i := range rs.Contrasts {
				a, b := rs.Contrasts[i], rb.Contrasts[i]
				switch {
				case a.Set.Key() != b.Set.Key():
					t.Errorf("%s workers=%d contrast %d: slice %s vs bitmap %s",
						tc.name, workers, i, a.Set.Key(), b.Set.Key())
				case !reflect.DeepEqual(a.Supports, b.Supports):
					t.Errorf("%s workers=%d contrast %d (%s): supports %+v vs %+v",
						tc.name, workers, i, a.Set.Key(), a.Supports, b.Supports)
				case a.Score != b.Score || a.ChiSq != b.ChiSq || a.P != b.P:
					t.Errorf("%s workers=%d contrast %d (%s): score/chisq/p (%v,%v,%v) vs (%v,%v,%v)",
						tc.name, workers, i, a.Set.Key(),
						a.Score, a.ChiSq, a.P, b.Score, b.ChiSq, b.P)
				}
			}
			if !reflect.DeepEqual(rs.Meaning, rb.Meaning) {
				t.Errorf("%s workers=%d: meaningfulness classifications differ",
					tc.name, workers)
			}
			if rs.Stats.PartitionsEvaluated != rb.Stats.PartitionsEvaluated {
				t.Errorf("%s workers=%d: partitions evaluated %d (slice) vs %d (bitmap)",
					tc.name, workers,
					rs.Stats.PartitionsEvaluated, rb.Stats.PartitionsEvaluated)
			}
		}
	}
}

// TestCountingAutoIsBitmap: the default mode resolves to the bitmap
// engine, observable through the instrumentation counters.
func TestCountingAutoIsBitmap(t *testing.T) {
	d := datagen.Adult(datagen.AdultConfig{Seed: 3, Bachelors: 400, Doctorate: 100})
	rec := metrics.New()
	Mine(d, Config{MaxDepth: 2, Metrics: rec})
	if s := rec.Snapshot(); s.BitmapBuilds == 0 {
		t.Error("CountingAuto did not build a bitmap index")
	}
}

// TestCountingBitmapMetrics: a mixed mining run under the bitmap engine
// exercises all four counters — index builds, cover intersections,
// popcount passes, and lazy row materializations (SDAD-CS box interiors
// need raw rows for medians).
func TestCountingBitmapMetrics(t *testing.T) {
	d := datagen.Adult(datagen.AdultConfig{Seed: 3, Bachelors: 800, Doctorate: 200})
	rec := metrics.New()
	Mine(d, Config{MaxDepth: 2, Counting: CountingBitmap, Metrics: rec})
	s := rec.Snapshot()
	if s.BitmapBuilds == 0 {
		t.Error("no bitmap builds recorded")
	}
	if s.BitmapAndOps == 0 {
		t.Error("no bitmap AND ops recorded")
	}
	if s.BitmapPopcounts == 0 {
		t.Error("no popcount passes recorded")
	}
	if s.BitmapLazyRows == 0 {
		t.Error("no lazy materializations recorded on a mixed dataset")
	}

	// The slice engine must leave the bitmap counters untouched.
	rec2 := metrics.New()
	Mine(d, Config{MaxDepth: 2, Counting: CountingSlice, Metrics: rec2})
	s2 := rec2.Snapshot()
	if s2.BitmapBuilds != 0 || s2.BitmapAndOps != 0 || s2.BitmapPopcounts != 0 || s2.BitmapLazyRows != 0 {
		t.Errorf("slice engine recorded bitmap work: %+v", s2)
	}
}

// TestCountingModeString: the knob renders stable names.
func TestCountingModeString(t *testing.T) {
	if CountingAuto.String() != "auto" || CountingBitmap.String() != "bitmap" ||
		CountingSlice.String() != "slice" {
		t.Error("counting mode names wrong")
	}
	if !CountingAuto.bitmap() || !CountingBitmap.bitmap() || CountingSlice.bitmap() {
		t.Error("counting mode resolution wrong")
	}
}
