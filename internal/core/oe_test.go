package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sdadcs/internal/pattern"
)

func sup2(c0, c1, s0, s1 int) pattern.Supports {
	return pattern.CountsToSupports([]int{c0, c1}, []int{s0, s1})
}

func TestOptimisticEstimatePaperExample(t *testing.T) {
	// §4.4: 2 A-rows and 98 B-rows total; the right half-space holds both
	// A rows and 48 B rows. The paper states the optimistic estimate is
	// 1 − 23/98 ≈ 0.7653: the best child keeps both A rows (supp 1) while
	// B's minimum is (25 − 2)/98 with a 25-row child.
	sup := sup2(2, 48, 2, 98)
	got := optimisticEstimate(sup, 50, 1, OEModePaper, pattern.SupportDiff)
	want := 1.0 - 23.0/98.0
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("oe = %v, want %v", got, want)
	}
}

func TestOptimisticEstimateConservativeLooser(t *testing.T) {
	sup := sup2(10, 40, 100, 100)
	p := optimisticEstimate(sup, 50, 2, OEModePaper, pattern.SupportDiff)
	c := optimisticEstimate(sup, 50, 2, OEModeConservative, pattern.SupportDiff)
	if c < p {
		t.Errorf("conservative oe %v should be >= paper oe %v", c, p)
	}
}

func TestOptimisticEstimatePurityRatio(t *testing.T) {
	// Non-pure space: a single-row child can always reach PR = 1.
	if got := optimisticEstimate(sup2(5, 5, 10, 10), 10, 1, OEModePaper, pattern.PurityRatio); got != 1 {
		t.Errorf("non-pure PR oe = %v, want 1", got)
	}
	// Pure space: PR is already 1.
	if got := optimisticEstimate(sup2(0, 5, 10, 10), 5, 1, OEModePaper, pattern.PurityRatio); got != 1 {
		t.Errorf("pure PR oe = %v, want 1", got)
	}
}

func TestMaxInstancesChild(t *testing.T) {
	if got := maxInstancesChild(100, 1, OEModePaper); got != 50 {
		t.Errorf("paper 1 attr: %d, want 50", got)
	}
	if got := maxInstancesChild(100, 2, OEModePaper); got != 25 {
		t.Errorf("paper 2 attrs: %d, want 25", got)
	}
	if got := maxInstancesChild(101, 1, OEModePaper); got != 51 {
		t.Errorf("paper rounding: %d, want 51", got)
	}
	if got := maxInstancesChild(100, 3, OEModeConservative); got != 99 {
		t.Errorf("conservative: %d, want 99", got)
	}
	if got := maxInstancesChild(1, 1, OEModeConservative); got != 1 {
		t.Errorf("conservative single row: %d, want 1", got)
	}
	if got := maxInstancesChild(0, 1, OEModeConservative); got != 0 {
		t.Errorf("conservative empty: %d, want 0", got)
	}
}

// Regression (differential oracle): the conservative bound used to be
// ceil(n/2), which is NOT admissible under ties. With values {1,1,1,2} the
// half-open split at the lower-middle median 1 puts rows {1,1,1} — 3 of
// 4 — into the low child, exceeding ceil(4/2) = 2. The conservative mode
// must therefore bound a child by n−1 (a proper sub-box excludes at least
// one row) and never less than a real child's size.
func TestMaxInstancesChildConservativeTies(t *testing.T) {
	// The low child of {1,1,1,2} holds 3 rows.
	if got := maxInstancesChild(4, 1, OEModeConservative); got < 3 {
		t.Fatalf("conservative bound %d under-counts the 3-row tied child", got)
	}
	// And with {1,1,1,1,2}, 4 of 5 rows land low.
	if got := maxInstancesChild(5, 1, OEModeConservative); got < 4 {
		t.Fatalf("conservative bound %d under-counts the 4-row tied child", got)
	}
}

// Property: the conservative optimistic estimate is admissible — the
// support difference of ANY child space (any subset of rows lying in one
// half) never exceeds it. We simulate children by randomly assigning each
// row of a synthetic space to one of two halves and taking per-half counts.
func TestOptimisticEstimateAdmissibleProperty(t *testing.T) {
	f := func(seed int64, c0Raw, c1Raw, extra0, extra1 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c0 := int(c0Raw%50) + 1
		c1 := int(c1Raw%50) + 1
		s0 := c0 + int(extra0)
		s1 := c1 + int(extra1)
		sup := sup2(c0, c1, s0, s1)
		spaceRows := c0 + c1
		oe := optimisticEstimate(sup, spaceRows, 1, OEModeConservative, pattern.SupportDiff)

		// Simulate a half-open median split on possibly-tied data: the
		// split point can be arbitrarily lopsided (values {1,1,1,2} put
		// 3 of 4 rows in the low child), but each child is a proper
		// subset — Algorithm 1 only splits when lo < med < hi, so each
		// half excludes at least one row.
		half := 1 + rng.Intn(spaceRows-1)
		var h0c0, h0c1 int
		remaining0, remaining1 := c0, c1
		slots := half
		for slots > 0 && remaining0+remaining1 > 0 {
			if rng.Intn(remaining0+remaining1) < remaining0 {
				h0c0++
				remaining0--
			} else {
				h0c1++
				remaining1--
			}
			slots--
		}
		for _, child := range []pattern.Supports{
			sup2(h0c0, h0c1, s0, s1),
			sup2(c0-h0c0, c1-h0c1, s0, s1),
		} {
			if child.MaxDiff() > oe+1e-9 {
				return false
			}
			// The same estimate bounds the Surprising Measure of any
			// child, since PR <= 1 (§4.2).
			if child.Surprising() > oe+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
