package core

import (
	"testing"

	"sdadcs/internal/dataset"
	"sdadcs/internal/pattern"
	"sdadcs/internal/trace"
)

// tracedMine runs a single-worker Mine with tracing on — the
// deterministic setup the golden explain tests pin (one worker keeps the
// event order stable; Format drops timestamps and sequence numbers).
func tracedMine(d *dataset.Dataset, cfg Config) Result {
	cfg.Workers = 1
	cfg.Trace = trace.New(0)
	cfg.Measure = pattern.SurprisingMeasure
	return Mine(d, cfg)
}

// TestExplainGoldenEmitted pins the provenance chain of an emitted top-k
// pattern (acceptance case a): the hurricane conjunction is evaluated,
// emitted, admitted and kept.
func TestExplainGoldenEmitted(t *testing.T) {
	d := hurricaneData(t)
	res := tracedMine(d, Config{})
	set := pattern.NewItemset(
		item(d, "temp", "yes"), item(d, "depth", "yes"), item(d, "shear", "yes"))
	got := Explain(res.Trace, set).Format(d)
	want := `pattern: temp = yes and depth = yes and shear = yes
verdict: emitted
decisions:
  - level 3: evaluated (740 rows, group counts [71 669])
  - level 3: emitted as contrast (score 0.9735407242919762, chi2 5352.081400477574, p 0)
  - top-k admitted (threshold -Inf -> -Inf)
  - meaningfulness filter: kept (score 0.9735407242919762)
`
	if got != want {
		t.Errorf("golden mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// chiSquareBorderline builds a deterministic dataset where {a=t} has a
// support difference above δ (0.12 > 0.1) but a chi-square p-value above
// α (≈0.087 for the [[50,62],[50,38]] table) — large but not significant.
func chiSquareBorderline(t *testing.T) *dataset.Dataset {
	t.Helper()
	n := 200
	a := make([]string, n)
	g := make([]string, n)
	for i := 0; i < n; i++ {
		if i < 100 {
			g[i] = "G1"
		} else {
			g[i] = "G2"
		}
		a[i] = "f"
	}
	for i := 0; i < 50; i++ { // 50/100 of G1
		a[i] = "t"
	}
	for i := 100; i < 162; i++ { // 62/100 of G2
		a[i] = "t"
	}
	return dataset.NewBuilder("borderline").
		AddCategorical("a", a).
		SetGroups(g).
		MustBuild()
}

// TestExplainGoldenChiSquarePruned pins the chain of a chi-square-pruned
// pattern (acceptance case b): large enough, but the test cannot reject
// independence at the Bonferroni-adjusted level.
func TestExplainGoldenChiSquarePruned(t *testing.T) {
	d := chiSquareBorderline(t)
	res := tracedMine(d, Config{})
	set := pattern.NewItemset(item(d, "a", "t"))
	x := Explain(res.Trace, set)
	if x.Verdict != "pruned (not_significant)" {
		t.Fatalf("verdict = %q, want pruned (not_significant)", x.Verdict)
	}
	got := x.Format(d)
	want := `pattern: a = t
verdict: pruned (not_significant)
decisions:
  - level 1: evaluated (112 rows, group counts [50 62])
  - level 1: cut by not_significant (observed 0.08737528034076769 vs bound 0.025)
`
	if got != want {
		t.Errorf("golden mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestExplainGoldenDependent pins the chain of an independently
// unproductive pattern (acceptance case c): {depth, shear} is mined and
// admitted, then filtered because the full hurricane conjunction explains
// it (§4.3).
func TestExplainGoldenDependent(t *testing.T) {
	d := hurricaneData(t)
	res := tracedMine(d, Config{})
	set := pattern.NewItemset(item(d, "depth", "yes"), item(d, "shear", "yes"))
	got := Explain(res.Trace, set).Format(d)
	want := `pattern: depth = yes and shear = yes
verdict: filtered (dependent)
decisions:
  - level 2: evaluated (1464 rows, group counts [795 669])
  - level 2: emitted as contrast (score 0.723983597072453, chi2 2332.92434292462, p 0)
  - top-k admitted (threshold -Inf -> -Inf)
  - meaningfulness filter: dependent (score 0.723983597072453) explained by temp = yes and depth = yes and shear = yes
`
	if got != want {
		t.Errorf("golden mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestExplainSubsumedAndUnseen covers the fallback verdicts: a pattern
// whose space was never enumerated because a subset was cut reports the
// subset's prune events; a pattern outside the trace entirely is unseen.
func TestExplainSubsumedAndUnseen(t *testing.T) {
	d := femalePregnant(t)
	res := tracedMine(d, Config{})
	// {sex=male, pregnant=yes}: sex=male was cut at level 1 (not_large),
	// so the combination never generated events of its own.
	set := pattern.NewItemset(item(d, "sex", "male"), item(d, "pregnant", "yes"))
	x := Explain(res.Trace, set)
	if x.Verdict != "subsumed (pruned subset)" {
		t.Fatalf("verdict = %q, want subsumed (pruned subset)", x.Verdict)
	}
	if len(x.Events) != 0 || len(x.Subset) == 0 {
		t.Errorf("subsumed pattern must carry subset events only: %d own, %d subset",
			len(x.Events), len(x.Subset))
	}
	for _, e := range x.Subset {
		if e.Kind != trace.KindPrune {
			t.Errorf("subset chain carries non-prune event %+v", e)
		}
	}

	// An empty trace knows nothing about any pattern.
	u := Explain(&trace.Trace{}, set)
	if u.Verdict != "unseen" || len(u.Events) != 0 || len(u.Subset) != 0 {
		t.Errorf("empty trace: %+v", u)
	}
}

// TestExplainPrunedLookupTable covers the composite-arg rendering: a
// pattern cut by the lookup table names the pruned subset that caused it.
func TestExplainPrunedLookupTable(t *testing.T) {
	d := hurricaneData(t)
	res := tracedMine(d, Config{})
	set := pattern.NewItemset(item(d, "temp", "yes"), item(d, "depth", "no"))
	got := Explain(res.Trace, set).Format(d)
	want := `pattern: temp = yes and depth = no
verdict: pruned (lookup_table)
decisions:
  - level 2: cut by lookup_table (observed 0 vs bound 0) via subset depth = no
`
	if got != want {
		t.Errorf("golden mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestExplainFormatNilDataset pins the raw-key fallback used when no
// dataset is available to render patterns.
func TestExplainFormatNilDataset(t *testing.T) {
	d := hurricaneData(t)
	res := tracedMine(d, Config{})
	set := pattern.NewItemset(item(d, "temp", "yes"), item(d, "depth", "no"))
	got := Explain(res.Trace, set).Format(nil)
	want := `pattern: 0=0|1=1
verdict: pruned (lookup_table)
decisions:
  - level 2: cut by lookup_table (observed 0 vs bound 0) via subset 1=1
`
	if got != want {
		t.Errorf("golden mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
