package core

import (
	"context"
	"math"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"

	"sdadcs/internal/bitmap"
	"sdadcs/internal/dataset"
	"sdadcs/internal/metrics"
	"sdadcs/internal/pattern"
	"sdadcs/internal/stats"
	"sdadcs/internal/topk"
	"sdadcs/internal/trace"
)

// Mine runs the full contrast pattern search of the paper over a mixed
// dataset: a levelwise enumeration of attribute combinations (Figure 1),
// with categorical-only combinations handled STUCCO-style and any
// combination containing continuous attributes handed to SDAD-CS
// (Algorithm 1). Results are the top-k contrasts under cfg.Measure, after
// the meaningfulness filter unless disabled.
func Mine(d *dataset.Dataset, cfg Config) Result {
	res, _ := MineContext(context.Background(), d, cfg)
	return res
}

// MineContext is Mine with cancellation: the search checks the context
// between levels (and between node batches when mining in parallel) and
// returns the contrasts found so far together with ctx.Err() when
// cancelled. A partial result is still sorted and, unless disabled,
// filtered.
func MineContext(ctx context.Context, d *dataset.Dataset, cfg Config) (Result, error) {
	res, _, err := mineInternal(ctx, d, cfg, nil)
	return res, err
}

// MineIncremental is Mine over a sliding window: prev is the state
// captured by the previous call over the same window (nil on the first
// mine or after any structural change), change describes what changed in
// the dataset since — see ChangeSummary for the truthfulness contract.
// Node outcomes the change summary proves unchanged are replayed from
// prev instead of re-evaluated; the result is bit-identical to Mine (same
// patterns, counts, scores, χ², tie-breaks), only Result.Metrics'
// evaluation counts differ. The returned state feeds the next call; it is
// nil when no state could be captured (DFS mode, invalid config).
func MineIncremental(d *dataset.Dataset, cfg Config, prev *RemineState, change ChangeSummary) (Result, *RemineState) {
	res, next, _ := mineInternal(context.Background(), d, cfg, &incrementalArgs{prev: prev, change: change})
	return res, next
}

// incrementalArgs marks a mineInternal call as incremental; a nil pointer
// is a plain full mine with no state capture.
type incrementalArgs struct {
	prev   *RemineState
	change ChangeSummary
}

func mineInternal(ctx context.Context, d *dataset.Dataset, cfg Config, inc *incrementalArgs) (Result, *RemineState, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, nil, err
	}
	cfg.defaults()
	m := &miner{
		ctx:   ctx,
		d:     d,
		cfg:   &cfg,
		prune: cfg.pruning(),
		sizes: d.GroupSizes(),
		list:  topk.New(cfg.TopK, cfg.scoreFloor()).WithRecorder(cfg.Metrics).WithTracer(cfg.Trace),
		table: make(pruneTable),
		memo:  newSupportMemo(d),
		rec:   cfg.Metrics,
		tr:    cfg.Trace,
	}
	if inc != nil && !cfg.DFS {
		// Incremental re-mine: fingerprint the previous state against this
		// dataset + config; on mismatch the gate still counts (everything
		// dirty) and a fresh state is captured for the next window either
		// way. DFS has no levelwise frontier to replay, so it opts out.
		key := cfg.CanonicalKey()
		prev := inc.prev
		if !prev.matches(d, key) {
			prev = nil
		}
		m.gate = newRemineGate(d, inc.change, m.prune, prev)
		m.next = newRemineState(d, key)
	}
	if cfg.Counting.bitmap() {
		// The per-(attr,value) bitmaps and per-group masks are cached on
		// the dataset itself (dataset.Index): the first Mine against a
		// dataset builds them, every later call — and every serve job
		// sharing the registry entry — reuses them. Every candidate cover
		// below is an intersection of these and every support count a
		// popcount against a group mask.
		ix, built := bitmap.Shared(d)
		m.index = ix
		m.arena = bitmap.NewArena(d.Rows())
		if built {
			m.rec.BitmapBuilds(ix.NumBitmaps())
		} else {
			m.rec.BitmapIndexReuse()
		}
	}
	attrs := cfg.Attrs
	if attrs == nil {
		attrs = make([]int, d.NumAttrs())
		for i := range attrs {
			attrs[i] = i
		}
	}
	schedule := stats.NewBonferroniSchedule(cfg.Alpha)

	frontier := m.levelOne(attrs)
	var interrupted error
	if cfg.DFS {
		// Depth-first ablation: the per-level candidate count is unknown
		// up front, so the Bonferroni adjustment can only use the level-1
		// width — one of the paper's arguments for levelwise search.
		alpha := schedule.LevelAlpha(len(frontier))
		m.mineDFS(frontier, attrs, 1, alpha)
	} else {
		for level := 1; level <= cfg.MaxDepth && len(frontier) > 0; level++ {
			if err := ctx.Err(); err != nil {
				interrupted = err
				break
			}
			alpha := schedule.LevelAlpha(len(frontier))
			survivors := m.processLevel(level, frontier, alpha)
			if level == cfg.MaxDepth {
				break
			}
			next := m.expand(survivors, attrs)
			// Double-buffer the frontier: the dead level's node slice backs
			// the next expansion's output.
			m.spare = frontier[:0]
			frontier = next
		}
	}

	if interrupted == nil {
		// Cancellation can also land mid-level (the per-node and SDAD-CS
		// checks stop work early without reporting through the level loop);
		// surface it so callers can tell a partial result from a full one.
		interrupted = ctx.Err()
	}

	contrasts := m.list.Contrasts()
	res := Result{Stats: m.stats}
	if cfg.SkipMeaningfulFilter {
		res.Contrasts = contrasts
	} else {
		meaning := Classify(d, contrasts, cfg.Alpha)
		for i, c := range contrasts {
			if m.tr.Enabled() {
				m.tr.Filter(c.Set.Key(), meaning[i].verdict(), c.Score)
			}
			if meaning[i].Meaningful() {
				res.Contrasts = append(res.Contrasts, c)
				res.Meaning = append(res.Meaning, meaning[i])
			} else {
				res.Stats.FilteredOut++
			}
		}
	}
	if m.tr.Enabled() {
		m.rec.TraceVolume(m.tr.Stats())
		res.Trace = m.tr.Snapshot()
	}
	if m.arena != nil {
		st := m.arena.Stats()
		m.rec.ArenaObserve(st.Fresh, st.Reused, st.Released)
	}
	if m.gate != nil {
		m.rec.RemineGate(m.gate.stable, m.gate.dirty, m.gate.redescended, m.gate.nearCross)
	}
	res.Metrics = m.snapshot()
	if interrupted != nil {
		// A cancelled mine leaves unevaluated (zero) outcomes in the level
		// records — never hand those to the next window.
		m.next = nil
	}
	return res, m.next, interrupted
}

// miner holds the shared state of one Mine call.
type miner struct {
	// ctx is the mining context: checked between levels, between nodes
	// inside a level, and inside the SDAD-CS recursion and merge loop so a
	// cancelled job stops promptly even mid-level. nil means "never
	// cancelled" (direct construction in tests).
	ctx   context.Context
	d     *dataset.Dataset
	cfg   *Config
	prune Pruning
	sizes []int
	list  *topk.List
	table pruneTable
	memo  *supportMemo
	stats Stats
	// index is the bitmap support-counting engine (nil = slice engine):
	// one bitmap per categorical value and per group, cached on the
	// dataset and built at most once per dataset ever (bitmap.Shared). It
	// is immutable after construction, so per-level workers — and other
	// concurrent Mine calls over the same dataset — share it without locks.
	index *bitmap.Index
	// arena recycles cover word blocks across the frontier's AND cascade
	// (bitmap engine only). Only the serial expansion step touches it;
	// per-level workers never allocate or release covers.
	arena *bitmap.Arena
	// spare is the previous level's frontier slice, recycled as the next
	// expand's output buffer (double-buffered levelwise frontiers).
	spare []node
	// gate decides which cached node outcomes an incremental re-mine may
	// replay, and next accumulates the state handed to the following
	// window's mine. Both nil on a plain Mine (and under DFS).
	gate *remineGate
	next *RemineState
	// rec is the optional instrumentation sink (nil = disabled). It is
	// shared with every per-level worker goroutine; all its operations
	// are atomic.
	rec *metrics.Recorder
	// tr is the optional decision-event sink (nil = disabled); like rec it
	// is shared by all workers and lock-free.
	tr *trace.Tracer
}

// cancelled reports whether the mining context has been cancelled; a nil
// context never is. One atomic-ish pointer check plus ctx.Err() keeps it
// cheap enough for per-node and per-recursion-round call sites.
func (m *miner) cancelled() bool {
	return m.ctx != nil && m.ctx.Err() != nil
}

// snapshot captures the final metrics state for Result, or nil when
// instrumentation is disabled.
func (m *miner) snapshot() *metrics.Snapshot {
	if m.rec == nil {
		return nil
	}
	s := m.rec.Snapshot()
	return &s
}

// node is one entry of the combination frontier: a categorical value
// context, the rows it covers, and the continuous attributes to be
// discretized jointly. catSet.Len() + len(contAttrs) equals the level.
//
// The cover is carried in exactly one representation, depending on the
// counting engine: catCover (a row-index view, slice engine) or bits (a
// bitmap over the row universe, bitmap engine; nil bits = all rows).
type node struct {
	catSet    pattern.Itemset
	catCover  dataset.View
	bits      *bitmap.Set
	contAttrs []int
	lastAttr  int
	// owned marks bits as an arena-allocated cover exclusive to this node
	// (a fused-AND result). Shared index value bitmaps and covers aliased
	// by a continuous extension are never owned, so only owned covers are
	// ever recycled.
	owned bool
}

// nodeOutcome is the result of evaluating one node.
type nodeOutcome struct {
	contrasts []pattern.Contrast
	inserts   []string
	survived  bool
	stats     Stats
}

// levelOne builds the initial frontier: one node per categorical value and
// one per continuous attribute. With the bitmap engine, a level-1
// categorical cover is the value's index bitmap itself (shared, never
// mutated); the slice engine filters row views as before.
func (m *miner) levelOne(attrs []int) []node {
	var out []node
	for _, attr := range attrs {
		if m.d.Attr(attr).Kind == dataset.Categorical {
			for code := range m.d.Domain(attr) {
				nd := node{
					catSet:   pattern.NewItemset(pattern.CatItem(attr, code)),
					lastAttr: attr,
				}
				if m.index != nil {
					nd.bits = m.index.Value(attr, code)
				} else {
					nd.catCover = m.d.All().FilterCat(attr, code)
				}
				out = append(out, nd)
			}
		} else {
			nd := node{
				catSet:    pattern.NewItemset(),
				contAttrs: []int{attr},
				lastAttr:  attr,
			}
			if m.index == nil {
				nd.catCover = m.d.All()
			} // bitmap engine: nil bits = full universe
			out = append(out, nd)
		}
	}
	return out
}

// expand generates the next level: every surviving node extended with
// every attribute after its last (each combination visited exactly once).
// Under the bitmap engine a parent's categorical extensions are computed
// by the batched sibling kernel: one fused AND+popcount pass shared by
// every sibling code, with covers drawn from (and empty covers recycled
// to) the arena. The slice engine keeps its row scans. Empty covers are
// dropped either way, and a parent's own cover is recycled as soon as its
// last child is built — unless a continuous extension aliases it.
func (m *miner) expand(nodes []node, attrs []int) []node {
	out := m.spare[:0]
	m.spare = nil
	for i := range nodes {
		nd := nodes[i]
		// escaped: a continuous extension shares the parent cover by
		// reference, so the cover outlives this expansion round.
		escaped := false
		for _, attr := range attrs {
			if attr <= nd.lastAttr {
				continue
			}
			if m.d.Attr(attr).Kind == dataset.Categorical {
				switch {
				case m.index != nil && nd.bits != nil:
					m.rec.BitmapAnds(len(m.d.Domain(attr)))
					m.index.ChildCovers(nd.bits, attr, m.arena,
						func(code int, cover *bitmap.Set, count int) {
							out = append(out, node{
								catSet:    nd.catSet.With(pattern.CatItem(attr, code)),
								contAttrs: nd.contAttrs,
								lastAttr:  attr,
								bits:      cover,
								owned:     true,
							})
						})
				case m.index != nil:
					// Parent covers every row: each child cover is the
					// (shared, immutable) value bitmap itself.
					for code := range m.d.Domain(attr) {
						val := m.index.Value(attr, code)
						if !val.Any() {
							continue
						}
						out = append(out, node{
							catSet:    nd.catSet.With(pattern.CatItem(attr, code)),
							contAttrs: nd.contAttrs,
							lastAttr:  attr,
							bits:      val,
						})
					}
				default:
					for code := range m.d.Domain(attr) {
						cover := nd.catCover.FilterCat(attr, code)
						if cover.Len() == 0 {
							continue
						}
						out = append(out, node{
							catSet:    nd.catSet.With(pattern.CatItem(attr, code)),
							contAttrs: nd.contAttrs,
							lastAttr:  attr,
							catCover:  cover,
						})
					}
				}
			} else {
				conts := make([]int, len(nd.contAttrs), len(nd.contAttrs)+1)
				copy(conts, nd.contAttrs)
				conts = append(conts, attr)
				if nd.bits != nil {
					escaped = true
				}
				out = append(out, node{
					catSet:    nd.catSet,
					catCover:  nd.catCover,
					bits:      nd.bits,
					contAttrs: conts,
					lastAttr:  attr,
				})
			}
		}
		if nd.owned && !escaped {
			m.arena.Put(nd.bits)
		}
	}
	return out
}

// processLevel evaluates all nodes of one level — in parallel when
// cfg.Workers > 1 (the §6 scaling strategy) — then applies the buffered
// lookup-table inserts and top-k additions in node order, so results are
// identical for any worker count.
func (m *miner) processLevel(level int, frontier []node, alpha float64) []node {
	threshold := m.list.Threshold()
	outcomes := make([]nodeOutcome, len(frontier))

	// Incremental replay pass: fill outcomes the gate proves unchanged
	// from the previous window's cached state, then evaluate only the
	// rest. Replayed outcomes flow through the exact same apply loop below
	// (stats, top-k, lookup table), so the result is bit-identical to a
	// full mine.
	var replayed []bool
	stable := 0
	if lr := m.gate.enterLevel(level, alpha, threshold); lr != nil {
		replayed = make([]bool, len(frontier))
		for i := range frontier {
			if out, ok := lr.outcome(frontier[i]); ok {
				outcomes[i] = out
				replayed[i] = true
				stable++
			}
		}
	}
	m.gate.count(level, stable, len(frontier))

	var levelStart time.Time
	var levelTS int64
	if m.rec.Enabled() || m.tr.Enabled() {
		levelStart = time.Now()
		levelTS = m.tr.Now()
	}

	if m.cfg.Workers <= 1 {
		for i := range frontier {
			if m.cancelled() {
				break
			}
			if replayed != nil && replayed[i] {
				continue
			}
			outcomes[i] = m.evaluateTimed(level, 0, frontier[i], alpha, threshold)
		}
	} else {
		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < m.cfg.Workers; w++ {
			wg.Add(1)
			go func(worker int) {
				defer wg.Done()
				loop := func() {
					for i := range work {
						if m.cancelled() {
							continue // keep draining so the producer never blocks
						}
						outcomes[i] = m.evaluateTimed(level, worker, frontier[i], alpha, threshold)
					}
				}
				if m.cfg.PprofLabels {
					labels := pprof.Labels(
						"sdadcs_level", strconv.Itoa(level),
						"sdadcs_worker", strconv.Itoa(worker),
					)
					pprof.Do(context.Background(), labels, func(context.Context) { loop() })
				} else {
					loop()
				}
			}(w)
		}
		for i := range frontier {
			if replayed != nil && replayed[i] {
				continue
			}
			work <- i
		}
		close(work)
		wg.Wait()
	}

	var survivors []node
	contrasts := 0
	for i, o := range outcomes {
		m.stats.add(o.stats)
		contrasts += len(o.contrasts)
		for _, c := range o.contrasts {
			m.list.Add(c)
		}
		for _, key := range o.inserts {
			m.table[key] = struct{}{}
		}
		if o.survived {
			survivors = append(survivors, frontier[i])
		} else if frontier[i].owned {
			// Dead end: its cover feeds the next level's allocations.
			m.arena.Put(frontier[i].bits)
		}
	}
	if m.next != nil {
		st := remineLevel{
			alphaBits:     math.Float64bits(alpha),
			thresholdBits: math.Float64bits(threshold),
			nodes:         make(map[string]nodeOutcome, len(frontier)),
		}
		for i := range frontier {
			st.nodes[nodeSignature(frontier[i])] = outcomes[i]
			st.inserts = append(st.inserts, outcomes[i].inserts...)
		}
		m.next.levels = append(m.next.levels, st)
		m.gate.advanceLevel(level, st.inserts, len(m.table))
	}
	if m.rec.Enabled() {
		m.rec.LevelObserve(level, len(frontier), len(survivors), contrasts,
			m.cfg.Workers, time.Since(levelStart))
	}
	if m.tr.Enabled() {
		m.tr.Level(levelTS, level, len(frontier), len(survivors), time.Since(levelStart))
	}
	return survivors
}

// evaluateTimed wraps evaluate with the per-node latency observation; the
// disabled-recorder path skips both clock reads.
func (m *miner) evaluateTimed(level, worker int, nd node, alpha, threshold float64) nodeOutcome {
	if m.rec == nil {
		return m.evaluate(level, worker, nd, alpha, threshold)
	}
	start := time.Now()
	o := m.evaluate(level, worker, nd, alpha, threshold)
	m.rec.NodeEval(level, time.Since(start))
	return o
}

// mineDFS explores nodes pre-order: each node is evaluated and its
// children fully explored before its siblings. Lookup-table inserts and
// top-k additions apply immediately. Covers are recycled at the same
// points as the levelwise order: inside expand for explored nodes, right
// here for dead ends and max-depth leaves.
func (m *miner) mineDFS(nodes []node, attrs []int, level int, alpha float64) {
	for _, nd := range nodes {
		if m.cancelled() {
			return
		}
		o := m.evaluateTimed(level, 0, nd, alpha, m.list.Threshold())
		m.stats.add(o.stats)
		for _, c := range o.contrasts {
			m.list.Add(c)
		}
		for _, key := range o.inserts {
			m.table[key] = struct{}{}
		}
		if o.survived && level < m.cfg.MaxDepth {
			m.mineDFS(m.expand([]node{nd}, attrs), attrs, level+1, alpha)
		} else if nd.owned {
			m.arena.Put(nd.bits)
		}
	}
}

// evaluate processes one node: a pure categorical itemset directly, a
// mixed/continuous combination via SDAD-CS. It must not touch shared
// mutable state (it runs concurrently); memo access is the one exception,
// guarded by supportMemo's mutex (internal/core/prune.go) — all shared
// access goes through supportMemo.supports, which locks around its cache.
func (m *miner) evaluate(level, worker int, nd node, alpha, threshold float64) nodeOutcome {
	if len(nd.contAttrs) == 0 {
		return m.evaluateCategorical(level, worker, nd, alpha)
	}
	run := &sdadRun{
		ctx:       m.ctx,
		d:         m.d,
		cfg:       m.cfg,
		prune:     m.prune,
		contAttrs: nd.contAttrs,
		alpha:     alpha,
		threshold: threshold,
		memo:      m.memo,
		table:     m.table,
		sizes:     m.sizes,
		totalRows: m.d.Rows(),
		rec:       m.rec,
		tr:        m.tr,
		worker:    worker,
	}
	contrasts := run.run(nd.catSet, m.coverView(nd))
	return nodeOutcome{
		contrasts: contrasts,
		inserts:   run.inserts,
		survived:  run.alive,
		stats:     run.stats,
	}
}

// coverView returns the node's cover as a row view. Under the bitmap
// engine this is the lazy materialization fallback: SDAD-CS box interiors
// need raw row indices for median computation, so a bitmap cover converts
// to a sorted row slice exactly when (and only when) a continuous
// combination is handed to Algorithm 1. Bitmap and slice covers enumerate
// rows in the same ascending order, so both engines feed SDAD-CS identical
// views.
func (m *miner) coverView(nd node) dataset.View {
	if m.index == nil {
		return nd.catCover
	}
	if nd.bits == nil {
		return m.d.All()
	}
	m.rec.BitmapMaterialize()
	return m.d.Restrict(nd.bits.Rows())
}

// groupCounts counts the node's cover per group: a popcount of the cover
// bitmap against every group mask under the bitmap engine, a row scan
// under the slice engine. Both count exactly the same rows.
func (m *miner) groupCounts(nd node) []int {
	if m.index == nil {
		return nd.catCover.GroupCounts()
	}
	if nd.bits == nil {
		// Full-universe cover: the group masks are their own counts.
		counts := make([]int, len(m.sizes))
		copy(counts, m.sizes)
		return counts
	}
	m.rec.BitmapPopcounts(len(m.sizes))
	// Fused multi-mask kernel: one pass over the cover counts every group,
	// skipping zero cover words for all groups at once. The counts slice
	// escapes into pattern.Supports, so it is freshly allocated.
	counts := make([]int, len(m.sizes))
	m.index.GroupCountsInto(nd.bits, counts)
	return counts
}

// evaluateCategorical handles a categorical-only node (STUCCO semantics).
func (m *miner) evaluateCategorical(level, worker int, nd node, alpha float64) nodeOutcome {
	var o nodeOutcome
	if m.prune.LookupTable {
		if subKey, hit := m.table.prunedSubset(nd.catSet); hit {
			m.rec.PruneHit(metrics.PruneLookupTable)
			if m.tr.Enabled() {
				m.tr.Prune(level, worker, nd.catSet.Key(),
					metrics.PruneLookupTable.String()+":"+subKey, 0, 0)
			}
			o.stats.SpacesPruned++
			return o
		}
	}
	o.stats.PartitionsEvaluated++
	counts := m.groupCounts(nd)
	sup := pattern.CountsToSupports(counts, m.sizes)
	if m.tr.Enabled() {
		m.tr.Node(level, worker, nd.catSet.Key(), sup.TotalCount(), counts)
	}
	dec := evaluatePruning(m.prune, nd.catSet, sup, m.cfg.Delta, alpha,
		m.d.Rows(), m.memo.supports, m.rec, m.tr, level, worker)
	if dec.record && m.prune.LookupTable {
		o.inserts = append(o.inserts, nd.catSet.Key())
	}
	if dec.skipContrast && dec.skipChildren {
		o.stats.SpacesPruned++
		return o
	}
	o.survived = !dec.skipChildren
	if !dec.skipContrast && sup.MaxDiff() > m.cfg.Delta {
		if test, err := stats.ChiSquare2xK(sup.Count, m.sizes); err == nil && test.P < alpha {
			if m.tr.Enabled() {
				m.tr.Emit(level, worker, nd.catSet.Key(),
					m.cfg.Measure.Eval(sup), test.Statistic, test.P, counts)
			}
			o.contrasts = append(o.contrasts, pattern.Contrast{
				Set:      nd.catSet,
				Supports: sup,
				Score:    m.cfg.Measure.Eval(sup),
				ChiSq:    test.Statistic,
				P:        test.P,
			})
		} else if m.tr.Enabled() {
			// Large but not significant: the decision the explain path
			// reports for patterns that never reached the candidate stream.
			m.tr.Prune(level, worker, nd.catSet.Key(), "not_significant", test.P, alpha)
		}
	} else if !dec.skipContrast && m.tr.Enabled() {
		m.tr.Prune(level, worker, nd.catSet.Key(), "not_large", sup.MaxDiff(), m.cfg.Delta)
	}
	return o
}
