package core

import (
	"reflect"
	"testing"

	"sdadcs/internal/dataset"
	"sdadcs/internal/pattern"
)

// TestExploreBoundaryRowsExcluded guards the (Lo, Hi] interval convention
// through SDAD-CS's single-pass space assignment: rows whose value ties
// exactly at a box's lower bound, or exceeds its upper bound, must land in
// no child space — exactly as re-counting the recorded RangeItems with
// pattern.SupportsOf (which uses Interval.Contains: Lo < v <= Hi) would
// exclude them. The regression: the assignment used to classify rows only
// relative to the split median, so a caller-supplied view containing
// out-of-box rows silently inflated child supports relative to their
// recorded itemsets.
func TestExploreBoundaryRowsExcluded(t *testing.T) {
	// Group "a": 60 values inside (10, 15]; group "b": 60 values inside
	// (15, 20], plus 30 rows tied exactly at the box's Lo (10.0) and 10
	// rows beyond its Hi (25.0). The box under exploration is (10, 20], but
	// the view handed to explore contains all 160 rows.
	var xs []float64
	var gs []string
	for i := 0; i < 60; i++ {
		xs = append(xs, 10.1+0.08*float64(i))
		gs = append(gs, "a")
	}
	for i := 0; i < 60; i++ {
		xs = append(xs, 15.1+0.08*float64(i))
		gs = append(gs, "b")
	}
	for i := 0; i < 30; i++ {
		xs = append(xs, 10.0) // tied at Lo: outside (10, 20]
		gs = append(gs, "b")
	}
	for i := 0; i < 10; i++ {
		xs = append(xs, 25.0) // beyond Hi: outside (10, 20]
		gs = append(gs, "b")
	}
	d := dataset.NewBuilder("boundary").
		AddContinuous("x", xs).
		SetGroups(gs).
		MustBuild()

	cfg := Config{RecordExploredSpaces: true, Pruning: &Pruning{}}
	cfg.defaults()
	r := &sdadRun{
		d:         d,
		cfg:       &cfg,
		prune:     cfg.pruning(),
		contAttrs: []int{0},
		alpha:     cfg.Alpha,
		threshold: cfg.scoreFloor(),
		memo:      newSupportMemo(d),
		table:     make(pruneTable),
		sizes:     d.GroupSizes(),
		totalRows: d.Rows(),
	}
	box := pattern.NewItemset(pattern.RangeItem(0, 10, 20))
	got := r.explore(d.All(), box, 1, 0)
	if len(got) == 0 {
		t.Fatal("explore found no contrasts; the fixture is broken")
	}
	for _, c := range got {
		want := pattern.SupportsOf(c.Set, d.All())
		if !reflect.DeepEqual(c.Supports.Count, want.Count) {
			t.Errorf("%s: recorded counts %v, re-counting the itemset gives %v",
				c.Set.Key(), c.Supports.Count, want.Count)
		}
	}
}
