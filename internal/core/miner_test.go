package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"sdadcs/internal/datagen"
	"sdadcs/internal/dataset"
	"sdadcs/internal/pattern"
)

func TestMineFigure2(t *testing.T) {
	// §4.4's example: 2% group A concentrated in (62, 75]. The miner must
	// isolate a region around A's range with a high purity ratio.
	d := datagen.Figure2(1, 2000)
	res := Mine(d, Config{Measure: pattern.SurprisingMeasure})
	if len(res.Contrasts) == 0 {
		t.Fatal("no contrasts on Figure 2 data")
	}
	gA := d.GroupIndex("A")
	found := false
	for _, c := range res.Contrasts {
		it, ok := c.Set.ItemOn(0)
		if !ok {
			continue
		}
		// A region that contains most of A and is strongly A-dominant.
		// (Median-based splits land near, not exactly on, (62, 75], so a
		// thin slice of A may fall outside the reported region.)
		if c.Supports.Supp(gA) > 0.6 && c.Supports.PR() > 0.7 &&
			it.Range.Lo >= 40 && it.Range.Hi <= 100 {
			found = true
		}
	}
	if !found {
		for _, c := range res.Contrasts {
			t.Logf("contrast: %s score=%.3f", c.Format(d), c.Score)
		}
		t.Error("no contrast isolating group A's range")
	}
}

func TestMineSimulated1PureSplit(t *testing.T) {
	// Figure 3a: the only meaningful split is Attribute1 at 0.5 (PR = 1 on
	// both sides); pure-space pruning must prevent 2-attribute contrasts.
	d := datagen.Simulated1(2, 2000)
	res := Mine(d, Config{Measure: pattern.SurprisingMeasure})
	if len(res.Contrasts) == 0 {
		t.Fatal("no contrasts")
	}
	a1 := d.AttrIndex("Attribute1")
	top := res.Contrasts[0]
	it, ok := top.Set.ItemOn(a1)
	if !ok || top.Set.Len() != 1 {
		t.Fatalf("top contrast should be univariate on Attribute1, got %s", top.Set.Format(d))
	}
	if math.Abs(it.Range.Lo-0.5) > 0.05 && math.Abs(it.Range.Hi-0.5) > 0.05 {
		t.Errorf("split not near 0.5: %v", it.Range)
	}
	if top.Supports.PR() < 0.99 {
		t.Errorf("top PR = %v, want 1", top.Supports.PR())
	}
	// §5.1: the univariate boundary is the story. The empirical median is
	// not exactly the true boundary 0.5, so the near-boundary band is not
	// perfectly pure and a correlated 2-attribute contrast can squeak in —
	// but never above the univariate one.
	for _, c := range res.Contrasts {
		if c.Set.Len() > 1 && c.Score >= top.Score {
			t.Errorf("multivariate contrast outranks the pure split: %s (%.3f vs %.3f)",
				c.Set.Format(d), c.Score, top.Score)
		}
	}
}

func TestMineSimulated2MultivariateOnly(t *testing.T) {
	// Figure 3b: X-shaped Gaussians. No univariate rule exists; SDAD-CS
	// must find joint boxes ("no rule found when we run SDAD-CS on each
	// attribute individually").
	d := datagen.Simulated2(3, 3000)
	res := Mine(d, Config{Measure: pattern.SurprisingMeasure})
	if len(res.Contrasts) == 0 {
		t.Fatal("no contrasts on the X data")
	}
	sawJoint := false
	for _, c := range res.Contrasts {
		if c.Set.Len() == 1 && c.Score > 0.3 {
			t.Errorf("strong univariate contrast should not exist: %s score=%v",
				c.Format(d), c.Score)
		}
		if c.Set.Len() == 2 {
			sawJoint = true
		}
	}
	if !sawJoint {
		t.Error("no joint (2-attribute) contrast found on interacting data")
	}
}

func TestMineSimulated3LevelOneOnly(t *testing.T) {
	// Figure 3c: structure only on Attribute1 at level 1; higher-level
	// contrasts are meaningless and must be filtered or pruned.
	d := datagen.Simulated3(4, 2000)
	res := Mine(d, Config{Measure: pattern.SurprisingMeasure})
	if len(res.Contrasts) == 0 {
		t.Fatal("no contrasts")
	}
	for _, c := range res.Contrasts {
		if c.Set.Len() > 1 {
			t.Errorf("level-2 contrast should be pruned: %s", c.Set.Format(d))
		}
	}
}

func TestMineCategoricalOnly(t *testing.T) {
	// Pure categorical data exercises the STUCCO path inside the miner.
	n := 1000
	a := make([]string, n)
	g := make([]string, n)
	for i := range a {
		if i%2 == 0 {
			g[i] = "X"
			a[i] = []string{"hot", "hot", "hot", "cold"}[i/2%4]
		} else {
			g[i] = "Y"
			a[i] = []string{"cold", "cold", "cold", "hot"}[i/2%4]
		}
	}
	d := dataset.NewBuilder("cat").AddCategorical("a", a).SetGroups(g).MustBuild()
	res := Mine(d, Config{})
	if len(res.Contrasts) == 0 {
		t.Fatal("no categorical contrasts")
	}
	if res.Contrasts[0].Score < 0.4 {
		t.Errorf("top score = %v, want ~0.5", res.Contrasts[0].Score)
	}
}

func TestMineMixedData(t *testing.T) {
	// Adult-like data: mixed categorical/continuous mining end to end.
	d := datagen.Adult(datagen.AdultConfig{Seed: 5, Bachelors: 2000, Doctorate: 400})
	res := Mine(d, Config{
		Measure:  pattern.SurprisingMeasure,
		MaxDepth: 2,
		Attrs: []int{
			d.AttrIndex("age"), d.AttrIndex("hours_per_week"), d.AttrIndex("occupation"),
		},
	})
	if len(res.Contrasts) == 0 {
		t.Fatal("no contrasts on Adult-like data")
	}
	// The young-age, Bachelors-dominated region must be found (the paper's
	// Table 1 row 1; merging may widen the bin slightly past age 26).
	bach := d.GroupIndex("Bachelors")
	doc := d.GroupIndex("Doctorate")
	foundYoung := false
	for _, c := range res.Contrasts {
		it, ok := c.Set.ItemOn(d.AttrIndex("age"))
		if ok && c.Set.Len() == 1 && it.Range.Hi <= 35 &&
			c.Supports.Supp(doc) < 0.1 && c.Supports.Supp(bach) > 0.2 {
			foundYoung = true
		}
	}
	if !foundYoung {
		for _, c := range res.Contrasts[:minInt(10, len(res.Contrasts))] {
			t.Logf("contrast: %s score=%.3f", c.Format(d), c.Score)
		}
		t.Error("young-Bachelors region not found")
	}
	if res.Stats.PartitionsEvaluated == 0 || res.Stats.SDADCalls == 0 {
		t.Error("stats counters not wired")
	}
}

func TestMineNPEvaluatesMore(t *testing.T) {
	d := datagen.Adult(datagen.AdultConfig{Seed: 6, Bachelors: 1500, Doctorate: 300})
	cfg := Config{MaxDepth: 2, Attrs: []int{
		d.AttrIndex("age"), d.AttrIndex("hours_per_week"), d.AttrIndex("sex"),
	}}
	full := Mine(d, cfg)
	np := Mine(d, cfg.NP())
	if np.Stats.PartitionsEvaluated < full.Stats.PartitionsEvaluated {
		t.Errorf("NP evaluated %d partitions, full pruning %d — NP should do at least as much work",
			np.Stats.PartitionsEvaluated, full.Stats.PartitionsEvaluated)
	}
	if np.Meaning != nil {
		t.Error("NP should not classify meaningfulness")
	}
	if np.Stats.FilteredOut != 0 {
		t.Error("NP should not filter")
	}
}

func TestMineParallelDeterministic(t *testing.T) {
	d := datagen.Adult(datagen.AdultConfig{Seed: 7, Bachelors: 1000, Doctorate: 200})
	cfg := Config{MaxDepth: 2, Measure: pattern.SurprisingMeasure, Attrs: []int{
		d.AttrIndex("age"), d.AttrIndex("hours_per_week"), d.AttrIndex("occupation"),
	}}
	serial := Mine(d, cfg)
	cfg.Workers = 4
	parallel := Mine(d, cfg)
	if len(serial.Contrasts) != len(parallel.Contrasts) {
		t.Fatalf("serial %d vs parallel %d contrasts",
			len(serial.Contrasts), len(parallel.Contrasts))
	}
	for i := range serial.Contrasts {
		if serial.Contrasts[i].Set.Key() != parallel.Contrasts[i].Set.Key() {
			t.Fatalf("contrast %d differs between serial and parallel", i)
		}
		if serial.Contrasts[i].Score != parallel.Contrasts[i].Score {
			t.Fatalf("score %d differs between serial and parallel", i)
		}
	}
	if serial.Stats.PartitionsEvaluated != parallel.Stats.PartitionsEvaluated {
		t.Errorf("partition counts differ: %d vs %d",
			serial.Stats.PartitionsEvaluated, parallel.Stats.PartitionsEvaluated)
	}
}

func TestMineWithMissingValues(t *testing.T) {
	// 10% missing readings must neither crash the miner nor destroy the
	// planted pattern; supports of mined boxes must still match a direct
	// recount (missing rows match no interval on that attribute).
	rng := rand.New(rand.NewSource(21))
	n := 2000
	x := make([]float64, n)
	g := make([]string, n)
	for i := range x {
		if i%2 == 0 {
			g[i] = "G1"
			x[i] = rng.NormFloat64() + 2
		} else {
			g[i] = "G2"
			x[i] = rng.NormFloat64()
		}
		if rng.Float64() < 0.10 {
			x[i] = math.NaN()
		}
	}
	d := dataset.NewBuilder("missing").
		AddContinuous("x", x).
		SetGroups(g).
		MustBuild()
	res := Mine(d, Config{MaxDepth: 1})
	if len(res.Contrasts) == 0 {
		t.Fatal("no contrasts despite a strong planted shift")
	}
	if res.Contrasts[0].Score < 0.5 {
		t.Errorf("top score = %v, want strong", res.Contrasts[0].Score)
	}
	for _, c := range res.Contrasts {
		direct := pattern.SupportsOf(c.Set, d.All())
		for gi := range direct.Count {
			if direct.Count[gi] != c.Supports.Count[gi] {
				t.Errorf("%s: stored %v direct %v", c.Set.Key(), c.Supports.Count, direct.Count)
			}
		}
	}
}

func TestMineContextCancellation(t *testing.T) {
	d := datagen.Adult(datagen.AdultConfig{Seed: 13, Bachelors: 1500, Doctorate: 300})
	cfg := Config{MaxDepth: 3}

	// An already-cancelled context stops before level 1: no contrasts.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := MineContext(ctx, d, cfg)
	if err == nil {
		t.Fatal("cancelled context should report an error")
	}
	if len(res.Contrasts) != 0 {
		t.Errorf("cancelled-before-start run found %d contrasts", len(res.Contrasts))
	}

	// A live context behaves like Mine.
	res2, err := MineContext(context.Background(), d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain := Mine(d, cfg)
	if len(res2.Contrasts) != len(plain.Contrasts) {
		t.Error("MineContext with background context differs from Mine")
	}
}

func TestMineDFSMode(t *testing.T) {
	d := datagen.Adult(datagen.AdultConfig{Seed: 11, Bachelors: 1000, Doctorate: 200})
	cfg := Config{MaxDepth: 2, Attrs: []int{
		d.AttrIndex("age"), d.AttrIndex("hours_per_week"), d.AttrIndex("sex"),
	}}
	bfs := Mine(d, cfg)
	cfg.DFS = true
	dfs := Mine(d, cfg)
	if len(dfs.Contrasts) == 0 {
		t.Fatal("DFS mode found nothing")
	}
	for _, c := range dfs.Contrasts {
		if c.Set.Len() > 2 {
			t.Error("DFS exceeded depth bound")
		}
	}
	// Both orders must find the same strongest pattern (the search order
	// affects pruning, not what the best contrast is).
	if len(bfs.Contrasts) > 0 && dfs.Contrasts[0].Score < bfs.Contrasts[0].Score-1e-9 {
		t.Errorf("DFS top score %v below levelwise %v",
			dfs.Contrasts[0].Score, bfs.Contrasts[0].Score)
	}
	if dfs.Stats.PartitionsEvaluated == 0 {
		t.Error("DFS stats not wired")
	}
}

func TestMineDepthOne(t *testing.T) {
	d := datagen.Simulated4(8, 1500)
	res := Mine(d, Config{MaxDepth: 1})
	for _, c := range res.Contrasts {
		if c.Set.Len() > 1 {
			t.Errorf("depth-1 mining produced %d-item contrast", c.Set.Len())
		}
	}
}

func TestMineSupportsMatchRecount(t *testing.T) {
	d := datagen.Simulated1(9, 1000)
	res := Mine(d, Config{})
	for _, c := range res.Contrasts {
		direct := pattern.SupportsOf(c.Set, d.All())
		for g := range direct.Count {
			if direct.Count[g] != c.Supports.Count[g] {
				t.Errorf("%s: stored count %v, direct %v",
					c.Set.Format(d), c.Supports.Count, direct.Count)
				break
			}
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
