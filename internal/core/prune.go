package core

import (
	"math"
	"sync"

	"sdadcs/internal/dataset"
	"sdadcs/internal/metrics"
	"sdadcs/internal/pattern"
	"sdadcs/internal/stats"
	"sdadcs/internal/trace"
)

// pruneTable is the lookup table of §4.1: canonical keys of itemsets found
// prunable. A space is cut when any subset of its items is present.
type pruneTable map[string]struct{}

// prunedSubset returns the key of a recorded non-empty subset of the
// itemset's items (including the itemset itself), if any — the provenance
// answer to "which earlier prune killed this space". Itemsets are at most
// MaxDepth items, so the 2^n subset enumeration is tiny.
func (t pruneTable) prunedSubset(set pattern.Itemset) (string, bool) {
	if len(t) == 0 {
		return "", false
	}
	items := set.Items()
	n := len(items)
	if n == 0 {
		return "", false
	}
	for mask := 1; mask < 1<<uint(n); mask++ {
		var sub []pattern.Item
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				sub = append(sub, items[i])
			}
		}
		key := pattern.NewItemset(sub...).Key()
		if _, ok := t[key]; ok {
			return key, true
		}
	}
	return "", false
}

// hasPrunedSubset reports whether any recorded subset cuts the itemset.
func (t pruneTable) hasPrunedSubset(set pattern.Itemset) bool {
	_, ok := t.prunedSubset(set)
	return ok
}

// pruneDecision is the outcome of the §4.3 rules for one space.
type pruneDecision struct {
	// skipContrast: the space cannot be (or should not be reported as) a
	// contrast.
	skipContrast bool
	// skipChildren: do not explore specializations of the space.
	skipChildren bool
	// record: insert the space's key into the lookup table so later
	// combinations with this space as a subset are cut.
	record bool
}

// evaluatePruning applies the pruning rules to a counted space.
//
// sup holds the space's per-group supports; set its itemset. The CLT
// redundancy rule compares the space's support difference against each
// subset obtained by dropping one item (Eq. 14–16); subset supports are
// provided by the memoizing suppOf callback. rec (nil = disabled) counts
// which rule fired; tr (nil = disabled) additionally records the decision
// itself — which rule, at what observed statistic, against which bound.
// Both sinks are safe for concurrent use, so this function stays callable
// from parallel per-level workers; level/worker only annotate trace
// events.
func evaluatePruning(p Pruning, set pattern.Itemset, sup pattern.Supports,
	delta, alpha float64, totalRows int,
	suppOf func(pattern.Itemset) pattern.Supports,
	rec *metrics.Recorder, tr *trace.Tracer, level, worker int) pruneDecision {

	// Minimum deviation size: no group reaches δ, so neither this space
	// nor any specialization can be a large contrast.
	if p.MinDeviation && !sup.LargeIn(delta) {
		rec.PruneHit(metrics.PruneMinDeviation)
		if tr.Enabled() {
			tr.Prune(level, worker, set.Key(), metrics.PruneMinDeviation.String(),
				maxSupport(sup), delta)
		}
		return pruneDecision{skipContrast: true, skipChildren: true, record: true}
	}
	// Expected count: statistical tests are invalid below an expected
	// cell count of 5, and specializations only shrink counts.
	if p.ExpectedCount {
		if min := minExpected(sup, totalRows); min < 5 {
			rec.PruneHit(metrics.PruneExpectedCount)
			if tr.Enabled() {
				tr.Prune(level, worker, set.Key(), metrics.PruneExpectedCount.String(), min, 5)
			}
			return pruneDecision{skipContrast: true, skipChildren: true, record: true}
		}
	}
	// CLT redundancy: the support difference is statistically the same as
	// a subset's, so this space (and its supersets) add nothing.
	if p.RedundancyCLT && set.Len() >= 2 {
		if det, redundant := redundantByCLT(set, sup, alpha, suppOf); redundant {
			rec.PruneHit(metrics.PruneRedundancyCLT)
			if tr.Enabled() {
				tr.Prune(level, worker, set.Key(),
					metrics.PruneRedundancyCLT.String()+":"+det.subsetKey,
					det.diff, det.half)
			}
			return pruneDecision{skipContrast: true, skipChildren: true, record: true}
		}
	}
	var d pruneDecision
	// Pure space: PR = 1 means one group is absent; the space itself is a
	// fine contrast but adding attributes only produces redundant ones.
	if p.PureSpace && sup.PR() >= 1 && sup.TotalCount() > 0 {
		rec.PruneHit(metrics.PrunePureSpace)
		if tr.Enabled() {
			tr.Prune(level, worker, set.Key(), metrics.PrunePureSpace.String(), sup.PR(), 1)
		}
		d.skipChildren = true
		d.record = true
	}
	// Chi-square optimistic estimate: if no specialization can reach the
	// critical value at the current α, children cannot be significant.
	if p.ChiSquareOE && !d.skipChildren {
		bound := stats.ChiSquareOptimistic(sup.Count, sup.Size)
		crit := stats.ChiSquareQuantile(1-alpha, len(sup.Size)-1)
		if bound < crit {
			rec.PruneHit(metrics.PruneChiSquareOE)
			if tr.Enabled() {
				tr.Prune(level, worker, set.Key(), metrics.PruneChiSquareOE.String(), bound, crit)
			}
			d.skipChildren = true
		}
	}
	return d
}

// maxSupport returns the largest per-group support — the statistic the
// minimum-deviation rule tests against δ.
func maxSupport(sup pattern.Supports) float64 {
	max := 0.0
	for g := 0; g < sup.Groups(); g++ {
		if s := sup.Supp(g); s > max {
			max = s
		}
	}
	return max
}

// minExpected returns the smallest expected cell count of the
// pattern × group contingency table (the expected-count rule prunes when
// it is below 5).
func minExpected(sup pattern.Supports, totalRows int) float64 {
	covered := sup.TotalCount()
	min := math.Inf(1)
	for _, gs := range sup.Size {
		if e := float64(covered) * float64(gs) / float64(totalRows); e < min {
			min = e
		}
	}
	return min
}

// cltDetail reports which subset triggered the CLT redundancy rule and
// at which statistics — the payload of the traced prune decision.
type cltDetail struct {
	subsetKey string
	diff      float64 // the current itemset's support difference
	half      float64 // the half-width α·sqrt(a+b) of the subset's bound
}

// redundantByCLT implements the Eq. 14–16 check: for each subset obtained
// by dropping one item, if the current support difference lies within the
// bound diff_subset ± α·sqrt(a+b) around the subset's difference, the
// current itemset is statistically the same contrast.
//
// The multiplier is the paper's literal α (not the z critical value): the
// resulting bound is deliberately razor-thin, so the rule fires only on
// (near-)functional dependence — the {female, pregnant} example, equipment
// attributes that mirror each other — and never on a space whose children
// might hide a local interaction. Using z_{1−α/2} here would prune the
// very quadrants whose refinement reveals multivariate structure (the
// age × hours interaction of Table 1 dilutes to statistical redundancy at
// the first split level).
func redundantByCLT(set pattern.Itemset, sup pattern.Supports, alpha float64,
	suppOf func(pattern.Itemset) pattern.Supports) (cltDetail, bool) {

	x, y := extremeGroups(sup)
	diffCurr := sup.Supp(x) - sup.Supp(y)
	for _, attr := range set.Attrs() {
		subset := set.Without(attr)
		if subset.Len() == 0 {
			continue
		}
		sub := suppOf(subset)
		diffSub := sub.Supp(x) - sub.Supp(y)
		a := sub.Supp(x) * (1 - sub.Supp(x)) / float64(sub.Size[x])
		b := sub.Supp(y) * (1 - sub.Supp(y)) / float64(sub.Size[y])
		half := alpha * math.Sqrt(a+b)
		if diffCurr >= diffSub-half && diffCurr <= diffSub+half {
			return cltDetail{subsetKey: subset.Key(), diff: diffCurr, half: half}, true
		}
	}
	return cltDetail{}, false
}

// extremeGroups returns the groups with the largest and smallest support.
func extremeGroups(sup pattern.Supports) (hi, lo int) {
	for g := 1; g < sup.Groups(); g++ {
		if sup.Supp(g) > sup.Supp(hi) {
			hi = g
		}
		if sup.Supp(g) < sup.Supp(lo) {
			lo = g
		}
	}
	return hi, lo
}

// supportMemo caches itemset supports over the full dataset, shared by the
// CLT redundancy rule and the meaningfulness filters. It is safe for
// concurrent use (parallel level mining recomputes at worst).
type supportMemo struct {
	d  *dataset.Dataset
	mu sync.Mutex
	// cache maps itemset keys to their supports; values are deterministic
	// functions of the key, so racing writers are harmless.
	cache map[string]pattern.Supports
}

func newSupportMemo(d *dataset.Dataset) *supportMemo {
	return &supportMemo{d: d, cache: make(map[string]pattern.Supports)}
}

func (m *supportMemo) supports(set pattern.Itemset) pattern.Supports {
	key := set.Key()
	m.mu.Lock()
	s, ok := m.cache[key]
	m.mu.Unlock()
	if ok {
		return s
	}
	s = pattern.SupportsOf(set, m.d.All())
	m.mu.Lock()
	m.cache[key] = s
	m.mu.Unlock()
	return s
}
