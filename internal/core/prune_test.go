package core

import (
	"testing"

	"sdadcs/internal/dataset"
	"sdadcs/internal/pattern"
)

func TestPruneTableSubsetLookup(t *testing.T) {
	table := make(pruneTable)
	a := pattern.CatItem(0, 1)
	b := pattern.RangeItem(2, 0, 5)
	c := pattern.CatItem(4, 0)
	table[pattern.NewItemset(a).Key()] = struct{}{}

	if !table.hasPrunedSubset(pattern.NewItemset(a, b)) {
		t.Error("superset of a pruned itemset must be pruned")
	}
	if !table.hasPrunedSubset(pattern.NewItemset(a, b, c)) {
		t.Error("3-item superset must be pruned")
	}
	if table.hasPrunedSubset(pattern.NewItemset(b, c)) {
		t.Error("unrelated itemset must not be pruned")
	}
	// Range keys are exact: a different range on the same attribute is a
	// different item.
	if table.hasPrunedSubset(pattern.NewItemset(pattern.CatItem(0, 2), b)) {
		t.Error("different value on same attribute must not match")
	}
	if table.hasPrunedSubset(pattern.NewItemset()) {
		t.Error("empty itemset must not be pruned")
	}
	if (pruneTable{}).hasPrunedSubset(pattern.NewItemset(a)) {
		t.Error("empty table must not prune")
	}
}

func prunableDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	n := 400
	x := make([]float64, n)
	g := make([]string, n)
	for i := range x {
		x[i] = float64(i)
		if i < 200 {
			g[i] = "A"
		} else {
			g[i] = "B"
		}
	}
	return dataset.NewBuilder("p").AddContinuous("x", x).SetGroups(g).MustBuild()
}

func TestEvaluatePruningMinDeviation(t *testing.T) {
	d := prunableDataset(t)
	memo := newSupportMemo(d)
	set := pattern.NewItemset(pattern.RangeItem(0, 0, 10))
	sup := pattern.SupportsOf(set, d.All()) // ~5% support in A only
	dec := evaluatePruning(AllPruning(), set, sup, 0.1, 0.05, d.Rows(), memo.supports, nil, nil, 1, 0)
	if !dec.skipChildren || !dec.skipContrast || !dec.record {
		t.Errorf("low-support space should fully prune: %+v", dec)
	}
}

func TestEvaluatePruningPureSpace(t *testing.T) {
	d := prunableDataset(t)
	memo := newSupportMemo(d)
	set := pattern.NewItemset(pattern.RangeItem(0, -1, 150))
	sup := pattern.SupportsOf(set, d.All()) // 150 A rows, 0 B rows: pure
	if sup.PR() != 1 {
		t.Fatalf("setup: PR = %v", sup.PR())
	}
	dec := evaluatePruning(AllPruning(), set, sup, 0.1, 0.05, d.Rows(), memo.supports, nil, nil, 1, 0)
	if !dec.skipChildren {
		t.Error("pure space must not be extended")
	}
	if dec.skipContrast {
		t.Error("pure space is still a valid contrast itself")
	}
	if !dec.record {
		t.Error("pure space must be recorded in the lookup table")
	}
}

func TestEvaluatePruningDisabled(t *testing.T) {
	d := prunableDataset(t)
	memo := newSupportMemo(d)
	set := pattern.NewItemset(pattern.RangeItem(0, 0, 10))
	sup := pattern.SupportsOf(set, d.All())
	dec := evaluatePruning(Pruning{}, set, sup, 0.1, 0.05, d.Rows(), memo.supports, nil, nil, 1, 0)
	if dec.skipChildren || dec.skipContrast || dec.record {
		t.Errorf("disabled pruning should pass everything: %+v", dec)
	}
}

func TestRedundantByCLTDetectsSubsumption(t *testing.T) {
	// pregnant ⊂ female: {female, pregnant} has identical supports to
	// {pregnant}, hence identical diff — within any CLT bound.
	d := femalePregnant(t)
	memo := newSupportMemo(d)
	set := pattern.NewItemset(item(d, "sex", "female"), item(d, "pregnant", "yes"))
	sup := memo.supports(set)
	det, redundant := redundantByCLT(set, sup, 0.05, memo.supports)
	if !redundant {
		t.Error("functionally dependent itemset should be CLT-redundant")
	}
	if det.subsetKey == "" {
		t.Error("redundancy detail must name the subsuming subset")
	}
}

func TestRedundantByCLTKeepsRealRefinement(t *testing.T) {
	// A genuine refinement: restricting the range sharply changes the
	// difference relative to both one-item subsets.
	d := datagen2x(t)
	memo := newSupportMemo(d)
	set := pattern.NewItemset(
		pattern.RangeItem(0, -1, 0.5),
		pattern.RangeItem(1, -1, 0.5),
	)
	sup := memo.supports(set)
	if _, redundant := redundantByCLT(set, sup, 0.05, memo.supports); redundant {
		t.Error("an interacting refinement should not be flagged redundant")
	}
}

// datagen2x builds a small XOR dataset inline (avoiding an import cycle on
// the datagen test helpers).
func datagen2x(t *testing.T) *dataset.Dataset {
	t.Helper()
	n := 2000
	x := make([]float64, n)
	y := make([]float64, n)
	g := make([]string, n)
	// A 50×40 uniform grid so both attributes span (0, 1) independently.
	for i := range x {
		x[i] = float64(i%50) / 50
		y[i] = float64((i/50)%40) / 40
		if (x[i] < 0.5) == (y[i] < 0.5) {
			g[i] = "G1"
		} else {
			g[i] = "G2"
		}
	}
	return dataset.NewBuilder("xor").
		AddContinuous("x", x).
		AddContinuous("y", y).
		SetGroups(g).
		MustBuild()
}

func TestSupportMemoCaches(t *testing.T) {
	d := prunableDataset(t)
	memo := newSupportMemo(d)
	set := pattern.NewItemset(pattern.RangeItem(0, 0, 100))
	a := memo.supports(set)
	b := memo.supports(set)
	for g := range a.Count {
		if a.Count[g] != b.Count[g] {
			t.Error("memo returned inconsistent supports")
		}
	}
	if len(memo.cache) != 1 {
		t.Errorf("cache size = %d, want 1", len(memo.cache))
	}
}
