package core

import (
	"math"
	"testing"

	"sdadcs/internal/datagen"
	"sdadcs/internal/pattern"
	"sdadcs/internal/stucco"
)

func TestJointDiscretize1D(t *testing.T) {
	d := datagen.Figure2(1, 2000)
	boxes := JointDiscretize(d, []int{0}, pattern.NewItemset(),
		Config{Measure: pattern.SurprisingMeasure})
	if len(boxes) == 0 {
		t.Fatal("no boxes")
	}
	// Every box constrains exactly the requested attribute.
	for _, b := range boxes {
		if b.Set.Len() != 1 {
			t.Errorf("box %s has %d items, want 1", b.Set.Key(), b.Set.Len())
		}
		if _, ok := b.Set.ItemOn(0); !ok {
			t.Error("box does not constrain attribute 0")
		}
	}
}

func TestJointDiscretize2D(t *testing.T) {
	d := datagen.Simulated2(2, 3000)
	boxes := JointDiscretize(d, []int{0, 1}, pattern.NewItemset(),
		Config{Measure: pattern.SurprisingMeasure})
	if len(boxes) == 0 {
		t.Fatal("no boxes on XOR data")
	}
	for _, b := range boxes {
		if b.Set.Len() != 2 {
			t.Errorf("box %s should constrain both attributes", b.Set.Key())
		}
	}
}

func TestJointDiscretizeWithContext(t *testing.T) {
	d := datagen.Adult(datagen.AdultConfig{Seed: 3, Bachelors: 2000, Doctorate: 300})
	occ := d.AttrIndex("occupation")
	profCode := -1
	for c, v := range d.Domain(occ) {
		if v == "Prof-specialty" {
			profCode = c
		}
	}
	ctx := pattern.NewItemset(pattern.CatItem(occ, profCode))
	boxes := JointDiscretize(d, []int{d.AttrIndex("age")}, ctx, Config{})
	for _, b := range boxes {
		if _, ok := b.Set.ItemOn(occ); !ok {
			t.Error("context item missing from box")
		}
	}
}

func TestJointDiscretizePanicsOnCategorical(t *testing.T) {
	d := datagen.Adult(datagen.AdultConfig{Seed: 4, Bachelors: 200, Doctorate: 50})
	defer func() {
		if recover() == nil {
			t.Error("expected panic for categorical attribute")
		}
	}()
	JointDiscretize(d, []int{d.AttrIndex("occupation")}, pattern.NewItemset(), Config{})
}

func TestCutPoints(t *testing.T) {
	cs := []pattern.Contrast{
		{Set: pattern.NewItemset(pattern.RangeItem(0, math.Inf(-1), 5))},
		{Set: pattern.NewItemset(pattern.RangeItem(0, 5, 10), pattern.RangeItem(2, 1, 2))},
		{Set: pattern.NewItemset(pattern.CatItem(1, 0))},
	}
	cuts := CutPoints(cs)
	if got := cuts[0]; len(got) != 2 || got[0] != 5 || got[1] != 10 {
		t.Errorf("cuts[0] = %v, want [5 10]", got)
	}
	if got := cuts[2]; len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("cuts[2] = %v, want [1 2]", got)
	}
	if _, ok := cuts[1]; ok {
		t.Error("categorical attribute should have no cuts")
	}
}

func TestMineWithBinsPipeline(t *testing.T) {
	d := datagen.Simulated1(5, 2000)
	cs, binned := MineWithBins(d, []int{0, 1}, Config{}, stucco.Config{MaxDepth: 1})
	if binned == nil {
		t.Fatal("no binned dataset")
	}
	if len(cs) == 0 {
		t.Fatal("pipeline found no contrasts on separable data")
	}
	if cs[0].Score < 0.8 {
		t.Errorf("top score = %v, want high", cs[0].Score)
	}
}

func TestSortFloats(t *testing.T) {
	v := []float64{3, 1, 2, -5, 0}
	sortFloats(v)
	for i := 1; i < len(v); i++ {
		if v[i] < v[i-1] {
			t.Fatalf("not sorted: %v", v)
		}
	}
}
