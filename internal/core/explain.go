package core

import (
	"fmt"
	"strings"

	"sdadcs/internal/dataset"
	"sdadcs/internal/pattern"
	"sdadcs/internal/trace"
)

// Explanation is the provenance answer to "why is this pattern in (or
// missing from) the result": the exact decision chain the miner recorded
// about the pattern, plus a one-line verdict distilled from it. Built by
// Explain from a Result.Trace; rendered by Format.
type Explanation struct {
	// Key is the queried pattern's canonical key.
	Key string
	// Set is the queried itemset.
	Set pattern.Itemset
	// Verdict summarizes the chain: "emitted", "filtered (…)",
	// "pruned (…)", "evicted from top-k", "rejected by top-k",
	// "discarded (tentative)", "evaluated, no contrast",
	// "subsumed (pruned subset)" or "unseen".
	Verdict string
	// Events is the decision chain recorded for the pattern itself, in
	// sequence order.
	Events []trace.Event
	// Subset holds prune events of proper subsets when the pattern itself
	// generated no events — the lookup-table provenance for spaces that
	// were never even enumerated because an ancestor was cut.
	Subset []trace.Event
}

// Explain reconstructs the decision chain for one itemset from a mining
// trace. The verdict is distilled with the pipeline's own precedence: the
// meaningfulness filter is the last word, then top-k membership, then the
// pruning rules, then the emission state. When the pattern never generated
// an event, its proper subsets' prune events are consulted (a pruned
// subset cuts the whole combination space, §4.1), and failing that the
// pattern is reported "unseen".
func Explain(tr *trace.Trace, set pattern.Itemset) Explanation {
	x := Explanation{Key: set.Key(), Set: set}
	ix := trace.NewIndex(tr)
	x.Events = ix.Events(x.Key)
	if len(x.Events) == 0 {
		x.Subset = subsetPrunes(ix, set)
		if len(x.Subset) > 0 {
			x.Verdict = "subsumed (pruned subset)"
		} else {
			x.Verdict = "unseen"
		}
		return x
	}

	var lastPrune, lastTopK, lastFilter *trace.Event
	sawEmit, sawEval, inList := false, false, false
	for i := range x.Events {
		e := &x.Events[i]
		switch e.Kind {
		case trace.KindNode, trace.KindSpace:
			sawEval = true
		case trace.KindPrune:
			lastPrune = e
		case trace.KindEmit:
			sawEmit = true
		case trace.KindTopK:
			lastTopK = e
			switch e.Arg {
			case "admitted", "replaced":
				inList = true
			case "evicted":
				inList = false
			}
		case trace.KindFilter:
			lastFilter = e
		}
	}
	switch {
	case lastFilter != nil && lastFilter.Arg == "kept":
		x.Verdict = "emitted"
	case lastFilter != nil:
		verdict, _ := splitArg(lastFilter.Arg)
		x.Verdict = "filtered (" + verdict + ")"
	case inList:
		x.Verdict = "emitted" // no filter ran (NP / SkipMeaningfulFilter)
	case lastTopK != nil && lastTopK.Arg == "evicted":
		x.Verdict = "evicted from top-k"
	case lastTopK != nil && lastTopK.Arg == "rejected":
		x.Verdict = "rejected by top-k"
	case lastPrune != nil:
		rule, _ := splitArg(lastPrune.Arg)
		x.Verdict = "pruned (" + rule + ")"
	case sawEmit:
		x.Verdict = "discarded (tentative)"
	case sawEval:
		x.Verdict = "evaluated, no contrast"
	default:
		x.Verdict = "unseen"
	}
	return x
}

// subsetPrunes collects prune events recorded against proper non-empty
// subsets of the itemset. Itemsets are at most MaxDepth items, so the 2^n
// enumeration is tiny.
func subsetPrunes(ix *trace.Index, set pattern.Itemset) []trace.Event {
	items := set.Items()
	n := len(items)
	var out []trace.Event
	for mask := 1; mask < 1<<uint(n)-1; mask++ {
		var sub []pattern.Item
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				sub = append(sub, items[i])
			}
		}
		for _, e := range ix.Events(pattern.NewItemset(sub...).Key()) {
			if e.Kind == trace.KindPrune {
				out = append(out, e)
			}
		}
	}
	return out
}

// Format renders the explanation as deterministic text: no timestamps, no
// sequence numbers, events in decision order — the shape the golden tests
// pin and `cmd/contrast -explain` prints. d renders itemset keys as
// human-readable patterns (pass nil to print raw keys).
func (x Explanation) Format(d *dataset.Dataset) string {
	var b strings.Builder
	fmt.Fprintf(&b, "pattern: %s\n", renderKey(d, x.Key))
	fmt.Fprintf(&b, "verdict: %s\n", x.Verdict)
	if len(x.Events) > 0 {
		b.WriteString("decisions:\n")
		for i := range x.Events {
			fmt.Fprintf(&b, "  - %s\n", renderEvent(d, &x.Events[i]))
		}
	}
	if len(x.Subset) > 0 {
		b.WriteString("subset decisions:\n")
		for i := range x.Subset {
			fmt.Fprintf(&b, "  - %s: %s\n",
				renderKey(d, x.Subset[i].Key), renderEvent(d, &x.Subset[i]))
		}
	}
	return b.String()
}

// renderKey formats a canonical key as a readable pattern when a dataset
// is available, falling back to the raw key.
func renderKey(d *dataset.Dataset, key string) string {
	if key == "" {
		return "(empty pattern)"
	}
	if d == nil {
		return key
	}
	set, err := pattern.ParseKey(key)
	if err != nil {
		return key
	}
	return set.Format(d)
}

// renderEvent formats one decision without its timestamp or sequence
// number (they are nondeterministic across runs; everything else is stable
// for a single-worker mine).
func renderEvent(d *dataset.Dataset, e *trace.Event) string {
	switch e.Kind {
	case trace.KindNode:
		return fmt.Sprintf("level %d: evaluated (%v rows, group counts %v)",
			e.Level, e.V1, e.GroupCounts())
	case trace.KindSpace:
		return fmt.Sprintf("depth %d: space evaluated (%v rows, group counts %v)",
			e.Level, e.V1, e.GroupCounts())
	case trace.KindPrune:
		rule, detail := splitArg(e.Arg)
		s := fmt.Sprintf("level %d: cut by %s (observed %v vs bound %v)",
			e.Level, rule, e.V1, e.V2)
		if detail != "" {
			s += " via subset " + renderKey(d, detail)
		}
		return s
	case trace.KindSplit:
		return fmt.Sprintf("depth %d: split %s at median %v within (%v, %v]",
			e.Level, e.Arg, e.V1, e.V2, e.V3)
	case trace.KindMerge:
		return fmt.Sprintf("merge %s (similarity p %v, merged diff %v)",
			e.Arg, e.V1, e.V2)
	case trace.KindEmit:
		return fmt.Sprintf("level %d: emitted as contrast (score %v, chi2 %v, p %v)",
			e.Level, e.V1, e.V2, e.V3)
	case trace.KindTopK:
		if e.Arg == "rejected" {
			return fmt.Sprintf("top-k rejected (score %v vs threshold %v)", e.V2, e.V1)
		}
		return fmt.Sprintf("top-k %s (threshold %v -> %v)", e.Arg, e.V1, e.V2)
	case trace.KindFilter:
		verdict, detail := splitArg(e.Arg)
		s := fmt.Sprintf("meaningfulness filter: %s (score %v)", verdict, e.V1)
		if detail != "" {
			s += " explained by " + renderKey(d, detail)
		}
		return s
	case trace.KindSDAD:
		return fmt.Sprintf("sdad-cs invoked over %v rows", e.V1)
	default:
		return fmt.Sprintf("%s %s (%v, %v, %v)", e.Kind, e.Arg, e.V1, e.V2, e.V3)
	}
}

// splitArg splits a composite "label:key" argument at its first colon.
func splitArg(arg string) (label, detail string) {
	if i := strings.IndexByte(arg, ':'); i >= 0 {
		return arg[:i], arg[i+1:]
	}
	return arg, ""
}
