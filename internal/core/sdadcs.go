package core

import (
	"context"
	"math"
	"sort"
	"time"

	"sdadcs/internal/dataset"
	"sdadcs/internal/metrics"
	"sdadcs/internal/pattern"
	"sdadcs/internal/stats"
	"sdadcs/internal/trace"
)

// sdadRun holds the state of one SDAD-CS invocation (Algorithm 1): a fixed
// categorical context catSet, the continuous attributes being jointly
// discretized, and the thresholds in force.
type sdadRun struct {
	// ctx is the mining context. A joint discretization can recurse and
	// merge long after the per-level check in miner.go has passed, so
	// cancellation is re-checked per split round (explore) and per merge
	// round (merge); nil means "never cancelled".
	ctx       context.Context
	d         *dataset.Dataset
	cfg       *Config
	prune     Pruning
	contAttrs []int
	alpha     float64 // Bonferroni-adjusted level α
	threshold float64 // current top-k minimum support (interest measure)
	memo      *supportMemo
	table     pruneTable // read-only during the run
	stats     Stats
	inserts   []string // lookup-table keys produced by this run
	alive     bool     // at least one space survived pruning
	sizes     []int
	totalRows int
	// rec is the optional instrumentation sink (nil = disabled); shared
	// across concurrent runs, so only atomic operations.
	rec *metrics.Recorder
	// tr is the optional decision-event sink (nil = disabled); worker is
	// the per-level goroutine index trace events are attributed to.
	tr     *trace.Tracer
	worker int
}

// run executes Algorithm 1 for the given categorical context and returns
// the contrast spaces found (after bottom-up merging).
func (r *sdadRun) run(catSet pattern.Itemset, catCover dataset.View) []pattern.Contrast {
	r.stats.SDADCalls++
	r.rec.SDADCall()
	var startTS int64
	var start time.Time
	if r.tr.Enabled() {
		startTS = r.tr.Now()
		start = time.Now()
	}
	d := r.explore(catCover, catSet, 1, 0)
	d = r.merge(d)
	if r.tr.Enabled() {
		r.tr.SDAD(startTS, r.worker, catSet.Key(), catCover.Len(), time.Since(start))
	}
	return d
}

// explore is the recursive top-down part: partition every continuous
// attribute at its median within the current space, form all 2^|ca| boxes
// (find_combs), and for each box decide — via the optimistic estimate —
// whether to recurse, to record a contrast, or to stop.
func (r *sdadRun) explore(view dataset.View, box pattern.Itemset, level int, parentMeasure float64) []pattern.Contrast {
	if level > r.cfg.MaxRecursion || view.Len() < 2 || r.cancelled() {
		return nil
	}

	// partition(ca): split each attribute at the view's median, within the
	// box's current range.
	choices := make([][]pattern.Interval, 0, len(r.contAttrs))
	splits := 0
	for _, attr := range r.contAttrs {
		cur := currentRange(box, attr)
		med := view.Median(attr)
		_, hi := view.MinMax(attr)
		if med > cur.Lo && med < hi && med < cur.Hi {
			choices = append(choices, []pattern.Interval{
				{Lo: cur.Lo, Hi: med},
				{Lo: med, Hi: cur.Hi},
			})
			splits++
			if r.tr.Enabled() {
				r.tr.Split(level, r.worker, box.Key(), r.d.Attr(attr).Name,
					med, cur.Lo, cur.Hi)
			}
		} else {
			choices = append(choices, []pattern.Interval{cur})
		}
	}
	if splits == 0 {
		return nil
	}
	r.rec.Splits(splits)

	// Assign every view row to its space in a single pass: the interval
	// choices partition each attribute's current range, so each row lands
	// in exactly one space. This replaces 2^|ca| per-space scans.
	//
	// The assignment uses the same (Lo, Hi] half-open convention as the
	// recorded RangeItems, View.FilterRange and pattern.SupportsOf: a row
	// belongs to the low child of a split at m iff Lo < v <= m and to the
	// high child iff m < v <= Hi. Rows outside the box's current range on
	// any attribute — values tied exactly at the box's Lo, or beyond its
	// Hi, which a caller-supplied view may contain — belong to no space,
	// exactly as re-counting the recorded box would exclude them.
	totalSpaces := 1
	for _, ch := range choices {
		totalSpaces *= len(ch)
	}
	r.rec.BoxesExplored(totalSpaces)
	spaceRows := make([][]int, totalSpaces)
	n := view.Len()
	for i := 0; i < n; i++ {
		row := view.Row(i)
		linear := 0
		mult := 1
		skip := false
		for k, attr := range r.contAttrs {
			ch := choices[k]
			v := r.d.Cont(attr, row)
			if v != v { // NaN: a missing reading belongs to no bin
				skip = true
				break
			}
			if v <= ch[0].Lo || v > ch[len(ch)-1].Hi {
				skip = true // outside the box under (Lo, Hi] semantics
				break
			}
			choice := 0
			if len(ch) == 2 && v > ch[0].Hi {
				choice = 1
			}
			linear += choice * mult
			mult *= len(ch)
		}
		if skip {
			continue
		}
		spaceRows[linear] = append(spaceRows[linear], row)
	}

	var contrasts, tentative []pattern.Contrast // D and Dtemp
	// find_combs(p): iterate the cartesian product of interval choices.
	idx := make([]int, len(choices))
	for linear := 0; ; linear++ {
		r.exploreSpace(box, choices, idx, spaceRows[linear], level, parentMeasure, &contrasts, &tentative)
		// Advance the odometer (idx[0] fastest, matching the linear index).
		i := 0
		for ; i < len(idx); i++ {
			idx[i]++
			if idx[i] < len(choices[i]) {
				break
			}
			idx[i] = 0
		}
		if i == len(idx) {
			break
		}
	}

	// Lines 22–25: tentative contrasts (not better than their parent) are
	// kept only if some space of this call did improve.
	if len(contrasts) > 0 {
		return append(contrasts, tentative...)
	}
	return nil
}

// exploreSpace processes one box of the current partition; rows holds the
// dataset row indices pre-assigned to this space.
func (r *sdadRun) exploreSpace(box pattern.Itemset,
	choices [][]pattern.Interval, idx []int, rows []int, level int, parentMeasure float64,
	contrasts, tentative *[]pattern.Contrast) {

	childBox := box
	for i, attr := range r.contAttrs {
		iv := choices[i][idx[i]]
		childBox = childBox.With(pattern.RangeItem(attr, iv.Lo, iv.Hi))
	}
	if childBox.Equal(box) {
		return // no attribute refined: same space as the parent
	}

	// Lookup-table check (Line 7).
	if r.prune.LookupTable {
		if subKey, hit := r.table.prunedSubset(childBox); hit {
			r.rec.PruneHit(metrics.PruneLookupTable)
			if r.tr.Enabled() {
				r.tr.Prune(level, r.worker, childBox.Key(),
					metrics.PruneLookupTable.String()+":"+subKey, 0, 0)
			}
			r.stats.SpacesPruned++
			return
		}
	}

	// Count supports in the space (Line 10).
	sub := r.d.Restrict(rows)
	r.stats.PartitionsEvaluated++
	counts := sub.GroupCounts()
	sup := pattern.CountsToSupports(counts, r.sizes)
	score := r.cfg.Measure.Eval(sup)
	if r.tr.Enabled() {
		r.tr.Space(level, r.worker, childBox.Key(), sub.Len(), counts)
	}

	// Pruning rules (§4.3).
	dec := evaluatePruning(r.prune, childBox, sup, r.cfg.Delta, r.alpha,
		r.totalRows, r.memo.supports, r.rec, r.tr, level, r.worker)
	if dec.record && r.prune.LookupTable {
		r.inserts = append(r.inserts, childBox.Key())
	}
	if dec.skipContrast && dec.skipChildren {
		r.stats.SpacesPruned++
		return
	}
	r.alive = true

	// Decide whether to explore further (Lines 12–13): recurse while the
	// optimistic estimate exceeds the current minimum support.
	explored := false
	if !dec.skipChildren {
		oe := optimisticEstimate(sup, sub.Len(), len(r.contAttrs), r.cfg.OEMode, r.cfg.Measure)
		if oe > r.threshold {
			child := r.explore(sub, childBox, level+1, score)
			if len(child) > 0 {
				*contrasts = append(*contrasts, child...)
				explored = true
			}
		} else {
			r.rec.PruneHit(metrics.PruneOptimisticEstimate)
			if r.tr.Enabled() {
				r.tr.Prune(level, r.worker, childBox.Key(),
					metrics.PruneOptimisticEstimate.String(), oe, r.threshold)
			}
		}
	}
	if dec.skipContrast || (explored && !r.cfg.RecordExploredSpaces) {
		if explored && r.tr.Enabled() {
			// Algorithm 1 keeps the refined children, not the coarse parent.
			r.tr.Prune(level, r.worker, childBox.Key(), "superseded_by_children",
				score, parentMeasure)
		}
		return
	}

	// Lines 17–21: record the space when it is large and significant —
	// immediately if it improves on its parent, tentatively otherwise.
	if sup.MaxDiff() <= r.cfg.Delta {
		if r.tr.Enabled() {
			r.tr.Prune(level, r.worker, childBox.Key(), "not_large",
				sup.MaxDiff(), r.cfg.Delta)
		}
		return
	}
	test, err := stats.ChiSquare2xK(sup.Count, r.sizes)
	// NaN-safe gate: only a definite P < α admits; an error or a NaN
	// P-value (degenerate table, tiny sample) must read as "not
	// significant", never as pass.
	if err != nil || !(test.P < r.alpha) {
		if r.tr.Enabled() {
			r.tr.Prune(level, r.worker, childBox.Key(), "not_significant",
				test.P, r.alpha)
		}
		return
	}
	if r.tr.Enabled() {
		r.tr.Emit(level, r.worker, childBox.Key(), score, test.Statistic, test.P, counts)
	}
	c := pattern.Contrast{
		Set:      childBox,
		Supports: sup,
		Score:    score,
		ChiSq:    test.Statistic,
		P:        test.P,
	}
	if score > parentMeasure {
		*contrasts = append(*contrasts, c)
	} else {
		*tentative = append(*tentative, c)
	}
}

// cancelled reports whether the run's context has been cancelled; a nil
// context never is.
func (r *sdadRun) cancelled() bool {
	return r.ctx != nil && r.ctx.Err() != nil
}

// currentRange returns the box's interval on attr, or the full range.
func currentRange(box pattern.Itemset, attr int) pattern.Interval {
	if it, ok := box.ItemOn(attr); ok {
		return it.Range
	}
	return pattern.FullRange()
}

// merge is the bottom-up part (Lines 26–30): repeatedly combine contiguous
// spaces — smallest hyper-volume first — whose group distributions are
// statistically similar, as long as the merged contrast stays large and
// significant.
//
// The scan repeatedly takes the first mergeable pair in volume order.
// tryMerge is a pure function of the two contrasts, so a pair that failed
// once fails forever: failures are memoized and the rescan after a merge
// re-examines only pairs involving the new union (everything else is a map
// hit). The union is spliced into the volume order directly instead of
// re-sorting the whole list. This replaces the former
// re-sort-and-recompute-all-pairs restart, which made merge-heavy windows
// O(n³) chi-square evaluations; the visit order — and therefore the result
// — is unchanged.
func (r *sdadRun) merge(d []pattern.Contrast) []pattern.Contrast {
	if len(d) < 2 {
		return d
	}
	// Deduplicate by key (Dtemp flushing can duplicate across levels).
	seen := map[string]bool{}
	spaces := d[:0:0]
	for _, c := range d {
		if !seen[c.Set.Key()] {
			seen[c.Set.Key()] = true
			spaces = append(spaces, c)
		}
	}
	sortByVolume(spaces)

	type pairKey struct{ a, b string }
	failed := make(map[pairKey]struct{})
	for {
		if r.cancelled() {
			// A merge-heavy window can spend quadratic work per round; a
			// cancelled job returns the spaces merged so far instead of
			// finishing the rescan.
			return spaces
		}
		merged := false
	outer:
		for i := 0; i < len(spaces); i++ {
			for j := i + 1; j < len(spaces); j++ {
				key := pairKey{spaces[i].Set.Key(), spaces[j].Set.Key()}
				if _, done := failed[key]; done {
					continue
				}
				r.rec.MergeAttempt()
				u, ok := r.tryMerge(spaces[i], spaces[j])
				if !ok {
					failed[key] = struct{}{}
					continue
				}
				r.stats.MergeOps++
				r.rec.MergeOp()
				// Replace the pair with the union, splicing it into the
				// existing volume order (j > i, so remove j first).
				spaces = append(spaces[:j], spaces[j+1:]...)
				spaces = append(spaces[:i], spaces[i+1:]...)
				spaces = insertByVolume(spaces, u)
				merged = true
				break outer
			}
		}
		if !merged {
			return spaces
		}
	}
}

// insertByVolume inserts c into a volume-sorted slice at its ordered
// position (the same total order sortByVolume establishes).
func insertByVolume(cs []pattern.Contrast, c pattern.Contrast) []pattern.Contrast {
	pos := sort.Search(len(cs), func(i int) bool { return volumeLess(c, cs[i]) })
	cs = append(cs, pattern.Contrast{})
	copy(cs[pos+1:], cs[pos:])
	cs[pos] = c
	return cs
}

// tryMerge combines two contrast spaces when they are contiguous on
// exactly one continuous attribute (identical elsewhere), their group
// distributions pass the chi-square similarity test at α, and the union is
// still a large, significant contrast.
func (r *sdadRun) tryMerge(a, b pattern.Contrast) (pattern.Contrast, bool) {
	attr, union, ok := contiguousOn(a.Set, b.Set)
	if !ok {
		return pattern.Contrast{}, false
	}
	merged := a.Set.With(pattern.RangeItem(attr, union.Lo, union.Hi))
	// Similarity: the two spaces must not differ significantly in their
	// group composition.
	table := [][]float64{{}, {}}
	for g := range a.Supports.Count {
		table[0] = append(table[0], float64(a.Supports.Count[g]))
		table[1] = append(table[1], float64(b.Supports.Count[g]))
	}
	simP := 1.0
	if res, err := stats.ChiSquareTable(table); err == nil {
		simP = res.P
	}
	if simP < r.alpha {
		if r.tr.Enabled() {
			r.tr.Merge(r.worker, merged.Key(), "reject_similarity", simP, 0)
		}
		return pattern.Contrast{}, false // significantly different: keep split
	}

	counts := make([]int, len(a.Supports.Count))
	for g := range counts {
		counts[g] = a.Supports.Count[g] + b.Supports.Count[g]
	}
	sup := pattern.CountsToSupports(counts, r.sizes)
	if sup.MaxDiff() <= r.cfg.Delta {
		if r.tr.Enabled() {
			r.tr.Merge(r.worker, merged.Key(), "reject_largeness", simP, sup.MaxDiff())
		}
		return pattern.Contrast{}, false
	}
	test, err := stats.ChiSquare2xK(sup.Count, r.sizes)
	// NaN-safe: a NaN P-value must not let a merge through.
	if err != nil || !(test.P < r.alpha) {
		if r.tr.Enabled() {
			r.tr.Merge(r.worker, merged.Key(), "reject_significance", simP, sup.MaxDiff())
		}
		return pattern.Contrast{}, false
	}
	if r.tr.Enabled() {
		r.tr.Merge(r.worker, merged.Key(), "merged", simP, sup.MaxDiff())
	}
	return pattern.Contrast{
		Set:      merged,
		Supports: sup,
		Score:    r.cfg.Measure.Eval(sup),
		ChiSq:    test.Statistic,
		P:        test.P,
	}, true
}

// contiguousOn reports whether two boxes differ on exactly one continuous
// attribute with contiguous ranges (identical items elsewhere), returning
// that attribute and the union interval.
func contiguousOn(a, b pattern.Itemset) (attr int, union pattern.Interval, ok bool) {
	if a.Len() != b.Len() {
		return 0, pattern.Interval{}, false
	}
	attr = -1
	for i := 0; i < a.Len(); i++ {
		ia, ib := a.Item(i), b.Item(i)
		if ia.Equal(ib) {
			continue
		}
		if ia.Attr != ib.Attr || ia.Kind != dataset.Continuous || ib.Kind != dataset.Continuous {
			return 0, pattern.Interval{}, false
		}
		if attr != -1 {
			return 0, pattern.Interval{}, false // differ on two attributes
		}
		u, contiguous := ia.Range.Union(ib.Range)
		if !contiguous {
			return 0, pattern.Interval{}, false
		}
		attr, union = ia.Attr, u
	}
	if attr == -1 {
		return 0, pattern.Interval{}, false // identical boxes
	}
	return attr, union, true
}

// sortByVolume orders contrasts by ascending hyper-volume (unbounded
// ranges last), breaking ties by key for determinism.
func sortByVolume(cs []pattern.Contrast) {
	sort.Slice(cs, func(i, j int) bool { return volumeLess(cs[i], cs[j]) })
}

// volumeLess is the total order sortByVolume and insertByVolume share:
// ascending hyper-volume, unbounded ranges last, ties broken by key.
func volumeLess(a, b pattern.Contrast) bool {
	va, vb := a.Set.Volume(), b.Set.Volume()
	if va != vb {
		if math.IsInf(va, 1) {
			return false
		}
		if math.IsInf(vb, 1) {
			return true
		}
		return va < vb
	}
	return a.Set.Key() < b.Set.Key()
}
