package core

import (
	"sdadcs/internal/pattern"
)

// optimisticEstimate bounds the interest measure achievable in any child
// space of a space with the given per-group supports (Eq. 5–11).
//
// spaceRows is the number of rows in the current space; numCont the number
// of continuous attributes being split. The returned bound is valid for
// the support-difference measure and, because PR ≤ 1, equally for the
// Surprising Measure (§4.2). For the pure purity-ratio measure the bound
// is 1 for any non-pure space (a single-row child always has PR = 1), so
// OE-based recursion pruning degenerates to the pure-space rule.
func optimisticEstimate(sup pattern.Supports, spaceRows, numCont int, mode OEMode, measure pattern.Measure) float64 {
	if measure == pattern.PurityRatio {
		if pr := sup.PR(); pr >= 1 {
			return pr
		}
		return 1
	}

	maxInstChild := maxInstancesChild(spaceRows, numCont, mode)
	k := sup.Groups()
	maxSupp := make([]float64, k)
	minSupp := make([]float64, k)
	for g := 0; g < k; g++ {
		size := float64(sup.Size[g])
		if size == 0 {
			continue
		}
		// Eq. 7: a child cannot hold more of group g than it has rows,
		// nor more than the current space holds (support monotonicity).
		maxSupp[g] = float64(maxInstChild) / size
		if s := sup.Supp(g); s < maxSupp[g] {
			maxSupp[g] = s
		}
		// Eq. 8–10: if the child is full-size, at least
		// maxInstChild − (rows of other groups in the space) of its rows
		// are group g. The conservative mode drops this (a child may be
		// arbitrarily small, so its minimum support is 0).
		if mode == OEModePaper {
			other := spaceRows - sup.Count[g]
			minInst := maxInstChild - other
			if minInst > 0 {
				minSupp[g] = float64(minInst) / size
			}
		}
	}

	// Eq. 11: the best achievable difference over ordered group pairs.
	best := 0.0
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if i == j {
				continue
			}
			if d := maxSupp[i] - minSupp[j]; d > best {
				best = d
			}
		}
	}
	return best
}

// maxInstancesChild is Eq. 6: the largest number of rows a child space can
// hold after the next median split.
func maxInstancesChild(spaceRows, numCont int, mode OEMode) int {
	if mode == OEModeConservative || numCont < 1 {
		// A half-open (lo, med] / (med, hi] split can be arbitrarily
		// lopsided on tied data: with values {1,1,1,2} the low child holds
		// 3 of 4 rows, beating ceil(n/2) = 2. The only unconditional
		// guarantee is that a child is a *proper* sub-box of the space —
		// Algorithm 1 splits only when lo < med < hi, so each child
		// excludes at least one row. Hence the admissible bound is n − 1
		// (and n itself when the space cannot shrink further). Found by
		// the differential oracle: the previous ceil(n/2) bound let
		// ChiSquareOE prune children the reference miner kept.
		if spaceRows <= 1 {
			return spaceRows
		}
		return spaceRows - 1
	}
	// Paper mode: unique real values distribute evenly over the 2^|ca|
	// children.
	denom := 1 << uint(numCont)
	return (spaceRows + denom - 1) / denom
}
