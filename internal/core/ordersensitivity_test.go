package core

import (
	"context"
	"strings"
	"testing"

	"sdadcs/internal/dataset"
)

// orderDataset builds the minimal repro the differential oracle reduced
// seed 17 (constant-column shape) to: a categorical attribute with real
// contrast structure, a constant continuous column (never splittable), and
// a splittable continuous column — in the given attribute order.
func orderDataset(tb testing.TB, reversed bool) *dataset.Dataset {
	tb.Helper()
	const rows = 60
	cat := make([]string, rows)
	konst := make([]float64, rows)
	split := make([]float64, rows)
	groups := make([]string, rows)
	for i := 0; i < rows; i++ {
		konst[i] = 3.5
		if i%2 == 0 {
			groups[i] = "g0"
			cat[i] = "a"
			split[i] = 1
		} else {
			groups[i] = "g1"
			cat[i] = "b"
			split[i] = 5
		}
		// A little cross-structure so the cat×cont combination has a
		// contrast of its own.
		if i%5 == 0 {
			cat[i] = "a"
		}
	}
	b := dataset.NewBuilder("order-sensitivity")
	if reversed {
		b.AddContinuous("split", split).AddContinuous("konst", konst).AddCategorical("cat", cat)
	} else {
		b.AddCategorical("cat", cat).AddContinuous("konst", konst).AddContinuous("split", split)
	}
	return b.SetGroups(groups).MustBuild()
}

// TestLevelwiseColumnOrderSensitivity pins a behaviour the differential
// oracle's column-reorder battery discovered: the levelwise search extends
// a continuous combination only if its discretization split at least once,
// and candidate generation only appends attributes with HIGHER indices
// than the combination's last. A combination whose prefix (in column
// order) contains a dead continuous attribute is therefore unreachable:
// with {cat, konst, split}, the level-2 node {cat=?, konst} never splits
// (konst is constant), dies, and {cat, konst, split} is never enumerated —
// while the reversed column order reaches the same attribute set through
// the alive prefix {split} → {split, konst} → {split, konst, cat}.
//
// This is a property of the paper's levelwise candidate generation (the
// aliveness gate is Algorithm 1's "extend only if the discretization
// refined"), NOT a counting bug: the differential harness verifies both
// orderings against the exhaustive reference miner exactly
// (internal/oracle, CheckReorder documents the invariants that DO hold).
// If this test ever flips, the enumeration semantics changed and the
// oracle's expand() transliteration must change with it.
func TestLevelwiseColumnOrderSensitivity(t *testing.T) {
	mine := func(d *dataset.Dataset) map[string]bool {
		res, err := MineContext(context.Background(), d, Config{
			TopK:                 TopKUnbounded,
			Pruning:              &Pruning{},
			SkipMeaningfulFilter: true,
			Counting:             CountingSlice,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Render patterns by attribute name so the two orderings are
		// comparable: count how many distinct attributes each pattern
		// names.
		out := map[string]bool{}
		for _, c := range res.Contrasts {
			names := make([]string, 0, c.Set.Len())
			for _, it := range c.Set.Items() {
				names = append(names, d.Attr(it.Attr).Name)
			}
			out[strings.Join(names, "|")] = true
		}
		return out
	}

	base := mine(orderDataset(t, false))
	reversed := mine(orderDataset(t, true))

	// The three-attribute combination is reachable only when the dead
	// constant column is NOT on the prefix path.
	wantOnlyReversed := "split|konst|cat"
	if base[wantOnlyReversed] {
		t.Errorf("base order unexpectedly reached the 3-attribute combination %q — "+
			"the aliveness gate semantics changed; update internal/oracle.expand to match",
			wantOnlyReversed)
	}
	if !reversed[wantOnlyReversed] {
		t.Errorf("reversed order did not reach %q; pattern sets: base=%v reversed=%v",
			wantOnlyReversed, base, reversed)
	}

	// The semantics that must NOT differ: both orders find the pure
	// categorical contrast and the split-attribute contrast.
	for _, sig := range []string{"cat", "split"} {
		if !base[sig] {
			t.Errorf("base order missing %q contrast; got %v", sig, base)
		}
		if !reversed[sig] {
			t.Errorf("reversed order missing %q contrast; got %v", sig, reversed)
		}
	}
}
