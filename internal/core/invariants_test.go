package core

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"sdadcs/internal/dataset"
	"sdadcs/internal/pattern"
	"sdadcs/internal/stats"
)

// randomDataset builds a small mixed dataset with a planted shift of
// random strength, for miner invariant checks.
func randomDataset(seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	n := 300 + rng.Intn(500)
	x := make([]float64, n)
	y := make([]float64, n)
	c := make([]string, n)
	g := make([]string, n)
	shift := rng.Float64() * 2
	for i := range x {
		g1 := rng.Intn(2) == 0
		if g1 {
			g[i] = "G1"
			x[i] = rng.NormFloat64() + shift
		} else {
			g[i] = "G2"
			x[i] = rng.NormFloat64()
		}
		y[i] = rng.NormFloat64() // noise
		c[i] = "v" + strconv.Itoa(rng.Intn(3))
	}
	return dataset.NewBuilder("rand").
		AddContinuous("x", x).
		AddContinuous("y", y).
		AddCategorical("c", c).
		SetGroups(g).
		MustBuild()
}

// Property: every contrast Mine reports is large (MaxDiff > δ), carries a
// valid p-value below α, and its stored supports agree with a direct
// recount over the dataset.
func TestMineOutputInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		d := randomDataset(seed)
		cfg := Config{MaxDepth: 2, SkipMeaningfulFilter: true}
		cfg.defaults()
		res := Mine(d, cfg)
		for _, c := range res.Contrasts {
			if c.Supports.MaxDiff() <= cfg.Delta {
				t.Logf("seed %d: contrast %s not large (%v)", seed, c.Set.Key(), c.Supports.MaxDiff())
				return false
			}
			if !(c.P < cfg.Alpha) || c.P < 0 {
				t.Logf("seed %d: contrast %s p=%v", seed, c.Set.Key(), c.P)
				return false
			}
			direct := pattern.SupportsOf(c.Set, d.All())
			for g := range direct.Count {
				if direct.Count[g] != c.Supports.Count[g] {
					t.Logf("seed %d: contrast %s counts %v direct %v",
						seed, c.Set.Key(), c.Supports.Count, direct.Count)
					return false
				}
			}
			// The recorded chi-square must match a recomputation.
			test, err := stats.ChiSquare2xK(direct.Count, direct.Size)
			if err != nil {
				return false
			}
			if diff := test.Statistic - c.ChiSq; diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: the meaningfulness filter only removes patterns — the filtered
// result is a subset of the unfiltered one, in the same relative order.
func TestMineFilterIsSubsetProperty(t *testing.T) {
	f := func(seed int64) bool {
		d := randomDataset(seed)
		unfiltered := Mine(d, Config{MaxDepth: 2, SkipMeaningfulFilter: true})
		filtered := Mine(d, Config{MaxDepth: 2})
		keys := map[string]int{}
		for i, c := range unfiltered.Contrasts {
			keys[c.Set.Key()] = i
		}
		last := -1
		for _, c := range filtered.Contrasts {
			idx, ok := keys[c.Set.Key()]
			if !ok || idx < last {
				return false
			}
			last = idx
		}
		return len(filtered.Contrasts) <= len(unfiltered.Contrasts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: mining twice yields identical results (full determinism).
func TestMineDeterministicProperty(t *testing.T) {
	f := func(seed int64) bool {
		d := randomDataset(seed)
		a := Mine(d, Config{MaxDepth: 2})
		b := Mine(d, Config{MaxDepth: 2})
		if len(a.Contrasts) != len(b.Contrasts) {
			return false
		}
		for i := range a.Contrasts {
			if a.Contrasts[i].Set.Key() != b.Contrasts[i].Set.Key() ||
				a.Contrasts[i].Score != b.Contrasts[i].Score {
				return false
			}
		}
		return a.Stats == b.Stats
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Property: on pure-noise datasets (no planted shift), the miner with the
// Bonferroni schedule rarely reports anything.
func TestMineNoiseFalsePositives(t *testing.T) {
	found := 0
	const trials = 10
	for seed := int64(100); seed < 100+trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 400
		x := make([]float64, n)
		g := make([]string, n)
		for i := range x {
			x[i] = rng.Float64()
			g[i] = []string{"A", "B"}[rng.Intn(2)]
		}
		d := dataset.NewBuilder("pure-noise").
			AddContinuous("x", x).
			SetGroups(g).
			MustBuild()
		res := Mine(d, Config{MaxDepth: 1})
		found += len(res.Contrasts)
	}
	if found > 2 {
		t.Errorf("%d contrasts reported across %d pure-noise datasets", found, trials)
	}
}
