package core

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"sdadcs/internal/pattern"
)

// FieldError reports one invalid Config field. Validate wraps every
// violation it finds in a FieldError, so callers can errors.As for the
// field name (an HTTP layer turns them into 400 payloads).
type FieldError struct {
	// Field is the Config field name (e.g. "Delta").
	Field string
	// Value is the rejected value.
	Value any
	// Reason states what a valid value looks like.
	Reason string
}

// Error renders "config: Field = value: reason".
func (e *FieldError) Error() string {
	return fmt.Sprintf("config: %s = %v: %s", e.Field, e.Value, e.Reason)
}

// Validate checks a configuration for field values that defaults() would
// otherwise silently accept but that can only be caller mistakes. Zero
// values are never errors — the zero Config is documented as usable (every
// zero field maps to the paper's default) — so Validate rejects only
// actively malformed settings: negative thresholds and bounds, α outside
// (0, 1), NaN, and out-of-range enum values. All violations are collected
// and returned joined (errors.Join); each is a *FieldError.
//
// MineContext validates before mining and returns the error with an empty
// Result, so a malformed config is surfaced instead of silently "fixed".
func (c *Config) Validate() error {
	var errs []error
	bad := func(field string, value any, reason string) {
		errs = append(errs, &FieldError{Field: field, Value: value, Reason: reason})
	}
	if math.IsNaN(c.Alpha) || c.Alpha < 0 || c.Alpha >= 1 {
		bad("Alpha", c.Alpha, "significance level must lie in (0,1); 0 selects the default 0.05")
	}
	if math.IsNaN(c.Delta) || c.Delta < 0 || c.Delta >= 1 {
		bad("Delta", c.Delta, "minimum support difference must lie in [0,1); 0 selects the default 0.1")
	}
	if c.MaxDepth < 0 {
		bad("MaxDepth", c.MaxDepth, "attribute-combination depth must be >= 1; 0 selects the default 5")
	}
	if c.MaxRecursion < 0 {
		bad("MaxRecursion", c.MaxRecursion, "SDAD-CS recursion bound must be >= 1; 0 selects the default 8")
	}
	if c.TopK < 0 && c.TopK != TopKUnbounded {
		bad("TopK", c.TopK, "result bound must be >= 1; 0 selects the default 100, TopKUnbounded (-1) disables the bound")
	}
	if c.Workers < 0 {
		bad("Workers", c.Workers, "worker count must be >= 1; 0 selects the default 1")
	}
	if c.Measure < pattern.SupportDiff || c.Measure > pattern.MaxMeasure {
		bad("Measure", int(c.Measure), "unknown interest measure")
	}
	if c.OEMode != OEModePaper && c.OEMode != OEModeConservative {
		bad("OEMode", int(c.OEMode), "unknown optimistic-estimate mode")
	}
	if c.Counting < CountingAuto || c.Counting > CountingSlice {
		bad("Counting", int(c.Counting), "unknown counting engine")
	}
	for _, a := range c.Attrs {
		if a < 0 {
			bad("Attrs", a, "attribute indices must be >= 0")
			break
		}
	}
	return errors.Join(errs...)
}

// CanonicalKey serializes the result-affecting configuration fields in a
// fixed order, with defaults resolved, so that two configs producing the
// same mining result by construction share a key. Fields that provably do
// not change the result are excluded: Workers (per-level merge order is
// deterministic for any worker count), Counting (both engines are
// bit-identical, asserted by the golden-equality tests), and the
// observability sinks (Metrics, Trace, PprofLabels).
//
// This key — hashed by CanonicalHash — is what the serving layer's result
// cache and singleflight deduplication are addressed by.
func (c Config) CanonicalKey() string {
	c.defaults()
	p := c.pruning()
	var b strings.Builder
	fmt.Fprintf(&b, "alpha=%.17g;delta=%.17g;depth=%d;recursion=%d;topk=%d;",
		c.Alpha, c.Delta, c.MaxDepth, c.MaxRecursion, c.TopK)
	fmt.Fprintf(&b, "measure=%s;oe=%s;dfs=%t;", c.Measure, c.OEMode, c.DFS)
	fmt.Fprintf(&b, "prune=%t,%t,%t,%t,%t,%t;",
		p.MinDeviation, p.ExpectedCount, p.ChiSquareOE,
		p.RedundancyCLT, p.PureSpace, p.LookupTable)
	fmt.Fprintf(&b, "skipfilter=%t;recordexplored=%t;attrs=", c.SkipMeaningfulFilter, c.RecordExploredSpaces)
	if c.Attrs == nil {
		b.WriteString("all")
	} else {
		attrs := append([]int(nil), c.Attrs...)
		sort.Ints(attrs)
		for i, a := range attrs {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", a)
		}
	}
	return b.String()
}

// CanonicalHash is the hex-encoded SHA-256 of CanonicalKey, truncated to
// 16 bytes (32 hex digits) — compact enough for URLs and log lines,
// collision-resistant enough for cache addressing.
func (c Config) CanonicalHash() string {
	sum := sha256.Sum256([]byte(c.CanonicalKey()))
	return hex.EncodeToString(sum[:16])
}
