package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"sdadcs/internal/dataset"
	"sdadcs/internal/pattern"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name  string
		cfg   Config
		field string // "" = valid
	}{
		{"zero value", Config{}, ""},
		{"paper defaults", Config{Alpha: 0.05, Delta: 0.1, MaxDepth: 5, TopK: 100, Workers: 4}, ""},
		{"negative delta", Config{Delta: -0.1}, "Delta"},
		{"delta at one", Config{Delta: 1}, "Delta"},
		{"nan delta", Config{Delta: math.NaN()}, "Delta"},
		{"negative alpha", Config{Alpha: -0.05}, "Alpha"},
		{"alpha one", Config{Alpha: 1}, "Alpha"},
		{"alpha above one", Config{Alpha: 1.5}, "Alpha"},
		{"negative depth", Config{MaxDepth: -1}, "MaxDepth"},
		{"negative recursion", Config{MaxRecursion: -2}, "MaxRecursion"},
		{"unbounded topk sentinel", Config{TopK: TopKUnbounded}, ""},
		{"negative topk", Config{TopK: -2}, "TopK"},
		{"negative workers", Config{Workers: -8}, "Workers"},
		{"bad measure", Config{Measure: pattern.Measure(99)}, "Measure"},
		{"bad oe mode", Config{OEMode: OEMode(7)}, "OEMode"},
		{"bad counting", Config{Counting: CountingMode(-1)}, "Counting"},
		{"negative attr", Config{Attrs: []int{0, -3}}, "Attrs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.field == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want %s error", tc.field)
			}
			var fe *FieldError
			if !errors.As(err, &fe) {
				t.Fatalf("error %v is not a *FieldError", err)
			}
			if !strings.Contains(err.Error(), tc.field) {
				t.Errorf("error %q does not name field %s", err, tc.field)
			}
		})
	}
}

func TestConfigValidateCollectsAll(t *testing.T) {
	cfg := Config{Alpha: 2, Delta: -1, Workers: -1}
	err := cfg.Validate()
	if err == nil {
		t.Fatal("want error")
	}
	for _, field := range []string{"Alpha", "Delta", "Workers"} {
		if !strings.Contains(err.Error(), field) {
			t.Errorf("joined error %q misses field %s", err, field)
		}
	}
}

func TestMineContextRejectsInvalidConfig(t *testing.T) {
	d := dataset.NewBuilder("v").
		AddCategorical("a", []string{"x", "y", "x", "y"}).
		SetGroups([]string{"g1", "g1", "g2", "g2"}).
		MustBuild()
	res, err := MineContext(context.Background(), d, Config{Delta: -0.5})
	if err == nil {
		t.Fatal("MineContext accepted a negative Delta")
	}
	var fe *FieldError
	if !errors.As(err, &fe) || fe.Field != "Delta" {
		t.Fatalf("error = %v, want FieldError on Delta", err)
	}
	if len(res.Contrasts) != 0 {
		t.Errorf("invalid config produced %d contrasts", len(res.Contrasts))
	}
}

func TestCanonicalKeyDefaultsResolved(t *testing.T) {
	zero := Config{}
	explicit := Config{Alpha: 0.05, Delta: 0.1, MaxDepth: 5, MaxRecursion: 8, TopK: 100, Workers: 1}
	if zero.CanonicalKey() != explicit.CanonicalKey() {
		t.Errorf("zero config key %q != explicit-defaults key %q",
			zero.CanonicalKey(), explicit.CanonicalKey())
	}
	if zero.CanonicalHash() != explicit.CanonicalHash() {
		t.Error("hashes differ for equivalent configs")
	}
}

func TestCanonicalKeyIgnoresNonSemanticFields(t *testing.T) {
	base := Config{}
	variant := Config{Workers: 8, Counting: CountingSlice, PprofLabels: true}
	if base.CanonicalHash() != variant.CanonicalHash() {
		t.Error("Workers/Counting/PprofLabels must not change the canonical hash")
	}
}

func TestCanonicalKeySensitiveToSemanticFields(t *testing.T) {
	base := Config{}
	variants := []Config{
		{Alpha: 0.01},
		{Delta: 0.2},
		{MaxDepth: 3},
		{MaxRecursion: 4},
		{TopK: 10},
		{Measure: pattern.SurprisingMeasure},
		{OEMode: OEModeConservative},
		{SkipMeaningfulFilter: true},
		{DFS: true},
		{Attrs: []int{0, 1}},
		base.NP(),
	}
	seen := map[string]string{base.CanonicalHash(): "base"}
	for i, v := range variants {
		h := v.CanonicalHash()
		if prev, dup := seen[h]; dup {
			t.Errorf("variant %d collides with %s", i, prev)
		}
		seen[h] = v.CanonicalKey()
	}
	// Attribute order must not matter.
	a := Config{Attrs: []int{2, 0, 1}}
	b := Config{Attrs: []int{0, 1, 2}}
	if a.CanonicalHash() != b.CanonicalHash() {
		t.Error("attribute order changed the canonical hash")
	}
}

// contDataset builds a mixed dataset with enough continuous structure that
// SDAD-CS has real splitting and merging work to do.
func contDataset(tb testing.TB, rows int) *dataset.Dataset {
	tb.Helper()
	rng := rand.New(rand.NewSource(7))
	groups := make([]string, rows)
	c1 := make([]float64, rows)
	c2 := make([]float64, rows)
	c3 := make([]float64, rows)
	cat := make([]string, rows)
	for i := range groups {
		if i%2 == 0 {
			groups[i] = "pass"
			c1[i] = rng.NormFloat64()
		} else {
			groups[i] = "fail"
			c1[i] = rng.NormFloat64() + 1.5
		}
		c2[i] = rng.Float64() * 10
		c3[i] = rng.Float64() * 5
		cat[i] = []string{"A", "B", "C"}[i%3]
	}
	return dataset.NewBuilder("cancel").
		AddContinuous("x", c1).
		AddContinuous("y", c2).
		AddContinuous("z", c3).
		AddCategorical("tool", cat).
		SetGroups(groups).
		MustBuild()
}

// TestSDADRunCancelledContext is the regression test for the satellite
// "propagate ctx into the SDAD-CS recursion": an already-cancelled context
// must stop Algorithm 1 before it evaluates a single space, even though
// the per-level check in MineContext never runs here.
func TestSDADRunCancelledContext(t *testing.T) {
	d := contDataset(t, 400)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Config{}
	cfg.defaults()
	run := &sdadRun{
		ctx:       ctx,
		d:         d,
		cfg:       &cfg,
		prune:     AllPruning(),
		contAttrs: []int{0, 1, 2},
		alpha:     cfg.Alpha,
		memo:      newSupportMemo(d),
		table:     make(pruneTable),
		sizes:     d.GroupSizes(),
		totalRows: d.Rows(),
	}
	got := run.run(pattern.NewItemset(), d.All())
	if len(got) != 0 {
		t.Errorf("cancelled run returned %d contrasts", len(got))
	}
	if run.stats.PartitionsEvaluated != 0 {
		t.Errorf("cancelled run evaluated %d partitions, want 0", run.stats.PartitionsEvaluated)
	}

	// Control: the same run with a live context does real work.
	run.ctx = context.Background()
	run.run(pattern.NewItemset(), d.All())
	if run.stats.PartitionsEvaluated == 0 {
		t.Fatal("control run evaluated nothing; test dataset too weak")
	}
}

// TestMergeCancelledContext pins the merge-loop check: a cancelled context
// returns the (deduplicated, volume-sorted) spaces without attempting a
// single merge.
func TestMergeCancelledContext(t *testing.T) {
	d := contDataset(t, 200)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Config{}
	cfg.defaults()
	run := &sdadRun{ctx: ctx, d: d, cfg: &cfg, sizes: d.GroupSizes(), totalRows: d.Rows()}
	mk := func(lo, hi float64, counts []int) pattern.Contrast {
		return pattern.Contrast{
			Set:      pattern.NewItemset(pattern.RangeItem(0, lo, hi)),
			Supports: pattern.CountsToSupports(counts, run.sizes),
		}
	}
	in := []pattern.Contrast{mk(0, 1, []int{40, 10}), mk(1, 2, []int{38, 12})}
	out := run.merge(in)
	if len(out) != 2 {
		t.Errorf("cancelled merge changed the space count: %d", len(out))
	}
	if run.stats.MergeOps != 0 {
		t.Errorf("cancelled merge performed %d merges", run.stats.MergeOps)
	}
}

// TestMineContextCancelMidRun cancels a real mine shortly after it starts
// and checks that it returns the context error promptly.
func TestMineContextCancelMidRun(t *testing.T) {
	d := contDataset(t, 2000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the first level
	_, err := MineContext(ctx, d, Config{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("MineContext error = %v, want context.Canceled", err)
	}
}
