package core

import (
	"math"
	"testing"

	"sdadcs/internal/pattern"
)

func TestContiguousOn(t *testing.T) {
	cat := pattern.CatItem(5, 1)
	a := pattern.NewItemset(cat, pattern.RangeItem(0, 0, 1), pattern.RangeItem(1, 0, 2))
	b := pattern.NewItemset(cat, pattern.RangeItem(0, 1, 3), pattern.RangeItem(1, 0, 2))
	attr, u, ok := contiguousOn(a, b)
	if !ok || attr != 0 {
		t.Fatalf("contiguousOn = %d, %v", attr, ok)
	}
	if u.Lo != 0 || u.Hi != 3 {
		t.Errorf("union = %v", u)
	}

	// Differ on two attributes: not mergeable.
	c := pattern.NewItemset(cat, pattern.RangeItem(0, 1, 3), pattern.RangeItem(1, 2, 4))
	if _, _, ok := contiguousOn(a, c); ok {
		t.Error("two-attribute difference must not merge")
	}
	// Non-adjacent ranges: not mergeable.
	e := pattern.NewItemset(cat, pattern.RangeItem(0, 2, 4), pattern.RangeItem(1, 0, 2))
	if _, _, ok := contiguousOn(a, e); ok {
		t.Error("gap between ranges must not merge")
	}
	// Different categorical context: not mergeable.
	f := pattern.NewItemset(pattern.CatItem(5, 2), pattern.RangeItem(0, 1, 3), pattern.RangeItem(1, 0, 2))
	if _, _, ok := contiguousOn(a, f); ok {
		t.Error("different categorical item must not merge")
	}
	// Identical boxes: nothing to merge.
	if _, _, ok := contiguousOn(a, a); ok {
		t.Error("identical boxes must not merge")
	}
	// Different sizes.
	g := pattern.NewItemset(pattern.RangeItem(0, 1, 3))
	if _, _, ok := contiguousOn(a, g); ok {
		t.Error("different item counts must not merge")
	}
}

func TestSortByVolume(t *testing.T) {
	mk := func(lo, hi float64) pattern.Contrast {
		return pattern.Contrast{Set: pattern.NewItemset(pattern.RangeItem(0, lo, hi))}
	}
	cs := []pattern.Contrast{
		mk(0, 10),
		mk(0, 1),
		{Set: pattern.NewItemset(pattern.RangeItem(0, math.Inf(-1), 5))},
		mk(0, 3),
	}
	sortByVolume(cs)
	vols := make([]float64, len(cs))
	for i, c := range cs {
		vols[i] = c.Set.Volume()
	}
	if vols[0] != 1 || vols[1] != 3 || vols[2] != 10 || !math.IsInf(vols[3], 1) {
		t.Errorf("volumes after sort = %v", vols)
	}
}

func TestMergeCombinesSimilarNeighbors(t *testing.T) {
	// Two adjacent boxes with near-identical group composition should
	// merge; a third, different box should survive on its own.
	sizes := []int{1000, 1000}
	run := &sdadRun{
		cfg:   &Config{Alpha: 0.05, Delta: 0.1, Measure: pattern.SupportDiff},
		alpha: 0.05,
		sizes: sizes,
	}
	run.cfg.defaults()
	mk := func(lo, hi float64, c0, c1 int) pattern.Contrast {
		sup := pattern.CountsToSupports([]int{c0, c1}, sizes)
		return pattern.Contrast{
			Set:      pattern.NewItemset(pattern.RangeItem(0, lo, hi)),
			Supports: sup,
			Score:    sup.MaxDiff(),
		}
	}
	d := []pattern.Contrast{
		mk(0, 1, 200, 20), // similar composition…
		mk(1, 2, 210, 22), // …adjacent: should merge with the first
		mk(5, 6, 30, 400), // inverted composition, not adjacent anyway
	}
	out := run.merge(d)
	if len(out) != 2 {
		for _, c := range out {
			t.Logf("box %v counts %v", c.Set.Key(), c.Supports.Count)
		}
		t.Fatalf("merged to %d boxes, want 2", len(out))
	}
	found := false
	for _, c := range out {
		if it, ok := c.Set.ItemOn(0); ok && it.Range.Lo == 0 && it.Range.Hi == 2 {
			found = true
			if c.Supports.Count[0] != 410 || c.Supports.Count[1] != 42 {
				t.Errorf("merged counts = %v", c.Supports.Count)
			}
		}
	}
	if !found {
		t.Error("union box (0,2] not present")
	}
	if run.stats.MergeOps != 1 {
		t.Errorf("MergeOps = %d, want 1", run.stats.MergeOps)
	}
}

func TestMergeKeepsDissimilarNeighbors(t *testing.T) {
	sizes := []int{1000, 1000}
	run := &sdadRun{
		cfg:   &Config{Alpha: 0.05, Delta: 0.1, Measure: pattern.SupportDiff},
		alpha: 0.05,
		sizes: sizes,
	}
	run.cfg.defaults()
	mk := func(lo, hi float64, c0, c1 int) pattern.Contrast {
		sup := pattern.CountsToSupports([]int{c0, c1}, sizes)
		return pattern.Contrast{
			Set:      pattern.NewItemset(pattern.RangeItem(0, lo, hi)),
			Supports: sup,
			Score:    sup.MaxDiff(),
		}
	}
	d := []pattern.Contrast{
		mk(0, 1, 300, 20), // strongly group 0
		mk(1, 2, 20, 300), // strongly group 1: adjacent but different
	}
	out := run.merge(d)
	if len(out) != 2 {
		t.Fatalf("dissimilar neighbors merged: %d boxes", len(out))
	}
}

func TestMergeDeduplicates(t *testing.T) {
	sizes := []int{100, 100}
	run := &sdadRun{
		cfg:   &Config{Alpha: 0.05, Delta: 0.1, Measure: pattern.SupportDiff},
		alpha: 0.05,
		sizes: sizes,
	}
	run.cfg.defaults()
	c := pattern.Contrast{
		Set:      pattern.NewItemset(pattern.RangeItem(0, 0, 1)),
		Supports: pattern.CountsToSupports([]int{50, 10}, sizes),
	}
	out := run.merge([]pattern.Contrast{c, c, c})
	if len(out) != 1 {
		t.Errorf("duplicates not removed: %d", len(out))
	}
}
