package core

import (
	"testing"

	"sdadcs/internal/metrics"
	"sdadcs/internal/pattern"
)

// mergeChain builds n contiguous single-attribute spaces (i, i+1], each
// with identical group counts, over the given group sizes — a worst-case
// fixture for the bottom-up merge: every adjacent pair is similar and
// every union stays large and significant, so the whole chain collapses
// into one space.
func mergeChain(n int, counts, sizes []int, cfg *Config) []pattern.Contrast {
	spaces := make([]pattern.Contrast, 0, n)
	for i := 0; i < n; i++ {
		sup := pattern.CountsToSupports(counts, sizes)
		spaces = append(spaces, pattern.Contrast{
			Set:      pattern.NewItemset(pattern.RangeItem(0, float64(i), float64(i+1))),
			Supports: sup,
			Score:    cfg.Measure.Eval(sup),
		})
	}
	return spaces
}

// TestMergeChainCollapses: 12 contiguous similar spaces merge into the
// single full-range space, and the memoized rescan visits each distinct
// pair at most once. The regression: merge used to restart the full
// pairwise scan from scratch after every successful merge, recomputing
// chi-square tests for pairs already known unmergeable — O(n³) evaluations
// on merge-heavy windows.
func TestMergeChainCollapses(t *testing.T) {
	rec := metrics.New()
	cfg := Config{}
	cfg.defaults()
	sizes := []int{300, 300}
	r := &sdadRun{cfg: &cfg, alpha: cfg.Alpha, sizes: sizes, rec: rec}

	const n = 12
	got := r.merge(mergeChain(n, []int{20, 2}, sizes, &cfg))
	if len(got) != 1 {
		t.Fatalf("merge left %d spaces, want 1", len(got))
	}
	it, ok := got[0].Set.ItemOn(0)
	if !ok || it.Range.Lo != 0 || it.Range.Hi != n {
		t.Errorf("merged space is %s, want (0,%d]", got[0].Set.Key(), n)
	}
	wantCounts := []int{20 * n, 2 * n}
	for g, c := range got[0].Supports.Count {
		if c != wantCounts[g] {
			t.Errorf("merged counts %v, want %v", got[0].Supports.Count, wantCounts)
			break
		}
	}
	if r.stats.MergeOps != n-1 {
		t.Errorf("MergeOps = %d, want %d", r.stats.MergeOps, n-1)
	}
	// n originals plus n-1 unions ever exist; with failures memoized, no
	// pair is attempted twice, so attempts are bounded by C(2n-1, 2). The
	// former restart-everything scan exceeds this on chain-merge fixtures.
	maxAttempts := int64((2*n - 1) * (2*n - 2) / 2)
	if s := rec.Snapshot(); s.MergeAttempts > maxAttempts {
		t.Errorf("merge attempted %d pairs, want <= %d (each distinct pair once)",
			s.MergeAttempts, maxAttempts)
	}
}

// TestMergeKeepsDissimilarSplit: two contiguous spaces with significantly
// different group compositions must stay split (the similarity gate).
func TestMergeKeepsDissimilarSplit(t *testing.T) {
	cfg := Config{}
	cfg.defaults()
	sizes := []int{300, 300}
	r := &sdadRun{cfg: &cfg, alpha: cfg.Alpha, sizes: sizes}

	mk := func(lo, hi float64, counts []int) pattern.Contrast {
		sup := pattern.CountsToSupports(counts, sizes)
		return pattern.Contrast{
			Set:      pattern.NewItemset(pattern.RangeItem(0, lo, hi)),
			Supports: sup,
			Score:    cfg.Measure.Eval(sup),
		}
	}
	// Opposite compositions: chi-square similarity rejects the union.
	got := r.merge([]pattern.Contrast{
		mk(0, 1, []int{80, 5}),
		mk(1, 2, []int{5, 80}),
	})
	if len(got) != 2 {
		t.Fatalf("dissimilar spaces merged: %d spaces, want 2", len(got))
	}
	if r.stats.MergeOps != 0 {
		t.Errorf("MergeOps = %d, want 0", r.stats.MergeOps)
	}
}
