package core

import (
	"math"

	"sdadcs/internal/dataset"
	"sdadcs/internal/pattern"
	"sdadcs/internal/stats"
)

// Meaningfulness classifies one contrast against the three criteria the
// paper requires of patterns worth showing a user (§1, §4.3): a meaningful
// contrast is non-redundant, productive, and independently productive.
type Meaningfulness struct {
	// Redundant: some subset has a statistically indistinguishable
	// support difference (Eq. 14–16) — e.g. the {female, pregnant}
	// example, where the superset adds nothing.
	Redundant bool
	// Unproductive: some binary partition (a, c\a) explains the contrast
	// as a product of its parts (Eq. 17 fails, or the parts' association
	// is not statistically confirmed).
	Unproductive bool
	// NotIndependentlyProductive: a superset in the final list explains
	// the contrast — after removing the superset's rows, what remains is
	// no longer a significant contrast (the hurricane example of §4.3).
	NotIndependentlyProductive bool
	// ExplainedBy is the canonical key of the superset that failed the
	// independent-productivity check ("" unless
	// NotIndependentlyProductive) — the provenance detail the explain
	// path renders.
	ExplainedBy string
}

// Meaningful reports whether none of the three defects applies.
func (m Meaningfulness) Meaningful() bool {
	return !m.Redundant && !m.Unproductive && !m.NotIndependentlyProductive
}

// verdict renders the classification as the KindFilter trace vocabulary:
// "kept", "redundant", "unproductive" or "dependent:<superset key>", in
// defect-precedence order.
func (m Meaningfulness) verdict() string {
	switch {
	case m.Redundant:
		return "redundant"
	case m.Unproductive:
		return "unproductive"
	case m.NotIndependentlyProductive:
		return "dependent:" + m.ExplainedBy
	default:
		return "kept"
	}
}

// Classify evaluates each contrast's meaningfulness at significance level
// alpha. The independent-productivity check is relative to the other
// contrasts in cs, as in the paper ("the check is performed only on
// supersets present in the final list").
func Classify(d *dataset.Dataset, cs []pattern.Contrast, alpha float64) []Meaningfulness {
	memo := newSupportMemo(d)
	out := make([]Meaningfulness, len(cs))
	for i, c := range cs {
		out[i].Redundant = isRedundant(c, alpha, memo)
		out[i].Unproductive = isUnproductive(d, c, alpha, memo)
		explainedBy, indep := isIndependentlyProductive(d, c, cs, alpha)
		out[i].NotIndependentlyProductive = !indep
		out[i].ExplainedBy = explainedBy
	}
	return out
}

// isRedundant applies the CLT bound of Eq. 14–16 against every
// drop-one-item subset.
func isRedundant(c pattern.Contrast, alpha float64, memo *supportMemo) bool {
	if c.Set.Len() < 2 {
		return false
	}
	_, redundant := redundantByCLT(c.Set, c.Supports, alpha, memo.supports)
	return redundant
}

// isUnproductive checks Eq. 17 over every binary partition of the itemset:
// the contrast's support difference must exceed — statistically
// significantly, since the dataset is a sample — the support difference
// expected if the two parts were independent within each group. This is
// exactly the Table 3 analysis: a top pattern whose supports match the
// product of its parts' supports is "not meaningful since the difference
// in support is not statistically different from the expected difference".
func isUnproductive(d *dataset.Dataset, c pattern.Contrast, alpha float64, memo *supportMemo) bool {
	n := c.Set.Len()
	if n < 2 {
		return false // singletons are trivially productive
	}
	items := c.Set.Items()
	// Orient the pair along the contrast itself: x is the over-represented
	// group. (Orienting by group size instead flips the inequality's sign
	// whenever the over-represented group is the minority — precisely the
	// imbalanced-manufacturing case the paper targets.)
	x, y := extremeGroups(c.Supports)
	diffC := c.Supports.Supp(x) - c.Supports.Supp(y)
	z := stats.ZCritical(alpha)

	// Enumerate binary partitions (a, c\a); mask and its complement give
	// the same partition, so iterate half the range.
	for mask := 1; mask < 1<<uint(n-1); mask++ {
		var a, rest []pattern.Item
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				a = append(a, items[i])
			} else {
				rest = append(rest, items[i])
			}
		}
		sa := memo.supports(pattern.NewItemset(a...))
		sr := memo.supports(pattern.NewItemset(rest...))
		// Expected supports under within-group independence of the parts.
		eX := sa.Supp(x) * sr.Supp(x)
		eY := sa.Supp(y) * sr.Supp(y)
		if diffC <= eX-eY {
			return true // Eq. 17 fails outright
		}
		// Statistical confirmation (CLT on the expected supports, as in
		// Eq. 14–16): the observed difference must clear the expected
		// difference by more than sampling noise.
		va := eX * (1 - eX) / float64(c.Supports.Size[x])
		vb := eY * (1 - eY) / float64(c.Supports.Size[y])
		if diffC <= eX-eY+z*math.Sqrt(va+vb) {
			return true
		}
	}
	return false
}

// isIndependentlyProductive checks the contrast against every superset in
// the final list. For a superset t ⊃ c with extra items e = t \ c, the
// rows r(c) − r(c ∧ e) must still form a contrast (§4.3's hurricane
// example) — evaluated *conditionally*, within the universe of rows where
// e does not hold. Conditioning matters: when two independent causes both
// skew toward the minority group (Table 7's chip-attach module and tray
// row), removing the other cause's rows shrinks the minority group far
// more than the majority, and an unconditional support comparison would
// wrongly conclude the surviving pattern carries no signal.
// It returns the canonical key of the first superset that explains the
// contrast ("" when the contrast stands on its own).
func isIndependentlyProductive(d *dataset.Dataset, c pattern.Contrast,
	all []pattern.Contrast, alpha float64) (explainedBy string, ok bool) {

	var cover dataset.View
	haveCover := false
	x, y := extremeGroups(c.Supports) // orientation of the original contrast
	sizes := d.GroupSizes()
	for _, t := range all {
		if t.Set.Len() <= c.Set.Len() || !c.Set.SubsetOf(t.Set) {
			continue
		}
		// The superset's extra conditions.
		extra := t.Set
		for _, attr := range c.Set.Attrs() {
			extra = extra.Without(attr)
		}
		if extra.Len() == 0 {
			continue
		}
		if !haveCover {
			cover = c.Set.Cover(d.All())
			haveCover = true
		}
		extraCover := extra.Cover(d.All())
		remainder := cover.Subtract(extraCover)
		// An empty remainder means the extra items cover everything c
		// covers (e.g. a merged full-range artifact): no evidence either
		// way.
		if remainder.Len() == 0 {
			continue
		}
		// Universe: rows where the extra conditions do NOT hold.
		extraCounts := extraCover.GroupCounts()
		remCounts := remainder.GroupCounts()
		universe := make([]int, len(sizes))
		for g := range sizes {
			universe[g] = sizes[g] - extraCounts[g]
		}
		// If the over-represented group exists only inside the superset
		// (hurricane: every "develops" day has all three conditions), the
		// pattern is explained by the superset.
		if universe[x] == 0 {
			return t.Set.Key(), false
		}
		// Conditional orientation: within the universe, the original
		// over-represented group must stay over-represented…
		rateX := float64(remCounts[x]) / float64(universe[x])
		rateY := 0.0
		if universe[y] > 0 {
			rateY = float64(remCounts[y]) / float64(universe[y])
		}
		if rateX <= rateY {
			return t.Set.Key(), false
		}
		// …and significantly so.
		test, err := stats.ChiSquare2xK(remCounts, universe)
		if err != nil {
			return t.Set.Key(), false // no discriminating structure left
		}
		// NaN-safe: only a definite P < α keeps the contrast independently
		// productive; NaN (tiny remainder samples) must fail the test.
		if !(test.P < alpha) {
			return t.Set.Key(), false
		}
	}
	return "", true
}

// CountMeaningful tallies a classification: (meaningful, meaningless).
// It backs the paper's Table 6.
func CountMeaningful(ms []Meaningfulness) (meaningful, meaningless int) {
	for _, m := range ms {
		if m.Meaningful() {
			meaningful++
		} else {
			meaningless++
		}
	}
	return meaningful, meaningless
}
