package core

import (
	"math/rand"
	"testing"

	"sdadcs/internal/dataset"
	"sdadcs/internal/pattern"
)

// threeGroups builds a dataset with three groups: low, mid and high, each
// concentrated in its own band of a continuous attribute (with noise), as
// in the paper's "set of groups G = {g1 ... gk}" formulation — STUCCO-style
// mining is defined for k groups, not just two.
func threeGroups(seed int64, n int) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	c := make([]string, n)
	g := make([]string, n)
	for i := range x {
		switch i % 3 {
		case 0:
			g[i] = "low"
			x[i] = rng.Float64() * 0.4
		case 1:
			g[i] = "mid"
			x[i] = 0.3 + rng.Float64()*0.4
		default:
			g[i] = "high"
			x[i] = 0.6 + rng.Float64()*0.4
		}
		c[i] = []string{"a", "b"}[rng.Intn(2)]
	}
	return dataset.NewBuilder("three").
		AddContinuous("x", x).
		AddCategorical("c", c).
		SetGroups(g).
		MustBuild()
}

func TestMineThreeGroups(t *testing.T) {
	d := threeGroups(1, 3000)
	if d.NumGroups() != 3 {
		t.Fatal("setup: want 3 groups")
	}
	res := Mine(d, Config{Measure: pattern.SupportDiff, MaxDepth: 1})
	if len(res.Contrasts) == 0 {
		t.Fatal("no contrasts on 3-group data")
	}
	// The top contrast should be a band of x strongly separating one
	// group from another.
	top := res.Contrasts[0]
	if top.Score < 0.5 {
		t.Errorf("top score = %v, want strong separation", top.Score)
	}
	if _, ok := top.Set.ItemOn(0); !ok {
		t.Errorf("top contrast should use x: %s", top.Set.Format(d))
	}
	// Supports carry all three groups.
	if top.Supports.Groups() != 3 {
		t.Errorf("supports carry %d groups", top.Supports.Groups())
	}
}

func TestThreeGroupMeasures(t *testing.T) {
	// MaxDiff/PR/Surprising are defined over the extreme pair for k
	// groups.
	sup := pattern.CountsToSupports([]int{80, 40, 10}, []int{100, 100, 100})
	if got := sup.MaxDiff(); got < 0.7-1e-12 || got > 0.7+1e-12 {
		t.Errorf("MaxDiff = %v, want 0.7", got)
	}
	if got, want := sup.PR(), 1-0.1/0.8; got < want-1e-12 || got > want+1e-12 {
		t.Errorf("PR = %v, want %v", got, want)
	}
}

func TestThreeGroupOptimisticEstimate(t *testing.T) {
	sup := pattern.CountsToSupports([]int{50, 30, 5}, []int{100, 100, 100})
	oe := optimisticEstimate(sup, 85, 1, OEModeConservative, pattern.SupportDiff)
	// The bound must dominate the current difference.
	if oe < sup.MaxDiff()-0.5 { // child bound can be below parent diff
		t.Logf("oe = %v, diff = %v", oe, sup.MaxDiff())
	}
	if oe <= 0 || oe > 1 {
		t.Errorf("oe = %v out of range", oe)
	}
}

func TestThreeGroupHoldout(t *testing.T) {
	d := threeGroups(2, 3000)
	train, test := d.All().StratifiedSplit(0.6, 5)
	if train.Len()+test.Len() != d.Rows() {
		t.Fatal("split broken for 3 groups")
	}
	res := Mine(d, Config{Attrs: []int{0}, MaxDepth: 1})
	if len(res.Contrasts) == 0 {
		t.Fatal("nothing mined")
	}
	vs := ValidateHoldout(test, res.Contrasts, 0.1, 0.05)
	if rate := ReplicationRate(vs); rate < 0.9 {
		t.Errorf("3-group replication rate = %v", rate)
	}
}

func TestThreeGroupClassify(t *testing.T) {
	d := threeGroups(3, 2000)
	res := Mine(d, Config{SkipMeaningfulFilter: true, MaxDepth: 2})
	ms := Classify(d, res.Contrasts, 0.05)
	if len(ms) != len(res.Contrasts) {
		t.Fatal("classification length mismatch")
	}
}
