// Package core implements SDAD-CS (Supervised Dynamic and Adaptive
// Discretization for Contrast Sets), the contribution of Khade, Lin &
// Patel, "Finding Meaningful Contrast Patterns for Quantitative Data"
// (EDBT 2019).
//
// The miner explores attribute combinations levelwise in the order of the
// paper's Figure 1. Combinations of categorical attributes are handled
// STUCCO-style (value enumeration, chi-square contrast test, support
// pruning). As soon as a combination contains a continuous attribute,
// Algorithm 1 runs: the joint continuous space is split top-down at
// per-space medians into 2^|ca| boxes, recursion is steered by optimistic
// estimates of the interest measure (Eq. 5–11) against the dynamic top-k
// threshold, and — back at the first level — contiguous, statistically
// similar boxes are merged bottom-up, smallest hyper-volume first, into the
// general, comprehensible contrasts the paper reports.
//
// Pruning (§4.3) is table-driven: spaces failing the minimum-deviation,
// expected-count, CLT-redundancy or purity rules are recorded in a lookup
// table keyed by canonical itemset, so any later combination whose box has
// a pruned subset is cut without recounting. Meaningfulness filters —
// productive (Eq. 17), independently productive, non-redundant — run as a
// final pass and can be disabled to obtain the SDAD-CS NP variant used in
// the paper's quantitative comparison.
package core
