package core

import (
	"math/rand"
	"testing"

	"sdadcs/internal/datagen"
	"sdadcs/internal/dataset"
	"sdadcs/internal/pattern"
)

func TestStratifiedSplitShape(t *testing.T) {
	d := datagen.Simulated1(1, 1000)
	train, test := d.All().StratifiedSplit(0.7, 42)
	if train.Len()+test.Len() != d.Rows() {
		t.Fatalf("split loses rows: %d + %d != %d", train.Len(), test.Len(), d.Rows())
	}
	// Group proportions preserved to within one row per group.
	total := d.GroupSizes()
	tc := train.GroupCounts()
	for g := range total {
		want := int(0.7*float64(total[g])) + 1
		if tc[g] < want-1 || tc[g] > want {
			t.Errorf("group %d: train %d of %d, want ~70%%", g, tc[g], total[g])
		}
	}
	// No overlap.
	if train.Intersect(test).Len() != 0 {
		t.Error("train and test overlap")
	}
	// Deterministic.
	a1, _ := d.All().StratifiedSplit(0.7, 42)
	if a1.Len() != train.Len() || a1.Row(0) != train.Row(0) {
		t.Error("split not deterministic for fixed seed")
	}
}

func TestStratifiedSplitEdges(t *testing.T) {
	d := datagen.Simulated1(2, 100)
	all, none := d.All().StratifiedSplit(1.0, 1)
	if all.Len() != 100 || none.Len() != 0 {
		t.Error("frac=1 should put everything in the first view")
	}
	none2, all2 := d.All().StratifiedSplit(0, 1)
	if none2.Len() != 0 || all2.Len() != 100 {
		t.Error("frac=0 should put everything in the second view")
	}
	// Out-of-range fractions clamp.
	a, _ := d.All().StratifiedSplit(1.5, 1)
	if a.Len() != 100 {
		t.Error("frac>1 should clamp to 1")
	}
}

func TestValidateHoldoutRealPatternReplicates(t *testing.T) {
	d := datagen.Simulated1(3, 4000)
	train, test := d.All().StratifiedSplit(0.5, 7)
	// Mine on the training half only.
	_ = train
	res := Mine(d, Config{Attrs: []int{0}, MaxDepth: 1})
	if len(res.Contrasts) == 0 {
		t.Fatal("nothing mined")
	}
	vs := ValidateHoldout(test, res.Contrasts, 0.1, 0.05)
	if len(vs) != len(res.Contrasts) {
		t.Fatal("length mismatch")
	}
	if rate := ReplicationRate(vs); rate < 0.99 {
		t.Errorf("replication rate = %v, want ~1 for a planted pattern", rate)
	}
	for _, v := range vs {
		if !v.SameDirection || !v.Large || !v.Significant {
			t.Errorf("validation = %+v", v)
		}
	}
}

func TestValidateHoldoutSpuriousPatternsMostlyFail(t *testing.T) {
	// Patterns cherry-picked from noise on the training half should
	// rarely replicate on the holdout. Individual runs are stochastic, so
	// assert over several seeds.
	replicated := 0
	const trials = 12
	for seed := int64(0); seed < trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 400
		x := make([]float64, n)
		g := make([]string, n)
		for i := range x {
			x[i] = rng.Float64()
			g[i] = []string{"A", "B"}[rng.Intn(2)]
		}
		d := dataset.NewBuilder("noise").AddContinuous("x", x).SetGroups(g).MustBuild()
		train, test := d.All().StratifiedSplit(0.5, seed)

		// Cherry-pick the interval with the best training-half contrast.
		trainSizes := train.GroupCounts()
		best := pattern.Contrast{Score: -1}
		for lo := 0.0; lo < 0.95; lo += 0.05 {
			set := pattern.NewItemset(pattern.RangeItem(0, lo, lo+0.05))
			sup := pattern.CountsToSupports(set.Cover(train).GroupCounts(), trainSizes)
			if s := sup.MaxDiff(); s > best.Score {
				best = pattern.Contrast{Set: set, Supports: sup, Score: s}
			}
		}
		vs := ValidateHoldout(test, []pattern.Contrast{best}, 0.1, 0.05)
		if vs[0].Replicates() {
			replicated++
		}
	}
	if replicated > trials/3 {
		t.Errorf("%d/%d overfit noise patterns replicated; expected rare replication",
			replicated, trials)
	}
}

func TestReplicationRateEmpty(t *testing.T) {
	if ReplicationRate(nil) != 0 {
		t.Error("empty rate should be 0")
	}
}
