package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"sdadcs/internal/dataset"
	"sdadcs/internal/metrics"
	"sdadcs/internal/pattern"
)

// remineDataset builds a deterministic mixed dataset: two categorical
// columns, one continuous, three groups. mutate shifts the continuous
// value of every row whose first categorical value is "m1" — the shape of
// a window slide that dirties one value's cover and nothing else.
func remineDataset(seed int64, rows int, mutate bool) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	cont := make([]float64, rows)
	machine := make([]string, rows)
	shift := make([]string, rows)
	grp := make([]string, rows)
	for i := 0; i < rows; i++ {
		machine[i] = fmt.Sprintf("m%d", rng.Intn(3))
		shift[i] = []string{"day", "night"}[rng.Intn(2)]
		grp[i] = []string{"ok", "fail", "degraded"}[rng.Intn(3)]
		cont[i] = rng.NormFloat64()*5 + 20
		if machine[i] == "m0" {
			cont[i] += 6 // give the miner real structure to find
		}
		if mutate && machine[i] == "m1" {
			cont[i] += 0.75
		}
	}
	return dataset.NewBuilder("remine").
		AddContinuous("temp", cont).
		AddCategorical("machine", machine).
		AddCategorical("shift", shift).
		SetGroups(grp).
		MustBuild()
}

// assertSameResult compares two mining results bit-for-bit: itemset keys,
// score/χ²/p float bits, support vectors, order, and search stats.
func assertSameResult(t *testing.T, label string, a, b Result) {
	t.Helper()
	if len(a.Contrasts) != len(b.Contrasts) {
		t.Fatalf("%s: %d contrasts vs %d", label, len(a.Contrasts), len(b.Contrasts))
	}
	for i := range a.Contrasts {
		ca, cb := a.Contrasts[i], b.Contrasts[i]
		if ca.Set.Key() != cb.Set.Key() ||
			math.Float64bits(ca.Score) != math.Float64bits(cb.Score) ||
			math.Float64bits(ca.ChiSq) != math.Float64bits(cb.ChiSq) ||
			math.Float64bits(ca.P) != math.Float64bits(cb.P) {
			t.Fatalf("%s: contrast %d differs: %s score=%v vs %s score=%v",
				label, i, ca.Set.Key(), ca.Score, cb.Set.Key(), cb.Score)
		}
		for g := range ca.Supports.Count {
			if ca.Supports.Count[g] != cb.Supports.Count[g] || ca.Supports.Size[g] != cb.Supports.Size[g] {
				t.Fatalf("%s: contrast %d supports differ in group %d", label, i, g)
			}
		}
	}
	if a.Stats != b.Stats {
		t.Fatalf("%s: stats differ: %+v vs %+v", label, a.Stats, b.Stats)
	}
}

// TestMineIncrementalFirstCallMatchesMine: with no previous state the
// incremental entry point is a plain full mine, and it hands back a state
// for the next window.
func TestMineIncrementalFirstCallMatchesMine(t *testing.T) {
	d := remineDataset(3, 400, false)
	cfg := Config{Measure: pattern.SurprisingMeasure, MaxDepth: 2}
	full := Mine(d, cfg)
	inc, state := MineIncremental(d, cfg, nil, ChangeSummary{RowsTouched: 400})
	assertSameResult(t, "first call", full, inc)
	if state == nil {
		t.Fatal("no state captured")
	}
	if len(state.levels) == 0 {
		t.Fatal("state has no cached levels")
	}
}

// TestMineIncrementalZeroChangeReplaysEverything: an unchanged window
// replays every node — bit-identical result, zero dirty nodes, and no
// node evaluations beyond the replay bookkeeping.
func TestMineIncrementalZeroChangeReplaysEverything(t *testing.T) {
	d := remineDataset(4, 400, false)
	cfg := Config{Measure: pattern.SurprisingMeasure, MaxDepth: 2}
	full := Mine(d, cfg)
	_, state := MineIncremental(d, cfg, nil, ChangeSummary{})

	rec := metrics.New()
	cfg2 := cfg
	cfg2.Metrics = rec
	res, next := MineIncremental(d, cfg2, state, ChangeSummary{})
	assertSameResult(t, "zero-change replay", full, res)
	if next == nil {
		t.Fatal("no follow-up state")
	}
	s := rec.Snapshot()
	if s.GateDirtyNodes != 0 || s.GateStableNodes == 0 {
		t.Fatalf("zero-change window: stable=%d dirty=%d", s.GateStableNodes, s.GateDirtyNodes)
	}
	if s.NodeEval.Count != 0 {
		t.Fatalf("zero-change window still evaluated %d nodes", s.NodeEval.Count)
	}
}

// TestMineIncrementalDirtyValueBitIdentical: mutate one categorical
// value's rows between windows, report it truthfully, and the incremental
// mine must match a from-scratch mine of the new window exactly — while
// actually replaying the untouched part of the frontier.
func TestMineIncrementalDirtyValueBitIdentical(t *testing.T) {
	for _, workers := range []int{1, 4} {
		cfg := Config{Measure: pattern.SurprisingMeasure, MaxDepth: 2, Workers: workers}
		prev := remineDataset(5, 400, false)
		_, state := MineIncremental(prev, cfg, nil, ChangeSummary{})

		cur := remineDataset(5, 400, true) // same rows except machine=m1's temps
		// A truthful summary: every mutated row carries machine=m1 plus one
		// shift value, so those values' touched counts are the per-value row
		// tallies and RowsTouched is the m1 row count.
		touched := map[int]map[string]int{1: {}, 2: {}}
		for r := 0; r < cur.Rows(); r++ {
			if cur.CatValue(1, r) == "m1" {
				touched[1]["m1"]++
				touched[2][cur.CatValue(2, r)]++
			}
		}
		change := ChangeSummary{RowsTouched: touched[1]["m1"], Touched: touched}

		rec := metrics.New()
		cfg2 := cfg
		cfg2.Metrics = rec
		res, _ := MineIncremental(cur, cfg2, state, change)
		assertSameResult(t, fmt.Sprintf("dirty-value workers=%d", workers), Mine(cur, cfg), res)
		s := rec.Snapshot()
		if s.GateStableNodes == 0 {
			t.Fatalf("workers=%d: nothing replayed despite a confined change", workers)
		}
		if s.GateDirtyNodes == 0 {
			t.Fatalf("workers=%d: nothing dirty despite a mutated value", workers)
		}
	}
}

// TestMineIncrementalFingerprintMismatch: a window with different content
// shape (row count) must not replay anything — and must still be
// bit-identical to a full mine.
func TestMineIncrementalFingerprintMismatch(t *testing.T) {
	cfg := Config{Measure: pattern.SurprisingMeasure, MaxDepth: 2}
	prev := remineDataset(6, 400, false)
	_, state := MineIncremental(prev, cfg, nil, ChangeSummary{})

	cur := remineDataset(7, 380, false)
	rec := metrics.New()
	cfg2 := cfg
	cfg2.Metrics = rec
	res, _ := MineIncremental(cur, cfg2, state, ChangeSummary{})
	assertSameResult(t, "fingerprint mismatch", Mine(cur, cfg), res)
	s := rec.Snapshot()
	if s.GateStableNodes != 0 {
		t.Fatalf("replayed %d nodes across a fingerprint mismatch", s.GateStableNodes)
	}
	if s.GateDirtyNodes == 0 {
		t.Fatal("gate recorded no dirty nodes")
	}
}

// TestCLTSupportBound pins the Eq. 14–16 half-width arithmetic.
func TestCLTSupportBound(t *testing.T) {
	sup := pattern.Supports{Count: []int{30, 10}, Size: []int{100, 100}}
	// supp = 0.3 and 0.1; a = 0.3*0.7/100, b = 0.1*0.9/100.
	want := 0.05 * math.Sqrt(0.3*0.7/100+0.1*0.9/100)
	if got := CLTSupportBound(sup, 0.05); math.Abs(got-want) > 1e-15 {
		t.Fatalf("CLTSupportBound = %v, want %v", got, want)
	}
	if CLTSupportBound(sup, 0) != 0 {
		t.Fatal("zero alpha must give a zero-width band")
	}
	if CLTSupportBound(sup, 0.1) <= CLTSupportBound(sup, 0.05) {
		t.Fatal("band must widen with alpha")
	}
}
