package pattern

import (
	"math"
	"testing"
)

// TestParseKeyRoundTrip is the property the trace provenance index relies
// on: ParseKey(s.Key()) reproduces s bit for bit, including non-dyadic
// continuous bounds and open intervals.
func TestParseKeyRoundTrip(t *testing.T) {
	sets := []Itemset{
		NewItemset(),
		NewItemset(CatItem(0, 3)),
		NewItemset(CatItem(2, 0), CatItem(5, 11)),
		NewItemset(RangeItem(1, 0, 10)),
		NewItemset(RangeItem(1, math.Inf(-1), 26.5)),
		NewItemset(RangeItem(3, 0.1, math.Inf(1))),
		NewItemset(RangeItem(0, -1.5, 2.25), CatItem(4, 7)),
		NewItemset(RangeItem(2, 1.0/3.0, math.Pi)), // non-dyadic bounds
	}
	for _, s := range sets {
		key := s.Key()
		back, err := ParseKey(key)
		if err != nil {
			t.Errorf("ParseKey(%q) error: %v", key, err)
			continue
		}
		if back.Key() != key {
			t.Errorf("round trip broke: %q -> %q", key, back.Key())
		}
		a, b := s.Items(), back.Items()
		if len(a) != len(b) {
			t.Errorf("key %q: item count %d -> %d", key, len(a), len(b))
			continue
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("key %q item %d: %+v != %+v", key, i, a[i], b[i])
			}
		}
	}
}

// TestParseKeyExactBounds pins that continuous bounds survive with full
// float64 precision (the 'b' mantissa/exponent encoding is lossless).
func TestParseKeyExactBounds(t *testing.T) {
	lo, hi := 0.1, math.Nextafter(0.1, 1)
	s := NewItemset(RangeItem(0, lo, hi))
	back, err := ParseKey(s.Key())
	if err != nil {
		t.Fatal(err)
	}
	r := back.Items()[0].Range
	if r.Lo != lo || r.Hi != hi {
		t.Errorf("bounds drifted: got (%v, %v], want (%v, %v]", r.Lo, r.Hi, lo, hi)
	}
}

func TestParseKeyErrors(t *testing.T) {
	bad := []string{
		"x=1",       // non-numeric attr
		"0=abc",     // non-numeric code
		"0",         // no separator
		"0@1",       // range missing comma
		"0@a,b",     // unparseable bounds
		"0@1p2p3,4", // malformed exponent
		"0=1|",      // trailing empty part
	}
	for _, k := range bad {
		if _, err := ParseKey(k); err == nil {
			t.Errorf("ParseKey(%q) accepted malformed key", k)
		}
	}
}

func TestParseKeyEmptyIsEmptySet(t *testing.T) {
	s, err := ParseKey("")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Items()) != 0 {
		t.Errorf("empty key parsed to %d items", len(s.Items()))
	}
}
