package pattern

import (
	"math"
	"strings"
	"testing"

	"sdadcs/internal/dataset"
)

func testData(t *testing.T) *dataset.Dataset {
	t.Helper()
	return dataset.NewBuilder("t").
		AddContinuous("age", []float64{25, 35, 45, 55, 65, 30}).
		AddCategorical("color", []string{"red", "blue", "red", "green", "blue", "red"}).
		AddContinuous("hours", []float64{40, 50, 60, 20, 45, 38}).
		SetGroups([]string{"A", "B", "A", "B", "A", "B"}).
		MustBuild()
}

func TestItemMatches(t *testing.T) {
	d := testData(t)
	red := CatItem(1, 0)
	if !red.Matches(d, 0) || red.Matches(d, 1) {
		t.Error("categorical match wrong")
	}
	young := RangeItem(0, 20, 35)
	if !young.Matches(d, 0) || young.Matches(d, 2) {
		t.Error("range match wrong")
	}
	if !young.Matches(d, 1) { // 35 is inside (20, 35]
		t.Error("upper bound should be inclusive")
	}
}

func TestItemSubsumes(t *testing.T) {
	wide := RangeItem(0, 0, 100)
	narrow := RangeItem(0, 20, 35)
	if !wide.Subsumes(narrow) {
		t.Error("wide range should subsume narrow")
	}
	if narrow.Subsumes(wide) {
		t.Error("narrow range should not subsume wide")
	}
	if wide.Subsumes(RangeItem(1, 20, 35)) {
		t.Error("different attribute cannot subsume")
	}
	if !CatItem(1, 0).Subsumes(CatItem(1, 0)) {
		t.Error("categorical item should subsume itself")
	}
	if CatItem(1, 0).Subsumes(CatItem(1, 1)) {
		t.Error("different codes should not subsume")
	}
}

func TestItemFormat(t *testing.T) {
	d := testData(t)
	if got := CatItem(1, 2).Format(d); got != "color = green" {
		t.Errorf("Format = %q", got)
	}
	got := RangeItem(0, 20, 35).Format(d)
	if !strings.Contains(got, "age") || !strings.Contains(got, "20") {
		t.Errorf("Format = %q", got)
	}
}

func TestItemsetSortedAndKey(t *testing.T) {
	a := NewItemset(RangeItem(2, 0, 50), CatItem(1, 0))
	b := NewItemset(CatItem(1, 0), RangeItem(2, 0, 50))
	if a.Key() != b.Key() {
		t.Errorf("keys differ for same items: %q vs %q", a.Key(), b.Key())
	}
	if a.Item(0).Attr != 1 || a.Item(1).Attr != 2 {
		t.Error("items not sorted by attribute")
	}
	if !a.Equal(b) {
		t.Error("itemsets with same items should be equal")
	}
	c := NewItemset(CatItem(1, 1), RangeItem(2, 0, 50))
	if a.Key() == c.Key() || a.Equal(c) {
		t.Error("different itemsets should differ")
	}
}

func TestItemsetWithWithout(t *testing.T) {
	s := NewItemset(CatItem(1, 0))
	s2 := s.With(RangeItem(0, 10, 20))
	if s2.Len() != 2 || s.Len() != 1 {
		t.Error("With should not mutate the receiver")
	}
	// Replacing an item on the same attribute.
	s3 := s2.With(RangeItem(0, 15, 18))
	if s3.Len() != 2 {
		t.Errorf("replace should keep length, got %d", s3.Len())
	}
	it, ok := s3.ItemOn(0)
	if !ok || it.Range.Lo != 15 {
		t.Error("With should replace item on same attribute")
	}
	s4 := s3.Without(0)
	if s4.Len() != 1 {
		t.Error("Without failed")
	}
	if _, ok := s4.ItemOn(0); ok {
		t.Error("Without left the item behind")
	}
}

func TestItemsetSubsetGeneralizes(t *testing.T) {
	ab := NewItemset(CatItem(1, 0), RangeItem(0, 20, 40))
	a := NewItemset(CatItem(1, 0))
	if !a.SubsetOf(ab) || ab.SubsetOf(a) {
		t.Error("SubsetOf wrong")
	}
	wide := NewItemset(RangeItem(0, 0, 100))
	if !wide.Generalizes(ab) {
		t.Error("wide range itemset should generalize")
	}
	if wide.SubsetOf(ab) {
		t.Error("SubsetOf requires exact ranges")
	}
	narrow := NewItemset(RangeItem(0, 25, 30))
	if narrow.Generalizes(ab) {
		t.Error("narrower range should not generalize")
	}
}

func TestItemsetCover(t *testing.T) {
	d := testData(t)
	s := NewItemset(CatItem(1, 0), RangeItem(0, 20, 30)) // red & age in (20,30]: rows 0, 5
	cov := s.Cover(d.All())
	if cov.Len() != 2 {
		t.Errorf("cover = %v", cov.Rows())
	}
	empty := NewItemset()
	if empty.Cover(d.All()).Len() != d.Rows() {
		t.Error("empty itemset should cover everything")
	}
}

func TestItemsetVolume(t *testing.T) {
	s := NewItemset(RangeItem(0, 0, 2), RangeItem(2, 0, 3))
	if got := s.Volume(); got != 6 {
		t.Errorf("Volume = %v, want 6", got)
	}
	if got := NewItemset(CatItem(1, 0)).Volume(); got != 0 {
		t.Errorf("categorical-only volume = %v, want 0", got)
	}
	mixed := NewItemset(CatItem(1, 0), RangeItem(0, 1, 4))
	if got := mixed.Volume(); got != 3 {
		t.Errorf("mixed volume = %v, want 3", got)
	}
	inf := NewItemset(RangeItem(0, math.Inf(-1), 5))
	if !math.IsInf(inf.Volume(), 1) {
		t.Error("unbounded range should have infinite volume")
	}
}

func TestItemsetFormat(t *testing.T) {
	d := testData(t)
	s := NewItemset(CatItem(1, 0), RangeItem(0, 20, 30))
	got := s.Format(d)
	if !strings.Contains(got, "color = red") || !strings.Contains(got, " and ") {
		t.Errorf("Format = %q", got)
	}
	if NewItemset().Format(d) != "(empty)" {
		t.Error("empty format wrong")
	}
}
