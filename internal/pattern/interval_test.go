package pattern

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestIntervalContains(t *testing.T) {
	iv := Interval{Lo: 1, Hi: 3}
	if iv.Contains(1) {
		t.Error("lower bound should be exclusive")
	}
	if !iv.Contains(3) {
		t.Error("upper bound should be inclusive")
	}
	if !iv.Contains(2) || iv.Contains(3.1) || iv.Contains(0.5) {
		t.Error("Contains wrong")
	}
}

func TestFullRange(t *testing.T) {
	fr := FullRange()
	for _, x := range []float64{-1e300, 0, 1e300} {
		if !fr.Contains(x) {
			t.Errorf("FullRange should contain %v", x)
		}
	}
}

func TestIntervalUnionContiguous(t *testing.T) {
	a := Interval{Lo: 0, Hi: 1}
	b := Interval{Lo: 1, Hi: 2}
	c := Interval{Lo: 3, Hi: 4}
	if !a.Contiguous(b) || !b.Contiguous(a) {
		t.Error("a and b should be contiguous")
	}
	if a.Contiguous(c) {
		t.Error("a and c should not be contiguous")
	}
	u, ok := a.Union(b)
	if !ok || u.Lo != 0 || u.Hi != 2 {
		t.Errorf("Union = %v, %v", u, ok)
	}
	u2, ok2 := b.Union(a)
	if !ok2 || !u.Equal(u2) {
		t.Error("Union should be symmetric")
	}
	if _, ok := a.Union(c); ok {
		t.Error("non-contiguous union should fail")
	}
}

func TestIntervalEmptyWidth(t *testing.T) {
	if (Interval{Lo: 1, Hi: 1}).Empty() == false {
		t.Error("zero-width interval should be empty")
	}
	if (Interval{Lo: 1, Hi: 2}).Empty() {
		t.Error("non-degenerate interval should not be empty")
	}
	if (Interval{Lo: 1, Hi: 4}).Width() != 3 {
		t.Error("Width wrong")
	}
}

func TestIntervalString(t *testing.T) {
	s := Interval{Lo: math.Inf(-1), Hi: 2.5}.String()
	if !strings.Contains(s, "-inf") || !strings.Contains(s, "2.5") {
		t.Errorf("String = %q", s)
	}
}

// Property: the union of contiguous intervals contains exactly the points
// of either part.
func TestIntervalUnionCoverageProperty(t *testing.T) {
	f := func(loRaw, midRaw, hiRaw, xRaw float64) bool {
		vals := []float64{math.Mod(loRaw, 100), math.Mod(midRaw, 100), math.Mod(hiRaw, 100)}
		lo, mid, hi := vals[0], vals[1], vals[2]
		if lo > mid {
			lo, mid = mid, lo
		}
		if mid > hi {
			mid, hi = hi, mid
		}
		if lo > mid {
			lo, mid = mid, lo
		}
		a := Interval{Lo: lo, Hi: mid}
		b := Interval{Lo: mid, Hi: hi}
		u, ok := a.Union(b)
		if !ok {
			return false
		}
		x := math.Mod(xRaw, 200) - 100
		return u.Contains(x) == (a.Contains(x) || b.Contains(x))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
