package pattern

import (
	"sort"
	"strings"

	"sdadcs/internal/dataset"
)

// Itemset is a conjunction of items, at most one per attribute, kept sorted
// by attribute index so equal itemsets have equal canonical keys.
type Itemset struct {
	items []Item
}

// NewItemset builds an itemset from items; they are copied and sorted by
// attribute. Multiple items on the same attribute are not checked here —
// the miners never produce them — but Key would still be canonical.
func NewItemset(items ...Item) Itemset {
	cp := make([]Item, len(items))
	copy(cp, items)
	sort.Slice(cp, func(i, j int) bool { return cp[i].Attr < cp[j].Attr })
	return Itemset{items: cp}
}

// Len returns the number of items.
func (s Itemset) Len() int { return len(s.items) }

// Item returns the i-th item (in attribute order).
func (s Itemset) Item(i int) Item { return s.items[i] }

// Items returns a copy of the items.
func (s Itemset) Items() []Item {
	cp := make([]Item, len(s.items))
	copy(cp, s.items)
	return cp
}

// With returns a new itemset with the extra item added (or replacing an
// existing item on the same attribute).
func (s Itemset) With(it Item) Itemset {
	out := make([]Item, 0, len(s.items)+1)
	replaced := false
	for _, x := range s.items {
		if x.Attr == it.Attr {
			out = append(out, it)
			replaced = true
		} else {
			out = append(out, x)
		}
	}
	if !replaced {
		out = append(out, it)
	}
	return NewItemset(out...)
}

// Without returns a new itemset with the item on the given attribute
// removed.
func (s Itemset) Without(attr int) Itemset {
	out := make([]Item, 0, len(s.items))
	for _, x := range s.items {
		if x.Attr != attr {
			out = append(out, x)
		}
	}
	return Itemset{items: out}
}

// ItemOn returns the item on the given attribute, if any.
func (s Itemset) ItemOn(attr int) (Item, bool) {
	for _, x := range s.items {
		if x.Attr == attr {
			return x, true
		}
	}
	return Item{}, false
}

// Attrs returns the attribute indices used by the itemset, in order.
func (s Itemset) Attrs() []int {
	out := make([]int, len(s.items))
	for i, x := range s.items {
		out[i] = x.Attr
	}
	return out
}

// Key returns a canonical string encoding; equal itemsets (same items) have
// equal keys. Used as the lookup-table key for pruning.
func (s Itemset) Key() string {
	parts := make([]string, len(s.items))
	for i, x := range s.items {
		parts[i] = x.key()
	}
	return strings.Join(parts, "|")
}

// Equal reports whether both itemsets contain exactly the same items.
func (s Itemset) Equal(o Itemset) bool {
	if len(s.items) != len(o.items) {
		return false
	}
	for i := range s.items {
		if !s.items[i].Equal(o.items[i]) {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every item of s also appears (exactly) in o.
func (s Itemset) SubsetOf(o Itemset) bool {
	if len(s.items) > len(o.items) {
		return false
	}
	for _, x := range s.items {
		y, ok := o.ItemOn(x.Attr)
		if !ok || !x.Equal(y) {
			return false
		}
	}
	return true
}

// Generalizes reports whether s's conditions are implied by o's: every item
// of s subsumes the corresponding item of o (same attribute, wider or equal
// range / equal category). A generalization covers at least the rows its
// specialization covers.
func (s Itemset) Generalizes(o Itemset) bool {
	if len(s.items) > len(o.items) {
		return false
	}
	for _, x := range s.items {
		y, ok := o.ItemOn(x.Attr)
		if !ok || !x.Subsumes(y) {
			return false
		}
	}
	return true
}

// Matches reports whether every item holds at the given dataset row.
func (s Itemset) Matches(d *dataset.Dataset, row int) bool {
	for _, x := range s.items {
		if !x.Matches(d, row) {
			return false
		}
	}
	return true
}

// Cover returns the view rows matched by the itemset.
func (s Itemset) Cover(v dataset.View) dataset.View {
	d := v.Dataset()
	return v.Filter(func(row int) bool { return s.Matches(d, row) })
}

// Format renders the itemset as "item and item and ...".
func (s Itemset) Format(d *dataset.Dataset) string {
	if len(s.items) == 0 {
		return "(empty)"
	}
	parts := make([]string, len(s.items))
	for i, x := range s.items {
		parts[i] = x.Format(d)
	}
	return strings.Join(parts, " and ")
}

// Volume returns the product of the widths of the continuous items' ranges —
// the hyper-volume the paper sorts spaces by before merging (area for two
// continuous attributes, volume for three, …). Categorical items do not
// contribute. An itemset with no continuous items has volume 0 so that pure
// categorical itemsets sort first.
func (s Itemset) Volume() float64 {
	vol := 0.0
	first := true
	for _, x := range s.items {
		if x.Kind != dataset.Continuous {
			continue
		}
		w := x.Range.Width()
		if first {
			vol = w
			first = false
		} else {
			vol *= w
		}
	}
	return vol
}
