package pattern

import (
	"fmt"
	"sort"

	"sdadcs/internal/dataset"
)

// Contrast is a mined contrast pattern: an itemset together with its
// per-group supports, the chi-square significance of the group/pattern
// association, and the score under the driving interest measure. It is the
// common output type of SDAD-CS and all baseline algorithms.
type Contrast struct {
	Set      Itemset
	Supports Supports
	Score    float64 // value of the driving interest measure
	ChiSq    float64 // chi-square statistic of the 2xk group table
	P        float64 // p-value of ChiSq
}

// Format renders the contrast with its supports, e.g.
// "18 < age <= 26  [supp A=0.00 B=0.16]".
func (c Contrast) Format(d *dataset.Dataset) string {
	s := c.Set.Format(d) + "  [supp"
	for g := 0; g < c.Supports.Groups(); g++ {
		s += fmt.Sprintf(" %s=%.3f", d.GroupName(g), c.Supports.Supp(g))
	}
	return s + "]"
}

// SortContrasts orders contrasts by descending score, breaking ties by
// canonical key so results are deterministic.
func SortContrasts(cs []Contrast) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Score != cs[j].Score {
			return cs[i].Score > cs[j].Score
		}
		return cs[i].Set.Key() < cs[j].Set.Key()
	})
}

// TopScores returns the scores of the first k contrasts (after sorting by
// descending score); it is the series compared across algorithms in
// Table 4.
func TopScores(cs []Contrast, k int) []float64 {
	sorted := make([]Contrast, len(cs))
	copy(sorted, cs)
	SortContrasts(sorted)
	if k > len(sorted) {
		k = len(sorted)
	}
	out := make([]float64, k)
	for i := 0; i < k; i++ {
		out[i] = sorted[i].Score
	}
	return out
}

// MeanScore returns the mean of the top-k scores, 0 for empty input.
func MeanScore(cs []Contrast, k int) float64 {
	scores := TopScores(cs, k)
	if len(scores) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range scores {
		sum += s
	}
	return sum / float64(len(scores))
}

// Rescore recomputes every contrast's Score under a different measure and
// re-sorts. Table 4 compares algorithms on mean support difference even
// when SDAD-CS searched with the Surprising Measure; Rescore makes that
// comparison.
func Rescore(cs []Contrast, m Measure) []Contrast {
	out := make([]Contrast, len(cs))
	copy(out, cs)
	for i := range out {
		out[i].Score = m.Eval(out[i].Supports)
	}
	SortContrasts(out)
	return out
}
