package pattern

import (
	"math"
	"strings"
	"testing"

	"sdadcs/internal/dataset"
)

func mkContrast(attr int, lo, hi float64, c0, c1 int, score float64) Contrast {
	return Contrast{
		Set:      NewItemset(RangeItem(attr, lo, hi)),
		Supports: supports(c0, c1, 100, 100),
		Score:    score,
	}
}

func TestSortContrastsDeterministic(t *testing.T) {
	cs := []Contrast{
		mkContrast(0, 0, 1, 10, 20, 0.1),
		mkContrast(0, 1, 2, 50, 10, 0.4),
		mkContrast(1, 0, 1, 30, 10, 0.4), // tie on score, breaks by key
	}
	SortContrasts(cs)
	if cs[0].Score != 0.4 || cs[2].Score != 0.1 {
		t.Error("not sorted by descending score")
	}
	if cs[0].Set.Key() > cs[1].Set.Key() {
		t.Error("tie not broken by key")
	}
}

func TestTopScoresAndMean(t *testing.T) {
	cs := []Contrast{
		mkContrast(0, 0, 1, 0, 0, 0.5),
		mkContrast(0, 1, 2, 0, 0, 0.3),
		mkContrast(0, 2, 3, 0, 0, 0.1),
	}
	top := TopScores(cs, 2)
	if len(top) != 2 || top[0] != 0.5 || top[1] != 0.3 {
		t.Errorf("TopScores = %v", top)
	}
	if got := MeanScore(cs, 2); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("MeanScore = %v", got)
	}
	if got := MeanScore(nil, 5); got != 0 {
		t.Errorf("empty MeanScore = %v", got)
	}
	if got := TopScores(cs, 10); len(got) != 3 {
		t.Errorf("overlong k should clamp, got %d", len(got))
	}
}

func TestRescore(t *testing.T) {
	cs := []Contrast{
		{Set: NewItemset(RangeItem(0, 0, 1)), Supports: supports(90, 80, 100, 100), Score: 0},
		{Set: NewItemset(RangeItem(0, 1, 2)), Supports: supports(20, 10, 100, 100), Score: 0},
	}
	byDiff := Rescore(cs, SupportDiff)
	if math.Abs(byDiff[0].Score-0.1) > 1e-12 {
		t.Errorf("rescored diff = %v", byDiff[0].Score)
	}
	bySM := Rescore(cs, SurprisingMeasure)
	// The purer small contrast should win under the Surprising Measure.
	if bySM[0].Supports.Count[0] != 20 {
		t.Error("Rescore(SurprisingMeasure) should reorder")
	}
	// Original slice untouched.
	if cs[0].Score != 0 {
		t.Error("Rescore should not mutate input")
	}
}

func TestContrastFormat(t *testing.T) {
	d := dataset.NewBuilder("t").
		AddContinuous("x", []float64{1, 2}).
		SetGroups([]string{"A", "B"}).
		MustBuild()
	c := Contrast{
		Set:      NewItemset(RangeItem(0, 0, 1)),
		Supports: CountsToSupports([]int{1, 0}, []int{1, 1}),
	}
	got := c.Format(d)
	if !strings.Contains(got, "A=1.000") || !strings.Contains(got, "B=0.000") {
		t.Errorf("Format = %q", got)
	}
}
