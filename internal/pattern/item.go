package pattern

import (
	"fmt"
	"strconv"

	"sdadcs/internal/dataset"
)

// Item is one condition of a contrast pattern: either a categorical
// attribute taking a specific value, or a continuous attribute falling in a
// half-open range.
type Item struct {
	Attr  int          // attribute index in the dataset
	Kind  dataset.Kind // Categorical or Continuous
	Code  int          // domain code, for categorical items
	Range Interval     // value range, for continuous items
}

// CatItem builds a categorical item.
func CatItem(attr, code int) Item {
	return Item{Attr: attr, Kind: dataset.Categorical, Code: code}
}

// RangeItem builds a continuous item over (lo, hi].
func RangeItem(attr int, lo, hi float64) Item {
	return Item{Attr: attr, Kind: dataset.Continuous, Range: Interval{Lo: lo, Hi: hi}}
}

// Matches reports whether the item holds at the given dataset row.
func (it Item) Matches(d *dataset.Dataset, row int) bool {
	if it.Kind == dataset.Categorical {
		return d.CatCode(it.Attr, row) == it.Code
	}
	return it.Range.Contains(d.Cont(it.Attr, row))
}

// Equal reports exact equality.
func (it Item) Equal(o Item) bool {
	if it.Attr != o.Attr || it.Kind != o.Kind {
		return false
	}
	if it.Kind == dataset.Categorical {
		return it.Code == o.Code
	}
	return it.Range.Equal(o.Range)
}

// Subsumes reports whether this item's condition is implied by o's: same
// attribute, and o's condition is at least as specific. For categorical
// items this is equality; for continuous items it means o's range lies
// within this item's range.
func (it Item) Subsumes(o Item) bool {
	if it.Attr != o.Attr || it.Kind != o.Kind {
		return false
	}
	if it.Kind == dataset.Categorical {
		return it.Code == o.Code
	}
	return it.Range.Lo <= o.Range.Lo && o.Range.Hi <= it.Range.Hi
}

// Format renders the item against a dataset's attribute and domain names,
// e.g. `occupation = Prof-specialty` or `18 < age <= 26`.
func (it Item) Format(d *dataset.Dataset) string {
	name := d.Attr(it.Attr).Name
	if it.Kind == dataset.Categorical {
		return fmt.Sprintf("%s = %s", name, d.Domain(it.Attr)[it.Code])
	}
	return fmt.Sprintf("%s < %s <= %s",
		formatBound(it.Range.Lo), name, formatBound(it.Range.Hi))
}

// key renders a canonical, collision-free encoding of the item.
func (it Item) key() string {
	if it.Kind == dataset.Categorical {
		return strconv.Itoa(it.Attr) + "=" + strconv.Itoa(it.Code)
	}
	return strconv.Itoa(it.Attr) + "@" + keyBound(it.Range.Lo) + "," + keyBound(it.Range.Hi)
}
