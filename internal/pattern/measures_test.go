package pattern

import (
	"math"
	"testing"
	"testing/quick"

	"sdadcs/internal/dataset"
)

func supports(c0, c1, s0, s1 int) Supports {
	return CountsToSupports([]int{c0, c1}, []int{s0, s1})
}

func TestSuppAndDiff(t *testing.T) {
	s := supports(20, 10, 100, 50)
	if s.Supp(0) != 0.2 || s.Supp(1) != 0.2 {
		t.Errorf("supports = %v, %v", s.Supp(0), s.Supp(1))
	}
	if s.Diff(0, 1) != 0 {
		t.Errorf("diff = %v", s.Diff(0, 1))
	}
	s2 := supports(30, 5, 100, 50)
	if math.Abs(s2.MaxDiff()-0.2) > 1e-12 {
		t.Errorf("MaxDiff = %v, want 0.2", s2.MaxDiff())
	}
}

func TestSuppZeroSize(t *testing.T) {
	s := supports(0, 5, 0, 50)
	if s.Supp(0) != 0 {
		t.Error("zero-size group support should be 0")
	}
}

func TestPRPaperExample(t *testing.T) {
	// §4.4: PR = 1 - (48/98)/(2/2) = 0.51.
	s := supports(2, 48, 2, 98)
	want := 1 - (48.0 / 98.0)
	if math.Abs(s.PR()-want) > 1e-12 {
		t.Errorf("PR = %v, want %v", s.PR(), want)
	}
	// Pure space: only group 1 present.
	pure := supports(0, 30, 100, 100)
	if pure.PR() != 1 {
		t.Errorf("pure PR = %v, want 1", pure.PR())
	}
	// No coverage anywhere.
	none := supports(0, 0, 100, 100)
	if none.PR() != 0 {
		t.Errorf("empty PR = %v, want 0", none.PR())
	}
}

func TestSurprisingMeasureOrdersBySize(t *testing.T) {
	// §4.2: c1 (0.02 vs 0.04) and c2 (0.30 vs 0.60) have equal PR, but c2
	// must score higher on the Surprising Measure.
	c1 := supports(2, 4, 100, 100)
	c2 := supports(30, 60, 100, 100)
	if math.Abs(c1.PR()-c2.PR()) > 1e-12 {
		t.Fatalf("PRs should be equal: %v vs %v", c1.PR(), c2.PR())
	}
	if c2.Surprising() <= c1.Surprising() {
		t.Errorf("Surprising: c2=%v should beat c1=%v", c2.Surprising(), c1.Surprising())
	}
}

func TestSurprisingMeasureOrdersByPurity(t *testing.T) {
	// §4.2: c1 (0.9 vs 0.8) and c2 (0.20 vs 0.10) have equal Diff, but c2
	// is purer and must score higher.
	c1 := supports(90, 80, 100, 100)
	c2 := supports(20, 10, 100, 100)
	if math.Abs(c1.MaxDiff()-c2.MaxDiff()) > 1e-12 {
		t.Fatalf("Diffs should be equal: %v vs %v", c1.MaxDiff(), c2.MaxDiff())
	}
	if c2.Surprising() <= c1.Surprising() {
		t.Errorf("Surprising: c2=%v should beat c1=%v", c2.Surprising(), c1.Surprising())
	}
}

func TestWRAccProportionalToDiff(t *testing.T) {
	// For two equal-size groups, WRACC for group 0 is proportional to the
	// support difference — the compatibility Table 4 relies on.
	a := supports(40, 10, 100, 100)
	b := supports(80, 20, 100, 100)
	ra := a.WRAcc(0) / a.Diff(0, 1)
	rb := b.WRAcc(0) / b.Diff(0, 1)
	if a.WRAcc(0) <= 0 {
		t.Fatalf("WRAcc = %v, want > 0", a.WRAcc(0))
	}
	// The ratio depends only on group balance, not the counts themselves?
	// It does depend on coverage; just check the sign and monotonicity.
	if rb <= 0 || ra <= 0 {
		t.Errorf("WRAcc/diff ratios should be positive: %v, %v", ra, rb)
	}
	if b.WRAcc(0) <= a.WRAcc(0) {
		t.Error("larger diff with same balance should give larger WRAcc")
	}
}

func TestWRAccZeroCases(t *testing.T) {
	if supports(0, 0, 100, 100).WRAcc(0) != 0 {
		t.Error("no coverage should give WRAcc 0")
	}
	if supports(0, 0, 0, 0).WRAcc(0) != 0 {
		t.Error("empty dataset should give WRAcc 0")
	}
}

func TestLargeIn(t *testing.T) {
	s := supports(15, 2, 100, 100)
	if !s.LargeIn(0.1) {
		t.Error("supp 0.15 should be large at delta 0.1")
	}
	if s.LargeIn(0.2) {
		t.Error("supp 0.15 should not be large at delta 0.2")
	}
}

func TestTotalCount(t *testing.T) {
	if supports(3, 4, 10, 10).TotalCount() != 7 {
		t.Error("TotalCount wrong")
	}
}

func TestMeasureEvalAndString(t *testing.T) {
	s := supports(30, 60, 100, 100)
	if SupportDiff.Eval(s) != s.MaxDiff() {
		t.Error("SupportDiff eval wrong")
	}
	if PurityRatio.Eval(s) != s.PR() {
		t.Error("PurityRatio eval wrong")
	}
	if SurprisingMeasure.Eval(s) != s.Surprising() {
		t.Error("SurprisingMeasure eval wrong")
	}
	if WRAccMeasure.Eval(s) <= 0 {
		t.Error("WRAcc eval should be positive for a real contrast")
	}
	for _, m := range []Measure{SupportDiff, PurityRatio, SurprisingMeasure, WRAccMeasure} {
		if m.String() == "" {
			t.Error("measure should have a name")
		}
	}
}

func TestMeasureEvalUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown measure should panic")
		}
	}()
	Measure(99).Eval(supports(1, 1, 2, 2))
}

// Property: all measures are bounded — PR and Diff in [0,1], Surprising in
// [0,1], and PR = 1 exactly when one group's support is 0 and another's is
// positive.
func TestMeasureBoundsProperty(t *testing.T) {
	f := func(c0, c1, e0, e1 uint8) bool {
		s := supports(int(c0), int(c1), int(c0)+int(e0)+1, int(c1)+int(e1)+1)
		pr, diff, sm := s.PR(), s.MaxDiff(), s.Surprising()
		if pr < 0 || pr > 1 || diff < 0 || diff > 1 || sm < 0 || sm > 1 {
			return false
		}
		if sm > diff+1e-12 || sm > pr+1e-12 {
			return false
		}
		onePure := (c0 == 0) != (c1 == 0)
		return (pr == 1) == onePure
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSupportsOf(t *testing.T) {
	d := dataset.NewBuilder("t").
		AddContinuous("x", []float64{1, 2, 3, 4}).
		SetGroups([]string{"A", "A", "B", "B"}).
		MustBuild()
	s := NewItemset(RangeItem(0, 0, 2))
	sup := SupportsOf(s, d.All())
	if sup.Count[0] != 2 || sup.Count[1] != 0 {
		t.Errorf("counts = %v", sup.Count)
	}
	if sup.Supp(0) != 1 || sup.Supp(1) != 0 {
		t.Errorf("supports = %v, %v", sup.Supp(0), sup.Supp(1))
	}
	// On a restricted view, counts come from the view but sizes from the
	// whole dataset.
	sub := SupportsOf(s, d.Restrict([]int{0}))
	if sub.Count[0] != 1 || sub.Size[0] != 2 {
		t.Errorf("view supports = %+v", sub)
	}
}
