// Package pattern defines the vocabulary shared by every mining algorithm
// in this repository: items (a categorical attribute=value or a continuous
// attribute∈(lo,hi] range), itemsets, per-group supports, and the interest
// measures from the paper — support difference (Eq. 2), purity ratio
// (Eq. 12), Surprising Measure (Eq. 13) — plus WRACC for the Cortana-style
// subgroup discovery baseline.
//
// A Contrast couples an itemset with its per-group supports and test
// statistics; it is the common output type of SDAD-CS and all baselines, so
// the experiment harness can compare them uniformly.
package pattern
