package pattern

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"sdadcs/internal/dataset"
)

// ParseKey inverts Itemset.Key: it reconstructs the itemset encoded by a
// canonical key. Keys are exact (continuous bounds are serialized with a
// binary mantissa/exponent), so ParseKey(s.Key()) equals s bit for bit —
// the property the trace provenance index relies on when it renders
// decision chains for patterns it only knows by key.
func ParseKey(key string) (Itemset, error) {
	if key == "" {
		return NewItemset(), nil
	}
	parts := strings.Split(key, "|")
	items := make([]Item, 0, len(parts))
	for _, p := range parts {
		it, err := parseItemKey(p)
		if err != nil {
			return Itemset{}, err
		}
		items = append(items, it)
	}
	return NewItemset(items...), nil
}

// parseItemKey parses one item key: "attr=code" (categorical) or
// "attr@lo,hi" (continuous, keyBound-encoded bounds).
func parseItemKey(p string) (Item, error) {
	if i := strings.IndexByte(p, '='); i >= 0 {
		attr, err1 := strconv.Atoi(p[:i])
		code, err2 := strconv.Atoi(p[i+1:])
		if err1 != nil || err2 != nil {
			return Item{}, fmt.Errorf("pattern: bad categorical item key %q", p)
		}
		return CatItem(attr, code), nil
	}
	i := strings.IndexByte(p, '@')
	if i < 0 {
		return Item{}, fmt.Errorf("pattern: bad item key %q", p)
	}
	attr, err := strconv.Atoi(p[:i])
	if err != nil {
		return Item{}, fmt.Errorf("pattern: bad item key %q: %v", p, err)
	}
	rest := p[i+1:]
	j := strings.IndexByte(rest, ',')
	if j < 0 {
		return Item{}, fmt.Errorf("pattern: bad range item key %q", p)
	}
	lo, err := parseKeyBound(rest[:j])
	if err != nil {
		return Item{}, fmt.Errorf("pattern: bad range lo in %q: %v", p, err)
	}
	hi, err := parseKeyBound(rest[j+1:])
	if err != nil {
		return Item{}, fmt.Errorf("pattern: bad range hi in %q: %v", p, err)
	}
	return Item{Attr: attr, Kind: dataset.Continuous, Range: Interval{Lo: lo, Hi: hi}}, nil
}

// parseKeyBound inverts keyBound: "-inf"/"inf" or strconv's 'b' format
// ("<mantissa>p<exponent>", decimal mantissa, base-2 exponent) — which
// strconv.ParseFloat does not accept, so the split is done by hand.
func parseKeyBound(s string) (float64, error) {
	switch s {
	case "-inf":
		return math.Inf(-1), nil
	case "inf":
		return math.Inf(1), nil
	}
	i := strings.IndexByte(s, 'p')
	if i < 0 {
		// Plain decimal (0 is formatted as "0").
		return strconv.ParseFloat(s, 64)
	}
	mant, err := strconv.ParseInt(s[:i], 10, 64)
	if err != nil {
		return 0, err
	}
	exp, err := strconv.Atoi(s[i+1:])
	if err != nil {
		return 0, err
	}
	return math.Ldexp(float64(mant), exp), nil
}
