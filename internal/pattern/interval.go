package pattern

import (
	"fmt"
	"math"
	"strconv"
)

// Interval is a half-open range (Lo, Hi] over a continuous attribute — the
// convention the paper's contrasts use ("18 < Age <= 26"). Lo may be -Inf
// and Hi may be +Inf for unbounded ends.
type Interval struct {
	Lo, Hi float64
}

// FullRange is the interval covering every real value.
func FullRange() Interval {
	return Interval{Lo: math.Inf(-1), Hi: math.Inf(1)}
}

// Contains reports whether x lies in (Lo, Hi].
func (iv Interval) Contains(x float64) bool {
	return x > iv.Lo && x <= iv.Hi
}

// Width returns Hi - Lo (may be +Inf).
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Empty reports whether the interval contains no points.
func (iv Interval) Empty() bool { return iv.Hi <= iv.Lo }

// Contiguous reports whether two intervals share exactly one boundary, i.e.
// one ends where the other begins. Contiguous intervals can be merged
// without gaps or overlaps.
func (iv Interval) Contiguous(o Interval) bool {
	return iv.Hi == o.Lo || o.Hi == iv.Lo
}

// Union merges two contiguous intervals. ok is false when the intervals
// are not contiguous.
func (iv Interval) Union(o Interval) (Interval, bool) {
	switch {
	case iv.Hi == o.Lo:
		return Interval{Lo: iv.Lo, Hi: o.Hi}, true
	case o.Hi == iv.Lo:
		return Interval{Lo: o.Lo, Hi: iv.Hi}, true
	default:
		return Interval{}, false
	}
}

// Equal reports exact equality of the bounds.
func (iv Interval) Equal(o Interval) bool {
	return iv.Lo == o.Lo && iv.Hi == o.Hi
}

// String renders the interval as "(lo, hi]".
func (iv Interval) String() string {
	return fmt.Sprintf("(%s, %s]", formatBound(iv.Lo), formatBound(iv.Hi))
}

func formatBound(x float64) string {
	switch {
	case math.IsInf(x, -1):
		return "-inf"
	case math.IsInf(x, 1):
		return "inf"
	default:
		return strconv.FormatFloat(x, 'g', 6, 64)
	}
}

// keyBound renders a bound at full precision for canonical itemset keys.
func keyBound(x float64) string {
	switch {
	case math.IsInf(x, -1):
		return "-inf"
	case math.IsInf(x, 1):
		return "inf"
	default:
		return strconv.FormatFloat(x, 'b', -1, 64)
	}
}
