package pattern

import (
	"fmt"

	"sdadcs/internal/dataset"
)

// Supports holds per-group counts of an itemset together with the group
// sizes of the dataset it was measured on.
type Supports struct {
	Count []int // rows containing the itemset, per group
	Size  []int // total rows, per group
}

// SupportsOf measures an itemset's per-group supports over a view. The
// group sizes are taken from the full dataset (support is defined relative
// to |g_k|, Eq. 1), while counts come from the view.
func SupportsOf(s Itemset, v dataset.View) Supports {
	d := v.Dataset()
	sup := Supports{
		Count: s.Cover(v).GroupCounts(),
		Size:  d.GroupSizes(),
	}
	return sup
}

// CountsToSupports wraps raw counts (e.g. computed incrementally by a miner)
// into a Supports.
func CountsToSupports(count, size []int) Supports {
	return Supports{Count: count, Size: size}
}

// Groups returns the number of groups.
func (s Supports) Groups() int { return len(s.Count) }

// Supp returns the support of the itemset in group g (Eq. 1).
func (s Supports) Supp(g int) float64 {
	if s.Size[g] == 0 {
		return 0
	}
	return float64(s.Count[g]) / float64(s.Size[g])
}

// Diff returns supp_i - supp_j (Eq. 2).
func (s Supports) Diff(i, j int) float64 { return s.Supp(i) - s.Supp(j) }

// MaxDiff returns the largest support difference over all ordered group
// pairs, i.e. max(supp) - min(supp). With two groups this is |supp_0 -
// supp_1|.
func (s Supports) MaxDiff() float64 {
	lo, hi := s.Supp(0), s.Supp(0)
	for g := 1; g < s.Groups(); g++ {
		v := s.Supp(g)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}

// PR returns the purity ratio (Eq. 12): 1 - min(supp)/max(supp), where the
// min and max range over groups. PR near 1 means the pattern's coverage is
// dominated by one group. When no group contains the pattern, PR is 0.
func (s Supports) PR() float64 {
	lo, hi := s.Supp(0), s.Supp(0)
	for g := 1; g < s.Groups(); g++ {
		v := s.Supp(g)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == 0 {
		return 0
	}
	return 1 - lo/hi
}

// Surprising returns the Surprising Measure (Eq. 13): PR × MaxDiff.
func (s Supports) Surprising() float64 { return s.PR() * s.MaxDiff() }

// WRAcc returns the weighted relative accuracy of the pattern for group g
// against the rest: cover(c)/N × (P(g|c) − P(g)). The paper notes WRACC is
// directly proportional to support difference for two groups (Novak et
// al. 2009), which Table 4 relies on.
func (s Supports) WRAcc(g int) float64 {
	total := 0
	covered := 0
	for i := range s.Count {
		total += s.Size[i]
		covered += s.Count[i]
	}
	if total == 0 || covered == 0 {
		return 0
	}
	coverRate := float64(covered) / float64(total)
	conf := float64(s.Count[g]) / float64(covered)
	prior := float64(s.Size[g]) / float64(total)
	return coverRate * (conf - prior)
}

// GrowthRate returns the emerging-pattern growth rate of Dong & Li —
// max(supp)/min(supp) over the groups — squashed to [0,1] as GR/(GR+1) so
// the score stays finite and heap-orderable: a jumping emerging pattern
// (min supp = 0, max supp > 0) scores exactly 1, equal supports score 1/2,
// and a pattern covered by no group scores 0. The squash x ↦ x/(x+1) is
// strictly monotone, so ranking by the squashed score ranks by the raw
// growth rate.
func (s Supports) GrowthRate() float64 {
	lo, hi := s.Supp(0), s.Supp(0)
	for g := 1; g < s.Groups(); g++ {
		v := s.Supp(g)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == 0 {
		return 0
	}
	if lo == 0 {
		return 1 // jumping emerging pattern: infinite growth rate
	}
	gr := hi / lo
	return gr / (gr + 1)
}

// ConfidenceSpread returns the SCR-style contrasting-rules score: the
// spread max_g conf_g − min_g conf_g of the rule confidences
// conf_g = P(group g | pattern) = Count[g]/TotalCount. A pattern whose
// coverage splits evenly across groups scores near 0; one owned entirely
// by a single group scores 1. When nothing is covered the spread is 0.
func (s Supports) ConfidenceSpread() float64 {
	covered := s.TotalCount()
	if covered == 0 {
		return 0
	}
	lo, hi := 0.0, 0.0
	for g := range s.Count {
		conf := float64(s.Count[g]) / float64(covered)
		if g == 0 || conf < lo {
			lo = conf
		}
		if g == 0 || conf > hi {
			hi = conf
		}
	}
	return hi - lo
}

// TotalCount returns the pattern's row count summed over groups.
func (s Supports) TotalCount() int {
	n := 0
	for _, c := range s.Count {
		n += c
	}
	return n
}

// LargeIn reports whether the support exceeds delta in at least one group —
// the minimum deviation size condition.
func (s Supports) LargeIn(delta float64) bool {
	for g := range s.Count {
		if s.Supp(g) > delta {
			return true
		}
	}
	return false
}

// Measure selects the interest measure that drives the search.
type Measure int

const (
	// SupportDiff scores a pattern by its largest support difference
	// between groups (the paper's default for the quantitative analysis).
	SupportDiff Measure = iota
	// PurityRatio scores by PR (Eq. 12).
	PurityRatio
	// SurprisingMeasure scores by PR × Diff (Eq. 13).
	SurprisingMeasure
	// WRAccMeasure scores by the best per-group WRACC (used by the
	// subgroup discovery baseline).
	WRAccMeasure
	// GrowthRateMeasure scores by the squashed emerging-pattern growth
	// rate GR/(GR+1) (Dong & Li 1999; the Chen et al. survey's family).
	GrowthRateMeasure
	// ContrastRuleMeasure scores by the SCR-style contrasting-rules
	// confidence spread max_g conf_g − min_g conf_g.
	ContrastRuleMeasure

	// numMeasures bounds the enum; keep it last.
	numMeasures
)

// MaxMeasure is the largest valid Measure value (for range validation).
const MaxMeasure = numMeasures - 1

// String names the measure.
func (m Measure) String() string {
	switch m {
	case SupportDiff:
		return "support-difference"
	case PurityRatio:
		return "purity-ratio"
	case SurprisingMeasure:
		return "surprising-measure"
	case WRAccMeasure:
		return "wracc"
	case GrowthRateMeasure:
		return "growth-rate"
	case ContrastRuleMeasure:
		return "contrast-rules"
	default:
		return fmt.Sprintf("Measure(%d)", int(m))
	}
}

// Eval computes the measure's value from supports.
func (m Measure) Eval(s Supports) float64 {
	switch m {
	case SupportDiff:
		return s.MaxDiff()
	case PurityRatio:
		return s.PR()
	case SurprisingMeasure:
		return s.Surprising()
	case WRAccMeasure:
		best := 0.0
		for g := 0; g < s.Groups(); g++ {
			if w := s.WRAcc(g); w > best {
				best = w
			}
		}
		return best
	case GrowthRateMeasure:
		return s.GrowthRate()
	case ContrastRuleMeasure:
		return s.ConfidenceSpread()
	default:
		panic("pattern: unknown measure")
	}
}

// measureEntry is one row of the interest-measure registry: the wire name
// (accepted by the serve API and cmd/contrast -measure), the measure, and
// a one-line description for listings.
type measureEntry struct {
	Name    string
	Measure Measure
	Desc    string
}

// measureTable is the registry, in enum order. The long String() names are
// accepted as aliases by MeasureByName.
var measureTable = []measureEntry{
	{"diff", SupportDiff, "largest between-group support difference (Eq. 2)"},
	{"pr", PurityRatio, "purity ratio 1 − min(supp)/max(supp) (Eq. 12)"},
	{"surprising", SurprisingMeasure, "PR × Diff (Eq. 13, the paper's qualitative default)"},
	{"wracc", WRAccMeasure, "best per-group weighted relative accuracy"},
	{"growth", GrowthRateMeasure, "emerging-pattern growth rate, squashed to GR/(GR+1)"},
	{"contrast-rules", ContrastRuleMeasure, "SCR-style confidence spread max conf − min conf"},
}

// MeasureByName resolves a measure by its wire name ("diff", "pr",
// "surprising", "wracc", "growth", "contrast-rules") or its long String()
// name ("support-difference", …). ok is false for unknown names.
func MeasureByName(name string) (Measure, bool) {
	for _, e := range measureTable {
		if name == e.Name || name == e.Measure.String() {
			return e.Measure, true
		}
	}
	return 0, false
}

// MeasureNames returns the registered wire names in enum order — the
// vocabulary CLI flags and API fields advertise.
func MeasureNames() []string {
	out := make([]string, len(measureTable))
	for i, e := range measureTable {
		out[i] = e.Name
	}
	return out
}

// MeasureDescription returns the registry's one-line description of a
// measure ("" for out-of-range values).
func MeasureDescription(m Measure) string {
	for _, e := range measureTable {
		if e.Measure == m {
			return e.Desc
		}
	}
	return ""
}
