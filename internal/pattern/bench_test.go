package pattern

import (
	"math/rand"
	"strconv"
	"testing"

	"sdadcs/internal/dataset"
)

func benchDataset(n int) *dataset.Dataset {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, n)
	c := make([]string, n)
	g := make([]string, n)
	for i := range x {
		x[i] = rng.Float64()
		c[i] = "v" + strconv.Itoa(rng.Intn(4))
		g[i] = "g" + strconv.Itoa(i%2)
	}
	return dataset.NewBuilder("bench").
		AddContinuous("x", x).
		AddCategorical("c", c).
		SetGroups(g).
		MustBuild()
}

func BenchmarkItemsetKey(b *testing.B) {
	s := NewItemset(
		RangeItem(0, 0.25, 0.75),
		CatItem(1, 2),
		RangeItem(4, -1.5, 3.25),
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Key()
	}
}

func BenchmarkSupportsOf(b *testing.B) {
	d := benchDataset(10000)
	s := NewItemset(RangeItem(0, 0.25, 0.75), CatItem(1, 2))
	v := d.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SupportsOf(s, v)
	}
}

func BenchmarkMeasureEval(b *testing.B) {
	s := CountsToSupports([]int{340, 120}, []int{1000, 800})
	for i := 0; i < b.N; i++ {
		SurprisingMeasure.Eval(s)
	}
}

func BenchmarkSortContrasts(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	base := make([]Contrast, 200)
	for i := range base {
		base[i] = Contrast{
			Set:   NewItemset(RangeItem(0, float64(i), float64(i+1))),
			Score: rng.Float64(),
		}
	}
	cs := make([]Contrast, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(cs, base)
		SortContrasts(cs)
	}
}
