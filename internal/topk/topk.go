// Package topk maintains the best-k contrast list that drives the miner's
// dynamic minimum-support threshold: until k contrasts have been found, the
// threshold is the user's δ; afterwards it is the k-th best score, so the
// optimistic-estimate pruning tightens as better contrasts appear (§3,
// "Top-k pattern mining").
package topk

import (
	"container/heap"
	"math"

	"sdadcs/internal/metrics"
	"sdadcs/internal/pattern"
	"sdadcs/internal/trace"
)

// List is a bounded best-k collection of contrasts keyed by itemset, with a
// dynamic admission threshold. The zero value is not usable; call New.
type List struct {
	k     int
	delta float64
	h     scoreHeap
	keys  map[string]int // itemset key -> heap index
	rec   *metrics.Recorder
	tr    *trace.Tracer
}

// New returns a list keeping the k highest-scoring contrasts, with delta as
// the threshold floor while the list is not yet full. k <= 0 means
// unbounded (the threshold stays at delta).
func New(k int, delta float64) *List {
	return &List{k: k, delta: delta, keys: make(map[string]int)}
}

// WithRecorder attaches an instrumentation sink that observes admission-
// threshold changes — the dynamic tightening the §3 top-k strategy feeds
// into the optimistic-estimate pruning. nil (the default) disables the
// observation. Returns the list for chaining.
func (l *List) WithRecorder(r *metrics.Recorder) *List {
	l.rec = r
	return l
}

// WithTracer attaches a decision-event sink that records every list
// transition — admissions, replacements, evictions and rejections — with
// the threshold before and after (the provenance of "why is this pattern
// not in the top-k"). nil (the default) disables the events. Returns the
// list for chaining.
func (l *List) WithTracer(t *trace.Tracer) *List {
	l.tr = t
	return l
}

// Len returns the number of stored contrasts.
func (l *List) Len() int { return len(l.h.items) }

// K returns the capacity (0 = unbounded).
func (l *List) K() int { return l.k }

// Threshold returns the k-th best score once the list is full, and −Inf
// before that (and always for an unbounded list). The threshold is what
// the miner's optimistic-estimate pruning compares against, so its only
// sound values are "the score a candidate must beat to enter the list"
// (the root of the full heap) or "nothing to beat yet" (−Inf). It used to
// return δ while filling, conflating the admission floor with the dynamic
// threshold; the floor is a property of Add, not of the pruning bound —
// and for an unbounded list there is never anything to beat, which is what
// lets the correctness oracle disable recursion pruning entirely.
//
// Monotonicity: while only Add is called, the threshold never decreases —
// an eviction replaces the root with a strictly better entry. Remove (the
// merge phase) legitimately lowers it by reopening a slot.
func (l *List) Threshold() float64 {
	if l.k <= 0 || len(l.h.items) < l.k {
		return math.Inf(-1)
	}
	return l.h.items[0].Score
}

// Add offers a contrast. A contrast is accepted if its score exceeds the
// current threshold, or if the list still has room and the score is at
// least δ. A contrast whose itemset is already present replaces the stored
// entry when its score is higher. It reports whether the list changed.
func (l *List) Add(c pattern.Contrast) bool {
	if l.rec == nil && l.tr == nil {
		changed, _, _ := l.add(c)
		return changed
	}
	before := l.Threshold()
	changed, evicted, verdict := l.add(c)
	after := l.Threshold()
	if l.rec != nil && changed && after != before {
		l.rec.ThresholdUpdate(after)
	}
	if l.tr.Enabled() {
		if verdict == "rejected" {
			// V2 carries the score that failed admission (see trace.KindTopK).
			l.tr.TopK(c.Set.Key(), verdict, before, c.Score)
		} else {
			l.tr.TopK(c.Set.Key(), verdict, before, after)
		}
		if evicted != "" {
			l.tr.TopK(evicted, "evicted", before, after)
		}
	}
	return changed
}

// add performs the list transition and names it in the KindTopK verdict
// vocabulary; evicted is the key pushed out to make room (if any).
func (l *List) add(c pattern.Contrast) (changed bool, evicted, verdict string) {
	// A NaN score is unordered against every threshold comparison below;
	// admitting one would corrupt the heap invariant and poison the
	// dynamic threshold. NaN contrasts are never admissible.
	if math.IsNaN(c.Score) {
		return false, "", "rejected"
	}
	key := c.Set.Key()
	if idx, ok := l.keys[key]; ok {
		if c.Score <= l.h.items[idx].Score {
			return false, "", "rejected"
		}
		l.h.items[idx] = entry{Contrast: c, key: key}
		heap.Fix(&l.h, idx)
		l.reindex()
		return true, "", "replaced"
	}
	if l.k > 0 && len(l.h.items) >= l.k {
		// Admit iff the candidate beats the worst stored entry under the
		// same total order the heap maintains: score descending, then key
		// ascending. Breaking score ties on the key makes the final list
		// content independent of arrival order (the Workers=1 vs N
		// metamorphic invariant); a plain score comparison let whichever
		// tied contrast arrived first keep the slot.
		root := &l.h.items[0]
		if c.Score < root.Score || (c.Score == root.Score && key >= root.key) {
			return false, "", "rejected"
		}
		evicted = l.h.items[0].key
		l.h.items[0] = entry{Contrast: c, key: key}
		delete(l.keys, evicted)
		l.keys[key] = 0
		heap.Fix(&l.h, 0)
		l.reindex()
		return true, evicted, "admitted"
	}
	if c.Score < l.delta {
		return false, "", "rejected"
	}
	heap.Push(&l.h, entry{Contrast: c, key: key})
	l.reindex()
	return true, "", "admitted"
}

// reindex rebuilds the key -> heap index map after heap movement. The heap
// is small (k ≤ a few hundred), so a full rebuild keeps the code simple.
func (l *List) reindex() {
	for i, e := range l.h.items {
		l.keys[e.key] = i
	}
}

// Remove deletes the contrast with the given itemset key, reporting whether
// it was present. Used by the merging phase, which replaces specialized
// spaces with their union.
func (l *List) Remove(key string) bool {
	idx, ok := l.keys[key]
	if !ok {
		return false
	}
	heap.Remove(&l.h, idx)
	delete(l.keys, key)
	l.reindex()
	return true
}

// Get returns the stored contrast for an itemset key.
func (l *List) Get(key string) (pattern.Contrast, bool) {
	if idx, ok := l.keys[key]; ok {
		return l.h.items[idx].Contrast, true
	}
	return pattern.Contrast{}, false
}

// Contrasts returns the stored contrasts sorted by descending score
// (deterministic: ties break on itemset key).
func (l *List) Contrasts() []pattern.Contrast {
	out := make([]pattern.Contrast, len(l.h.items))
	for i, e := range l.h.items {
		out[i] = e.Contrast
	}
	pattern.SortContrasts(out)
	return out
}

type entry struct {
	pattern.Contrast
	key string
}

// scoreHeap is a min-heap on score (worst contrast at the root) with
// deterministic tie-breaking on the itemset key.
type scoreHeap struct {
	items []entry
}

func (h scoreHeap) Len() int { return len(h.items) }
func (h scoreHeap) Less(i, j int) bool {
	if h.items[i].Score != h.items[j].Score {
		return h.items[i].Score < h.items[j].Score
	}
	return h.items[i].key > h.items[j].key
}
func (h scoreHeap) Swap(i, j int)       { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *scoreHeap) Push(x interface{}) { h.items = append(h.items, x.(entry)) }
func (h *scoreHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}
