package topk

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"sdadcs/internal/metrics"
	"sdadcs/internal/pattern"
)

func mk(attr int, lo, hi, score float64) pattern.Contrast {
	return pattern.Contrast{
		Set:      pattern.NewItemset(pattern.RangeItem(attr, lo, hi)),
		Supports: pattern.CountsToSupports([]int{1, 0}, []int{10, 10}),
		Score:    score,
	}
}

func TestThresholdBeforeFull(t *testing.T) {
	// While the list is not yet full there is nothing a candidate must
	// beat, so the threshold is -Inf — NOT delta (delta is the admission
	// floor, a property of Add) and especially not 0, which would make the
	// optimistic-estimate pruning cut negative- and zero-scored subtrees
	// before k contrasts have even been found.
	l := New(3, 0.1)
	if !math.IsInf(l.Threshold(), -1) {
		t.Errorf("empty threshold = %v, want -Inf", l.Threshold())
	}
	l.Add(mk(0, 0, 1, 0.5))
	l.Add(mk(0, 1, 2, 0.3))
	if !math.IsInf(l.Threshold(), -1) {
		t.Errorf("partial threshold = %v, want -Inf", l.Threshold())
	}
	l.Add(mk(0, 2, 3, 0.7))
	if l.Threshold() != 0.3 {
		t.Errorf("full threshold = %v, want 0.3 (k-th best)", l.Threshold())
	}
}

func TestAddBelowDeltaRejected(t *testing.T) {
	l := New(3, 0.1)
	if l.Add(mk(0, 0, 1, 0.05)) {
		t.Error("score below delta should be rejected")
	}
	if l.Len() != 0 {
		t.Error("rejected contrast stored")
	}
}

func TestEviction(t *testing.T) {
	l := New(2, 0.0)
	l.Add(mk(0, 0, 1, 0.2))
	l.Add(mk(0, 1, 2, 0.4))
	if !l.Add(mk(0, 2, 3, 0.6)) {
		t.Error("better contrast should evict")
	}
	if l.Len() != 2 {
		t.Errorf("Len = %d, want 2", l.Len())
	}
	cs := l.Contrasts()
	if cs[0].Score != 0.6 || cs[1].Score != 0.4 {
		t.Errorf("scores = %v, %v", cs[0].Score, cs[1].Score)
	}
	if l.Add(mk(0, 3, 4, 0.3)) {
		t.Error("worse-than-threshold contrast should be rejected when full")
	}
}

func TestDuplicateKeyReplaces(t *testing.T) {
	l := New(5, 0.0)
	c := mk(0, 0, 1, 0.2)
	l.Add(c)
	c.Score = 0.5
	if !l.Add(c) {
		t.Error("higher score for same itemset should replace")
	}
	if l.Len() != 1 {
		t.Errorf("Len = %d, want 1 (replacement)", l.Len())
	}
	got, ok := l.Get(c.Set.Key())
	if !ok || got.Score != 0.5 {
		t.Error("Get after replace wrong")
	}
	c.Score = 0.1
	if l.Add(c) {
		t.Error("lower score for same itemset should be ignored")
	}
}

func TestRemove(t *testing.T) {
	l := New(5, 0.0)
	a := mk(0, 0, 1, 0.2)
	b := mk(0, 1, 2, 0.4)
	l.Add(a)
	l.Add(b)
	if !l.Remove(a.Set.Key()) {
		t.Error("Remove existing failed")
	}
	if l.Remove(a.Set.Key()) {
		t.Error("double remove should report false")
	}
	if l.Len() != 1 {
		t.Errorf("Len = %d after remove", l.Len())
	}
	if _, ok := l.Get(a.Set.Key()); ok {
		t.Error("removed key still gettable")
	}
	if _, ok := l.Get(b.Set.Key()); !ok {
		t.Error("remaining key lost after remove")
	}
}

func TestUnboundedList(t *testing.T) {
	l := New(0, 0.1)
	for i := 0; i < 100; i++ {
		l.Add(mk(0, float64(i), float64(i+1), 0.2))
	}
	if l.Len() != 100 {
		t.Errorf("unbounded Len = %d", l.Len())
	}
	if !math.IsInf(l.Threshold(), -1) {
		t.Errorf("unbounded threshold = %v, want -Inf (never anything to beat)", l.Threshold())
	}
}

// Property: after any sequence of inserts, the list holds exactly the k
// highest-scoring distinct itemsets (scores at or above delta), and the
// threshold equals the worst stored score when full.
func TestTopKMatchesSortProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 5
		l := New(k, 0.1)
		best := map[string]float64{}
		for i := 0; i < int(n); i++ {
			attr := rng.Intn(3)
			lo := float64(rng.Intn(10))
			score := rng.Float64()
			c := mk(attr, lo, lo+1, score)
			l.Add(c)
			key := c.Set.Key()
			if score >= 0.1 && score > best[key] {
				if _, seen := best[key]; !seen || score > best[key] {
					best[key] = score
				}
			}
		}
		var scores []float64
		for _, s := range best {
			scores = append(scores, s)
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
		if len(scores) > k {
			scores = scores[:k]
		}
		got := l.Contrasts()
		if len(got) != len(scores) {
			return false
		}
		for i := range scores {
			if got[i].Score != scores[i] {
				return false
			}
		}
		if len(got) == k && l.Threshold() != got[k-1].Score {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestContrastsDeterministicOrder(t *testing.T) {
	build := func(order []int) []pattern.Contrast {
		l := New(4, 0.0)
		for _, i := range order {
			l.Add(mk(0, float64(i), float64(i+1), 0.5)) // all tied scores
		}
		return l.Contrasts()
	}
	a := build([]int{0, 1, 2, 3})
	b := build([]int{3, 1, 0, 2})
	for i := range a {
		if a[i].Set.Key() != b[i].Set.Key() {
			t.Fatalf("order differs at %d: %s vs %s", i, a[i].Set.Key(), b[i].Set.Key())
		}
	}
	_ = fmt.Sprint(a)
}

func TestThresholdUpdateRecording(t *testing.T) {
	rec := metrics.New()
	l := New(2, 0.1).WithRecorder(rec)
	l.Add(mk(0, 0, 1, 0.5))
	l.Add(mk(1, 0, 1, 0.6))
	if got := rec.Snapshot().ThresholdUpdates; got == 0 {
		t.Fatal("no threshold update when list filled")
	}
	before := rec.Snapshot().ThresholdUpdates
	// Rejected contrast: threshold unchanged, no update recorded.
	l.Add(mk(2, 0, 1, 0.2))
	if got := rec.Snapshot().ThresholdUpdates; got != before {
		t.Errorf("rejected Add recorded an update (%d -> %d)", before, got)
	}
	// Eviction raises the k-th best: update recorded with the new value.
	l.Add(mk(3, 0, 1, 0.9))
	s := rec.Snapshot()
	if s.ThresholdUpdates != before+1 {
		t.Errorf("eviction updates = %d, want %d", s.ThresholdUpdates, before+1)
	}
	if s.Threshold != l.Threshold() {
		t.Errorf("recorded threshold %v != list threshold %v", s.Threshold, l.Threshold())
	}
}

func TestNilRecorderList(t *testing.T) {
	l := New(2, 0.1).WithRecorder(nil)
	if !l.Add(mk(0, 0, 1, 0.5)) {
		t.Fatal("add failed with nil recorder")
	}
}

// Regression (differential oracle, Workers=1 vs 8 invariant): when a
// candidate ties the worst stored score at a full list, admission used to
// depend on arrival order — whichever tied contrast was offered first kept
// the slot, so parallel mining (which merges per-level results in node
// order, not discovery order) could return a different set than serial
// mining. The tie must break on the itemset key, the same total order
// Contrasts() sorts by.
func TestEvictionTieBreaksOnKey(t *testing.T) {
	a := mk(0, 0, 1, 0.5) // key "0@..." — smaller
	b := mk(1, 0, 1, 0.5) // key "1@..." — larger
	if a.Set.Key() >= b.Set.Key() {
		t.Fatalf("fixture keys not ordered: %q vs %q", a.Set.Key(), b.Set.Key())
	}
	for name, order := range map[string][2]pattern.Contrast{
		"small-key-first": {a, b},
		"large-key-first": {b, a},
	} {
		l := New(1, 0.0)
		l.Add(order[0])
		l.Add(order[1])
		cs := l.Contrasts()
		if len(cs) != 1 || cs[0].Set.Key() != a.Set.Key() {
			t.Errorf("%s: kept %q, want the smaller key %q", name, cs[0].Set.Key(), a.Set.Key())
		}
	}
}

// Regression: NaN scores must never enter the list. A NaN at the heap
// root makes every subsequent threshold comparison false, silently
// freezing the dynamic threshold and corrupting the heap order.
func TestNaNScoreRejected(t *testing.T) {
	l := New(3, 0.0)
	if l.Add(mk(0, 0, 1, math.NaN())) {
		t.Fatal("NaN score admitted")
	}
	if l.Len() != 0 {
		t.Fatalf("Len = %d after NaN add", l.Len())
	}
	l.Add(mk(0, 0, 1, 0.4))
	c := mk(0, 0, 1, math.NaN())
	if l.Add(c) {
		t.Fatal("NaN replacement admitted")
	}
	if got, _ := l.Get(c.Set.Key()); math.IsNaN(got.Score) {
		t.Fatal("stored score replaced by NaN")
	}
}

// Table-driven admit/evict/remove sequences: after every operation the
// threshold must be -Inf while Len() < k and the worst stored score when
// full, and it must never decrease across a run of Adds (evictions only
// tighten it). Remove legitimately reopens a slot and drops it back to
// -Inf.
func TestThresholdSequences(t *testing.T) {
	type op struct {
		verb  string // "add" or "remove"
		attr  int
		score float64
		want  float64 // expected threshold after the op; -Inf encoded below
	}
	ninf := math.Inf(-1)
	cases := []struct {
		name string
		k    int
		ops  []op
	}{
		{
			name: "fill then evict",
			k:    2,
			ops: []op{
				{"add", 0, 0.3, ninf},
				{"add", 1, 0.5, 0.3},
				{"add", 2, 0.4, 0.4}, // evicts 0.3
				{"add", 3, 0.2, 0.4}, // rejected; threshold unchanged
				{"add", 4, 0.9, 0.5}, // evicts 0.4
			},
		},
		{
			name: "remove reopens slot",
			k:    2,
			ops: []op{
				{"add", 0, 0.3, ninf},
				{"add", 1, 0.5, 0.3},
				{"remove", 0, 0, ninf}, // below capacity again
				{"add", 2, 0.25, 0.25}, // refills to k; threshold = worst stored
				{"add", 3, 0.6, 0.5},   // evicts 0.25
			},
		},
		{
			name: "unbounded stays at -Inf",
			k:    0,
			ops: []op{
				{"add", 0, 0.3, ninf},
				{"add", 1, 0.9, ninf},
				{"add", 2, 0.1, ninf},
			},
		},
		{
			name: "tied evictions never lower threshold",
			k:    1,
			ops: []op{
				{"add", 1, 0.5, 0.5},
				{"add", 0, 0.5, 0.5}, // tie-admitted on key; threshold holds
				{"add", 2, 0.5, 0.5}, // tie-rejected on key; threshold holds
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := New(tc.k, 0.0)
			prev := math.Inf(-1)
			for i, o := range tc.ops {
				switch o.verb {
				case "add":
					l.Add(mk(o.attr, 0, 1, o.score))
					if l.Threshold() < prev {
						t.Fatalf("op %d: threshold moved down %v -> %v after add", i, prev, l.Threshold())
					}
				case "remove":
					l.Remove(mk(o.attr, 0, 1, 0).Set.Key())
				}
				got := l.Threshold()
				if got != o.want && !(math.IsInf(o.want, -1) && math.IsInf(got, -1)) {
					t.Fatalf("op %d (%s attr=%d score=%v): threshold = %v, want %v",
						i, o.verb, o.attr, o.score, got, o.want)
				}
				prev = got
			}
		})
	}
}

// Property: the final list content is invariant under the arrival order of
// any candidate multiset (distinct keys, possibly tied scores).
func TestOrderInvarianceProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var cs []pattern.Contrast
		for i := 0; i < int(n%20)+2; i++ {
			// Coarse scores force ties.
			cs = append(cs, mk(i, 0, 1, float64(rng.Intn(4))/4))
		}
		run := func(perm []int) string {
			l := New(3, 0.0)
			for _, i := range perm {
				l.Add(cs[i])
			}
			var sig string
			for _, c := range l.Contrasts() {
				sig += fmt.Sprintf("%s=%v;", c.Set.Key(), c.Score)
			}
			return sig
		}
		base := make([]int, len(cs))
		for i := range base {
			base[i] = i
		}
		want := run(base)
		for trial := 0; trial < 5; trial++ {
			perm := rng.Perm(len(cs))
			if got := run(perm); got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
