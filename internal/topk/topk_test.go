package topk

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"sdadcs/internal/metrics"
	"sdadcs/internal/pattern"
)

func mk(attr int, lo, hi, score float64) pattern.Contrast {
	return pattern.Contrast{
		Set:      pattern.NewItemset(pattern.RangeItem(attr, lo, hi)),
		Supports: pattern.CountsToSupports([]int{1, 0}, []int{10, 10}),
		Score:    score,
	}
}

func TestThresholdBeforeFull(t *testing.T) {
	l := New(3, 0.1)
	if l.Threshold() != 0.1 {
		t.Errorf("empty threshold = %v, want delta", l.Threshold())
	}
	l.Add(mk(0, 0, 1, 0.5))
	l.Add(mk(0, 1, 2, 0.3))
	if l.Threshold() != 0.1 {
		t.Errorf("partial threshold = %v, want delta", l.Threshold())
	}
	l.Add(mk(0, 2, 3, 0.7))
	if l.Threshold() != 0.3 {
		t.Errorf("full threshold = %v, want 0.3 (k-th best)", l.Threshold())
	}
}

func TestAddBelowDeltaRejected(t *testing.T) {
	l := New(3, 0.1)
	if l.Add(mk(0, 0, 1, 0.05)) {
		t.Error("score below delta should be rejected")
	}
	if l.Len() != 0 {
		t.Error("rejected contrast stored")
	}
}

func TestEviction(t *testing.T) {
	l := New(2, 0.0)
	l.Add(mk(0, 0, 1, 0.2))
	l.Add(mk(0, 1, 2, 0.4))
	if !l.Add(mk(0, 2, 3, 0.6)) {
		t.Error("better contrast should evict")
	}
	if l.Len() != 2 {
		t.Errorf("Len = %d, want 2", l.Len())
	}
	cs := l.Contrasts()
	if cs[0].Score != 0.6 || cs[1].Score != 0.4 {
		t.Errorf("scores = %v, %v", cs[0].Score, cs[1].Score)
	}
	if l.Add(mk(0, 3, 4, 0.3)) {
		t.Error("worse-than-threshold contrast should be rejected when full")
	}
}

func TestDuplicateKeyReplaces(t *testing.T) {
	l := New(5, 0.0)
	c := mk(0, 0, 1, 0.2)
	l.Add(c)
	c.Score = 0.5
	if !l.Add(c) {
		t.Error("higher score for same itemset should replace")
	}
	if l.Len() != 1 {
		t.Errorf("Len = %d, want 1 (replacement)", l.Len())
	}
	got, ok := l.Get(c.Set.Key())
	if !ok || got.Score != 0.5 {
		t.Error("Get after replace wrong")
	}
	c.Score = 0.1
	if l.Add(c) {
		t.Error("lower score for same itemset should be ignored")
	}
}

func TestRemove(t *testing.T) {
	l := New(5, 0.0)
	a := mk(0, 0, 1, 0.2)
	b := mk(0, 1, 2, 0.4)
	l.Add(a)
	l.Add(b)
	if !l.Remove(a.Set.Key()) {
		t.Error("Remove existing failed")
	}
	if l.Remove(a.Set.Key()) {
		t.Error("double remove should report false")
	}
	if l.Len() != 1 {
		t.Errorf("Len = %d after remove", l.Len())
	}
	if _, ok := l.Get(a.Set.Key()); ok {
		t.Error("removed key still gettable")
	}
	if _, ok := l.Get(b.Set.Key()); !ok {
		t.Error("remaining key lost after remove")
	}
}

func TestUnboundedList(t *testing.T) {
	l := New(0, 0.1)
	for i := 0; i < 100; i++ {
		l.Add(mk(0, float64(i), float64(i+1), 0.2))
	}
	if l.Len() != 100 {
		t.Errorf("unbounded Len = %d", l.Len())
	}
	if l.Threshold() != 0.1 {
		t.Errorf("unbounded threshold = %v, want delta", l.Threshold())
	}
}

// Property: after any sequence of inserts, the list holds exactly the k
// highest-scoring distinct itemsets (scores at or above delta), and the
// threshold equals the worst stored score when full.
func TestTopKMatchesSortProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 5
		l := New(k, 0.1)
		best := map[string]float64{}
		for i := 0; i < int(n); i++ {
			attr := rng.Intn(3)
			lo := float64(rng.Intn(10))
			score := rng.Float64()
			c := mk(attr, lo, lo+1, score)
			l.Add(c)
			key := c.Set.Key()
			if score >= 0.1 && score > best[key] {
				if _, seen := best[key]; !seen || score > best[key] {
					best[key] = score
				}
			}
		}
		var scores []float64
		for _, s := range best {
			scores = append(scores, s)
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
		if len(scores) > k {
			scores = scores[:k]
		}
		got := l.Contrasts()
		if len(got) != len(scores) {
			return false
		}
		for i := range scores {
			if got[i].Score != scores[i] {
				return false
			}
		}
		if len(got) == k && l.Threshold() != got[k-1].Score {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestContrastsDeterministicOrder(t *testing.T) {
	build := func(order []int) []pattern.Contrast {
		l := New(4, 0.0)
		for _, i := range order {
			l.Add(mk(0, float64(i), float64(i+1), 0.5)) // all tied scores
		}
		return l.Contrasts()
	}
	a := build([]int{0, 1, 2, 3})
	b := build([]int{3, 1, 0, 2})
	for i := range a {
		if a[i].Set.Key() != b[i].Set.Key() {
			t.Fatalf("order differs at %d: %s vs %s", i, a[i].Set.Key(), b[i].Set.Key())
		}
	}
	_ = fmt.Sprint(a)
}

func TestThresholdUpdateRecording(t *testing.T) {
	rec := metrics.New()
	l := New(2, 0.1).WithRecorder(rec)
	l.Add(mk(0, 0, 1, 0.5))
	l.Add(mk(1, 0, 1, 0.6))
	if got := rec.Snapshot().ThresholdUpdates; got == 0 {
		t.Fatal("no threshold update when list filled")
	}
	before := rec.Snapshot().ThresholdUpdates
	// Rejected contrast: threshold unchanged, no update recorded.
	l.Add(mk(2, 0, 1, 0.2))
	if got := rec.Snapshot().ThresholdUpdates; got != before {
		t.Errorf("rejected Add recorded an update (%d -> %d)", before, got)
	}
	// Eviction raises the k-th best: update recorded with the new value.
	l.Add(mk(3, 0, 1, 0.9))
	s := rec.Snapshot()
	if s.ThresholdUpdates != before+1 {
		t.Errorf("eviction updates = %d, want %d", s.ThresholdUpdates, before+1)
	}
	if s.Threshold != l.Threshold() {
		t.Errorf("recorded threshold %v != list threshold %v", s.Threshold, l.Threshold())
	}
}

func TestNilRecorderList(t *testing.T) {
	l := New(2, 0.1).WithRecorder(nil)
	if !l.Add(mk(0, 0, 1, 0.5)) {
		t.Fatal("add failed with nil recorder")
	}
}
