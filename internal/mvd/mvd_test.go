package mvd

import (
	"math"
	"testing"

	"sdadcs/internal/datagen"
	"sdadcs/internal/dataset"
	"sdadcs/internal/stucco"
)

func TestDiscretizeNoSignalMergesToOne(t *testing.T) {
	d := datagen.Simulated3(1, 2000)
	res := DiscretizeDataset(d, Config{})
	// Attribute 2 is pure noise: almost all of its ~19 initial boundaries
	// must merge away (a few false-positive blocks are inherent to the
	// repeated chi-square testing, as in the original MVD).
	a2 := d.AttrIndex("Attribute2")
	if len(res.Cuts[a2]) > 5 {
		t.Errorf("noise attribute kept %d cuts, want <= 5", len(res.Cuts[a2]))
	}
	// Attribute 1 must keep a boundary near 0.5.
	a1 := d.AttrIndex("Attribute1")
	if len(res.Cuts[a1]) == 0 {
		t.Fatal("separating attribute lost all cuts")
	}
	near := false
	for _, c := range res.Cuts[a1] {
		if math.Abs(c-0.5) < 0.05 {
			near = true
		}
	}
	if !near {
		t.Errorf("cuts on Attribute1 = %v, want one near 0.5", res.Cuts[a1])
	}
	if res.PairsEvaluated == 0 {
		t.Error("pair counter not wired up")
	}
}

func TestDiscretizeDetectsMultivariateBoundary(t *testing.T) {
	// The property Bay designed MVD for (and the paper credits it with on
	// Figure 3b): the XOR data has no univariate class signal, but the
	// attributes are contexts for each other, so boundaries survive.
	d := datagen.Simulated2(2, 3000)
	res := DiscretizeDataset(d, Config{})
	total := 0
	for _, cuts := range res.Cuts {
		total += len(cuts)
	}
	if total == 0 {
		t.Error("MVD should keep boundaries on interacting attributes")
	}
}

func TestMineFindsContrasts(t *testing.T) {
	d := datagen.Simulated1(3, 2000)
	disc := DiscretizeDataset(d, Config{})
	res := stucco.Mine(dataset.Discretized(d, disc.Cuts), stucco.Config{})
	if len(res.Contrasts) == 0 {
		t.Fatal("MVD baseline found no contrasts on separable data")
	}
	// On Simulated1 the inter-attribute correlation blocks merging of the
	// pure bins (the paper's §5.1 observation: "MVD misses this splitting
	// point"), so the top contrast is a narrow bin with modest support
	// difference — well below the perfect univariate contrast.
	if res.Contrasts[0].Score < 0.1 || res.Contrasts[0].Score > 0.9 {
		t.Errorf("top score = %v, want a modest fragment contrast", res.Contrasts[0].Score)
	}
	if res.Candidates == 0 || disc.PairsEvaluated == 0 {
		t.Error("work counters not wired up")
	}
}

func TestBinOfRowConsistency(t *testing.T) {
	d := datagen.Simulated3(4, 500)
	s := newAttrState(d, 0, 50)
	// Every row's bin range must actually contain the row's rank.
	for row := 0; row < d.Rows(); row++ {
		b := s.binOfRow(row)
		if b < 0 || b >= s.bins() {
			t.Fatalf("row %d: bin %d out of range", row, b)
		}
		r := s.rank[row]
		if r < s.starts[b] || r >= s.starts[b+1] {
			t.Fatalf("row %d: rank %d outside bin %d [%d,%d)",
				row, r, b, s.starts[b], s.starts[b+1])
		}
	}
}

func TestInitialBinsRespectTies(t *testing.T) {
	// Heavily tied data: boundaries must not split equal values.
	vals := make([]float64, 300)
	groups := make([]string, 300)
	for i := range vals {
		vals[i] = float64(i / 100) // three distinct values, 100 each
		groups[i] = []string{"A", "B"}[i%2]
	}
	d := dataset.NewBuilder("ties").AddContinuous("x", vals).SetGroups(groups).MustBuild()
	s := newAttrState(d, 0, 30)
	col := d.ContColumn(0)
	for b := 1; b < s.bins(); b++ {
		lo := s.starts[b]
		if col[s.sorted[lo]] == col[s.sorted[lo-1]] {
			t.Fatalf("boundary at %d splits tied value %v", lo, col[s.sorted[lo]])
		}
	}
}

func TestCutPointsAreBinMaxima(t *testing.T) {
	d := datagen.Simulated3(5, 1000)
	s := newAttrState(d, 0, 100)
	cuts := s.cutPoints(d)
	if len(cuts) != s.bins()-1 {
		t.Fatalf("cuts = %d, bins = %d", len(cuts), s.bins())
	}
	for i := 1; i < len(cuts); i++ {
		if cuts[i] <= cuts[i-1] {
			t.Error("cuts not strictly increasing")
		}
	}
}

func TestDiscretizeDeterministic(t *testing.T) {
	d := datagen.Simulated1(6, 1500)
	a := DiscretizeDataset(d, Config{})
	b := DiscretizeDataset(d, Config{})
	for attr, cuts := range a.Cuts {
		if len(cuts) != len(b.Cuts[attr]) {
			t.Fatal("non-deterministic cut count")
		}
		for i := range cuts {
			if cuts[i] != b.Cuts[attr][i] {
				t.Fatal("non-deterministic cuts")
			}
		}
	}
}
