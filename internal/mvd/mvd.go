// Package mvd implements Bay's Multivariate Discretization (MVD, 2001),
// one of the paper's baselines. Each continuous attribute starts as fine
// equi-frequency intervals (100 instances per bin in the paper's setup);
// adjacent intervals are then merged bottom-up whenever they are *not*
// statistically different with respect to every context — the group (class)
// attribute and each other attribute under its current binning. Because
// contexts include other attributes, MVD can preserve boundaries induced by
// multivariate interactions, which pure class-entropy methods miss.
package mvd

import (
	"sort"

	"sdadcs/internal/dataset"
	"sdadcs/internal/stats"
)

// Config controls the discretization.
type Config struct {
	// Alpha is the significance level for the difference tests (default
	// 0.05): two adjacent intervals merge only if no context
	// distinguishes them at this level.
	Alpha float64
	// BinSize is the target number of instances per initial bin (default
	// 100, as in the paper's experiments).
	BinSize int
	// MaxSweeps bounds the merge rounds (default 50; convergence is
	// normally reached in a handful).
	MaxSweeps int
}

func (c *Config) defaults() {
	if c.Alpha == 0 {
		c.Alpha = 0.05
	}
	if c.BinSize == 0 {
		c.BinSize = 100
	}
	if c.MaxSweeps == 0 {
		c.MaxSweeps = 50
	}
}

// Result reports the discretization and the work done.
type Result struct {
	// Cuts holds the final cut points per continuous attribute index.
	Cuts map[int][]float64
	// PairsEvaluated counts adjacent-interval pairs whose contexts were
	// tested — the "partitions evaluated" cost metric of Table 5.
	PairsEvaluated int
}

// attrState is the mutable binning of one continuous attribute.
type attrState struct {
	attr   int
	sorted []int // row indices sorted by value
	rank   []int // rank[row] = position of row in sorted order
	starts []int // bin b covers sorted[starts[b]:starts[b+1]]; last entry = len
}

func (s *attrState) bins() int { return len(s.starts) - 1 }

// binOfRow returns the current bin of a dataset row, or -1 for a missing
// reading.
func (s *attrState) binOfRow(row int) int {
	r := s.rank[row]
	if r < 0 {
		return -1
	}
	// Find the bin whose range contains rank r.
	return sort.Search(len(s.starts)-1, func(b int) bool { return s.starts[b+1] > r })
}

// DiscretizeDataset runs MVD over all continuous attributes of d.
func DiscretizeDataset(d *dataset.Dataset, cfg Config) Result {
	cfg.defaults()
	contAttrs := d.ContinuousAttrs()
	states := make([]*attrState, 0, len(contAttrs))
	for _, attr := range contAttrs {
		states = append(states, newAttrState(d, attr, cfg.BinSize))
	}
	res := Result{Cuts: make(map[int][]float64, len(states))}

	for sweep := 0; sweep < cfg.MaxSweeps; sweep++ {
		merged := false
		for _, s := range states {
			if mergeOnce(d, s, states, cfg.Alpha, &res.PairsEvaluated) {
				merged = true
			}
		}
		if !merged {
			break
		}
	}

	for _, s := range states {
		res.Cuts[s.attr] = s.cutPoints(d)
	}
	return res
}

// newAttrState builds the initial equi-frequency binning, snapping bin
// boundaries so equal values never straddle a boundary. Rows with missing
// (NaN) readings are excluded from the attribute's ordering and get rank
// −1: they belong to no interval and contribute nothing as context.
func newAttrState(d *dataset.Dataset, attr, binSize int) *attrState {
	total := d.Rows()
	s := &attrState{attr: attr}
	col := d.ContColumn(attr)
	s.sorted = make([]int, 0, total)
	for i := 0; i < total; i++ {
		if col[i] == col[i] { // skip NaN
			s.sorted = append(s.sorted, i)
		}
	}
	n := len(s.sorted)
	sort.SliceStable(s.sorted, func(a, b int) bool { return col[s.sorted[a]] < col[s.sorted[b]] })
	s.rank = make([]int, total)
	for i := range s.rank {
		s.rank[i] = -1
	}
	for pos, row := range s.sorted {
		s.rank[row] = pos
	}
	s.starts = []int{0}
	for pos := binSize; pos < n; pos += binSize {
		// Snap forward past ties.
		p := pos
		for p < n && col[s.sorted[p]] == col[s.sorted[p-1]] {
			p++
		}
		if p < n && p > s.starts[len(s.starts)-1] {
			s.starts = append(s.starts, p)
		}
	}
	s.starts = append(s.starts, n)
	return s
}

// cutPoints converts bin boundaries to value-space cut points: the largest
// value of each bin except the last, matching the (lo, hi] convention.
func (s *attrState) cutPoints(d *dataset.Dataset) []float64 {
	col := d.ContColumn(s.attr)
	cuts := make([]float64, 0, s.bins()-1)
	for b := 0; b < s.bins()-1; b++ {
		lastRow := s.sorted[s.starts[b+1]-1]
		cuts = append(cuts, col[lastRow])
	}
	return cuts
}

// mergeOnce performs best-first merging on one attribute until no adjacent
// pair is mergeable, and reports whether anything merged.
func mergeOnce(d *dataset.Dataset, s *attrState, all []*attrState, alpha float64, pairs *int) bool {
	mergedAny := false
	for {
		bestPair := -1
		bestP := alpha // must exceed alpha (not significantly different)
		for b := 0; b < s.bins()-1; b++ {
			*pairs++
			p := pairSimilarity(d, s, b, all)
			if p > bestP {
				bestP = p
				bestPair = b
			}
		}
		if bestPair == -1 {
			return mergedAny
		}
		// Merge bins bestPair and bestPair+1 by deleting the boundary.
		s.starts = append(s.starts[:bestPair+1], s.starts[bestPair+2:]...)
		mergedAny = true
		if s.bins() <= 1 {
			return mergedAny
		}
	}
}

// pairSimilarity returns the smallest Bonferroni-adjusted p-value over all
// contexts for the adjacent bins (b, b+1) of s — the strength of the
// strongest evidence that the two intervals differ. A pair is mergeable
// when this exceeds alpha. The per-context p-values are multiplied by the
// number of contexts tested (Bonferroni) so that testing many contexts does
// not spuriously block merges on independent attributes.
func pairSimilarity(d *dataset.Dataset, s *attrState, b int, all []*attrState) float64 {
	lo1, hi1 := s.starts[b], s.starts[b+1]
	lo2, hi2 := s.starts[b+1], s.starts[b+2]

	// Contexts tested: class + categorical attributes + other continuous
	// attributes.
	nContexts := 1 + len(d.CategoricalAttrs()) + len(all) - 1
	minP := 1.0
	consider := func(p float64, ok bool) {
		if !ok {
			return
		}
		p *= float64(nContexts) // Bonferroni across contexts
		if p > 1 {
			p = 1
		}
		if p < minP {
			minP = p
		}
	}

	// Context 1: the group (class) attribute.
	consider(contextTest(func(row int) int { return d.Group(row) }, d.NumGroups(),
		s.sorted[lo1:hi1], s.sorted[lo2:hi2]))

	// Context 2: every categorical attribute.
	for _, attr := range d.CategoricalAttrs() {
		a := attr
		consider(contextTest(func(row int) int { return d.CatCode(a, row) },
			len(d.Domain(a)), s.sorted[lo1:hi1], s.sorted[lo2:hi2]))
	}

	// Context 3: every other continuous attribute under its current bins.
	for _, other := range all {
		if other.attr == s.attr {
			continue
		}
		o := other
		consider(contextTest(o.binOfRow, o.bins(),
			s.sorted[lo1:hi1], s.sorted[lo2:hi2]))
	}
	return minP
}

// contextTest chi-square-tests whether two row sets have the same
// distribution over a context with the given cardinality. Rows whose
// context is unknown (negative, e.g. a missing reading) are skipped. ok is
// false when the table is degenerate (e.g. a context value covers
// everything), in which case the context provides no evidence of
// difference.
func contextTest(ctx func(row int) int, cardinality int, rows1, rows2 []int) (float64, bool) {
	if cardinality < 2 {
		return 1, false
	}
	obs := make([][]float64, 2)
	obs[0] = make([]float64, cardinality)
	obs[1] = make([]float64, cardinality)
	for _, r := range rows1 {
		if c := ctx(r); c >= 0 {
			obs[0][c]++
		}
	}
	for _, r := range rows2 {
		if c := ctx(r); c >= 0 {
			obs[1][c]++
		}
	}
	// Drop empty columns to keep the test well-defined.
	trimmed := [][]float64{{}, {}}
	for c := 0; c < cardinality; c++ {
		if obs[0][c]+obs[1][c] > 0 {
			trimmed[0] = append(trimmed[0], obs[0][c])
			trimmed[1] = append(trimmed[1], obs[1][c])
		}
	}
	if len(trimmed[0]) < 2 {
		return 1, false
	}
	res, err := stats.ChiSquareTable(trimmed)
	if err != nil {
		return 1, false
	}
	return res.P, true
}
