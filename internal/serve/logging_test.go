package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"sdadcs/internal/dataset"
	"sdadcs/internal/engine"
	"sdadcs/internal/obs"
)

// syncBuffer is a concurrency-safe log sink: workers write while the test
// reads.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// waitLog polls until the log contains substr (the asynchronous tail of a
// job's lifecycle may land just after the API reports the terminal state).
func waitLog(t *testing.T, buf *syncBuffer, substr string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(buf.String(), substr) {
		if time.Now().After(deadline) {
			t.Fatalf("log never contained %q:\n%s", substr, buf.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// logRecords decodes every JSON log line.
func logRecords(t *testing.T, buf *syncBuffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		out = append(out, rec)
	}
	return out
}

func newLoggedServer(t *testing.T, opts Options) (*Server, *client, *syncBuffer) {
	t.Helper()
	buf := &syncBuffer{}
	log, err := obs.Config{Format: "json", Output: buf}.NewLogger()
	if err != nil {
		t.Fatal(err)
	}
	opts.Logger = log
	s, c := newTestServer(t, opts)
	return s, c, buf
}

// TestJobLifecycleCorrelation is the acceptance test for the correlation
// chain: submit one job over HTTP with a caller-supplied request ID, then
// reconstruct its full lifecycle — accepted, queued, running, engine mine
// start/done, job done — from the structured log by job ID alone, and
// verify every one of those records also carries the originating request
// ID. One grep, full story.
func TestJobLifecycleCorrelation(t *testing.T) {
	_, c, buf := newLoggedServer(t, Options{Workers: 2})
	dsID := c.register(heavyCSV(200, 3))

	const rid = "req_corr_test_01"
	body, _ := json.Marshal(map[string]any{
		"dataset_id": dsID,
		"config":     map[string]any{"max_depth": 2},
	})
	req, err := http.NewRequest("POST", c.base+"/v1/jobs", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", rid)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != rid {
		t.Fatalf("response request ID %q, want %q", got, rid)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}

	c.waitState(st.ID, JobDone, 20*time.Second)
	waitLog(t, buf, "job done")

	// Reconstruct the lifecycle by job ID alone.
	var msgs []string
	jobRecords := 0
	for _, rec := range logRecords(t, buf) {
		if rec["job_id"] != st.ID {
			continue
		}
		jobRecords++
		msgs = append(msgs, rec["msg"].(string))
		if rec["request_id"] != rid {
			t.Errorf("job record %q lost the request ID: got %v", rec["msg"], rec["request_id"])
		}
	}
	joined := strings.Join(msgs, ",")
	for _, want := range []string{"job accepted", "job running", "mine start", "mine done", "job done"} {
		if !strings.Contains(joined, want) {
			t.Errorf("lifecycle by job_id missing %q: %v", want, msgs)
		}
	}
	if jobRecords < 5 {
		t.Errorf("only %d records carry job_id %s", jobRecords, st.ID)
	}

	// The engine records carry the component tag threaded through context.
	foundEngine := false
	for _, rec := range logRecords(t, buf) {
		if rec["msg"] == "mine done" && rec["component"] == "engine" && rec["job_id"] == st.ID {
			foundEngine = true
		}
	}
	if !foundEngine {
		t.Error("no engine-component mine record with the job ID")
	}

	// The submit's access-log line carries the same request ID.
	foundAccess := false
	for _, rec := range logRecords(t, buf) {
		if rec["msg"] == "http request" && rec["route"] == "POST /v1/jobs" && rec["request_id"] == rid {
			foundAccess = true
		}
	}
	if !foundAccess {
		t.Error("no access-log record for the submit with the caller request ID")
	}
}

// panicMiner is a deliberately-exploding algorithm for the isolation test.
type panicMiner struct{}

func (panicMiner) Name() string        { return "panic-test" }
func (panicMiner) Description() string { return "panics immediately (test only)" }
func (panicMiner) Mine(context.Context, *dataset.Dataset, engine.Config) (engine.Result, error) {
	panic("deliberate test panic")
}
func (panicMiner) CanonicalKey(engine.Config) string { return "panic-test|v1" }

var registerPanicMiner = sync.OnceFunc(func() { engine.Register(panicMiner{}) })

// TestJobPanicIsolation: a panicking mine becomes one failed job — stack
// logged, counter bumped — and the server keeps serving.
func TestJobPanicIsolation(t *testing.T) {
	registerPanicMiner()
	s, c, buf := newLoggedServer(t, Options{Workers: 2})
	dsID := c.register(heavyCSV(100, 2))

	st, code, body := c.submit(map[string]any{
		"dataset_id": dsID,
		"config":     map[string]any{"algorithm": "panic-test"},
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	final := c.waitState(st.ID, JobFailed, 10*time.Second)
	if final.State != JobFailed || !strings.Contains(final.Error, "panicked") {
		t.Fatalf("panicking job: state=%s err=%q", final.State, final.Error)
	}
	if got := s.JobPanics(); got != 1 {
		t.Fatalf("JobPanics() = %d, want 1", got)
	}
	waitLog(t, buf, "job panicked")
	logs := buf.String()
	if !strings.Contains(logs, "deliberate test panic") || !strings.Contains(logs, "logging_test.go") {
		t.Fatalf("panic log missing message or stack:\n%s", logs)
	}

	// The server survives: liveness green, and a normal job still completes
	// on the same worker pool.
	if code, _ := c.do("GET", "/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz after panic: %d", code)
	}
	st2, code, body := c.submit(map[string]any{
		"dataset_id": dsID,
		"config":     map[string]any{"max_depth": 2},
	})
	if code != http.StatusAccepted {
		t.Fatalf("post-panic submit: %d %s", code, body)
	}
	if got := c.waitState(st2.ID, JobDone, 20*time.Second); got.State != JobDone {
		t.Fatalf("post-panic job: %s (%s)", got.State, got.Error)
	}
}

// TestPrometheusExposition: the scrape passes the strict parser and
// carries the serve, RED, miner and runtime series; the JSON default
// stays the default; unknown formats are 400.
func TestPrometheusExposition(t *testing.T) {
	s, c, _ := newLoggedServer(t, Options{Workers: 2})
	dsID := c.register(heavyCSV(200, 3))
	st, code, body := c.submit(map[string]any{
		"dataset_id": dsID,
		"config":     map[string]any{"max_depth": 2},
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	c.waitState(st.ID, JobDone, 20*time.Second)
	// A second identical submit exercises the result cache counter.
	st2, _, _ := c.submit(map[string]any{
		"dataset_id": dsID,
		"config":     map[string]any{"max_depth": 2},
	})
	c.waitState(st2.ID, JobDone, 10*time.Second)

	for _, path := range []string{
		"/v1/metrics?format=prometheus",
		"/v1/metrics/prometheus",
		"/metrics?format=prometheus",
		"/metrics/prometheus",
	} {
		code, page := c.do("GET", path, nil)
		if code != http.StatusOK {
			t.Fatalf("%s: %d", path, code)
		}
		if err := obs.LintExposition(page); err != nil {
			t.Fatalf("%s fails strict parse: %v\n%s", path, err, page)
		}
		text := string(page)
		for _, want := range []string{
			"sdadcs_serve_ready 1",
			"sdadcs_serve_jobs_submitted_total",
			"sdadcs_serve_queue_wait_seconds_bucket",
			"sdadcs_serve_queue_wait_seconds_count",
			"sdadcs_serve_result_cache_hits_total 1",
			"sdadcs_serve_index_builds_total 1",
			"sdadcs_serve_job_panics_total",
			`sdadcs_miner_jobs_total{algorithm="sdadcs"} 1`,
			`sdadcs_http_requests_total{route="POST /v1/jobs"}`,
			`sdadcs_http_request_duration_seconds_bucket{route="POST /v1/jobs"`,
			"sdadcs_http_in_flight 1", // the scrape itself
			"go_goroutines",
		} {
			if !strings.Contains(text, want) {
				t.Errorf("%s missing %q", path, want)
			}
		}
	}

	// Content type and JSON compatibility.
	resp, err := http.Get(c.base + "/metrics/prometheus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("content type %q, want %q", ct, obs.ContentType)
	}
	code, jsonBody := c.do("GET", "/v1/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("/v1/metrics: %d", code)
	}
	var m ServerMetrics
	if err := json.Unmarshal(jsonBody, &m); err != nil {
		t.Fatalf("JSON metrics no longer decode: %v", err)
	}
	if m.JobsSubmitted != 2 || m.CacheHits != 1 {
		t.Fatalf("JSON counters: %+v", m)
	}
	if code, _ := c.do("GET", "/v1/metrics?format=yaml", nil); code != http.StatusBadRequest {
		t.Fatalf("unknown format: %d, want 400", code)
	}
	_ = s
}

// TestReadinessGate: StartDrain flips /readyz to 503 while /healthz stays
// 200 and admissions continue — the LB propagation window — and Ready()
// mirrors the endpoint.
func TestReadinessGate(t *testing.T) {
	s, c, _ := newLoggedServer(t, Options{Workers: 1})
	dsID := c.register(heavyCSV(100, 2))

	if code, _ := c.do("GET", "/readyz", nil); code != http.StatusOK {
		t.Fatalf("readyz before drain: %d", code)
	}
	s.StartDrain()
	if s.Ready() {
		t.Fatal("Ready() true after StartDrain")
	}
	if code, body := c.do("GET", "/readyz", nil); code != http.StatusServiceUnavailable || !strings.Contains(string(body), "draining") {
		t.Fatalf("readyz after StartDrain: %d %s", code, body)
	}
	if code, _ := c.do("GET", "/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz after StartDrain: %d", code)
	}
	// The drain window: new submissions are still accepted until Close.
	st, code, body := c.submit(map[string]any{
		"dataset_id": dsID,
		"config":     map[string]any{"max_depth": 2},
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit during drain window: %d %s", code, body)
	}
	if got := c.waitState(st.ID, JobDone, 20*time.Second); got.State != JobDone {
		t.Fatalf("drain-window job: %s (%s)", got.State, got.Error)
	}
}

// TestPprofGating: the profiling surface exists only with EnablePprof.
func TestPprofGating(t *testing.T) {
	_, plain := newTestServer(t, Options{Workers: 1})
	if code, _ := plain.do("GET", "/debug/pprof/", nil); code != http.StatusNotFound {
		t.Fatalf("pprof without flag: %d, want 404", code)
	}
	_, enabled := newTestServer(t, Options{Workers: 1, EnablePprof: true})
	code, body := enabled.do("GET", "/debug/pprof/", nil)
	if code != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index: %d %s", code, body)
	}
	if code, _ := enabled.do("GET", "/debug/pprof/cmdline", nil); code != http.StatusOK {
		t.Fatalf("pprof cmdline: %d", code)
	}
}

// TestRegistryAndCacheLogging: registration and eviction emit structured
// records with dataset IDs.
func TestRegistryAndCacheLogging(t *testing.T) {
	_, c, buf := newLoggedServer(t, Options{Workers: 1, RowBudget: 250})
	id1 := c.register(heavyCSV(200, 2))
	waitLog(t, buf, "dataset registered")
	// Second registration exceeds the 250-row budget and evicts the first.
	c.register(heavyCSV(201, 2))
	waitLog(t, buf, "dataset evicted")
	if !strings.Contains(buf.String(), fmt.Sprintf(`"dataset_id":%q`, id1)) {
		t.Fatalf("eviction log lacks dataset_id %s:\n%s", id1, buf.String())
	}
}
