// Package serve is the long-lived mining service: a dataset registry that
// parses CSVs and builds bitmap indexes once, an async job manager with a
// bounded worker pool and per-job deadlines, a result cache with
// singleflight deduplication, and the HTTP JSON API tying them together
// (cmd/serve). It is the deployment shape of the paper's §6 production
// story — index build and scan dominate per-query cost, so a shared
// service amortizes them across requests the way Facebook's continuous
// contrast-set-mining deployment does.
package serve

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"sdadcs/internal/dataset"
	"sdadcs/internal/obs"
	"sdadcs/internal/store"
)

// DatasetInfo is the registry's public record of one dataset.
type DatasetInfo struct {
	// ID is the content-hash address: "ds_" + 16 hex bytes of the SHA-256
	// over the CSV bytes and the parse options. Registering the same bytes
	// twice yields the same ID (and reuses the parsed dataset).
	ID string `json:"id"`
	// Name is the caller-supplied display name.
	Name string `json:"name"`
	// Rows, Attrs, Groups describe the parsed table.
	Rows   int      `json:"rows"`
	Attrs  int      `json:"attrs"`
	Groups []string `json:"groups"`
	// RegisteredAt is the first registration time.
	RegisteredAt time.Time `json:"registered_at"`
}

// dsEntry is one registry slot.
type dsEntry struct {
	info DatasetInfo
	ds   *dataset.Dataset
	// pins counts jobs currently holding the dataset (queued or running).
	// Pinned entries are never evicted, so a mine in flight keeps its
	// dataset addressable for result rendering and explain queries.
	pins int
	elem *list.Element // position in the LRU order; nil while cold
	// cold marks a demoted entry: the dataset lives only in the attached
	// store's segments (ds == nil), costs no rows against the budget, and
	// is reloaded on demand by Acquire/Get. With no store attached, cold
	// entries never exist — eviction deletes outright, as before.
	cold bool
	// parse options, kept so a persisted entry's store meta can be
	// rebuilt; zero-valued for entries registered before a store attach.
	groupColumn      string
	forceCategorical []string
}

// Registry holds parsed datasets, content-hash addressed and LRU-bounded
// by a total row budget. Reads are concurrent-safe. Because datasets carry
// their bitmap index in a content-hash-keyed cache slot (dataset.Index),
// the registry also amortizes index construction: the first Mine against a
// dataset builds the index once, and every later job on the same content
// hash reuses it. Eviction drops the cached index along with the dataset
// so the row budget actually bounds memory.
type Registry struct {
	mu        sync.Mutex
	log       *slog.Logger
	budget    int // max total rows across entries; 0 = unbounded
	totalRows int
	entries   map[string]*dsEntry
	order     *list.List // front = most recently used
	evictions int64
	// indexEvictions counts evicted entries that held a built bitmap
	// index; indexBuildsEvicted accumulates their lifetime build counts so
	// IndexStats can report total builds across live and evicted entries.
	indexEvictions     int64
	indexBuildsEvicted int64
	// store, when attached, is the persistence backend: registrations are
	// written through to it, eviction demotes to the cold tier instead of
	// deleting, and a restart rehydrates cold entries from its manifest.
	store      *store.Store
	demotions  int64
	promotions int64
}

// NewRegistry builds a registry evicting least-recently-used datasets once
// the sum of registered rows exceeds rowBudget (0 = unbounded).
func NewRegistry(rowBudget int) *Registry {
	return &Registry{
		log:     obs.Nop(),
		budget:  rowBudget,
		entries: make(map[string]*dsEntry),
		order:   list.New(),
	}
}

// SetLogger attaches the structured log for registration and eviction
// events. Call before serving; nil restores the no-op logger.
func (r *Registry) SetLogger(log *slog.Logger) {
	r.mu.Lock()
	r.log = obs.Or(log)
	r.mu.Unlock()
}

// SetStore attaches the persistence backend and rehydrates: every dataset
// in the store's manifest appears as a cold registry entry, addressable
// under the same content hash it had before the restart — no re-upload
// needed. Call before serving.
func (r *Registry) SetStore(st *store.Store) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.store = st
	for _, m := range st.List() {
		if _, ok := r.entries[m.ID]; ok {
			continue
		}
		r.entries[m.ID] = &dsEntry{
			info: DatasetInfo{
				ID:           m.ID,
				Name:         m.Name,
				Rows:         m.Rows,
				Attrs:        m.Attrs,
				Groups:       m.Groups,
				RegisteredAt: m.RegisteredAt,
			},
			cold:             true,
			groupColumn:      m.GroupColumn,
			forceCategorical: m.ForceCategorical,
		}
	}
	r.log.Info("registry rehydrated from store", "datasets", len(r.entries))
}

// ColdStats reports the cold-tier lifecycle: how many entries currently
// live only on disk, how many evictions became demotions, and how many
// cold entries were promoted back by demand.
func (r *Registry) ColdStats() (cold int, demotions, promotions int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.entries {
		if e.cold {
			cold++
		}
	}
	return cold, r.demotions, r.promotions
}

// hashDataset derives the content address from the parse-relevant inputs.
func hashDataset(csvData []byte, groupColumn string, forceCategorical []string) string {
	h := sha256.New()
	fmt.Fprintf(h, "group=%s;", groupColumn)
	forced := append([]string(nil), forceCategorical...)
	sort.Strings(forced)
	for _, f := range forced {
		fmt.Fprintf(h, "cat=%s;", f)
	}
	h.Write(csvData)
	return "ds_" + hex.EncodeToString(h.Sum(nil)[:16])
}

// Register parses a CSV and stores the dataset under its content hash.
// Re-registering identical content is idempotent: the existing entry is
// touched (LRU) and returned without re-parsing. The new entry is exempt
// from its own eviction round, so a single dataset larger than the budget
// still registers (and is evicted only when something else arrives).
func (r *Registry) Register(name string, csvData []byte, groupColumn string, forceCategorical []string) (DatasetInfo, error) {
	id := hashDataset(csvData, groupColumn, forceCategorical)

	r.mu.Lock()
	if e, ok := r.entries[id]; ok {
		// A cold entry has no LRU position to touch; its content is already
		// durable, so re-registration is idempotent without promotion.
		if !e.cold {
			r.order.MoveToFront(e.elem)
		}
		info := e.info
		r.mu.Unlock()
		return info, nil
	}
	st := r.store
	r.mu.Unlock()

	// Parse outside the lock: CSV building is the expensive part and must
	// not serialize readers. A racing duplicate registration parses twice
	// and keeps the first entry — wasteful but correct, and only possible
	// for concurrent uploads of identical bytes.
	if name == "" {
		name = "csv"
	}
	d, err := dataset.FromCSV(bytes.NewReader(csvData), dataset.CSVOptions{
		GroupColumn:      groupColumn,
		ForceCategorical: forceCategorical,
		Name:             name,
	})
	if err != nil {
		return DatasetInfo{}, err
	}
	groups := make([]string, d.NumGroups())
	for g := range groups {
		groups[g] = d.GroupName(g)
	}
	info := DatasetInfo{
		ID:           id,
		Name:         name,
		Rows:         d.Rows(),
		Attrs:        d.NumAttrs(),
		Groups:       groups,
		RegisteredAt: time.Now().UTC(),
	}

	// Persist before the entry becomes visible: a registration the caller
	// saw succeed must survive a crash. Put is idempotent by ID, so a
	// racing duplicate writes the same segments twice at worst.
	if st != nil {
		err := st.Put(d, store.Meta{
			ID:               id,
			Name:             name,
			GroupColumn:      groupColumn,
			ForceCategorical: forceCategorical,
			RegisteredAt:     info.RegisteredAt,
		})
		if err != nil {
			return DatasetInfo{}, fmt.Errorf("serve: persisting dataset: %w", err)
		}
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[id]; ok { // lost the race: keep the first
		if !e.cold {
			r.order.MoveToFront(e.elem)
		}
		return e.info, nil
	}
	e := &dsEntry{info: info, ds: d, groupColumn: groupColumn, forceCategorical: forceCategorical}
	e.elem = r.order.PushFront(id)
	r.entries[id] = e
	r.totalRows += info.Rows
	r.log.Info("dataset registered",
		"dataset_id", id,
		"name", name,
		"rows", info.Rows,
		"attrs", info.Attrs,
		"total_rows", r.totalRows)
	r.evictLocked(id)
	return info, nil
}

// evictLocked reclaims least-recently-used, unpinned entries until the
// row budget holds again; keep is never touched. Without a store the
// victim is deleted outright, as always. With a store attached the victim
// is *demoted* instead: its dataset (already durable on disk from
// registration) and bitmap index are released, but the entry stays
// addressable as a cold-tier record that Acquire/Get reload on demand —
// eviction stops losing data, it only sheds memory.
func (r *Registry) evictLocked(keep string) {
	if r.budget <= 0 {
		return
	}
	for r.totalRows > r.budget {
		var victim *dsEntry
		for el := r.order.Back(); el != nil; el = el.Prev() {
			id := el.Value.(string)
			if id == keep {
				continue
			}
			if e := r.entries[id]; e.pins == 0 {
				victim = e
				break
			}
		}
		if victim == nil {
			return // everything else pinned or only the newcomer left
		}
		r.order.Remove(victim.elem)
		r.totalRows -= victim.info.Rows
		r.evictions++
		// Drop the attached bitmap index with the dataset: completed jobs
		// may still reference the *Dataset for explain rendering, so the
		// index is the part of the memory we can reclaim deterministically.
		droppedIndex := victim.ds.Index().Drop()
		if droppedIndex {
			r.indexEvictions++
			r.indexBuildsEvicted += victim.ds.Index().Builds()
		}
		onDisk := false
		if r.store != nil {
			_, onDisk = r.store.Get(victim.info.ID)
		}
		if onDisk {
			victim.ds = nil
			victim.elem = nil
			victim.cold = true
			r.demotions++
			r.log.Info("dataset demoted to cold tier",
				"dataset_id", victim.info.ID,
				"rows", victim.info.Rows,
				"dropped_index", droppedIndex,
				"total_rows", r.totalRows)
			continue
		}
		delete(r.entries, victim.info.ID)
		r.log.Info("dataset evicted",
			"dataset_id", victim.info.ID,
			"rows", victim.info.Rows,
			"dropped_index", droppedIndex,
			"total_rows", r.totalRows)
	}
}

// hotEntry returns the entry for id with its dataset resident, promoting
// it from the cold tier when necessary. On ok the registry lock is HELD
// (the caller touches LRU/pins, then unlocks); on !ok it is released. The
// cold load runs outside the lock — segment decoding is the expensive
// part — with a re-check afterwards: a racing promoter's entry wins, and
// the loser's decode is discarded.
func (r *Registry) hotEntry(id string) (*dsEntry, bool) {
	r.mu.Lock()
	for {
		e, ok := r.entries[id]
		if !ok {
			r.mu.Unlock()
			return nil, false
		}
		if !e.cold {
			return e, true
		}
		st := r.store
		r.mu.Unlock()
		d, _, err := st.Load(id)
		r.mu.Lock()
		if err != nil {
			// A corrupt segment was quarantined by the store; forget the
			// cold entry so the miss is stable rather than a retry loop.
			if e2, ok := r.entries[id]; ok && e2.cold {
				delete(r.entries, id)
			}
			r.log.Warn("cold dataset load failed",
				"dataset_id", id, "error", err.Error())
			r.mu.Unlock()
			return nil, false
		}
		e2, ok := r.entries[id]
		if !ok {
			r.mu.Unlock()
			return nil, false
		}
		if !e2.cold {
			return e2, true // lost the promotion race: use the winner's copy
		}
		e2.ds = d
		e2.cold = false
		e2.info.Rows = d.Rows() // appended rows folded in by the store
		e2.elem = r.order.PushFront(id)
		r.totalRows += e2.info.Rows
		r.promotions++
		r.log.Info("dataset promoted from cold tier",
			"dataset_id", id, "rows", e2.info.Rows, "total_rows", r.totalRows)
		r.evictLocked(id)
		return e2, true
	}
}

// Acquire returns the dataset and pins it against eviction; the returned
// release function must be called exactly once when the caller (a job) is
// finished with it.
func (r *Registry) Acquire(id string) (*dataset.Dataset, DatasetInfo, func(), bool) {
	e, ok := r.hotEntry(id)
	if !ok {
		return nil, DatasetInfo{}, nil, false
	}
	defer r.mu.Unlock()
	r.order.MoveToFront(e.elem)
	e.pins++
	var once sync.Once
	release := func() {
		once.Do(func() {
			r.mu.Lock()
			e.pins--
			r.mu.Unlock()
		})
	}
	return e.ds, e.info, release, true
}

// Get returns the dataset without pinning (read-only peek; touches LRU).
func (r *Registry) Get(id string) (*dataset.Dataset, DatasetInfo, bool) {
	e, ok := r.hotEntry(id)
	if !ok {
		return nil, DatasetInfo{}, false
	}
	defer r.mu.Unlock()
	r.order.MoveToFront(e.elem)
	return e.ds, e.info, true
}

// List returns the registered datasets: hot entries most recently used
// first, then cold-tier entries by registration time (a deterministic
// order — cold entries have no LRU position).
func (r *Registry) List() []DatasetInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]DatasetInfo, 0, len(r.entries))
	for el := r.order.Front(); el != nil; el = el.Next() {
		out = append(out, r.entries[el.Value.(string)].info)
	}
	var cold []DatasetInfo
	for _, e := range r.entries {
		if e.cold {
			cold = append(cold, e.info)
		}
	}
	sort.Slice(cold, func(i, j int) bool {
		if !cold[i].RegisteredAt.Equal(cold[j].RegisteredAt) {
			return cold[i].RegisteredAt.Before(cold[j].RegisteredAt)
		}
		return cold[i].ID < cold[j].ID
	})
	return append(out, cold...)
}

// Stats reports the registry occupancy.
func (r *Registry) Stats() (entries, totalRows int, evictions int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries), r.totalRows, r.evictions
}

// IndexStats reports the cached-index lifecycle across the registry:
// cached is the number of live entries currently holding a built bitmap
// index, builds is the lifetime index-build count over live AND evicted
// entries (builds == number of distinct dataset hashes indexed, as long as
// nothing was evicted and re-registered), and evictions counts indexes
// dropped by LRU eviction.
func (r *Registry) IndexStats() (cached int, builds, evictions int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	builds = r.indexBuildsEvicted
	for _, e := range r.entries {
		if e.cold {
			continue // no dataset resident, no index
		}
		ix := e.ds.Index()
		if ix.Loaded() {
			cached++
		}
		builds += ix.Builds()
	}
	return cached, builds, r.indexEvictions
}
