// Package serve is the long-lived mining service: a dataset registry that
// parses CSVs and builds bitmap indexes once, an async job manager with a
// bounded worker pool and per-job deadlines, a result cache with
// singleflight deduplication, and the HTTP JSON API tying them together
// (cmd/serve). It is the deployment shape of the paper's §6 production
// story — index build and scan dominate per-query cost, so a shared
// service amortizes them across requests the way Facebook's continuous
// contrast-set-mining deployment does.
package serve

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"sdadcs/internal/dataset"
	"sdadcs/internal/obs"
)

// DatasetInfo is the registry's public record of one dataset.
type DatasetInfo struct {
	// ID is the content-hash address: "ds_" + 16 hex bytes of the SHA-256
	// over the CSV bytes and the parse options. Registering the same bytes
	// twice yields the same ID (and reuses the parsed dataset).
	ID string `json:"id"`
	// Name is the caller-supplied display name.
	Name string `json:"name"`
	// Rows, Attrs, Groups describe the parsed table.
	Rows   int      `json:"rows"`
	Attrs  int      `json:"attrs"`
	Groups []string `json:"groups"`
	// RegisteredAt is the first registration time.
	RegisteredAt time.Time `json:"registered_at"`
}

// dsEntry is one registry slot.
type dsEntry struct {
	info DatasetInfo
	ds   *dataset.Dataset
	// pins counts jobs currently holding the dataset (queued or running).
	// Pinned entries are never evicted, so a mine in flight keeps its
	// dataset addressable for result rendering and explain queries.
	pins int
	elem *list.Element // position in the LRU order
}

// Registry holds parsed datasets, content-hash addressed and LRU-bounded
// by a total row budget. Reads are concurrent-safe. Because datasets carry
// their bitmap index in a content-hash-keyed cache slot (dataset.Index),
// the registry also amortizes index construction: the first Mine against a
// dataset builds the index once, and every later job on the same content
// hash reuses it. Eviction drops the cached index along with the dataset
// so the row budget actually bounds memory.
type Registry struct {
	mu        sync.Mutex
	log       *slog.Logger
	budget    int // max total rows across entries; 0 = unbounded
	totalRows int
	entries   map[string]*dsEntry
	order     *list.List // front = most recently used
	evictions int64
	// indexEvictions counts evicted entries that held a built bitmap
	// index; indexBuildsEvicted accumulates their lifetime build counts so
	// IndexStats can report total builds across live and evicted entries.
	indexEvictions     int64
	indexBuildsEvicted int64
}

// NewRegistry builds a registry evicting least-recently-used datasets once
// the sum of registered rows exceeds rowBudget (0 = unbounded).
func NewRegistry(rowBudget int) *Registry {
	return &Registry{
		log:     obs.Nop(),
		budget:  rowBudget,
		entries: make(map[string]*dsEntry),
		order:   list.New(),
	}
}

// SetLogger attaches the structured log for registration and eviction
// events. Call before serving; nil restores the no-op logger.
func (r *Registry) SetLogger(log *slog.Logger) {
	r.mu.Lock()
	r.log = obs.Or(log)
	r.mu.Unlock()
}

// hashDataset derives the content address from the parse-relevant inputs.
func hashDataset(csvData []byte, groupColumn string, forceCategorical []string) string {
	h := sha256.New()
	fmt.Fprintf(h, "group=%s;", groupColumn)
	forced := append([]string(nil), forceCategorical...)
	sort.Strings(forced)
	for _, f := range forced {
		fmt.Fprintf(h, "cat=%s;", f)
	}
	h.Write(csvData)
	return "ds_" + hex.EncodeToString(h.Sum(nil)[:16])
}

// Register parses a CSV and stores the dataset under its content hash.
// Re-registering identical content is idempotent: the existing entry is
// touched (LRU) and returned without re-parsing. The new entry is exempt
// from its own eviction round, so a single dataset larger than the budget
// still registers (and is evicted only when something else arrives).
func (r *Registry) Register(name string, csvData []byte, groupColumn string, forceCategorical []string) (DatasetInfo, error) {
	id := hashDataset(csvData, groupColumn, forceCategorical)

	r.mu.Lock()
	if e, ok := r.entries[id]; ok {
		r.order.MoveToFront(e.elem)
		info := e.info
		r.mu.Unlock()
		return info, nil
	}
	r.mu.Unlock()

	// Parse outside the lock: CSV building is the expensive part and must
	// not serialize readers. A racing duplicate registration parses twice
	// and keeps the first entry — wasteful but correct, and only possible
	// for concurrent uploads of identical bytes.
	if name == "" {
		name = "csv"
	}
	d, err := dataset.FromCSV(bytes.NewReader(csvData), dataset.CSVOptions{
		GroupColumn:      groupColumn,
		ForceCategorical: forceCategorical,
		Name:             name,
	})
	if err != nil {
		return DatasetInfo{}, err
	}
	groups := make([]string, d.NumGroups())
	for g := range groups {
		groups[g] = d.GroupName(g)
	}
	info := DatasetInfo{
		ID:           id,
		Name:         name,
		Rows:         d.Rows(),
		Attrs:        d.NumAttrs(),
		Groups:       groups,
		RegisteredAt: time.Now().UTC(),
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[id]; ok { // lost the race: keep the first
		r.order.MoveToFront(e.elem)
		return e.info, nil
	}
	e := &dsEntry{info: info, ds: d}
	e.elem = r.order.PushFront(id)
	r.entries[id] = e
	r.totalRows += info.Rows
	r.log.Info("dataset registered",
		"dataset_id", id,
		"name", name,
		"rows", info.Rows,
		"attrs", info.Attrs,
		"total_rows", r.totalRows)
	r.evictLocked(id)
	return info, nil
}

// evictLocked drops least-recently-used, unpinned entries until the row
// budget holds again; keep is never evicted.
func (r *Registry) evictLocked(keep string) {
	if r.budget <= 0 {
		return
	}
	for r.totalRows > r.budget {
		var victim *dsEntry
		for el := r.order.Back(); el != nil; el = el.Prev() {
			id := el.Value.(string)
			if id == keep {
				continue
			}
			if e := r.entries[id]; e.pins == 0 {
				victim = e
				break
			}
		}
		if victim == nil {
			return // everything else pinned or only the newcomer left
		}
		r.order.Remove(victim.elem)
		delete(r.entries, victim.info.ID)
		r.totalRows -= victim.info.Rows
		r.evictions++
		// Drop the attached bitmap index with the dataset: completed jobs
		// may still reference the *Dataset for explain rendering, so the
		// index is the part of the memory we can reclaim deterministically.
		droppedIndex := victim.ds.Index().Drop()
		if droppedIndex {
			r.indexEvictions++
			r.indexBuildsEvicted += victim.ds.Index().Builds()
		}
		r.log.Info("dataset evicted",
			"dataset_id", victim.info.ID,
			"rows", victim.info.Rows,
			"dropped_index", droppedIndex,
			"total_rows", r.totalRows)
	}
}

// Acquire returns the dataset and pins it against eviction; the returned
// release function must be called exactly once when the caller (a job) is
// finished with it.
func (r *Registry) Acquire(id string) (*dataset.Dataset, DatasetInfo, func(), bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[id]
	if !ok {
		return nil, DatasetInfo{}, nil, false
	}
	r.order.MoveToFront(e.elem)
	e.pins++
	var once sync.Once
	release := func() {
		once.Do(func() {
			r.mu.Lock()
			e.pins--
			r.mu.Unlock()
		})
	}
	return e.ds, e.info, release, true
}

// Get returns the dataset without pinning (read-only peek; touches LRU).
func (r *Registry) Get(id string) (*dataset.Dataset, DatasetInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[id]
	if !ok {
		return nil, DatasetInfo{}, false
	}
	r.order.MoveToFront(e.elem)
	return e.ds, e.info, true
}

// List returns the registered datasets, most recently used first.
func (r *Registry) List() []DatasetInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]DatasetInfo, 0, len(r.entries))
	for el := r.order.Front(); el != nil; el = el.Next() {
		out = append(out, r.entries[el.Value.(string)].info)
	}
	return out
}

// Stats reports the registry occupancy.
func (r *Registry) Stats() (entries, totalRows int, evictions int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries), r.totalRows, r.evictions
}

// IndexStats reports the cached-index lifecycle across the registry:
// cached is the number of live entries currently holding a built bitmap
// index, builds is the lifetime index-build count over live AND evicted
// entries (builds == number of distinct dataset hashes indexed, as long as
// nothing was evicted and re-registered), and evictions counts indexes
// dropped by LRU eviction.
func (r *Registry) IndexStats() (cached int, builds, evictions int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	builds = r.indexBuildsEvicted
	for _, e := range r.entries {
		ix := e.ds.Index()
		if ix.Loaded() {
			cached++
		}
		builds += ix.Builds()
	}
	return cached, builds, r.indexEvictions
}
