package serve

import (
	"container/list"
	"sync"
	"sync/atomic"

	"sdadcs/internal/core"
	"sdadcs/internal/dataset"
	"sdadcs/internal/metrics"
	"sdadcs/internal/trace"
)

// mineOutput is everything one Mine execution produced that later requests
// may want: the deterministic report bytes (byte-identical across cache
// hits — pinned by the report golden test), the contrast count, the run
// statistics, the trace/metrics snapshots backing the /trace, /explain
// and progress endpoints of deduplicated or cache-hit jobs, and — for the
// globally-discretizing algorithms — the binned dataset the contrasts'
// items refer to.
type mineOutput struct {
	JSON      []byte
	Contrasts int
	Stats     core.Stats
	Trace     *trace.Trace
	Metrics   *metrics.Snapshot
	Binned    *dataset.Dataset
}

// resultCache maps (dataset hash, canonical config hash) to mineOutput,
// LRU-bounded by entry count. Everything stored is immutable after
// insertion, so readers share entries without copying.
type resultCache struct {
	mu        sync.Mutex
	max       int
	entries   map[string]*list.Element
	order     *list.List // front = most recently used
	evictions atomic.Int64
}

type cacheSlot struct {
	key string
	out *mineOutput
}

func newResultCache(maxEntries int) *resultCache {
	if maxEntries <= 0 {
		maxEntries = 128
	}
	return &resultCache{
		max:     maxEntries,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

func (c *resultCache) get(key string) (*mineOutput, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheSlot).out, true
}

func (c *resultCache) put(key string, out *mineOutput) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*cacheSlot).out = out
		return
	}
	c.entries[key] = c.order.PushFront(&cacheSlot{key: key, out: out})
	for len(c.entries) > c.max {
		el := c.order.Back()
		c.order.Remove(el)
		delete(c.entries, el.Value.(*cacheSlot).key)
		c.evictions.Add(1)
	}
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// evicted reports how many entries LRU pressure has dropped.
func (c *resultCache) evicted() int64 { return c.evictions.Load() }
