package serve

import (
	"net/http"
	"testing"
	"time"
)

// TestIndexBuiltOncePerDatasetHash: repeated jobs against the same dataset
// hash — forced to actually re-mine by varying top_k, which is part of the
// result-cache key — share one cached bitmap index. Exactly one build,
// counted both on the dataset handle and in the server metrics.
func TestIndexBuiltOncePerDatasetHash(t *testing.T) {
	s, c := newTestServer(t, Options{Workers: 2})
	dsID := c.register(smallCSV)

	for i, topk := range []int{5, 7, 9, 11} {
		st, code, body := c.submit(map[string]any{
			"dataset_id": dsID,
			"config":     map[string]any{"counting": "bitmap", "top_k": topk},
		})
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, code, body)
		}
		if st := c.waitState(st.ID, JobDone, 10*time.Second); st.State != JobDone {
			t.Fatalf("job %d ended %s: %s", i, st.State, st.Error)
		}
	}

	ds, _, ok := s.Registry().Get(dsID)
	if !ok {
		t.Fatal("dataset vanished from the registry")
	}
	if got := ds.Index().Builds(); got != 1 {
		t.Fatalf("dataset index builds = %d across 4 jobs, want 1", got)
	}
	m := c.metrics()
	if m.MineExecutions < 4 {
		t.Fatalf("mine executions = %d, want 4 (cache was supposed to miss)", m.MineExecutions)
	}
	if m.IndexBuilds != 1 {
		t.Fatalf("metrics index_builds = %d, want 1", m.IndexBuilds)
	}
	if m.IndexCached != 1 {
		t.Fatalf("metrics index_cached = %d, want 1", m.IndexCached)
	}
	if m.IndexEvictions != 0 {
		t.Fatalf("metrics index_evictions = %d, want 0", m.IndexEvictions)
	}

	// Re-registering the same bytes hits the same content hash and so the
	// same cached index: still one build ever.
	if id2 := c.register(smallCSV); id2 != dsID {
		t.Fatalf("re-registration changed the content hash: %s vs %s", id2, dsID)
	}
	st, _, _ := c.submit(map[string]any{
		"dataset_id": dsID,
		"config":     map[string]any{"counting": "bitmap", "top_k": 13},
	})
	c.waitState(st.ID, JobDone, 10*time.Second)
	if got := ds.Index().Builds(); got != 1 {
		t.Fatalf("index rebuilt after re-registration: builds = %d", got)
	}
}

// TestEvictionDropsIndex: evicting a dataset from the registry drops its
// cached bitmap index and counts the drop, so the row budget bounds index
// memory too.
func TestEvictionDropsIndex(t *testing.T) {
	reg := NewRegistry(60)

	a, err := reg.Register("a", csvRows(50, "a"), "g", nil)
	if err != nil {
		t.Fatal(err)
	}
	dsA, _, ok := reg.Get(a.ID)
	if !ok {
		t.Fatal("dataset a missing")
	}
	dsA.Index().LoadOrBuild(func() any { return "index-a" })
	if cached, builds, ev := reg.IndexStats(); cached != 1 || builds != 1 || ev != 0 {
		t.Fatalf("before eviction: cached=%d builds=%d evictions=%d", cached, builds, ev)
	}

	// Registering b (50 rows) blows the 60-row budget and evicts a.
	if _, err := reg.Register("b", csvRows(50, "b"), "g", nil); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := reg.Get(a.ID); ok {
		t.Fatal("dataset a survived eviction")
	}
	if dsA.Index().Loaded() {
		t.Fatal("evicted dataset still holds its bitmap index")
	}
	if cached, builds, ev := reg.IndexStats(); cached != 0 || builds != 1 || ev != 1 {
		t.Fatalf("after eviction: cached=%d builds=%d evictions=%d, want 0/1/1", cached, builds, ev)
	}
	if _, _, evictions := reg.Stats(); evictions != 1 {
		t.Fatalf("registry evictions = %d, want 1", evictions)
	}
}
