package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"sdadcs/internal/core"
	"sdadcs/internal/dataset"
	"sdadcs/internal/engine"
	"sdadcs/internal/obs"
	"sdadcs/internal/pattern"
	"sdadcs/internal/trace"
)

// RegisterRequest is the POST /v1/datasets body.
type RegisterRequest struct {
	// Name is the display name (optional).
	Name string `json:"name,omitempty"`
	// GroupColumn names the CSV column holding the group labels (required).
	GroupColumn string `json:"group_column"`
	// ForceCategorical lists columns to treat as categorical even when
	// every value parses as a number.
	ForceCategorical []string `json:"force_categorical,omitempty"`
	// CSV is the raw CSV text, header row included.
	CSV string `json:"csv"`
}

// ConfigRequest is the JSON mining configuration accepted by POST
// /v1/jobs. Zero/absent fields select the paper's defaults, mirroring
// engine.Config's zero value.
type ConfigRequest struct {
	// Algorithm selects the miner: sdadcs (default) | stucco | mvd |
	// entropy | subgroup — the engine registry's vocabulary.
	Algorithm    string  `json:"algorithm,omitempty"`
	Alpha        float64 `json:"alpha,omitempty"`
	Delta        float64 `json:"delta,omitempty"`
	MaxDepth     int     `json:"max_depth,omitempty"`
	MaxRecursion int     `json:"max_recursion,omitempty"`
	TopK         int     `json:"top_k,omitempty"`
	// Measure: diff | pr | surprising | wracc | growth | contrast-rules
	// (default diff) — the pattern measure registry's wire names.
	Measure string `json:"measure,omitempty"`
	// OEMode: paper | conservative (default paper).
	OEMode string `json:"oe_mode,omitempty"`
	// Counting: auto | bitmap | slice (default auto).
	Counting string `json:"counting,omitempty"`
	Workers  int    `json:"workers,omitempty"`
	DFS      bool   `json:"dfs,omitempty"`
	// NP selects the no-pruning paper variant (core.Config.NP).
	NP bool `json:"np,omitempty"`
	// SkipMeaningfulFilter disables the final meaningfulness filter.
	SkipMeaningfulFilter bool `json:"skip_meaningful_filter,omitempty"`
	// Attrs restricts mining to these attribute names (resolved against
	// the dataset's schema).
	Attrs []string `json:"attrs,omitempty"`

	// Subgroup-discovery knobs (algorithm: subgroup).
	BeamWidth   int     `json:"beam_width,omitempty"`
	Bins        int     `json:"bins,omitempty"`
	MinCoverage int     `json:"min_coverage,omitempty"`
	MinQuality  float64 `json:"min_quality,omitempty"`

	// MVD discretization knobs (algorithm: mvd).
	BinSize   int `json:"bin_size,omitempty"`
	MaxSweeps int `json:"max_sweeps,omitempty"`
}

// JobRequest is the POST /v1/jobs body.
type JobRequest struct {
	DatasetID string        `json:"dataset_id"`
	Config    ConfigRequest `json:"config"`
	// TimeoutMS caps the mine's wall time (0 = server default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// toConfig resolves the wire configuration against a dataset schema.
// Vocabulary failures (measure, oe_mode, counting, attrs) are typed
// *core.FieldErrors so the error envelope names the offending field; the
// engine's own Validate covers everything numeric.
func (cr ConfigRequest) toConfig(d *dataset.Dataset) (engine.Config, error) {
	cfg := engine.Config{
		Algorithm:            cr.Algorithm,
		Alpha:                cr.Alpha,
		Delta:                cr.Delta,
		MaxDepth:             cr.MaxDepth,
		MaxRecursion:         cr.MaxRecursion,
		TopK:                 cr.TopK,
		Workers:              cr.Workers,
		DFS:                  cr.DFS,
		NP:                   cr.NP,
		SkipMeaningfulFilter: cr.SkipMeaningfulFilter,
		BeamWidth:            cr.BeamWidth,
		Bins:                 cr.Bins,
		MinCoverage:          cr.MinCoverage,
		MinQuality:           cr.MinQuality,
		BinSize:              cr.BinSize,
		MaxSweeps:            cr.MaxSweeps,
	}
	if cr.Measure == "" {
		cfg.Measure = pattern.SupportDiff
	} else {
		m, ok := pattern.MeasureByName(cr.Measure)
		if !ok {
			return cfg, &core.FieldError{Field: "measure", Value: cr.Measure,
				Reason: "unknown measure; one of " + strings.Join(pattern.MeasureNames(), ", ")}
		}
		cfg.Measure = m
	}
	switch cr.OEMode {
	case "", "paper":
		cfg.OEMode = core.OEModePaper
	case "conservative":
		cfg.OEMode = core.OEModeConservative
	default:
		return cfg, &core.FieldError{Field: "oe_mode", Value: cr.OEMode,
			Reason: "unknown oe_mode; paper or conservative"}
	}
	switch cr.Counting {
	case "", "auto":
		cfg.Counting = core.CountingAuto
	case "bitmap":
		cfg.Counting = core.CountingBitmap
	case "slice":
		cfg.Counting = core.CountingSlice
	default:
		return cfg, &core.FieldError{Field: "counting", Value: cr.Counting,
			Reason: "unknown counting; auto, bitmap or slice"}
	}
	for _, name := range cr.Attrs {
		idx := d.AttrIndex(name)
		if idx < 0 {
			return cfg, &core.FieldError{Field: "attrs", Value: name,
				Reason: "unknown attribute"}
		}
		cfg.Attrs = append(cfg.Attrs, idx)
	}
	return cfg, nil
}

// errorBody is the JSON error envelope; Fields carries one entry per
// invalid configuration field when the failure was a validation error.
type errorBody struct {
	Error  string   `json:"error"`
	Fields []string `json:"fields,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	body := errorBody{Error: err.Error()}
	// A config validation failure is errors.Join-ed *core.FieldError
	// values; surface each field on its own line for the client.
	var joined interface{ Unwrap() []error }
	if errors.As(err, &joined) {
		for _, e := range joined.Unwrap() {
			var fe *core.FieldError
			if errors.As(e, &fe) {
				body.Fields = append(body.Fields, fe.Field)
			}
		}
	} else {
		var fe *core.FieldError
		if errors.As(err, &fe) {
			body.Fields = append(body.Fields, fe.Field)
		}
	}
	writeJSON(w, status, body)
}

// Handler mounts the full v1 API:
//
//	GET    /healthz                   liveness (always 200 while the process serves)
//	GET    /readyz                    readiness (503 once draining)
//	POST   /v1/datasets               register a CSV (content-hash addressed)
//	GET    /v1/datasets               list registered datasets
//	GET    /v1/datasets/{id}          one dataset's info
//	POST   /v1/jobs                   submit a mine (202; 400/404/429/503)
//	GET    /v1/jobs                   list jobs
//	GET    /v1/jobs/{id}              job status + live progress
//	DELETE /v1/jobs/{id}              cancel a job
//	GET    /v1/jobs/{id}/result       deterministic report JSON (409 until done)
//	GET    /v1/jobs/{id}/trace        decision trace as JSON Lines
//	GET    /v1/jobs/{id}/explain?key= pattern provenance (core.Explain)
//	GET    /v1/metrics                serve counters + live mining snapshots
//	                                  (?format=prometheus for text exposition)
//	GET    /v1/metrics/prometheus     text exposition (also /metrics[/prometheus])
//	/debug/pprof/...                  profiling (only with Options.EnablePprof)
//
// Every route is wrapped in the RED middleware: request/error counters and
// latency histograms per route pattern, one access-log line per request
// carrying the request correlation ID, and panic recovery into logged 500s.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mw := &obs.Middleware{Log: s.log.With("component", "serve.http"), Metrics: s.httpm}
	handle := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, mw.Wrap(pattern, h))
	}
	handle("GET /healthz", s.handleHealth)
	handle("GET /readyz", s.handleReady)
	handle("POST /v1/datasets", s.handleRegister)
	handle("GET /v1/datasets", s.handleListDatasets)
	handle("GET /v1/datasets/{id}", s.handleGetDataset)
	handle("POST /v1/jobs", s.handleSubmit)
	handle("GET /v1/jobs", s.handleListJobs)
	handle("GET /v1/jobs/{id}", s.handleGetJob)
	handle("DELETE /v1/jobs/{id}", s.handleCancelJob)
	handle("GET /v1/jobs/{id}/result", s.handleResult)
	handle("GET /v1/jobs/{id}/trace", s.handleTrace)
	handle("GET /v1/jobs/{id}/explain", s.handleExplain)
	handle("GET /v1/metrics", s.handleMetrics)
	handle("GET /v1/metrics/prometheus", s.handlePrometheus)
	handle("GET /metrics", s.handleMetrics)
	handle("GET /metrics/prometheus", s.handlePrometheus)
	if s.opts.EnablePprof {
		// One route label for the whole profiling surface, so scraping
		// different profiles does not mint new metric series.
		handle("/debug/pprof/", func(w http.ResponseWriter, r *http.Request) {
			switch r.URL.Path {
			case "/debug/pprof/cmdline":
				pprof.Cmdline(w, r)
			case "/debug/pprof/profile":
				pprof.Profile(w, r)
			case "/debug/pprof/symbol":
				pprof.Symbol(w, r)
			case "/debug/pprof/trace":
				pprof.Trace(w, r)
			default:
				pprof.Index(w, r)
			}
		})
	}
	return mux
}

// handleHealth is pure liveness: 200 as long as the process can serve,
// draining included — restart decisions should not trigger on a graceful
// shutdown. The drain state is reported in the body and gates /readyz.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	if !s.Ready() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    status,
		"uptime_ns": int64(time.Since(s.start)),
	})
}

// handleReady is the routing gate: 503 the moment StartDrain (or Close)
// ran, so load balancers stop sending new traffic while in-flight work
// completes behind the still-green /healthz.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if !s.Ready() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxUploadBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.GroupColumn == "" {
		writeError(w, http.StatusBadRequest, errors.New("group_column is required"))
		return
	}
	if req.CSV == "" {
		writeError(w, http.StatusBadRequest, errors.New("csv is required"))
		return
	}
	info, err := s.reg.Register(req.Name, []byte(req.CSV), req.GroupColumn, req.ForceCategorical)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleListDatasets(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.List())
}

func (s *Server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	_, info, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrUnknownDataset)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	d, _, ok := s.reg.Get(req.DatasetID)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: %q", ErrUnknownDataset, req.DatasetID))
		return
	}
	cfg, err := req.Config.toConfig(d)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, err := s.mgr.Submit(r.Context(), req.DatasetID, cfg, time.Duration(req.TimeoutMS)*time.Millisecond)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, ErrUnknownDataset):
		writeError(w, http.StatusNotFound, err)
		return
	case err != nil: // config validation
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, job.Status())
}

func (s *Server) handleListJobs(w http.ResponseWriter, _ *http.Request) {
	jobs := s.mgr.Jobs()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.mgr.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: %q", ErrUnknownJob, r.PathValue("id")))
		return nil, false
	}
	return j, true
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	j, _ = s.mgr.Cancel(j.ID)
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	out, state, err := j.Output()
	switch state {
	case JobDone:
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(out.JSON)
	case JobFailed, JobCanceled:
		writeJSON(w, http.StatusGone, errorBody{
			Error: fmt.Sprintf("job %s: %s (%v)", j.ID, state, err),
		})
	default:
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusConflict, errorBody{
			Error: fmt.Sprintf("job %s still %s", j.ID, state),
		})
	}
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	tr := j.TraceSnapshot()
	if tr == nil {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusConflict, errorBody{
			Error: fmt.Sprintf("job %s has not started", j.ID),
		})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = trace.WriteJSONL(w, tr)
}

// explainResponse is the /explain payload.
type explainResponse struct {
	Key     string `json:"key"`
	Verdict string `json:"verdict"`
	Events  int    `json:"events"`
	Subset  int    `json:"subset_events,omitempty"`
	// Text is Explanation.Format's human rendering (attribute names
	// resolved against the dataset).
	Text string `json:"text"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	key := r.URL.Query().Get("key")
	if key == "" {
		writeError(w, http.StatusBadRequest, errors.New("query parameter key is required"))
		return
	}
	set, err := pattern.ParseKey(key)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parsing key: %w", err))
		return
	}
	tr := j.TraceSnapshot()
	if tr == nil {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusConflict, errorBody{
			Error: fmt.Sprintf("job %s has not started", j.ID),
		})
		return
	}
	x := core.Explain(tr, set)
	writeJSON(w, http.StatusOK, explainResponse{
		Key:     x.Key,
		Verdict: x.Verdict,
		Events:  len(x.Events),
		Subset:  len(x.Subset),
		Text:    strings.TrimRight(x.Format(j.Dataset()), "\n"),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Query().Get("format") {
	case "", "json":
		writeJSON(w, http.StatusOK, s.Metrics())
	case "prometheus", "prom":
		s.handlePrometheus(w, r)
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown metrics format %q; json or prometheus", r.URL.Query().Get("format")))
	}
}
