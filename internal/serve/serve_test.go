package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"sdadcs/internal/engine"
	"sdadcs/internal/trace"
)

// heavyCSV builds a dataset whose mine takes long enough (hundreds of ms,
// seconds under -race) that tests can observe the running state and cancel
// mid-flight. All-continuous attributes keep the SDAD-CS recursion busy.
func heavyCSV(rows, attrs int) []byte {
	rng := rand.New(rand.NewSource(42))
	var b strings.Builder
	for a := 0; a < attrs; a++ {
		fmt.Fprintf(&b, "c%d,", a)
	}
	b.WriteString("g\n")
	for i := 0; i < rows; i++ {
		g := "pass"
		if rng.Float64() < 0.5 {
			g = "fail"
		}
		for a := 0; a < attrs; a++ {
			fmt.Fprintf(&b, "%.6f,", rng.NormFloat64()*10+float64(a))
		}
		b.WriteString(g + "\n")
	}
	return []byte(b.String())
}

// client wraps an httptest server with JSON helpers.
type client struct {
	t    *testing.T
	base string
}

func newTestServer(t *testing.T, opts Options) (*Server, *client) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close(2 * time.Second)
	})
	return s, &client{t: t, base: ts.URL}
}

func (c *client) do(method, path string, body any) (int, []byte) {
	c.t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			c.t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		c.t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	return resp.StatusCode, out
}

func (c *client) register(csv []byte) string {
	c.t.Helper()
	code, body := c.do("POST", "/v1/datasets", map[string]any{
		"name": "t", "group_column": "g", "csv": string(csv),
	})
	if code != http.StatusCreated {
		c.t.Fatalf("register: %d %s", code, body)
	}
	var info DatasetInfo
	if err := json.Unmarshal(body, &info); err != nil {
		c.t.Fatal(err)
	}
	return info.ID
}

func (c *client) submit(req map[string]any) (JobStatus, int, []byte) {
	c.t.Helper()
	code, body := c.do("POST", "/v1/jobs", req)
	var st JobStatus
	if code == http.StatusAccepted {
		if err := json.Unmarshal(body, &st); err != nil {
			c.t.Fatal(err)
		}
	}
	return st, code, body
}

func (c *client) status(id string) JobStatus {
	c.t.Helper()
	code, body := c.do("GET", "/v1/jobs/"+id, nil)
	if code != http.StatusOK {
		c.t.Fatalf("status %s: %d %s", id, code, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		c.t.Fatal(err)
	}
	return st
}

// waitState polls until the job reaches want (or any terminal state) and
// returns the final status.
func (c *client) waitState(id string, want JobState, timeout time.Duration) JobStatus {
	c.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := c.status(id)
		if st.State == want || st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			c.t.Fatalf("job %s stuck in %s waiting for %s", id, st.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (c *client) metrics() ServerMetrics {
	c.t.Helper()
	code, body := c.do("GET", "/v1/metrics", nil)
	if code != http.StatusOK {
		c.t.Fatalf("metrics: %d %s", code, body)
	}
	var m ServerMetrics
	if err := json.Unmarshal(body, &m); err != nil {
		c.t.Fatal(err)
	}
	return m
}

// smallCSV is a fast-to-mine, perfectly separable dataset: large enough
// (40 rows) that the chi-square expected-count prune does not discard the
// obvious contrasts.
var smallCSV = func() []byte {
	var b strings.Builder
	b.WriteString("x,tool,g\n")
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&b, "%.1f,a,pass\n", 1.0+float64(i)*0.1)
		fmt.Fprintf(&b, "%.1f,b,fail\n", 8.0+float64(i)*0.1)
	}
	return []byte(b.String())
}()

// TestEndToEnd walks the whole API: register → submit → poll → result →
// trace → explain, plus the dataset listing endpoints.
func TestEndToEnd(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 2})
	dsID := c.register(smallCSV)

	// Dataset surface.
	if code, body := c.do("GET", "/v1/datasets/"+dsID, nil); code != http.StatusOK {
		t.Fatalf("get dataset: %d %s", code, body)
	}
	if code, body := c.do("GET", "/v1/datasets", nil); code != http.StatusOK || !bytes.Contains(body, []byte(dsID)) {
		t.Fatalf("list datasets: %d %s", code, body)
	}
	if code, _ := c.do("GET", "/v1/datasets/ds_nope", nil); code != http.StatusNotFound {
		t.Fatalf("unknown dataset: %d", code)
	}

	// Submit and wait.
	st, code, body := c.submit(map[string]any{"dataset_id": dsID})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	if st.State != JobPending && st.State != JobRunning && st.State != JobDone {
		t.Fatalf("fresh job state = %s", st.State)
	}
	final := c.waitState(st.ID, JobDone, 10*time.Second)
	if final.State != JobDone {
		t.Fatalf("job ended %s (%s)", final.State, final.Error)
	}
	if final.Contrasts == 0 {
		t.Fatal("mine found no contrasts on a perfectly separable dataset")
	}
	if final.StartedAt == nil || final.FinishedAt == nil {
		t.Fatal("missing timestamps on a done job")
	}

	// Result: a JSON array of contrasts carrying canonical keys.
	code, res := c.do("GET", "/v1/jobs/"+st.ID+"/result", nil)
	if code != http.StatusOK {
		t.Fatalf("result: %d %s", code, res)
	}
	var contrasts []struct {
		Rank  int    `json:"rank"`
		Key   string `json:"key"`
		Items []struct {
			Attribute string `json:"attribute"`
			Kind      string `json:"kind"`
		} `json:"items"`
		Groups []struct {
			Group   string  `json:"group"`
			Support float64 `json:"support"`
		} `json:"groups"`
	}
	if err := json.Unmarshal(res, &contrasts); err != nil {
		t.Fatalf("result not a contrast array: %v\n%s", err, res)
	}
	if len(contrasts) != final.Contrasts {
		t.Fatalf("result has %d contrasts, status says %d", len(contrasts), final.Contrasts)
	}
	if contrasts[0].Key == "" || len(contrasts[0].Groups) != 2 {
		t.Fatalf("malformed contrast: %+v", contrasts[0])
	}

	// Trace: decodable JSONL with at least one event.
	req, _ := http.NewRequest("GET", c.base+"/v1/jobs/"+st.ID+"/trace", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Fatalf("trace content type = %q", ct)
	}
	tr, err := trace.ReadJSONL(resp.Body)
	if err != nil {
		t.Fatalf("decoding trace JSONL: %v", err)
	}
	if len(tr.Events) == 0 {
		t.Fatal("empty decision trace")
	}

	// Explain: round-trip the first result key into pattern provenance.
	code, body = c.do("GET", "/v1/jobs/"+st.ID+"/explain?key="+contrasts[0].Key, nil)
	if code != http.StatusOK {
		t.Fatalf("explain: %d %s", code, body)
	}
	var ex struct {
		Key     string `json:"key"`
		Verdict string `json:"verdict"`
		Events  int    `json:"events"`
		Text    string `json:"text"`
	}
	if err := json.Unmarshal(body, &ex); err != nil {
		t.Fatal(err)
	}
	if ex.Key != contrasts[0].Key || ex.Verdict == "" || ex.Text == "" {
		t.Fatalf("thin explanation: %+v", ex)
	}

	// Job listing includes it.
	if code, body := c.do("GET", "/v1/jobs", nil); code != http.StatusOK || !bytes.Contains(body, []byte(st.ID)) {
		t.Fatalf("list jobs: %d %s", code, body)
	}
	if code, _ := c.do("GET", "/v1/jobs/job_nope", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job: %d", code)
	}
}

// TestDedupSingleflight pins the issue's acceptance bar: ≥8 simultaneous
// identical submissions cost exactly one Mine execution and all callers get
// byte-identical result bodies.
func TestDedupSingleflight(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 1})
	heavyID := c.register(heavyCSV(2500, 8))
	smallID := c.register(smallCSV)

	// Occupy the single worker with a long mine so the identical batch
	// below deterministically attaches to one in-flight leader.
	blocker, code, body := c.submit(map[string]any{
		"dataset_id": heavyID,
		"config":     map[string]any{"max_depth": 4, "delta": 0.01},
	})
	if code != http.StatusAccepted {
		t.Fatalf("blocker: %d %s", code, body)
	}
	if st := c.waitState(blocker.ID, JobRunning, 10*time.Second); st.State != JobRunning {
		t.Fatalf("blocker reached %s before the batch was submitted", st.State)
	}
	base := c.metrics()

	const n = 8
	ids := make([]string, n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, code, body := c.submit(map[string]any{"dataset_id": smallID})
			if code != http.StatusAccepted {
				errs <- fmt.Errorf("submit %d: %d %s", i, code, body)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Free the worker: cancel the blocker; its mine must abort promptly
	// through the context checks in the miner and the SDAD-CS recursion.
	start := time.Now()
	if code, body := c.do("DELETE", "/v1/jobs/"+blocker.ID, nil); code != http.StatusOK {
		t.Fatalf("cancel blocker: %d %s", code, body)
	}
	bst := c.waitState(blocker.ID, JobCanceled, 5*time.Second)
	if bst.State != JobCanceled {
		t.Fatalf("canceled blocker ended %s", bst.State)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("cancellation took %s; want prompt interruption", d)
	}

	// Everyone in the batch finishes done with the same bytes.
	var bodies [][]byte
	deduped := 0
	for _, id := range ids {
		st := c.waitState(id, JobDone, 10*time.Second)
		if st.State != JobDone {
			t.Fatalf("batch job %s ended %s (%s)", id, st.State, st.Error)
		}
		if st.Deduped {
			deduped++
		}
		code, res := c.do("GET", "/v1/jobs/"+id+"/result", nil)
		if code != http.StatusOK {
			t.Fatalf("result %s: %d", id, code)
		}
		bodies = append(bodies, res)
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("result %d differs from result 0", i)
		}
	}
	if deduped != n-1 {
		t.Fatalf("deduplicated jobs = %d, want %d", deduped, n-1)
	}

	m := c.metrics()
	if got := m.MineExecutions - base.MineExecutions; got != 1 {
		t.Fatalf("batch cost %d mine executions, want exactly 1", got)
	}
	if got := m.DedupHits - base.DedupHits; got != n-1 {
		t.Fatalf("dedup hits = %d, want %d", got, n-1)
	}
}

// TestResultCacheHit: re-submitting a finished (dataset, config) pair is
// served from the cache without a new execution, byte-identically.
func TestResultCacheHit(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 1})
	dsID := c.register(smallCSV)

	first, code, body := c.submit(map[string]any{"dataset_id": dsID})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	if st := c.waitState(first.ID, JobDone, 10*time.Second); st.State != JobDone {
		t.Fatalf("first job ended %s", st.State)
	}
	_, res1 := c.do("GET", "/v1/jobs/"+first.ID+"/result", nil)
	base := c.metrics()

	// Same semantics, different wire spelling (workers and counting are
	// excluded from the canonical key — they cannot change the result).
	second, code, body := c.submit(map[string]any{
		"dataset_id": dsID,
		"config":     map[string]any{"workers": 4, "counting": "slice"},
	})
	if code != http.StatusAccepted {
		t.Fatalf("second submit: %d %s", code, body)
	}
	if second.State != JobDone || !second.CacheHit {
		t.Fatalf("second job: state=%s cache_hit=%v; want done from cache", second.State, second.CacheHit)
	}
	_, res2 := c.do("GET", "/v1/jobs/"+second.ID+"/result", nil)
	if !bytes.Equal(res1, res2) {
		t.Fatal("cached result bytes differ from the original")
	}
	m := c.metrics()
	if m.MineExecutions != base.MineExecutions {
		t.Fatal("cache hit still executed a mine")
	}
	if m.CacheHits-base.CacheHits != 1 {
		t.Fatalf("cache hits delta = %d, want 1", m.CacheHits-base.CacheHits)
	}
}

// TestCancelRunningJob: DELETE on a long-running mine returns promptly and
// the job lands in canceled — the paper-core context checks, exercised
// through the whole HTTP stack.
func TestCancelRunningJob(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 1})
	dsID := c.register(heavyCSV(2500, 8))

	st, code, body := c.submit(map[string]any{
		"dataset_id": dsID,
		"config":     map[string]any{"max_depth": 4, "delta": 0.01},
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	if got := c.waitState(st.ID, JobRunning, 10*time.Second); got.State != JobRunning {
		t.Fatalf("job reached %s before cancellation", got.State)
	}

	start := time.Now()
	code, body = c.do("DELETE", "/v1/jobs/"+st.ID, nil)
	if code != http.StatusOK {
		t.Fatalf("cancel: %d %s", code, body)
	}
	final := c.waitState(st.ID, JobCanceled, 5*time.Second)
	if final.State != JobCanceled {
		t.Fatalf("job ended %s, want canceled", final.State)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("cancellation took %s", d)
	}

	// The result is gone, not pending.
	if code, _ := c.do("GET", "/v1/jobs/"+st.ID+"/result", nil); code != http.StatusGone {
		t.Fatalf("result of canceled job: %d, want 410", code)
	}
	// Canceling again is idempotent.
	if code, _ := c.do("DELETE", "/v1/jobs/"+st.ID, nil); code != http.StatusOK {
		t.Fatalf("re-cancel: %d", code)
	}
}

// TestOverload: with one worker and a one-slot queue, a third concurrent
// job is refused with 429 + Retry-After instead of queuing unboundedly.
func TestOverload(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 1, QueueDepth: 1})
	heavyID := c.register(heavyCSV(2500, 8))

	running, code, body := c.submit(map[string]any{
		"dataset_id": heavyID,
		"config":     map[string]any{"max_depth": 4, "delta": 0.01},
	})
	if code != http.StatusAccepted {
		t.Fatalf("first: %d %s", code, body)
	}
	c.waitState(running.ID, JobRunning, 10*time.Second)

	// Occupies the single queue slot (distinct config: no dedup).
	queued, code, body := c.submit(map[string]any{
		"dataset_id": heavyID,
		"config":     map[string]any{"max_depth": 3, "delta": 0.01},
	})
	if code != http.StatusAccepted {
		t.Fatalf("second: %d %s", code, body)
	}

	// Queue full now.
	req, _ := http.NewRequest("POST", c.base+"/v1/jobs", strings.NewReader(
		fmt.Sprintf(`{"dataset_id":%q,"config":{"max_depth":2,"delta":0.01}}`, heavyID)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	rejBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload submit: %d %s", resp.StatusCode, rejBody)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	m := c.metrics()
	if m.QueueDepth != 1 || m.QueueCapacity != 1 {
		t.Fatalf("queue %d/%d, want 1/1", m.QueueDepth, m.QueueCapacity)
	}

	// Clean up promptly so the test server drains fast.
	c.do("DELETE", "/v1/jobs/"+queued.ID, nil)
	c.do("DELETE", "/v1/jobs/"+running.ID, nil)
	c.waitState(running.ID, JobCanceled, 5*time.Second)
}

// TestBadConfigRejected: malformed mining configs are 400s carrying the
// offending field names; unknown enums and attrs are 400s too.
func TestBadConfigRejected(t *testing.T) {
	_, c := newTestServer(t, Options{})
	dsID := c.register(smallCSV)

	_, code, body := c.submit(map[string]any{
		"dataset_id": dsID,
		"config":     map[string]any{"alpha": 2.0, "delta": -0.5},
	})
	if code != http.StatusBadRequest {
		t.Fatalf("invalid config: %d %s", code, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"Alpha": false, "Delta": false}
	for _, f := range eb.Fields {
		if _, ok := want[f]; ok {
			want[f] = true
		}
	}
	for f, seen := range want {
		if !seen {
			t.Fatalf("400 body missing field %s: %s", f, body)
		}
	}

	for name, cfg := range map[string]map[string]any{
		"bad measure":  {"measure": "zscore"},
		"bad oe_mode":  {"oe_mode": "wild"},
		"bad counting": {"counting": "gpu"},
		"bad attr":     {"attrs": []string{"no_such_column"}},
	} {
		if _, code, _ := c.submit(map[string]any{"dataset_id": dsID, "config": cfg}); code != http.StatusBadRequest {
			t.Fatalf("%s: %d, want 400", name, code)
		}
	}

	// Unknown dataset is 404; junk body is 400.
	if _, code, _ := c.submit(map[string]any{"dataset_id": "ds_missing"}); code != http.StatusNotFound {
		t.Fatalf("unknown dataset: %d", code)
	}
	if code, _ := c.do("POST", "/v1/datasets", map[string]any{"csv": "a,g\n1,x\n"}); code != http.StatusBadRequest {
		t.Fatalf("register without group_column: %d", code)
	}
}

// TestJobTimeout: a job whose deadline expires lands in failed (deadline
// exceeded is an execution failure, not a caller cancellation).
func TestJobTimeout(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 1})
	dsID := c.register(heavyCSV(2500, 8))
	st, code, body := c.submit(map[string]any{
		"dataset_id": dsID,
		"config":     map[string]any{"max_depth": 4, "delta": 0.01},
		"timeout_ms": 50,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	final := c.waitState(st.ID, JobFailed, 10*time.Second)
	if final.State != JobFailed || !strings.Contains(final.Error, "deadline") {
		t.Fatalf("timed-out job: state=%s err=%q", final.State, final.Error)
	}
}

// TestDrain: Close stops admissions (503 from both submit and readyz,
// while liveness /healthz stays 200 and reports draining), finishes by
// canceling stragglers, and leaves no worker goroutines — the goroutine
// count returning to baseline is the leak check.
func TestDrain(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New(Options{Workers: 4})
	ts := httptest.NewServer(s.Handler())
	c := &client{t: t, base: ts.URL}

	dsID := c.register(heavyCSV(2500, 8))
	st, code, body := c.submit(map[string]any{
		"dataset_id": dsID,
		"config":     map[string]any{"max_depth": 4, "delta": 0.01},
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	c.waitState(st.ID, JobRunning, 10*time.Second)

	// Short grace: the running mine is context-canceled by the drain.
	done := make(chan struct{})
	go func() { s.Close(50 * time.Millisecond); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return")
	}

	if got := c.status(st.ID); !got.State.Terminal() {
		t.Fatalf("job still %s after drain", got.State)
	}
	if _, code, _ := c.submit(map[string]any{"dataset_id": dsID}); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit: %d, want 503", code)
	}
	if code, body := c.do("GET", "/healthz", nil); code != http.StatusOK || !bytes.Contains(body, []byte("draining")) {
		t.Fatalf("post-drain healthz: %d %s, want 200 + draining", code, body)
	}
	if code, body := c.do("GET", "/readyz", nil); code != http.StatusServiceUnavailable || !bytes.Contains(body, []byte("draining")) {
		t.Fatalf("post-drain readyz: %d %s, want 503 + draining", code, body)
	}
	ts.Close()

	// Goroutine count settles back to (near) the baseline: the worker pool
	// and the job contexts are gone. Generous slack for runtime goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after drain", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestConcurrentClients hammers one server from many goroutines mixing
// registrations, submissions, polls, metrics and cancellations — primarily
// a -race exercise for the registry/manager/cache locking.
func TestConcurrentClients(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 4, RowBudget: 500, CacheEntries: 8})

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Each client registers its own small dataset (some collide by
			// content) and runs a couple of jobs to completion.
			csv := csvRows(40+(i%3)*10, fmt.Sprintf("cl%d", i%4))
			code, body := c.do("POST", "/v1/datasets", map[string]any{
				"name": fmt.Sprintf("client-%d", i), "group_column": "g", "csv": string(csv),
			})
			if code != http.StatusCreated {
				errc <- fmt.Errorf("client %d register: %d %s", i, code, body)
				return
			}
			var info DatasetInfo
			if err := json.Unmarshal(body, &info); err != nil {
				errc <- err
				return
			}
			for r := 0; r < 2; r++ {
				st, code, body := c.submit(map[string]any{
					"dataset_id": info.ID,
					"config":     map[string]any{"top_k": 10 + r},
				})
				if code == http.StatusTooManyRequests {
					continue // admission control doing its job
				}
				if code != http.StatusAccepted {
					errc <- fmt.Errorf("client %d submit: %d %s", i, code, body)
					return
				}
				deadline := time.Now().Add(15 * time.Second)
				for {
					got := c.status(st.ID)
					if got.State.Terminal() {
						if got.State != JobDone {
							errc <- fmt.Errorf("client %d job %s: %s (%s)", i, st.ID, got.State, got.Error)
						}
						break
					}
					if time.Now().After(deadline) {
						errc <- fmt.Errorf("client %d job %s stuck", i, st.ID)
						break
					}
					c.metrics() // concurrent metrics reads race-test liveMetrics
					time.Sleep(2 * time.Millisecond)
				}
			}
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestAlgorithmsEndToEnd runs every registered algorithm over the HTTP API
// and checks the status reports the algorithm and the result renders.
func TestAlgorithmsEndToEnd(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 2})
	dsID := c.register(smallCSV)

	for _, alg := range engine.Algorithms() {
		if alg == "panic-test" {
			continue // the panic-isolation test's deliberately-exploding miner
		}
		st, code, body := c.submit(map[string]any{
			"dataset_id": dsID,
			"config":     map[string]any{"algorithm": alg},
		})
		if code != http.StatusAccepted {
			t.Fatalf("%s: submit %d %s", alg, code, body)
		}
		fin := c.waitState(st.ID, JobDone, 15*time.Second)
		if fin.State != JobDone {
			t.Fatalf("%s: job ended %s (%s)", alg, fin.State, fin.Error)
		}
		if fin.Algorithm != alg {
			t.Fatalf("%s: status algorithm = %q", alg, fin.Algorithm)
		}
		code, res := c.do("GET", "/v1/jobs/"+st.ID+"/result", nil)
		if code != http.StatusOK {
			t.Fatalf("%s: result %d %s", alg, code, res)
		}
		var parsed []any
		if err := json.Unmarshal(res, &parsed); err != nil {
			t.Fatalf("%s: result not JSON: %v", alg, err)
		}
	}

	// Unknown algorithm and unknown measure are typed 400s.
	for field, cfg := range map[string]map[string]any{
		"Algorithm": {"algorithm": "apriori"},
		"measure":   {"algorithm": "stucco", "measure": "lift"},
	} {
		_, code, body := c.submit(map[string]any{"dataset_id": dsID, "config": cfg})
		if code != http.StatusBadRequest {
			t.Fatalf("%s: %d, want 400 (%s)", field, code, body)
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil {
			t.Fatal(err)
		}
		found := false
		for _, f := range eb.Fields {
			if f == field {
				found = true
			}
		}
		if !found {
			t.Fatalf("400 body missing field %s: %s", field, body)
		}
	}
}

// TestAlgorithmCacheEquivalence is the canonical-key acceptance test:
// equivalent (algorithm, measure) spellings fold to one cache key, so the
// second submission is a born-done cache hit whose /result body is
// byte-identical to the first — while changing the algorithm or the
// measure misses the cache and costs a fresh execution.
func TestAlgorithmCacheEquivalence(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 1})
	dsID := c.register(smallCSV)

	run := func(cfg map[string]any) (JobStatus, []byte) {
		t.Helper()
		st, code, body := c.submit(map[string]any{"dataset_id": dsID, "config": cfg})
		if code != http.StatusAccepted {
			t.Fatalf("submit %v: %d %s", cfg, code, body)
		}
		fin := c.waitState(st.ID, JobDone, 15*time.Second)
		if fin.State != JobDone {
			t.Fatalf("job %v ended %s (%s)", cfg, fin.State, fin.Error)
		}
		code, res := c.do("GET", "/v1/jobs/"+st.ID+"/result", nil)
		if code != http.StatusOK {
			t.Fatalf("result %v: %d", cfg, code)
		}
		return fin, res
	}

	base := c.metrics()
	_, res1 := run(map[string]any{"algorithm": "stucco"})

	// Same algorithm and measure, spelled with every default made explicit
	// plus result-neutral knobs flipped: one canonical key, zero executions.
	second, res2 := run(map[string]any{
		"algorithm": "stucco", "alpha": 0.05, "top_k": 100,
		"measure": "diff", "workers": 8, "counting": "slice",
	})
	if !second.CacheHit {
		t.Fatalf("equivalent spelling was not a cache hit: %+v", second)
	}
	if !bytes.Equal(res1, res2) {
		t.Fatal("equivalent (algorithm, measure) configs returned different result bytes")
	}
	m := c.metrics()
	if got := m.MineExecutions - base.MineExecutions; got != 1 {
		t.Fatalf("two equivalent spellings cost %d executions, want 1", got)
	}

	// A different measure or algorithm must not share the key.
	third, res3 := run(map[string]any{"algorithm": "stucco", "measure": "wracc"})
	if third.CacheHit {
		t.Fatal("different measure was served from the cache")
	}
	if bytes.Equal(res1, res3) {
		t.Fatal("different measure produced byte-identical result (scores should differ)")
	}
	fourth, _ := run(map[string]any{"algorithm": "subgroup"})
	if fourth.CacheHit {
		t.Fatal("different algorithm was served from the cache")
	}
	if got := c.metrics().MineExecutions - base.MineExecutions; got != 3 {
		t.Fatalf("total executions = %d, want 3", got)
	}
}
